// Package lccs is the public API of this repository: a Go implementation
// of LCCS-LSH, the Locality-Sensitive Hashing scheme based on the Longest
// Circular Co-Substring search framework (Lei, Huang, Kankanhalli, Tung —
// SIGMOD 2020).
//
// An index hashes every data vector with m i.i.d. LSH functions into a
// length-m hash string and organizes the strings in a Circular Shift
// Array. A query retrieves the data objects whose hash strings share the
// longest circular co-substring with the query's hash string — a dynamic
// concatenation of consecutive hash values — verifies them with exact
// distances, and returns the k nearest. The scheme is LSH-family
// independent: Euclidean, Angular (cosine), and Hamming metrics are
// supported out of the box, and only one capacity parameter (m) needs
// tuning.
//
// Basic usage:
//
//	ix, err := lccs.NewIndex(data, lccs.Config{Metric: lccs.Euclidean, M: 64})
//	if err != nil { ... }
//	neighbors := ix.Search(query, 10)
//
// Multi-probe querying (MP-LCCS-LSH, smaller indexes at equal recall) is
// enabled by setting Config.Probes > 1.
//
// Beyond the single static Index, the package provides ShardedIndex —
// the dataset partitioned across S shards whose CSAs build in parallel
// and whose per-shard top-k results merge through a tournament tree —
// and DynamicIndex, a delta-main structure whose buffered inserts are
// rebuilt into new shards in the background without blocking writers.
// All three implement the Searcher interface, so consumers (including
// the internal/server network daemon behind cmd/lccs-serve) are
// agnostic to which facade backs them. See README.md for the
// architecture and shard-count guidance.
package lccs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"lccs/internal/core"
	"lccs/internal/obs"
	"lccs/internal/pqueue"
	"lccs/internal/rng"
	"lccs/internal/vec"
)

// Trace is the per-request span recorder of the observability layer
// (internal/obs), re-exported so callers outside the module can drive
// the traced search variants. A nil *Trace is always valid and selects
// the untraced zero-allocation path; every Trace method is nil-safe.
type Trace = obs.Trace

// SpanNode is the serialized form of one trace span, children nested —
// what Trace.Tree returns and what the server inlines for
// "trace": true requests.
type SpanNode = obs.SpanNode

// NewTrace draws a pooled, reset Trace stamped with the caller's
// request id. Pair with ReleaseTrace once the span tree has been
// consumed; the Trace must not be used after release.
func NewTrace(id uint64) *Trace { return obs.GetTrace(id) }

// ReleaseTrace returns a Trace to the pool. Safe on nil.
func ReleaseTrace(t *Trace) { obs.PutTrace(t) }

// TracedSearcher is implemented by every facade: SearchBudgetInto with
// per-stage span recording. A non-positive lambda selects the facade's
// default candidate budget, and a nil trace degenerates to the plain
// untraced search, so one method covers all four call shapes.
type TracedSearcher interface {
	SearchBudgetIntoTraced(q []float32, k, lambda int, dst []Neighbor, tr *Trace) ([]Neighbor, error)
}

// Cost is the per-query resource-cost record accumulated by
// SearchCostInto: every counter is summed across shards and the delta
// buffer, so one Cost describes the whole query regardless of which
// facade answered it. All fields are additive — reuse one Cost across
// queries to meter a workload, or reset it per query to bill one.
type Cost struct {
	// Comparisons counts hash-string comparisons by the CSA circular
	// binary searches (the retrieval phase's rows touched).
	Comparisons int64 `json:"comparisons"`
	// Candidates counts data objects verified with a distance kernel.
	Candidates int64 `json:"candidates"`
	// Reranked counts SQ8-scan survivors re-ranked with exact float32
	// distances (0 on unquantized indexes).
	Reranked int64 `json:"reranked"`
	// BytesScanned is the vector-block memory traffic of verification:
	// float32 gathers at 4 bytes per dimension per candidate, SQ8 score
	// gathers at 1, the exact re-rank at 4 again.
	BytesScanned int64 `json:"bytes_scanned"`
	// FilterRejected counts candidates the filter predicate discarded
	// before any distance work.
	FilterRejected int64 `json:"filter_rejected"`
}

// Reset zeroes every counter. Safe on nil.
func (c *Cost) Reset() {
	if c != nil {
		*c = Cost{}
	}
}

// addStats folds one core-level stats record into the cost. Safe on
// nil, so untraced unmetered callers pass nil and pay one branch.
func (c *Cost) addStats(st core.SearchStats) {
	if c == nil {
		return
	}
	c.Comparisons += int64(st.Comparisons)
	c.Candidates += int64(st.Candidates)
	c.Reranked += int64(st.Reranked)
	c.BytesScanned += st.BytesScanned
	c.FilterRejected += int64(st.FilterRejected)
}

// CostSearcher is the unified metered query interface implemented by
// every facade: filtered or unfiltered budgeted search, appending into
// dst, accumulating the query's resource cost into co, and recording
// spans into tr. Each of f, co, and tr may independently be nil — a nil
// filter matches everything, a nil cost skips accounting, a nil trace
// skips spans — and the all-nil call is exactly SearchBudgetInto, so
// the steady-state path stays allocation-free. A non-positive lambda
// selects the facade's default budget.
type CostSearcher interface {
	SearchCostInto(q []float32, k, lambda int, f *Filter, dst []Neighbor, co *Cost, tr *Trace) ([]Neighbor, error)
}

// Compile-time conformance of the three facades (DurableIndex embeds
// DynamicIndex and inherits its traced and metered paths).
var (
	_ TracedSearcher = (*Index)(nil)
	_ TracedSearcher = (*ShardedIndex)(nil)
	_ TracedSearcher = (*DynamicIndex)(nil)
	_ CostSearcher   = (*Index)(nil)
	_ CostSearcher   = (*ShardedIndex)(nil)
	_ CostSearcher   = (*DynamicIndex)(nil)
)

// Typed query-validation errors. Every facade returns exactly these (or
// wrapped forms testable with errors.Is) for the corresponding invalid
// input instead of silently returning an empty result.
var (
	// ErrInvalidK is returned when k ≤ 0.
	ErrInvalidK = errors.New("lccs: k must be positive")
	// ErrInvalidBudget is returned when the candidate budget λ ≤ 0.
	ErrInvalidBudget = errors.New("lccs: candidate budget must be positive")
	// ErrEmptyQuery is returned for a nil or zero-length query vector.
	ErrEmptyQuery = errors.New("lccs: nil or empty query")
	// ErrEmptyVector is returned by write paths (DynamicIndex.Add) for a
	// nil or zero-length vector.
	ErrEmptyVector = errors.New("lccs: nil or empty vector")
	// ErrDimensionMismatch is returned when the query dimensionality does
	// not match the indexed data.
	ErrDimensionMismatch = errors.New("lccs: query dimension mismatch")
)

// Searcher is the facade-agnostic query interface implemented by Index,
// ShardedIndex, and DynamicIndex. Consumers that only search — the
// network server, evaluation harnesses, future backends — should accept
// a Searcher rather than a concrete facade.
//
// All search methods validate their input and return the package's
// typed errors (ErrInvalidK, ErrInvalidBudget, ErrEmptyQuery,
// ErrDimensionMismatch); results are in ascending distance order.
type Searcher interface {
	// Search returns the k nearest neighbors under the facade's default
	// candidate budget.
	Search(q []float32, k int) ([]Neighbor, error)
	// SearchBudget is Search with an explicit candidate budget λ.
	SearchBudget(q []float32, k, lambda int) ([]Neighbor, error)
	// SearchInto is Search appending into dst (reset to dst[:0] first):
	// the zero-allocation steady-state path for callers that reuse a
	// result buffer across queries. dst may be nil.
	SearchInto(q []float32, k int, dst []Neighbor) ([]Neighbor, error)
	// SearchBudgetInto is SearchBudget appending into dst.
	SearchBudgetInto(q []float32, k, lambda int, dst []Neighbor) ([]Neighbor, error)
	// SearchBatch answers many queries (concurrently where the facade
	// supports it) under the default budget, in query order.
	SearchBatch(queries [][]float32, k int) ([][]Neighbor, error)
	// SearchBatchBudget is SearchBatch with an explicit budget λ.
	SearchBatchBudget(queries [][]float32, k, lambda int) ([][]Neighbor, error)
	// Len returns the number of searchable vectors.
	Len() int
	// Distance returns the facade's metric distance between two vectors.
	Distance(a, b []float32) float64
}

// Compile-time conformance of the three facades.
var (
	_ Searcher = (*Index)(nil)
	_ Searcher = (*ShardedIndex)(nil)
	_ Searcher = (*DynamicIndex)(nil)
)

// validateQuery applies the shared query contract: positive k and
// budget, a non-empty query, and (when dim > 0 is known) a matching
// dimensionality.
func validateQuery(q []float32, dim, k, lambda int) error {
	if k <= 0 {
		return ErrInvalidK
	}
	if lambda <= 0 {
		return ErrInvalidBudget
	}
	if len(q) == 0 {
		return ErrEmptyQuery
	}
	if dim > 0 && len(q) != dim {
		return fmt.Errorf("%w: query has %d dimensions, index has %d", ErrDimensionMismatch, len(q), dim)
	}
	return nil
}

// ParseMetric resolves a CLI-style metric name to a MetricKind. It
// accepts the canonical names of all four supported metrics plus common
// aliases: euclidean/l2, angular/cosine, hamming, jaccard/minhash.
func ParseMetric(name string) (MetricKind, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "euclidean", "l2":
		return Euclidean, nil
	case "angular", "cosine":
		return Angular, nil
	case "hamming":
		return Hamming, nil
	case "jaccard", "minhash":
		return Jaccard, nil
	}
	return "", fmt.Errorf("lccs: unknown metric %q (want euclidean|angular|hamming|jaccard)", name)
}

// MetricKind selects the distance metric (and with it the default LSH
// family) of an index.
type MetricKind string

// Supported metrics and their LSH families.
const (
	// Euclidean uses the p-stable random-projection family of Datar et
	// al. (Eq. 1 of the paper).
	Euclidean MetricKind = "euclidean"
	// Angular uses the cross-polytope family of Andoni et al. (Eq. 3)
	// with fast pseudo-random rotations; vectors are compared by angle.
	Angular MetricKind = "angular"
	// Hamming uses the bit-sampling family of Indyk–Motwani; vectors
	// must hold integral 0/1 coordinates.
	Hamming MetricKind = "hamming"
	// Jaccard uses the MinHash family of Broder; vectors are binary
	// indicator encodings of sets (coordinate j nonzero ⇔ j ∈ set).
	Jaccard MetricKind = "jaccard"
)

// QuantizeSQ8 selects the per-dimension affine int8 scalar quantization
// for Config.Quantize: candidate verification scans one byte per
// dimension instead of four, and the best Rerank candidates are
// re-ranked with exact float32 distances, so returned distances are
// always exact.
const QuantizeSQ8 = "sq8"

// Config configures an index.
type Config struct {
	// Metric selects the distance metric. Required.
	Metric MetricKind
	// M is the hash-string length, the scheme's single capacity
	// parameter: larger m raises recall per candidate at the cost of
	// memory (3·4·n·m bytes) and per-query hashing. 0 selects 64.
	M int
	// Probes enables multi-probe querying (MP-LCCS-LSH) when > 1: each
	// query additionally explores Probes−1 perturbed hash strings,
	// recovering recall on smaller indexes. 0 or 1 selects single-probe.
	Probes int
	// BucketWidth is the w of the Euclidean family (Eq. 1). 0 derives it
	// from a sample of the data (twice the median 10-NN distance of a
	// small sample), mirroring how the paper fine-tunes w per dataset.
	BucketWidth float64
	// Budget is the default per-query candidate budget λ used by Search.
	// 0 selects 100.
	Budget int
	// Seed makes index construction deterministic.
	Seed uint64
	// Quantize selects an optional compressed mirror of the vector store
	// scanned during candidate verification. "" (the default) verifies
	// against the exact float32 store; QuantizeSQ8 scans a per-dimension
	// affine int8 quantization — a quarter of the memory traffic — and
	// restores exactness by re-ranking the best Rerank candidates with
	// float32 distances. Supported for Euclidean and Angular metrics.
	Quantize string
	// Rerank is the number of quantized-scan survivors re-ranked with
	// exact distances per query when Quantize is set. 0 selects
	// min(64, n), raised to the query's k at query time; larger values
	// recover recall lost to quantization noise at the cut line.
	Rerank int
}

// Neighbor is one search result: the index of a data vector and its
// distance to the query under the index's metric.
type Neighbor struct {
	// ID indexes into the data slice the index was built from.
	ID int
	// Dist is the exact (verified) distance to the query.
	Dist float64
}

// Index is an LCCS-LSH index over a fixed dataset. It is safe for
// concurrent queries. The vectors are packed once into a flat
// structure-of-arrays store (one contiguous float32 block) that the
// index retains; the input rows are not referenced afterwards.
type Index struct {
	single *core.Index
	multi  *core.MPIndex
	metric vec.Metric
	budget int
	dim    int
	// cfg is the fully resolved configuration (auto-derived bucket width
	// filled in), persisted by Save.
	cfg Config
	// attrs holds the optional per-vector metadata, slot-aligned with
	// the vector store; nil when no vector carries attributes.
	attrs *vec.MetaStore
	// raw pools the core-typed result buffers behind the Into variants,
	// so converting to the public Neighbor type allocates nothing at
	// steady state.
	raw sync.Pool
}

// rawBuf is the pooled core-result buffer of the facade conversion.
type rawBuf struct{ buf []pqueue.Neighbor }

// getRaw fetches a pooled core-result buffer.
func (ix *Index) getRaw() *rawBuf { return ix.raw.Get().(*rawBuf) }

const (
	defaultM      = 64
	defaultBudget = 100
)

// resolveConfig fills a Config's derived fields against a dataset:
// defaults for M and Budget, and the auto-derived Euclidean bucket width.
// It is idempotent, so an already resolved Config passes through
// unchanged — which is how every shard of a ShardedIndex ends up with the
// exact same (seed-equivalent) configuration.
func resolveConfig(store *vec.Store, cfg Config) (Config, error) {
	if store.Len() == 0 {
		return cfg, errors.New("lccs: empty dataset")
	}
	if store.Dim() == 0 {
		return cfg, errors.New("lccs: zero-dimensional data")
	}
	if cfg.M == 0 {
		cfg.M = defaultM
	}
	if cfg.Budget == 0 {
		cfg.Budget = defaultBudget
	}
	if err := validateConfig(cfg); err != nil {
		return cfg, err
	}
	if cfg.Metric == Euclidean && cfg.BucketWidth == 0 {
		cfg.BucketWidth = autoBucketWidth(store, cfg.Seed)
	}
	return cfg, nil
}

// storeFromRows packs public row-slice input into a flat store,
// translating the validation error into this package's voice.
func storeFromRows(rows [][]float32) (*vec.Store, error) {
	store, err := vec.FromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("lccs: %w", err)
	}
	return store, nil
}

// validateConfig checks a Config without a dataset: value ranges and
// metric resolvability. It is the single source of truth shared by
// resolveConfig and the empty-start dynamic path, where no build runs
// yet. A zero Euclidean bucket width is acceptable here — it is
// auto-derived when the first build sees data.
func validateConfig(cfg Config) error {
	if cfg.M < 0 || cfg.Probes < 0 || cfg.Budget < 0 || cfg.BucketWidth < 0 || cfg.Rerank < 0 {
		return errors.New("lccs: negative configuration value")
	}
	switch cfg.Quantize {
	case "":
	case QuantizeSQ8:
		if cfg.Metric != Euclidean && cfg.Metric != Angular {
			return fmt.Errorf("lccs: quantize %q supports euclidean and angular metrics, got %q", cfg.Quantize, cfg.Metric)
		}
	default:
		return fmt.Errorf("lccs: unknown quantization %q (want %q)", cfg.Quantize, QuantizeSQ8)
	}
	if cfg.Metric == Euclidean && cfg.BucketWidth == 0 {
		cfg.BucketWidth = 1 // resolvability check only; derived at build time
	}
	_, err := familyFor(cfg, 1)
	return err
}

// NewIndex builds an LCCS-LSH index over data. The rows are packed once
// into a flat vector store; data itself is not retained.
func NewIndex(data [][]float32, cfg Config) (*Index, error) {
	store, err := storeFromRows(data)
	if err != nil {
		return nil, err
	}
	cfg, err = resolveConfig(store, cfg)
	if err != nil {
		return nil, err
	}
	return newIndexFromStore(store, cfg)
}

// newIndexFromStore builds the facade index over a flat store with an
// already resolved configuration — the shared constructor behind
// NewIndex, the sharded per-shard builds, and the dynamic delta builds.
func newIndexFromStore(store *vec.Store, cfg Config) (*Index, error) {
	family, err := familyFor(cfg, store.Dim())
	if err != nil {
		return nil, err
	}
	ix := &Index{metric: family.Metric(), budget: cfg.Budget, dim: store.Dim(), cfg: cfg}
	ix.raw.New = func() any { return new(rawBuf) }
	if cfg.Probes > 1 {
		mp, err := core.BuildMPStore(store, family, core.MPParams{
			Params: core.Params{M: cfg.M, Seed: cfg.Seed},
			Probes: cfg.Probes,
		})
		if err != nil {
			return nil, err
		}
		ix.multi = mp
		ix.single = mp.Index
	} else {
		s, err := core.BuildStore(store, family, core.Params{M: cfg.M, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		ix.single = s
	}
	if cfg.Quantize == QuantizeSQ8 {
		// Quantize exactly the rows this index covers: for a sharded build
		// the store is already the shard's view, so codebooks are
		// per-shard. ix.multi shares ix.single, so both paths see it.
		ix.single.EnableSQ8(vec.QuantizeSQ8(store), cfg.Rerank)
	}
	return ix, nil
}

// autoBucketWidth estimates a bucket width from the data: twice the median
// distance from a sampled point to its nearest neighbor within a small
// sample, which places true near neighbors in the high-collision regime of
// Eq. 2.
func autoBucketWidth(store *vec.Store, seed uint64) float64 {
	g := rng.New(seed ^ 0xB0C4E7)
	const samples = 64
	const pool = 512
	n := store.Len()
	dists := make([]float64, 0, samples)
	for s := 0; s < samples; s++ {
		a := store.Row(g.IntN(n))
		best := -1.0
		for t := 0; t < pool && t < n; t++ {
			b := store.Row(g.IntN(n))
			d := vec.Distance(a, b)
			if d == 0 {
				continue
			}
			if best < 0 || d < best {
				best = d
			}
		}
		if best > 0 {
			dists = append(dists, best)
		}
	}
	if len(dists) == 0 {
		return 1
	}
	sort.Float64s(dists)
	w := 2 * dists[len(dists)/2]
	if w <= 0 {
		return 1
	}
	return w
}

// Search returns the k nearest neighbors of q found within the index's
// default candidate budget, in ascending distance order.
func (ix *Index) Search(q []float32, k int) ([]Neighbor, error) {
	return ix.SearchBudget(q, k, ix.budget)
}

// SearchBudget is Search with an explicit candidate budget λ: the query
// verifies the λ+k−1 data objects whose hash strings have the longest
// circular co-substring with the query's. Larger budgets trade query time
// for recall.
func (ix *Index) SearchBudget(q []float32, k, lambda int) ([]Neighbor, error) {
	return ix.SearchBudgetInto(q, k, lambda, nil)
}

// SearchInto is Search appending into dst (reset to dst[:0] first): with
// a reused dst, a steady-state query performs no heap allocations.
func (ix *Index) SearchInto(q []float32, k int, dst []Neighbor) ([]Neighbor, error) {
	return ix.SearchBudgetInto(q, k, ix.budget, dst)
}

// SearchBudgetInto is SearchBudget appending into dst (reset to
// dst[:0] first). dst may be nil.
func (ix *Index) SearchBudgetInto(q []float32, k, lambda int, dst []Neighbor) ([]Neighbor, error) {
	if err := validateQuery(q, ix.dim, k, lambda); err != nil {
		return nil, err
	}
	rb := ix.getRaw()
	if ix.multi != nil {
		rb.buf = ix.multi.SearchInto(q, k, lambda, rb.buf)
	} else {
		rb.buf = ix.single.SearchInto(q, k, lambda, rb.buf)
	}
	if dst == nil {
		// The plain Search path: one exactly-sized result allocation.
		dst = make([]Neighbor, 0, len(rb.buf))
	}
	dst = appendNeighbors(dst[:0], rb.buf)
	ix.raw.Put(rb)
	return dst, nil
}

// SearchBudgetIntoTraced is SearchBudgetInto recording spans into tr:
// one shard_scan span (an unsharded index is its own single shard)
// with the CSA comparison and verified-candidate counters, under a
// query root span. A nil tr selects the untraced path unchanged; a
// non-positive lambda selects the default budget.
func (ix *Index) SearchBudgetIntoTraced(q []float32, k, lambda int, dst []Neighbor, tr *Trace) ([]Neighbor, error) {
	return ix.SearchCostInto(q, k, lambda, nil, dst, nil, tr)
}

// SearchCostInto is the unified metered query path: filtered when f is
// non-empty, cost-accounted when co is non-nil, span-traced when tr is
// non-nil, and exactly SearchBudgetInto when all three are nil. A
// non-positive lambda selects the default budget.
func (ix *Index) SearchCostInto(q []float32, k, lambda int, f *Filter, dst []Neighbor, co *Cost, tr *Trace) ([]Neighbor, error) {
	if lambda <= 0 {
		lambda = ix.budget
	}
	if !f.Empty() {
		if err := validateFilter(f); err != nil {
			return nil, err
		}
	}
	if err := validateQuery(q, ix.dim, k, lambda); err != nil {
		return nil, err
	}
	root := tr.StartSpan(obs.StageQuery, -1)
	sp := tr.StartShardSpan(obs.StageShardScan, root, 0)
	rb := ix.getRaw()
	var stats core.SearchStats
	switch {
	case !f.Empty():
		attrs := ix.attrs
		accept := func(id int) bool { return f.Matches(attrs.Row(id)) }
		if ix.multi != nil {
			rb.buf, stats = ix.multi.SearchFilterOffsetIntoStats(q, k, lambda, 0, accept, rb.buf)
		} else {
			rb.buf, stats = ix.single.SearchFilterOffsetIntoStats(q, k, lambda, 0, accept, rb.buf)
		}
	case ix.multi != nil:
		rb.buf, stats = ix.multi.SearchOffsetIntoStats(q, k, lambda, 0, rb.buf)
	default:
		rb.buf, stats = ix.single.SearchOffsetIntoStats(q, k, lambda, 0, rb.buf)
	}
	if tr != nil {
		obs.ObserveDur(obs.StageShardScan, tr.FinishSpanCost(sp, int64(stats.Comparisons), int64(stats.Candidates), stats.BytesScanned))
	}
	co.addStats(stats)
	if dst == nil {
		dst = make([]Neighbor, 0, len(rb.buf))
	}
	dst = appendNeighbors(dst[:0], rb.buf)
	ix.raw.Put(rb)
	if tr != nil {
		obs.ObserveDur(obs.StageQuery, tr.FinishSpan(root))
	}
	return dst, nil
}

// appendNeighbors converts core results to the public Neighbor type,
// appending into dst without allocating when dst has capacity.
func appendNeighbors(dst []Neighbor, raw []pqueue.Neighbor) []Neighbor {
	for _, r := range raw {
		dst = append(dst, Neighbor{ID: r.ID, Dist: r.Dist})
	}
	return dst
}

// Distance returns the index's metric distance between two vectors.
func (ix *Index) Distance(a, b []float32) float64 { return ix.metric.Distance(a, b) }

// M returns the hash-string length.
func (ix *Index) M() int { return ix.single.M() }

// Dim returns the dimensionality of the indexed vectors.
func (ix *Index) Dim() int { return ix.dim }

// Len returns the number of indexed vectors.
func (ix *Index) Len() int { return ix.single.N() }

// Bytes returns the approximate index memory footprint.
func (ix *Index) Bytes() int64 { return ix.single.Bytes() }

// Quantization reports the scan-time compression in effect ("" = none,
// QuantizeSQ8) and the effective per-query re-rank depth (0 when
// unquantized).
func (ix *Index) Quantization() (kind string, rerank int) {
	if ix.single.SQ8() == nil {
		return "", 0
	}
	return ix.cfg.Quantize, ix.single.Rerank()
}

// BuildTime returns the wall-clock time spent building the index.
func (ix *Index) BuildTime() time.Duration { return ix.single.BuildTime() }
