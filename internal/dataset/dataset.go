// Package dataset provides the evaluation workloads. The paper (Table 2)
// uses five real ~1M-point datasets — Msong (audio, 420d), Sift (image,
// 128d), Gist (image, 960d), GloVe (text, 100d), and Deep (CNN codes,
// 256d). Those files are not redistributable nor available offline, so
// this package generates *synthetic analogues*: clustered Gaussian
// mixtures matching each dataset's dimensionality and value profile
// (non-negative quantized for Sift, unit-norm for GloVe/Deep), scaled to
// laptop-sized n. Queries are held-out draws from the same mixture, as in
// the paper (queries are sampled from each dataset's test set).
//
// LSH method behaviour is driven by the distribution of query-to-near- and
// query-to-far-point distances, which the mixtures reproduce, so the
// relative standing of methods — the paper's claim — is preserved even
// though absolute numbers are not comparable to the authors' testbed.
package dataset

import (
	"fmt"
	"sort"

	"lccs/internal/rng"
	"lccs/internal/vec"
)

// Spec describes a synthetic dataset to generate.
type Spec struct {
	// Name labels the dataset ("sift", "glove", ...).
	Name string
	// Kind is the data type label of Table 2 ("Audio", "Image", ...).
	Kind string
	// Dim is the dimensionality.
	Dim int
	// N and NQ are the numbers of data and query points.
	N, NQ int
	// Clusters is the number of mixture components.
	Clusters int
	// Scale is the half-width of the cube cluster centers are drawn
	// from.
	Scale float64
	// Spread is the within-cluster standard deviation.
	Spread float64
	// NoiseFrac is the fraction of points drawn uniformly instead of
	// from a cluster (background noise).
	NoiseFrac float64
	// NonNegative shifts/clips values to be ≥ 0 (Sift-style features).
	NonNegative bool
	// Quantize rounds values to integers (Sift features are bytes).
	Quantize bool
	// UnitNorm L2-normalizes every vector (GloVe/Deep-style embeddings).
	UnitNorm bool
	// Seed drives generation.
	Seed uint64
}

// Validate reports whether the spec is generable.
func (s Spec) Validate() error {
	if s.Dim <= 0 || s.N <= 0 || s.NQ < 0 || s.Clusters <= 0 {
		return fmt.Errorf("dataset: bad spec %+v", s)
	}
	if s.Scale <= 0 || s.Spread <= 0 || s.NoiseFrac < 0 || s.NoiseFrac > 1 {
		return fmt.Errorf("dataset: bad spec %+v", s)
	}
	return nil
}

// Dataset is a generated (or loaded) workload: data points plus held-out
// queries.
type Dataset struct {
	Name    string
	Kind    string
	Dim     int
	Data    [][]float32
	Queries [][]float32
	// flat, when set, owns the contiguous block Data rows are views of
	// (Load and NewFlat populate it). Consumers that want the flat form —
	// index loaders, bulk savers — take it through FlatData instead of
	// re-packing Data row by row.
	flat *vec.Store
}

// NewFlat builds a Dataset over an already-flat vector store: Data rows
// are views into store, nothing is copied. The snapshot path of the
// durable layer uses it to persist a frozen store without materializing
// per-row copies.
func NewFlat(name, kind string, store *vec.Store, queries [][]float32) *Dataset {
	return &Dataset{
		Name:    name,
		Kind:    kind,
		Dim:     store.Dim(),
		Data:    store.Rows(),
		Queries: queries,
		flat:    store,
	}
}

// FlatData returns the data points as a flat store without copying when
// the dataset is flat-backed (Load, NewFlat); otherwise it packs Data
// once. The returned store must be treated as read-only.
func (d *Dataset) FlatData() (*vec.Store, error) {
	if d.flat != nil {
		return d.flat, nil
	}
	return vec.FromRows(d.Data)
}

// Generate builds the dataset described by s.
func Generate(s Spec) (*Dataset, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := rng.New(s.Seed)
	centers := make([][]float32, s.Clusters)
	for i := range centers {
		centers[i] = g.UniformVector(s.Dim, -s.Scale, s.Scale)
	}
	gen := func(n int, g *rng.RNG) [][]float32 {
		out := make([][]float32, n)
		for i := range out {
			v := make([]float32, s.Dim)
			if g.Float64() < s.NoiseFrac {
				copy(v, g.UniformVector(s.Dim, -s.Scale, s.Scale))
			} else {
				c := centers[g.IntN(s.Clusters)]
				for j := range v {
					v[j] = c[j] + float32(g.NormFloat64()*s.Spread)
				}
			}
			finish(v, s)
			out[i] = v
		}
		return out
	}
	ds := &Dataset{
		Name:    s.Name,
		Kind:    s.Kind,
		Dim:     s.Dim,
		Data:    gen(s.N, g.Split()),
		Queries: gen(s.NQ, g.Split()),
	}
	return ds, nil
}

// finish applies the per-dataset value profile to one vector.
func finish(v []float32, s Spec) {
	if s.NonNegative {
		for j := range v {
			if v[j] < 0 {
				v[j] = -v[j]
			}
		}
	}
	if s.Quantize {
		for j := range v {
			v[j] = float32(int32(v[j]))
		}
	}
	if s.UnitNorm {
		vec.NormalizeInPlace(v)
	}
}

// SizeBytes returns the raw data size (Table 2's "Data Size" column).
func (d *Dataset) SizeBytes() int64 {
	return int64(len(d.Data)) * int64(d.Dim) * 4
}

// NormalizedCopy returns a copy of the dataset with every data point and
// query scaled to unit norm, as used by the Angular-distance experiments.
func (d *Dataset) NormalizedCopy() *Dataset {
	cp := &Dataset{Name: d.Name, Kind: d.Kind, Dim: d.Dim}
	cp.Data = make([][]float32, len(d.Data))
	for i, v := range d.Data {
		cp.Data[i] = vec.Normalize(v)
	}
	cp.Queries = make([][]float32, len(d.Queries))
	for i, v := range d.Queries {
		cp.Queries[i] = vec.Normalize(v)
	}
	return cp
}

// Preset returns the synthetic-analogue spec for one of the paper's five
// datasets (Table 2), scaled to n data points and nq queries. Known names:
// msong, sift, gist, glove, deep.
func Preset(name string, n, nq int, seed uint64) (Spec, error) {
	base := Spec{Name: name, N: n, NQ: nq, Seed: seed, NoiseFrac: 0.02}
	switch name {
	case "msong":
		// Audio features: wide dynamic range, moderately clustered.
		base.Kind, base.Dim = "Audio", 420
		base.Clusters, base.Scale, base.Spread = 64, 100, 12
	case "sift":
		// SIFT descriptors: non-negative small integers, strongly
		// clustered.
		base.Kind, base.Dim = "Image", 128
		base.Clusters, base.Scale, base.Spread = 128, 128, 24
		base.NonNegative, base.Quantize = true, true
	case "gist":
		// GIST: dense global image descriptors in [0,1]-ish range.
		base.Kind, base.Dim = "Image", 960
		base.Clusters, base.Scale, base.Spread = 48, 0.5, 0.08
		base.NonNegative = true
	case "glove":
		// Word embeddings: directions matter; roughly unit norm.
		base.Kind, base.Dim = "Text", 100
		base.Clusters, base.Scale, base.Spread = 256, 1, 0.25
		base.UnitNorm = true
	case "deep":
		// CNN codes: L2-normalized deep descriptors.
		base.Kind, base.Dim = "Deep", 256
		base.Clusters, base.Scale, base.Spread = 96, 1, 0.18
		base.UnitNorm = true
	default:
		return Spec{}, fmt.Errorf("dataset: unknown preset %q", name)
	}
	return base, nil
}

// PresetNames returns the five dataset names in the paper's Table 2 order.
func PresetNames() []string {
	return []string{"msong", "sift", "gist", "glove", "deep"}
}

// Stats is one row of Table 2.
type Stats struct {
	Name      string
	Objects   int
	Queries   int
	Dim       int
	SizeBytes int64
	Kind      string
}

// TableStats returns the dataset's Table 2 row.
func (d *Dataset) TableStats() Stats {
	return Stats{
		Name:      d.Name,
		Objects:   len(d.Data),
		Queries:   len(d.Queries),
		Dim:       d.Dim,
		SizeBytes: d.SizeBytes(),
		Kind:      d.Kind,
	}
}

// DistanceProfile summarizes the distance distribution from queries to
// data (used by bucket-width tuning and by tests that validate the
// mixtures have near/far structure): the 1st, 10th, 50th percentiles of
// per-query k-th NN distance and the median all-pairs distance sample.
type DistanceProfile struct {
	NearMedian float64 // median distance to the 10th NN over queries
	FarMedian  float64 // median distance to a random point
}

// Profile computes a DistanceProfile under the given metric using a
// sample of at most sampleQ queries. The near statistic is each sampled
// query's exact 10th-NN distance over the full dataset (one linear scan
// per sampled query); the far statistic is the median distance to a
// random data point.
func (d *Dataset) Profile(metric vec.Metric, sampleQ int) DistanceProfile {
	g := rng.New(0xD15)
	if sampleQ > len(d.Queries) {
		sampleQ = len(d.Queries)
	}
	var near, far []float64
	for qi := 0; qi < sampleQ; qi++ {
		q := d.Queries[qi]
		// Exact 10th-NN distance via one scan keeping the 10 smallest.
		kth := 10
		if kth > len(d.Data) {
			kth = len(d.Data)
		}
		smallest := make([]float64, 0, kth)
		for _, v := range d.Data {
			dist := metric.Distance(v, q)
			if len(smallest) < kth {
				smallest = append(smallest, dist)
				sort.Float64s(smallest)
			} else if dist < smallest[kth-1] {
				smallest[kth-1] = dist
				sort.Float64s(smallest)
			}
		}
		near = append(near, smallest[len(smallest)-1])
		// Median random distance via a small sample.
		rnd := make([]float64, 0, 64)
		for t := 0; t < 64; t++ {
			rnd = append(rnd, metric.Distance(d.Data[g.IntN(len(d.Data))], q))
		}
		sort.Float64s(rnd)
		far = append(far, rnd[len(rnd)/2])
	}
	sort.Float64s(near)
	sort.Float64s(far)
	return DistanceProfile{
		NearMedian: near[len(near)/2],
		FarMedian:  far[len(far)/2],
	}
}
