package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"lccs/internal/pqueue"
	"lccs/internal/vec"
)

// magic headers versioning the two on-disk formats.
var (
	datasetMagic = [8]byte{'L', 'C', 'C', 'S', 'D', 'S', '1', '\n'}
	truthMagic   = [8]byte{'L', 'C', 'C', 'S', 'G', 'T', '1', '\n'}
)

// Save writes the dataset to path in the repository's little-endian binary
// format (header, then data vectors, then query vectors, all float32).
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := d.encode(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (d *Dataset) encode(w io.Writer) error {
	if _, err := w.Write(datasetMagic[:]); err != nil {
		return err
	}
	if err := writeString(w, d.Name); err != nil {
		return err
	}
	if err := writeString(w, d.Kind); err != nil {
		return err
	}
	hdr := []int32{int32(d.Dim), int32(len(d.Data)), int32(len(d.Queries))}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if d.flat != nil && d.flat.Len() == len(d.Data) {
		// Flat-backed data writes as one block — byte-identical to the
		// row loop, without a reflection pass per row.
		if err := binary.Write(w, binary.LittleEndian, d.flat.Block()); err != nil {
			return err
		}
	} else {
		for _, v := range d.Data {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	for _, v := range d.Queries {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a dataset written by Save.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decode(bufio.NewReaderSize(f, 1<<20))
}

func decode(r io.Reader) (*Dataset, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != datasetMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	name, err := readString(r)
	if err != nil {
		return nil, err
	}
	kind, err := readString(r)
	if err != nil {
		return nil, err
	}
	var hdr [3]int32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	dim, n, nq := int(hdr[0]), int(hdr[1]), int(hdr[2])
	if dim <= 0 || n < 0 || nq < 0 {
		return nil, fmt.Errorf("dataset: corrupt header dim=%d n=%d nq=%d", dim, n, nq)
	}
	readVecs := func(count int) ([][]float32, error) {
		// Grow incrementally: a corrupt header claiming a huge count
		// fails on the stream's real end instead of committing a giant
		// allocation up front.
		out := make([][]float32, 0, min(count, 1024))
		for i := 0; i < count; i++ {
			v := make([]float32, dim)
			if err := binary.Read(r, binary.LittleEndian, v); err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	// Data points land in one flat block (read in bounded chunks, so a
	// corrupt count still fails at the stream's real end rather than
	// committing a giant up-front allocation); Data rows are views into
	// it, and FlatData hands the block to index loaders copy-free.
	const chunkRows = 8192
	flatBlock := make([]float32, 0, min(n, chunkRows)*dim)
	for remaining := n; remaining > 0; {
		c := min(remaining, chunkRows)
		start := len(flatBlock)
		flatBlock = append(flatBlock, make([]float32, c*dim)...)
		if err := binary.Read(r, binary.LittleEndian, flatBlock[start:]); err != nil {
			return nil, err
		}
		remaining -= c
	}
	flat, err := vec.FromBlock(dim, flatBlock)
	if err != nil {
		return nil, err
	}
	d := &Dataset{Name: name, Kind: kind, Dim: dim, Data: flat.Rows(), flat: flat}
	if d.Queries, err = readVecs(nq); err != nil {
		return nil, err
	}
	return d, nil
}

// GroundTruth holds the exact k-NN of every query.
type GroundTruth struct {
	K         int
	Neighbors [][]pqueue.Neighbor // one slice of K per query
}

// SaveTruth writes ground truth to path.
func (gt *GroundTruth) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.Write(truthMagic[:]); err != nil {
		f.Close()
		return err
	}
	hdr := []int32{int32(gt.K), int32(len(gt.Neighbors))}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		f.Close()
		return err
	}
	for _, nn := range gt.Neighbors {
		if len(nn) != gt.K {
			f.Close()
			return fmt.Errorf("dataset: ground truth row has %d entries, want %d", len(nn), gt.K)
		}
		for _, e := range nn {
			if err := binary.Write(w, binary.LittleEndian, int32(e.ID)); err != nil {
				f.Close()
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, e.Dist); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTruth reads ground truth written by SaveTruth.
func LoadTruth(path string) (*GroundTruth, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != truthMagic {
		return nil, fmt.Errorf("dataset: bad truth magic %q", magic)
	}
	var hdr [2]int32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	k, nq := int(hdr[0]), int(hdr[1])
	if k <= 0 || nq < 0 {
		return nil, fmt.Errorf("dataset: corrupt truth header k=%d nq=%d", k, nq)
	}
	gt := &GroundTruth{K: k, Neighbors: make([][]pqueue.Neighbor, nq)}
	for i := range gt.Neighbors {
		row := make([]pqueue.Neighbor, k)
		for j := range row {
			var id int32
			if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
				return nil, err
			}
			var dist float64
			if err := binary.Read(r, binary.LittleEndian, &dist); err != nil {
				return nil, err
			}
			row[j] = pqueue.Neighbor{ID: int(id), Dist: dist}
		}
		gt.Neighbors[i] = row
	}
	return gt, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, int32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n int32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n < 0 || n > 1<<20 {
		return "", fmt.Errorf("dataset: corrupt string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
