package dataset

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"lccs/internal/pqueue"
	"lccs/internal/vec"
)

func TestGenerateBasics(t *testing.T) {
	spec, err := Preset("sift", 500, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Data) != 500 || len(ds.Queries) != 20 || ds.Dim != 128 {
		t.Fatalf("shape wrong: %d/%d/%d", len(ds.Data), len(ds.Queries), ds.Dim)
	}
	if ds.SizeBytes() != 500*128*4 {
		t.Fatalf("SizeBytes = %d", ds.SizeBytes())
	}
	st := ds.TableStats()
	if st.Name != "sift" || st.Kind != "Image" || st.Objects != 500 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := Preset("glove", 100, 5, 42)
	a, _ := Generate(spec)
	b, _ := Generate(spec)
	for i := range a.Data {
		if !vec.Equal(a.Data[i], b.Data[i]) {
			t.Fatal("same seed produced different data")
		}
	}
	spec.Seed = 43
	c, _ := Generate(spec)
	if vec.Equal(a.Data[0], c.Data[0]) {
		t.Fatal("different seed produced identical data")
	}
}

func TestValueProfiles(t *testing.T) {
	// Sift analogue: non-negative integers.
	spec, _ := Preset("sift", 200, 5, 2)
	ds, _ := Generate(spec)
	for _, v := range ds.Data {
		for _, x := range v {
			if x < 0 || x != float32(int32(x)) {
				t.Fatalf("sift value %v not a non-negative integer", x)
			}
		}
	}
	// GloVe analogue: unit norm.
	spec, _ = Preset("glove", 200, 5, 2)
	ds, _ = Generate(spec)
	for _, v := range ds.Data {
		if math.Abs(vec.Norm(v)-1) > 1e-5 {
			t.Fatalf("glove norm %v != 1", vec.Norm(v))
		}
	}
	// Gist analogue: non-negative floats.
	spec, _ = Preset("gist", 50, 2, 2)
	ds, _ = Generate(spec)
	for _, v := range ds.Data {
		for _, x := range v {
			if x < 0 {
				t.Fatalf("gist value %v negative", x)
			}
		}
	}
}

func TestAllPresetsGenerate(t *testing.T) {
	wantDims := map[string]int{"msong": 420, "sift": 128, "gist": 960, "glove": 100, "deep": 256}
	for _, name := range PresetNames() {
		spec, err := Preset(name, 100, 10, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ds, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Dim != wantDims[name] {
			t.Fatalf("%s: dim %d, want %d", name, ds.Dim, wantDims[name])
		}
	}
	if _, err := Preset("imagenet", 10, 1, 1); err == nil {
		t.Fatal("unknown preset should fail")
	}
}

func TestClusteredStructure(t *testing.T) {
	// The mixture must produce near/far structure: a query's 10-NN
	// distance must be clearly below the median random distance.
	spec, _ := Preset("deep", 2000, 20, 4)
	ds, _ := Generate(spec)
	p := ds.Profile(vec.Euclidean, 10)
	if p.NearMedian >= p.FarMedian {
		t.Fatalf("no near/far separation: near %v far %v", p.NearMedian, p.FarMedian)
	}
}

func TestNormalizedCopy(t *testing.T) {
	spec, _ := Preset("msong", 50, 5, 5)
	ds, _ := Generate(spec)
	nc := ds.NormalizedCopy()
	for _, v := range nc.Data {
		if math.Abs(vec.Norm(v)-1) > 1e-5 {
			t.Fatal("normalized copy not unit norm")
		}
	}
	// Original untouched.
	if math.Abs(vec.Norm(ds.Data[0])-1) < 1e-3 {
		t.Fatal("original mutated (or suspiciously unit norm)")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Spec{
		{Dim: 0, N: 1, Clusters: 1, Scale: 1, Spread: 1},
		{Dim: 2, N: 0, Clusters: 1, Scale: 1, Spread: 1},
		{Dim: 2, N: 1, Clusters: 0, Scale: 1, Spread: 1},
		{Dim: 2, N: 1, Clusters: 1, Scale: 0, Spread: 1},
		{Dim: 2, N: 1, Clusters: 1, Scale: 1, Spread: 0},
		{Dim: 2, N: 1, Clusters: 1, Scale: 1, Spread: 1, NoiseFrac: 1.5},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("spec %d should fail", i)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec, _ := Preset("glove", 80, 8, 6)
	ds, _ := Generate(spec)
	path := filepath.Join(dir, "glove.ds")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != ds.Name || got.Kind != ds.Kind || got.Dim != ds.Dim {
		t.Fatalf("metadata mismatch: %+v", got.TableStats())
	}
	if len(got.Data) != len(ds.Data) || len(got.Queries) != len(ds.Queries) {
		t.Fatal("shape mismatch")
	}
	for i := range ds.Data {
		if !vec.Equal(got.Data[i], ds.Data[i]) {
			t.Fatalf("data row %d differs", i)
		}
	}
	for i := range ds.Queries {
		if !vec.Equal(got.Queries[i], ds.Queries[i]) {
			t.Fatalf("query row %d differs", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.ds")
	if err := writeFile(path, []byte("not a dataset file at all")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("garbage should not load")
	}
	if _, err := Load(filepath.Join(dir, "missing.ds")); err == nil {
		t.Fatal("missing file should not load")
	}
}

func TestGroundTruthRoundTrip(t *testing.T) {
	dir := t.TempDir()
	gt := &GroundTruth{
		K: 2,
		Neighbors: [][]pqueue.Neighbor{
			{{ID: 3, Dist: 0.5}, {ID: 7, Dist: 1.25}},
			{{ID: 1, Dist: 0.0}, {ID: 2, Dist: 9.75}},
		},
	}
	path := filepath.Join(dir, "truth.gt")
	if err := gt.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTruth(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != 2 || len(got.Neighbors) != 2 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range gt.Neighbors {
		for j := range gt.Neighbors[i] {
			if got.Neighbors[i][j] != gt.Neighbors[i][j] {
				t.Fatalf("entry %d/%d differs", i, j)
			}
		}
	}
	// Ragged rows must be rejected at save time.
	bad := &GroundTruth{K: 2, Neighbors: [][]pqueue.Neighbor{{{ID: 1}}}}
	if err := bad.Save(filepath.Join(dir, "bad.gt")); err == nil {
		t.Fatal("ragged truth should fail to save")
	}
	if _, err := LoadTruth(filepath.Join(dir, "missing.gt")); err == nil {
		t.Fatal("missing truth should fail")
	}
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
