// Package kdtree implements a k-d tree with incremental (best-first)
// nearest-neighbor traversal. It is the exact index SRS uses in the
// low-dimensional projected space (the paper's SRS baseline uses a
// cover-tree/R-tree; a k-d tree provides the same incremental-kNN service
// for the dimensionalities SRS projects to, d' ∈ [4, 10]).
package kdtree

import (
	"math"
	"sort"

	"lccs/internal/pqueue"
	"lccs/internal/vec"
)

const defaultLeafSize = 16

// Tree is an immutable k-d tree over a point set.
type Tree struct {
	points [][]float32
	ids    []int32 // permutation of point indices, grouped by leaf
	nodes  []node
	dim    int
}

// node is one tree node. Leaves hold a contiguous id range; internal
// nodes split on one dimension. Every node stores its bounding box for
// best-first lower bounds.
type node struct {
	lo, hi       int32 // id range (leaves); children indices (internal)
	leaf         bool
	boxLo, boxHi []float32
}

// Build constructs a k-d tree. leafSize ≤ 0 selects the default.
func Build(points [][]float32, leafSize int) *Tree {
	if len(points) == 0 {
		panic("kdtree: no points")
	}
	if leafSize <= 0 {
		leafSize = defaultLeafSize
	}
	t := &Tree{points: points, dim: len(points[0])}
	t.ids = make([]int32, len(points))
	for i := range t.ids {
		t.ids[i] = int32(i)
	}
	t.build(0, len(points), leafSize)
	return t
}

// build recursively partitions ids[lo:hi] and returns the node index.
func (t *Tree) build(lo, hi, leafSize int) int32 {
	boxLo := make([]float32, t.dim)
	boxHi := make([]float32, t.dim)
	for d := 0; d < t.dim; d++ {
		boxLo[d], boxHi[d] = t.points[t.ids[lo]][d], t.points[t.ids[lo]][d]
	}
	for i := lo + 1; i < hi; i++ {
		p := t.points[t.ids[i]]
		for d := 0; d < t.dim; d++ {
			if p[d] < boxLo[d] {
				boxLo[d] = p[d]
			}
			if p[d] > boxHi[d] {
				boxHi[d] = p[d]
			}
		}
	}
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{boxLo: boxLo, boxHi: boxHi})
	if hi-lo <= leafSize {
		t.nodes[idx].leaf = true
		t.nodes[idx].lo, t.nodes[idx].hi = int32(lo), int32(hi)
		return idx
	}
	// Split on the widest dimension at the median.
	split := 0
	width := float32(-1)
	for d := 0; d < t.dim; d++ {
		if w := boxHi[d] - boxLo[d]; w > width {
			width = w
			split = d
		}
	}
	sub := t.ids[lo:hi]
	mid := len(sub) / 2
	sort.Slice(sub, func(a, b int) bool {
		return t.points[sub[a]][split] < t.points[sub[b]][split]
	})
	left := t.build(lo, lo+mid, leafSize)
	right := t.build(lo+mid, hi, leafSize)
	t.nodes[idx].lo, t.nodes[idx].hi = left, right
	return idx
}

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.points) }

// Bytes approximates the memory footprint of the tree structure
// (excluding the point data).
func (t *Tree) Bytes() int64 {
	return int64(len(t.ids))*4 + int64(len(t.nodes))*int64(16+8*t.dim)
}

// minDistToBox returns the squared distance from q to node nd's bounding
// box (0 if q is inside).
func (t *Tree) minDistToBox(q []float32, nd *node) float64 {
	var s float64
	for d := 0; d < t.dim; d++ {
		v := q[d]
		if v < nd.boxLo[d] {
			diff := float64(nd.boxLo[d] - v)
			s += diff * diff
		} else if v > nd.boxHi[d] {
			diff := float64(v - nd.boxHi[d])
			s += diff * diff
		}
	}
	return s
}

// item is a traversal frontier element: a node (point = -1) or a concrete
// point; key is squared distance.
type item struct {
	key   float64
	node  int32
	point int32
}

// Iterator yields indexed points in non-decreasing distance from a query.
type Iterator struct {
	t *Tree
	q []float32
	h *pqueue.Heap[item]
}

// NewIterator starts an incremental nearest-neighbor traversal from q.
func (t *Tree) NewIterator(q []float32) *Iterator {
	it := &Iterator{
		t: t,
		q: q,
		h: pqueue.NewWithCapacity[item](64, func(a, b item) bool { return a.key < b.key }),
	}
	it.h.Push(item{key: t.minDistToBox(q, &t.nodes[0]), node: 0, point: -1})
	return it
}

// Next returns the next point id in non-decreasing distance order, with
// its (non-squared) Euclidean distance. ok is false when all points have
// been yielded.
func (it *Iterator) Next() (id int, dist float64, ok bool) {
	t := it.t
	for it.h.Len() > 0 {
		e := it.h.Pop()
		if e.point >= 0 {
			// Round the root to float32 so the yielded distance equals
			// vec.Distance bit for bit (distances are float32-valued
			// throughout the repository; see internal/vec/kernel.go).
			return int(e.point), float64(float32(math.Sqrt(e.key))), true
		}
		nd := &t.nodes[e.node]
		if nd.leaf {
			for i := nd.lo; i < nd.hi; i++ {
				pid := t.ids[i]
				d2 := vec.SquaredDistance(t.points[pid], it.q)
				it.h.Push(item{key: d2, node: -1, point: pid})
			}
			continue
		}
		for _, c := range [2]int32{nd.lo, nd.hi} {
			it.h.Push(item{key: t.minDistToBox(it.q, &t.nodes[c]), node: c, point: -1})
		}
	}
	return 0, 0, false
}

// KNN returns the exact k nearest points to q in ascending distance order.
func (t *Tree) KNN(q []float32, k int) []pqueue.Neighbor {
	if k <= 0 {
		return nil
	}
	it := t.NewIterator(q)
	out := make([]pqueue.Neighbor, 0, k)
	for len(out) < k {
		id, dist, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, pqueue.Neighbor{ID: id, Dist: dist})
	}
	return out
}
