package kdtree

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"lccs/internal/vec"
)

func randPoints(r *rand.Rand, n, d int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		p := make([]float32, d)
		for j := range p {
			p[j] = float32(r.NormFloat64())
		}
		out[i] = p
	}
	return out
}

func TestKNNMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		n := 1 + r.IntN(300)
		d := 1 + r.IntN(6)
		k := 1 + r.IntN(12)
		pts := randPoints(r, n, d)
		tree := Build(pts, 1+r.IntN(20))
		q := randPoints(r, 1, d)[0]
		got := tree.KNN(q, k)
		type nd struct {
			id   int
			dist float64
		}
		all := make([]nd, n)
		for i, p := range pts {
			all[i] = nd{i, vec.Distance(p, q)}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].dist < all[b].dist })
		want := k
		if n < k {
			want = n
		}
		if len(got) != want {
			return false
		}
		for i := range got {
			// Compare distances (ids may tie).
			if diff := got[i].Dist - all[i].dist; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestIteratorYieldsAllInOrder(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 3))
	pts := randPoints(r, 200, 4)
	tree := Build(pts, 8)
	q := randPoints(r, 1, 4)[0]
	it := tree.NewIterator(q)
	var prev float64 = -1
	seen := map[int]bool{}
	for {
		id, dist, ok := it.Next()
		if !ok {
			break
		}
		if dist < prev {
			t.Fatalf("distances not non-decreasing: %v after %v", dist, prev)
		}
		prev = dist
		if seen[id] {
			t.Fatalf("id %d yielded twice", id)
		}
		seen[id] = true
	}
	if len(seen) != 200 {
		t.Fatalf("yielded %d points, want 200", len(seen))
	}
}

func TestSinglePointAndDuplicates(t *testing.T) {
	tree := Build([][]float32{{1, 2}}, 0)
	got := tree.KNN([]float32{0, 0}, 3)
	if len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("single point: %+v", got)
	}
	dup := Build([][]float32{{1, 1}, {1, 1}, {1, 1}}, 1)
	got = dup.KNN([]float32{1, 1}, 3)
	if len(got) != 3 {
		t.Fatalf("duplicates: %+v", got)
	}
	for _, g := range got {
		if g.Dist != 0 {
			t.Fatalf("duplicate at nonzero distance: %+v", g)
		}
	}
}

func TestAccessorsAndValidation(t *testing.T) {
	pts := randPoints(rand.New(rand.NewPCG(4, 5)), 50, 3)
	tree := Build(pts, 4)
	if tree.Dim() != 3 || tree.Len() != 50 {
		t.Fatalf("Dim/Len = %d/%d", tree.Dim(), tree.Len())
	}
	if tree.Bytes() <= 0 {
		t.Fatal("Bytes should be positive")
	}
	if tree.KNN(pts[0], 0) != nil {
		t.Fatal("k=0 should return nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty build should panic")
		}
	}()
	Build(nil, 0)
}
