package conformance

import (
	"flag"
	"path/filepath"
	"testing"
)

// extraSeeds widens TestRandomSeeds into an extended sweep:
//
//	go test ./internal/conformance -conformance.seeds=500
//
// Each seed fully determines its scenario, so a failure report's seed
// reproduces the run exactly (always/none policies; the interval
// policy's timer makes ack timing approximate).
var extraSeeds = flag.Int("conformance.seeds", 0, "run N extra random conformance scenarios")

// TestCorpus runs every scenario file in testdata/ — the curated
// regression corpus: rotation boundaries, checkpoint-during-churn,
// crash-during-checkpoint, torn writes, ENOSPC, fsyncgate, and all
// three sync policies.
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("conformance corpus has %d scenarios, want at least 10", len(files))
	}
	for _, path := range files {
		sc, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(sc.Name, func(t *testing.T) {
			stats, err := Run(t.TempDir(), sc)
			if err != nil {
				t.Fatalf("%v\n(reproduce: scenario file %s)", err, path)
			}
			t.Logf("%s: %s", sc.Name, stats)
		})
	}
}

// randomScenario derives a full scenario from one seed. Policy, fault
// plan, and schedule shape all come from the seed, so printing the seed
// is a complete reproduction recipe.
func randomScenario(seed uint64) Scenario {
	sc := Scenario{
		Name:         "random",
		Seed:         seed,
		SegmentBytes: []int64{512, 2048, 8192}[seed%3],
		Steps:        120,
		Weights:      Weights{Insert: 50, Delete: 15, Search: 12, Checkpoint: 10, Crash: 9, Restart: 4},
	}
	switch seed % 3 {
	case 0:
		sc.Policy = "always"
	case 1:
		sc.Policy = "none"
	case 2:
		// Timer-driven fsyncs: scheduled crashes only, no injected
		// faults (their firing would not be step-deterministic).
		sc.Policy = "interval"
		return sc
	}
	// Two write-path faults on the first two opens, shaped by the seed.
	// Nth is kept small so the fault fires before the epoch's next
	// crash resets the injector.
	for open := 0; open < 2; open++ {
		f := FaultSpec{Open: open, Op: "write", Path: ".wal", Nth: 2 + int(seed>>uint(4*open))%6, Once: true}
		if (seed>>uint(open))%2 == 0 {
			f.TornBytes = 1 + int(seed)%9
		} else {
			f.Err = "enospc"
		}
		sc.Faults = append(sc.Faults, f)
	}
	if sc.Policy == "always" {
		// fsyncgate probe: drop dirty pages on a later segment fsync.
		sc.Faults = append(sc.Faults,
			FaultSpec{Open: 0, Op: "sync", Path: ".wal", Nth: 3 + int(seed>>8)%8, DropDirty: true, Once: true})
	}
	return sc
}

// TestRandomSeeds is the seed sweep: a small deterministic smoke by
// default, widened by -conformance.seeds for CI's extended run. A
// failure prints the seed, which reproduces the scenario exactly.
func TestRandomSeeds(t *testing.T) {
	n := *extraSeeds
	if n == 0 {
		n = 6
	}
	for i := 0; i < n; i++ {
		seed := uint64(1000 + i)
		sc := randomScenario(seed)
		stats, err := Run(t.TempDir(), sc)
		if err != nil {
			t.Fatalf("FAILING SEED %d: %v\n(reproduce: go test ./internal/conformance -run TestRandomSeeds -conformance.seeds=%d with seed base 1000)", seed, err, i+1)
		}
		if testing.Verbose() {
			t.Logf("seed %d (%s): %s", seed, sc.Policy, stats)
		}
	}
}
