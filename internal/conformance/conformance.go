// Package conformance is a deterministic crash-recovery conformance
// harness for the durable index. A Scenario describes a seeded schedule
// of inserts, deletes, searches, checkpoints, restarts, and crashes,
// plus a plan of filesystem faults (torn writes, failed fsyncs, ENOSPC,
// crash-at-step) injected through internal/faultfs. The runner executes
// the schedule against a real DurableIndex over a temp directory and,
// after every reopen, checks the recovered state against a model of the
// acknowledged history:
//
//   - every acknowledged insert is searchable with its exact vector;
//   - every acknowledged delete stays dead — ids never resurrect;
//   - an id that was ever acknowledged (live or deleted) is never
//     issued again;
//   - unacknowledged writes may vanish or survive, but never corrupt:
//     a surviving unacked insert carries exactly the vector that was
//     submitted, and recovery itself never fails or panics.
//
// The runner is single-threaded and, under the always and none sync
// policies, fully deterministic for a given scenario: the same seed
// yields the same schedule, the same fault firings, and the same
// verdict. The interval policy fsyncs on a timer, so step-indexed
// faults are not used with it (scenarios exercise it with scheduled
// crashes instead).
//
// Crashes are process-kill semantics: everything that reached the
// (inner) filesystem before the kill survives, nothing after it does.
// OS-crash page loss is modeled separately by DropDirty fsync faults,
// which are sound only under the always policy (an acked write there is
// fsynced, so only unacked data can be dropped).
package conformance

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"lccs"
	"lccs/internal/faultfs"
	"lccs/internal/rng"
)

// Weights selects the op mix of a generated schedule; zero values drop
// the op from the schedule entirely.
type Weights struct {
	Insert     int `json:"insert"`
	Delete     int `json:"delete"`
	Search     int `json:"search"`
	Checkpoint int `json:"checkpoint"`
	// Paginate advances a cursor scan one page at a time, holding the
	// continuation token across steps — so a crash or restart lands
	// mid-pagination, and the recovery check asserts the surviving
	// token is rejected by the reopened index.
	Paginate int `json:"paginate"`
	// Crash kills the filesystem mid-run and reopens; Restart closes
	// cleanly and reopens. Both run the full recovery check.
	Crash   int `json:"crash"`
	Restart int `json:"restart"`
}

// FaultSpec is one filesystem fault in a scenario, a JSON-friendly
// mirror of faultfs.Fault. Ops: any, create, write, sync, rename,
// remove, truncate, syncdir. Errs: "" or "injected" (generic I/O
// error), "enospc".
type FaultSpec struct {
	// Open arms the fault after the N-th open of the index (0 = the
	// first). Faults do not survive a reopen — each open starts a fresh
	// injector — so a fault that should fire after a crash names the
	// open it belongs to.
	Open      int    `json:"open"`
	Op        string `json:"op"`
	Path      string `json:"path"`
	AtStep    uint64 `json:"at_step"`
	Nth       int    `json:"nth"`
	Err       string `json:"err"`
	TornBytes int    `json:"torn_bytes"`
	DropDirty bool   `json:"drop_dirty"`
	Crash     bool   `json:"crash"`
	Once      bool   `json:"once"`
}

// Scenario is one conformance run: an index configuration, a seeded
// schedule, and a fault plan.
type Scenario struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed"`
	// Policy is the sync policy: always, interval, or none.
	Policy string `json:"policy"`
	// IntervalMS is the fsync period for the interval policy.
	IntervalMS int `json:"interval_ms"`
	// SegmentBytes rotates WAL segments at this size; small values
	// exercise rotation boundaries.
	SegmentBytes int64 `json:"segment_bytes"`
	// RebuildAt is the delta-build threshold; small values exercise
	// background shard builds during recovery replay.
	RebuildAt int `json:"rebuild_at"`
	// Dim is the vector dimensionality.
	Dim int `json:"dim"`
	// Steps is the schedule length.
	Steps   int         `json:"steps"`
	Weights Weights     `json:"weights"`
	Faults  []FaultSpec `json:"faults"`
}

// Load parses a scenario file.
func Load(path string) (Scenario, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	var sc Scenario
	if err := json.Unmarshal(blob, &sc); err != nil {
		return Scenario{}, fmt.Errorf("%s: %w", path, err)
	}
	return sc.withDefaults(), nil
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Policy == "" {
		sc.Policy = "always"
	}
	if sc.Dim == 0 {
		sc.Dim = 8
	}
	if sc.Steps == 0 {
		sc.Steps = 100
	}
	if sc.RebuildAt == 0 {
		sc.RebuildAt = 24
	}
	if sc.SegmentBytes == 0 {
		sc.SegmentBytes = 4096
	}
	if sc.IntervalMS == 0 {
		sc.IntervalMS = 2
	}
	w := &sc.Weights
	if w.Insert+w.Delete+w.Search+w.Checkpoint+w.Paginate+w.Crash+w.Restart == 0 {
		*w = Weights{Insert: 50, Delete: 15, Search: 15, Checkpoint: 8, Crash: 8, Restart: 4}
	}
	return sc
}

// Stats summarizes one run for test logs.
type Stats struct {
	Ops, Reopens, Crashes, Checkpoints int
	AckedInserts, AckedDeletes         int
	// FaultBreaks counts write failures that broke the log mid-epoch;
	// FaultsFired counts armed faults that fired at all (a torn write
	// that self-heals fires without breaking anything).
	FaultBreaks, FaultsFired int
}

func (s Stats) String() string {
	return fmt.Sprintf("ops=%d reopens=%d crashes=%d checkpoints=%d acked=%d+%d breaks=%d faults=%d",
		s.Ops, s.Reopens, s.Crashes, s.Checkpoints, s.AckedInserts, s.AckedDeletes, s.FaultBreaks, s.FaultsFired)
}

const searchBudget = 1 << 20

// runner holds the live index and the model of acknowledged history.
type runner struct {
	dir   string
	sc    Scenario
	rng   *rng.RNG
	di    *lccs.DurableIndex
	fs    *faultfs.Injected
	opens int
	stats Stats

	// live maps acked-inserted, not-acked-deleted ids to their vectors;
	// deleted holds acked-deleted ids. Both are durable obligations.
	live    map[int][]float32
	deleted map[int]bool
	// limbo holds unacked inserts (the write failed after the in-memory
	// apply): after a reopen each either survives with its exact vector
	// or vanishes. limboDel holds unacked deletes the same way.
	limbo    map[int][]float32
	limboDel map[int][]float32
	// order lists acked ids in issue order — the delete-target pool
	// (maps would make target choice depend on iteration order).
	order []int
	// broken is set when a write fails: the WAL is sticky-broken, so
	// mutating ops are skipped until the next crash or restart.
	broken bool
	// scan is the live pagination state: the query the scan was minted
	// for and the continuation token of the last page. A reopen while
	// scan.token != "" means the crash landed mid-pagination; the
	// recovery check then asserts the old token is rejected.
	scan struct {
		query []float32
		token string
	}
}

// Run executes a scenario against a DurableIndex in dir (which must be
// empty) and returns the first invariant violation, or nil. A failed
// recovery (OpenDurable error) is itself a violation: whatever a fault
// or crash left behind, reopen must always succeed.
func Run(dir string, sc Scenario) (Stats, error) {
	sc = sc.withDefaults()
	r := &runner{
		dir:      dir,
		sc:       sc,
		rng:      rng.New(sc.Seed),
		live:     map[int][]float32{},
		deleted:  map[int]bool{},
		limbo:    map[int][]float32{},
		limboDel: map[int][]float32{},
	}
	if err := r.open(); err != nil {
		return r.stats, err
	}
	if err := r.schedule(); err != nil {
		return r.stats, err
	}
	// Final crash, reopen, and check: the harness always ends on a
	// verified recovery.
	if err := r.crash(); err != nil {
		return r.stats, err
	}
	r.di.Close()
	return r.stats, nil
}

func (r *runner) policy() lccs.SyncPolicy {
	p, err := lccs.ParseSyncPolicy(r.sc.Policy)
	if err != nil {
		panic(err) // validated by callers via withDefaults/tests
	}
	return p
}

// open opens the index over a fresh injector and arms this open's
// faults.
func (r *runner) open() error {
	fs := faultfs.NewInjected(faultfs.OS{})
	cfg := lccs.DurableConfig{
		Config:       lccs.Config{Metric: lccs.Euclidean, M: 8, Seed: 1, BucketWidth: 4},
		Sync:         r.policy(),
		SyncInterval: time.Duration(r.sc.IntervalMS) * time.Millisecond,
		SegmentBytes: r.sc.SegmentBytes,
		RebuildAt:    r.sc.RebuildAt,
		FS:           fs,
	}
	di, err := lccs.OpenDurable(r.dir, cfg)
	if err != nil {
		return r.violation("recovery failed on open %d: %v", r.opens, err)
	}
	r.di, r.fs = di, fs
	for _, fspec := range r.sc.Faults {
		if fspec.Open == r.opens {
			f, err := fspec.fault()
			if err != nil {
				return err
			}
			fs.Inject(f)
		}
	}
	r.opens++
	r.stats.Reopens = r.opens - 1
	return nil
}

func (fs FaultSpec) fault() (*faultfs.Fault, error) {
	var op faultfs.Op
	switch fs.Op {
	case "", "any":
		op = faultfs.OpAny
	case "create":
		op = faultfs.OpCreate
	case "write":
		op = faultfs.OpWrite
	case "sync":
		op = faultfs.OpSync
	case "rename":
		op = faultfs.OpRename
	case "remove":
		op = faultfs.OpRemove
	case "truncate":
		op = faultfs.OpTruncate
	case "syncdir":
		op = faultfs.OpSyncDir
	default:
		return nil, fmt.Errorf("conformance: unknown fault op %q", fs.Op)
	}
	var ferr error
	switch fs.Err {
	case "", "injected":
	case "enospc":
		ferr = faultfs.ErrNoSpace
	default:
		return nil, fmt.Errorf("conformance: unknown fault err %q", fs.Err)
	}
	return &faultfs.Fault{
		Op: op, Path: fs.Path, AtStep: fs.AtStep, Nth: fs.Nth, Err: ferr,
		TornBytes: fs.TornBytes, DropDirty: fs.DropDirty, Crash: fs.Crash, Once: fs.Once,
	}, nil
}

func (r *runner) violation(format string, args ...any) error {
	return fmt.Errorf("scenario %q (seed %d, policy %s): op %d: %s",
		r.sc.Name, r.sc.Seed, r.sc.Policy, r.stats.Ops, fmt.Sprintf(format, args...))
}

// schedule draws and executes sc.Steps ops.
func (r *runner) schedule() error {
	w := r.sc.Weights
	total := w.Insert + w.Delete + w.Search + w.Checkpoint + w.Paginate + w.Crash + w.Restart
	for i := 0; i < r.sc.Steps; i++ {
		r.stats.Ops++
		roll := r.rng.IntN(total)
		var err error
		switch {
		case roll < w.Insert:
			err = r.insert()
		case roll < w.Insert+w.Delete:
			err = r.delete()
		case roll < w.Insert+w.Delete+w.Search:
			err = r.search()
		case roll < w.Insert+w.Delete+w.Search+w.Checkpoint:
			err = r.checkpoint()
		case roll < w.Insert+w.Delete+w.Search+w.Checkpoint+w.Paginate:
			err = r.paginate()
		case roll < w.Insert+w.Delete+w.Search+w.Checkpoint+w.Paginate+w.Crash:
			err = r.crash()
		default:
			err = r.restart()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) insert() error {
	// Draw the vector even when skipping, so the schedule's rng stream
	// does not depend on fault timing.
	vec := r.rng.UniformVector(r.sc.Dim, -1, 1)
	if r.broken {
		return nil
	}
	id, err := r.di.Add(vec)
	if err != nil && errors.Is(err, lccs.ErrNotDurable) {
		// Applied in memory, not acked: may vanish at the next crash,
		// may survive — but only ever with exactly this vector.
		r.limbo[id] = vec
		r.broken = true
		r.stats.FaultBreaks++
		return nil
	}
	// A non-durability error (deferred background-build failure) still
	// means the insert itself succeeded and was journaled: acked.
	if r.live[id] != nil || r.deleted[id] {
		return r.violation("insert issued id %d, which is already %s", id, r.idState(id))
	}
	r.live[id] = vec
	r.order = append(r.order, id)
	r.stats.AckedInserts++
	return nil
}

func (r *runner) idState(id int) string {
	switch {
	case r.live[id] != nil:
		return "live"
	case r.deleted[id]:
		return "acked-deleted"
	default:
		return "unknown"
	}
}

func (r *runner) delete() error {
	if len(r.order) == 0 {
		return nil
	}
	id := r.order[r.rng.IntN(len(r.order))]
	if r.broken {
		return nil
	}
	ok, err := r.di.DeleteDurable(id)
	if !ok {
		if r.live[id] != nil {
			return r.violation("delete of acked-live id %d reported not-live", id)
		}
		return nil
	}
	if err != nil && errors.Is(err, lccs.ErrNotDurable) {
		// Tombstoned in memory, not acked: after a crash the id is
		// either still live (record lost) or dead (record survived).
		if vec := r.live[id]; vec != nil {
			r.limboDel[id] = vec
			delete(r.live, id)
		}
		r.broken = true
		r.stats.FaultBreaks++
		return nil
	}
	if err != nil {
		return r.violation("delete of id %d: unexpected error: %v", id, err)
	}
	vec := r.live[id]
	if vec == nil {
		return r.violation("index deleted id %d, which the model holds %s", id, r.idState(id))
	}
	delete(r.live, id)
	r.deleted[id] = true
	r.stats.AckedDeletes++
	return nil
}

func (r *runner) search() error {
	q := r.rng.UniformVector(r.sc.Dim, -1, 1)
	if r.di.Len() == 0 {
		return nil
	}
	res, err := r.di.SearchBudget(q, 8, searchBudget)
	if err != nil {
		return r.violation("search failed: %v", err)
	}
	for _, nb := range res {
		if r.deleted[nb.ID] {
			return r.violation("search returned acked-deleted id %d", nb.ID)
		}
	}
	return nil
}

// paginate advances the cursor scan one page, starting a fresh scan
// when no token is held. A token invalidated by an intervening write is
// the documented contract, not a violation — the scan restarts. Pages
// must never surface an acked-deleted id.
func (r *runner) paginate() error {
	// Draw the query whether starting or continuing, so the rng stream
	// does not depend on scan state.
	q := r.rng.UniformVector(r.sc.Dim, -1, 1)
	if r.scan.token == "" {
		r.scan.query = q
	}
	if r.di.Len() == 0 {
		return nil
	}
	page, next, err := r.di.SearchCursor(r.scan.query, 5, searchBudget, nil, r.scan.token)
	if errors.Is(err, lccs.ErrCursorInvalid) {
		// A write since the last page bumped the generation.
		r.scan.token = ""
		return nil
	}
	if err != nil {
		return r.violation("cursor page failed: %v", err)
	}
	for _, nb := range page {
		if r.deleted[nb.ID] {
			return r.violation("cursor page returned acked-deleted id %d", nb.ID)
		}
	}
	r.scan.token = next
	return nil
}

func (r *runner) checkpoint() error {
	if r.broken {
		return nil
	}
	if _, err := r.di.Checkpoint(); err != nil {
		// A faulted checkpoint may have broken the WAL (truncation runs
		// through it); recovery must clean up whatever it left.
		r.broken = true
		r.stats.FaultBreaks++
		return nil
	}
	r.stats.Checkpoints++
	return nil
}

// crash kills the filesystem (process-kill semantics: whatever reached
// the inner filesystem stays, nothing after does), drops the index, and
// recovers.
func (r *runner) crash() error {
	r.fs.Kill()
	r.di.Close() // harmless: every mutating op on a killed fs fails
	r.stats.Crashes++
	return r.reopenAndCheck()
}

// restart closes cleanly and recovers — the graceful-shutdown path.
func (r *runner) restart() error {
	err := r.di.Close()
	if err != nil && !r.broken {
		return r.violation("clean close failed: %v", err)
	}
	return r.reopenAndCheck()
}

func (r *runner) reopenAndCheck() error {
	r.stats.FaultsFired += r.fs.Fired()
	if err := r.open(); err != nil {
		return err
	}
	r.broken = false
	// A reopen while a scan is open means the crash (or restart) landed
	// mid-pagination. The recovered index carries a fresh cursor epoch,
	// so the surviving token must be rejected — resuming it could skip
	// or repeat results over the replayed, possibly renumbered stream.
	if r.scan.token != "" {
		_, _, err := r.di.SearchCursor(r.scan.query, 5, searchBudget, nil, r.scan.token)
		if !errors.Is(err, lccs.ErrCursorInvalid) {
			return r.violation("pre-reopen cursor token accepted after recovery (err=%v)", err)
		}
		r.scan.token = ""
	}
	return r.check()
}

// check sweeps the recovered index by searching every vector the model
// knows, resolves the limbo sets against what survived, and asserts the
// acked obligations.
func (r *runner) check() error {
	found := map[int]bool{}
	k := len(r.live) + len(r.limbo) + len(r.limboDel) + 4
	sweep := func(vecs map[int][]float32) error {
		for _, vec := range vecs {
			res, err := r.di.SearchBudget(vec, k, searchBudget)
			if err != nil {
				return r.violation("recovery sweep search failed: %v", err)
			}
			for _, nb := range res {
				found[nb.ID] = true
			}
		}
		return nil
	}
	for _, vecs := range []map[int][]float32{r.live, r.limbo, r.limboDel} {
		if err := sweep(vecs); err != nil {
			return err
		}
	}

	// Resolve unacked inserts: a survivor was journaled and replayed —
	// it is durable now and must carry exactly the submitted vector. A
	// vanished one is forgotten (its id may legitimately be reissued:
	// it never existed durably).
	for id, vec := range r.limbo {
		if !found[id] {
			delete(r.limbo, id)
			continue
		}
		if err := r.checkVector(id, vec, "surviving unacked insert"); err != nil {
			return err
		}
		r.live[id] = vec
		r.order = append(r.order, id)
		delete(r.limbo, id)
	}
	// Resolve unacked deletes: if the id is gone the tombstone was
	// journaled (durable — promote to acked-deleted); if it answers,
	// the delete was lost and the id is live again.
	for id, vec := range r.limboDel {
		if found[id] {
			r.live[id] = vec
		} else {
			r.deleted[id] = true
		}
		delete(r.limboDel, id)
	}

	for id, vec := range r.live {
		if !found[id] {
			return r.violation("acked insert %d lost after recovery", id)
		}
		if err := r.checkVector(id, vec, "acked insert"); err != nil {
			return err
		}
	}
	for id := range r.deleted {
		if found[id] {
			return r.violation("acked-deleted id %d resurrected after recovery", id)
		}
	}
	return nil
}

func (r *runner) checkVector(id int, want []float32, what string) error {
	got := r.di.Vector(id)
	if len(got) != len(want) {
		return r.violation("%s %d: stored vector %v, want %v", what, id, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			return r.violation("%s %d: stored vector %v, want %v (corrupted)", what, id, got, want)
		}
	}
	return nil
}
