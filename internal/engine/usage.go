package engine

import "sync/atomic"

// Usage is one collection's cumulative resource accounting: every
// counter is a monotone atomic, so the search hot path records a
// query's cost with a handful of uncontended atomic adds — no locks,
// no allocations — and a usage scrape reads a consistent-enough
// snapshot without stopping traffic. Counters reset only with the
// process; windowed rates are derived by the observability layer
// (internal/obs) from periodic snapshots, not here.
type Usage struct {
	searches       atomic.Int64
	inserts        atomic.Int64
	deletes        atomic.Int64
	errors         atomic.Int64
	comparisons    atomic.Int64
	candidates     atomic.Int64
	reranked       atomic.Int64
	bytesScanned   atomic.Int64
	filterRejected atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	walBytes       atomic.Int64
}

// UsageSnapshot is a point-in-time copy of a Usage, shaped for JSON.
type UsageSnapshot struct {
	// Searches counts search requests that reached the backend or
	// answered from cache (validation failures count under Errors).
	Searches int64 `json:"searches"`
	// Inserts and Deletes count acknowledged write operations.
	Inserts int64 `json:"inserts"`
	Deletes int64 `json:"deletes"`
	// Errors counts failed requests of any kind against the collection.
	Errors int64 `json:"errors"`
	// Comparisons is the total CSA hash-comparison work; Candidates the
	// vectors verified with exact (or quantized) distances; Reranked the
	// quantized candidates re-scored at full precision.
	Comparisons int64 `json:"comparisons"`
	Candidates  int64 `json:"candidates"`
	Reranked    int64 `json:"reranked"`
	// BytesScanned is the vector bytes the distance kernels read:
	// 4 B/dim per float32 candidate, 1 B/dim per SQ8 candidate, plus
	// 4 B/dim again per re-ranked row.
	BytesScanned int64 `json:"bytes_scanned"`
	// FilterRejected counts candidates discarded by a metadata predicate.
	FilterRejected int64 `json:"filter_rejected"`
	// CacheHits / CacheMisses count result-cache outcomes.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// WALBytes is the journal bytes appended on behalf of this
	// collection's writes (monotone; checkpoint truncation does not
	// rewind it).
	WALBytes int64 `json:"wal_bytes"`
	// CostUnits is the CPU-proxy cost: one unit approximates one scalar
	// operation — a hash-character comparison or one 4-byte distance
	// lane (BytesScanned/4). It is derived, not stored.
	CostUnits int64 `json:"cost_units"`
}

// AddSearch records one search and its cost record. The counter
// arguments mirror lccs.Cost; the server layer passes them through so
// engine does not depend on the root package's types here.
func (u *Usage) AddSearch(comparisons, candidates, reranked, bytesScanned, filterRejected int64) {
	u.searches.Add(1)
	u.comparisons.Add(comparisons)
	u.candidates.Add(candidates)
	u.reranked.Add(reranked)
	u.bytesScanned.Add(bytesScanned)
	u.filterRejected.Add(filterRejected)
}

// AddInsert records n acknowledged inserts and the WAL bytes they
// appended (0 for memory-only collections).
func (u *Usage) AddInsert(n int, walBytes int64) {
	u.inserts.Add(int64(n))
	u.walBytes.Add(walBytes)
}

// AddDelete records n acknowledged deletes and the WAL bytes they
// appended.
func (u *Usage) AddDelete(n int, walBytes int64) {
	u.deletes.Add(int64(n))
	u.walBytes.Add(walBytes)
}

// AddError records one failed request.
func (u *Usage) AddError() { u.errors.Add(1) }

// AddCacheHit / AddCacheMiss record one result-cache outcome.
func (u *Usage) AddCacheHit()  { u.cacheHits.Add(1) }
func (u *Usage) AddCacheMiss() { u.cacheMisses.Add(1) }

// Snapshot copies the counters. Each load is individually atomic; the
// snapshot as a whole is not a cross-counter consistent cut, which is
// fine for metering (counters are monotone and drift by at most the
// requests in flight during the scrape).
func (u *Usage) Snapshot() UsageSnapshot {
	s := UsageSnapshot{
		Searches:       u.searches.Load(),
		Inserts:        u.inserts.Load(),
		Deletes:        u.deletes.Load(),
		Errors:         u.errors.Load(),
		Comparisons:    u.comparisons.Load(),
		Candidates:     u.candidates.Load(),
		Reranked:       u.reranked.Load(),
		BytesScanned:   u.bytesScanned.Load(),
		FilterRejected: u.filterRejected.Load(),
		CacheHits:      u.cacheHits.Load(),
		CacheMisses:    u.cacheMisses.Load(),
		WALBytes:       u.walBytes.Load(),
	}
	s.CostUnits = s.Comparisons + s.BytesScanned/4
	return s
}

// Add accumulates o into s (for the engine-wide aggregate view).
func (s *UsageSnapshot) Add(o UsageSnapshot) {
	s.Searches += o.Searches
	s.Inserts += o.Inserts
	s.Deletes += o.Deletes
	s.Errors += o.Errors
	s.Comparisons += o.Comparisons
	s.Candidates += o.Candidates
	s.Reranked += o.Reranked
	s.BytesScanned += o.BytesScanned
	s.FilterRejected += o.FilterRejected
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.WALBytes += o.WALBytes
	s.CostUnits += o.CostUnits
}

// Usage returns the collection's usage counters. Never nil; shared by
// every handle to the collection.
func (c *Collection) Usage() *Usage { return &c.usage }
