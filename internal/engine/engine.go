// Package engine is the multi-tenant collection registry behind the
// daemon: named collections, each an independently configured index
// (its own metric, hash length, quantization, durability directory),
// created, dropped, and listed at runtime. The registry owns collection
// lifecycle — creation writes a COLLECTION.json spec next to the
// collection's durable state, restarts lazily reopen collections from
// those specs on first use — while the HTTP layer (internal/server)
// owns request routing, admission, and per-collection metrics.
//
// Two storage modes, chosen by the registry root:
//
//   - A rooted engine (New with a directory) stores each collection
//     under <root>/collections/<name>/ as a durable data dir (WAL +
//     snapshot, see lccs.OpenDurable); every acknowledged write
//     survives a crash.
//   - A rootless engine (New with "") creates memory-only collections
//     backed by a DynamicIndex — the file-mode daemon's behavior,
//     where persistence is the operator's explicit snapshot.
//
// A pre-built backend (the legacy single-index serving modes) joins the
// registry through Adopt, typically under the name "default"; adopted
// collections are not droppable and own no directory.
package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"lccs"
)

// Errors of the registry API. The HTTP layer maps NotFound to 404,
// Exists to 409, and the validation errors to 400.
var (
	ErrNotFound    = errors.New("engine: collection not found")
	ErrExists      = errors.New("engine: collection already exists")
	ErrBadName     = errors.New("engine: invalid collection name")
	ErrAdopted     = errors.New("engine: adopted collection has no managed storage")
	ErrClosed      = errors.New("engine: engine is closed")
	ErrInvalidSpec = errors.New("engine: invalid collection spec")
)

// nameRE bounds collection names to path- and label-safe tokens: they
// appear in directory names, URLs, and Prometheus label values.
var nameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_-]{0,63}$`)

// ValidateName reports whether name is a legal collection name.
func ValidateName(name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("%w: %q (want [a-zA-Z0-9][a-zA-Z0-9_-]{0,63})", ErrBadName, name)
	}
	return nil
}

// Spec is a collection's configuration, persisted as COLLECTION.json in
// the collection directory so a restart reopens the collection exactly
// as created. Zero fields inherit the engine's defaults.
type Spec struct {
	// Metric names the distance metric: euclidean | angular | hamming |
	// jaccard. Empty inherits the engine default.
	Metric string `json:"metric,omitempty"`
	// M is the hash-string length (0 = default).
	M int `json:"m,omitempty"`
	// Probes is the multi-probe count (0/1 = single-probe).
	Probes int `json:"probes,omitempty"`
	// Budget is the default per-query candidate budget λ.
	Budget int `json:"budget,omitempty"`
	// Seed fixes the hash functions.
	Seed uint64 `json:"seed,omitempty"`
	// BucketWidth is the Euclidean family's w (0 = derive from data).
	BucketWidth float64 `json:"bucket_width,omitempty"`
	// Quantize optionally compresses the scan store ("sq8").
	Quantize string `json:"quantize,omitempty"`
	// Rerank is the quantized-scan re-rank depth.
	Rerank int `json:"rerank,omitempty"`
	// RebuildAt is the dynamic delta threshold triggering a background
	// shard build.
	RebuildAt int `json:"rebuild_at,omitempty"`
	// Sync is the WAL sync policy of a rooted collection: always |
	// interval | none. Empty inherits the engine default.
	Sync string `json:"sync,omitempty"`
	// SyncIntervalMS is the fsync period for Sync "interval".
	SyncIntervalMS int `json:"sync_interval_ms,omitempty"`
	// SegmentBytes rotates WAL segments at this size.
	SegmentBytes int64 `json:"segment_bytes,omitempty"`
}

// merged returns s with zero fields filled from def.
func (s Spec) merged(def Spec) Spec {
	if s.Metric == "" {
		s.Metric = def.Metric
	}
	if s.M == 0 {
		s.M = def.M
	}
	if s.Probes == 0 {
		s.Probes = def.Probes
	}
	if s.Budget == 0 {
		s.Budget = def.Budget
	}
	if s.Seed == 0 {
		s.Seed = def.Seed
	}
	if s.BucketWidth == 0 {
		s.BucketWidth = def.BucketWidth
	}
	if s.Quantize == "" {
		s.Quantize = def.Quantize
	}
	if s.Rerank == 0 {
		s.Rerank = def.Rerank
	}
	if s.RebuildAt == 0 {
		s.RebuildAt = def.RebuildAt
	}
	if s.Sync == "" {
		s.Sync = def.Sync
	}
	if s.SyncIntervalMS == 0 {
		s.SyncIntervalMS = def.SyncIntervalMS
	}
	if s.SegmentBytes == 0 {
		s.SegmentBytes = def.SegmentBytes
	}
	return s
}

// config translates the spec into the library's index configuration.
func (s Spec) config() (lccs.Config, error) {
	metric := s.Metric
	if metric == "" {
		metric = "euclidean"
	}
	kind, err := lccs.ParseMetric(metric)
	if err != nil {
		return lccs.Config{}, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	return lccs.Config{
		Metric:      kind,
		M:           s.M,
		Probes:      s.Probes,
		Budget:      s.Budget,
		Seed:        s.Seed,
		BucketWidth: s.BucketWidth,
		Quantize:    s.Quantize,
		Rerank:      s.Rerank,
	}, nil
}

// durableConfig translates the spec into a durable-mode configuration.
func (s Spec) durableConfig(logger *slog.Logger) (lccs.DurableConfig, error) {
	cfg, err := s.config()
	if err != nil {
		return lccs.DurableConfig{}, err
	}
	policy := s.Sync
	if policy == "" {
		policy = "always"
	}
	sp, err := lccs.ParseSyncPolicy(policy)
	if err != nil {
		return lccs.DurableConfig{}, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	return lccs.DurableConfig{
		Config:       cfg,
		Sync:         sp,
		SyncInterval: time.Duration(s.SyncIntervalMS) * time.Millisecond,
		SegmentBytes: s.SegmentBytes,
		RebuildAt:    s.RebuildAt,
		Logger:       logger,
	}, nil
}

// Collection is one named index inside the registry: the backend that
// answers its queries plus the lifecycle handles the registry and the
// daemon need (checkpointing, closing).
type Collection struct {
	name    string
	spec    Spec
	backend lccs.Searcher
	dur     *lccs.DurableIndex // nil for adopted and memory-only collections
	dyn     *lccs.DynamicIndex // nil when the backend is immutable
	adopted bool
	dir     string // "" for adopted and memory-only collections
	// usage is the collection's cumulative resource accounting; the
	// serving layer records into it on every request.
	usage Usage
}

// Name returns the collection's registry name.
func (c *Collection) Name() string { return c.name }

// Spec returns the resolved configuration the collection was opened
// with.
func (c *Collection) Spec() Spec { return c.spec }

// Backend returns the Searcher answering this collection's queries.
func (c *Collection) Backend() lccs.Searcher { return c.backend }

// Durable returns the durable handle, or nil when the collection is
// memory-only or adopted.
func (c *Collection) Durable() *lccs.DurableIndex { return c.dur }

// Dynamic returns the writable handle, or nil when the backend is
// immutable. For durable collections it is the embedded DynamicIndex.
func (c *Collection) Dynamic() *lccs.DynamicIndex { return c.dyn }

// Adopted reports whether the collection wraps a pre-built backend the
// registry does not manage on disk.
func (c *Collection) Adopted() bool { return c.adopted }

// specFile is the on-disk spec name inside a collection directory.
const specFile = "COLLECTION.json"

// Engine is the collection registry. All methods are safe for
// concurrent use; per-collection work (opening, dropping) runs under a
// registry-wide lock — collection opens are rare (first use after a
// restart) and index opens of serving-size corpora are fast relative
// to request timeouts.
type Engine struct {
	root     string // "" = rootless (memory-only collections)
	defaults Spec
	logger   *slog.Logger

	mu     sync.RWMutex
	colls  map[string]*Collection
	closed bool
}

// New opens a registry. root "" builds a rootless engine whose created
// collections are memory-only; a directory root persists each
// collection under <root>/collections/<name>/. defaults fill zero
// fields of every Create spec. Existing on-disk collections are NOT
// opened eagerly — they appear in List and open lazily on first Get.
func New(root string, defaults Spec, logger *slog.Logger) (*Engine, error) {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	e := &Engine{
		root:     root,
		defaults: defaults,
		logger:   logger,
		colls:    make(map[string]*Collection),
	}
	if root != "" {
		if err := os.MkdirAll(filepath.Join(root, "collections"), 0o755); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	return e, nil
}

// collDir returns the directory of a rooted collection.
func (e *Engine) collDir(name string) string {
	return filepath.Join(e.root, "collections", name)
}

// Adopt registers a pre-built backend under name. The registry does not
// manage its storage: it cannot be dropped, and Close leaves it alone
// (the daemon owns its lifecycle). dur may carry the durable handle
// when the backend is one, so per-collection WAL stats keep working.
func (e *Engine) Adopt(name string, backend lccs.Searcher, dur *lccs.DurableIndex) (*Collection, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	if backend == nil {
		return nil, errors.New("engine: Adopt requires a backend")
	}
	c := &Collection{name: name, backend: backend, dur: dur, adopted: true}
	if dur != nil {
		c.dyn = dur.DynamicIndex
	} else if dyn, ok := backend.(*lccs.DynamicIndex); ok {
		c.dyn = dyn
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if _, dup := e.colls[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	e.colls[name] = c
	return c, nil
}

// Create makes a new collection. On a rooted engine the collection
// directory and its COLLECTION.json spec are written first, so the
// collection survives restarts; rootless engines build a memory-only
// DynamicIndex.
func (e *Engine) Create(name string, spec Spec) (*Collection, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	spec = spec.merged(e.defaults)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if _, dup := e.colls[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	if e.root == "" {
		cfg, err := spec.config()
		if err != nil {
			return nil, err
		}
		dyn, err := lccs.NewDynamicIndex(nil, cfg, spec.RebuildAt)
		if err != nil {
			return nil, fmt.Errorf("engine: create %q: %w", name, err)
		}
		c := &Collection{name: name, spec: spec, backend: dyn, dyn: dyn}
		e.colls[name] = c
		e.logger.Info("collection created", "collection", name, "mode", "memory")
		return c, nil
	}
	dir := e.collDir(name)
	if _, err := os.Stat(filepath.Join(dir, specFile)); err == nil {
		return nil, fmt.Errorf("%w: %q (on disk)", ErrExists, name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: create %q: %w", name, err)
	}
	if err := writeSpec(dir, spec); err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("engine: create %q: %w", name, err)
	}
	c, err := e.openLocked(name, spec)
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	e.logger.Info("collection created", "collection", name, "dir", dir)
	return c, nil
}

// Get returns the named collection, lazily opening it from its on-disk
// spec when the registry holds state for it but has not loaded it yet.
func (e *Engine) Get(name string) (*Collection, error) {
	e.mu.RLock()
	c, ok := e.colls[name]
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if ok {
		return c, nil
	}
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	if e.root == "" {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if c, ok := e.colls[name]; ok { // raced another opener
		return c, nil
	}
	spec, err := readSpec(e.collDir(name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if err != nil {
		return nil, fmt.Errorf("engine: open %q: %w", name, err)
	}
	c, err = e.openLocked(name, spec.merged(e.defaults))
	if err != nil {
		return nil, err
	}
	e.logger.Info("collection opened", "collection", name, "vectors", c.backend.Len())
	return c, nil
}

// openLocked opens a rooted collection's durable state and registers
// it. Caller holds e.mu.
func (e *Engine) openLocked(name string, spec Spec) (*Collection, error) {
	dcfg, err := spec.durableConfig(e.logger.With("collection", name))
	if err != nil {
		return nil, err
	}
	dir := e.collDir(name)
	dur, err := lccs.OpenDurable(dir, dcfg)
	if err != nil {
		return nil, fmt.Errorf("engine: open %q: %w", name, err)
	}
	c := &Collection{name: name, spec: spec, backend: dur, dur: dur,
		dyn: dur.DynamicIndex, dir: dir}
	e.colls[name] = c
	return c, nil
}

// Drop closes the named collection and deletes its storage. Adopted
// collections are refused — the registry does not own their state.
func (e *Engine) Drop(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	c, ok := e.colls[name]
	if !ok {
		// Never opened this process: it may still exist on disk.
		if e.root != "" {
			if _, err := os.Stat(filepath.Join(e.collDir(name), specFile)); err == nil {
				if err := os.RemoveAll(e.collDir(name)); err != nil {
					return fmt.Errorf("engine: drop %q: %w", name, err)
				}
				e.logger.Info("collection dropped", "collection", name)
				return nil
			}
		}
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if c.adopted {
		return fmt.Errorf("%w: cannot drop %q", ErrAdopted, name)
	}
	delete(e.colls, name)
	if c.dur != nil {
		c.dur.WaitRebuild()
		if err := c.dur.Close(); err != nil {
			e.logger.Warn("closing dropped collection", "collection", name, "err", err)
		}
	} else if c.dyn != nil {
		c.dyn.WaitRebuild()
	}
	if c.dir != "" {
		if err := os.RemoveAll(c.dir); err != nil {
			return fmt.Errorf("engine: drop %q: %w", name, err)
		}
	}
	e.logger.Info("collection dropped", "collection", name)
	return nil
}

// List returns every collection name — loaded ones and, on a rooted
// engine, on-disk collections not yet opened — sorted.
func (e *Engine) List() []string {
	e.mu.RLock()
	names := make(map[string]bool, len(e.colls))
	for name := range e.colls {
		names[name] = true
	}
	root := e.root
	e.mu.RUnlock()
	if root != "" {
		entries, err := os.ReadDir(filepath.Join(root, "collections"))
		if err == nil {
			for _, ent := range entries {
				if !ent.IsDir() || ValidateName(ent.Name()) != nil {
					continue
				}
				if _, err := os.Stat(filepath.Join(root, "collections", ent.Name(), specFile)); err == nil {
					names[ent.Name()] = true
				}
			}
		}
	}
	out := make([]string, 0, len(names))
	for name := range names {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Loaded returns the currently open collections (no lazy opening),
// sorted by name — the set a metrics scrape or checkpoint sweep should
// touch without forcing cold collections into memory.
func (e *Engine) Loaded() []*Collection {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*Collection, 0, len(e.colls))
	for _, c := range e.colls {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Close closes every managed collection (adopted backends are left to
// their owner) and refuses further registry operations.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	var firstErr error
	for name, c := range e.colls {
		if c.adopted || c.dur == nil {
			continue
		}
		c.dur.WaitRebuild()
		if err := c.dur.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("engine: close %q: %w", name, err)
		}
	}
	return firstErr
}

// writeSpec persists the spec atomically (temp file + rename), so a
// crash mid-create never leaves a half-written COLLECTION.json that a
// restart would reject.
func writeSpec(dir string, spec Spec) error {
	buf, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, specFile+".tmp")
	if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, specFile))
}

// readSpec loads a collection's persisted spec.
func readSpec(dir string) (Spec, error) {
	buf, err := os.ReadFile(filepath.Join(dir, specFile))
	if err != nil {
		return Spec{}, err
	}
	var spec Spec
	if err := json.Unmarshal(buf, &spec); err != nil {
		return Spec{}, fmt.Errorf("%w: corrupt %s: %v", ErrInvalidSpec, specFile, err)
	}
	return spec, nil
}
