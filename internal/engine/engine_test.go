package engine

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"lccs"
)

func mustCreate(t *testing.T, e *Engine, name string, spec Spec) *Collection {
	t.Helper()
	c, err := e.Create(name, spec)
	if err != nil {
		t.Fatalf("Create(%q): %v", name, err)
	}
	return c
}

// TestRootedLifecycle walks the full registry lifecycle on disk:
// create → write → reopen lazily in a second engine → drop.
func TestRootedLifecycle(t *testing.T) {
	root := t.TempDir()
	defaults := Spec{Metric: "euclidean", M: 8, Seed: 1, BucketWidth: 4}
	e, err := New(root, defaults, nil)
	if err != nil {
		t.Fatal(err)
	}

	a := mustCreate(t, e, "tenant-a", Spec{})
	b := mustCreate(t, e, "tenant-b", Spec{Metric: "angular", M: 16})
	if a.Spec().Metric != "euclidean" || b.Spec().Metric != "angular" {
		t.Fatalf("specs: a=%q b=%q", a.Spec().Metric, b.Spec().Metric)
	}
	if b.Spec().Seed != 1 {
		t.Fatalf("defaults not merged: seed=%d", b.Spec().Seed)
	}
	if _, err := e.Create("tenant-a", Spec{}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	for _, bad := range []string{"", "a/b", "..", "-lead", "x y", "."} {
		if _, err := e.Create(bad, Spec{}); !errors.Is(err, ErrBadName) {
			t.Fatalf("Create(%q): %v, want ErrBadName", bad, err)
		}
	}

	// Write through the durable path; both collections are independent.
	for i := 0; i < 10; i++ {
		if _, err := a.Durable().AddWithAttrs([]float32{float32(i), 1}, lccs.Attrs{"i": lccs.IntAttr(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Durable().Add([]float32{1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if a.Backend().Len() != 10 || b.Backend().Len() != 1 {
		t.Fatalf("lens: a=%d b=%d", a.Backend().Len(), b.Backend().Len())
	}

	got := e.List()
	if len(got) != 2 || got[0] != "tenant-a" || got[1] != "tenant-b" {
		t.Fatalf("List = %v", got)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get("tenant-a"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close: %v", err)
	}

	// A fresh engine sees both collections on disk and opens lazily.
	e2, err := New(root, defaults, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := e2.List(); len(got) != 2 {
		t.Fatalf("restart List = %v", got)
	}
	a2, err := e2.Get("tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	if a2.Backend().Len() != 10 {
		t.Fatalf("recovered len = %d, want 10", a2.Backend().Len())
	}
	if attrs := a2.Dynamic().Attrs(3); !attrs.Equal(lccs.Attrs{"i": lccs.IntAttr(3)}) {
		t.Fatalf("recovered attrs = %v", attrs)
	}
	if _, err := e2.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: %v", err)
	}

	// Drop removes the directory; the sibling is untouched.
	if err := e2.Drop("tenant-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "collections", "tenant-a")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("dropped dir still exists: %v", err)
	}
	if got := e2.List(); len(got) != 1 || got[0] != "tenant-b" {
		t.Fatalf("post-drop List = %v", got)
	}
	b2, err := e2.Get("tenant-b")
	if err != nil || b2.Backend().Len() != 1 {
		t.Fatalf("sibling after drop: %v len=%d", err, b2.Backend().Len())
	}
	// Dropping a never-opened on-disk collection also works.
	if err := e2.Drop("tenant-b"); err != nil {
		t.Fatal(err)
	}
	if err := e2.Drop("tenant-b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop: %v", err)
	}
}

// TestRootlessEngine covers memory-only collections and adoption.
func TestRootlessEngine(t *testing.T) {
	e, err := New("", Spec{Metric: "euclidean", M: 8, Seed: 1, BucketWidth: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	c := mustCreate(t, e, "mem", Spec{})
	if c.Durable() != nil || c.Dynamic() == nil {
		t.Fatal("memory collection should be dynamic, not durable")
	}
	if _, err := c.Dynamic().Add([]float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if c.Backend().Len() != 1 {
		t.Fatalf("len = %d", c.Backend().Len())
	}
	if err := e.Drop("mem"); err != nil {
		t.Fatal(err)
	}

	// Adopt a pre-built read-only backend as the default collection.
	sx, err := lccs.NewShardedIndex([][]float32{{1, 2}, {3, 4}},
		lccs.Config{Metric: lccs.Euclidean, M: 8, Seed: 2, BucketWidth: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.Adopt("default", sx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Adopted() || d.Dynamic() != nil {
		t.Fatalf("adopted state: %+v", d)
	}
	if err := e.Drop("default"); !errors.Is(err, ErrAdopted) {
		t.Fatalf("dropping adopted: %v", err)
	}
	if _, err := e.Get("default"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Create("other", Spec{Metric: "bogus"}); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("bad metric: %v", err)
	}
}
