package core

import (
	"bytes"
	"testing"

	"lccs/internal/lshfamily"
	"lccs/internal/rng"
)

func TestCoreEncodeDecodeRoundTrip(t *testing.T) {
	g := rng.New(81)
	data := clusteredData(g, 400, 12, 6, 0.5)
	fam := lshfamily.NewRandomProjection(12, 8)
	ix, err := Build(data, fam, Params{M: 24, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(bytes.NewReader(buf.Bytes()), data, fam)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.M() != 24 || loaded.N() != 400 {
		t.Fatalf("shape: m=%d n=%d", loaded.M(), loaded.N())
	}
	for i := 0; i < 10; i++ {
		q := data[i*17]
		a := ix.Search(q, 5, 40)
		b := loaded.Search(q, 5, 40)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query %d result %d differs", i, j)
			}
		}
	}
}

func TestCoreDecodeRejectsMismatches(t *testing.T) {
	g := rng.New(82)
	data := clusteredData(g, 200, 8, 4, 0.5)
	fam := lshfamily.NewRandomProjection(8, 4)
	ix, err := Build(data, fam, Params{M: 16, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	// Wrong family name.
	if _, err := Decode(bytes.NewReader(blob), data, lshfamily.NewSimHash(8)); err == nil {
		t.Error("wrong family should fail")
	}
	// Wrong dimension.
	if _, err := Decode(bytes.NewReader(blob), data, lshfamily.NewRandomProjection(9, 4)); err == nil {
		t.Error("wrong dimension should fail")
	}
	// Wrong dataset length.
	if _, err := Decode(bytes.NewReader(blob), data[:100], fam); err == nil {
		t.Error("wrong n should fail")
	}
	// Different bucket width changes hash values: the spot check fires.
	if _, err := Decode(bytes.NewReader(blob), data, lshfamily.NewRandomProjection(8, 2)); err == nil {
		t.Error("different bucket width should fail the hash spot check")
	}
	// Garbage.
	if _, err := Decode(bytes.NewReader([]byte("nope")), data, fam); err == nil {
		t.Error("garbage should fail")
	}
	// Truncation.
	if _, err := Decode(bytes.NewReader(blob[:len(blob)/2]), data, fam); err == nil {
		t.Error("truncation should fail")
	}
}

func TestWrapMPValidation(t *testing.T) {
	g := rng.New(83)
	data := clusteredData(g, 100, 8, 4, 0.5)
	fam := lshfamily.NewRandomProjection(8, 4)
	base, err := Build(data, fam, Params{M: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WrapMP(base, MPParams{Params: Params{M: 8}, Probes: 3}); err == nil {
		t.Error("mismatched M should fail")
	}
	mp, err := WrapMP(base, MPParams{Params: Params{M: 16}, Probes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Probes() != 5 {
		t.Fatalf("probes = %d", mp.Probes())
	}
}
