package core

import (
	"math"

	"lccs/internal/pqueue"
	"lccs/internal/stats"
)

// NearNeighbor answers the (R, c)-NNS decision problem of Definition 2.2:
// if some indexed object lies within distance R of q, it returns an object
// within cR (with the success probability of Theorem 5.1 when lambda is
// chosen accordingly); if every object is farther than cR it returns
// ok = false; in between the answer is undefined (either outcome is
// valid). lambda ≤ 0 selects Theorem 5.1's λ computed from the family's
// collision probabilities at R and cR.
func (ix *Index) NearNeighbor(q []float32, r, c float64, lambda int) (pqueue.Neighbor, bool) {
	if r <= 0 || c <= 1 {
		return pqueue.Neighbor{}, false
	}
	if lambda <= 0 {
		lambda = ix.TheoremLambda(r, c)
	}
	cands := ix.Search(q, 1, lambda)
	if len(cands) == 0 || cands[0].Dist > c*r {
		return pqueue.Neighbor{}, false
	}
	return cands[0], true
}

// TheoremLambda evaluates Theorem 5.1's candidate budget λ for radius R
// and approximation c, using the family's analytic collision probability
// for p1 = p(R) and p2 = p(cR). Degenerate probabilities (p1 ≤ p2) fall
// back to a full scan budget.
func (ix *Index) TheoremLambda(r, c float64) int {
	p1 := ix.family.CollisionProb(r)
	p2 := ix.family.CollisionProb(c * r)
	if !(p1 > p2) || p2 <= 0 || p1 >= 1 {
		return ix.N()
	}
	return stats.TheoremLambda(ix.m, ix.N(), p1, p2)
}

// ApproxNearest solves c-ANNS through the standard reduction of §2.1: a
// geometric sweep over radii R ∈ {r0, c·r0, c²·r0, ...} of (R, c)-NNS
// decisions, returning the first success. r0 ≤ 0 starts the sweep at a
// small fraction of the distance scale probed from the index; maxLevels
// bounds the sweep (≤ 0 selects enough levels to cover the probed scale
// ×c⁴). Returns ok = false only when no level succeeds — for any query
// with a finite nearest neighbor, enough levels always succeed, so a
// false result indicates the sweep was bounded too tightly.
//
// This is the theory-faithful driver; the practical top-k interface
// (Search) skips the reduction and verifies a fixed candidate budget,
// exactly as the paper's experiments do.
func (ix *Index) ApproxNearest(q []float32, c float64, r0 float64, maxLevels int) (pqueue.Neighbor, bool) {
	if c <= 1 {
		return pqueue.Neighbor{}, false
	}
	if r0 <= 0 {
		r0 = ix.probeScale() / 64
		if r0 <= 0 {
			r0 = 1e-3
		}
	}
	if maxLevels <= 0 {
		top := ix.probeScale() * c * c * c * c
		maxLevels = 1
		for r := r0; r < top && maxLevels < 64; r *= c {
			maxLevels++
		}
	}
	r := r0
	for level := 0; level < maxLevels; level++ {
		if nb, ok := ix.NearNeighbor(q, r, c, 0); ok {
			return nb, true
		}
		r *= c
	}
	return pqueue.Neighbor{}, false
}

// probeScale estimates the dataset's distance scale: the median distance
// between a few sampled pairs.
func (ix *Index) probeScale() float64 {
	n := ix.N()
	if n < 2 {
		return 0
	}
	const samples = 32
	dists := make([]float64, 0, samples)
	step := n/samples + 1
	for i := 0; i+step < n; i += step {
		dists = append(dists, ix.metric.Distance(ix.store.Row(i), ix.store.Row(i+step)))
	}
	if len(dists) == 0 {
		return 0
	}
	// Median via partial selection (tiny slice: sort is fine).
	for i := 1; i < len(dists); i++ {
		for j := i; j > 0 && dists[j] < dists[j-1]; j-- {
			dists[j], dists[j-1] = dists[j-1], dists[j]
		}
	}
	med := dists[len(dists)/2]
	if math.IsNaN(med) {
		return 0
	}
	return med
}
