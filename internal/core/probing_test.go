package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"lccs/internal/lshfamily"
	"lccs/internal/rng"
	"lccs/internal/vec"
)

func randAlts(r *rand.Rand, m, maxLen int) [][]lshfamily.Alternative {
	alts := make([][]lshfamily.Alternative, m)
	for i := range alts {
		l := r.IntN(maxLen + 1)
		list := make([]lshfamily.Alternative, l)
		s := 0.0
		for j := range list {
			s += r.Float64()
			list[j] = lshfamily.Alternative{Value: int32(100*i + j), Score: s}
		}
		alts[i] = list
	}
	return alts
}

func TestGeneratePerturbationsAscendingScores(t *testing.T) {
	f := func(seed uint64, probesRaw, gapRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, 3))
		m := 4 + r.IntN(12)
		alts := randAlts(r, m, 4)
		probes := 1 + int(probesRaw%40)
		maxGap := 1 + int(gapRaw%3)
		perts := generatePerturbations(alts, probes, maxGap)
		if len(perts) > probes-1 {
			return false
		}
		for i := 1; i < len(perts); i++ {
			if perts[i].score < perts[i-1].score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratePerturbationsGapConstraint(t *testing.T) {
	f := func(seed uint64, gapRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, 5))
		m := 6 + r.IntN(10)
		alts := randAlts(r, m, 3)
		maxGap := 1 + int(gapRaw%3)
		perts := generatePerturbations(alts, 50, maxGap)
		for _, p := range perts {
			for j := 1; j < len(p.mods); j++ {
				gap := p.mods[j].pos - p.mods[j-1].pos
				if gap < 1 || gap > maxGap {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratePerturbationsUnique(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	alts := randAlts(r, 10, 4)
	perts := generatePerturbations(alts, 200, 2)
	seen := map[string]bool{}
	for _, p := range perts {
		key := ""
		for _, md := range p.mods {
			key += string(rune(md.pos)) + ":" + string(rune(md.alt)) + ","
		}
		if seen[key] {
			t.Fatalf("duplicate perturbation %v", p.mods)
		}
		seen[key] = true
	}
}

func TestGeneratePerturbationsScoresAreSums(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 3))
	alts := randAlts(r, 8, 4)
	perts := generatePerturbations(alts, 100, 2)
	for _, p := range perts {
		var want float64
		for _, md := range p.mods {
			want += alts[md.pos][md.alt].Score
		}
		if diff := p.score - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("score %v, want %v for %v", p.score, want, p.mods)
		}
	}
}

func TestGeneratePerturbationsEdgeCases(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 1))
	alts := randAlts(r, 6, 3)
	if got := generatePerturbations(alts, 1, 2); len(got) != 0 {
		t.Error("probes=1 should yield no perturbations")
	}
	if got := generatePerturbations(alts, 0, 2); len(got) != 0 {
		t.Error("probes=0 should yield no perturbations")
	}
	// All-empty alternative lists: nothing to perturb.
	empty := make([][]lshfamily.Alternative, 5)
	if got := generatePerturbations(empty, 10, 2); len(got) != 0 {
		t.Error("no alternatives should yield no perturbations")
	}
	// Exhaustion: tiny alphabet caps the number of vectors.
	one := [][]lshfamily.Alternative{
		{{Value: 1, Score: 0.5}},
		{{Value: 2, Score: 0.7}},
	}
	got := generatePerturbations(one, 100, 2)
	// Possible vectors: {0}, {1}, {0,1} → 3.
	if len(got) != 3 {
		t.Errorf("got %d perturbations, want 3", len(got))
	}
}

func TestGeneratePerturbationsFirstIsGlobalMin(t *testing.T) {
	r := rand.New(rand.NewPCG(17, 2))
	for trial := 0; trial < 30; trial++ {
		alts := randAlts(r, 8, 4)
		perts := generatePerturbations(alts, 2, 2)
		if len(perts) == 0 {
			continue
		}
		best := perts[0].score
		for i, list := range alts {
			if len(list) > 0 && list[0].Score < best-1e-12 {
				t.Fatalf("position %d has cheaper single mod %v < %v", i, list[0].Score, best)
			}
		}
	}
}

func TestBuildMPValidation(t *testing.T) {
	g := rng.New(20)
	data := clusteredData(g, 50, 8, 4, 0.3)
	fam := lshfamily.NewRandomProjection(8, 8)
	if _, err := BuildMP(data, fam, MPParams{Params: Params{M: 8}, Probes: 0}); err == nil {
		t.Error("Probes=0 should fail")
	}
	if _, err := BuildMP(data, fam, MPParams{Params: Params{M: 0}, Probes: 2}); err == nil {
		t.Error("M=0 should fail")
	}
	mp, err := BuildMP(data, fam, MPParams{Params: Params{M: 8}, Probes: 9})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Probes() != 9 {
		t.Errorf("Probes = %d", mp.Probes())
	}
	if mp.maxGap != DefaultMaxGap || mp.maxAlt != defaultMaxAlt {
		t.Error("defaults not applied")
	}
}

func TestMPSearchSelfQuery(t *testing.T) {
	g := rng.New(22)
	data := make([][]float32, 300)
	for i := range data {
		data[i] = g.UniformVector(12, -10, 10)
	}
	fam := lshfamily.NewRandomProjection(12, 2)
	mp, err := BuildMP(data, fam, MPParams{Params: Params{M: 32, Seed: 1}, Probes: 17})
	if err != nil {
		t.Fatal(err)
	}
	if !hashStringsDistinct(mp.Index) {
		t.Skip("hash strings collided; self-query rank not guaranteed")
	}
	for id := 0; id < 300; id += 61 {
		res := mp.Search(data[id], 1, 4)
		if len(res) == 0 || res[0].Dist != 0 {
			t.Fatalf("id %d: self-query failed: %+v", id, res)
		}
	}
}

func TestMPSearchStatsProbes(t *testing.T) {
	g := rng.New(24)
	data := clusteredData(g, 200, 8, 4, 0.3)
	fam := lshfamily.NewRandomProjection(8, 8)
	mp, _ := BuildMP(data, fam, MPParams{Params: Params{M: 16, Seed: 1}, Probes: 9})
	_, st := mp.SearchWithStats(data[0], 5, 20)
	if st.Probes != 9 {
		t.Errorf("Probes = %d, want 9", st.Probes)
	}
	mp1, _ := BuildMP(data, fam, MPParams{Params: Params{M: 16, Seed: 1}, Probes: 1})
	_, st1 := mp1.SearchWithStats(data[0], 5, 20)
	if st1.Probes != 1 {
		t.Errorf("Probes = %d, want 1", st1.Probes)
	}
}

// TestMPImprovesRecallAtSmallM: the headline property of MP-LCCS-LSH —
// with a small index (small m), probing recovers recall that the
// single-probe scheme misses (Figure 10 / §6.4 "Impact of #probes").
func TestMPImprovesRecallAtSmallM(t *testing.T) {
	g := rng.New(26)
	n, d, k := 2000, 16, 10
	data := clusteredData(g, n, d, 15, 0.8)
	fam := lshfamily.NewRandomProjection(d, 14)
	m := 16
	single, err := Build(data, fam, Params{M: m, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := BuildMP(data, fam, MPParams{Params: Params{M: m, Seed: 3}, Probes: 4*m + 1})
	if err != nil {
		t.Fatal(err)
	}
	queries := queriesFrom(g, data, 25, 0.4)
	lambda := 30
	var rs, rm float64
	for _, q := range queries {
		want := bruteForceKNN(data, q, k, vec.Euclidean)
		rs += recallOf(single.Search(q, k, lambda), want)
		rm += recallOf(multi.Search(q, k, lambda), want)
	}
	rs /= float64(len(queries))
	rm /= float64(len(queries))
	if rm < rs-0.02 {
		t.Fatalf("multi-probe recall %.3f worse than single-probe %.3f", rm, rs)
	}
}

func TestMPSearchCrossPolytope(t *testing.T) {
	g := rng.New(28)
	n, d := 1000, 32
	data := clusteredData(g, n, d, 10, 0.5)
	for _, v := range data {
		vec.NormalizeInPlace(v)
	}
	fam := lshfamily.NewCrossPolytope(d)
	mp, err := BuildMP(data, fam, MPParams{Params: Params{M: 32, Seed: 5}, Probes: 33})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i := 0; i < 10; i++ {
		q := data[i*13]
		want := bruteForceKNN(data, q, 5, vec.Angular)
		got := mp.Search(q, 5, 80)
		total += recallOf(got, want)
	}
	if avg := total / 10; avg < 0.6 {
		t.Fatalf("MP cross-polytope recall %.2f too low", avg)
	}
}

func TestMPConcurrentQueries(t *testing.T) {
	g := rng.New(30)
	data := make([][]float32, 300)
	for i := range data {
		data[i] = g.UniformVector(8, -10, 10)
	}
	fam := lshfamily.NewRandomProjection(8, 2)
	mp, _ := BuildMP(data, fam, MPParams{Params: Params{M: 32, Seed: 4}, Probes: 17})
	if !hashStringsDistinct(mp.Index) {
		t.Skip("hash strings collided; self-query rank not guaranteed")
	}
	done := make(chan bool)
	for w := 0; w < 6; w++ {
		go func(w int) {
			for i := 0; i < 30; i++ {
				q := data[(w*30+i)%len(data)]
				res := mp.Search(q, 3, 15)
				if len(res) == 0 || res[0].Dist != 0 {
					t.Errorf("worker %d: self-query failed", w)
					break
				}
			}
			done <- true
		}(w)
	}
	for w := 0; w < 6; w++ {
		<-done
	}
}
