package core

import (
	"testing"

	"lccs/internal/lshfamily"
	"lccs/internal/rng"
	"lccs/internal/vec"
)

func rcFixture(t *testing.T) (*Index, [][]float32, *rng.RNG) {
	t.Helper()
	g := rng.New(101)
	data := clusteredData(g, 1000, 16, 10, 0.5)
	fam := lshfamily.NewRandomProjection(16, 6)
	ix, err := Build(data, fam, Params{M: 64, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	return ix, data, g
}

func TestNearNeighborDecision(t *testing.T) {
	ix, data, g := rcFixture(t)
	c := 2.0
	hits := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		// Query right next to a data point: the NN distance is ~0.2,
		// so (R=1, c) must succeed and return something within cR.
		base := data[g.IntN(len(data))]
		q := make([]float32, len(base))
		for j := range q {
			q[j] = base[j] + float32(g.NormFloat64()*0.05)
		}
		nb, ok := ix.NearNeighbor(q, 1, c, 200)
		if ok {
			if nb.Dist > c*1 {
				t.Fatalf("returned object at %v > cR", nb.Dist)
			}
			hits++
		}
	}
	// Theorem 5.1 guarantees ≥ 1/4; with a generous λ the rate is high.
	if hits < trials*3/4 {
		t.Fatalf("only %d/%d decisions succeeded", hits, trials)
	}

	// A query absurdly far from everything must return nothing at small R.
	far := make([]float32, 16)
	for j := range far {
		far[j] = 1e6
	}
	if _, ok := ix.NearNeighbor(far, 1, c, 200); ok {
		t.Fatal("far query should fail the (R, c) decision")
	}
	// Degenerate parameters.
	if _, ok := ix.NearNeighbor(data[0], 0, c, 10); ok {
		t.Fatal("R=0 should fail")
	}
	if _, ok := ix.NearNeighbor(data[0], 1, 1, 10); ok {
		t.Fatal("c=1 should fail")
	}
}

func TestTheoremLambdaFromFamily(t *testing.T) {
	ix, _, _ := rcFixture(t)
	lam := ix.TheoremLambda(1, 2)
	if lam < 1 || lam > ix.N() {
		t.Fatalf("lambda = %d out of range", lam)
	}
	// Larger radius ⇒ both probabilities shrink; λ stays in range.
	lam2 := ix.TheoremLambda(10, 2)
	if lam2 < 1 || lam2 > ix.N() {
		t.Fatalf("lambda = %d out of range", lam2)
	}
	// Degenerate: enormous radius where p1 ≈ p2 ≈ 0 falls back to full
	// scan.
	if got := ix.TheoremLambda(1e9, 2); got != ix.N() {
		t.Fatalf("degenerate lambda = %d, want N", got)
	}
}

func TestApproxNearestFindsNeighbor(t *testing.T) {
	ix, data, g := rcFixture(t)
	for i := 0; i < 10; i++ {
		base := data[g.IntN(len(data))]
		q := make([]float32, len(base))
		for j := range q {
			q[j] = base[j] + float32(g.NormFloat64()*0.1)
		}
		nb, ok := ix.ApproxNearest(q, 2, 0, 0)
		if !ok {
			t.Fatalf("query %d: sweep failed", i)
		}
		// The returned object must be within c× the true NN distance
		// times the sweep slack (one extra level of c): c²·d*.
		best := 1e18
		for _, v := range data {
			if d := vec.Distance(v, q); d < best {
				best = d
			}
		}
		if nb.Dist > 4*best+1e-6 {
			t.Fatalf("query %d: returned %v, true NN %v (c²=4 bound exceeded)", i, nb.Dist, best)
		}
	}
	if _, ok := ix.ApproxNearest(data[0], 1, 0, 0); ok {
		t.Fatal("c=1 should fail")
	}
}

func TestApproxNearestBoundedLevels(t *testing.T) {
	ix, _, _ := rcFixture(t)
	far := make([]float32, 16)
	for j := range far {
		far[j] = 1e6
	}
	// One tiny level cannot reach the far query's neighborhood.
	if _, ok := ix.ApproxNearest(far, 2, 1e-6, 1); ok {
		t.Fatal("bounded sweep should fail for far query")
	}
}
