// Package core implements the paper's primary contribution: the LCCS-LSH
// scheme (§4.1) and its multi-probe variant MP-LCCS-LSH (§4.2).
//
// Indexing phase: draw m i.i.d. LSH functions h_1..h_m from any LSH
// family, hash every data object o into the length-m hash string
// H(o) = [h_1(o), ..., h_m(o)], and build a Circular Shift Array over the
// n hash strings. Query phase: hash q the same way, retrieve the λ+k−1
// strings with the longest LCCS against H(q) from the CSA, verify them
// with exact distances, and return the k nearest.
//
// The scheme is LSH-family-independent: it supports any distance metric
// that admits an LSH family, and it exposes a single capacity parameter m
// (plus the per-query candidate budget λ).
//
// The data plane is flat: vectors live in a vec.Store (one contiguous
// float32 block) and every per-query scratch object — the CSA searcher,
// the hash-string buffer, the k-best collector, the multi-probe
// perturbation state — lives in one pooled searchCtx, so a steady-state
// SearchInto performs no heap allocations.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"lccs/internal/csa"
	"lccs/internal/lshfamily"
	"lccs/internal/obs"
	"lccs/internal/pqueue"
	"lccs/internal/rng"
	"lccs/internal/vec"
)

// verifyBatch is the number of candidate ids drained from the CSA
// stream per batched distance gather. Large enough to amortize the
// per-batch dispatch, small enough that the id/distance scratch lives
// comfortably inside the pooled searchCtx.
const verifyBatch = 64

// Params configures an LCCS-LSH index.
type Params struct {
	// M is the hash-string length — the paper's single tunable indexing
	// parameter (§4, "it requires to tune only a single parameter m").
	M int
	// Seed drives all randomness (hash function draws); equal seeds
	// yield identical indexes.
	Seed uint64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.M <= 0 {
		return fmt.Errorf("core: M must be positive, got %d", p.M)
	}
	return nil
}

// SearchStats describes the work done by one query, used by the
// experiment harness.
type SearchStats struct {
	// Candidates is the number of distinct data objects verified with
	// an exact distance computation.
	Candidates int
	// Probes is the number of probing sequences issued (1 for
	// single-probe LCCS-LSH).
	Probes int
	// Comparisons is the number of hash-string comparisons performed by
	// the CSA's circular binary searches — the "rows touched" of the
	// retrieval phase, as opposed to the Candidates verified exactly.
	Comparisons int
	// Reranked is the number of candidates re-ranked with exact float32
	// distances after the quantized (SQ8) scan; 0 on exact indexes.
	Reranked int
	// BytesScanned is the vector-block memory traffic of the
	// verification phase: float32 gathers cost 4 bytes per dimension per
	// candidate, SQ8 score gathers 1 byte, and the exact re-rank pays
	// the float32 rate again for its survivors.
	BytesScanned int64
	// FilterRejected counts candidates the accept predicate discarded
	// before any distance work (filtered searches only).
	FilterRejected int
}

// Add accumulates o into s (facades fold per-shard stats into one query
// record with it).
func (s *SearchStats) Add(o SearchStats) {
	s.Candidates += o.Candidates
	s.Probes += o.Probes
	s.Comparisons += o.Comparisons
	s.Reranked += o.Reranked
	s.BytesScanned += o.BytesScanned
	s.FilterRejected += o.FilterRejected
}

// Index is a single-probe LCCS-LSH index over a fixed dataset.
// It is safe for concurrent queries.
type Index struct {
	family lshfamily.Family
	funcs  []lshfamily.Func
	metric vec.Metric
	store  *vec.Store
	csa    *csa.CSA
	m      int
	seed   uint64

	// sq8, when non-nil, is the scalar-quantized mirror of store:
	// candidate verification ranks by approximate quantized scores and
	// re-ranks the best rerank of them with exact distances.
	sq8    *vec.SQ8Store
	rerank int

	buildTime time.Duration
	// ctxs pools searchCtx values: all per-query scratch in one object,
	// one Get/Put per query.
	ctxs sync.Pool
}

// searchCtx is the pooled per-query state: everything a search touches
// besides the immutable index, reused across queries so the steady-state
// hot path performs no heap allocations.
type searchCtx struct {
	s    *csa.Searcher
	hq   []int32      // hash-string buffer, H(q)
	best pqueue.KBest // k-best verification collector
	// batched-verification scratch: candidate ids drained from the CSA
	// stream and their gathered distances / quantized scores.
	ids    [verifyBatch]int32
	dists  [verifyBatch]float64
	scores [verifyBatch]float32
	// quantized-path scratch: per-query SQ8 state, the approx-score
	// collector, and the sorted winners buffer for the exact re-rank.
	sq8q  vec.SQ8Query
	rr    pqueue.KBest
	rrBuf []pqueue.Neighbor
	// multi-probe scratch (unused, zero-cost for single-probe indexes)
	alts     [][]lshfamily.Alternative
	probeStr []int32
	modPos   []int
	affected []int
	// per-query cost accumulators, reset on entry and read into the
	// returned SearchStats: vector-block bytes touched and candidates
	// the filter predicate rejected.
	bytes    int64
	rejected int
}

// initPool installs the searchCtx pool; called once per constructed or
// decoded index.
func (ix *Index) initPool() {
	m := ix.m
	ix.ctxs.New = func() any {
		return &searchCtx{
			s:        ix.csa.NewSearcher(),
			hq:       make([]int32, m),
			alts:     make([][]lshfamily.Alternative, m),
			probeStr: make([]int32, m),
		}
	}
}

// Build constructs an LCCS-LSH index over data using the given LSH
// family. It is the row-slice convenience wrapper around BuildStore:
// the rows are packed once into a flat vec.Store, which the index
// retains.
func Build(data [][]float32, family lshfamily.Family, p Params) (*Index, error) {
	store, err := vec.FromRows(data)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return BuildStore(store, family, p)
}

// BuildStore constructs an LCCS-LSH index over the vectors of a flat
// store. The store is retained by reference and must not be mutated
// afterwards (appends to an owning store the index got a Slice view of
// are fine — views are stable).
func BuildStore(store *vec.Store, family lshfamily.Family, p Params) (*Index, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := store.Len()
	if n == 0 {
		return nil, errors.New("core: empty dataset")
	}
	if store.Dim() != family.Dim() {
		return nil, fmt.Errorf("core: store has dimension %d, family expects %d", store.Dim(), family.Dim())
	}
	start := time.Now()
	g := rng.New(p.Seed)
	funcs := lshfamily.NewFuncs(family, p.M, g)

	// Hash all objects in parallel; the flat block is handed straight to
	// the CSA.
	m := p.M
	flat := make([]int32, n*m)
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for id := lo; id < hi; id++ {
				lshfamily.HashString(funcs, store.Row(id), flat[id*m:(id+1)*m])
			}
		}(lo, hi)
	}
	wg.Wait()

	ix := &Index{
		family: family,
		funcs:  funcs,
		metric: family.Metric(),
		store:  store,
		csa:    csa.NewFromFlat(flat, n, m),
		m:      m,
		seed:   p.Seed,
	}
	ix.initPool()
	ix.buildTime = time.Since(start)
	return ix, nil
}

// M returns the hash-string length.
func (ix *Index) M() int { return ix.m }

// Seed returns the seed the hash functions were drawn from.
func (ix *Index) Seed() uint64 { return ix.seed }

// N returns the number of indexed objects.
func (ix *Index) N() int { return ix.store.Len() }

// Family returns the LSH family backing the index.
func (ix *Index) Family() lshfamily.Family { return ix.family }

// Metric returns the index's distance metric.
func (ix *Index) Metric() vec.Metric { return ix.metric }

// BuildTime returns the wall-clock indexing time.
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// Bytes returns the approximate memory footprint of the index: the CSA
// plus the hash functions (the dataset itself is not counted, matching the
// paper's index-size metric).
func (ix *Index) Bytes() int64 {
	return ix.csa.Bytes() + lshfamily.FuncsBytes(ix.funcs)
}

// HashQuery computes H(q) for a query vector. Exposed for tests and for
// tools that inspect hash strings.
func (ix *Index) HashQuery(q []float32) []int32 {
	return lshfamily.HashString(ix.funcs, q, nil)
}

// Search answers a c-k-ANNS query: it performs a (λ+k−1)-LCCS search of
// H(q) (§4.1), verifies the candidates with exact distances, and returns
// the k nearest in ascending distance order. lambda is the candidate
// budget λ; larger values trade time for recall.
func (ix *Index) Search(q []float32, k, lambda int) []pqueue.Neighbor {
	res, _ := ix.searchInto(q, k, lambda, nil)
	return res
}

// SearchInto is Search appending into dst (reset to dst[:0] first): the
// zero-allocation path for callers that reuse a result buffer.
func (ix *Index) SearchInto(q []float32, k, lambda int, dst []pqueue.Neighbor) []pqueue.Neighbor {
	res, _ := ix.searchInto(q, k, lambda, dst[:0])
	return res
}

// SearchWithStats is Search plus work counters.
func (ix *Index) SearchWithStats(q []float32, k, lambda int) ([]pqueue.Neighbor, SearchStats) {
	return ix.searchInto(q, k, lambda, nil)
}

// searchInto runs the single-probe query with pooled scratch, appending
// the k nearest to dst (which may be nil).
func (ix *Index) searchInto(q []float32, k, lambda int, dst []pqueue.Neighbor) ([]pqueue.Neighbor, SearchStats) {
	if k <= 0 || lambda <= 0 {
		return dst, SearchStats{}
	}
	ctx := ix.ctxs.Get().(*searchCtx)
	ctx.hq = lshfamily.HashString(ix.funcs, q, ctx.hq)

	nCand := lambda + k - 1
	ctx.s.Begin(ctx.hq)
	ctx.best.Reset(k)
	ctx.bytes, ctx.rejected = 0, 0
	verified, reranked := ix.verifyCandidates(ctx, q, k, nCand)
	dst = ctx.best.AppendSorted(dst)
	stats := SearchStats{Candidates: verified, Probes: 1, Comparisons: ctx.s.Comparisons(), Reranked: reranked, BytesScanned: ctx.bytes}
	ix.ctxs.Put(ctx)
	return dst, stats
}

// EnableSQ8 attaches a scalar-quantized mirror of the index's store.
// Candidate verification then scans qs instead of the float32 store —
// one byte per dimension of memory traffic — collects the best rerank
// candidates by approximate score, and re-ranks those with exact
// distances, so returned distances are always exact. rerank values
// below the query's k are raised to k at query time. The metric must
// satisfy vec.SQ8Supported and qs must mirror the full store.
func (ix *Index) EnableSQ8(qs *vec.SQ8Store, rerank int) {
	if qs == nil {
		ix.sq8, ix.rerank = nil, 0
		return
	}
	if !vec.SQ8Supported(ix.metric) {
		panic(fmt.Sprintf("core: metric %q not supported by SQ8", ix.metric.Name()))
	}
	if qs.Len() != ix.store.Len() {
		panic("core: SQ8 store length mismatch")
	}
	if rerank <= 0 {
		rerank = defaultRerank(ix.store.Len())
	}
	ix.sq8 = qs
	ix.rerank = rerank
}

// SQ8 returns the attached quantized store, or nil (persistence hook).
func (ix *Index) SQ8() *vec.SQ8Store { return ix.sq8 }

// Rerank returns the configured exact re-rank depth (0 when exact).
func (ix *Index) Rerank() int {
	if ix.sq8 == nil {
		return 0
	}
	return ix.rerank
}

// defaultRerank picks a re-rank depth when the caller didn't: deep
// enough that SQ8 ranking noise around the cut line is overwhelmingly
// unlikely to evict a true neighbor, shallow enough to stay a small
// fraction of the verification budget.
func defaultRerank(n int) int {
	r := 64
	if n < r {
		r = n
	}
	if r < 1 {
		r = 1
	}
	return r
}

// verifyCandidates drains up to nCand candidates from ctx.s, computes
// their distances in batches of verifyBatch through the gather kernels,
// and feeds ctx.best (already Reset to k). It returns the number of
// candidates verified and the number re-ranked exactly (quantized path
// only). Candidates enter ctx.best in CSA stream order, exactly as the
// old per-row loop did, so results are bit-identical to per-row
// verification.
func (ix *Index) verifyCandidates(ctx *searchCtx, q []float32, k, nCand int) (verified, reranked int) {
	if ix.sq8 != nil {
		return ix.verifyQuantized(ctx, q, k, nCand)
	}
	for verified < nCand {
		b := 0
		max := nCand - verified
		if max > verifyBatch {
			max = verifyBatch
		}
		for b < max {
			r, ok := ctx.s.Next()
			if !ok {
				break
			}
			ctx.ids[b] = int32(r.ID)
			b++
		}
		if b == 0 {
			break
		}
		ix.store.GatherDistancesInto(ctx.ids[:b], q, ix.metric, ctx.dists[:b])
		ctx.bytes += int64(b) * int64(ix.store.Dim()) * 4
		for i := 0; i < b; i++ {
			ctx.best.Add(int(ctx.ids[i]), ctx.dists[i])
		}
		verified += b
	}
	return verified, 0
}

// verifyQuantized is the SQ8 verification path: rank the candidate
// stream by approximate quantized score, then re-rank the winners with
// exact float32 distances into ctx.best. The re-rank phase is timed
// into the obs "rerank" stage histogram.
func (ix *Index) verifyQuantized(ctx *searchCtx, q []float32, k, nCand int) (verified, reranked int) {
	rr := ix.rerank
	if rr < k {
		rr = k
	}
	ix.sq8.Prepare(ix.metric, q, &ctx.sq8q)
	ctx.rr.Reset(rr)
	for verified < nCand {
		b := 0
		max := nCand - verified
		if max > verifyBatch {
			max = verifyBatch
		}
		for b < max {
			r, ok := ctx.s.Next()
			if !ok {
				break
			}
			ctx.ids[b] = int32(r.ID)
			b++
		}
		if b == 0 {
			break
		}
		ix.sq8.GatherScoresInto(ctx.ids[:b], &ctx.sq8q, ctx.scores[:b])
		ctx.bytes += int64(b) * int64(ix.store.Dim())
		for i := 0; i < b; i++ {
			ctx.rr.Add(int(ctx.ids[i]), float64(ctx.scores[i]))
		}
		verified += b
	}
	start := time.Now()
	ctx.rrBuf = ctx.rr.AppendSorted(ctx.rrBuf[:0])
	for base := 0; base < len(ctx.rrBuf); base += verifyBatch {
		c := len(ctx.rrBuf) - base
		if c > verifyBatch {
			c = verifyBatch
		}
		for i := 0; i < c; i++ {
			ctx.ids[i] = int32(ctx.rrBuf[base+i].ID)
		}
		ix.store.GatherDistancesInto(ctx.ids[:c], q, ix.metric, ctx.dists[:c])
		ctx.bytes += int64(c) * int64(ix.store.Dim()) * 4
		for i := 0; i < c; i++ {
			ctx.best.Add(int(ctx.ids[i]), ctx.dists[i])
		}
	}
	reranked = len(ctx.rrBuf)
	obs.ObserveDur(obs.StageRerank, time.Since(start))
	return verified, reranked
}

// searchFilterInto is searchInto with a per-candidate accept predicate:
// candidates the predicate rejects are discarded before any distance
// work and do not count toward the λ+k−1 verification budget, so the
// CSA stream keeps draining (in LCCS order) until enough matching
// candidates are verified or the stream is exhausted — the over-fetch
// ladder for selective filters is built in. With an exhaustive budget
// (λ ≥ n) this verifies every matching row, making the result exactly
// the brute-force answer over matching vectors.
func (ix *Index) searchFilterInto(q []float32, k, lambda int, accept func(id int) bool, dst []pqueue.Neighbor) ([]pqueue.Neighbor, SearchStats) {
	if k <= 0 || lambda <= 0 {
		return dst, SearchStats{}
	}
	ctx := ix.ctxs.Get().(*searchCtx)
	ctx.hq = lshfamily.HashString(ix.funcs, q, ctx.hq)

	nCand := lambda + k - 1
	ctx.s.Begin(ctx.hq)
	ctx.best.Reset(k)
	ctx.bytes, ctx.rejected = 0, 0
	start := time.Now()
	verified, reranked := ix.verifyFiltered(ctx, q, k, nCand, accept)
	obs.ObserveDur(obs.StageFilter, time.Since(start))
	dst = ctx.best.AppendSorted(dst)
	stats := SearchStats{Candidates: verified, Probes: 1, Comparisons: ctx.s.Comparisons(), Reranked: reranked, BytesScanned: ctx.bytes, FilterRejected: ctx.rejected}
	ix.ctxs.Put(ctx)
	return dst, stats
}

// SearchFilterOffsetIntoStats is SearchOffsetIntoStats restricted to
// candidates the accept predicate admits. accept receives shard-local
// ids (before the offset shift). A nil accept takes the unfiltered path.
func (ix *Index) SearchFilterOffsetIntoStats(q []float32, k, lambda, offset int, accept func(id int) bool, dst []pqueue.Neighbor) ([]pqueue.Neighbor, SearchStats) {
	if accept == nil {
		return ix.SearchOffsetIntoStats(q, k, lambda, offset, dst)
	}
	res, stats := ix.searchFilterInto(q, k, lambda, accept, dst[:0])
	shiftIDs(res, offset)
	return res, stats
}

// verifyFiltered is verifyCandidates with the accept predicate applied
// to each drained candidate before it enters a gather batch. Rejected
// ids cost one predicate call and nothing else.
func (ix *Index) verifyFiltered(ctx *searchCtx, q []float32, k, nCand int, accept func(id int) bool) (verified, reranked int) {
	if ix.sq8 != nil {
		return ix.verifyQuantizedFiltered(ctx, q, k, nCand, accept)
	}
	for verified < nCand {
		b := 0
		max := nCand - verified
		if max > verifyBatch {
			max = verifyBatch
		}
		drained := false
		for b < max {
			r, ok := ctx.s.Next()
			if !ok {
				drained = true
				break
			}
			if !accept(r.ID) {
				ctx.rejected++
				continue
			}
			ctx.ids[b] = int32(r.ID)
			b++
		}
		if b > 0 {
			ix.store.GatherDistancesInto(ctx.ids[:b], q, ix.metric, ctx.dists[:b])
			ctx.bytes += int64(b) * int64(ix.store.Dim()) * 4
			for i := 0; i < b; i++ {
				ctx.best.Add(int(ctx.ids[i]), ctx.dists[i])
			}
			verified += b
		}
		if drained {
			break
		}
	}
	return verified, 0
}

// verifyQuantizedFiltered is verifyQuantized with the accept predicate
// applied before the quantized score gather; the exact re-rank then only
// ever sees matching candidates.
func (ix *Index) verifyQuantizedFiltered(ctx *searchCtx, q []float32, k, nCand int, accept func(id int) bool) (verified, reranked int) {
	rr := ix.rerank
	if rr < k {
		rr = k
	}
	ix.sq8.Prepare(ix.metric, q, &ctx.sq8q)
	ctx.rr.Reset(rr)
	for verified < nCand {
		b := 0
		max := nCand - verified
		if max > verifyBatch {
			max = verifyBatch
		}
		drained := false
		for b < max {
			r, ok := ctx.s.Next()
			if !ok {
				drained = true
				break
			}
			if !accept(r.ID) {
				ctx.rejected++
				continue
			}
			ctx.ids[b] = int32(r.ID)
			b++
		}
		if b > 0 {
			ix.sq8.GatherScoresInto(ctx.ids[:b], &ctx.sq8q, ctx.scores[:b])
			ctx.bytes += int64(b) * int64(ix.store.Dim())
			for i := 0; i < b; i++ {
				ctx.rr.Add(int(ctx.ids[i]), float64(ctx.scores[i]))
			}
			verified += b
		}
		if drained {
			break
		}
	}
	start := time.Now()
	ctx.rrBuf = ctx.rr.AppendSorted(ctx.rrBuf[:0])
	for base := 0; base < len(ctx.rrBuf); base += verifyBatch {
		c := len(ctx.rrBuf) - base
		if c > verifyBatch {
			c = verifyBatch
		}
		for i := 0; i < c; i++ {
			ctx.ids[i] = int32(ctx.rrBuf[base+i].ID)
		}
		ix.store.GatherDistancesInto(ctx.ids[:c], q, ix.metric, ctx.dists[:c])
		ctx.bytes += int64(c) * int64(ix.store.Dim()) * 4
		for i := 0; i < c; i++ {
			ctx.best.Add(int(ctx.ids[i]), ctx.dists[i])
		}
	}
	reranked = len(ctx.rrBuf)
	obs.ObserveDur(obs.StageRerank, time.Since(start))
	return verified, reranked
}

// Data returns the indexed vector with the given id (a view into the
// flat store; treat it as read-only).
func (ix *Index) Data(id int) []float32 { return ix.store.Row(id) }

// Store returns the flat vector store backing the index (read-only).
func (ix *Index) Store() *vec.Store { return ix.store }

// SearchOffset is Search for shard-local use: the index covers a
// contiguous slice of a larger dataset starting at global id offset, and
// every returned neighbor id is shifted by offset so results from several
// shards merge without remapping.
func (ix *Index) SearchOffset(q []float32, k, lambda, offset int) []pqueue.Neighbor {
	return shiftIDs(ix.Search(q, k, lambda), offset)
}

// SearchOffsetInto is SearchOffset appending into dst (reset to dst[:0]
// first), the zero-allocation shard fan-out path.
func (ix *Index) SearchOffsetInto(q []float32, k, lambda, offset int, dst []pqueue.Neighbor) []pqueue.Neighbor {
	res := ix.SearchInto(q, k, lambda, dst)
	shiftIDs(res, offset)
	return res
}

// SearchOffsetIntoStats is SearchOffsetInto returning the query's work
// counters — the traced shard fan-out path.
func (ix *Index) SearchOffsetIntoStats(q []float32, k, lambda, offset int, dst []pqueue.Neighbor) ([]pqueue.Neighbor, SearchStats) {
	res, stats := ix.searchInto(q, k, lambda, dst[:0])
	shiftIDs(res, offset)
	return res, stats
}

// shiftIDs adds offset to every neighbor id in place and returns the
// slice.
func shiftIDs(res []pqueue.Neighbor, offset int) []pqueue.Neighbor {
	if offset != 0 {
		for i := range res {
			res[i].ID += offset
		}
	}
	return res
}
