// Package core implements the paper's primary contribution: the LCCS-LSH
// scheme (§4.1) and its multi-probe variant MP-LCCS-LSH (§4.2).
//
// Indexing phase: draw m i.i.d. LSH functions h_1..h_m from any LSH
// family, hash every data object o into the length-m hash string
// H(o) = [h_1(o), ..., h_m(o)], and build a Circular Shift Array over the
// n hash strings. Query phase: hash q the same way, retrieve the λ+k−1
// strings with the longest LCCS against H(q) from the CSA, verify them
// with exact distances, and return the k nearest.
//
// The scheme is LSH-family-independent: it supports any distance metric
// that admits an LSH family, and it exposes a single capacity parameter m
// (plus the per-query candidate budget λ).
//
// The data plane is flat: vectors live in a vec.Store (one contiguous
// float32 block) and every per-query scratch object — the CSA searcher,
// the hash-string buffer, the k-best collector, the multi-probe
// perturbation state — lives in one pooled searchCtx, so a steady-state
// SearchInto performs no heap allocations.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"lccs/internal/csa"
	"lccs/internal/lshfamily"
	"lccs/internal/pqueue"
	"lccs/internal/rng"
	"lccs/internal/vec"
)

// Params configures an LCCS-LSH index.
type Params struct {
	// M is the hash-string length — the paper's single tunable indexing
	// parameter (§4, "it requires to tune only a single parameter m").
	M int
	// Seed drives all randomness (hash function draws); equal seeds
	// yield identical indexes.
	Seed uint64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.M <= 0 {
		return fmt.Errorf("core: M must be positive, got %d", p.M)
	}
	return nil
}

// SearchStats describes the work done by one query, used by the
// experiment harness.
type SearchStats struct {
	// Candidates is the number of distinct data objects verified with
	// an exact distance computation.
	Candidates int
	// Probes is the number of probing sequences issued (1 for
	// single-probe LCCS-LSH).
	Probes int
	// Comparisons is the number of hash-string comparisons performed by
	// the CSA's circular binary searches — the "rows touched" of the
	// retrieval phase, as opposed to the Candidates verified exactly.
	Comparisons int
}

// Index is a single-probe LCCS-LSH index over a fixed dataset.
// It is safe for concurrent queries.
type Index struct {
	family lshfamily.Family
	funcs  []lshfamily.Func
	metric vec.Metric
	store  *vec.Store
	csa    *csa.CSA
	m      int
	seed   uint64

	buildTime time.Duration
	// ctxs pools searchCtx values: all per-query scratch in one object,
	// one Get/Put per query.
	ctxs sync.Pool
}

// searchCtx is the pooled per-query state: everything a search touches
// besides the immutable index, reused across queries so the steady-state
// hot path performs no heap allocations.
type searchCtx struct {
	s    *csa.Searcher
	hq   []int32      // hash-string buffer, H(q)
	best pqueue.KBest // k-best verification collector
	// multi-probe scratch (unused, zero-cost for single-probe indexes)
	alts     [][]lshfamily.Alternative
	probeStr []int32
	modPos   []int
	affected []int
}

// initPool installs the searchCtx pool; called once per constructed or
// decoded index.
func (ix *Index) initPool() {
	m := ix.m
	ix.ctxs.New = func() any {
		return &searchCtx{
			s:        ix.csa.NewSearcher(),
			hq:       make([]int32, m),
			alts:     make([][]lshfamily.Alternative, m),
			probeStr: make([]int32, m),
		}
	}
}

// Build constructs an LCCS-LSH index over data using the given LSH
// family. It is the row-slice convenience wrapper around BuildStore:
// the rows are packed once into a flat vec.Store, which the index
// retains.
func Build(data [][]float32, family lshfamily.Family, p Params) (*Index, error) {
	store, err := vec.FromRows(data)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return BuildStore(store, family, p)
}

// BuildStore constructs an LCCS-LSH index over the vectors of a flat
// store. The store is retained by reference and must not be mutated
// afterwards (appends to an owning store the index got a Slice view of
// are fine — views are stable).
func BuildStore(store *vec.Store, family lshfamily.Family, p Params) (*Index, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := store.Len()
	if n == 0 {
		return nil, errors.New("core: empty dataset")
	}
	if store.Dim() != family.Dim() {
		return nil, fmt.Errorf("core: store has dimension %d, family expects %d", store.Dim(), family.Dim())
	}
	start := time.Now()
	g := rng.New(p.Seed)
	funcs := lshfamily.NewFuncs(family, p.M, g)

	// Hash all objects in parallel; the flat block is handed straight to
	// the CSA.
	m := p.M
	flat := make([]int32, n*m)
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for id := lo; id < hi; id++ {
				lshfamily.HashString(funcs, store.Row(id), flat[id*m:(id+1)*m])
			}
		}(lo, hi)
	}
	wg.Wait()

	ix := &Index{
		family: family,
		funcs:  funcs,
		metric: family.Metric(),
		store:  store,
		csa:    csa.NewFromFlat(flat, n, m),
		m:      m,
		seed:   p.Seed,
	}
	ix.initPool()
	ix.buildTime = time.Since(start)
	return ix, nil
}

// M returns the hash-string length.
func (ix *Index) M() int { return ix.m }

// Seed returns the seed the hash functions were drawn from.
func (ix *Index) Seed() uint64 { return ix.seed }

// N returns the number of indexed objects.
func (ix *Index) N() int { return ix.store.Len() }

// Family returns the LSH family backing the index.
func (ix *Index) Family() lshfamily.Family { return ix.family }

// Metric returns the index's distance metric.
func (ix *Index) Metric() vec.Metric { return ix.metric }

// BuildTime returns the wall-clock indexing time.
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// Bytes returns the approximate memory footprint of the index: the CSA
// plus the hash functions (the dataset itself is not counted, matching the
// paper's index-size metric).
func (ix *Index) Bytes() int64 {
	return ix.csa.Bytes() + lshfamily.FuncsBytes(ix.funcs)
}

// HashQuery computes H(q) for a query vector. Exposed for tests and for
// tools that inspect hash strings.
func (ix *Index) HashQuery(q []float32) []int32 {
	return lshfamily.HashString(ix.funcs, q, nil)
}

// Search answers a c-k-ANNS query: it performs a (λ+k−1)-LCCS search of
// H(q) (§4.1), verifies the candidates with exact distances, and returns
// the k nearest in ascending distance order. lambda is the candidate
// budget λ; larger values trade time for recall.
func (ix *Index) Search(q []float32, k, lambda int) []pqueue.Neighbor {
	res, _ := ix.searchInto(q, k, lambda, nil)
	return res
}

// SearchInto is Search appending into dst (reset to dst[:0] first): the
// zero-allocation path for callers that reuse a result buffer.
func (ix *Index) SearchInto(q []float32, k, lambda int, dst []pqueue.Neighbor) []pqueue.Neighbor {
	res, _ := ix.searchInto(q, k, lambda, dst[:0])
	return res
}

// SearchWithStats is Search plus work counters.
func (ix *Index) SearchWithStats(q []float32, k, lambda int) ([]pqueue.Neighbor, SearchStats) {
	return ix.searchInto(q, k, lambda, nil)
}

// searchInto runs the single-probe query with pooled scratch, appending
// the k nearest to dst (which may be nil).
func (ix *Index) searchInto(q []float32, k, lambda int, dst []pqueue.Neighbor) ([]pqueue.Neighbor, SearchStats) {
	if k <= 0 || lambda <= 0 {
		return dst, SearchStats{}
	}
	ctx := ix.ctxs.Get().(*searchCtx)
	ctx.hq = lshfamily.HashString(ix.funcs, q, ctx.hq)

	nCand := lambda + k - 1
	ctx.s.Begin(ctx.hq)
	ctx.best.Reset(k)
	verified := 0
	for verified < nCand {
		r, ok := ctx.s.Next()
		if !ok {
			break
		}
		ctx.best.Add(r.ID, ix.metric.Distance(ix.store.Row(r.ID), q))
		verified++
	}
	dst = ctx.best.AppendSorted(dst)
	stats := SearchStats{Candidates: verified, Probes: 1, Comparisons: ctx.s.Comparisons()}
	ix.ctxs.Put(ctx)
	return dst, stats
}

// Data returns the indexed vector with the given id (a view into the
// flat store; treat it as read-only).
func (ix *Index) Data(id int) []float32 { return ix.store.Row(id) }

// Store returns the flat vector store backing the index (read-only).
func (ix *Index) Store() *vec.Store { return ix.store }

// SearchOffset is Search for shard-local use: the index covers a
// contiguous slice of a larger dataset starting at global id offset, and
// every returned neighbor id is shifted by offset so results from several
// shards merge without remapping.
func (ix *Index) SearchOffset(q []float32, k, lambda, offset int) []pqueue.Neighbor {
	return shiftIDs(ix.Search(q, k, lambda), offset)
}

// SearchOffsetInto is SearchOffset appending into dst (reset to dst[:0]
// first), the zero-allocation shard fan-out path.
func (ix *Index) SearchOffsetInto(q []float32, k, lambda, offset int, dst []pqueue.Neighbor) []pqueue.Neighbor {
	res := ix.SearchInto(q, k, lambda, dst)
	shiftIDs(res, offset)
	return res
}

// SearchOffsetIntoStats is SearchOffsetInto returning the query's work
// counters — the traced shard fan-out path.
func (ix *Index) SearchOffsetIntoStats(q []float32, k, lambda, offset int, dst []pqueue.Neighbor) ([]pqueue.Neighbor, SearchStats) {
	res, stats := ix.searchInto(q, k, lambda, dst[:0])
	shiftIDs(res, offset)
	return res, stats
}

// shiftIDs adds offset to every neighbor id in place and returns the
// slice.
func shiftIDs(res []pqueue.Neighbor, offset int) []pqueue.Neighbor {
	if offset != 0 {
		for i := range res {
			res[i].ID += offset
		}
	}
	return res
}
