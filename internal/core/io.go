package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"lccs/internal/csa"
	"lccs/internal/lshfamily"
	"lccs/internal/rng"
	"lccs/internal/vec"
)

// indexMagic versions the on-disk index format.
var indexMagic = [8]byte{'L', 'C', 'C', 'S', 'I', 'D', 'X', '1'}

// Encode serializes the index: parameters plus the CSA. The dataset
// itself is not stored — hash functions regenerate deterministically from
// (family, M, Seed), and the caller supplies the same data slice at
// Decode time. Loading skips the m sorts of Algorithm 1.
func (ix *Index) Encode(w io.Writer) error {
	if _, err := w.Write(indexMagic[:]); err != nil {
		return err
	}
	name := ix.family.Name()
	if err := binary.Write(w, binary.LittleEndian, int32(len(name))); err != nil {
		return err
	}
	if _, err := w.Write([]byte(name)); err != nil {
		return err
	}
	hdr := []int64{int64(ix.family.Dim()), int64(ix.m), int64(ix.store.Len())}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, ix.seed); err != nil {
		return err
	}
	return ix.csa.Encode(w)
}

// Decode reconstructs an index written by Encode from row-slice data: a
// convenience wrapper that packs the rows into a flat store first. See
// DecodeStore.
func Decode(r io.Reader, data [][]float32, family lshfamily.Family) (*Index, error) {
	store, err := vec.FromRows(data)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return DecodeStore(r, store, family)
}

// DecodeStore reconstructs an index written by Encode. store must hold
// the exact dataset the index was built over (same order); family must
// match the family used at build time — both are verified against the
// stored metadata, and the hash strings of a data sample are re-verified
// against the stored CSA.
func DecodeStore(r io.Reader, store *vec.Store, family lshfamily.Family) (*Index, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("core: bad index magic %q", magic)
	}
	var nameLen int32
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	if nameLen < 0 || nameLen > 256 {
		return nil, fmt.Errorf("core: corrupt family name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return nil, err
	}
	var hdr [3]int64
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	var seed uint64
	if err := binary.Read(r, binary.LittleEndian, &seed); err != nil {
		return nil, err
	}
	if string(nameBuf) != family.Name() {
		return nil, fmt.Errorf("core: index built with family %q, got %q", nameBuf, family.Name())
	}
	if int(hdr[0]) != family.Dim() {
		return nil, fmt.Errorf("core: index dimension %d, family has %d", hdr[0], family.Dim())
	}
	n := store.Len()
	if int(hdr[2]) != n {
		return nil, fmt.Errorf("core: index covers %d objects, data has %d", hdr[2], n)
	}
	m := int(hdr[1])
	cs, err := csa.Decode(r)
	if err != nil {
		return nil, err
	}
	if cs.N() != n || cs.M() != m {
		return nil, fmt.Errorf("core: CSA shape %dx%d does not match header %dx%d", cs.N(), cs.M(), n, m)
	}

	g := rng.New(seed)
	funcs := lshfamily.NewFuncs(family, m, g)
	ix := &Index{
		family: family,
		funcs:  funcs,
		metric: family.Metric(),
		store:  store,
		csa:    cs,
		m:      m,
		seed:   seed,
	}
	ix.initPool()

	// Spot-check: rehash a few objects and compare against the stored
	// strings; a mismatch means the caller supplied different data or a
	// different family configuration.
	step := n/8 + 1
	for id := 0; id < n; id += step {
		want := cs.String(id)
		got := lshfamily.HashString(funcs, store.Row(id), nil)
		for j := range want {
			if want[j] != got[j] {
				return nil, fmt.Errorf("core: stored hash string of object %d does not match supplied data/family", id)
			}
		}
	}
	return ix, nil
}
