package core

import (
	"fmt"
	"sort"
	"testing"

	"lccs/internal/lshfamily"
	"lccs/internal/pqueue"
	"lccs/internal/rng"
	"lccs/internal/vec"
)

// clusteredData builds a small clustered dataset: nc cluster centers with
// points scattered tightly around them, so nearest neighbors are
// meaningful.
func clusteredData(g *rng.RNG, n, d, nc int, spread float64) [][]float32 {
	centers := make([][]float32, nc)
	for i := range centers {
		centers[i] = g.UniformVector(d, -10, 10)
	}
	data := make([][]float32, n)
	for i := range data {
		c := centers[i%nc]
		v := make([]float32, d)
		for j := range v {
			v[j] = c[j] + float32(g.NormFloat64()*spread)
		}
		data[i] = v
	}
	return data
}

// queriesFrom perturbs randomly chosen data points, producing queries that
// actually have near neighbors in the dataset (as the paper's query sets
// do: queries are held-out points from the same distribution).
func queriesFrom(g *rng.RNG, data [][]float32, nq int, noise float64) [][]float32 {
	out := make([][]float32, nq)
	for i := range out {
		base := data[g.IntN(len(data))]
		q := make([]float32, len(base))
		for j := range q {
			q[j] = base[j] + float32(g.NormFloat64()*noise)
		}
		out[i] = q
	}
	return out
}

func bruteForceKNN(data [][]float32, q []float32, k int, metric vec.Metric) []pqueue.Neighbor {
	b := pqueue.NewKBest(k)
	for id, v := range data {
		b.Add(id, metric.Distance(v, q))
	}
	return b.Sorted()
}

func recallOf(got, want []pqueue.Neighbor) float64 {
	wantSet := map[int]bool{}
	for _, w := range want {
		wantSet[w.ID] = true
	}
	hit := 0
	for _, gg := range got {
		if wantSet[gg.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

func TestBuildValidation(t *testing.T) {
	g := rng.New(1)
	fam := lshfamily.NewRandomProjection(4, 4)
	if _, err := Build(nil, fam, Params{M: 8}); err == nil {
		t.Error("empty dataset should fail")
	}
	if _, err := Build([][]float32{{1, 2, 3, 4}}, fam, Params{M: 0}); err == nil {
		t.Error("M=0 should fail")
	}
	if _, err := Build([][]float32{{1, 2}}, fam, Params{M: 8}); err == nil {
		t.Error("dimension mismatch should fail")
	}
	data := clusteredData(g, 10, 4, 2, 0.1)
	ix, err := Build(data, fam, Params{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ix.N() != 10 || ix.M() != 8 {
		t.Fatalf("N,M = %d,%d", ix.N(), ix.M())
	}
	if ix.Family() != fam || ix.Metric() != vec.Euclidean {
		t.Error("accessors wrong")
	}
	if ix.Bytes() <= 0 {
		t.Error("Bytes should be positive")
	}
	if len(ix.HashQuery(data[0])) != 8 {
		t.Error("HashQuery length wrong")
	}
	if !vec.Equal(ix.Data(3), data[3]) {
		t.Error("Data accessor wrong")
	}
}

func TestBuildDeterministicWithSeed(t *testing.T) {
	g := rng.New(2)
	data := clusteredData(g, 50, 8, 5, 0.2)
	fam := lshfamily.NewRandomProjection(8, 4)
	ix1, _ := Build(data, fam, Params{M: 16, Seed: 7})
	ix2, _ := Build(data, fam, Params{M: 16, Seed: 7})
	q := data[0]
	h1, h2 := ix1.HashQuery(q), ix2.HashQuery(q)
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("same seed produced different hash functions")
		}
	}
	ix3, _ := Build(data, fam, Params{M: 16, Seed: 8})
	h3 := ix3.HashQuery(q)
	same := true
	for i := range h1 {
		if h1[i] != h3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical hash functions")
	}
}

// distinctHashData returns a dataset whose hash strings under ix are all
// distinct, or false if they are not — self-query rank-1 guarantees only
// hold without exact hash-string duplicates.
func hashStringsDistinct(ix *Index) bool {
	seen := map[string]bool{}
	for id := 0; id < ix.N(); id++ {
		h := ix.HashQuery(ix.Data(id))
		key := fmt.Sprint(h)
		if seen[key] {
			return false
		}
		seen[key] = true
	}
	return true
}

func TestSearchSelfQuery(t *testing.T) {
	g := rng.New(3)
	// Spread-out data and a narrow bucket width keep hash strings
	// distinct, so the self point's LCCS = m is a strict maximum.
	data := make([][]float32, 200)
	for i := range data {
		data[i] = g.UniformVector(16, -10, 10)
	}
	fam := lshfamily.NewRandomProjection(16, 2)
	ix, err := Build(data, fam, Params{M: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !hashStringsDistinct(ix) {
		t.Skip("hash strings collided; self-query rank not guaranteed")
	}
	// Querying with an indexed point must return that point first:
	// its hash string matches itself with LCCS = m.
	for id := 0; id < 200; id += 37 {
		res := ix.Search(data[id], 1, 4)
		if len(res) == 0 {
			t.Fatalf("id %d: no results", id)
		}
		if res[0].Dist != 0 {
			t.Fatalf("id %d: top result at distance %v, want 0", id, res[0].Dist)
		}
	}
}

func TestSearchRecallEuclidean(t *testing.T) {
	g := rng.New(4)
	n, d, k := 2000, 24, 10
	data := clusteredData(g, n, d, 20, 0.8)
	fam := lshfamily.NewRandomProjection(d, 16)
	ix, err := Build(data, fam, Params{M: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	queries := queriesFrom(g, data, 20, 0.4)
	var total float64
	for _, q := range queries {
		want := bruteForceKNN(data, q, k, vec.Euclidean)
		got := ix.Search(q, k, 200)
		total += recallOf(got, want)
	}
	avg := total / 20
	if avg < 0.7 {
		t.Fatalf("average recall %.2f below 0.7 with generous budget", avg)
	}
}

func TestSearchRecallAngularCrossPolytope(t *testing.T) {
	g := rng.New(6)
	n, d, k := 1500, 32, 10
	data := clusteredData(g, n, d, 15, 0.6)
	for _, v := range data {
		vec.NormalizeInPlace(v)
	}
	fam := lshfamily.NewCrossPolytope(d)
	ix, err := Build(data, fam, Params{M: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	nq := 15
	for i := 0; i < nq; i++ {
		q := vec.Normalize(data[i*7])
		want := bruteForceKNN(data, q, k, vec.Angular)
		got := ix.Search(q, k, 150)
		total += recallOf(got, want)
	}
	if avg := total / float64(nq); avg < 0.7 {
		t.Fatalf("cross-polytope recall %.2f below 0.7", avg)
	}
}

func TestSearchFamilyIndependenceSimHash(t *testing.T) {
	// The same index code must work with a completely different family —
	// the framework consumes hash strings only (§1, "LSH-family-
	// independent").
	g := rng.New(8)
	n, d := 800, 16
	data := clusteredData(g, n, d, 8, 0.4)
	fam := lshfamily.NewSimHash(d)
	ix, err := Build(data, fam, Params{M: 128, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i := 0; i < 10; i++ {
		q := data[i*11]
		want := bruteForceKNN(data, q, 5, vec.Angular)
		got := ix.Search(q, 5, 100)
		total += recallOf(got, want)
	}
	if avg := total / 10; avg < 0.6 {
		t.Fatalf("simhash recall %.2f below 0.6", avg)
	}
}

func TestSearchBudgetMonotonic(t *testing.T) {
	// More candidates (larger λ) must never decrease recall on average.
	g := rng.New(10)
	n, d, k := 1500, 16, 10
	data := clusteredData(g, n, d, 12, 0.8)
	fam := lshfamily.NewRandomProjection(d, 12)
	ix, err := Build(data, fam, Params{M: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	queries := queriesFrom(g, data, 25, 0.4)
	recallAt := func(lambda int) float64 {
		var tot float64
		for _, q := range queries {
			want := bruteForceKNN(data, q, k, vec.Euclidean)
			tot += recallOf(ix.Search(q, k, lambda), want)
		}
		return tot / float64(len(queries))
	}
	small, large := recallAt(10), recallAt(400)
	if large < small {
		t.Fatalf("recall dropped with larger budget: %.2f -> %.2f", small, large)
	}
	if large < 0.75 {
		t.Fatalf("recall %.2f at budget 400 too low", large)
	}
}

func TestSearchStatsCounters(t *testing.T) {
	g := rng.New(12)
	data := clusteredData(g, 300, 8, 5, 0.3)
	fam := lshfamily.NewRandomProjection(8, 8)
	ix, _ := Build(data, fam, Params{M: 16, Seed: 1})
	_, st := ix.SearchWithStats(data[0], 5, 50)
	if st.Probes != 1 {
		t.Errorf("Probes = %d, want 1", st.Probes)
	}
	if st.Candidates != 54 { // λ + k − 1
		t.Errorf("Candidates = %d, want 54", st.Candidates)
	}
	// Degenerate arguments.
	if res, st := ix.SearchWithStats(data[0], 0, 10); res != nil || st.Candidates != 0 {
		t.Error("k=0 should return nothing")
	}
	if res := ix.Search(data[0], 5, 0); res != nil {
		t.Error("lambda=0 should return nothing")
	}
}

func TestSearchResultsSortedAndDistinct(t *testing.T) {
	g := rng.New(14)
	data := clusteredData(g, 500, 12, 6, 0.5)
	fam := lshfamily.NewRandomProjection(12, 10)
	ix, _ := Build(data, fam, Params{M: 32, Seed: 2})
	for trial := 0; trial < 10; trial++ {
		q := data[trial*31]
		res := ix.Search(q, 10, 60)
		if !sort.SliceIsSorted(res, func(a, b int) bool { return res[a].Dist < res[b].Dist }) {
			t.Fatal("results not sorted by distance")
		}
		seen := map[int]bool{}
		for _, r := range res {
			if seen[r.ID] {
				t.Fatal("duplicate result id")
			}
			seen[r.ID] = true
			if got := vec.Distance(data[r.ID], q); got != r.Dist {
				t.Fatalf("distance mismatch: %v vs %v", got, r.Dist)
			}
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	g := rng.New(16)
	data := make([][]float32, 400)
	for i := range data {
		data[i] = g.UniformVector(8, -10, 10)
	}
	fam := lshfamily.NewRandomProjection(8, 2)
	ix, _ := Build(data, fam, Params{M: 32, Seed: 4})
	if !hashStringsDistinct(ix) {
		t.Skip("hash strings collided; self-query rank not guaranteed")
	}
	done := make(chan bool)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 50; i++ {
				q := data[(w*50+i)%len(data)]
				res := ix.Search(q, 3, 20)
				if len(res) == 0 || res[0].Dist != 0 {
					t.Errorf("worker %d: self-query failed", w)
					break
				}
			}
			done <- true
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
