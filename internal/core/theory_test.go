package core

import (
	"math"
	"sort"
	"testing"

	"lccs/internal/hstring"
	"lccs/internal/rng"
	"lccs/internal/stats"
)

// genMatchedPair generates a pair of length-m strings whose symbols match
// independently with probability p (the model of §5.1).
func genMatchedPair(g *rng.RNG, m int, p float64) ([]int32, []int32) {
	a := make([]int32, m)
	b := make([]int32, m)
	for i := 0; i < m; i++ {
		a[i] = int32(g.IntN(1 << 20))
		if g.Float64() < p {
			b[i] = a[i]
		} else {
			b[i] = a[i] + 1 + int32(g.IntN(16))
		}
	}
	return a, b
}

// TestLemma52ExtremeValueApproximation validates Lemma 5.2: for large m,
// the LCCS length distribution is approximated by the shifted
// extreme-value CDF. We compare the empirical median of |LCCS| to the
// analytic median of Eq. 6 — they must agree within ~1.5 symbols.
func TestLemma52ExtremeValueApproximation(t *testing.T) {
	g := rng.New(71)
	for _, p := range []float64{0.4, 0.6, 0.8} {
		m := 512
		const trials = 800
		lengths := make([]float64, trials)
		for tr := 0; tr < trials; tr++ {
			a, b := genMatchedPair(g, m, p)
			lengths[tr] = float64(hstring.LCCS(a, b))
		}
		sort.Float64s(lengths)
		empMedian := lengths[trials/2]
		anaMedian := stats.LCCSLengthMedian(m, p)
		if math.Abs(empMedian-anaMedian) > 1.5 {
			t.Errorf("p=%v: empirical median %v vs Lemma 5.2 median %v", p, empMedian, anaMedian)
		}
	}
}

// TestLemma52CDFShape: the empirical CDF must track the analytic
// approximation within a few percent in the body of the distribution.
func TestLemma52CDFShape(t *testing.T) {
	g := rng.New(72)
	p := 0.6
	m := 512
	const trials = 1500
	lengths := make([]int, 0, trials)
	for tr := 0; tr < trials; tr++ {
		a, b := genMatchedPair(g, m, p)
		lengths = append(lengths, hstring.LCCS(a, b))
	}
	sort.Ints(lengths)
	// Lemma 5.2 is asymptotic and drops an O(·) correction term, so the
	// pointwise agreement is loose; the shape check below bounds the
	// discrepancy in the body at 0.2 and requires the approximation to
	// be tight in both tails.
	for _, x := range []float64{6, 8, 10, 12, 14} {
		emp := float64(sort.SearchInts(lengths, int(x)+1)) / trials
		ana := stats.LCCSLengthCDF(m, p, x)
		if math.Abs(emp-ana) > 0.2 {
			t.Errorf("x=%v: empirical CDF %v vs analytic %v", x, emp, ana)
		}
	}
	for _, x := range []float64{2, 30} {
		emp := float64(sort.SearchInts(lengths, int(x)+1)) / trials
		ana := stats.LCCSLengthCDF(m, p, x)
		if math.Abs(emp-ana) > 0.05 {
			t.Errorf("tail x=%v: empirical CDF %v vs analytic %v", x, emp, ana)
		}
	}
}

// TestCloserPairsHaveLongerLCCS is the framework's core insight (§1): at
// higher per-symbol match probability (= closer points under any LSH
// family), the expected LCCS length is strictly larger.
func TestCloserPairsHaveLongerLCCS(t *testing.T) {
	g := rng.New(73)
	m := 256
	mean := func(p float64) float64 {
		var sum float64
		const trials = 400
		for tr := 0; tr < trials; tr++ {
			a, b := genMatchedPair(g, m, p)
			sum += float64(hstring.LCCS(a, b))
		}
		return sum / trials
	}
	m3, m6, m9 := mean(0.3), mean(0.6), mean(0.9)
	if !(m3 < m6 && m6 < m9) {
		t.Fatalf("LCCS length not monotone in match probability: %v, %v, %v", m3, m6, m9)
	}
}

// TestTheorem51SuccessProbability: with the λ from Theorem 5.1, a planted
// near neighbor must appear among the λ-LCCS candidates with probability
// well above the guaranteed 1/4.
func TestTheorem51SuccessProbability(t *testing.T) {
	g := rng.New(74)
	m := 64
	n := 400
	p1, p2 := 0.85, 0.35
	lambda := stats.TheoremLambda(m, n, p1, p2)
	const trials = 60
	hits := 0
	for tr := 0; tr < trials; tr++ {
		// Hash-string world directly: n far strings (match prob p2
		// with the query) and 1 near string (match prob p1).
		q := make([]int32, m)
		for i := range q {
			q[i] = int32(g.IntN(1 << 20))
		}
		mutate := func(p float64) []int32 {
			s := make([]int32, m)
			for i := range s {
				if g.Float64() < p {
					s[i] = q[i]
				} else {
					s[i] = q[i] + 1 + int32(g.IntN(16))
				}
			}
			return s
		}
		strs := make([][]int32, 0, n+1)
		for i := 0; i < n; i++ {
			strs = append(strs, mutate(p2))
		}
		nearID := len(strs)
		strs = append(strs, mutate(p1))

		// λ-LCCS search must surface the near string.
		lengths := make([]int, len(strs))
		for id, s := range strs {
			lengths[id] = hstring.LCCS(s, q)
		}
		// Rank of the near string by LCCS length (optimistic ties).
		rank := 0
		for id, l := range lengths {
			if id != nearID && l > lengths[nearID] {
				rank++
			}
		}
		if rank < lambda {
			hits++
		}
	}
	frac := float64(hits) / trials
	if frac < 0.25 {
		t.Fatalf("near neighbor surfaced in only %.0f%% of trials; Theorem 5.1 guarantees ≥ 25%%", 100*frac)
	}
}
