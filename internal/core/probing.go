package core

import (
	"lccs/internal/lshfamily"
	"lccs/internal/pqueue"
)

// mod is one modification of a perturbation vector: replace position pos
// of the query's hash string with the alt-th alternative value at that
// position (alt indexes into the position's score-sorted alternative
// list).
type mod struct {
	pos int
	alt int
}

// perturbation is the paper's perturbation vector δ: a list of
// modifications in increasing position order with the inherited score
// (the sum of per-modification scores, as in Multi-Probe LSH).
type perturbation struct {
	score float64
	mods  []mod
}

// pShift implements p_shift(δ): replace the last modification's
// alternative with the next one at the same position (§4.2). ok=false if
// that position's alternative list is exhausted.
func pShift(p perturbation, alts [][]lshfamily.Alternative) (perturbation, bool) {
	last := p.mods[len(p.mods)-1]
	list := alts[last.pos]
	if last.alt+1 >= len(list) {
		return perturbation{}, false
	}
	mods := make([]mod, len(p.mods))
	copy(mods, p.mods)
	mods[len(mods)-1] = mod{pos: last.pos, alt: last.alt + 1}
	score := p.score - list[last.alt].Score + list[last.alt+1].Score
	return perturbation{score: score, mods: mods}, true
}

// pExpand implements p_expand(δ, gap): append a modification at position
// last.pos + gap using that position's first alternative (§4.2). ok=false
// if the position falls outside [0, m) or has no alternatives. Positions
// do not wrap: the perturbation vector is a list over 1..m as in the
// paper.
func pExpand(p perturbation, gap, m int, alts [][]lshfamily.Alternative) (perturbation, bool) {
	last := p.mods[len(p.mods)-1]
	pos := last.pos + gap
	if pos >= m || len(alts[pos]) == 0 {
		return perturbation{}, false
	}
	mods := make([]mod, len(p.mods)+1)
	copy(mods, p.mods)
	mods[len(p.mods)] = mod{pos: pos, alt: 0}
	return perturbation{score: p.score + alts[pos][0].Score, mods: mods}, true
}

// generatePerturbations runs Algorithm 3: it emits up to probes−1
// perturbation vectors in ascending score order, each with adjacent
// modification gaps ≤ maxGap. The empty perturbation ("no perturbation",
// the paper's first ∆ entry) is not emitted — the caller has already
// issued it via the initial LCCS search.
//
// alts[i] is the score-sorted alternative list for position i; positions
// with empty lists are never modified.
func generatePerturbations(alts [][]lshfamily.Alternative, probes, maxGap int) []perturbation {
	m := len(alts)
	want := probes - 1
	if want <= 0 {
		return nil
	}
	out := make([]perturbation, 0, want)
	pq := pqueue.NewWithCapacity[perturbation](m+4*want, func(a, b perturbation) bool {
		return a.score < b.score
	})
	// Seed: the single-modification vector {(i, h_i(q)^{(1)})} for every
	// position (Algorithm 3, lines 3–5).
	for i := 0; i < m; i++ {
		if len(alts[i]) == 0 {
			continue
		}
		pq.Push(perturbation{score: alts[i][0].Score, mods: []mod{{pos: i, alt: 0}}})
	}
	for len(out) < want && pq.Len() > 0 {
		p := pq.Pop()
		out = append(out, p)
		if s, ok := pShift(p, alts); ok {
			pq.Push(s)
		}
		for gap := 1; gap <= maxGap; gap++ {
			if e, ok := pExpand(p, gap, m, alts); ok {
				pq.Push(e)
			}
		}
	}
	return out
}
