package lshfamily

import (
	"math"
	"sort"
	"testing"

	"lccs/internal/rng"
	"lccs/internal/vec"
)

func TestHashStringAndNewFuncs(t *testing.T) {
	g := rng.New(1)
	fam := NewRandomProjection(8, 4)
	funcs := NewFuncs(fam, 16, g)
	if len(funcs) != 16 {
		t.Fatalf("NewFuncs returned %d", len(funcs))
	}
	v := g.GaussianVector(8)
	h := HashString(funcs, v, nil)
	if len(h) != 16 {
		t.Fatalf("hash string length %d", len(h))
	}
	h2 := HashString(funcs, v, make([]int32, 16))
	for i := range h {
		if h[i] != h2[i] {
			t.Fatal("HashString not deterministic")
		}
	}
	// Different functions should not all agree (i.i.d. draws).
	allSame := true
	for i := 1; i < len(h); i++ {
		if h[i] != h[0] {
			allSame = false
		}
	}
	if allSame {
		t.Error("all 16 i.i.d. hash functions produced identical values")
	}
}

func TestProbeFuncsConversion(t *testing.T) {
	g := rng.New(2)
	fam := NewRandomProjection(4, 2)
	funcs := NewFuncs(fam, 3, g)
	pfs, ok := ProbeFuncs(funcs)
	if !ok || len(pfs) != 3 {
		t.Fatal("random projection funcs should support probing")
	}
}

// empiricalCollision estimates Pr[h(o) = h(q)] over fresh functions for a
// pair at controlled distance.
func empiricalCollision(t *testing.T, fam Family, makePair func(g *rng.RNG) ([]float32, []float32), trials int) (prob float64, dist float64) {
	t.Helper()
	g := rng.New(42)
	coll := 0
	var sumDist float64
	for i := 0; i < trials; i++ {
		o, q := makePair(g)
		h := fam.New(g)
		if h.Hash(o) == h.Hash(q) {
			coll++
		}
		sumDist += fam.Metric().Distance(o, q)
	}
	return float64(coll) / float64(trials), sumDist / float64(trials)
}

func TestRandomProjectionCollisionMatchesEq2(t *testing.T) {
	d := 16
	fam := NewRandomProjection(d, 4.0)
	for _, tau := range []float64{1.0, 4.0, 12.0} {
		makePair := func(g *rng.RNG) ([]float32, []float32) {
			o := g.GaussianVector(d)
			// Offset along a random unit direction by exactly tau.
			dir := vec.Normalize(g.GaussianVector(d))
			q := vec.Clone(o)
			for i := range q {
				q[i] += float32(tau) * dir[i]
			}
			return o, q
		}
		emp, avgDist := empiricalCollision(t, fam, makePair, 4000)
		if math.Abs(avgDist-tau) > 1e-3 {
			t.Fatalf("pair construction wrong: dist %v want %v", avgDist, tau)
		}
		want := fam.CollisionProb(tau)
		if math.Abs(emp-want) > 0.03 {
			t.Errorf("tau=%v: empirical %v vs analytic %v", tau, emp, want)
		}
	}
}

func TestSimHashCollisionMatchesTheory(t *testing.T) {
	d := 24
	fam := NewSimHash(d)
	for _, theta := range []float64{0.3, 1.0, 2.0} {
		makePair := func(g *rng.RNG) ([]float32, []float32) {
			o := vec.Normalize(g.GaussianVector(d))
			// Construct q at angle theta from o.
			r := g.GaussianVector(d)
			// Orthogonalize r against o.
			dot := vec.Dot(r, o)
			for i := range r {
				r[i] -= float32(dot) * o[i]
			}
			vec.NormalizeInPlace(r)
			q := make([]float32, d)
			for i := range q {
				q[i] = float32(math.Cos(theta))*o[i] + float32(math.Sin(theta))*r[i]
			}
			return o, q
		}
		emp, avgDist := empiricalCollision(t, fam, makePair, 4000)
		if math.Abs(avgDist-theta) > 1e-3 {
			t.Fatalf("pair construction wrong: angle %v want %v", avgDist, theta)
		}
		want := fam.CollisionProb(theta)
		if math.Abs(emp-want) > 0.03 {
			t.Errorf("theta=%v: empirical %v vs analytic %v", theta, emp, want)
		}
	}
}

func TestCrossPolytopeBasics(t *testing.T) {
	fam := NewCrossPolytope(100)
	if fam.PaddedDim() != 128 {
		t.Fatalf("padded dim = %d, want 128", fam.PaddedDim())
	}
	g := rng.New(7)
	h := fam.New(g)
	v := vec.Normalize(g.GaussianVector(100))
	val := h.Hash(v)
	if val == 0 || val > 128 || val < -128 {
		t.Fatalf("hash value %d out of vertex range", val)
	}
	// Deterministic.
	if h.Hash(v) != val {
		t.Fatal("hash not deterministic")
	}
	// Scale invariance: the cross-polytope hash depends only on
	// direction.
	v2 := vec.Clone(v)
	vec.Scale(v2, 3.5)
	if h.Hash(v2) != val {
		t.Fatal("hash not scale invariant")
	}
}

func TestCrossPolytopeCloserPairsCollideMore(t *testing.T) {
	d := 64
	fam := NewCrossPolytope(d)
	pairAt := func(theta float64) func(g *rng.RNG) ([]float32, []float32) {
		return func(g *rng.RNG) ([]float32, []float32) {
			o := vec.Normalize(g.GaussianVector(d))
			r := g.GaussianVector(d)
			dot := vec.Dot(r, o)
			for i := range r {
				r[i] -= float32(dot) * o[i]
			}
			vec.NormalizeInPlace(r)
			q := make([]float32, d)
			for i := range q {
				q[i] = float32(math.Cos(theta))*o[i] + float32(math.Sin(theta))*r[i]
			}
			return o, q
		}
	}
	pClose, _ := empiricalCollision(t, fam, pairAt(0.4), 3000)
	pFar, _ := empiricalCollision(t, fam, pairAt(1.4), 3000)
	if pClose <= pFar {
		t.Fatalf("close pairs (%v) should collide more than far pairs (%v)", pClose, pFar)
	}
	if pClose < 0.3 {
		t.Errorf("pairs at θ=0.4 collide too rarely: %v", pClose)
	}
	if pFar > 0.2 {
		t.Errorf("pairs at θ=1.4 collide too often: %v", pFar)
	}
}

func TestFWHTOrthonormal(t *testing.T) {
	g := rng.New(3)
	v := g.GaussianVector(64)
	before := vec.Norm(v)
	buf := vec.Clone(v)
	fwht(buf)
	after := vec.Norm(buf)
	if math.Abs(before-after) > 1e-3 {
		t.Fatalf("FWHT changed norm: %v -> %v", before, after)
	}
	// Applying twice recovers the input (H is an involution up to
	// normalization; with 1/√n scaling, H² = I).
	fwht(buf)
	for i := range v {
		if math.Abs(float64(v[i]-buf[i])) > 1e-4 {
			t.Fatalf("FWHT² != identity at %d: %v vs %v", i, v[i], buf[i])
		}
	}
}

func TestCrossPolytopeRotationPreservesDistance(t *testing.T) {
	// The pseudo-random rotation must preserve inner products between
	// two vectors — this is what makes the family angle-sensitive.
	d := 48
	fam := NewCrossPolytope(d)
	g := rng.New(9)
	h := fam.New(g).(*cpFunc)
	a := vec.Normalize(g.GaussianVector(d))
	b := vec.Normalize(g.GaussianVector(d))
	ra, rb := h.rotate(a), h.rotate(b)
	got := vec.Dot((*ra)[:h.D], (*rb)[:h.D])
	want := vec.Dot(a, b)
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("rotation changed inner product: %v vs %v", got, want)
	}
}

func TestBitSampling(t *testing.T) {
	d := 32
	fam := NewBitSampling(d)
	if fam.Metric().Name() != "hamming" {
		t.Fatal("wrong metric")
	}
	g := rng.New(5)
	o := make([]float32, d)
	q := make([]float32, d)
	for i := range o {
		o[i] = float32(g.IntN(2))
		q[i] = o[i]
	}
	// Flip r bits; empirical collision should be ≈ 1 − r/d.
	r := 8
	for _, i := range g.Perm(d)[:r] {
		q[i] = 1 - q[i]
	}
	if got := vec.Hamming.Distance(o, q); got != float64(r) {
		t.Fatalf("hamming distance %v, want %d", got, r)
	}
	trials := 6000
	coll := 0
	for i := 0; i < trials; i++ {
		h := fam.New(g)
		if h.Hash(o) == h.Hash(q) {
			coll++
		}
	}
	emp := float64(coll) / float64(trials)
	want := fam.CollisionProb(float64(r))
	if math.Abs(emp-want) > 0.03 {
		t.Fatalf("empirical %v vs analytic %v", emp, want)
	}
	if fam.CollisionProb(float64(2*d)) != 0 {
		t.Error("collision prob should clamp at 0")
	}
}

func TestRandomProjectionAlternatives(t *testing.T) {
	g := rng.New(11)
	fam := NewRandomProjection(8, 4)
	h := fam.New(g).(*rpFunc)
	v := g.GaussianVector(8)
	primary := h.Hash(v)
	alts := h.Alternatives(v, 6, nil)
	if len(alts) != 6 {
		t.Fatalf("got %d alternatives", len(alts))
	}
	seen := map[int32]bool{primary: true}
	for i, a := range alts {
		if seen[a.Value] {
			t.Fatalf("duplicate alternative %d", a.Value)
		}
		seen[a.Value] = true
		if i > 0 && alts[i-1].Score > a.Score {
			t.Fatalf("alternatives not score-sorted at %d", i)
		}
		if a.Score < 0 {
			t.Fatalf("negative score")
		}
	}
	// The ±1 buckets must appear before ±3 buckets.
	pos := map[int32]int{}
	for i, a := range alts {
		pos[a.Value] = i
	}
	if p1, ok := pos[primary+1]; ok {
		if p3, ok3 := pos[primary+3]; ok3 && p3 < p1 {
			t.Error("bucket +3 ranked before +1")
		}
	}
}

func TestCrossPolytopeAlternatives(t *testing.T) {
	g := rng.New(13)
	fam := NewCrossPolytope(16)
	h := fam.New(g).(*cpFunc)
	v := vec.Normalize(g.GaussianVector(16))
	primary := h.Hash(v)
	alts := h.Alternatives(v, 10, nil)
	if len(alts) != 10 {
		t.Fatalf("got %d alternatives", len(alts))
	}
	if !sort.SliceIsSorted(alts, func(a, b int) bool { return alts[a].Score < alts[b].Score }) {
		t.Fatal("alternatives not sorted")
	}
	for _, a := range alts {
		if a.Value == primary {
			t.Fatal("primary vertex listed as alternative")
		}
		if a.Value == 0 || a.Value > 16 || a.Value < -16 {
			t.Fatalf("invalid vertex %d", a.Value)
		}
	}
	// The opposite vertex of the primary is the worst possible single
	// coordinate flip; it should score higher (worse) than the best
	// alternative.
	if alts[0].Value == -primary {
		t.Error("antipodal vertex ranked as best alternative")
	}
}

func TestSimHashAlternatives(t *testing.T) {
	g := rng.New(17)
	fam := NewSimHash(8)
	h := fam.New(g).(*shFunc)
	v := g.GaussianVector(8)
	primary := h.Hash(v)
	alts := h.Alternatives(v, 5, nil)
	if len(alts) != 1 {
		t.Fatalf("simhash should have exactly 1 alternative, got %d", len(alts))
	}
	if alts[0].Value == primary {
		t.Fatal("alternative equals primary")
	}
	if got := h.Alternatives(v, 0, nil); len(got) != 0 {
		t.Fatal("max=0 should yield none")
	}
}

func TestBitSamplingAlternatives(t *testing.T) {
	g := rng.New(19)
	fam := NewBitSampling(8)
	h := fam.New(g).(bsFunc)
	v := []float32{1, 0, 1, 0, 1, 0, 1, 0}
	primary := h.Hash(v)
	alts := h.Alternatives(v, 3, nil)
	if len(alts) != 1 || alts[0].Value == primary {
		t.Fatalf("bad alternatives %+v", alts)
	}
}

func TestFamilyConstructorsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"rp dim":  func() { NewRandomProjection(0, 1) },
		"rp w":    func() { NewRandomProjection(4, 0) },
		"cp":      func() { NewCrossPolytope(0) },
		"simhash": func() { NewSimHash(-1) },
		"bits":    func() { NewBitSampling(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			f()
		}()
	}
}

func TestFamilyMetadata(t *testing.T) {
	cases := []struct {
		fam    Family
		name   string
		metric string
	}{
		{NewRandomProjection(4, 2), "randproj", "euclidean"},
		{NewCrossPolytope(4), "crosspolytope", "angular"},
		{NewSimHash(4), "simhash", "angular"},
		{NewBitSampling(4), "bitsampling", "hamming"},
	}
	for _, c := range cases {
		if c.fam.Name() != c.name {
			t.Errorf("Name = %s, want %s", c.fam.Name(), c.name)
		}
		if c.fam.Dim() != 4 {
			t.Errorf("%s: Dim = %d", c.name, c.fam.Dim())
		}
		if c.fam.Metric().Name() != c.metric {
			t.Errorf("%s: metric %s, want %s", c.name, c.fam.Metric().Name(), c.metric)
		}
	}
}
