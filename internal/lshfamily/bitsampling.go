package lshfamily

import (
	"math"

	"lccs/internal/rng"
	"lccs/internal/vec"
)

// BitSampling is the original LSH family of Indyk–Motwani for Hamming
// distance: h_i(o) = o_i for a uniformly random coordinate i. Its
// collision probability at Hamming distance r is 1 − r/d. Computing one
// hash value is O(1) (η(d) = O(1) in the paper's Table 1 discussion),
// which makes it the family where LCCS-LSH's α = 1/(1−ρ) regime shines.
type BitSampling struct {
	dim int
}

// NewBitSampling returns the bit-sampling family for dimension dim.
func NewBitSampling(dim int) *BitSampling {
	if dim <= 0 {
		panic("lshfamily: NewBitSampling requires dim > 0")
	}
	return &BitSampling{dim: dim}
}

// Name implements Family.
func (f *BitSampling) Name() string { return "bitsampling" }

// Dim implements Family.
func (f *BitSampling) Dim() int { return f.dim }

// Metric implements Family: Hamming distance.
func (f *BitSampling) Metric() vec.Metric { return vec.Hamming }

// CollisionProb implements Family: p(r) = 1 − r/d, clamped at 0.
func (f *BitSampling) CollisionProb(r float64) float64 {
	p := 1 - r/float64(f.dim)
	return math.Max(p, 0)
}

// New implements Family.
func (f *BitSampling) New(g *rng.RNG) Func {
	return bsFunc{idx: g.IntN(f.dim)}
}

type bsFunc struct {
	idx int
}

// Hash implements Func: the sampled coordinate, rounded to its integer
// symbol.
func (h bsFunc) Hash(v []float32) int32 {
	return int32(v[h.idx])
}

// Memory implements Memorier.
func (h bsFunc) Memory() int64 { return 8 }

// Alternatives implements ProbeFunc for binary data: the flipped bit with
// a constant score (every coordinate is equally plausible under bit
// sampling).
func (h bsFunc) Alternatives(v []float32, max int, dst []Alternative) []Alternative {
	dst = dst[:0]
	if max < 1 {
		return dst
	}
	cur := int32(v[h.idx])
	return append(dst, Alternative{Value: 1 - cur, Score: 1})
}
