package lshfamily

import (
	"math"

	"lccs/internal/rng"
	"lccs/internal/vec"
)

// MinHash is the min-wise independent permutation family of Broder for
// Jaccard similarity over sets: h_π(A) = argmin_{j ∈ A} π(j) for a random
// permutation π. Its collision probability equals the Jaccard similarity,
// so it is (r, cr, 1−r, 1−cr)-sensitive for Jaccard distance — the classic
// example of a non-geometric LSH family, included to exercise the LCCS
// framework's family independence beyond vector-space metrics.
type MinHash struct {
	dim int
}

// NewMinHash returns the MinHash family over a universe of dim elements.
func NewMinHash(dim int) *MinHash {
	if dim <= 0 {
		panic("lshfamily: NewMinHash requires dim > 0")
	}
	return &MinHash{dim: dim}
}

// Name implements Family.
func (f *MinHash) Name() string { return "minhash" }

// Dim implements Family.
func (f *MinHash) Dim() int { return f.dim }

// Metric implements Family: Jaccard distance.
func (f *MinHash) Metric() vec.Metric { return vec.Jaccard }

// CollisionProb implements Family: p(dist) = 1 − dist (similarity).
func (f *MinHash) CollisionProb(dist float64) float64 {
	return math.Max(0, math.Min(1, 1-dist))
}

// New implements Family.
func (f *MinHash) New(g *rng.RNG) Func {
	ranks := make([]int32, f.dim)
	for i, p := range g.Perm(f.dim) {
		ranks[i] = int32(p)
	}
	return mhFunc{ranks: ranks}
}

type mhFunc struct {
	ranks []int32
}

// Hash implements Func: the minimum permuted rank over the set's members.
// The empty set hashes to dim (a value no member can produce).
func (h mhFunc) Hash(v []float32) int32 {
	min := int32(len(h.ranks))
	for i, x := range v {
		if x != 0 && h.ranks[i] < min {
			min = h.ranks[i]
		}
	}
	return min
}

// Memory implements Memorier.
func (h mhFunc) Memory() int64 { return int64(len(h.ranks)) * 4 }

// Alternatives implements ProbeFunc: the second-smallest rank among the
// set's members — the hash value obtained if the minimum element were
// absent — scored by the rank gap (a small gap means the two values are
// nearly interchangeable under permutation noise).
func (h mhFunc) Alternatives(v []float32, max int, dst []Alternative) []Alternative {
	dst = dst[:0]
	if max < 1 {
		return dst
	}
	first, second := int32(len(h.ranks)), int32(len(h.ranks))
	for i, x := range v {
		if x == 0 {
			continue
		}
		r := h.ranks[i]
		if r < first {
			first, second = r, first
		} else if r < second {
			second = r
		}
	}
	if second >= int32(len(h.ranks)) {
		return dst
	}
	return append(dst, Alternative{Value: second, Score: float64(second - first)})
}
