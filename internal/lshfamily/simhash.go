package lshfamily

import (
	"math"

	"lccs/internal/rng"
	"lccs/internal/vec"
)

// SimHash is the hyperplane LSH family for Angular distance (Charikar):
// h_a(o) = sign(a·o) with a ~ N(0, I_d). Its collision probability is
// 1 − θ/π. The cross-polytope family dominates it asymptotically (§2.2),
// but it remains a useful cheap family and exercises the framework's
// family-independence.
type SimHash struct {
	dim int
}

// NewSimHash returns the hyperplane family for dimension dim.
func NewSimHash(dim int) *SimHash {
	if dim <= 0 {
		panic("lshfamily: NewSimHash requires dim > 0")
	}
	return &SimHash{dim: dim}
}

// Name implements Family.
func (f *SimHash) Name() string { return "simhash" }

// Dim implements Family.
func (f *SimHash) Dim() int { return f.dim }

// Metric implements Family: Angular distance.
func (f *SimHash) Metric() vec.Metric { return vec.Angular }

// CollisionProb implements Family: p(θ) = 1 − θ/π.
func (f *SimHash) CollisionProb(theta float64) float64 {
	p := 1 - theta/math.Pi
	if p < 0 {
		return 0
	}
	return p
}

// New implements Family.
func (f *SimHash) New(g *rng.RNG) Func {
	return &shFunc{a: g.GaussianVector(f.dim)}
}

type shFunc struct {
	a []float32
}

// Hash implements Func: 1 if a·v ≥ 0, else 0.
func (h *shFunc) Hash(v []float32) int32 {
	if vec.Dot(h.a, v) >= 0 {
		return 1
	}
	return 0
}

// Memory implements Memorier.
func (h *shFunc) Memory() int64 { return int64(len(h.a)) * 4 }

// Alternatives implements ProbeFunc: the only alternative is the flipped
// bit, scored by the squared margin |a·v|² — positions where the query
// hugs the hyperplane flip first.
func (h *shFunc) Alternatives(v []float32, max int, dst []Alternative) []Alternative {
	dst = dst[:0]
	if max < 1 {
		return dst
	}
	d := vec.Dot(h.a, v)
	var alt int32
	if d >= 0 {
		alt = 0
	} else {
		alt = 1
	}
	return append(dst, Alternative{Value: alt, Score: d * d})
}
