package lshfamily

import (
	"math"

	"lccs/internal/rng"
	"lccs/internal/stats"
	"lccs/internal/vec"
)

// RandomProjection is the p-stable LSH family for Euclidean distance
// (Datar et al., Eq. 1 of the paper):
//
//	h_{a,b}(o) = ⌊(a·o + b) / w⌋
//
// with a ~ N(0, I_d) and b uniform in [0, w).
type RandomProjection struct {
	dim int
	w   float64
}

// NewRandomProjection returns the family for dimension dim with bucket
// width w. w must be positive.
func NewRandomProjection(dim int, w float64) *RandomProjection {
	if dim <= 0 || w <= 0 {
		panic("lshfamily: NewRandomProjection requires dim > 0 and w > 0")
	}
	return &RandomProjection{dim: dim, w: w}
}

// Name implements Family.
func (f *RandomProjection) Name() string { return "randproj" }

// Dim implements Family.
func (f *RandomProjection) Dim() int { return f.dim }

// W returns the bucket width.
func (f *RandomProjection) W() float64 { return f.w }

// Metric implements Family: Euclidean distance.
func (f *RandomProjection) Metric() vec.Metric { return vec.Euclidean }

// CollisionProb implements Family using Eq. 2 of the paper.
func (f *RandomProjection) CollisionProb(dist float64) float64 {
	return stats.RandomProjectionCollisionProb(f.w, dist)
}

// New implements Family.
func (f *RandomProjection) New(g *rng.RNG) Func {
	return &rpFunc{
		a: g.GaussianVector(f.dim),
		b: g.Float64() * f.w,
		w: f.w,
	}
}

type rpFunc struct {
	a []float32
	b float64
	w float64
}

// project returns (a·v + b)/w, whose floor is the hash value and whose
// fractional part drives the multi-probe scores.
func (h *rpFunc) project(v []float32) float64 {
	return (vec.Dot(h.a, v) + h.b) / h.w
}

// Hash implements Func.
func (h *rpFunc) Hash(v []float32) int32 {
	return int32(math.Floor(h.project(v)))
}

// Memory implements Memorier: the projection vector plus scalars.
func (h *rpFunc) Memory() int64 { return int64(len(h.a))*4 + 16 }

// Alternatives implements ProbeFunc. The candidate buckets are
// hash ± 1, hash ± 2, ..., ordered by the squared distance (in bucket-width
// units) between the projection and the boundary of the candidate bucket,
// exactly the x_i(δ)² score of Multi-Probe LSH: for the projection at
// fractional offset f within its bucket, bucket +δ costs (δ − f)² and
// bucket −δ costs (δ − 1 + f)².
func (h *rpFunc) Alternatives(v []float32, max int, dst []Alternative) []Alternative {
	dst = dst[:0]
	x := h.project(v)
	base := int32(math.Floor(x))
	f := x - math.Floor(x) // in [0,1)
	up, down := 1, 1       // next candidate offsets in each direction
	for len(dst) < max {
		// Distance from the projection to the near boundary of the
		// candidate bucket.
		upDist := float64(up) - f
		downDist := float64(down) - 1 + f
		if upDist*upDist <= downDist*downDist {
			dst = append(dst, Alternative{Value: base + int32(up), Score: upDist * upDist})
			up++
		} else {
			dst = append(dst, Alternative{Value: base - int32(down), Score: downDist * downDist})
			down++
		}
	}
	return dst
}
