// Package lshfamily implements the locality-sensitive hash families used
// by the paper (§2.2) and the probing hooks needed by MP-LCCS-LSH (§4.2):
//
//   - the p-stable random-projection family of Datar et al. for Euclidean
//     distance (Eq. 1, collision probability Eq. 2);
//   - the cross-polytope family of Andoni et al. for Angular distance
//     (Eq. 3, collision probability Eq. 4), with FALCONN-style fast
//     pseudo-random rotations;
//   - the hyperplane (SimHash) family of Charikar for Angular distance;
//   - the bit-sampling family of Indyk–Motwani for Hamming distance.
//
// LCCS-LSH is family-independent: it consumes only the Func interface, so
// any (R, cR, p1, p2)-sensitive family plugs in unchanged.
package lshfamily

import (
	"lccs/internal/rng"
	"lccs/internal/vec"
)

// Func is a single LSH function h: R^d → Z. Implementations must be safe
// for concurrent use by multiple goroutines (index construction hashes
// data points in parallel).
type Func interface {
	// Hash returns the hash symbol of v.
	Hash(v []float32) int32
}

// Alternative is a candidate replacement hash value for one position of a
// query's hash string, with the score used to order perturbation vectors
// (lower score = more promising, as in Multi-Probe LSH and FALCONN).
type Alternative struct {
	Value int32
	Score float64
}

// ProbeFunc is a Func that can enumerate alternative hash values for
// multi-probe querying. Alternatives returns up to max alternatives in
// ascending score order, excluding the primary hash value; dst is an
// optional reusable buffer.
type ProbeFunc interface {
	Func
	Alternatives(v []float32, max int, dst []Alternative) []Alternative
}

// Family describes an LSH family: a generator of i.i.d. hash functions
// together with its metric and analytic collision probability.
type Family interface {
	// Name returns a short identifier ("randproj", "crosspolytope", ...).
	Name() string
	// Dim returns the input dimensionality.
	Dim() int
	// Metric returns the distance metric this family is sensitive to.
	Metric() vec.Metric
	// New draws a fresh i.i.d. hash function using g.
	New(g *rng.RNG) Func
	// CollisionProb returns the analytic probability that two points at
	// the given distance (in Metric units) collide under one hash
	// function.
	CollisionProb(dist float64) float64
}

// NewFuncs draws m i.i.d. hash functions from the family.
func NewFuncs(f Family, m int, g *rng.RNG) []Func {
	fs := make([]Func, m)
	for i := range fs {
		fs[i] = f.New(g)
	}
	return fs
}

// HashString computes H(o) = [h_1(o), ..., h_m(o)] into dst (allocated if
// nil or too short) and returns it.
func HashString(funcs []Func, v []float32, dst []int32) []int32 {
	if cap(dst) < len(funcs) {
		dst = make([]int32, len(funcs))
	}
	dst = dst[:len(funcs)]
	for i, f := range funcs {
		dst[i] = f.Hash(v)
	}
	return dst
}

// Memorier is implemented by hash functions that can report their memory
// footprint; used by the index-size accounting of the evaluation harness.
type Memorier interface {
	Memory() int64
}

// FuncsBytes sums the memory footprint of the given hash functions.
// Functions that do not implement Memorier count as 0.
func FuncsBytes(funcs []Func) int64 {
	var total int64
	for _, f := range funcs {
		if m, ok := f.(Memorier); ok {
			total += m.Memory()
		}
	}
	return total
}

// ProbeFuncs converts a slice of Funcs to ProbeFuncs, returning ok=false
// if any function does not support probing.
func ProbeFuncs(funcs []Func) ([]ProbeFunc, bool) {
	out := make([]ProbeFunc, len(funcs))
	for i, f := range funcs {
		pf, ok := f.(ProbeFunc)
		if !ok {
			return nil, false
		}
		out[i] = pf
	}
	return out, true
}
