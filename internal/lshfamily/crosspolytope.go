package lshfamily

import (
	"math"
	"sort"
	"sync"

	"lccs/internal/rng"
	"lccs/internal/stats"
	"lccs/internal/vec"
)

// CrossPolytope is the cross-polytope LSH family for Angular distance
// (Terasawa & Tanaka; Andoni et al., Eq. 3 of the paper): rotate the input
// pseudo-randomly and hash to the nearest vertex ±e_i of the cross
// polytope, i.e. the coordinate with the largest absolute value after
// rotation, signed.
//
// Instead of a dense Gaussian rotation (O(d²) per hash), each function
// applies three rounds of "random sign flips + fast Walsh–Hadamard
// transform" in a power-of-two dimension D ≥ d — the FALCONN construction,
// which approximates a uniform rotation at O(D log D) cost and is what the
// paper's FALCONN baseline uses in practice.
//
// Hash values encode vertex +e_i as i+1 and −e_i as −(i+1), so the symbol
// alphabet is {±1, ..., ±D}.
type CrossPolytope struct {
	dim    int
	padded int
}

// NewCrossPolytope returns the family for input dimension dim.
func NewCrossPolytope(dim int) *CrossPolytope {
	if dim <= 0 {
		panic("lshfamily: NewCrossPolytope requires dim > 0")
	}
	p := 1
	for p < dim {
		p <<= 1
	}
	return &CrossPolytope{dim: dim, padded: p}
}

// Name implements Family.
func (f *CrossPolytope) Name() string { return "crosspolytope" }

// Dim implements Family.
func (f *CrossPolytope) Dim() int { return f.dim }

// PaddedDim returns the power-of-two rotation dimension D.
func (f *CrossPolytope) PaddedDim() int { return f.padded }

// Metric implements Family: Angular distance.
func (f *CrossPolytope) Metric() vec.Metric { return vec.Angular }

// CollisionProb implements Family using Eq. 4 of the paper. The angular
// distance θ is converted to the chordal (Euclidean-on-sphere) distance
// τ = 2·sin(θ/2) that Eq. 4 is stated in.
func (f *CrossPolytope) CollisionProb(theta float64) float64 {
	tau := 2 * math.Sin(theta/2)
	return stats.CrossPolytopeCollisionProb(f.padded, tau)
}

// New implements Family.
func (h *CrossPolytope) New(g *rng.RNG) Func {
	f := &cpFunc{d: h.dim, D: h.padded}
	f.signs = make([][]float32, 3)
	for r := range f.signs {
		s := make([]float32, h.padded)
		for i := range s {
			if g.Float64() < 0.5 {
				s[i] = 1
			} else {
				s[i] = -1
			}
		}
		f.signs[r] = s
	}
	f.pool.New = func() any {
		buf := make([]float32, h.padded)
		return &buf
	}
	return f
}

type cpFunc struct {
	d, D  int
	signs [][]float32
	pool  sync.Pool
}

// rotate applies the pseudo-random rotation into a pooled buffer. The
// caller must return the buffer to the pool.
func (h *cpFunc) rotate(v []float32) *[]float32 {
	bufp := h.pool.Get().(*[]float32)
	buf := *bufp
	copy(buf, v)
	for i := len(v); i < h.D; i++ {
		buf[i] = 0
	}
	for _, s := range h.signs {
		for i := range buf {
			buf[i] *= s[i]
		}
		fwht(buf)
	}
	return bufp
}

// Hash implements Func: the signed index of the largest-magnitude rotated
// coordinate.
func (h *cpFunc) Hash(v []float32) int32 {
	bufp := h.rotate(v)
	buf := *bufp
	best := 0
	bestAbs := float32(math.Inf(-1))
	for i, x := range buf {
		a := x
		if a < 0 {
			a = -a
		}
		if a > bestAbs {
			bestAbs = a
			best = i
		}
	}
	var out int32
	if buf[best] >= 0 {
		out = int32(best + 1)
	} else {
		out = -int32(best + 1)
	}
	h.pool.Put(bufp)
	return out
}

// Memory implements Memorier: three sign diagonals of the padded
// dimension.
func (h *cpFunc) Memory() int64 { return int64(3*h.D)*4 + 16 }

// Alternatives implements ProbeFunc. Candidate vertices are ranked by
// their squared Euclidean distance to the rotated, normalized query on the
// sphere: vertex s·e_i has distance² = 2 − 2·s·ŷ_i, the FALCONN probing
// score. The primary vertex (rank 0) is excluded.
func (h *cpFunc) Alternatives(v []float32, max int, dst []Alternative) []Alternative {
	dst = dst[:0]
	bufp := h.rotate(v)
	buf := *bufp
	norm := 0.0
	for _, x := range buf {
		norm += float64(x) * float64(x)
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		h.pool.Put(bufp)
		return dst
	}
	// Rank coordinates by |y_i| descending; the best few coordinates
	// dominate both signs' scores, so examining the top (max+1)
	// coordinates and both signs of each is sufficient to produce the
	// max best alternatives.
	type coord struct {
		idx int
		val float64
	}
	limit := max + 1
	if limit > h.D {
		limit = h.D
	}
	top := make([]coord, 0, limit+1)
	for i, x := range buf {
		a := math.Abs(float64(x))
		if len(top) < limit || a > top[len(top)-1].val {
			top = append(top, coord{i, a})
			for j := len(top) - 1; j > 0 && top[j].val > top[j-1].val; j-- {
				top[j], top[j-1] = top[j-1], top[j]
			}
			if len(top) > limit {
				top = top[:limit]
			}
		}
	}
	cands := make([]Alternative, 0, 2*len(top))
	for _, c := range top {
		y := float64(buf[c.idx]) / norm
		cands = append(cands,
			Alternative{Value: int32(c.idx + 1), Score: 2 - 2*y},
			Alternative{Value: -int32(c.idx + 1), Score: 2 + 2*y},
		)
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].Score < cands[b].Score })
	// Drop the primary vertex (smallest score) and keep up to max.
	cands = cands[1:]
	if len(cands) > max {
		cands = cands[:max]
	}
	dst = append(dst, cands...)
	h.pool.Put(bufp)
	return dst
}

// fwht applies the in-place fast Walsh–Hadamard transform, scaled by
// 1/√D so the transform is orthonormal. len(buf) must be a power of two.
func fwht(buf []float32) {
	n := len(buf)
	for step := 1; step < n; step <<= 1 {
		for i := 0; i < n; i += step << 1 {
			for j := i; j < i+step; j++ {
				a, b := buf[j], buf[j+step]
				buf[j], buf[j+step] = a+b, a-b
			}
		}
	}
	scale := float32(1 / math.Sqrt(float64(n)))
	for i := range buf {
		buf[i] *= scale
	}
}
