package lshfamily

import (
	"math"
	"testing"

	"lccs/internal/rng"
	"lccs/internal/vec"
)

func makeSet(g *rng.RNG, d, size int) []float32 {
	v := make([]float32, d)
	for _, i := range g.Perm(d)[:size] {
		v[i] = 1
	}
	return v
}

func TestJaccardMetric(t *testing.T) {
	a := []float32{1, 1, 0, 0}
	b := []float32{1, 0, 1, 0}
	// |A∩B| = 1, |A∪B| = 3 → distance 2/3.
	if got := vec.Jaccard.Distance(a, b); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("distance = %v", got)
	}
	if got := vec.Jaccard.Distance(a, a); got != 0 {
		t.Errorf("self distance = %v", got)
	}
	empty := []float32{0, 0, 0, 0}
	if got := vec.Jaccard.Distance(empty, empty); got != 0 {
		t.Errorf("empty-empty distance = %v", got)
	}
	if got := vec.Jaccard.Distance(a, empty); got != 1 {
		t.Errorf("nonempty-empty distance = %v", got)
	}
}

// TestMinHashCollisionEqualsSimilarity is the family's defining property:
// Pr[h(A) = h(B)] = J(A,B).
func TestMinHashCollisionEqualsSimilarity(t *testing.T) {
	d := 200
	fam := NewMinHash(d)
	g := rng.New(61)
	// Construct two sets with known overlap: 30 shared, 15+15 unique →
	// J = 30/60 = 0.5.
	a := make([]float32, d)
	b := make([]float32, d)
	perm := g.Perm(d)
	for _, i := range perm[:30] {
		a[i], b[i] = 1, 1
	}
	for _, i := range perm[30:45] {
		a[i] = 1
	}
	for _, i := range perm[45:60] {
		b[i] = 1
	}
	dist := vec.Jaccard.Distance(a, b)
	if math.Abs(dist-0.5) > 1e-12 {
		t.Fatalf("constructed distance %v, want 0.5", dist)
	}
	trials := 6000
	coll := 0
	for i := 0; i < trials; i++ {
		h := fam.New(g)
		if h.Hash(a) == h.Hash(b) {
			coll++
		}
	}
	emp := float64(coll) / float64(trials)
	want := fam.CollisionProb(dist)
	if math.Abs(emp-want) > 0.025 {
		t.Fatalf("empirical %v vs analytic %v", emp, want)
	}
}

func TestMinHashEmptySet(t *testing.T) {
	d := 16
	fam := NewMinHash(d)
	g := rng.New(62)
	h := fam.New(g)
	empty := make([]float32, d)
	if got := h.Hash(empty); got != int32(d) {
		t.Fatalf("empty set hash %d, want sentinel %d", got, d)
	}
	if alts := h.(mhFunc).Alternatives(empty, 3, nil); len(alts) != 0 {
		t.Fatal("empty set should have no alternatives")
	}
	single := make([]float32, d)
	single[5] = 1
	if alts := h.(mhFunc).Alternatives(single, 3, nil); len(alts) != 0 {
		t.Fatal("singleton set has no second-smallest rank")
	}
}

func TestMinHashAlternatives(t *testing.T) {
	d := 32
	fam := NewMinHash(d)
	g := rng.New(63)
	h := fam.New(g).(mhFunc)
	set := makeSet(g, d, 10)
	primary := h.Hash(set)
	alts := h.Alternatives(set, 4, nil)
	if len(alts) != 1 {
		t.Fatalf("got %d alternatives", len(alts))
	}
	if alts[0].Value == primary {
		t.Fatal("alternative equals primary")
	}
	if alts[0].Value < primary {
		t.Fatal("alternative rank must exceed the minimum")
	}
	if alts[0].Score != float64(alts[0].Value-primary) {
		t.Fatalf("score %v inconsistent", alts[0].Score)
	}
}

func TestMinHashMetadata(t *testing.T) {
	fam := NewMinHash(8)
	if fam.Name() != "minhash" || fam.Dim() != 8 || fam.Metric().Name() != "jaccard" {
		t.Fatal("metadata wrong")
	}
	if fam.CollisionProb(0.3) != 0.7 || fam.CollisionProb(2) != 0 || fam.CollisionProb(-1) != 1 {
		t.Fatal("collision prob wrong")
	}
	g := rng.New(64)
	if m, ok := fam.New(g).(Memorier); !ok || m.Memory() != 32 {
		t.Fatal("memory accounting wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewMinHash(0)
}

// TestMinHashEndToEndWithLCCS: the family slots into the framework — the
// nearest set by Jaccard distance is retrieved. (Uses the family directly
// with hash strings rather than the core scheme to keep the package
// dependency-free.)
func TestMinHashHashStringsSeparate(t *testing.T) {
	d := 100
	fam := NewMinHash(d)
	g := rng.New(65)
	base := makeSet(g, d, 20)
	near := append([]float32(nil), base...)
	// Flip 2 members: high similarity.
	near[firstActive(base)] = 0
	far := makeSet(g, d, 20)

	funcs := NewFuncs(fam, 64, g)
	hBase := HashString(funcs, base, nil)
	hNear := HashString(funcs, near, nil)
	hFar := HashString(funcs, far, nil)
	agreeNear, agreeFar := 0, 0
	for i := range hBase {
		if hBase[i] == hNear[i] {
			agreeNear++
		}
		if hBase[i] == hFar[i] {
			agreeFar++
		}
	}
	if agreeNear <= agreeFar {
		t.Fatalf("near set agrees on %d positions, far on %d", agreeNear, agreeFar)
	}
}

func firstActive(v []float32) int {
	for i, x := range v {
		if x != 0 {
			return i
		}
	}
	return 0
}
