package qalsh

import (
	"sort"
	"testing"

	"lccs/internal/rng"
)

func gaussData(seed uint64, n, d int) [][]float32 {
	g := rng.New(seed)
	data := make([][]float32, n)
	for i := range data {
		data[i] = g.GaussianVector(d)
	}
	return data
}

func TestTablesSortedByProjection(t *testing.T) {
	data := gaussData(1, 300, 8)
	ix, err := Build(data, 8, Params{M: 8, Threshold: 2, W: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, tab := range ix.tables {
		if !sort.SliceIsSorted(tab, func(a, b int) bool { return tab[a].proj < tab[b].proj }) {
			t.Fatalf("table %d not sorted", i)
		}
		if len(tab) != 300 {
			t.Fatalf("table %d has %d entries", i, len(tab))
		}
	}
}

func TestSelfQueryExhaustive(t *testing.T) {
	// With threshold 1 and full budget, a self-query must find its own
	// point (projection distance 0 enters the window in round 1).
	data := gaussData(2, 100, 6)
	ix, err := Build(data, 6, Params{M: 4, Threshold: 1, W: 0.5, Budget: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 100; id += 17 {
		res := ix.Search(data[id], 1)
		if len(res) != 1 || res[0].Dist != 0 {
			t.Fatalf("id %d: %+v", id, res)
		}
	}
}

func TestWindowWideningTerminates(t *testing.T) {
	// A query far outside the projection range must still terminate
	// (frontiers exhaust) and return verified results.
	data := gaussData(3, 200, 8)
	ix, err := Build(data, 8, Params{M: 8, Threshold: 8, W: 0.1, Budget: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	far := make([]float32, 8)
	for j := range far {
		far[j] = 500
	}
	res, st := ix.SearchWithStats(far, 5)
	if len(res) == 0 {
		t.Fatal("no results for far query")
	}
	if st.Rounds < 2 {
		t.Fatalf("far query used only %d rounds", st.Rounds)
	}
}

func TestCollisionCountingGating(t *testing.T) {
	// Threshold M requires collision under every projection: only
	// points whose every projection falls in the window get verified,
	// so the candidate count with threshold=M is at most that with
	// threshold=1 at the same budget.
	data := gaussData(4, 400, 8)
	loose, err := Build(data, 8, Params{M: 8, Threshold: 1, W: 2, Budget: 400, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Build(data, 8, Params{M: 8, Threshold: 8, W: 2, Budget: 400, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := data[7]
	_, stLoose := loose.SearchWithStats(q, 5)
	_, stStrict := strict.SearchWithStats(q, 5)
	if stStrict.Candidates > stLoose.Candidates {
		t.Fatalf("strict threshold verified more: %d > %d", stStrict.Candidates, stLoose.Candidates)
	}
}

func TestBytesAccounting(t *testing.T) {
	data := gaussData(5, 100, 16)
	ix, err := Build(data, 16, Params{M: 8, Threshold: 2, W: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(8)*100*8 + int64(8)*16*4
	if ix.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", ix.Bytes(), want)
	}
	if ix.BuildTime() <= 0 {
		t.Fatal("BuildTime not recorded")
	}
}
