// Package qalsh is the QALSH baseline (Huang et al., "Query-Aware
// Locality-Sensitive Hashing"): m random projections are kept as sorted
// arrays of raw projection values (conceptually B+-trees). At query time
// the bucket of each projection is centered on the query ("query-aware"):
// object o collides with q under projection a when |a·o − a·q| ≤ w·R/2,
// and the search widens R by the approximation ratio c each round while
// counting collisions; objects reaching the threshold l are verified.
//
// This is the memory variant (QALSH_Mem) evaluated in the paper for
// Euclidean distance.
package qalsh

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lccs/internal/pqueue"
	"lccs/internal/rng"
	"lccs/internal/vec"
)

// Params configures a QALSH index.
type Params struct {
	// M is the number of projections (the paper's m).
	M int
	// Threshold is the collision count l required before verification.
	Threshold int
	// W is the base bucket width in projection units.
	W float64
	// Ratio is the approximation ratio c; window widths grow by this
	// factor per round. 0 selects 2.
	Ratio float64
	// Budget is the number of candidates to verify before terminating
	// (βn + k − 1). 0 selects 100 + k − 1 at query time.
	Budget int
	// Seed drives projection draws.
	Seed uint64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.M <= 0 {
		return fmt.Errorf("qalsh: M must be positive, got %d", p.M)
	}
	if p.Threshold <= 0 || p.Threshold > p.M {
		return fmt.Errorf("qalsh: Threshold must be in [1, M], got %d", p.Threshold)
	}
	if p.W <= 0 {
		return errors.New("qalsh: W must be positive")
	}
	if p.Ratio != 0 && p.Ratio < 1 {
		return errors.New("qalsh: Ratio must be 0 (default) or > 1")
	}
	if p.Budget < 0 {
		return errors.New("qalsh: Budget must be non-negative")
	}
	return nil
}

// projEntry is one object's projection value under one hash function.
type projEntry struct {
	proj float32
	id   int32
}

// Index is a QALSH index. It is safe for concurrent queries.
type Index struct {
	metric vec.Metric
	data   [][]float32
	// projections[i] is the i-th Gaussian projection vector.
	projections [][]float32
	// tables[i] holds all objects sorted by projection value under
	// projection i (the flattened B+-tree leaves).
	tables [][]projEntry
	params Params

	buildTime time.Duration
	scratch   sync.Pool
}

type queryScratch struct {
	counts []int32
	stamp  []int32
	gen    int32
	left   []int // per-projection frontier: next entry to the left
	right  []int // per-projection frontier: next entry to the right
	projQ  []float64
}

// Build constructs the index over data. QALSH is defined for Euclidean
// distance; the metric is fixed accordingly.
func Build(data [][]float32, dim int, p Params) (*Index, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, errors.New("qalsh: empty dataset")
	}
	if p.Ratio == 0 {
		p.Ratio = 2
	}
	for i, v := range data {
		if len(v) != dim {
			return nil, fmt.Errorf("qalsh: object %d has dimension %d, want %d", i, len(v), dim)
		}
	}
	start := time.Now()
	g := rng.New(p.Seed)
	ix := &Index{
		metric:      vec.Euclidean,
		data:        data,
		projections: make([][]float32, p.M),
		tables:      make([][]projEntry, p.M),
		params:      p,
	}
	for i := 0; i < p.M; i++ {
		a := g.GaussianVector(dim)
		ix.projections[i] = a
		t := make([]projEntry, len(data))
		for id, v := range data {
			t[id] = projEntry{proj: float32(vec.Dot(a, v)), id: int32(id)}
		}
		sort.Slice(t, func(x, y int) bool { return t[x].proj < t[y].proj })
		ix.tables[i] = t
	}
	ix.scratch.New = func() any {
		return &queryScratch{
			counts: make([]int32, len(data)),
			stamp:  make([]int32, len(data)),
			left:   make([]int, p.M),
			right:  make([]int, p.M),
			projQ:  make([]float64, p.M),
		}
	}
	ix.buildTime = time.Since(start)
	return ix, nil
}

// BuildTime returns the wall-clock indexing time.
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// Bytes approximates index memory: one 8-byte projection entry per object
// per function plus the projection vectors.
func (ix *Index) Bytes() int64 {
	var proj int64
	for _, a := range ix.projections {
		proj += int64(len(a)) * 4
	}
	return int64(ix.params.M)*int64(len(ix.data))*8 + proj
}

// Name returns the method name used in the paper's figures.
func (ix *Index) Name() string { return "QALSH" }

// Search answers a k-NN query with query-aware collision counting.
func (ix *Index) Search(q []float32, k int) []pqueue.Neighbor {
	res, _ := ix.SearchWithStats(q, k)
	return res
}

// Stats reports the verification work of one query.
type Stats struct {
	Candidates int
	Rounds     int
}

// SearchWithStats is Search plus work counters.
func (ix *Index) SearchWithStats(q []float32, k int) ([]pqueue.Neighbor, Stats) {
	if k <= 0 {
		return nil, Stats{}
	}
	sc := ix.scratch.Get().(*queryScratch)
	defer ix.scratch.Put(sc)
	sc.gen++

	for i, a := range ix.projections {
		pq := vec.Dot(a, q)
		sc.projQ[i] = pq
		t := ix.tables[i]
		// Frontiers straddle the query's projection.
		r := sort.Search(len(t), func(j int) bool { return float64(t[j].proj) >= pq })
		sc.right[i] = r
		sc.left[i] = r - 1
	}

	budget := ix.params.Budget
	if budget == 0 {
		budget = 100 + k - 1
	}
	n := len(ix.data)
	if budget > n {
		budget = n
	}
	best := pqueue.NewKBest(k)
	var st Stats
	threshold := int32(ix.params.Threshold)

	half := ix.params.W / 2
	for ; ; half *= ix.params.Ratio {
		st.Rounds++
		allDone := true
		for i := range ix.projections {
			t := ix.tables[i]
			pq := sc.projQ[i]
			// Consume entries whose projection falls within the
			// current window, advancing the two frontiers outward.
			for sc.left[i] >= 0 && pq-float64(t[sc.left[i]].proj) <= half {
				if ix.bump(sc, t[sc.left[i]].id, threshold, q, best, &st) && st.Candidates >= budget {
					return best.Sorted(), st
				}
				sc.left[i]--
			}
			for sc.right[i] < len(t) && float64(t[sc.right[i]].proj)-pq <= half {
				if ix.bump(sc, t[sc.right[i]].id, threshold, q, best, &st) && st.Candidates >= budget {
					return best.Sorted(), st
				}
				sc.right[i]++
			}
			if sc.left[i] >= 0 || sc.right[i] < len(t) {
				allDone = false
			}
		}
		if allDone {
			return best.Sorted(), st
		}
	}
}

// bump increments id's collision count; when the count reaches the
// threshold the object is verified exactly once. It reports whether a
// verification happened.
func (ix *Index) bump(sc *queryScratch, id int32, threshold int32, q []float32, best *pqueue.KBest, st *Stats) bool {
	if sc.stamp[id] != sc.gen {
		sc.stamp[id] = sc.gen
		sc.counts[id] = 0
	}
	sc.counts[id]++
	if sc.counts[id] == threshold {
		best.Add(int(id), ix.metric.Distance(ix.data[id], q))
		st.Candidates++
		return true
	}
	return false
}
