package scan

import (
	"sort"
	"testing"

	"lccs/internal/rng"
	"lccs/internal/vec"
)

func TestSearchExact(t *testing.T) {
	g := rng.New(1)
	data := make([][]float32, 100)
	for i := range data {
		data[i] = g.GaussianVector(6)
	}
	ix := New(data, vec.Euclidean)
	q := g.GaussianVector(6)
	got := ix.Search(q, 7)
	if len(got) != 7 {
		t.Fatalf("got %d results", len(got))
	}
	if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a].Dist < got[b].Dist }) {
		t.Fatal("not sorted")
	}
	// The top result must be the global minimum.
	best := got[0].Dist
	for _, v := range data {
		if d := vec.Distance(v, q); d < best {
			t.Fatalf("missed closer point at %v < %v", d, best)
		}
	}
	if got := ix.Search(q, 500); len(got) != 100 {
		t.Fatalf("k>n returned %d", len(got))
	}
}

func TestSearchAllParallelConsistency(t *testing.T) {
	g := rng.New(2)
	data := make([][]float32, 200)
	for i := range data {
		data[i] = g.GaussianVector(4)
	}
	queries := make([][]float32, 17)
	for i := range queries {
		queries[i] = g.GaussianVector(4)
	}
	batch := SearchAll(data, queries, 5, vec.Euclidean)
	ix := New(data, vec.Euclidean)
	for i, q := range queries {
		seq := ix.Search(q, 5)
		for j := range seq {
			if batch[i][j].Dist != seq[j].Dist {
				t.Fatalf("query %d result %d differs", i, j)
			}
		}
	}
}

func TestAngularScan(t *testing.T) {
	g := rng.New(3)
	data := make([][]float32, 50)
	for i := range data {
		data[i] = vec.Normalize(g.GaussianVector(8))
	}
	ix := New(data, vec.Angular)
	res := ix.Search(data[7], 1)
	if res[0].ID != 7 || res[0].Dist > 1e-6 {
		t.Fatalf("self query: %+v", res)
	}
}
