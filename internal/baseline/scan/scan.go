// Package scan provides exact linear-scan nearest-neighbor search. It is
// both the ground-truth oracle for every experiment and the degenerate
// α = 0 point of the paper's complexity spectrum (Table 1: query time
// equivalent to a linear scan).
package scan

import (
	"runtime"
	"sync"

	"lccs/internal/pqueue"
	"lccs/internal/vec"
)

// Index is an exact brute-force index: it stores the dataset and scans it
// per query.
type Index struct {
	data   [][]float32
	metric vec.Metric
}

// New returns a linear-scan index over data under metric.
func New(data [][]float32, metric vec.Metric) *Index {
	return &Index{data: data, metric: metric}
}

// N returns the dataset size.
func (ix *Index) N() int { return len(ix.data) }

// Bytes returns 0: the scan keeps no index structures beyond the dataset.
func (ix *Index) Bytes() int64 { return 0 }

// Search returns the exact k nearest neighbors of q in ascending distance
// order.
func (ix *Index) Search(q []float32, k int) []pqueue.Neighbor {
	if k <= 0 {
		return nil
	}
	best := pqueue.NewKBest(k)
	for id, v := range ix.data {
		best.Add(id, ix.metric.Distance(v, q))
	}
	return best.Sorted()
}

// SearchAll computes exact k-NN for a batch of queries in parallel; it is
// the ground-truth generator for the evaluation harness.
func SearchAll(data [][]float32, queries [][]float32, k int, metric vec.Metric) [][]pqueue.Neighbor {
	ix := New(data, metric)
	out := make([][]pqueue.Neighbor, len(queries))
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				out[i] = ix.Search(queries[i], k)
			}
		}()
	}
	for i := range queries {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return out
}
