package falconn

import (
	"testing"

	"lccs/internal/lshfamily"
	"lccs/internal/rng"
	"lccs/internal/vec"
)

func unitData(seed uint64, n, d int) [][]float32 {
	g := rng.New(seed)
	data := make([][]float32, n)
	for i := range data {
		data[i] = vec.Normalize(g.GaussianVector(d))
	}
	return data
}

func TestRequiresAngularFamily(t *testing.T) {
	data := unitData(1, 50, 16)
	if _, err := Build(data, lshfamily.NewRandomProjection(16, 4), Params{K: 1, L: 1, Probes: 1}); err == nil {
		t.Fatal("euclidean family should be rejected")
	}
	if _, err := Build(data, lshfamily.NewSimHash(16), Params{K: 2, L: 2, Probes: 2}); err != nil {
		t.Fatalf("simhash (angular) should be accepted: %v", err)
	}
}

func TestSelfQueryAndName(t *testing.T) {
	data := unitData(2, 300, 32)
	ix, err := Build(data, lshfamily.NewCrossPolytope(32), Params{K: 1, L: 6, Probes: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Name() != "FALCONN" {
		t.Fatal("name")
	}
	for id := 0; id < 300; id += 67 {
		res := ix.Search(data[id], 1)
		if len(res) == 0 || res[0].Dist > 1e-6 {
			t.Fatalf("id %d: %+v", id, res)
		}
	}
}

func TestMultiprobeExpandsCoverage(t *testing.T) {
	data := unitData(3, 600, 32)
	fam := lshfamily.NewCrossPolytope(32)
	one, err := Build(data, fam, Params{K: 2, L: 2, Probes: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Build(data, fam, Params{K: 2, L: 2, Probes: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var cOne, cMany int
	for i := 0; i < 10; i++ {
		_, s1 := one.SearchWithStats(data[i*59], 5)
		_, s2 := many.SearchWithStats(data[i*59], 5)
		cOne += s1.Candidates
		cMany += s2.Candidates
	}
	if cMany < cOne {
		t.Fatalf("multiprobe saw fewer candidates: %d < %d", cMany, cOne)
	}
}
