// Package falconn is the FALCONN baseline (Andoni et al., "Practical and
// Optimal LSH for Angular Distance"): the static concatenating search
// framework instantiated with the cross-polytope family, fast
// pseudo-random rotations, and multi-probe querying. It is designed for
// Angular distance (§6.3).
package falconn

import (
	"fmt"

	"lccs/internal/baseline/concat"
	"lccs/internal/lshfamily"
)

// Params configures a FALCONN-style index.
type Params struct {
	K int
	L int
	// Probes is the total number of buckets inspected per table.
	Probes int
	Seed   uint64
}

// Index is a FALCONN-style cross-polytope index.
type Index struct {
	*concat.Index
}

// Build constructs the index over data. The family must be angular
// (cross-polytope); data should be (or will be treated as) directions.
func Build(data [][]float32, family lshfamily.Family, p Params) (*Index, error) {
	if family.Metric().Name() != "angular" {
		return nil, fmt.Errorf("falconn: family %q is not angular", family.Name())
	}
	inner, err := concat.Build(data, family, concat.Params{
		K: p.K, L: p.L, Probes: p.Probes, MaxAlt: 8, Seed: p.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Index{Index: inner}, nil
}

// Name returns the method name used in the paper's figures.
func (ix *Index) Name() string { return "FALCONN" }
