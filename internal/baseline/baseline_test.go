// Package baseline_test exercises every baseline end to end on the same
// clustered workload, checking the contracts the experiment harness relies
// on: self-queries succeed, recall grows with resources, stats are sane,
// and results are exact-distance-verified and sorted.
package baseline_test

import (
	"sort"
	"testing"

	"lccs/internal/baseline/c2lsh"
	"lccs/internal/baseline/concat"
	"lccs/internal/baseline/e2lsh"
	"lccs/internal/baseline/falconn"
	"lccs/internal/baseline/mplsh"
	"lccs/internal/baseline/qalsh"
	"lccs/internal/baseline/scan"
	"lccs/internal/baseline/srs"
	"lccs/internal/lshfamily"
	"lccs/internal/pqueue"
	"lccs/internal/rng"
	"lccs/internal/vec"
)

const (
	testN = 2000
	testD = 16
	testK = 10
)

type fixture struct {
	data    [][]float32
	queries [][]float32
	truth   [][]pqueue.Neighbor // Euclidean ground truth
}

func newFixture(seed uint64) *fixture {
	g := rng.New(seed)
	centers := make([][]float32, 16)
	for i := range centers {
		centers[i] = g.UniformVector(testD, -10, 10)
	}
	data := make([][]float32, testN)
	for i := range data {
		c := centers[i%len(centers)]
		v := make([]float32, testD)
		for j := range v {
			v[j] = c[j] + float32(g.NormFloat64()*0.8)
		}
		data[i] = v
	}
	queries := make([][]float32, 20)
	for i := range queries {
		base := data[g.IntN(testN)]
		q := make([]float32, testD)
		for j := range q {
			q[j] = base[j] + float32(g.NormFloat64()*0.4)
		}
		queries[i] = q
	}
	return &fixture{
		data:    data,
		queries: queries,
		truth:   scan.SearchAll(data, queries, testK, vec.Euclidean),
	}
}

var fx = newFixture(99)

func recallOf(got, want []pqueue.Neighbor) float64 {
	wantSet := map[int]bool{}
	for _, w := range want {
		wantSet[w.ID] = true
	}
	hit := 0
	for _, g := range got {
		if wantSet[g.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

type searcher interface {
	Search(q []float32, k int) []pqueue.Neighbor
}

func avgRecall(t *testing.T, ix searcher) float64 {
	t.Helper()
	var total float64
	for i, q := range fx.queries {
		total += recallOf(ix.Search(q, testK), fx.truth[i])
	}
	return total / float64(len(fx.queries))
}

func checkSortedVerified(t *testing.T, ix searcher, metric vec.Metric) {
	t.Helper()
	for _, q := range fx.queries[:5] {
		res := ix.Search(q, testK)
		if !sort.SliceIsSorted(res, func(a, b int) bool { return res[a].Dist < res[b].Dist }) {
			t.Fatal("results not sorted")
		}
		seen := map[int]bool{}
		for _, r := range res {
			if seen[r.ID] {
				t.Fatal("duplicate id in results")
			}
			seen[r.ID] = true
			if got := metric.Distance(fx.data[r.ID], q); got != r.Dist {
				t.Fatalf("unverified distance: %v vs %v", got, r.Dist)
			}
		}
	}
}

func TestScanExactness(t *testing.T) {
	ix := scan.New(fx.data, vec.Euclidean)
	if ix.N() != testN || ix.Bytes() != 0 {
		t.Fatal("accessors wrong")
	}
	if got := avgRecall(t, ix); got != 1.0 {
		t.Fatalf("linear scan recall %v, want exactly 1", got)
	}
	if ix.Search(fx.queries[0], 0) != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestScanSearchAllMatchesSequential(t *testing.T) {
	ix := scan.New(fx.data, vec.Euclidean)
	batch := scan.SearchAll(fx.data, fx.queries, 5, vec.Euclidean)
	for i, q := range fx.queries {
		seq := ix.Search(q, 5)
		for j := range seq {
			if batch[i][j].Dist != seq[j].Dist {
				t.Fatalf("batch/sequential mismatch at query %d", i)
			}
		}
	}
}

func TestE2LSHRecallAndContracts(t *testing.T) {
	fam := lshfamily.NewRandomProjection(testD, 8)
	ix, err := e2lsh.Build(fx.data, fam, e2lsh.Params{K: 4, L: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Name() != "E2LSH" {
		t.Fatal("name")
	}
	if ix.Bytes() <= 0 || ix.BuildTime() <= 0 {
		t.Fatal("accounting broken")
	}
	checkSortedVerified(t, ix, vec.Euclidean)
	if got := avgRecall(t, ix); got < 0.5 {
		t.Fatalf("E2LSH recall %.2f too low", got)
	}
	// More tables → recall must not fall apart (monotone on average).
	small, err := e2lsh.Build(fx.data, fam, e2lsh.Params{K: 4, L: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if avgRecall(t, small) > avgRecall(t, ix)+0.05 {
		t.Fatal("recall should grow with L")
	}
}

func TestE2LSHValidation(t *testing.T) {
	fam := lshfamily.NewRandomProjection(testD, 8)
	if _, err := e2lsh.Build(nil, fam, e2lsh.Params{K: 2, L: 2}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := e2lsh.Build(fx.data, fam, e2lsh.Params{K: 0, L: 2}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := e2lsh.Build(fx.data, fam, e2lsh.Params{K: 2, L: 0}); err == nil {
		t.Error("L=0 should fail")
	}
}

func TestMPLSHProbingBeatsExactBucketOnly(t *testing.T) {
	fam := lshfamily.NewRandomProjection(testD, 8)
	plain, err := mplsh.Build(fx.data, fam, mplsh.Params{K: 6, L: 4, Probes: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	probing, err := mplsh.Build(fx.data, fam, mplsh.Params{K: 6, L: 4, Probes: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if probing.Name() != "Multi-Probe LSH" {
		t.Fatal("name")
	}
	rp, rq := avgRecall(t, plain), avgRecall(t, probing)
	if rq < rp {
		t.Fatalf("probing reduced recall: %.2f -> %.2f", rp, rq)
	}
	if rq < 0.5 {
		t.Fatalf("Multi-Probe recall %.2f too low", rq)
	}
	checkSortedVerified(t, probing, vec.Euclidean)
}

func TestConcatStatsAndBuckets(t *testing.T) {
	fam := lshfamily.NewRandomProjection(testD, 8)
	ix, err := concat.Build(fx.data, fam, concat.Params{K: 4, L: 8, Probes: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, st := ix.SearchWithStats(fx.queries[0], testK)
	if st.Buckets != 8*4 {
		t.Fatalf("Buckets = %d, want 32", st.Buckets)
	}
	if st.Candidates < 0 {
		t.Fatal("negative candidates")
	}
	if got := ix.Parameters().K; got != 4 {
		t.Fatalf("Parameters.K = %d", got)
	}
	if res, st := ix.SearchWithStats(fx.queries[0], 0); res != nil || st.Buckets != 0 {
		t.Fatal("k=0 should do nothing")
	}
}

func TestC2LSHRecallAndContracts(t *testing.T) {
	fam := lshfamily.NewRandomProjection(testD, 4)
	ix, err := c2lsh.Build(fx.data, fam, c2lsh.Params{M: 32, Threshold: 8, Budget: 300, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Name() != "C2LSH" {
		t.Fatal("name")
	}
	if ix.Bytes() <= 0 {
		t.Fatal("Bytes")
	}
	checkSortedVerified(t, ix, vec.Euclidean)
	if got := avgRecall(t, ix); got < 0.6 {
		t.Fatalf("C2LSH recall %.2f too low", got)
	}
	_, st := ix.SearchWithStats(fx.queries[0], testK)
	if st.Candidates == 0 || st.Rounds == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if st.Candidates > 300 {
		t.Fatalf("budget exceeded: %d", st.Candidates)
	}
}

func TestC2LSHBudgetControlsWork(t *testing.T) {
	fam := lshfamily.NewRandomProjection(testD, 4)
	small, _ := c2lsh.Build(fx.data, fam, c2lsh.Params{M: 32, Threshold: 8, Budget: 50, Seed: 4})
	large, _ := c2lsh.Build(fx.data, fam, c2lsh.Params{M: 32, Threshold: 8, Budget: 800, Seed: 4})
	if avgRecall(t, large) < avgRecall(t, small)-0.05 {
		t.Fatal("recall should grow with budget")
	}
}

func TestC2LSHValidation(t *testing.T) {
	fam := lshfamily.NewRandomProjection(testD, 4)
	cases := []c2lsh.Params{
		{M: 0, Threshold: 1},
		{M: 4, Threshold: 0},
		{M: 4, Threshold: 5},
		{M: 4, Threshold: 2, Ratio: 1},
		{M: 4, Threshold: 2, Budget: -1},
	}
	for i, p := range cases {
		if _, err := c2lsh.Build(fx.data, fam, p); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if _, err := c2lsh.Build(nil, fam, c2lsh.Params{M: 4, Threshold: 2}); err == nil {
		t.Error("empty data should fail")
	}
}

func TestQALSHRecallAndContracts(t *testing.T) {
	ix, err := qalsh.Build(fx.data, testD, qalsh.Params{M: 32, Threshold: 8, W: 1, Budget: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Name() != "QALSH" {
		t.Fatal("name")
	}
	checkSortedVerified(t, ix, vec.Euclidean)
	if got := avgRecall(t, ix); got < 0.6 {
		t.Fatalf("QALSH recall %.2f too low", got)
	}
	_, st := ix.SearchWithStats(fx.queries[0], testK)
	if st.Candidates == 0 || st.Rounds == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestQALSHValidation(t *testing.T) {
	cases := []qalsh.Params{
		{M: 0, Threshold: 1, W: 1},
		{M: 4, Threshold: 0, W: 1},
		{M: 4, Threshold: 5, W: 1},
		{M: 4, Threshold: 2, W: 0},
		{M: 4, Threshold: 2, W: 1, Ratio: 0.5},
		{M: 4, Threshold: 2, W: 1, Budget: -1},
	}
	for i, p := range cases {
		if _, err := qalsh.Build(fx.data, testD, p); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if _, err := qalsh.Build(fx.data, testD+1, qalsh.Params{M: 4, Threshold: 2, W: 1}); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestSRSRecallAndContracts(t *testing.T) {
	ix, err := srs.Build(fx.data, testD, srs.Params{ProjDim: 6, Budget: 300, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Name() != "SRS" {
		t.Fatal("name")
	}
	checkSortedVerified(t, ix, vec.Euclidean)
	if got := avgRecall(t, ix); got < 0.6 {
		t.Fatalf("SRS recall %.2f too low", got)
	}
	// SRS's index must be tiny relative to a table-per-function scheme.
	fat, _ := c2lsh.Build(fx.data, lshfamily.NewRandomProjection(testD, 4), c2lsh.Params{M: 32, Threshold: 8, Seed: 4})
	if ix.Bytes() >= fat.Bytes() {
		t.Fatalf("SRS index (%d B) should be smaller than C2LSH (%d B)", ix.Bytes(), fat.Bytes())
	}
	_, st := ix.SearchWithStats(fx.queries[0], testK)
	if st.Candidates == 0 || st.Candidates > 300 {
		t.Fatalf("stats out of range: %+v", st)
	}
}

func TestSRSEarlyStop(t *testing.T) {
	full, _ := srs.Build(fx.data, testD, srs.Params{ProjDim: 6, Budget: 500, Seed: 6})
	early, _ := srs.Build(fx.data, testD, srs.Params{ProjDim: 6, Budget: 500, EarlyStop: 1.5, Seed: 6})
	_, stFull := full.SearchWithStats(fx.queries[0], testK)
	_, stEarly := early.SearchWithStats(fx.queries[0], testK)
	if stEarly.Candidates > stFull.Candidates {
		t.Fatalf("early stop verified more candidates (%d > %d)", stEarly.Candidates, stFull.Candidates)
	}
}

func TestSRSValidation(t *testing.T) {
	if _, err := srs.Build(fx.data, testD, srs.Params{ProjDim: 0}); err == nil {
		t.Error("ProjDim=0 should fail")
	}
	if _, err := srs.Build(nil, testD, srs.Params{ProjDim: 4}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := srs.Build(fx.data, testD, srs.Params{ProjDim: 4, Budget: -1}); err == nil {
		t.Error("negative budget should fail")
	}
}

func TestFALCONNAngularRecall(t *testing.T) {
	// Angular workload: normalized copies.
	g := rng.New(7)
	data := make([][]float32, len(fx.data))
	for i, v := range fx.data {
		data[i] = vec.Normalize(v)
	}
	queries := make([][]float32, 10)
	for i := range queries {
		base := data[g.IntN(len(data))]
		q := vec.Clone(base)
		for j := range q {
			q[j] += float32(g.NormFloat64() * 0.05)
		}
		queries[i] = vec.Normalize(q)
	}
	truth := scan.SearchAll(data, queries, testK, vec.Angular)

	fam := lshfamily.NewCrossPolytope(testD)
	ix, err := falconn.Build(data, fam, falconn.Params{K: 1, L: 8, Probes: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Name() != "FALCONN" {
		t.Fatal("name")
	}
	var total float64
	for i, q := range queries {
		total += recallOf(ix.Search(q, testK), truth[i])
	}
	if avg := total / float64(len(queries)); avg < 0.5 {
		t.Fatalf("FALCONN recall %.2f too low", avg)
	}
}

func TestFALCONNRejectsNonAngular(t *testing.T) {
	fam := lshfamily.NewRandomProjection(testD, 8)
	if _, err := falconn.Build(fx.data, fam, falconn.Params{K: 2, L: 2, Probes: 2}); err == nil {
		t.Fatal("non-angular family should be rejected")
	}
}
