// Package e2lsh is the E2LSH baseline (Andoni's implementation of Datar et
// al.'s p-stable LSH): the static concatenating search framework with K
// concatenated functions, L tables, and exact-bucket lookups only. The
// paper evaluates it under Euclidean distance with the random-projection
// family, and under Angular distance with cross-polytope functions (§6.3
// "we adapt it for Angular distance").
package e2lsh

import (
	"lccs/internal/baseline/concat"
	"lccs/internal/lshfamily"
	"lccs/internal/pqueue"
)

// Params configures an E2LSH index: K concatenated functions × L tables.
type Params struct {
	K    int
	L    int
	Seed uint64
}

// Index is an E2LSH index.
type Index struct {
	*concat.Index
}

// Build constructs the index over data with the given family.
func Build(data [][]float32, family lshfamily.Family, p Params) (*Index, error) {
	inner, err := concat.Build(data, family, concat.Params{K: p.K, L: p.L, Probes: 1, Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	return &Index{Index: inner}, nil
}

// Name returns the method name used in the paper's figures.
func (ix *Index) Name() string { return "E2LSH" }

var _ interface {
	Search(q []float32, k int) []pqueue.Neighbor
} = (*Index)(nil)
