package e2lsh

import (
	"testing"

	"lccs/internal/lshfamily"
	"lccs/internal/rng"
)

func TestWrapperSemantics(t *testing.T) {
	g := rng.New(1)
	data := make([][]float32, 200)
	for i := range data {
		data[i] = g.GaussianVector(8)
	}
	fam := lshfamily.NewRandomProjection(8, 4)
	ix, err := Build(data, fam, Params{K: 3, L: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Name() != "E2LSH" {
		t.Fatal("name")
	}
	// E2LSH probes exactly one bucket per table.
	_, st := ix.SearchWithStats(data[0], 5)
	if st.Buckets != 6 {
		t.Fatalf("probed %d buckets, want L=6", st.Buckets)
	}
	// Self queries hit their own bucket in every table.
	for id := 0; id < 200; id += 53 {
		res := ix.Search(data[id], 1)
		if len(res) == 0 || res[0].Dist != 0 {
			t.Fatalf("id %d: %+v", id, res)
		}
	}
}

func TestBuildErrorsPropagate(t *testing.T) {
	fam := lshfamily.NewRandomProjection(8, 4)
	if _, err := Build(nil, fam, Params{K: 1, L: 1}); err == nil {
		t.Fatal("empty data should fail")
	}
	if _, err := Build([][]float32{{1}}, fam, Params{K: 0, L: 1}); err == nil {
		t.Fatal("bad params should fail")
	}
}
