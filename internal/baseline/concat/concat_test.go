package concat

import (
	"testing"

	"lccs/internal/lshfamily"
	"lccs/internal/rng"
)

func gaussData(seed uint64, n, d int) [][]float32 {
	g := rng.New(seed)
	data := make([][]float32, n)
	for i := range data {
		data[i] = g.GaussianVector(d)
	}
	return data
}

func TestValidation(t *testing.T) {
	fam := lshfamily.NewRandomProjection(8, 4)
	data := gaussData(1, 20, 8)
	bad := []Params{
		{K: 0, L: 1, Probes: 1},
		{K: 1, L: 0, Probes: 1},
		{K: 1, L: 1, Probes: 0},
		{K: 1, L: 1, Probes: 1, MaxAlt: -1},
	}
	for i, p := range bad {
		if _, err := Build(data, fam, p); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := Build(nil, fam, Params{K: 1, L: 1, Probes: 1}); err == nil {
		t.Error("empty data should fail")
	}
}

func TestExactBucketContainsSelf(t *testing.T) {
	fam := lshfamily.NewRandomProjection(8, 4)
	data := gaussData(2, 300, 8)
	ix, err := Build(data, fam, Params{K: 3, L: 4, Probes: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Self queries always collide in their own bucket in every table.
	for id := 0; id < 300; id += 37 {
		res := ix.Search(data[id], 1)
		if len(res) != 1 || res[0].Dist != 0 {
			t.Fatalf("id %d: %+v", id, res)
		}
	}
}

func TestProbingOnlyAddsCandidates(t *testing.T) {
	fam := lshfamily.NewRandomProjection(8, 2)
	data := gaussData(3, 500, 8)
	plain, err := Build(data, fam, Params{K: 4, L: 4, Probes: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	probing, err := Build(data, fam, Params{K: 4, L: 4, Probes: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		q := data[i*31]
		_, stP := plain.SearchWithStats(q, 5)
		_, stQ := probing.SearchWithStats(q, 5)
		if stQ.Candidates < stP.Candidates {
			t.Fatalf("probing saw fewer candidates: %d < %d", stQ.Candidates, stP.Candidates)
		}
		if stQ.Buckets != 4*8 || stP.Buckets != 4 {
			t.Fatalf("bucket counts: %d, %d", stQ.Buckets, stP.Buckets)
		}
	}
}

func TestEntriesAccounting(t *testing.T) {
	fam := lshfamily.NewRandomProjection(8, 4)
	data := gaussData(4, 100, 8)
	ix, err := Build(data, fam, Params{K: 2, L: 3, Probes: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ix.entries != 300 {
		t.Fatalf("entries = %d, want 300 (n × L)", ix.entries)
	}
	if ix.Bytes() < 300*16 {
		t.Fatalf("Bytes = %d", ix.Bytes())
	}
}

func TestNonProbeFamilyDegradesGracefully(t *testing.T) {
	// A family without ProbeFunc support must still work with
	// Probes > 1 (probing is silently skipped per table).
	fam := nonProbeFamily{lshfamily.NewRandomProjection(8, 4)}
	data := gaussData(5, 100, 8)
	ix, err := Build(data, fam, Params{K: 2, L: 2, Probes: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res := ix.Search(data[0], 3)
	if len(res) == 0 || res[0].Dist != 0 {
		t.Fatalf("search failed: %+v", res)
	}
}

// nonProbeFamily wraps a family and strips the probing interface from its
// functions.
type nonProbeFamily struct {
	lshfamily.Family
}

func (f nonProbeFamily) New(g *rng.RNG) lshfamily.Func {
	return plainFunc{f.Family.New(g)}
}

type plainFunc struct {
	inner lshfamily.Func
}

func (p plainFunc) Hash(v []float32) int32 { return p.inner.Hash(v) }
