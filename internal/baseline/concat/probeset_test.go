package concat

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"lccs/internal/lshfamily"
)

func randAlts(r *rand.Rand, k, maxLen int) [][]lshfamily.Alternative {
	alts := make([][]lshfamily.Alternative, k)
	for i := range alts {
		l := r.IntN(maxLen + 1)
		list := make([]lshfamily.Alternative, l)
		s := 0.0
		for j := range list {
			s += r.Float64()
			list[j] = lshfamily.Alternative{Value: int32(10*i + j), Score: s}
		}
		alts[i] = list
	}
	return alts
}

func TestPerturbationSetsAscendingUniqueDistinct(t *testing.T) {
	f := func(seed uint64, countRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, 17))
		alts := randAlts(r, 2+r.IntN(6), 3)
		count := int(countRaw % 60)
		sets := generatePerturbationSets(alts, count)
		if len(sets) > count {
			return false
		}
		seen := map[string]bool{}
		for i, s := range sets {
			if i > 0 && s.score < sets[i-1].score {
				return false
			}
			// Distinct positions within a set.
			pos := map[int]bool{}
			key := ""
			var sum float64
			for _, md := range s.mods {
				if pos[md.pos] {
					return false
				}
				pos[md.pos] = true
				key += string(rune('A'+md.pos)) + string(rune('0'+md.alt))
				sum += alts[md.pos][md.alt].Score
			}
			if seen[key] {
				return false
			}
			seen[key] = true
			if diff := sum - s.score; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPerturbationSetsEdgeCases(t *testing.T) {
	if got := generatePerturbationSets(nil, 5); got != nil {
		t.Error("no positions should yield nil")
	}
	empty := make([][]lshfamily.Alternative, 4)
	if got := generatePerturbationSets(empty, 5); got != nil {
		t.Error("empty lists should yield nil")
	}
	one := [][]lshfamily.Alternative{{{Value: 7, Score: 0.3}}}
	got := generatePerturbationSets(one, 10)
	if len(got) != 1 || got[0].mods[0].pos != 0 {
		t.Fatalf("single alternative: %+v", got)
	}
	if generatePerturbationSets(one, 0) != nil {
		t.Error("count=0 should yield nil")
	}
}

func TestHashKeyDistinguishesKeys(t *testing.T) {
	a := hashKey([]int32{1, 2, 3})
	b := hashKey([]int32{1, 2, 4})
	c := hashKey([]int32{3, 2, 1})
	if a == b || a == c {
		t.Fatal("trivial collisions in hashKey")
	}
	if a != hashKey([]int32{1, 2, 3}) {
		t.Fatal("hashKey not deterministic")
	}
}
