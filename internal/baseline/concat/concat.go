// Package concat implements the static concatenating search framework
// (§1, "Prior Work"): K i.i.d. LSH functions are concatenated into a
// compound hash G(o) = (h_1(o), ..., h_K(o)), L such compound functions
// build L hash tables, and a query inspects its bucket in each table.
//
// With Probes = 1 this is E2LSH (Indyk–Motwani / Datar et al.). With
// Probes > 1 it adds query-directed probing in the style of Multi-Probe
// LSH (Lv et al.) for the random-projection family and FALCONN (Andoni et
// al.) for the cross-polytope family: per table, perturbation sets over
// the K positions are enumerated in ascending score order and the
// corresponding extra buckets are inspected. The packages e2lsh, mplsh,
// and falconn are thin named wrappers over this engine.
package concat

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lccs/internal/lshfamily"
	"lccs/internal/pqueue"
	"lccs/internal/rng"
	"lccs/internal/vec"
)

// Params configures a static-concatenation index.
type Params struct {
	// K is the number of concatenated hash functions per table.
	K int
	// L is the number of hash tables.
	L int
	// Probes is the number of buckets inspected per table (1 = exact
	// bucket only, as in E2LSH).
	Probes int
	// MaxAlt bounds the per-position alternative list used to build
	// perturbation sets; 0 selects a default of 4.
	MaxAlt int
	// Seed drives hash function draws.
	Seed uint64
}

const defaultMaxAlt = 4

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.K <= 0 || p.L <= 0 {
		return fmt.Errorf("concat: K and L must be positive (K=%d, L=%d)", p.K, p.L)
	}
	if p.Probes <= 0 {
		return fmt.Errorf("concat: Probes must be positive, got %d", p.Probes)
	}
	if p.MaxAlt < 0 {
		return errors.New("concat: MaxAlt must be non-negative")
	}
	return nil
}

// Index is a static-concatenation LSH index. It is safe for concurrent
// queries.
type Index struct {
	family lshfamily.Family
	metric vec.Metric
	data   [][]float32
	funcs  [][]lshfamily.Func // L tables × K functions
	tables []map[uint64][]int32
	params Params

	buildTime time.Duration
	entries   int64
	scratch   sync.Pool
}

type queryScratch struct {
	visited []int32
	gen     int32
	key     []int32
	alts    [][]lshfamily.Alternative
}

// Build constructs the index over data.
func Build(data [][]float32, family lshfamily.Family, p Params) (*Index, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, errors.New("concat: empty dataset")
	}
	if p.MaxAlt == 0 {
		p.MaxAlt = defaultMaxAlt
	}
	start := time.Now()
	g := rng.New(p.Seed)
	ix := &Index{
		family: family,
		metric: family.Metric(),
		data:   data,
		funcs:  make([][]lshfamily.Func, p.L),
		tables: make([]map[uint64][]int32, p.L),
		params: p,
	}
	for l := 0; l < p.L; l++ {
		ix.funcs[l] = lshfamily.NewFuncs(family, p.K, g)
		table := make(map[uint64][]int32, len(data))
		key := make([]int32, p.K)
		for id, v := range data {
			for j, f := range ix.funcs[l] {
				key[j] = f.Hash(v)
			}
			h := hashKey(key)
			table[h] = append(table[h], int32(id))
			ix.entries++
		}
		ix.tables[l] = table
	}
	ix.scratch.New = func() any {
		return &queryScratch{
			visited: make([]int32, len(data)),
			key:     make([]int32, p.K),
			alts:    make([][]lshfamily.Alternative, p.K),
		}
	}
	ix.buildTime = time.Since(start)
	return ix, nil
}

// hashKey mixes a compound hash value into a 64-bit bucket id
// (FNV-1a over the K int32 words).
func hashKey(key []int32) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, k := range key {
		u := uint32(k)
		for s := 0; s < 32; s += 8 {
			h ^= uint64((u >> s) & 0xff)
			h *= prime
		}
	}
	return h
}

// Params returns the build parameters.
func (ix *Index) Parameters() Params { return ix.params }

// BuildTime returns the wall-clock indexing time.
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// Bytes approximates the index memory: bucket entries (id + amortized map
// overhead) plus the hash functions.
func (ix *Index) Bytes() int64 {
	var funcBytes int64
	for _, fs := range ix.funcs {
		funcBytes += lshfamily.FuncsBytes(fs)
	}
	// ~16 bytes per entry: 4 for the id, the rest amortized map/bucket
	// header overhead, matching how lshkit-style implementations report
	// size.
	return ix.entries*16 + funcBytes
}

// Search answers a k-NN query: it probes Probes buckets in each of the L
// tables, deduplicates the union of bucket members, verifies them with
// exact distances, and returns the k nearest.
func (ix *Index) Search(q []float32, k int) []pqueue.Neighbor {
	res, _ := ix.SearchWithStats(q, k)
	return res
}

// Stats reports the verification work of one query.
type Stats struct {
	Candidates int
	Buckets    int
}

// SearchWithStats is Search plus work counters.
func (ix *Index) SearchWithStats(q []float32, k int) ([]pqueue.Neighbor, Stats) {
	if k <= 0 {
		return nil, Stats{}
	}
	sc := ix.scratch.Get().(*queryScratch)
	defer ix.scratch.Put(sc)
	sc.gen++

	best := pqueue.NewKBest(k)
	var st Stats
	for l := range ix.tables {
		for j, f := range ix.funcs[l] {
			sc.key[j] = f.Hash(q)
		}
		ix.probeTable(l, q, sc, best, &st)
	}
	return best.Sorted(), st
}

// probeTable inspects the primary bucket of table l and, if Probes > 1,
// the perturbed buckets in ascending perturbation-score order.
func (ix *Index) probeTable(l int, q []float32, sc *queryScratch, best *pqueue.KBest, st *Stats) {
	ix.scanBucket(l, hashKey(sc.key), q, sc, best, st)
	probes := ix.params.Probes
	if probes <= 1 {
		return
	}
	pfuncs, ok := lshfamily.ProbeFuncs(ix.funcs[l])
	if !ok {
		return
	}
	for j, pf := range pfuncs {
		sc.alts[j] = pf.Alternatives(q, ix.params.MaxAlt, sc.alts[j])
	}
	perts := generatePerturbationSets(sc.alts, probes-1)
	key := make([]int32, len(sc.key))
	for _, p := range perts {
		copy(key, sc.key)
		for _, md := range p.mods {
			key[md.pos] = sc.alts[md.pos][md.alt].Value
		}
		ix.scanBucket(l, hashKey(key), q, sc, best, st)
	}
}

func (ix *Index) scanBucket(l int, h uint64, q []float32, sc *queryScratch, best *pqueue.KBest, st *Stats) {
	st.Buckets++
	for _, id := range ix.tables[l][h] {
		if sc.visited[id] == sc.gen {
			continue
		}
		sc.visited[id] = sc.gen
		best.Add(int(id), ix.metric.Distance(ix.data[id], q))
		st.Candidates++
	}
}
