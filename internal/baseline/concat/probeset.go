package concat

import (
	"sort"

	"lccs/internal/lshfamily"
	"lccs/internal/pqueue"
)

// mod replaces position pos of a compound hash key with the alt-th
// alternative at that position.
type mod struct {
	pos int
	alt int
}

// pset is a perturbation set in the sense of Multi-Probe LSH: a set of
// modifications over distinct positions, scored by the summed per-
// modification scores.
type pset struct {
	score float64
	mods  []mod
}

// flatAlt is one (position, alternative) pair in the flattened,
// score-sorted candidate list (the "sorted z-list" of Lv et al.).
type flatAlt struct {
	pos, alt int
	score    float64
}

// generatePerturbationSets enumerates up to count perturbation sets in
// ascending score order using the shift/expand construction of Lv et al.
// over the flattened, score-sorted list of (position, alternative) pairs.
// Unlike the circular LCCS variant (internal/core), positions carry no
// adjacency constraint — any subset of distinct positions is admissible;
// sets that would modify the same position twice are skipped.
func generatePerturbationSets(alts [][]lshfamily.Alternative, count int) []pset {
	if count <= 0 {
		return nil
	}
	var fl []flatAlt
	for pos, list := range alts {
		for alt, a := range list {
			fl = append(fl, flatAlt{pos: pos, alt: alt, score: a.Score})
		}
	}
	if len(fl) == 0 {
		return nil
	}
	sort.Slice(fl, func(a, b int) bool { return fl[a].score < fl[b].score })

	// A candidate state is a set of indices into fl, generated with
	// shift (advance the last index) and expand (append the next index),
	// which enumerates every index subset exactly once in ascending
	// score order.
	type state struct {
		score float64
		idxs  []int
	}
	h := pqueue.New[state](func(a, b state) bool { return a.score < b.score })
	h.Push(state{score: fl[0].score, idxs: []int{0}})
	out := make([]pset, 0, count)
	for len(out) < count && h.Len() > 0 {
		s := h.Pop()
		if distinctPositions(fl, s.idxs) {
			mods := make([]mod, len(s.idxs))
			for i, fi := range s.idxs {
				mods[i] = mod{pos: fl[fi].pos, alt: fl[fi].alt}
			}
			out = append(out, pset{score: s.score, mods: mods})
		}
		last := s.idxs[len(s.idxs)-1]
		if last+1 < len(fl) {
			shifted := make([]int, len(s.idxs))
			copy(shifted, s.idxs)
			shifted[len(shifted)-1] = last + 1
			h.Push(state{score: s.score - fl[last].score + fl[last+1].score, idxs: shifted})

			expanded := make([]int, len(s.idxs)+1)
			copy(expanded, s.idxs)
			expanded[len(s.idxs)] = last + 1
			h.Push(state{score: s.score + fl[last+1].score, idxs: expanded})
		}
	}
	return out
}

func distinctPositions(fl []flatAlt, idxs []int) bool {
	for i := 0; i < len(idxs); i++ {
		for j := i + 1; j < len(idxs); j++ {
			if fl[idxs[i]].pos == fl[idxs[j]].pos {
				return false
			}
		}
	}
	return true
}
