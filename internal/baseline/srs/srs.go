// Package srs is the SRS baseline (Sun et al., "SRS: Solving c-Approximate
// Nearest Neighbor Queries in High Dimensional Euclidean Space with a Tiny
// Index"): project the dataset to d' ∈ [4, 10] dimensions with Gaussian
// projections, index the projections with an exact low-dimensional tree,
// and answer queries by walking the projected space in increasing
// projected distance, verifying each visited object in the original space
// until a candidate budget (the paper's t·n) or the early-termination test
// fires.
//
// The paper uses the in-memory SRS variant with a cover tree; this
// implementation uses a k-d tree with incremental traversal, which
// provides the identical "next closest projected point" service.
package srs

import (
	"errors"
	"fmt"
	"math"
	"time"

	"lccs/internal/kdtree"
	"lccs/internal/pqueue"
	"lccs/internal/rng"
	"lccs/internal/vec"
)

// Params configures an SRS index.
type Params struct {
	// ProjDim is d', the projected dimensionality (the paper sweeps
	// 4..10).
	ProjDim int
	// Budget is the maximum number of candidates verified per query
	// (t·n in the SRS paper). 0 selects 100 + k − 1 at query time.
	Budget int
	// EarlyStop enables the early-termination test with the given
	// threshold factor c': the walk stops when the next projected
	// distance exceeds c' times the current k-th best exact distance.
	// 0 disables the test.
	EarlyStop float64
	// Seed drives projection draws.
	Seed uint64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.ProjDim <= 0 {
		return fmt.Errorf("srs: ProjDim must be positive, got %d", p.ProjDim)
	}
	if p.Budget < 0 || p.EarlyStop < 0 {
		return errors.New("srs: Budget and EarlyStop must be non-negative")
	}
	return nil
}

// Index is an SRS index. It is safe for concurrent queries.
type Index struct {
	metric    vec.Metric
	data      [][]float32
	proj      [][]float32 // d' Gaussian projection vectors
	projected [][]float32
	tree      *kdtree.Tree
	params    Params

	buildTime time.Duration
}

// Build constructs the index over data for Euclidean distance.
func Build(data [][]float32, dim int, p Params) (*Index, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, errors.New("srs: empty dataset")
	}
	for i, v := range data {
		if len(v) != dim {
			return nil, fmt.Errorf("srs: object %d has dimension %d, want %d", i, len(v), dim)
		}
	}
	start := time.Now()
	g := rng.New(p.Seed)
	ix := &Index{
		metric: vec.Euclidean,
		data:   data,
		proj:   make([][]float32, p.ProjDim),
		params: p,
	}
	// Scale by 1/√d' so projected distances estimate original distances
	// (E[‖P(o)−P(q)‖²] = ‖o−q‖² under N(0, 1/d') entries).
	scale := 1 / math.Sqrt(float64(p.ProjDim))
	for j := range ix.proj {
		a := g.GaussianVector(dim)
		vec.Scale(a, scale)
		ix.proj[j] = a
	}
	ix.projected = make([][]float32, len(data))
	for id, v := range data {
		ix.projected[id] = ix.project(v)
	}
	ix.tree = kdtree.Build(ix.projected, 0)
	ix.buildTime = time.Since(start)
	return ix, nil
}

func (ix *Index) project(v []float32) []float32 {
	out := make([]float32, ix.params.ProjDim)
	for j, a := range ix.proj {
		out[j] = float32(vec.Dot(a, v))
	}
	return out
}

// BuildTime returns the wall-clock indexing time.
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// Bytes approximates index memory: the projected points plus the tree —
// SRS's selling point is that this is tiny.
func (ix *Index) Bytes() int64 {
	return int64(len(ix.data))*int64(ix.params.ProjDim)*4 + ix.tree.Bytes()
}

// Name returns the method name used in the paper's figures.
func (ix *Index) Name() string { return "SRS" }

// Search answers a k-NN query by incremental traversal of the projected
// space.
func (ix *Index) Search(q []float32, k int) []pqueue.Neighbor {
	res, _ := ix.SearchWithStats(q, k)
	return res
}

// Stats reports the verification work of one query.
type Stats struct {
	Candidates int
}

// SearchWithStats is Search plus work counters.
func (ix *Index) SearchWithStats(q []float32, k int) ([]pqueue.Neighbor, Stats) {
	if k <= 0 {
		return nil, Stats{}
	}
	budget := ix.params.Budget
	if budget == 0 {
		budget = 100 + k - 1
	}
	if budget > len(ix.data) {
		budget = len(ix.data)
	}
	pq := ix.project(q)
	it := ix.tree.NewIterator(pq)
	best := pqueue.NewKBest(k)
	var st Stats
	for st.Candidates < budget {
		id, projDist, ok := it.Next()
		if !ok {
			break
		}
		best.Add(id, ix.metric.Distance(ix.data[id], q))
		st.Candidates++
		if ix.params.EarlyStop > 0 {
			if worst, full := best.Worst(); full && projDist > ix.params.EarlyStop*worst {
				break
			}
		}
	}
	return best.Sorted(), st
}
