package srs

import (
	"math"
	"testing"

	"lccs/internal/rng"
	"lccs/internal/vec"
)

func gaussData(seed uint64, n, d int) [][]float32 {
	g := rng.New(seed)
	data := make([][]float32, n)
	for i := range data {
		data[i] = g.GaussianVector(d)
	}
	return data
}

// TestProjectionPreservesDistanceInExpectation: with N(0, 1/d') entries,
// the squared projected distance is an unbiased estimate of the squared
// original distance — the property SRS's walk order relies on.
func TestProjectionPreservesDistanceInExpectation(t *testing.T) {
	d := 64
	data := gaussData(1, 2, d)
	var sumOrig, sumProj float64
	const trials = 300
	for s := 0; s < trials; s++ {
		ix, err := Build(data, d, Params{ProjDim: 8, Seed: uint64(s + 1)})
		if err != nil {
			t.Fatal(err)
		}
		sumOrig += vec.SquaredDistance(data[0], data[1])
		sumProj += vec.SquaredDistance(ix.projected[0], ix.projected[1])
	}
	ratio := sumProj / sumOrig
	if math.Abs(ratio-1) > 0.15 {
		t.Fatalf("E[proj²]/orig² = %.3f, want ≈ 1", ratio)
	}
}

func TestWalkOrderIsProjectedDistanceOrder(t *testing.T) {
	d := 16
	data := gaussData(2, 500, d)
	ix, err := Build(data, d, Params{ProjDim: 6, Budget: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := data[0]
	pq := ix.project(q)
	it := ix.tree.NewIterator(pq)
	prev := -1.0
	for count := 0; count < 100; count++ {
		_, dist, ok := it.Next()
		if !ok {
			break
		}
		if dist < prev {
			t.Fatalf("projected walk not monotone: %v after %v", dist, prev)
		}
		prev = dist
	}
}

func TestSelfQueryFound(t *testing.T) {
	d := 12
	data := gaussData(3, 200, d)
	ix, err := Build(data, d, Params{ProjDim: 6, Budget: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The self point projects to distance 0, so it is the first
	// candidate even with a tiny budget.
	for id := 0; id < 200; id += 41 {
		res := ix.Search(data[id], 1)
		if len(res) != 1 || res[0].Dist != 0 {
			t.Fatalf("id %d: %+v", id, res)
		}
	}
}

func TestBudgetClamped(t *testing.T) {
	d := 8
	data := gaussData(4, 50, d)
	ix, err := Build(data, d, Params{ProjDim: 4, Budget: 10000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, st := ix.SearchWithStats(data[0], 5)
	if st.Candidates > 50 {
		t.Fatalf("verified %d candidates from 50 points", st.Candidates)
	}
	if res, st := ix.SearchWithStats(data[0], 0); res != nil || st.Candidates != 0 {
		t.Fatal("k=0 should do nothing")
	}
}

func TestTinyIndexProperty(t *testing.T) {
	// SRS's selling point: the index is ~d'/d of the data size.
	d := 128
	data := gaussData(5, 1000, d)
	ix, err := Build(data, d, Params{ProjDim: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dataBytes := int64(1000) * int64(d) * 4
	if ix.Bytes() > dataBytes/4 {
		t.Fatalf("index %d B not tiny vs data %d B", ix.Bytes(), dataBytes)
	}
}
