// Package mplsh is the Multi-Probe LSH baseline (Lv et al.): the static
// concatenating search framework where each of the L tables is probed at
// its exact bucket plus T−1 perturbed buckets chosen by the query-directed
// probing sequence. It is based on the random-projection family and
// designed for Euclidean distance (§6.3).
package mplsh

import (
	"lccs/internal/baseline/concat"
	"lccs/internal/lshfamily"
)

// Params configures a Multi-Probe LSH index.
type Params struct {
	K int
	L int
	// Probes is the number of buckets inspected per table (T in the
	// Multi-Probe LSH paper).
	Probes int
	Seed   uint64
}

// Index is a Multi-Probe LSH index.
type Index struct {
	*concat.Index
}

// Build constructs the index over data with the given family.
func Build(data [][]float32, family lshfamily.Family, p Params) (*Index, error) {
	inner, err := concat.Build(data, family, concat.Params{
		K: p.K, L: p.L, Probes: p.Probes, Seed: p.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Index{Index: inner}, nil
}

// Name returns the method name used in the paper's figures.
func (ix *Index) Name() string { return "Multi-Probe LSH" }
