package mplsh

import (
	"testing"

	"lccs/internal/lshfamily"
	"lccs/internal/rng"
)

func TestProbeCountPerTable(t *testing.T) {
	g := rng.New(1)
	data := make([][]float32, 300)
	for i := range data {
		data[i] = g.GaussianVector(8)
	}
	fam := lshfamily.NewRandomProjection(8, 4)
	ix, err := Build(data, fam, Params{K: 4, L: 3, Probes: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Name() != "Multi-Probe LSH" {
		t.Fatal("name")
	}
	_, st := ix.SearchWithStats(data[0], 5)
	if st.Buckets != 3*10 {
		t.Fatalf("probed %d buckets, want L×T = 30", st.Buckets)
	}
}

func TestProbesGrowCandidatePool(t *testing.T) {
	g := rng.New(2)
	data := make([][]float32, 800)
	for i := range data {
		data[i] = g.GaussianVector(8)
	}
	fam := lshfamily.NewRandomProjection(8, 1)
	var prev int
	for _, probes := range []int{1, 4, 16} {
		ix, err := Build(data, fam, Params{K: 6, L: 2, Probes: probes, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		var total int
		for i := 0; i < 10; i++ {
			_, st := ix.SearchWithStats(data[i*71], 5)
			total += st.Candidates
		}
		if total < prev {
			t.Fatalf("probes=%d: candidate pool shrank (%d < %d)", probes, total, prev)
		}
		prev = total
	}
	if prev == 0 {
		t.Fatal("no candidates found even at 16 probes")
	}
}
