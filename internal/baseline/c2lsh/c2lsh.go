// Package c2lsh is the C2LSH baseline (Gan et al., "Locality-Sensitive
// Hashing Scheme Based on Dynamic Collision Counting"): m individual LSH
// functions, one table each; a query counts, per data object, the number
// of functions under which the object collides with the query ("virtual
// rehashing" expands the bucket width by the approximation ratio c each
// round), and objects whose collision count reaches the threshold l are
// verified with exact distances.
//
// The paper evaluates C2LSH under Euclidean distance with the
// random-projection family and adapts it to Angular distance with
// cross-polytope functions (§6.3); this implementation is likewise
// family-generic — it needs only the per-function integer hash values, and
// widens buckets by grouping ⌊h/R⌋ during virtual rehashing.
package c2lsh

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lccs/internal/lshfamily"
	"lccs/internal/pqueue"
	"lccs/internal/rng"
	"lccs/internal/vec"
)

// Params configures a C2LSH index.
type Params struct {
	// M is the number of individual hash functions (the paper's m).
	M int
	// Threshold is the collision count l required before an object is
	// verified.
	Threshold int
	// Ratio is the approximation ratio c driving virtual rehashing;
	// bucket widths grow by this factor each round. 0 selects 2.
	Ratio int
	// Budget is the number of candidates to verify before terminating
	// (the paper's βn + k − 1). 0 selects 100 + k − 1 at query time.
	Budget int
	// Seed drives hash function draws.
	Seed uint64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.M <= 0 {
		return fmt.Errorf("c2lsh: M must be positive, got %d", p.M)
	}
	if p.Threshold <= 0 || p.Threshold > p.M {
		return fmt.Errorf("c2lsh: Threshold must be in [1, M], got %d", p.Threshold)
	}
	if p.Ratio < 0 || p.Ratio == 1 {
		return errors.New("c2lsh: Ratio must be 0 (default) or ≥ 2")
	}
	if p.Budget < 0 {
		return errors.New("c2lsh: Budget must be non-negative")
	}
	return nil
}

// entry is one data object in one function's table, keyed by its base
// bucket.
type entry struct {
	bucket int32
	id     int32
}

// Index is a C2LSH index. It is safe for concurrent queries.
type Index struct {
	family lshfamily.Family
	metric vec.Metric
	data   [][]float32
	funcs  []lshfamily.Func
	// tables[i] is function i's objects sorted by base bucket.
	tables [][]entry
	params Params

	buildTime time.Duration
	scratch   sync.Pool
}

type queryScratch struct {
	counts  []int32
	counted []int32 // generation stamp: id already verified or counting
	gen     int32
	lo, hi  []int // per-function covered entry ranges
	hq      []int32
}

// Build constructs the index over data.
func Build(data [][]float32, family lshfamily.Family, p Params) (*Index, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, errors.New("c2lsh: empty dataset")
	}
	if p.Ratio == 0 {
		p.Ratio = 2
	}
	start := time.Now()
	g := rng.New(p.Seed)
	funcs := lshfamily.NewFuncs(family, p.M, g)
	tables := make([][]entry, p.M)
	for i, f := range funcs {
		t := make([]entry, len(data))
		for id, v := range data {
			t[id] = entry{bucket: f.Hash(v), id: int32(id)}
		}
		sort.Slice(t, func(a, b int) bool {
			if t[a].bucket != t[b].bucket {
				return t[a].bucket < t[b].bucket
			}
			return t[a].id < t[b].id
		})
		tables[i] = t
	}
	ix := &Index{
		family: family,
		metric: family.Metric(),
		data:   data,
		funcs:  funcs,
		tables: tables,
		params: p,
	}
	ix.scratch.New = func() any {
		return &queryScratch{
			counts:  make([]int32, len(data)),
			counted: make([]int32, len(data)),
			lo:      make([]int, p.M),
			hi:      make([]int, p.M),
			hq:      make([]int32, p.M),
		}
	}
	ix.buildTime = time.Since(start)
	return ix, nil
}

// BuildTime returns the wall-clock indexing time.
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// Bytes approximates index memory: one 8-byte entry per object per
// function plus the hash functions.
func (ix *Index) Bytes() int64 {
	return int64(ix.params.M)*int64(len(ix.data))*8 + lshfamily.FuncsBytes(ix.funcs)
}

// Name returns the method name used in the paper's figures.
func (ix *Index) Name() string { return "C2LSH" }

// floorDiv is floor division for possibly negative hash values; virtual
// rehashing groups base buckets as ⌊h/R⌋ and must round toward −∞ so that
// bucket groups nest across rounds.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Search answers a k-NN query by dynamic collision counting with virtual
// rehashing. Objects reaching the collision threshold are verified; the
// search stops when the candidate budget is exhausted or every bucket has
// been consumed.
func (ix *Index) Search(q []float32, k int) []pqueue.Neighbor {
	res, _ := ix.SearchWithStats(q, k)
	return res
}

// Stats reports the verification work of one query.
type Stats struct {
	Candidates int
	Rounds     int
}

// SearchWithStats is Search plus work counters.
func (ix *Index) SearchWithStats(q []float32, k int) ([]pqueue.Neighbor, Stats) {
	if k <= 0 {
		return nil, Stats{}
	}
	sc := ix.scratch.Get().(*queryScratch)
	defer ix.scratch.Put(sc)
	sc.gen++
	for i, f := range ix.funcs {
		sc.hq[i] = f.Hash(q)
		sc.lo[i] = -1 // ranges not yet initialized
	}

	budget := ix.params.Budget
	if budget == 0 {
		budget = 100 + k - 1
	}
	n := len(ix.data)
	if budget > n {
		budget = n
	}
	best := pqueue.NewKBest(k)
	var st Stats
	threshold := int32(ix.params.Threshold)

	// The anchored interval [⌊hq/R⌋·R, (⌊hq/R⌋+1)·R) converges to
	// [0, +∞) for hq ≥ 0 and to (−∞, 0) for hq < 0 as R grows: buckets
	// on the other side of zero are never merged with the query's (the
	// groups ⌊h/R⌋ are anchored at zero). Precompute that ultimate
	// coverage per function so the round loop can terminate.
	ultLo := make([]int, len(ix.funcs))
	ultHi := make([]int, len(ix.funcs))
	for i := range ix.funcs {
		t := ix.tables[i]
		zero := sort.Search(len(t), func(j int) bool { return t[j].bucket >= 0 })
		if sc.hq[i] >= 0 {
			ultLo[i], ultHi[i] = zero, len(t)
		} else {
			ultLo[i], ultHi[i] = 0, zero
		}
	}

	// Virtual rehashing rounds: R = 1, c, c², ... until the budget runs
	// out or every reachable entry of every table is covered.
	for r := int64(1); ; r *= int64(ix.params.Ratio) {
		st.Rounds++
		allCovered := true
		for i := range ix.funcs {
			t := ix.tables[i]
			vb := floorDiv(int64(sc.hq[i]), r)
			// Base buckets covered at this round: [vb*R, (vb+1)*R).
			lo := sort.Search(len(t), func(j int) bool { return int64(t[j].bucket) >= vb*r })
			hi := sort.Search(len(t), func(j int) bool { return int64(t[j].bucket) >= (vb+1)*r })
			ploA, phiA := sc.lo[i], sc.hi[i]
			if ploA == -1 {
				ploA, phiA = lo, lo // nothing covered yet
			}
			// Bucket groups nest, so [lo,hi) ⊇ [ploA,phiA); count
			// only the newly covered entries.
			for j := lo; j < ploA; j++ {
				if ix.bump(sc, t[j].id, threshold, q, best, &st) && st.Candidates >= budget {
					return best.Sorted(), st
				}
			}
			for j := phiA; j < hi; j++ {
				if ix.bump(sc, t[j].id, threshold, q, best, &st) && st.Candidates >= budget {
					return best.Sorted(), st
				}
			}
			sc.lo[i], sc.hi[i] = lo, hi
			if lo > ultLo[i] || hi < ultHi[i] {
				allCovered = false
			}
		}
		if allCovered {
			return best.Sorted(), st
		}
	}
}

// bump increments id's collision count; when the count reaches the
// threshold the object is verified exactly once. It reports whether a
// verification happened.
func (ix *Index) bump(sc *queryScratch, id int32, threshold int32, q []float32, best *pqueue.KBest, st *Stats) bool {
	if sc.counted[id] != sc.gen {
		sc.counted[id] = sc.gen
		sc.counts[id] = 0
	}
	sc.counts[id]++
	if sc.counts[id] == threshold {
		best.Add(int(id), ix.metric.Distance(ix.data[id], q))
		st.Candidates++
		return true
	}
	return false
}
