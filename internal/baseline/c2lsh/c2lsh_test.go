package c2lsh

import (
	"testing"
	"testing/quick"

	"lccs/internal/lshfamily"
	"lccs/internal/rng"
)

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3},
		{-7, 2, -4},
		{-8, 2, -4},
		{0, 3, 0},
		{-1, 4, -1},
		{5, 5, 1},
		{-5, 5, -1},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestFloorDivNesting is the property virtual rehashing depends on: bucket
// groups at radius c·R refine-nest those at R, i.e.
// floorDiv(h, R*c) == floorDiv(floorDiv(h, R), c).
func TestFloorDivNesting(t *testing.T) {
	f := func(h int32, rRaw, cRaw uint8) bool {
		r := int64(1 + rRaw%30)
		c := int64(2 + cRaw%4)
		return floorDiv(int64(h), r*c) == floorDiv(floorDiv(int64(h), r), c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCountsResetBetweenQueries(t *testing.T) {
	g := rng.New(1)
	data := make([][]float32, 200)
	for i := range data {
		data[i] = g.GaussianVector(8)
	}
	fam := lshfamily.NewRandomProjection(8, 4)
	ix, err := Build(data, fam, Params{M: 16, Threshold: 4, Budget: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave different queries; stale counts from a previous query
	// must not leak (generation stamping).
	for trial := 0; trial < 30; trial++ {
		q := data[trial%len(data)]
		res := ix.Search(q, 5)
		if len(res) == 0 {
			t.Fatalf("trial %d: no results", trial)
		}
		for _, r := range res {
			if r.Dist < 0 {
				t.Fatal("negative distance")
			}
		}
	}
}

func TestExhaustsWithoutBudget(t *testing.T) {
	// With budget ≥ n and threshold 1, every object is eventually
	// verified: recall of self-queries must be perfect.
	g := rng.New(2)
	data := make([][]float32, 60)
	for i := range data {
		data[i] = g.GaussianVector(4)
	}
	fam := lshfamily.NewRandomProjection(4, 1)
	ix, err := Build(data, fam, Params{M: 4, Threshold: 1, Budget: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 60; id += 13 {
		res := ix.Search(data[id], 1)
		if len(res) != 1 || res[0].Dist != 0 {
			t.Fatalf("id %d: %+v", id, res)
		}
	}
}

func TestRoundsGrowForFarQueries(t *testing.T) {
	g := rng.New(3)
	data := make([][]float32, 500)
	for i := range data {
		data[i] = g.GaussianVector(8)
	}
	fam := lshfamily.NewRandomProjection(8, 0.5)
	ix, err := Build(data, fam, Params{M: 16, Threshold: 8, Budget: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// A query far outside the data cloud needs more virtual-rehashing
	// rounds than an in-distribution query.
	far := make([]float32, 8)
	for j := range far {
		far[j] = 1000
	}
	_, stNear := ix.SearchWithStats(data[0], 5)
	_, stFar := ix.SearchWithStats(far, 5)
	if stFar.Rounds <= stNear.Rounds {
		t.Fatalf("far query used %d rounds, near used %d", stFar.Rounds, stNear.Rounds)
	}
}

func TestDefaultBudgetAndRatio(t *testing.T) {
	g := rng.New(4)
	data := make([][]float32, 300)
	for i := range data {
		data[i] = g.GaussianVector(8)
	}
	fam := lshfamily.NewRandomProjection(8, 2)
	ix, err := Build(data, fam, Params{M: 16, Threshold: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, st := ix.SearchWithStats(data[0], 10)
	if st.Candidates > 100+10-1 {
		t.Fatalf("default budget exceeded: %d", st.Candidates)
	}
	if ix.params.Ratio != 2 {
		t.Fatalf("default ratio %d", ix.params.Ratio)
	}
	if res, st := ix.SearchWithStats(data[0], 0); res != nil || st.Candidates != 0 {
		t.Fatal("k=0 should do nothing")
	}
}
