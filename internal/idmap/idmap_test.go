package idmap

import "testing"

func TestIdentityBasics(t *testing.T) {
	m := New(5)
	if !m.Identity() || m.Len() != 5 || m.Next() != 5 {
		t.Fatalf("identity map: %+v", m)
	}
	for slot := 0; slot < 5; slot++ {
		if m.Ext(slot) != slot {
			t.Fatalf("Ext(%d) = %d", slot, m.Ext(slot))
		}
		got, ok := m.Slot(slot)
		if !ok || got != slot {
			t.Fatalf("Slot(%d) = %d,%v", slot, got, ok)
		}
	}
	if _, ok := m.Slot(5); ok {
		t.Fatal("unassigned id resolved")
	}
	if _, ok := m.Slot(-1); ok {
		t.Fatal("negative id resolved")
	}
	if id := m.Alloc(); id != 5 || !m.Identity() || m.Len() != 6 {
		t.Fatalf("Alloc on identity: id=%d len=%d", id, m.Len())
	}
}

func TestNilMapIsIdentity(t *testing.T) {
	var m *Map
	if !m.Identity() {
		t.Fatal("nil map should report identity")
	}
	if m.Ext(7) != 7 {
		t.Fatalf("nil Ext(7) = %d", m.Ext(7))
	}
	if _, ok := m.Slot(0); ok {
		t.Fatal("nil map has no slots")
	}
}

func TestCompactAndStability(t *testing.T) {
	m := New(6) // ids 0..5
	dead := map[int]bool{1: true, 4: true}
	if dropped := m.Compact(0, func(s int) bool { return dead[s] }); dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if m.Identity() || m.Len() != 4 {
		t.Fatalf("post-compaction: identity=%v len=%d", m.Identity(), m.Len())
	}
	// Surviving ids keep resolving; slots are dense.
	wantSlots := map[int]int{0: 0, 2: 1, 3: 2, 5: 3}
	for id, want := range wantSlots {
		slot, ok := m.Slot(id)
		if !ok || slot != want {
			t.Fatalf("Slot(%d) = %d,%v, want %d", id, slot, ok, want)
		}
		if m.Ext(slot) != id {
			t.Fatalf("Ext(%d) = %d, want %d", slot, m.Ext(slot), id)
		}
	}
	for _, id := range []int{1, 4} {
		if _, ok := m.Slot(id); ok {
			t.Fatalf("compacted id %d still resolves", id)
		}
	}
	// Dropped ids are never reissued: the watermark survived compaction.
	if id := m.Alloc(); id != 6 {
		t.Fatalf("Alloc after compaction = %d, want 6", id)
	}
	if slot, ok := m.Slot(6); !ok || slot != 4 {
		t.Fatalf("Slot(6) = %d,%v, want 4", slot, ok)
	}
}

func TestCompactKeepPrefix(t *testing.T) {
	m := New(8)
	dead := map[int]bool{1: true, 5: true, 7: true}
	// Slots below the prefix are pinned (they back immutable shards), so
	// only 5 and 7 drop.
	if dropped := m.Compact(4, func(s int) bool { return dead[s] }); dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if m.Len() != 6 {
		t.Fatalf("len = %d", m.Len())
	}
	if slot, ok := m.Slot(1); !ok || slot != 1 {
		t.Fatalf("prefix slot moved: %d,%v", slot, ok)
	}
	if slot, ok := m.Slot(6); !ok || slot != 5 {
		t.Fatalf("Slot(6) = %d,%v, want 5", slot, ok)
	}
}

func TestCompactNothingDeadStaysIdentity(t *testing.T) {
	m := New(4)
	if dropped := m.Compact(0, func(int) bool { return false }); dropped != 0 {
		t.Fatalf("dropped = %d", dropped)
	}
	if !m.Identity() {
		t.Fatal("no-op compaction materialized the map")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := New(3)
	m.Compact(0, func(s int) bool { return s == 1 })
	cp := m.Clone()
	m.Alloc()
	if cp.Len() != 2 || cp.Next() != 3 {
		t.Fatalf("clone mutated: len=%d next=%d", cp.Len(), cp.Next())
	}
}

func TestRestoreRoundTripAndValidation(t *testing.T) {
	m := New(6)
	m.Compact(0, func(s int) bool { return s == 2 })
	m.Alloc() // id 6 at slot 5

	ids := m.AppendIDs(nil)
	back, err := Restore(ids, m.Next())
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != m.Len() || back.Next() != m.Next() {
		t.Fatalf("round trip: len=%d next=%d", back.Len(), back.Next())
	}
	for slot := 0; slot < m.Len(); slot++ {
		if back.Ext(slot) != m.Ext(slot) {
			t.Fatalf("slot %d: %d vs %d", slot, back.Ext(slot), m.Ext(slot))
		}
	}

	// Identity restores from the watermark alone.
	ident, err := Restore(nil, 9)
	if err != nil || !ident.Identity() || ident.Len() != 9 {
		t.Fatalf("identity restore: %v %+v", err, ident)
	}

	// Corruption is rejected.
	if _, err := Restore([]int{3, 1}, 10); err == nil {
		t.Fatal("non-increasing ids accepted")
	}
	if _, err := Restore([]int{0, 1, 1}, 10); err == nil {
		t.Fatal("duplicate ids accepted")
	}
	if _, err := Restore([]int{0, 12}, 10); err == nil {
		t.Fatal("id above watermark accepted")
	}
	if _, err := Restore(nil, -1); err == nil {
		t.Fatal("negative watermark accepted")
	}
}
