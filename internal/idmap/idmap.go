// Package idmap maintains a stable external-id ↔ dense-slot bijection
// for compacting vector stores. External ids are handed to clients and
// stay valid forever; slots are positions in a flat store and shift
// when compaction physically drops tombstoned rows. The map is the
// translation layer between the two spaces.
//
// Ids are assigned monotonically and never reused: deleting id 7 and
// compacting never makes a later insert answer to 7 again. Until the
// first compaction the mapping is the identity and is represented
// implicitly — no per-vector memory and no lookup cost — which is the
// steady state of every index that has seen no deletes.
//
// A Map is not safe for concurrent use; callers serialize access (the
// DynamicIndex holds its write lock).
package idmap

import (
	"fmt"
	"sort"
)

// Map is the bijection. The zero value is not useful; construct with
// New or Restore.
type Map struct {
	// ext[slot] is the external id stored at slot, strictly increasing.
	// nil means the mapping is the identity over [0, n).
	ext []int
	// n is the live slot count while the mapping is implicit.
	n int
	// next is the next external id Alloc hands out. Monotone: compaction
	// never lowers it, so dropped ids are never reissued.
	next int
}

// New returns an identity map over n existing slots: slot i ⇔ id i,
// with the next allocated id being n.
func New(n int) *Map {
	if n < 0 {
		panic("idmap: negative length")
	}
	return &Map{n: n, next: n}
}

// Restore rebuilds a map from its persisted form: the slot-ordered
// external ids and the next-id watermark. A nil ext restores the
// identity over next slots. The invariants (strictly increasing ids
// below the watermark) are validated so a corrupt container fails
// loudly.
func Restore(ext []int, next int) (*Map, error) {
	if next < 0 {
		return nil, fmt.Errorf("idmap: negative next id %d", next)
	}
	if ext == nil {
		return &Map{n: next, next: next}, nil
	}
	prev := -1
	for slot, id := range ext {
		if id <= prev {
			return nil, fmt.Errorf("idmap: ids not strictly increasing at slot %d (%d after %d)", slot, id, prev)
		}
		prev = id
	}
	if prev >= next {
		return nil, fmt.Errorf("idmap: id %d at or above next watermark %d", prev, next)
	}
	return &Map{ext: ext, next: next}, nil
}

// Len returns the number of live slots.
func (m *Map) Len() int {
	if m.ext != nil {
		return len(m.ext)
	}
	return m.n
}

// Next returns the id the next Alloc will assign (the watermark).
func (m *Map) Next() int { return m.next }

// Identity reports whether the mapping is still the implicit identity.
func (m *Map) Identity() bool { return m == nil || m.ext == nil }

// Alloc appends a new slot at the dense end and returns its external
// id.
func (m *Map) Alloc() int {
	id := m.next
	m.next++
	if m.ext != nil {
		m.ext = append(m.ext, id)
	} else {
		// Identity is preserved: the new slot index equals the new id.
		m.n++
	}
	return id
}

// Ext translates a slot to its external id. A nil map is the identity,
// so read paths that may run without any lifecycle state skip the nil
// check.
func (m *Map) Ext(slot int) int {
	if m == nil || m.ext == nil {
		return slot
	}
	return m.ext[slot]
}

// Slot translates an external id to its current slot; ok is false for
// ids never assigned or already compacted away.
func (m *Map) Slot(id int) (slot int, ok bool) {
	if m == nil || m.ext == nil {
		n := 0
		if m != nil {
			n = m.n
		}
		if id >= 0 && id < n {
			return id, true
		}
		return 0, false
	}
	i := sort.SearchInts(m.ext, id)
	if i < len(m.ext) && m.ext[i] == id {
		return i, true
	}
	return 0, false
}

// Compact drops every slot ≥ keepPrefix for which dead reports true,
// shifting later slots down — the id-space mirror of a store
// compaction. Slots below keepPrefix are untouched (they back immutable
// index shards). It returns the number of slots dropped; dropping
// nothing leaves an identity map implicit.
func (m *Map) Compact(keepPrefix int, dead func(slot int) bool) int {
	n := m.Len()
	first := -1
	for slot := keepPrefix; slot < n; slot++ {
		if dead(slot) {
			first = slot
			break
		}
	}
	if first < 0 {
		return 0
	}
	if m.ext == nil {
		ext := make([]int, n)
		for i := range ext {
			ext[i] = i
		}
		m.ext = ext
	}
	w := first
	for r := first; r < n; r++ {
		if dead(r) {
			continue
		}
		m.ext[w] = m.ext[r]
		w++
	}
	m.ext = m.ext[:w]
	return n - w
}

// Clone returns an independent deep copy.
func (m *Map) Clone() *Map {
	cp := &Map{n: m.n, next: m.next}
	if m.ext != nil {
		cp.ext = append([]int(nil), m.ext...)
	}
	return cp
}

// AppendIDs appends the slot-ordered external ids to dst — the
// persisted form consumed by Restore. For an identity map it appends
// nothing (the watermark alone reconstructs it).
func (m *Map) AppendIDs(dst []int) []int {
	return append(dst, m.ext...)
}
