package hstring

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestShift(t *testing.T) {
	s := []int32{1, 2, 3, 4, 5}
	cases := []struct {
		i    int
		want []int32
	}{
		{0, []int32{1, 2, 3, 4, 5}},
		{1, []int32{2, 3, 4, 5, 1}},
		{2, []int32{3, 4, 5, 1, 2}},
		{4, []int32{5, 1, 2, 3, 4}},
		{5, []int32{1, 2, 3, 4, 5}},
		{7, []int32{3, 4, 5, 1, 2}},
	}
	for _, c := range cases {
		got := Shift(s, c.i)
		if !equal(got, c.want) {
			t.Errorf("Shift(%v, %d) = %v, want %v", s, c.i, got, c.want)
		}
	}
	if Shift(nil, 3) != nil {
		t.Errorf("Shift(nil) should be nil")
	}
}

func TestLCP(t *testing.T) {
	cases := []struct {
		a, b []int32
		want int
	}{
		{[]int32{1, 2, 3}, []int32{1, 2, 3}, 3},
		{[]int32{1, 2, 3}, []int32{1, 2, 4}, 2},
		{[]int32{1, 2, 3}, []int32{2, 2, 3}, 0},
		{[]int32{1, 2}, []int32{1, 2, 3}, 2},
		{nil, nil, 0},
	}
	for _, c := range cases {
		if got := LCP(c.a, c.b); got != c.want {
			t.Errorf("LCP(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCircularLCPAgainstMaterialized(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		m := 1 + r.IntN(12)
		a := randString(r, m, 3)
		b := randString(r, m, 3)
		for s := 0; s < m; s++ {
			want := LCP(Shift(a, s), Shift(b, s))
			if got := CircularLCP(a, b, s); got != want {
				t.Fatalf("CircularLCP(%v, %v, %d) = %d, want %d", a, b, s, got, want)
			}
		}
	}
}

func TestCompareCircularAgainstMaterialized(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 200; trial++ {
		m := 1 + r.IntN(10)
		a := randString(r, m, 3)
		b := randString(r, m, 3)
		for sa := 0; sa < m; sa++ {
			for sb := 0; sb < m; sb++ {
				want := lexCompare(Shift(a, sa), Shift(b, sb))
				if got := CompareCircular(a, sa, b, sb); got != want {
					t.Fatalf("CompareCircular(%v,%d,%v,%d) = %d, want %d", a, sa, b, sb, got, want)
				}
			}
		}
	}
}

// TestLCCSPaperExample checks the running example of Figure 1(c): the hash
// strings of o1, o2, o3 against q have LCCS lengths 5, 3, and 2.
func TestLCCSPaperExample(t *testing.T) {
	q := []int32{1, 2, 3, 4, 5, 6, 7, 8}
	o1 := []int32{1, 2, 4, 5, 6, 6, 7, 8}
	o2 := []int32{5, 2, 2, 4, 3, 6, 7, 8}
	o3 := []int32{3, 1, 3, 5, 5, 6, 4, 9}
	if got := LCCS(o1, q); got != 5 {
		t.Errorf("LCCS(o1, q) = %d, want 5", got)
	}
	if got := LCCS(o2, q); got != 3 {
		t.Errorf("LCCS(o2, q) = %d, want 3", got)
	}
	if got := LCCS(o3, q); got != 2 {
		t.Errorf("LCCS(o3, q) = %d, want 2", got)
	}
}

// TestLCCSDefinitionExample checks Example 3.1: T=[1,2,3,4,1,5] and
// Q=[1,1,2,3,4,5]. The only matching positions are 1 and 6 (1-based),
// which are circularly adjacent: [5,1] wraps, so |LCCS| = 2.
func TestLCCSDefinitionExample(t *testing.T) {
	T := []int32{1, 2, 3, 4, 1, 5}
	Q := []int32{1, 1, 2, 3, 4, 5}
	if got := LCCS(T, Q); got != 2 {
		t.Errorf("LCCS = %d, want 2", got)
	}
}

// TestLCCSFact31 validates Fact 3.1: LCCS(T,Q) equals the maximum over all
// shifts i of LCP(shift(T,i), shift(Q,i)).
func TestLCCSFact31(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed uint64, mRaw uint8) bool {
		m := 1 + int(mRaw%16)
		r := rand.New(rand.NewPCG(seed, seed+1))
		a := randString(r, m, 3)
		b := randString(r, m, 3)
		best := 0
		for i := 0; i < m; i++ {
			if l := LCP(Shift(a, i), Shift(b, i)); l > best {
				best = l
			}
		}
		return LCCS(a, b) == best
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLCCSIdenticalAndDisjoint(t *testing.T) {
	a := []int32{7, 7, 7, 7}
	if got := LCCS(a, a); got != 4 {
		t.Errorf("LCCS(a,a) = %d, want 4 (capped at m)", got)
	}
	b := []int32{1, 2, 3, 4}
	c := []int32{5, 6, 7, 8}
	if got := LCCS(b, c); got != 0 {
		t.Errorf("LCCS disjoint = %d, want 0", got)
	}
}

func TestLCCSWrapAround(t *testing.T) {
	// Matches at positions 3,0,1 (0-based) form a circular run of 3.
	a := []int32{1, 2, 9, 4}
	b := []int32{1, 2, 8, 4}
	if got := LCCS(a, b); got != 3 {
		t.Errorf("LCCS = %d, want 3", got)
	}
}

func TestLCCSAtMatchesRuns(t *testing.T) {
	a := []int32{1, 2, 9, 4}
	b := []int32{1, 2, 8, 4}
	wants := []int{2, 1, 0, 3}
	for s, want := range wants {
		if got := LCCSAt(a, b, s); got != want {
			t.Errorf("LCCSAt(s=%d) = %d, want %d", s, got, want)
		}
	}
}

func TestLCCSSymmetry(t *testing.T) {
	f := func(seed uint64, mRaw uint8) bool {
		m := 1 + int(mRaw%16)
		r := rand.New(rand.NewPCG(seed, seed*3+7))
		a := randString(r, m, 4)
		b := randString(r, m, 4)
		return LCCS(a, b) == LCCS(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LCCS([]int32{1}, []int32{1, 2})
}

func randString(r *rand.Rand, m int, alphabet int32) []int32 {
	s := make([]int32, m)
	for i := range s {
		s[i] = r.Int32N(alphabet)
	}
	return s
}

func lexCompare(a, b []int32) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

func equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
