// Package hstring defines the hash-string primitives of the LCCS search
// framework (§3 of the paper): equal-length strings of int32 hash symbols,
// circular shifts, longest common prefixes, and a brute-force reference
// implementation of the Longest Circular Co-Substring (Definition 3.2).
//
// The Circular Shift Array (package csa) is tested against these reference
// implementations; the production index never materializes shifted copies.
package hstring

// Shift returns the circular string of t after shifting i positions:
// shift(T, i) = [t_{i+1}, ..., t_m, t_1, ..., t_i] in the paper's 1-based
// notation. i may be any non-negative value; it is reduced mod len(t).
func Shift(t []int32, i int) []int32 {
	m := len(t)
	if m == 0 {
		return nil
	}
	i %= m
	out := make([]int32, m)
	copy(out, t[i:])
	copy(out[m-i:], t[:i])
	return out
}

// LCP returns the length of the longest common prefix of a and b.
func LCP(a, b []int32) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// CircularLCP returns the length of the longest common prefix of
// shift(a, s) and shift(b, s) without materializing the shifted strings.
// a and b must have the same length m; the result is capped at m.
func CircularLCP(a, b []int32, s int) int {
	m := len(a)
	if len(b) != m {
		panic("hstring: length mismatch")
	}
	if m == 0 {
		return 0
	}
	s %= m
	for i := 0; i < m; i++ {
		p := s + i
		if p >= m {
			p -= m
		}
		if a[p] != b[p] {
			return i
		}
	}
	return m
}

// CompareCircular lexicographically compares shift(a, sa) with shift(b, sb)
// over their full length m, returning -1, 0, or +1. a and b must have the
// same length.
func CompareCircular(a []int32, sa int, b []int32, sb int) int {
	m := len(a)
	if len(b) != m {
		panic("hstring: length mismatch")
	}
	if m == 0 {
		return 0
	}
	sa %= m
	sb %= m
	pa, pb := sa, sb
	for i := 0; i < m; i++ {
		av, bv := a[pa], b[pb]
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
		pa++
		if pa >= m {
			pa = 0
		}
		pb++
		if pb >= m {
			pb = 0
		}
	}
	return 0
}

// LCCS returns |LCCS(a, b)|: the length of the Longest Circular
// Co-Substring of a and b (Definition 3.2). Because a circular co-substring
// occupies the same circularly contiguous positions in both strings, its
// length equals the longest circular run of positions where a and b agree,
// capped at m. This is the O(m) brute-force reference used to validate the
// CSA.
func LCCS(a, b []int32) int {
	m := len(a)
	if len(b) != m {
		panic("hstring: length mismatch")
	}
	if m == 0 {
		return 0
	}
	// Longest circular run of a[i] == b[i].
	best, run := 0, 0
	// Two passes over the doubled index space handle wrap-around runs;
	// cap at m keeps a full match from counting twice.
	for i := 0; i < 2*m; i++ {
		p := i
		if p >= m {
			p -= m
		}
		if a[p] == b[p] {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	if best > m {
		best = m
	}
	return best
}

// LCCSAt returns the length of the circular co-substring of a and b that
// starts exactly at position s, i.e. the circular run of matches beginning
// at s, capped at m. By Fact 3.1, LCCS(a,b) = max over s of LCCSAt(a,b,s).
func LCCSAt(a, b []int32, s int) int {
	return CircularLCP(a, b, s)
}
