package faultfs

import (
	"errors"
	"os"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the default error an armed fault returns.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrKilled is returned by every mutating operation after the
// filesystem was killed — the stand-in for a crashed process: whatever
// reached the disk before the kill stays, nothing after it does.
var ErrKilled = errors.New("faultfs: filesystem killed (simulated crash)")

// ErrNoSpace is a convenience error for ENOSPC-style faults.
var ErrNoSpace = errors.New("faultfs: no space left on device (injected)")

// Op classifies one filesystem operation for fault matching.
type Op uint8

// The mutating operation kinds. Each occurrence increments the
// injector's step counter; read-side operations (Open, ReadDir,
// ReadFile) are never counted and never fail.
const (
	// OpAny matches every mutating operation.
	OpAny Op = iota
	// OpCreate is OpenFile.
	OpCreate
	// OpWrite is File.Write.
	OpWrite
	// OpSync is File.Sync.
	OpSync
	// OpRename is FS.Rename.
	OpRename
	// OpRemove is FS.Remove.
	OpRemove
	// OpTruncate is FS.Truncate or File.Truncate.
	OpTruncate
	// OpSyncDir is FS.SyncDir.
	OpSyncDir
)

// String names the op for failure reports.
func (o Op) String() string {
	switch o {
	case OpAny:
		return "any"
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpSyncDir:
		return "syncdir"
	}
	return "op?"
}

// Fault is one armed injection. The zero value of every selector
// field widens the match: Op OpAny, empty Path, AtStep 0 and Nth 0
// match every mutating operation. A Fault must not be shared between
// injectors (it carries match state).
type Fault struct {
	// Op restricts the fault to one operation kind.
	Op Op
	// Path, when non-empty, restricts the fault to operations whose
	// target path contains it as a substring.
	Path string
	// AtStep fires the fault exactly when the injector's global
	// mutating-step counter reaches this value (1-based).
	AtStep uint64
	// Nth fires the fault on the Nth operation matching Op/Path
	// (1-based); 0 fires on every match.
	Nth int
	// Err is the error returned when the fault fires; nil selects
	// ErrInjected (ErrKilled for Crash faults). A fault whose only
	// effect is Delay leaves the operation successful.
	Err error
	// TornBytes, for OpWrite faults, writes this many bytes of the
	// buffer through to the file before failing — a torn write.
	TornBytes int
	// DropDirty, for OpSync faults, truncates the file back to its
	// last successfully synced size before failing — fsyncgate
	// semantics: the dirty pages are gone, and a later fsync that
	// "succeeds" never resurrects them.
	DropDirty bool
	// Crash kills the filesystem when the fault fires: this operation
	// and every later mutating operation fail with ErrKilled.
	Crash bool
	// Delay sleeps before the operation runs (slow I/O). With a nil
	// Err and no other effect the operation then proceeds normally.
	Delay time.Duration
	// Once disarms the fault after its first firing.
	Once bool

	matched int
	fired   bool
}

// delayOnly reports whether the fault slows the op but lets it succeed.
func (f *Fault) delayOnly() bool {
	return f.Err == nil && !f.Crash && !f.DropDirty && f.TornBytes == 0 && f.Delay > 0
}

// Injected wraps an inner FS (usually OS) and applies armed faults to
// mutating operations. Safe for concurrent use.
type Injected struct {
	inner FS

	mu     sync.Mutex
	step   uint64
	faults []*Fault
	killed bool
	// synced tracks, per path, the byte size known durable (advanced by
	// successful Sync) — the truncation target for DropDirty faults.
	// Files first seen via Open/OpenFile of an existing path start with
	// their current size assumed durable: the injector only drops dirty
	// data it watched being written.
	synced map[string]int64
}

// Compile-time conformance.
var _ FS = (*Injected)(nil)

// NewInjected wraps inner with a fault injector holding no faults.
func NewInjected(inner FS) *Injected {
	return &Injected{inner: inner, synced: make(map[string]int64)}
}

// Inject arms faults.
func (x *Injected) Inject(faults ...*Fault) {
	x.mu.Lock()
	x.faults = append(x.faults, faults...)
	x.mu.Unlock()
}

// Kill fails every subsequent mutating operation with ErrKilled — the
// simulated crash point. Reads keep working (a recovering process
// reads the same disk) but nothing mutates.
func (x *Injected) Kill() {
	x.mu.Lock()
	x.killed = true
	x.mu.Unlock()
}

// Killed reports whether the filesystem was killed.
func (x *Injected) Killed() bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.killed
}

// Steps returns how many mutating operations have been attempted.
func (x *Injected) Steps() uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.step
}

// Fired returns how many armed faults have fired at least once —
// harnesses use it to verify a fault plan actually exercised anything.
func (x *Injected) Fired() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	n := 0
	for _, f := range x.faults {
		if f.fired {
			n++
		}
	}
	return n
}

// outcome is the decision for one mutating operation.
type outcome struct {
	err       error
	tornBytes int
	dropDirty bool
	delay     time.Duration
}

// decide counts the step and resolves what happens to one mutating
// operation. It never performs I/O.
func (x *Injected) decide(op Op, path string) outcome {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.step++
	if x.killed {
		return outcome{err: ErrKilled}
	}
	for _, f := range x.faults {
		if f.Once && f.fired {
			continue
		}
		if f.Op != OpAny && f.Op != op {
			continue
		}
		if f.Path != "" && !strings.Contains(path, f.Path) {
			continue
		}
		if f.AtStep != 0 {
			if x.step != f.AtStep {
				continue
			}
		} else if f.Nth != 0 {
			f.matched++
			if f.matched != f.Nth {
				continue
			}
		}
		f.fired = true
		if f.Crash {
			x.killed = true
			err := f.Err
			if err == nil {
				err = ErrKilled
			}
			return outcome{err: err, delay: f.Delay}
		}
		if f.delayOnly() {
			return outcome{delay: f.Delay}
		}
		err := f.Err
		if err == nil {
			err = ErrInjected
		}
		return outcome{err: err, tornBytes: f.TornBytes, dropDirty: f.DropDirty, delay: f.Delay}
	}
	return outcome{}
}

// mutate resolves a simple (non-write, non-sync) mutating op: any
// fault error suppresses the real operation.
func (x *Injected) mutate(op Op, path string, real func() error) error {
	o := x.decide(op, path)
	if o.delay > 0 {
		time.Sleep(o.delay)
	}
	if o.err != nil {
		return o.err
	}
	return real()
}

// OpenFile counts as a create step.
func (x *Injected) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	o := x.decide(OpCreate, name)
	if o.delay > 0 {
		time.Sleep(o.delay)
	}
	if o.err != nil {
		return nil, o.err
	}
	f, err := x.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return x.wrap(name, f, flag&(os.O_CREATE|os.O_TRUNC) != 0), nil
}

// Open is a read-side operation: never counted, never failed.
func (x *Injected) Open(name string) (File, error) {
	f, err := x.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return x.wrap(name, f, false), nil
}

// wrap builds the injected file view, seeding the size bookkeeping.
func (x *Injected) wrap(name string, f File, fresh bool) *injFile {
	var size int64
	if !fresh {
		if fi, err := os.Stat(name); err == nil {
			size = fi.Size()
		}
	}
	x.mu.Lock()
	if fresh {
		// A fresh create (or O_TRUNC reopen) starts with nothing
		// durable, even when the path was seen before.
		x.synced[name] = 0
	} else if _, ok := x.synced[name]; !ok {
		// Pre-existing content first seen here is assumed durable: the
		// injector only drops dirty data it watched being written.
		x.synced[name] = size
	}
	x.mu.Unlock()
	return &injFile{fs: x, inner: f, path: name, size: size}
}

// ReadDir passes through.
func (x *Injected) ReadDir(name string) ([]os.DirEntry, error) { return x.inner.ReadDir(name) }

// ReadFile passes through.
func (x *Injected) ReadFile(name string) ([]byte, error) { return x.inner.ReadFile(name) }

// Rename counts as one step; faults target the destination path.
func (x *Injected) Rename(oldpath, newpath string) error {
	return x.mutate(OpRename, newpath, func() error { return x.inner.Rename(oldpath, newpath) })
}

// Remove counts as one step.
func (x *Injected) Remove(name string) error {
	return x.mutate(OpRemove, name, func() error { return x.inner.Remove(name) })
}

// Truncate counts as one step.
func (x *Injected) Truncate(name string, size int64) error {
	return x.mutate(OpTruncate, name, func() error { return x.inner.Truncate(name, size) })
}

// MkdirAll is idempotent setup, not counted as a step, but a killed
// filesystem still refuses it.
func (x *Injected) MkdirAll(path string, perm os.FileMode) error {
	x.mu.Lock()
	killed := x.killed
	x.mu.Unlock()
	if killed {
		return ErrKilled
	}
	return x.inner.MkdirAll(path, perm)
}

// SyncDir counts as one step.
func (x *Injected) SyncDir(dir string) error {
	return x.mutate(OpSyncDir, dir, func() error { return x.inner.SyncDir(dir) })
}

// injFile is the per-file view applying write/sync faults and tracking
// sizes for DropDirty.
type injFile struct {
	fs    *Injected
	inner File
	path  string
	size  int64
}

func (f *injFile) Read(p []byte) (int, error) { return f.inner.Read(p) }

func (f *injFile) Write(p []byte) (int, error) {
	o := f.fs.decide(OpWrite, f.path)
	if o.delay > 0 {
		time.Sleep(o.delay)
	}
	if o.err != nil {
		n := 0
		if o.tornBytes > 0 {
			// A torn write: a prefix of the buffer reaches the file,
			// then the fault hits.
			if o.tornBytes > len(p) {
				o.tornBytes = len(p)
			}
			n, _ = f.inner.Write(p[:o.tornBytes])
			f.size += int64(n)
		}
		return n, o.err
	}
	n, err := f.inner.Write(p)
	f.size += int64(n)
	return n, err
}

func (f *injFile) Sync() error {
	o := f.fs.decide(OpSync, f.path)
	if o.delay > 0 {
		time.Sleep(o.delay)
	}
	if o.err != nil {
		if o.dropDirty {
			// fsyncgate: the kernel drops the dirty pages and marks
			// them clean — everything written since the last successful
			// sync is gone, and no later fsync brings it back.
			f.fs.mu.Lock()
			target := f.fs.synced[f.path]
			f.fs.mu.Unlock()
			if target < f.size {
				if terr := f.inner.Truncate(target); terr == nil {
					f.size = target
				}
			}
		}
		return o.err
	}
	if err := f.inner.Sync(); err != nil {
		return err
	}
	f.fs.mu.Lock()
	f.fs.synced[f.path] = f.size
	f.fs.mu.Unlock()
	return nil
}

func (f *injFile) Truncate(size int64) error {
	o := f.fs.decide(OpTruncate, f.path)
	if o.delay > 0 {
		time.Sleep(o.delay)
	}
	if o.err != nil {
		return o.err
	}
	if err := f.inner.Truncate(size); err != nil {
		return err
	}
	f.size = size
	f.fs.mu.Lock()
	if f.fs.synced[f.path] > size {
		f.fs.synced[f.path] = size
	}
	f.fs.mu.Unlock()
	return nil
}

func (f *injFile) Seek(offset int64, whence int) (int64, error) {
	return f.inner.Seek(offset, whence)
}

// Close is never failed: a dying process's descriptors close anyway,
// and leaking real fds from tests helps nobody.
func (f *injFile) Close() error { return f.inner.Close() }

func (f *injFile) Name() string { return f.path }
