package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeAll(t *testing.T, f File, b []byte) {
	t.Helper()
	if _, err := f.Write(b); err != nil {
		t.Fatalf("Write: %v", err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	return fi.Size()
}

func TestOSPassThrough(t *testing.T) {
	dir := t.TempDir()
	fs := OS{}
	path := filepath.Join(dir, "a")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("hello"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := fs.ReadFile(path)
	if err != nil || string(blob) != "hello" {
		t.Fatalf("ReadFile = %q, %v", blob, err)
	}
	if err := fs.Rename(path, path+"2"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.ReadDir(dir)
	if err != nil || len(entries) != 1 || entries[0].Name() != "a2" {
		t.Fatalf("ReadDir = %v, %v", entries, err)
	}
	if err := fs.Truncate(path+"2", 2); err != nil {
		t.Fatal(err)
	}
	if got := fileSize(t, path+"2"); got != 2 {
		t.Fatalf("size after truncate = %d, want 2", got)
	}
	if err := fs.Remove(path + "2"); err != nil {
		t.Fatal(err)
	}
}

func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	fs := NewInjected(OS{})
	fs.Inject(&Fault{Op: OpWrite, TornBytes: 3, Once: true})
	f, err := fs.OpenFile(filepath.Join(dir, "seg"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write = %d, %v; want 3, ErrInjected", n, err)
	}
	if got := fileSize(t, filepath.Join(dir, "seg")); got != 3 {
		t.Fatalf("on-disk size = %d, want 3 (torn prefix)", got)
	}
	// The fault was Once: the next write goes through whole.
	writeAll(t, f, []byte("abc"))
	if got := fileSize(t, filepath.Join(dir, "seg")); got != 6 {
		t.Fatalf("on-disk size = %d, want 6", got)
	}
}

func TestFsyncDropDirty(t *testing.T) {
	dir := t.TempDir()
	fs := NewInjected(OS{})
	path := filepath.Join(dir, "seg")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("durable!"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("dirty"))
	fs.Inject(&Fault{Op: OpSync, DropDirty: true, Once: true})
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("faulted Sync = %v, want ErrInjected", err)
	}
	// fsyncgate: the dirty suffix is gone, the synced prefix stays.
	if got := fileSize(t, path); got != int64(len("durable!")) {
		t.Fatalf("size after dropped dirty pages = %d, want %d", got, len("durable!"))
	}
	// A later "successful" fsync must not resurrect anything.
	if err := f.Sync(); err != nil {
		t.Fatalf("later Sync: %v", err)
	}
	if got := fileSize(t, path); got != int64(len("durable!")) {
		t.Fatalf("size after later sync = %d, want %d", got, len("durable!"))
	}
}

func TestCrashAtStepKillsEverything(t *testing.T) {
	dir := t.TempDir()
	fs := NewInjected(OS{})
	path := filepath.Join(dir, "f")
	// Step 1: create. Step 2: write. Step 3 (sync) crashes.
	fs.Inject(&Fault{AtStep: 3, Crash: true})
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("x"))
	if err := f.Sync(); !errors.Is(err, ErrKilled) {
		t.Fatalf("crash-step Sync = %v, want ErrKilled", err)
	}
	if !fs.Killed() {
		t.Fatal("filesystem not killed after crash fault")
	}
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrKilled) {
		t.Fatalf("write after kill = %v, want ErrKilled", err)
	}
	if err := fs.Remove(path); !errors.Is(err, ErrKilled) {
		t.Fatalf("remove after kill = %v, want ErrKilled", err)
	}
	// Nothing after the kill reached the disk.
	if got := fileSize(t, path); got != 1 {
		t.Fatalf("size = %d, want 1", got)
	}
	// Reads still work: recovery scans the same disk.
	if _, err := fs.ReadFile(path); err != nil {
		t.Fatalf("read after kill: %v", err)
	}
	if fs.Steps() < 3 {
		t.Fatalf("steps = %d, want >= 3", fs.Steps())
	}
}

func TestNthMatchAndPathFilter(t *testing.T) {
	dir := t.TempDir()
	fs := NewInjected(OS{})
	fs.Inject(&Fault{Op: OpWrite, Path: "target", Nth: 2, Err: ErrNoSpace, Once: true})
	other, err := fs.OpenFile(filepath.Join(dir, "other"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	target, err := fs.OpenFile(filepath.Join(dir, "target"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, other, []byte("a"))  // not matched: wrong path
	writeAll(t, target, []byte("a")) // match 1: passes
	if _, err := target.Write([]byte("b")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("2nd matching write = %v, want ErrNoSpace", err)
	}
	writeAll(t, target, []byte("c")) // disarmed
}

func TestRenameAndRemoveFaults(t *testing.T) {
	dir := t.TempDir()
	fs := NewInjected(OS{})
	path := filepath.Join(dir, "m.tmp")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("{}"))
	f.Close()
	fs.Inject(&Fault{Op: OpRename, Once: true})
	if err := fs.Rename(path, filepath.Join(dir, "m")); !errors.Is(err, ErrInjected) {
		t.Fatalf("faulted rename = %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("source gone after failed rename: %v", err)
	}
	if err := fs.Rename(path, filepath.Join(dir, "m")); err != nil {
		t.Fatalf("retry rename: %v", err)
	}
}
