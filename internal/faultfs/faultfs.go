// Package faultfs is the filesystem abstraction the durability stack
// (internal/wal and the DurableIndex snapshot/manifest paths) performs
// its I/O through, together with a deterministic fault injector over
// it. Production code runs on the zero-cost OS implementation; the
// conformance and regression tests wrap it in an Injected filesystem
// that can tear writes mid-frame, fail fsyncs with fsyncgate semantics
// (dirty pages dropped, later fsyncs lying), return ENOSPC, slow
// individual operations down, or kill the whole filesystem at a chosen
// mutating-operation count — the in-process stand-in for crashing the
// process at an arbitrary point of a checkpoint or append.
//
// The interface is intentionally narrow: exactly the operations the
// write-ahead log and checkpoint protocol rely on for durability
// (create/write/fsync/rename/remove/truncate/dirsync and the read-side
// mirrors). Every mutating operation counts as one "step", giving
// crash-at-step-N sweeps a deterministic coordinate system as long as
// the workload drives the log sequentially.
package faultfs

import (
	"io"
	"os"
)

// File is the subset of *os.File the durability stack uses.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync fsyncs the file. Injectors may fail it and drop the dirty
	// region (fsyncgate semantics).
	Sync() error
	// Truncate cuts the file to size. The write-ahead log uses it to
	// restore a record boundary after a torn write.
	Truncate(size int64) error
	// Seek repositions the write offset (needed after Truncate: the OS
	// file offset does not move with the truncation).
	Seek(offset int64, whence int) (int64, error)
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem the write-ahead log and the DurableIndex
// checkpoint/manifest paths perform their I/O through.
type FS interface {
	// OpenFile opens (possibly creating) a file for writing.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens a file read-only.
	Open(name string) (File, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate cuts the named file to size.
	Truncate(name string, size int64) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory so entry creation/removal/rename is
	// durable.
	SyncDir(dir string) error
}

// OS is the production FS: a zero-state pass-through to package os.
type OS struct{}

// Compile-time conformance.
var _ FS = OS{}

// OpenFile opens via os.OpenFile.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Open opens via os.Open.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// ReadDir lists via os.ReadDir.
func (OS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// ReadFile reads via os.ReadFile.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename renames via os.Rename.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove deletes via os.Remove.
func (OS) Remove(name string) error { return os.Remove(name) }

// Truncate cuts via os.Truncate.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// MkdirAll creates via os.MkdirAll.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// SyncDir opens the directory and fsyncs it.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
