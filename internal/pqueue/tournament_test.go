package pqueue

import (
	"math/rand"
	"sort"
	"testing"
)

func TestTournamentMergeBasic(t *testing.T) {
	lists := [][]Neighbor{
		{{ID: 0, Dist: 1}, {ID: 1, Dist: 4}},
		{{ID: 2, Dist: 2}, {ID: 3, Dist: 3}},
		{{ID: 4, Dist: 0.5}},
	}
	got := MergeTopK(lists, 10)
	want := []Neighbor{{4, 0.5}, {0, 1}, {2, 2}, {3, 3}, {1, 4}}
	if len(got) != len(want) {
		t.Fatalf("len=%d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge[%d]=%+v want %+v", i, got[i], want[i])
		}
	}
}

func TestTournamentTruncatesToK(t *testing.T) {
	lists := [][]Neighbor{
		{{ID: 0, Dist: 1}, {ID: 1, Dist: 2}},
		{{ID: 2, Dist: 1.5}},
	}
	got := MergeTopK(lists, 2)
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 2 {
		t.Fatalf("got %+v", got)
	}
}

func TestTournamentEdgeCases(t *testing.T) {
	if got := MergeTopK(nil, 5); got != nil {
		t.Fatalf("nil lists: %+v", got)
	}
	if got := MergeTopK([][]Neighbor{nil, {}}, 5); got != nil {
		t.Fatalf("empty lists: %+v", got)
	}
	if got := MergeTopK([][]Neighbor{{{ID: 7, Dist: 3}}}, 0); got != nil {
		t.Fatalf("k=0: %+v", got)
	}
	one := MergeTopK([][]Neighbor{{{ID: 7, Dist: 3}}}, 5)
	if len(one) != 1 || one[0].ID != 7 {
		t.Fatalf("single run: %+v", one)
	}
}

func TestTournamentTieBreakByID(t *testing.T) {
	lists := [][]Neighbor{
		{{ID: 9, Dist: 1}},
		{{ID: 3, Dist: 1}},
		{{ID: 6, Dist: 1}},
	}
	got := MergeTopK(lists, 3)
	if got[0].ID != 3 || got[1].ID != 6 || got[2].ID != 9 {
		t.Fatalf("tie order wrong: %+v", got)
	}
}

func TestTournamentRandomAgainstSort(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nLists := 1 + r.Intn(9)
		var all []Neighbor
		lists := make([][]Neighbor, nLists)
		id := 0
		for i := range lists {
			ln := r.Intn(8)
			run := make([]Neighbor, ln)
			for j := range run {
				run[j] = Neighbor{ID: id, Dist: float64(r.Intn(6))}
				id++
			}
			sort.Slice(run, func(a, b int) bool {
				if run[a].Dist != run[b].Dist {
					return run[a].Dist < run[b].Dist
				}
				return run[a].ID < run[b].ID
			})
			lists[i] = run
			all = append(all, run...)
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].Dist != all[b].Dist {
				return all[a].Dist < all[b].Dist
			}
			return all[a].ID < all[b].ID
		})
		k := 1 + r.Intn(12)
		got := MergeTopK(lists, k)
		want := all
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: len=%d want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d pos %d: %+v want %+v", trial, i, got[i], want[i])
			}
		}
	}
}
