package pqueue

// Tournament is a loser tree over S ascending-ordered Neighbor streams,
// used to merge per-shard top-k lists into a global top-k. Compared to a
// binary heap, a winner replay after Pop touches exactly ⌈log2 S⌉ internal
// nodes with no sift branching, which is the classic choice for k-way
// merges of short sorted runs.
//
// Streams are ordered by (Dist, ID): the id tie-break makes merges
// deterministic when equal distances occur in different shards.
type Tournament struct {
	lists  [][]Neighbor // the input runs, ascending (Dist, ID)
	pos    []int        // cursor into each run
	loser  []int32      // internal nodes: loser stream index; loser[0] is the winner
	winner []int32      // scratch for (re)initialisation, kept for reuse
	size   int          // number of leaves (power of two ≥ len(lists))
}

// zeroed resizes s to n zeroed entries, reusing its capacity.
func zeroed[T int | int32](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// exhausted reports whether stream s has no remaining element.
func (t *Tournament) exhausted(s int) bool {
	return s >= len(t.lists) || t.pos[s] >= len(t.lists[s])
}

// worse reports whether stream a's head loses against stream b's head
// (exhausted streams lose against everything; ties broken by ID, then by
// stream index for two exhausted streams).
func (t *Tournament) worse(a, b int) bool {
	ea, eb := t.exhausted(a), t.exhausted(b)
	if ea || eb {
		return ea && !eb || (ea && eb && a > b)
	}
	na, nb := t.lists[a][t.pos[a]], t.lists[b][t.pos[b]]
	if na.Dist != nb.Dist {
		return na.Dist > nb.Dist
	}
	return na.ID > nb.ID
}

// NewTournament builds a loser tree over the given runs. Each run must be
// sorted ascending by (Dist, ID); runs may be empty or nil.
func NewTournament(lists [][]Neighbor) *Tournament {
	t := &Tournament{}
	t.Reset(lists)
	return t
}

// Reset re-arms the tree over a fresh set of runs, reusing the internal
// buffers — the pooled-context path for repeated shard-merge queries.
// The previous runs are released.
func (t *Tournament) Reset(lists [][]Neighbor) {
	size := 1
	for size < len(lists) {
		size *= 2
	}
	t.lists = lists
	t.size = size
	t.pos = zeroed(t.pos, len(lists))
	t.loser = zeroed(t.loser, size)
	// Initialise bottom-up: play every leaf pair, propagate winners.
	t.winner = zeroed(t.winner, 2*size)
	winner := t.winner
	for i := 0; i < size; i++ {
		winner[size+i] = int32(i)
	}
	for i := size - 1; i >= 1; i-- {
		a, b := winner[2*i], winner[2*i+1]
		if t.worse(int(a), int(b)) {
			t.loser[i], winner[i] = a, b
		} else {
			t.loser[i], winner[i] = b, a
		}
	}
	t.loser[0] = winner[1]
}

// Pop removes and returns the smallest remaining element across all runs.
// ok is false when every run is exhausted.
func (t *Tournament) Pop() (Neighbor, bool) {
	w := int(t.loser[0])
	if t.exhausted(w) {
		return Neighbor{}, false
	}
	nb := t.lists[w][t.pos[w]]
	t.pos[w]++
	// Replay the winner's path to the root against stored losers.
	for node := (t.size + w) / 2; node >= 1; node /= 2 {
		if t.worse(w, int(t.loser[node])) {
			w, t.loser[node] = int(t.loser[node]), int32(w)
		}
	}
	t.loser[0] = int32(w)
	return nb, true
}

// AppendTopK pops up to k elements off the tree into dst, ascending,
// and returns the extended slice. Nothing is allocated when dst has
// capacity.
func (t *Tournament) AppendTopK(k int, dst []Neighbor) []Neighbor {
	for i := 0; i < k; i++ {
		nb, ok := t.Pop()
		if !ok {
			break
		}
		dst = append(dst, nb)
	}
	return dst
}

// MergeTopK merges ascending (Dist, ID) runs and returns the k smallest
// elements overall, ascending. k ≤ 0 returns nil.
func MergeTopK(lists [][]Neighbor, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	out := NewTournament(lists).AppendTopK(k, make([]Neighbor, 0, k))
	if len(out) == 0 {
		return nil
	}
	return out
}
