package pqueue

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapOrdering(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	for _, x := range []int{5, 3, 8, 1, 9, 2, 7} {
		h.Push(x)
	}
	want := []int{1, 2, 3, 5, 7, 8, 9}
	for i, w := range want {
		if got := h.Peek(); got != w {
			t.Fatalf("Peek %d = %d, want %d", i, got, w)
		}
		if got := h.Pop(); got != w {
			t.Fatalf("Pop %d = %d, want %d", i, got, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d after draining", h.Len())
	}
}

func TestHeapPropertySorts(t *testing.T) {
	f := func(xs []int) bool {
		h := NewWithCapacity(len(xs), func(a, b int) bool { return a < b })
		for _, x := range xs {
			h.Push(x)
		}
		out := make([]int, 0, len(xs))
		for h.Len() > 0 {
			out = append(out, h.Pop())
		}
		if len(out) != len(xs) {
			return false
		}
		return sort.IntsAreSorted(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapInterleavedPushPop(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	h := New(func(a, b int) bool { return a < b })
	var mirror []int
	for op := 0; op < 2000; op++ {
		if h.Len() == 0 || r.IntN(2) == 0 {
			x := r.IntN(1000)
			h.Push(x)
			mirror = append(mirror, x)
		} else {
			got := h.Pop()
			sort.Ints(mirror)
			if got != mirror[0] {
				t.Fatalf("op %d: Pop = %d, want %d", op, got, mirror[0])
			}
			mirror = mirror[1:]
		}
	}
}

func TestHeapReset(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	h.Push(3)
	h.Push(1)
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset did not empty heap")
	}
	h.Push(2)
	if h.Pop() != 2 {
		t.Fatal("heap unusable after Reset")
	}
}

func TestHeapPanicsWhenEmpty(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	for name, f := range map[string]func(){
		"pop":  func() { h.Pop() },
		"peek": func() { h.Peek() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			f()
		}()
	}
}

func TestKBestKeepsKNearest(t *testing.T) {
	b := NewKBest(3)
	dists := []float64{9, 2, 7, 1, 8, 3, 6}
	for id, d := range dists {
		b.Add(id, d)
	}
	got := b.Sorted()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	wantDists := []float64{1, 2, 3}
	wantIDs := []int{3, 1, 5}
	for i := range got {
		if got[i].Dist != wantDists[i] || got[i].ID != wantIDs[i] {
			t.Fatalf("Sorted[%d] = %+v", i, got[i])
		}
	}
}

func TestKBestProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8, nRaw uint8) bool {
		k := 1 + int(kRaw%10)
		n := int(nRaw)
		r := rand.New(rand.NewPCG(seed, 7))
		b := NewKBest(k)
		all := make([]float64, n)
		for i := 0; i < n; i++ {
			all[i] = r.Float64()
			b.Add(i, all[i])
		}
		got := b.Sorted()
		sort.Float64s(all)
		want := k
		if n < k {
			want = n
		}
		if len(got) != want {
			return false
		}
		for i := range got {
			if got[i].Dist != all[i] {
				return false
			}
			if i > 0 && got[i].Dist < got[i-1].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKBestWorst(t *testing.T) {
	b := NewKBest(2)
	if _, ok := b.Worst(); ok {
		t.Fatal("Worst should be unavailable before full")
	}
	b.Add(1, 5)
	b.Add(2, 3)
	if w, ok := b.Worst(); !ok || w != 5 {
		t.Fatalf("Worst = %v, %v", w, ok)
	}
	if b.Add(3, 6) {
		t.Fatal("should reject worse candidate when full")
	}
	if !b.Add(4, 1) {
		t.Fatal("should accept better candidate")
	}
	if w, _ := b.Worst(); w != 3 {
		t.Fatalf("Worst after replace = %v", w)
	}
	if !b.Full() || b.Len() != 2 {
		t.Fatal("Full/Len wrong")
	}
}

func TestKBestSortedIsRepeatable(t *testing.T) {
	b := NewKBest(4)
	for i, d := range []float64{4, 1, 3, 2} {
		b.Add(i, d)
	}
	a1 := b.Sorted()
	a2 := b.Sorted()
	if len(a1) != len(a2) {
		t.Fatal("Sorted changed length")
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("Sorted not repeatable; collector mutated")
		}
	}
}

func TestNewKBestPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewKBest(0)
}
