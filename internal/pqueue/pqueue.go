// Package pqueue provides the two priority-queue shapes this repository
// needs: a generic binary heap with a caller-supplied ordering (used by the
// CSA's 2m-way merge, Algorithm 2, and by the perturbation-vector generator,
// Algorithm 3), and a bounded "k best" collector for nearest-neighbor
// verification.
package pqueue

// Heap is a binary heap over T ordered by a caller-supplied less function.
// If less(a, b) means "a has higher priority than b", Pop returns elements
// in priority order. The zero Heap is not usable; construct with New.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty heap ordered by less.
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// NewWithCapacity returns an empty heap with pre-allocated capacity.
func NewWithCapacity[T any](capacity int, less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{items: make([]T, 0, capacity), less: less}
}

// Len returns the number of elements in the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push adds x to the heap.
func (h *Heap[T]) Push(x T) {
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

// Peek returns the highest-priority element without removing it.
// It panics on an empty heap.
func (h *Heap[T]) Peek() T {
	if len(h.items) == 0 {
		panic("pqueue: Peek on empty heap")
	}
	return h.items[0]
}

// Pop removes and returns the highest-priority element.
// It panics on an empty heap.
func (h *Heap[T]) Pop() T {
	if len(h.items) == 0 {
		panic("pqueue: Pop on empty heap")
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

// Reset empties the heap, retaining capacity.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			return
		}
		best := l
		if r < n && h.less(h.items[r], h.items[l]) {
			best = r
		}
		if !h.less(h.items[best], h.items[i]) {
			return
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
}

// Neighbor is a candidate returned by a nearest-neighbor search: a data
// object id and its distance to the query.
type Neighbor struct {
	ID   int
	Dist float64
}

// KBest collects the k smallest-distance Neighbors seen so far. It is a
// max-heap of size ≤ k keyed by distance, so the current worst retained
// neighbor is inspectable in O(1) — the standard top-k pattern for
// candidate verification.
type KBest struct {
	k     int
	items []Neighbor
}

// NewKBest returns a collector that retains the k nearest neighbors.
// k must be positive.
func NewKBest(k int) *KBest {
	if k <= 0 {
		panic("pqueue: NewKBest requires k > 0")
	}
	return &KBest{k: k, items: make([]Neighbor, 0, k)}
}

// Reset re-arms the collector for a fresh query with a (possibly new)
// k, retaining the underlying buffer — the pooled-context path that
// avoids one allocation per query. The zero KBest is valid to Reset.
func (b *KBest) Reset(k int) {
	if k <= 0 {
		panic("pqueue: KBest.Reset requires k > 0")
	}
	b.k = k
	b.items = b.items[:0]
}

// Len returns the number of neighbors currently retained.
func (b *KBest) Len() int { return len(b.items) }

// Full reports whether k neighbors are retained.
func (b *KBest) Full() bool { return len(b.items) == b.k }

// Worst returns the largest retained distance, or +Inf semantics via
// ok=false when fewer than k neighbors are retained.
func (b *KBest) Worst() (d float64, ok bool) {
	if len(b.items) < b.k {
		return 0, false
	}
	return b.items[0].Dist, true
}

// worse reports whether a ranks after b in the canonical (Dist, ID)
// result order. Breaking distance ties by id makes the retained set and
// the sorted output deterministic — the property cursor pagination
// leans on to keep per-source streams prefix-stable across re-fetches.
func worse(a, b Neighbor) bool {
	return a.Dist > b.Dist || (a.Dist == b.Dist && a.ID > b.ID)
}

// Add offers a neighbor; it is retained if fewer than k neighbors are held
// or if it improves on the current worst. Returns true if retained.
func (b *KBest) Add(id int, dist float64) bool {
	if len(b.items) < b.k {
		b.items = append(b.items, Neighbor{ID: id, Dist: dist})
		b.up(len(b.items) - 1)
		return true
	}
	nb := Neighbor{ID: id, Dist: dist}
	if !worse(b.items[0], nb) {
		return false
	}
	b.items[0] = nb
	b.down(0)
	return true
}

// Sorted returns the retained neighbors in ascending (Dist, ID) order.
// The collector remains usable afterwards.
func (b *KBest) Sorted() []Neighbor {
	return b.AppendSorted(nil)
}

// AppendSorted appends the retained neighbors to dst in ascending
// (Dist, ID) order and returns the extended slice. The collector remains
// usable afterwards; when dst has capacity, nothing is allocated.
func (b *KBest) AppendSorted(dst []Neighbor) []Neighbor {
	start := len(dst)
	dst = append(dst, b.items...)
	out := dst[start:]
	// Heap-sort in place on the appended copy: the max-heap invariant
	// lives on b.items, so the copy sorts without disturbing it.
	for i := len(out) - 1; i > 0; i-- {
		out[0], out[i] = out[i], out[0]
		siftDown(out[:i], 0)
	}
	return dst
}

func (b *KBest) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(b.items[i], b.items[parent]) {
			return
		}
		b.items[i], b.items[parent] = b.items[parent], b.items[i]
		i = parent
	}
}

func (b *KBest) down(i int) { siftDown(b.items, i) }

func siftDown(items []Neighbor, i int) {
	n := len(items)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			return
		}
		big := l
		if r < n && worse(items[r], items[l]) {
			big = r
		}
		if !worse(items[big], items[i]) {
			return
		}
		items[i], items[big] = items[big], items[i]
		i = big
	}
}
