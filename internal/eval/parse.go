package eval

import (
	"strconv"
	"strings"
)

// ParseRow parses one harness output row (the inverse of the format
// produced by Result.String prefixed with a dataset label, as written by
// the figure experiments):
//
//	sift  LCCS-LSH  m=16 λ=5  k=10 recall= 5.80% ratio=1.60 qtime= 0.02ms size= 1.8MB itime= 85.0ms
//
// ok is false for headers, blank lines, and rows in other formats.
func ParseRow(line string) (dataset string, r Result, ok bool) {
	if strings.HasPrefix(strings.TrimSpace(line), "#") {
		return "", Result{}, false
	}
	// Locate the metric fields; everything before "k=" is
	// dataset + method + config.
	ik := strings.Index(line, " k=")
	if ik < 0 || !strings.Contains(line, "recall=") {
		return "", Result{}, false
	}
	head := strings.Fields(line[:ik])
	if len(head) < 2 {
		return "", Result{}, false
	}
	dataset = head[0]
	// Method may be multi-word ("Multi-Probe LSH"); config fields all
	// contain '='.
	methodEnd := 1
	for methodEnd < len(head) && !strings.ContainsRune(head[methodEnd], '=') {
		methodEnd++
	}
	r.Method = strings.Join(head[1:methodEnd], " ")
	r.Config = strings.Join(head[methodEnd:], " ")

	grab := func(key, stop string) (float64, bool) {
		i := strings.Index(line, key)
		if i < 0 {
			return 0, false
		}
		rest := line[i+len(key):]
		if j := strings.Index(rest, stop); j >= 0 {
			rest = rest[:j]
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	kv, ok1 := grab(" k=", " ")
	rec, ok2 := grab("recall=", "%")
	ratio, ok3 := grab("ratio=", " ")
	qt, ok4 := grab("qtime=", "ms")
	size, ok5 := grab("size=", "MB")
	it, ok6 := grab("itime=", "ms")
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6) {
		return "", Result{}, false
	}
	r.K = int(kv)
	r.Recall = rec / 100
	r.Ratio = ratio
	r.QueryTimeMS = qt
	r.IndexBytes = int64(size * (1 << 20))
	r.IndexTimeMS = it
	return dataset, r, true
}
