package eval

import (
	"math"
	"testing"
	"time"

	"lccs/internal/pqueue"
)

func nb(pairs ...float64) []pqueue.Neighbor {
	out := make([]pqueue.Neighbor, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, pqueue.Neighbor{ID: int(pairs[i]), Dist: pairs[i+1]})
	}
	return out
}

func TestRecall(t *testing.T) {
	want := nb(1, 0.1, 2, 0.2, 3, 0.3, 4, 0.4)
	if got := Recall(nb(1, 0.1, 3, 0.3), want); got != 0.5 {
		t.Errorf("Recall = %v, want 0.5", got)
	}
	if got := Recall(want, want); got != 1 {
		t.Errorf("perfect recall = %v", got)
	}
	if got := Recall(nil, want); got != 0 {
		t.Errorf("empty recall = %v", got)
	}
	if got := Recall(nb(9, 1), nil); got != 0 {
		t.Errorf("empty truth recall = %v", got)
	}
	// Order does not matter, only membership.
	if got := Recall(nb(4, 0.4, 1, 0.1), want); got != 0.5 {
		t.Errorf("unordered recall = %v", got)
	}
}

func TestRatio(t *testing.T) {
	want := nb(1, 1.0, 2, 2.0)
	if got := Ratio(nb(1, 1.0, 2, 2.0), want); got != 1 {
		t.Errorf("exact ratio = %v", got)
	}
	if got := Ratio(nb(5, 2.0, 6, 2.0), want); got != 1.5 {
		t.Errorf("ratio = %v, want (2/1 + 2/2)/2 = 1.5", got)
	}
	if got := Ratio(nil, want); !math.IsInf(got, 1) {
		t.Errorf("empty result ratio = %v, want +Inf", got)
	}
	// Short results pad with the worst observed ratio: (3/1 + 3) / 2.
	if got := Ratio(nb(5, 3.0), want); got != 3 {
		t.Errorf("short ratio = %v, want 3", got)
	}
	// Zero true distance handled without dividing by zero.
	wantZero := nb(1, 0.0, 2, 1.0)
	got := Ratio(nb(9, 0.5, 2, 1.0), wantZero)
	if math.IsInf(got, 1) || math.IsNaN(got) {
		t.Errorf("zero-distance ratio = %v", got)
	}
	if got := Ratio(nb(1, 0.0, 2, 1.0), wantZero); got != 1 {
		t.Errorf("exact zero-distance ratio = %v", got)
	}
}

func mkRunner(name string, recallDist float64) *Runner {
	return &Runner{
		MethodName: name,
		ConfigDesc: "cfg",
		IndexBytes: 1024,
		IndexTime:  5 * time.Millisecond,
		SearchFunc: func(q []float32, k int) []pqueue.Neighbor {
			return nb(1, recallDist)
		},
	}
}

func TestEvaluateAggregates(t *testing.T) {
	queries := [][]float32{{0}, {1}}
	truth := [][]pqueue.Neighbor{nb(1, 1.0), nb(2, 1.0)}
	r := EvaluatePrecise(mkRunner("M", 1.0), queries, truth, 1)
	if r.Method != "M" || r.Config != "cfg" || r.K != 1 {
		t.Fatalf("metadata: %+v", r)
	}
	if r.Recall != 0.5 {
		t.Errorf("Recall = %v, want 0.5 (one query hits, one misses)", r.Recall)
	}
	if r.IndexBytes != 1024 || r.IndexTimeMS != 5 {
		t.Errorf("index accounting: %+v", r)
	}
	if r.QueryTimeMS < 0 {
		t.Errorf("negative time")
	}
	if r.String() == "" {
		t.Error("String empty")
	}
}

func TestEvaluatePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Evaluate(mkRunner("M", 1), [][]float32{{0}}, nil, 1)
}

func res(recall, qtime float64, size int64) Result {
	return Result{Recall: recall, QueryTimeMS: qtime, IndexBytes: size}
}

func TestParetoFrontier(t *testing.T) {
	in := []Result{
		res(0.5, 10, 0),
		res(0.6, 5, 0), // dominates the previous point
		res(0.7, 20, 0),
		res(0.9, 50, 0),
		res(0.8, 60, 0), // dominated by 0.9@50
	}
	out := ParetoFrontier(in)
	wantRecalls := []float64{0.6, 0.7, 0.9}
	if len(out) != len(wantRecalls) {
		t.Fatalf("frontier size %d, want %d: %+v", len(out), len(wantRecalls), out)
	}
	for i, w := range wantRecalls {
		if out[i].Recall != w {
			t.Errorf("frontier[%d].Recall = %v, want %v", i, out[i].Recall, w)
		}
	}
	// Frontier must be ascending in both recall and time.
	for i := 1; i < len(out); i++ {
		if out[i].Recall < out[i-1].Recall || out[i].QueryTimeMS < out[i-1].QueryTimeMS {
			t.Fatal("frontier not monotone")
		}
	}
	if got := ParetoFrontier(nil); len(got) != 0 {
		t.Error("empty frontier should be empty")
	}
}

func TestBestAtRecall(t *testing.T) {
	in := []Result{
		res(0.4, 1, 0),
		res(0.55, 8, 0),
		res(0.60, 4, 0),
		res(0.95, 40, 0),
	}
	r, ok := BestAtRecall(in, 0.5)
	if !ok || r.QueryTimeMS != 4 {
		t.Fatalf("BestAtRecall = %+v, %v", r, ok)
	}
	if _, ok := BestAtRecall(in, 0.99); ok {
		t.Fatal("unreachable recall should report !ok")
	}
}

func TestBestAtRecallBySize(t *testing.T) {
	in := []Result{
		res(0.6, 10, 100),
		res(0.7, 6, 100), // better at same size
		res(0.3, 1, 200), // below recall floor
		res(0.8, 3, 400),
	}
	out := BestAtRecallBySize(in, 0.5)
	if len(out) != 2 {
		t.Fatalf("series length %d: %+v", len(out), out)
	}
	if out[0].IndexBytes != 100 || out[0].QueryTimeMS != 6 {
		t.Errorf("first point: %+v", out[0])
	}
	if out[1].IndexBytes != 400 {
		t.Errorf("second point: %+v", out[1])
	}
}
