package eval

import (
	"math"
	"strings"
	"testing"
)

func TestParseRowRoundTrip(t *testing.T) {
	sizeMB := 14.7
	r := Result{
		Method:      "LCCS-LSH",
		Config:      "m=128 λ=50",
		K:           10,
		Recall:      0.334,
		Ratio:       1.0725,
		QueryTimeMS: 0.1308,
		IndexBytes:  int64(sizeMB * float64(1<<20)),
		IndexTimeMS: 726,
	}
	line := "sift     " + r.String()
	ds, got, ok := ParseRow(line)
	if !ok {
		t.Fatalf("parse failed: %q", line)
	}
	if ds != "sift" || got.Method != r.Method || got.Config != r.Config || got.K != 10 {
		t.Fatalf("metadata: %q %+v", ds, got)
	}
	if math.Abs(got.Recall-r.Recall) > 1e-3 {
		t.Errorf("recall %v", got.Recall)
	}
	if math.Abs(got.Ratio-r.Ratio) > 1e-3 {
		t.Errorf("ratio %v", got.Ratio)
	}
	if math.Abs(got.QueryTimeMS-r.QueryTimeMS) > 1e-3 {
		t.Errorf("qtime %v", got.QueryTimeMS)
	}
	if math.Abs(float64(got.IndexBytes-r.IndexBytes)) > float64(r.IndexBytes)/50 {
		t.Errorf("size %v vs %v", got.IndexBytes, r.IndexBytes)
	}
	if got.IndexTimeMS != 726 {
		t.Errorf("itime %v", got.IndexTimeMS)
	}
}

func TestParseRowMultiWordMethod(t *testing.T) {
	r := Result{
		Method: "Multi-Probe LSH", Config: "K=2 L=4 T=32", K: 10,
		Recall: 1.0, Ratio: 1.0, QueryTimeMS: 2.06,
		IndexBytes: 650000, IndexTimeMS: 15,
	}
	line := "glove    " + r.String()
	ds, got, ok := ParseRow(line)
	if !ok || ds != "glove" {
		t.Fatalf("parse failed")
	}
	if got.Method != "Multi-Probe LSH" {
		t.Fatalf("method = %q", got.Method)
	}
	if got.Config != "K=2 L=4 T=32" {
		t.Fatalf("config = %q", got.Config)
	}
}

func TestParseRowRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"# Figure 4: query time vs recall",
		"random text without fields",
		"sift LCCS-LSH (no configuration reached 50% recall)",
	} {
		if _, _, ok := ParseRow(line); ok {
			t.Errorf("parsed noise: %q", line)
		}
	}
}

func TestParseRowOnFormattedResult(t *testing.T) {
	res := Result{Method: "E2LSH", Config: "K=4 L=8", K: 5, Recall: 0.5,
		Ratio: 1.1, QueryTimeMS: 0.5, IndexBytes: 1 << 21, IndexTimeMS: 33}
	line := "deep " + res.String()
	if !strings.Contains(line, "E2LSH") {
		t.Fatal("format changed")
	}
	_, got, ok := ParseRow(line)
	if !ok || got.K != 5 {
		t.Fatalf("parse: %+v %v", got, ok)
	}
}
