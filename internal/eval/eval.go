// Package eval implements the paper's evaluation metrics (§6.2) — recall,
// overall ratio, query time, index size, indexing time — plus the grid-
// sweep utilities behind the figures: Pareto frontiers over
// (recall, query-time) and cheapest-config selection at a target recall
// level (Figures 4–7 report, per recall level, the best configuration of
// each method found by grid search).
package eval

import (
	"fmt"
	"math"
	"sort"
	"time"

	"lccs/internal/pqueue"
)

// Method is one fully configured ANN method ready to answer k-NN queries.
type Method interface {
	// Name is the method's display name ("LCCS-LSH", "E2LSH", ...).
	Name() string
	// Config describes this configuration (e.g. "m=128 λ=40").
	Config() string
	// Bytes is the index memory footprint.
	Bytes() int64
	// BuildTime is the indexing wall-clock time.
	BuildTime() time.Duration
	// Search answers a k-NN query.
	Search(q []float32, k int) []pqueue.Neighbor
}

// Runner adapts an index + parameter closure into a Method.
type Runner struct {
	MethodName string
	ConfigDesc string
	IndexBytes int64
	IndexTime  time.Duration
	SearchFunc func(q []float32, k int) []pqueue.Neighbor
}

// Name implements Method.
func (r *Runner) Name() string { return r.MethodName }

// Config implements Method.
func (r *Runner) Config() string { return r.ConfigDesc }

// Bytes implements Method.
func (r *Runner) Bytes() int64 { return r.IndexBytes }

// BuildTime implements Method.
func (r *Runner) BuildTime() time.Duration { return r.IndexTime }

// Search implements Method.
func (r *Runner) Search(q []float32, k int) []pqueue.Neighbor {
	return r.SearchFunc(q, k)
}

// Recall is the fraction of the true k-NN ids present in got (§6.2). want
// must be the exact k-NN; got may be shorter than k.
func Recall(got, want []pqueue.Neighbor) float64 {
	if len(want) == 0 {
		return 0
	}
	wantSet := make(map[int]struct{}, len(want))
	for _, w := range want {
		wantSet[w.ID] = struct{}{}
	}
	hit := 0
	for _, g := range got {
		if _, ok := wantSet[g.ID]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// Ratio is the overall ratio of §6.2: (1/k) Σ_i Dist(o_i, q)/Dist(o*_i, q),
// comparing the i-th returned object against the exact i-th NN. Missing
// results (got shorter than want) and zero true distances matched by
// nonzero returned distances contribute the worst observed ratio; a fully
// empty result yields +Inf. Smaller is better; 1.0 is exact.
func Ratio(got, want []pqueue.Neighbor) float64 {
	if len(want) == 0 {
		return math.Inf(1)
	}
	if len(got) == 0 {
		return math.Inf(1)
	}
	var sum float64
	worst := 1.0
	count := 0
	for i := range want {
		if i >= len(got) {
			break
		}
		var r float64
		switch {
		case want[i].Dist == 0 && got[i].Dist == 0:
			r = 1
		case want[i].Dist == 0:
			// Exact answer sits at distance 0 but we returned
			// something else; there is no meaningful finite ratio,
			// count it as the worst seen.
			r = worst
		default:
			r = got[i].Dist / want[i].Dist
		}
		if r > worst {
			worst = r
		}
		sum += r
		count++
	}
	// Pad missing positions with the worst observed ratio.
	for i := count; i < len(want); i++ {
		sum += worst
	}
	return sum / float64(len(want))
}

// Result is the measured performance of one method configuration.
type Result struct {
	Method      string
	Config      string
	K           int
	Recall      float64 // in [0,1]
	Ratio       float64
	QueryTimeMS float64 // average wall-clock per query, milliseconds
	IndexBytes  int64
	IndexTimeMS float64
}

// String formats the result as one harness output row.
func (r Result) String() string {
	return fmt.Sprintf("%-14s %-28s k=%-3d recall=%6.2f%% ratio=%6.4f qtime=%9.4fms size=%8.1fMB itime=%8.1fms",
		r.Method, r.Config, r.K, 100*r.Recall, r.Ratio, r.QueryTimeMS,
		float64(r.IndexBytes)/(1<<20), r.IndexTimeMS)
}

// Evaluate runs every query through m (single-threaded, matching the
// paper's measurement methodology) and aggregates metrics against the
// exact truth.
func Evaluate(m Method, queries [][]float32, truth [][]pqueue.Neighbor, k int) Result {
	if len(queries) != len(truth) {
		panic("eval: queries/truth length mismatch")
	}
	var recall, ratio float64
	start := time.Now()
	results := make([][]pqueue.Neighbor, len(queries))
	for i, q := range queries {
		results[i] = m.Search(q, k)
	}
	elapsed := time.Since(start)
	for i := range queries {
		recall += Recall(results[i], truth[i])
		ratio += Ratio(results[i], truth[i])
	}
	nq := float64(len(queries))
	return Result{
		Method:      m.Name(),
		Config:      m.Config(),
		K:           k,
		Recall:      recall / nq,
		Ratio:       ratio / nq,
		QueryTimeMS: float64(elapsed.Milliseconds()) / nq,
		IndexBytes:  m.Bytes(),
		IndexTimeMS: float64(m.BuildTime().Milliseconds()),
	}
}

// EvaluatePrecise is Evaluate with per-query nanosecond timing, for fast
// queries where millisecond totals would round to zero.
func EvaluatePrecise(m Method, queries [][]float32, truth [][]pqueue.Neighbor, k int) Result {
	if len(queries) != len(truth) {
		panic("eval: queries/truth length mismatch")
	}
	var recall, ratio float64
	var total time.Duration
	for i, q := range queries {
		start := time.Now()
		got := m.Search(q, k)
		total += time.Since(start)
		recall += Recall(got, truth[i])
		ratio += Ratio(got, truth[i])
	}
	nq := float64(len(queries))
	return Result{
		Method:      m.Name(),
		Config:      m.Config(),
		K:           k,
		Recall:      recall / nq,
		Ratio:       ratio / nq,
		QueryTimeMS: total.Seconds() * 1000 / nq,
		IndexBytes:  m.Bytes(),
		IndexTimeMS: float64(m.BuildTime().Milliseconds()),
	}
}

// ParetoFrontier filters results to the (recall ↑, query time ↓) Pareto
// frontier — the curve plotted per method in Figures 4 and 5 — sorted by
// ascending recall.
func ParetoFrontier(results []Result) []Result {
	sorted := append([]Result(nil), results...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Recall != sorted[b].Recall {
			return sorted[a].Recall < sorted[b].Recall
		}
		return sorted[a].QueryTimeMS < sorted[b].QueryTimeMS
	})
	var out []Result
	// Walk from the highest recall down, keeping strictly improving
	// query times.
	bestTime := math.Inf(1)
	for i := len(sorted) - 1; i >= 0; i-- {
		if sorted[i].QueryTimeMS < bestTime {
			bestTime = sorted[i].QueryTimeMS
			out = append(out, sorted[i])
		}
	}
	// Reverse to ascending recall.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// BestAtRecall returns the fastest configuration whose recall reaches
// minRecall, as used by the Figure 6/7 trade-off plots ("lowest query time
// ... at 50% recall level"). ok is false if no configuration qualifies.
func BestAtRecall(results []Result, minRecall float64) (Result, bool) {
	var best Result
	found := false
	for _, r := range results {
		if r.Recall+1e-12 < minRecall {
			continue
		}
		if !found || r.QueryTimeMS < best.QueryTimeMS {
			best = r
			found = true
		}
	}
	return best, found
}

// BestAtRecallBySize returns, for each distinct index size among results
// meeting minRecall, the lowest query time — the (index size, query time)
// trade-off series of Figures 6 and 7, sorted by ascending size.
func BestAtRecallBySize(results []Result, minRecall float64) []Result {
	bySize := map[int64]Result{}
	for _, r := range results {
		if r.Recall+1e-12 < minRecall {
			continue
		}
		cur, ok := bySize[r.IndexBytes]
		if !ok || r.QueryTimeMS < cur.QueryTimeMS {
			bySize[r.IndexBytes] = r
		}
	}
	out := make([]Result, 0, len(bySize))
	for _, r := range bySize {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].IndexBytes < out[b].IndexBytes })
	return out
}
