package experiments

import (
	"fmt"

	"lccs/internal/baseline/c2lsh"
	"lccs/internal/baseline/e2lsh"
	"lccs/internal/baseline/falconn"
	"lccs/internal/baseline/mplsh"
	"lccs/internal/baseline/qalsh"
	"lccs/internal/baseline/srs"
	"lccs/internal/core"
	"lccs/internal/eval"
	"lccs/internal/lshfamily"
	"lccs/internal/pqueue"
)

// family returns the LSH family the paper pairs with the env's metric:
// random projection for Euclidean (w fine-tuned per dataset, mirroring the
// paper's per-dataset w footnote) and cross-polytope for Angular.
func (e *Env) family() lshfamily.Family {
	if e.Metric.Name() == "angular" {
		return lshfamily.NewCrossPolytope(e.DS.Dim)
	}
	return lshfamily.NewRandomProjection(e.DS.Dim, e.tunedW())
}

// tunedW derives the bucket width from the dataset's distance profile:
// twice the typical near-neighbor distance puts the single-function
// collision probability for true neighbors near 0.6 (Eq. 2) while keeping
// it low for the far mass.
func (e *Env) tunedW() float64 {
	p := e.DS.Profile(e.Metric, 10)
	w := 2 * p.NearMedian
	if w <= 0 {
		w = 1
	}
	return w
}

// grids returns (full, quick) integer grids.
func pick(quick bool, full, small []int) []int {
	if quick {
		return small
	}
	return full
}

// lambdaGrid is the candidate-budget sweep shared by the LCCS schemes.
func (e *Env) lambdaGrid(quick bool) []int {
	g := pick(quick, []int{5, 10, 20, 50, 100, 200, 400, 800, 1600}, []int{10, 50})
	out := g[:0:0]
	for _, l := range g {
		if l < len(e.DS.Data) {
			out = append(out, l)
		}
	}
	return out
}

// SweepLCCS evaluates single-probe LCCS-LSH over the m × λ grid.
func SweepLCCS(e *Env, opt Options) []eval.Result {
	fam := e.family()
	var out []eval.Result
	for _, m := range pick(opt.Quick, []int{16, 32, 64, 128, 256}, []int{16, 32}) {
		ix, err := core.Build(e.DS.Data, fam, core.Params{M: m, Seed: e.Seed})
		if err != nil {
			continue
		}
		for _, lam := range e.lambdaGrid(opt.Quick) {
			lam := lam
			r := eval.EvaluatePrecise(&eval.Runner{
				MethodName: "LCCS-LSH",
				ConfigDesc: fmt.Sprintf("m=%d λ=%d", m, lam),
				IndexBytes: ix.Bytes(),
				IndexTime:  ix.BuildTime(),
				SearchFunc: func(q []float32, k int) []pqueue.Neighbor {
					return ix.Search(q, k, lam)
				},
			}, e.DS.Queries, e.Truth, e.K)
			out = append(out, r)
		}
	}
	return out
}

// SweepMPLCCS evaluates MP-LCCS-LSH over the m × #probes × λ grid; the
// probe counts follow the paper's {1, m+1, 2m+1, 4m+1} pattern (trimmed to
// two points per m — probing cost scales with #probes × λ, and the two
// points bracket the regime the paper studies).
func SweepMPLCCS(e *Env, opt Options) []eval.Result {
	fam := e.family()
	var out []eval.Result
	for _, m := range pick(opt.Quick, []int{16, 64}, []int{16}) {
		probesGrid := []int{m + 1, 4*m + 1}
		if opt.Quick {
			probesGrid = []int{m + 1}
		}
		for _, probes := range probesGrid {
			ix, err := core.BuildMP(e.DS.Data, fam, core.MPParams{
				Params: core.Params{M: m, Seed: e.Seed},
				Probes: probes,
			})
			if err != nil {
				continue
			}
			lamGrid := e.lambdaGrid(opt.Quick)
			if !opt.Quick {
				// Probing cost dominates re-evaluation: thin the
				// λ grid (every other point) for the MP sweep.
				thinned := lamGrid[:0:0]
				for i := 0; i < len(lamGrid); i += 2 {
					thinned = append(thinned, lamGrid[i])
				}
				lamGrid = thinned
			}
			for _, lam := range lamGrid {
				lam := lam
				r := eval.EvaluatePrecise(&eval.Runner{
					MethodName: "MP-LCCS-LSH",
					ConfigDesc: fmt.Sprintf("m=%d probes=%d λ=%d", m, probes, lam),
					IndexBytes: ix.Bytes(),
					IndexTime:  ix.BuildTime(),
					SearchFunc: func(q []float32, k int) []pqueue.Neighbor {
						return ix.Search(q, k, lam)
					},
				}, e.DS.Queries, e.Truth, e.K)
				out = append(out, r)
			}
		}
	}
	return out
}

// concatK returns the K grid for static-concatenation methods; the
// cross-polytope alphabet is enormous (±D), so fewer concatenations are
// needed than for random projections.
func (e *Env) concatK(quick bool) []int {
	if e.Metric.Name() == "angular" {
		return pick(quick, []int{1, 2}, []int{1})
	}
	return pick(quick, []int{2, 4, 6}, []int{4})
}

// SweepE2LSH evaluates E2LSH over the K × L grid.
func SweepE2LSH(e *Env, opt Options) []eval.Result {
	fam := e.family()
	var out []eval.Result
	for _, kk := range e.concatK(opt.Quick) {
		for _, ll := range pick(opt.Quick, []int{4, 8, 16, 32}, []int{8}) {
			ix, err := e2lsh.Build(e.DS.Data, fam, e2lsh.Params{K: kk, L: ll, Seed: e.Seed})
			if err != nil {
				continue
			}
			r := eval.EvaluatePrecise(&eval.Runner{
				MethodName: "E2LSH",
				ConfigDesc: fmt.Sprintf("K=%d L=%d", kk, ll),
				IndexBytes: ix.Bytes(),
				IndexTime:  ix.BuildTime(),
				SearchFunc: ix.Search,
			}, e.DS.Queries, e.Truth, e.K)
			out = append(out, r)
		}
	}
	return out
}

// SweepMPLSH evaluates Multi-Probe LSH over K × L × probes.
func SweepMPLSH(e *Env, opt Options) []eval.Result {
	fam := e.family()
	var out []eval.Result
	for _, kk := range e.concatK(opt.Quick) {
		for _, ll := range pick(opt.Quick, []int{4, 8}, []int{4}) {
			for _, probes := range pick(opt.Quick, []int{4, 8, 16, 32}, []int{8}) {
				ix, err := mplsh.Build(e.DS.Data, fam, mplsh.Params{K: kk, L: ll, Probes: probes, Seed: e.Seed})
				if err != nil {
					continue
				}
				r := eval.EvaluatePrecise(&eval.Runner{
					MethodName: "Multi-Probe LSH",
					ConfigDesc: fmt.Sprintf("K=%d L=%d T=%d", kk, ll, probes),
					IndexBytes: ix.Bytes(),
					IndexTime:  ix.BuildTime(),
					SearchFunc: ix.Search,
				}, e.DS.Queries, e.Truth, e.K)
				out = append(out, r)
			}
		}
	}
	return out
}

// SweepC2LSH evaluates C2LSH over m × budget with the threshold fixed at
// m/4 (≥2).
func SweepC2LSH(e *Env, opt Options) []eval.Result {
	fam := e.family()
	var out []eval.Result
	for _, m := range pick(opt.Quick, []int{16, 32, 64}, []int{32}) {
		thr := m / 4
		if thr < 2 {
			thr = 2
		}
		for _, budget := range pick(opt.Quick, []int{50, 100, 200, 400, 800, 1600}, []int{100}) {
			ix, err := c2lsh.Build(e.DS.Data, fam, c2lsh.Params{
				M: m, Threshold: thr, Budget: budget, Seed: e.Seed,
			})
			if err != nil {
				continue
			}
			r := eval.EvaluatePrecise(&eval.Runner{
				MethodName: "C2LSH",
				ConfigDesc: fmt.Sprintf("m=%d l=%d B=%d", m, thr, budget),
				IndexBytes: ix.Bytes(),
				IndexTime:  ix.BuildTime(),
				SearchFunc: ix.Search,
			}, e.DS.Queries, e.Truth, e.K)
			out = append(out, r)
		}
	}
	return out
}

// SweepQALSH evaluates QALSH over m × budget (Euclidean only).
func SweepQALSH(e *Env, opt Options) []eval.Result {
	w := e.tunedW()
	var out []eval.Result
	for _, m := range pick(opt.Quick, []int{16, 32, 64}, []int{32}) {
		thr := m / 4
		if thr < 2 {
			thr = 2
		}
		for _, budget := range pick(opt.Quick, []int{50, 100, 200, 400, 800, 1600}, []int{100}) {
			ix, err := qalsh.Build(e.DS.Data, e.DS.Dim, qalsh.Params{
				M: m, Threshold: thr, W: w, Budget: budget, Seed: e.Seed,
			})
			if err != nil {
				continue
			}
			r := eval.EvaluatePrecise(&eval.Runner{
				MethodName: "QALSH",
				ConfigDesc: fmt.Sprintf("m=%d l=%d B=%d", m, thr, budget),
				IndexBytes: ix.Bytes(),
				IndexTime:  ix.BuildTime(),
				SearchFunc: ix.Search,
			}, e.DS.Queries, e.Truth, e.K)
			out = append(out, r)
		}
	}
	return out
}

// SweepSRS evaluates SRS over projection dimension × budget (Euclidean
// only).
func SweepSRS(e *Env, opt Options) []eval.Result {
	var out []eval.Result
	for _, dp := range pick(opt.Quick, []int{6, 8, 10}, []int{6}) {
		for _, budget := range pick(opt.Quick, []int{50, 100, 200, 400, 800, 1600}, []int{100}) {
			ix, err := srs.Build(e.DS.Data, e.DS.Dim, srs.Params{
				ProjDim: dp, Budget: budget, Seed: e.Seed,
			})
			if err != nil {
				continue
			}
			r := eval.EvaluatePrecise(&eval.Runner{
				MethodName: "SRS",
				ConfigDesc: fmt.Sprintf("d'=%d B=%d", dp, budget),
				IndexBytes: ix.Bytes(),
				IndexTime:  ix.BuildTime(),
				SearchFunc: ix.Search,
			}, e.DS.Queries, e.Truth, e.K)
			out = append(out, r)
		}
	}
	return out
}

// SweepFALCONN evaluates the FALCONN baseline over K × L × probes
// (Angular only).
func SweepFALCONN(e *Env, opt Options) []eval.Result {
	fam := e.family()
	var out []eval.Result
	for _, kk := range pick(opt.Quick, []int{1, 2}, []int{1}) {
		for _, ll := range pick(opt.Quick, []int{4, 8, 16}, []int{8}) {
			for _, probes := range pick(opt.Quick, []int{1, 4, 16}, []int{4}) {
				ix, err := falconn.Build(e.DS.Data, fam, falconn.Params{
					K: kk, L: ll, Probes: probes, Seed: e.Seed,
				})
				if err != nil {
					continue
				}
				r := eval.EvaluatePrecise(&eval.Runner{
					MethodName: "FALCONN",
					ConfigDesc: fmt.Sprintf("K=%d L=%d T=%d", kk, ll, probes),
					IndexBytes: ix.Bytes(),
					IndexTime:  ix.BuildTime(),
					SearchFunc: ix.Search,
				}, e.DS.Queries, e.Truth, e.K)
				out = append(out, r)
			}
		}
	}
	return out
}

// euclideanSweeps returns the Figure 4 method set.
func euclideanSweeps() map[string]func(*Env, Options) []eval.Result {
	return map[string]func(*Env, Options) []eval.Result{
		"LCCS-LSH":        SweepLCCS,
		"MP-LCCS-LSH":     SweepMPLCCS,
		"E2LSH":           SweepE2LSH,
		"Multi-Probe LSH": SweepMPLSH,
		"C2LSH":           SweepC2LSH,
		"SRS":             SweepSRS,
		"QALSH":           SweepQALSH,
	}
}

// angularSweeps returns the Figure 5 method set.
func angularSweeps() map[string]func(*Env, Options) []eval.Result {
	return map[string]func(*Env, Options) []eval.Result{
		"LCCS-LSH":    SweepLCCS,
		"MP-LCCS-LSH": SweepMPLCCS,
		"E2LSH":       SweepE2LSH,
		"FALCONN":     SweepFALCONN,
		"C2LSH":       SweepC2LSH,
	}
}

// methodOrderEuclidean is the legend order of Figure 4.
var methodOrderEuclidean = []string{
	"LCCS-LSH", "MP-LCCS-LSH", "E2LSH", "Multi-Probe LSH", "C2LSH", "SRS", "QALSH",
}

// methodOrderAngular is the legend order of Figure 5.
var methodOrderAngular = []string{
	"LCCS-LSH", "MP-LCCS-LSH", "E2LSH", "FALCONN", "C2LSH",
}

// runSweeps executes the given sweeps in legend order and returns results
// grouped by method, honoring opt.Methods when set.
func runSweeps(e *Env, opt Options, sweeps map[string]func(*Env, Options) []eval.Result, order []string) map[string][]eval.Result {
	wanted := func(name string) bool {
		if len(opt.Methods) == 0 {
			return true
		}
		for _, m := range opt.Methods {
			if m == name {
				return true
			}
		}
		return false
	}
	out := make(map[string][]eval.Result, len(sweeps))
	for _, name := range order {
		sweep, ok := sweeps[name]
		if !ok || !wanted(name) {
			continue
		}
		rs := sweep(e, opt)
		sortResults(rs)
		out[name] = rs
	}
	return out
}
