package experiments

import (
	"fmt"

	"lccs/internal/core"
	"lccs/internal/eval"
	"lccs/internal/pqueue"
	"lccs/internal/vec"
)

// Fig4 regenerates Figure 4: query time–recall curves for top-k search
// under Euclidean distance, all seven methods over every dataset. Each
// printed row is one point of a method's Pareto frontier.
func Fig4(opt Options) error {
	opt.fill()
	fmt.Fprintf(opt.Out, "# Figure 4: query time vs recall, k=%d, Euclidean\n", opt.K)
	return figQueryRecall(opt, vec.Euclidean, euclideanSweeps(), methodOrderEuclidean)
}

// Fig5 regenerates Figure 5: query time–recall curves under Angular
// distance (cross-polytope family), five methods over every dataset.
func Fig5(opt Options) error {
	opt.fill()
	fmt.Fprintf(opt.Out, "# Figure 5: query time vs recall, k=%d, Angular\n", opt.K)
	return figQueryRecall(opt, vec.Angular, angularSweeps(), methodOrderAngular)
}

func figQueryRecall(opt Options, metric vec.Metric, sweeps map[string]func(*Env, Options) []eval.Result, order []string) error {
	for _, dsName := range opt.Datasets {
		e, err := NewEnv(dsName, metric, opt)
		if err != nil {
			return err
		}
		byMethod := runSweeps(e, opt, sweeps, order)
		for _, m := range order {
			printFrontier(opt.Out, dsName, byMethod[m])
		}
	}
	return nil
}

// Fig6 regenerates Figure 6: query time vs index size and query time vs
// indexing time at the 50% recall level, Euclidean. One row per method per
// distinct index size that reaches the recall floor.
func Fig6(opt Options) error {
	opt.fill()
	fmt.Fprintf(opt.Out, "# Figure 6: query time vs index size / indexing time @50%% recall, k=%d, Euclidean\n", opt.K)
	return figTradeoff(opt, vec.Euclidean, euclideanSweeps(), methodOrderEuclidean)
}

// Fig7 regenerates Figure 7: the same trade-off under Angular distance.
func Fig7(opt Options) error {
	opt.fill()
	fmt.Fprintf(opt.Out, "# Figure 7: query time vs index size / indexing time @50%% recall, k=%d, Angular\n", opt.K)
	return figTradeoff(opt, vec.Angular, angularSweeps(), methodOrderAngular)
}

const tradeoffRecallFloor = 0.5

func figTradeoff(opt Options, metric vec.Metric, sweeps map[string]func(*Env, Options) []eval.Result, order []string) error {
	for _, dsName := range opt.Datasets {
		e, err := NewEnv(dsName, metric, opt)
		if err != nil {
			return err
		}
		byMethod := runSweeps(e, opt, sweeps, order)
		for _, m := range order {
			series := eval.BestAtRecallBySize(byMethod[m], tradeoffRecallFloor)
			if len(series) == 0 {
				fmt.Fprintf(opt.Out, "%-8s %-14s (no configuration reached %.0f%% recall)\n",
					dsName, m, 100*tradeoffRecallFloor)
				continue
			}
			for _, r := range series {
				fmt.Fprintf(opt.Out, "%-8s %s\n", dsName, r)
			}
		}
	}
	return nil
}

// e10LambdaGrid is Figure 10's thinned candidate-budget grid.
func e10LambdaGrid(opt Options) []int {
	if opt.Quick {
		return []int{10, 50}
	}
	out := []int{10, 50, 200, 800}
	for i, l := range out {
		if l >= opt.N {
			return out[:i]
		}
	}
	return out
}

// fig8Ks is the k sweep of Figure 8.
var fig8Ks = []int{1, 2, 5, 10, 20, 50, 100}

// Fig8 regenerates Figure 8: recall, ratio, and query time vs k on the
// Sift analogue under both metrics, with each method at its best
// configuration for ~50% recall at k=10 (the paper matches methods at
// similar recall levels).
func Fig8(opt Options) error {
	opt.fill()
	fmt.Fprintf(opt.Out, "# Figure 8: query performance vs k, sift, both metrics\n")
	ks := fig8Ks
	if opt.Quick {
		ks = []int{1, 10}
	}
	for _, metric := range []vec.Metric{vec.Euclidean, vec.Angular} {
		var sweeps map[string]func(*Env, Options) []eval.Result
		var order []string
		if metric.Name() == "angular" {
			sweeps, order = angularSweeps(), methodOrderAngular
		} else {
			sweeps, order = euclideanSweeps(), methodOrderEuclidean
		}
		e, err := NewEnv("sift", metric, opt)
		if err != nil {
			return err
		}
		byMethod := runSweeps(e, opt, sweeps, order)
		for _, m := range order {
			best, ok := eval.BestAtRecall(byMethod[m], tradeoffRecallFloor)
			if !ok {
				// Fall back to the highest-recall configuration.
				for _, r := range byMethod[m] {
					if r.Recall > best.Recall {
						best = r
					}
				}
			}
			// Re-evaluate the chosen configuration across the k sweep.
			runner, err := e.buildRunner(m, best.Config)
			if err != nil {
				return err
			}
			for _, k := range ks {
				truth := e.TruthAt(k)
				r := eval.EvaluatePrecise(runner, e.DS.Queries, truth, k)
				fmt.Fprintf(opt.Out, "sift-%-9s k=%-3d %s\n", metric.Name(), k, r)
			}
		}
	}
	return nil
}

// Fig9 regenerates Figure 9: the impact of m for single-probe LCCS-LSH on
// the Sift analogue under both metrics; for each m the λ sweep's Pareto
// frontier is printed.
func Fig9(opt Options) error {
	opt.fill()
	fmt.Fprintf(opt.Out, "# Figure 9: impact of m for LCCS-LSH, sift, k=%d\n", opt.K)
	ms := []int{8, 16, 32, 64, 128, 256, 512}
	if opt.Quick {
		ms = []int{8, 16}
	}
	for _, metric := range []vec.Metric{vec.Euclidean, vec.Angular} {
		e, err := NewEnv("sift", metric, opt)
		if err != nil {
			return err
		}
		fam := e.family()
		for _, m := range ms {
			ix, err := core.Build(e.DS.Data, fam, core.Params{M: m, Seed: e.Seed})
			if err != nil {
				return err
			}
			var results []eval.Result
			for _, lam := range e.lambdaGrid(opt.Quick) {
				lam := lam
				results = append(results, eval.EvaluatePrecise(&eval.Runner{
					MethodName: "LCCS-LSH",
					ConfigDesc: fmt.Sprintf("m=%d λ=%d", m, lam),
					IndexBytes: ix.Bytes(),
					IndexTime:  ix.BuildTime(),
					SearchFunc: func(q []float32, k int) []pqueue.Neighbor {
						return ix.Search(q, k, lam)
					},
				}, e.DS.Queries, e.Truth, e.K))
			}
			printFrontier(opt.Out, "sift-"+metric.Name(), results)
		}
	}
	return nil
}

// Fig10 regenerates Figure 10: the impact of #probes for MP-LCCS-LSH on
// the Sift analogue with m = 128 (scaled down in quick mode), probes in
// {1, m+1, 2m+1, 4m+1, 8m+1}.
func Fig10(opt Options) error {
	opt.fill()
	m := 128
	if opt.Quick {
		m = 16
	}
	fmt.Fprintf(opt.Out, "# Figure 10: impact of #probes for MP-LCCS-LSH, sift, m=%d, k=%d\n", m, opt.K)
	probesGrid := []int{1, m + 1, 2*m + 1, 4*m + 1, 8*m + 1}
	if opt.Quick {
		probesGrid = []int{1, m + 1}
	}
	// Probing cost scales with #probes × λ; thin the λ grid so the
	// 8m+1 configuration stays tractable.
	lamGrid := e10LambdaGrid(opt)
	for _, metric := range []vec.Metric{vec.Euclidean, vec.Angular} {
		e, err := NewEnv("sift", metric, opt)
		if err != nil {
			return err
		}
		fam := e.family()
		for _, probes := range probesGrid {
			ix, err := core.BuildMP(e.DS.Data, fam, core.MPParams{
				Params: core.Params{M: m, Seed: e.Seed},
				Probes: probes,
			})
			if err != nil {
				return err
			}
			var results []eval.Result
			for _, lam := range lamGrid {
				lam := lam
				results = append(results, eval.EvaluatePrecise(&eval.Runner{
					MethodName: "MP-LCCS-LSH",
					ConfigDesc: fmt.Sprintf("m=%d probes=%d λ=%d", m, probes, lam),
					IndexBytes: ix.Bytes(),
					IndexTime:  ix.BuildTime(),
					SearchFunc: func(q []float32, k int) []pqueue.Neighbor {
						return ix.Search(q, k, lam)
					},
				}, e.DS.Queries, e.Truth, e.K))
			}
			printFrontier(opt.Out, "sift-"+metric.Name(), results)
		}
	}
	return nil
}
