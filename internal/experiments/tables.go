package experiments

import (
	"fmt"

	"lccs/internal/dataset"
	"lccs/internal/stats"
	"lccs/internal/vec"
)

// Table1 regenerates Table 1: the space and time complexities of E2LSH,
// C2LSH, and LCCS-LSH under the three canonical settings of α. The table
// is analytic; to ground it, the harness also prints the concrete ρ, m,
// and λ values Theorem 5.1 yields for a representative dataset profile.
func Table1(opt Options) error {
	opt.fill()
	w := opt.Out
	fmt.Fprintln(w, "# Table 1: space and time complexities (ρ = ln(1/p1)/ln(1/p2))")
	fmt.Fprintln(w, "method     α        m         λ      space         indexing time              query time")
	fmt.Fprintln(w, "E2LSH      -        -         -      O(n^(1+ρ))    O(n^(1+ρ) η(d) log n)      O(n^ρ (η(d) log n + d))")
	fmt.Fprintln(w, "C2LSH      -        -         -      O(n log n)    O(n log n (η(d)+log n))    O(n log n)")
	fmt.Fprintln(w, "LCCS-LSH   0        O(1)      O(n)   O(n)          O(n (η(d)+log n))          O(nd)")
	fmt.Fprintln(w, "LCCS-LSH   1        O(n^ρ)    O(n^ρ) O(n^(1+ρ))    O(n^(1+ρ) (η(d)+log n))    O(n^ρ (η(d)+d+log n))")
	fmt.Fprintln(w, "LCCS-LSH   1/(1-ρ)  O(n^(ρ/(1-ρ)))  O(1)  O(n^(1/(1-ρ)))  O(n^(1/(1-ρ)) (η(d)+log n))  O(n^(ρ/(1-ρ)) (η(d)+log n) + d)")
	fmt.Fprintln(w)

	// Ground the symbols with a measured profile of the first requested
	// dataset: p1/p2 from the family's analytic collision probability at
	// the near/far distances, then ρ and Theorem 5.1's λ.
	name := opt.Datasets[0]
	e, err := NewEnv(name, vec.Euclidean, opt)
	if err != nil {
		return err
	}
	prof := e.DS.Profile(e.Metric, 10)
	fam := e.family()
	p1 := fam.CollisionProb(prof.NearMedian)
	p2 := fam.CollisionProb(prof.FarMedian)
	if p1 <= p2 || p2 <= 0 {
		fmt.Fprintf(w, "%s: degenerate profile (p1=%.3f p2=%.3f); λ grounding skipped\n", name, p1, p2)
		return nil
	}
	rho := stats.Rho(p1, p2)
	n := len(e.DS.Data)
	fmt.Fprintf(w, "grounding on %s analogue: n=%d, near=%.3g, far=%.3g, p1=%.3f, p2=%.3f, ρ=%.3f\n",
		name, n, prof.NearMedian, prof.FarMedian, p1, p2, rho)
	for _, m := range []int{16, 64, 256} {
		lam := stats.TheoremLambda(m, n, p1, p2)
		fmt.Fprintf(w, "  m=%-4d → Theorem 5.1 λ=%d\n", m, lam)
	}
	return nil
}

// Table2 regenerates Table 2: the statistics of the (synthetic analogues
// of the) five datasets.
func Table2(opt Options) error {
	opt.fill()
	w := opt.Out
	fmt.Fprintln(w, "# Table 2: statistics of datasets and queries (synthetic analogues)")
	fmt.Fprintf(w, "%-8s %10s %9s %6s %12s %-6s\n", "Dataset", "#Objects", "#Queries", "d", "Data Size", "Type")
	for _, name := range opt.Datasets {
		spec, err := dataset.Preset(name, opt.N, opt.NQ, opt.Seed)
		if err != nil {
			return err
		}
		ds, err := dataset.Generate(spec)
		if err != nil {
			return err
		}
		st := ds.TableStats()
		fmt.Fprintf(w, "%-8s %10d %9d %6d %9.1f MB %-6s\n",
			st.Name, st.Objects, st.Queries, st.Dim, float64(st.SizeBytes)/(1<<20), st.Kind)
	}
	return nil
}
