package experiments

import (
	"bytes"
	"strings"
	"testing"

	"lccs/internal/eval"
	"lccs/internal/vec"
)

// quickOpt is a tiny configuration that exercises every code path in
// seconds.
func quickOpt(buf *bytes.Buffer) Options {
	return Options{
		N: 800, NQ: 8, K: 5, Seed: 3,
		Datasets: []string{"sift"},
		Quick:    true,
		Out:      buf,
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("fig99", Options{}); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestNames(t *testing.T) {
	if len(Names()) != 9 {
		t.Fatalf("Names = %v", Names())
	}
	var buf bytes.Buffer
	for _, n := range Names() {
		if n == "table1" || n == "table2" {
			if err := Run(n, quickOpt(&buf)); err != nil {
				t.Fatalf("%s: %v", n, err)
			}
		}
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(quickOpt(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "E2LSH", "C2LSH", "LCCS-LSH", "Theorem 5.1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestTable2Output(t *testing.T) {
	var buf bytes.Buffer
	opt := quickOpt(&buf)
	opt.Datasets = []string{"sift", "glove"}
	if err := Table2(opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sift") || !strings.Contains(out, "glove") {
		t.Errorf("missing dataset rows:\n%s", out)
	}
	if !strings.Contains(out, "128") || !strings.Contains(out, "100") {
		t.Errorf("missing dimensions:\n%s", out)
	}
}

func TestNewEnvAngularNormalizes(t *testing.T) {
	opt := quickOpt(&bytes.Buffer{})
	e, err := NewEnv("sift", vec.Angular, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n := vec.Norm(e.DS.Data[0]); n < 0.999 || n > 1.001 {
		t.Fatalf("angular env not normalized: norm %v", n)
	}
	if len(e.Truth) != opt.NQ || len(e.Truth[0]) != opt.K {
		t.Fatalf("truth shape %d×%d", len(e.Truth), len(e.Truth[0]))
	}
}

func TestTruthAt(t *testing.T) {
	e, err := NewEnv("sift", vec.Euclidean, quickOpt(&bytes.Buffer{}))
	if err != nil {
		t.Fatal(err)
	}
	if &e.TruthAt(e.K)[0] != &e.Truth[0] {
		t.Error("TruthAt(K) should reuse cached truth")
	}
	t3 := e.TruthAt(3)
	if len(t3[0]) != 3 {
		t.Fatalf("TruthAt(3) rows have %d entries", len(t3[0]))
	}
}

func TestSweepsProduceSaneResults(t *testing.T) {
	opt := quickOpt(&bytes.Buffer{})
	e, err := NewEnv("sift", vec.Euclidean, opt)
	if err != nil {
		t.Fatal(err)
	}
	sweeps := euclideanSweeps()
	for _, name := range methodOrderEuclidean {
		rs := sweeps[name](e, opt)
		if len(rs) == 0 {
			t.Errorf("%s: no results", name)
			continue
		}
		for _, r := range rs {
			if r.Method != name {
				t.Errorf("%s: result labeled %q", name, r.Method)
			}
			if r.Recall < 0 || r.Recall > 1 {
				t.Errorf("%s: recall %v out of range", name, r.Recall)
			}
			if r.QueryTimeMS < 0 || r.IndexBytes < 0 {
				t.Errorf("%s: negative accounting %+v", name, r)
			}
		}
	}
}

func TestSweepsAngular(t *testing.T) {
	opt := quickOpt(&bytes.Buffer{})
	e, err := NewEnv("sift", vec.Angular, opt)
	if err != nil {
		t.Fatal(err)
	}
	sweeps := angularSweeps()
	for _, name := range methodOrderAngular {
		rs := sweeps[name](e, opt)
		if len(rs) == 0 {
			t.Errorf("%s: no results", name)
		}
	}
}

func TestBuildRunnerRoundTrip(t *testing.T) {
	opt := quickOpt(&bytes.Buffer{})
	e, err := NewEnv("sift", vec.Euclidean, opt)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"LCCS-LSH":        "m=16 λ=10",
		"MP-LCCS-LSH":     "m=16 probes=17 λ=10",
		"E2LSH":           "K=4 L=8",
		"Multi-Probe LSH": "K=4 L=4 T=8",
		"C2LSH":           "m=32 l=8 B=100",
		"QALSH":           "m=32 l=8 B=100",
		"SRS":             "d'=6 B=100",
	}
	for method, config := range cases {
		r, err := e.buildRunner(method, config)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		res := r.Search(e.DS.Queries[0], 5)
		if len(res) == 0 {
			t.Fatalf("%s: no results from rebuilt runner", method)
		}
	}
	if _, err := e.buildRunner("LCCS-LSH", "garbage"); err == nil {
		t.Error("bad config should fail")
	}
	if _, err := e.buildRunner("NopeLSH", "m=1"); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestBuildRunnerFALCONNAngular(t *testing.T) {
	opt := quickOpt(&bytes.Buffer{})
	e, err := NewEnv("sift", vec.Angular, opt)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.buildRunner("FALCONN", "K=1 L=4 T=4")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Search(e.DS.Queries[0], 5)) == 0 {
		t.Fatal("no results")
	}
}

func TestFig4QuickEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(quickOpt(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 4") {
		t.Error("missing header")
	}
	for _, m := range []string{"LCCS-LSH", "E2LSH", "C2LSH", "SRS", "QALSH"} {
		if !strings.Contains(out, m) {
			t.Errorf("missing method %s:\n%s", m, out)
		}
	}
}

func TestFig5QuickEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(quickOpt(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FALCONN") {
		t.Errorf("missing FALCONN:\n%s", buf.String())
	}
}

func TestFig6QuickEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig6(quickOpt(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Error("missing header")
	}
}

func TestFig8QuickEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig8(quickOpt(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 8") {
		t.Error("missing header")
	}
	// Both metrics and multiple k values must appear.
	if !strings.Contains(out, "sift-euclidean") || !strings.Contains(out, "sift-angular") {
		t.Errorf("missing metric rows:\n%s", out)
	}
	if !strings.Contains(out, "k=1 ") || !strings.Contains(out, "k=10") {
		t.Errorf("missing k rows:\n%s", out)
	}
}

func TestFig7QuickEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7(quickOpt(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Error("missing header")
	}
}

func TestFig9QuickEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig9(quickOpt(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "m=8") || !strings.Contains(out, "m=16") {
		t.Errorf("missing m rows:\n%s", out)
	}
	if !strings.Contains(out, "sift-euclidean") || !strings.Contains(out, "sift-angular") {
		t.Errorf("missing metric rows:\n%s", out)
	}
}

func TestFig10QuickEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig10(quickOpt(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "probes=1 ") && !strings.Contains(out, "probes=1 ") && !strings.Contains(out, "probes=1") {
		t.Errorf("missing probes rows:\n%s", out)
	}
}

func TestSortResultsOrdering(t *testing.T) {
	rs := []eval.Result{
		{Method: "B", Recall: 0.2},
		{Method: "A", Recall: 0.9},
		{Method: "A", Recall: 0.1},
	}
	sortResults(rs)
	if rs[0].Method != "A" || rs[0].Recall != 0.1 || rs[2].Method != "B" {
		t.Fatalf("bad order: %+v", rs)
	}
}
