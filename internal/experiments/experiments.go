// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic dataset analogues:
//
//	table1 — complexity table (Table 1)
//	table2 — dataset statistics (Table 2)
//	fig4   — query time vs recall, Euclidean, all methods × all datasets
//	fig5   — query time vs recall, Angular
//	fig6   — query time vs index size / indexing time @50% recall, Euclidean
//	fig7   — same as fig6 under Angular
//	fig8   — sensitivity to k (recall / ratio / query time), Sift
//	fig9   — impact of m for LCCS-LSH, Sift
//	fig10  — impact of #probes for MP-LCCS-LSH, Sift
//
// Each experiment prints the same rows/series the paper plots; absolute
// numbers reflect this substrate (synthetic data, Go, this machine), but
// the relative standing of methods is the reproduction target.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"lccs/internal/baseline/scan"
	"lccs/internal/dataset"
	"lccs/internal/eval"
	"lccs/internal/pqueue"
	"lccs/internal/vec"
)

// Options scales and scopes an experiment run.
type Options struct {
	// N and NQ are the per-dataset data and query counts (the paper uses
	// ~1M and 100; defaults are laptop-sized).
	N, NQ int
	// Datasets restricts the run to a subset of the five presets; nil
	// selects all.
	Datasets []string
	// Methods restricts sweeps to a subset of method names
	// ("LCCS-LSH", "E2LSH", ...); nil selects every method of the
	// figure.
	Methods []string
	// K is the number of neighbors (the paper's headline figures use
	// k = 10).
	K int
	// Seed drives dataset generation and index construction.
	Seed uint64
	// Quick shrinks parameter grids for smoke tests.
	Quick bool
	// Out receives the experiment's rows; defaults to discard if nil.
	Out io.Writer
}

func (o *Options) fill() {
	if o.N == 0 {
		o.N = 10000
	}
	if o.NQ == 0 {
		o.NQ = 50
	}
	if o.K == 0 {
		o.K = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Datasets) == 0 {
		o.Datasets = dataset.PresetNames()
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
}

// Names lists the runnable experiment ids in paper order.
func Names() []string {
	return []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}
}

// Run executes one experiment by id, writing its rows to opt.Out.
func Run(name string, opt Options) error {
	opt.fill()
	switch name {
	case "table1":
		return Table1(opt)
	case "table2":
		return Table2(opt)
	case "fig4":
		return Fig4(opt)
	case "fig5":
		return Fig5(opt)
	case "fig6":
		return Fig6(opt)
	case "fig7":
		return Fig7(opt)
	case "fig8":
		return Fig8(opt)
	case "fig9":
		return Fig9(opt)
	case "fig10":
		return Fig10(opt)
	}
	return fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names())
}

// Env bundles one dataset with its exact ground truth under one metric.
type Env struct {
	DS     *dataset.Dataset
	Metric vec.Metric
	Truth  [][]pqueue.Neighbor
	K      int
	Seed   uint64
}

// NewEnv generates the named dataset analogue and its exact k-NN ground
// truth under the metric. For Angular the dataset is normalized first
// (the paper's angular experiments treat points as directions).
func NewEnv(name string, metric vec.Metric, opt Options) (*Env, error) {
	opt.fill()
	spec, err := dataset.Preset(name, opt.N, opt.NQ, opt.Seed)
	if err != nil {
		return nil, err
	}
	ds, err := dataset.Generate(spec)
	if err != nil {
		return nil, err
	}
	if metric.Name() == "angular" {
		ds = ds.NormalizedCopy()
	}
	return &Env{
		DS:     ds,
		Metric: metric,
		Truth:  scan.SearchAll(ds.Data, ds.Queries, opt.K, metric),
		K:      opt.K,
		Seed:   opt.Seed,
	}, nil
}

// TruthAt recomputes ground truth for a different k (Figure 8 sweeps k).
func (e *Env) TruthAt(k int) [][]pqueue.Neighbor {
	if k == e.K {
		return e.Truth
	}
	return scan.SearchAll(e.DS.Data, e.DS.Queries, k, e.Metric)
}

// printFrontier writes a method's Pareto frontier rows.
func printFrontier(w io.Writer, dsName string, results []eval.Result) {
	frontier := eval.ParetoFrontier(results)
	for _, r := range frontier {
		fmt.Fprintf(w, "%-8s %s\n", dsName, r)
	}
}

// sortResults orders results by method then recall for stable output.
func sortResults(rs []eval.Result) {
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].Method != rs[b].Method {
			return rs[a].Method < rs[b].Method
		}
		return rs[a].Recall < rs[b].Recall
	})
}
