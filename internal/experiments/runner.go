package experiments

import (
	"fmt"

	"lccs/internal/baseline/c2lsh"
	"lccs/internal/baseline/e2lsh"
	"lccs/internal/baseline/falconn"
	"lccs/internal/baseline/mplsh"
	"lccs/internal/baseline/qalsh"
	"lccs/internal/baseline/srs"
	"lccs/internal/core"
	"lccs/internal/eval"
	"lccs/internal/pqueue"
)

// buildRunner rebuilds one method at a configuration string previously
// emitted by the sweep functions (Figure 8 fixes each method at one
// configuration and re-evaluates it across the k sweep). The config
// strings are produced by this package, so parsing them back with Sscanf
// is reliable; an unparsable config is an internal error.
func (e *Env) buildRunner(method, config string) (*eval.Runner, error) {
	switch method {
	case "LCCS-LSH":
		var m, lam int
		if _, err := fmt.Sscanf(config, "m=%d λ=%d", &m, &lam); err != nil {
			return nil, fmt.Errorf("experiments: bad LCCS config %q: %w", config, err)
		}
		ix, err := core.Build(e.DS.Data, e.family(), core.Params{M: m, Seed: e.Seed})
		if err != nil {
			return nil, err
		}
		return &eval.Runner{
			MethodName: method, ConfigDesc: config,
			IndexBytes: ix.Bytes(), IndexTime: ix.BuildTime(),
			SearchFunc: func(q []float32, k int) []pqueue.Neighbor { return ix.Search(q, k, lam) },
		}, nil
	case "MP-LCCS-LSH":
		var m, probes, lam int
		if _, err := fmt.Sscanf(config, "m=%d probes=%d λ=%d", &m, &probes, &lam); err != nil {
			return nil, fmt.Errorf("experiments: bad MP-LCCS config %q: %w", config, err)
		}
		ix, err := core.BuildMP(e.DS.Data, e.family(), core.MPParams{
			Params: core.Params{M: m, Seed: e.Seed}, Probes: probes,
		})
		if err != nil {
			return nil, err
		}
		return &eval.Runner{
			MethodName: method, ConfigDesc: config,
			IndexBytes: ix.Bytes(), IndexTime: ix.BuildTime(),
			SearchFunc: func(q []float32, k int) []pqueue.Neighbor { return ix.Search(q, k, lam) },
		}, nil
	case "E2LSH":
		var kk, ll int
		if _, err := fmt.Sscanf(config, "K=%d L=%d", &kk, &ll); err != nil {
			return nil, fmt.Errorf("experiments: bad E2LSH config %q: %w", config, err)
		}
		ix, err := e2lsh.Build(e.DS.Data, e.family(), e2lsh.Params{K: kk, L: ll, Seed: e.Seed})
		if err != nil {
			return nil, err
		}
		return &eval.Runner{
			MethodName: method, ConfigDesc: config,
			IndexBytes: ix.Bytes(), IndexTime: ix.BuildTime(),
			SearchFunc: ix.Search,
		}, nil
	case "Multi-Probe LSH":
		var kk, ll, probes int
		if _, err := fmt.Sscanf(config, "K=%d L=%d T=%d", &kk, &ll, &probes); err != nil {
			return nil, fmt.Errorf("experiments: bad MPLSH config %q: %w", config, err)
		}
		ix, err := mplsh.Build(e.DS.Data, e.family(), mplsh.Params{K: kk, L: ll, Probes: probes, Seed: e.Seed})
		if err != nil {
			return nil, err
		}
		return &eval.Runner{
			MethodName: method, ConfigDesc: config,
			IndexBytes: ix.Bytes(), IndexTime: ix.BuildTime(),
			SearchFunc: ix.Search,
		}, nil
	case "FALCONN":
		var kk, ll, probes int
		if _, err := fmt.Sscanf(config, "K=%d L=%d T=%d", &kk, &ll, &probes); err != nil {
			return nil, fmt.Errorf("experiments: bad FALCONN config %q: %w", config, err)
		}
		ix, err := falconn.Build(e.DS.Data, e.family(), falconn.Params{K: kk, L: ll, Probes: probes, Seed: e.Seed})
		if err != nil {
			return nil, err
		}
		return &eval.Runner{
			MethodName: method, ConfigDesc: config,
			IndexBytes: ix.Bytes(), IndexTime: ix.BuildTime(),
			SearchFunc: ix.Search,
		}, nil
	case "C2LSH":
		var m, thr, budget int
		if _, err := fmt.Sscanf(config, "m=%d l=%d B=%d", &m, &thr, &budget); err != nil {
			return nil, fmt.Errorf("experiments: bad C2LSH config %q: %w", config, err)
		}
		ix, err := c2lsh.Build(e.DS.Data, e.family(), c2lsh.Params{M: m, Threshold: thr, Budget: budget, Seed: e.Seed})
		if err != nil {
			return nil, err
		}
		return &eval.Runner{
			MethodName: method, ConfigDesc: config,
			IndexBytes: ix.Bytes(), IndexTime: ix.BuildTime(),
			SearchFunc: ix.Search,
		}, nil
	case "QALSH":
		var m, thr, budget int
		if _, err := fmt.Sscanf(config, "m=%d l=%d B=%d", &m, &thr, &budget); err != nil {
			return nil, fmt.Errorf("experiments: bad QALSH config %q: %w", config, err)
		}
		ix, err := qalsh.Build(e.DS.Data, e.DS.Dim, qalsh.Params{
			M: m, Threshold: thr, W: e.tunedW(), Budget: budget, Seed: e.Seed,
		})
		if err != nil {
			return nil, err
		}
		return &eval.Runner{
			MethodName: method, ConfigDesc: config,
			IndexBytes: ix.Bytes(), IndexTime: ix.BuildTime(),
			SearchFunc: ix.Search,
		}, nil
	case "SRS":
		var dp, budget int
		if _, err := fmt.Sscanf(config, "d'=%d B=%d", &dp, &budget); err != nil {
			return nil, fmt.Errorf("experiments: bad SRS config %q: %w", config, err)
		}
		ix, err := srs.Build(e.DS.Data, e.DS.Dim, srs.Params{ProjDim: dp, Budget: budget, Seed: e.Seed})
		if err != nil {
			return nil, err
		}
		return &eval.Runner{
			MethodName: method, ConfigDesc: config,
			IndexBytes: ix.Bytes(), IndexTime: ix.BuildTime(),
			SearchFunc: ix.Search,
		}, nil
	}
	return nil, fmt.Errorf("experiments: unknown method %q", method)
}
