// Package rng centralizes random-number generation so that every index,
// dataset, and experiment in the repository is reproducible from a single
// integer seed. It wraps math/rand/v2's PCG generator.
package rng

import (
	"math/rand/v2"
)

// RNG is a seeded source of the random primitives used across the
// repository: Gaussian entries for projection vectors and rotation
// matrices, uniform offsets for p-stable buckets, and permutations.
type RNG struct {
	r *rand.Rand
}

// New returns an RNG deterministically seeded by seed.
func New(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Split derives a new independent RNG from this one. Distinct calls yield
// distinct streams; the derived stream depends only on the parent's state,
// preserving reproducibility.
func (g *RNG) Split() *RNG {
	return &RNG{r: rand.New(rand.NewPCG(g.r.Uint64(), g.r.Uint64()))}
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// IntN returns a uniform value in [0,n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// NormFloat64 returns a standard Gaussian sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Gaussian32 fills dst with i.i.d. N(0,1) samples.
func (g *RNG) Gaussian32(dst []float32) {
	for i := range dst {
		dst[i] = float32(g.r.NormFloat64())
	}
}

// GaussianVector returns a fresh d-dimensional vector of i.i.d. N(0,1)
// samples.
func (g *RNG) GaussianVector(d int) []float32 {
	v := make([]float32, d)
	g.Gaussian32(v)
	return v
}

// UniformVector returns a fresh d-dimensional vector with entries uniform
// in [lo, hi).
func (g *RNG) UniformVector(d int, lo, hi float64) []float32 {
	v := make([]float32, d)
	for i := range v {
		v[i] = float32(lo + (hi-lo)*g.r.Float64())
	}
	return v
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes a slice of ints in place.
func (g *RNG) Shuffle(xs []int) {
	g.r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
