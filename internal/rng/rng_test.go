package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := true
	a = New(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSplitIndependence(t *testing.T) {
	g := New(7)
	s1 := g.Split()
	s2 := g.Split()
	equal := 0
	for i := 0; i < 50; i++ {
		if s1.Uint64() == s2.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("split streams correlated: %d equal of 50", equal)
	}
	// Splits are reproducible from the parent seed.
	h := New(7)
	h1 := h.Split()
	s1b := New(7).Split()
	_ = h1
	for i := 0; i < 20; i++ {
		if s1b.Uint64() != New(7).Split().Uint64() {
			break // streams advance; just ensure no panic
		}
		break
	}
}

func TestGaussianMoments(t *testing.T) {
	g := New(11)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := g.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %v", variance)
	}
}

func TestGaussianVectorAndFill(t *testing.T) {
	g := New(13)
	v := g.GaussianVector(64)
	if len(v) != 64 {
		t.Fatal("wrong length")
	}
	allZero := true
	for _, x := range v {
		if x != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("all zeros")
	}
	buf := make([]float32, 32)
	g.Gaussian32(buf)
	if buf[0] == 0 && buf[1] == 0 && buf[2] == 0 {
		t.Fatal("fill produced zeros")
	}
}

func TestUniformVectorRange(t *testing.T) {
	g := New(17)
	v := g.UniformVector(1000, -3, 5)
	var lo, hi float32 = 100, -100
	for _, x := range v {
		if x < -3 || x >= 5 {
			t.Fatalf("value %v out of [-3, 5)", x)
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo > -1 || hi < 3 {
		t.Fatalf("range not covered: [%v, %v]", lo, hi)
	}
}

func TestIntNAndFloat64(t *testing.T) {
	g := New(19)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		counts[g.IntN(5)]++
	}
	for b, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("bucket %d count %d not uniform-ish", b, c)
		}
	}
	for i := 0; i < 100; i++ {
		if f := g.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestPermAndShuffle(t *testing.T) {
	g := New(23)
	p := g.Perm(20)
	seen := make([]bool, 20)
	for _, x := range p {
		if x < 0 || x >= 20 || seen[x] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[x] = true
	}
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	orig := append([]int(nil), xs...)
	g.Shuffle(xs)
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 36 {
		t.Fatalf("shuffle changed elements: %v vs %v", xs, orig)
	}
}
