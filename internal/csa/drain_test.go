package csa

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"lccs/internal/hstring"
)

// TestDrainEmitsEveryIDOnce: fully draining a search must yield every
// string id exactly once, in non-increasing LCCS order.
func TestDrainEmitsEveryIDOnce(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 0xd5a1))
		n := 1 + r.IntN(80)
		m := 1 + r.IntN(10)
		strs := randStrings(r, n, m, 3)
		c := New(strs)
		s := c.NewSearcher()
		q := randStrings(r, 1, m, 3)[0]
		s.Begin(q)
		seen := make([]bool, n)
		prev := m + 1
		count := 0
		for {
			res, ok := s.Next()
			if !ok {
				break
			}
			if seen[res.ID] {
				return false
			}
			seen[res.ID] = true
			if res.Length > prev {
				return false
			}
			prev = res.Length
			if res.Length != hstring.LCCS(strs[res.ID], q) {
				return false
			}
			count++
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestProbeWithIdenticalQuery: probing with an unmodified copy of the
// query must not corrupt the result stream (degenerate perturbation).
func TestProbeWithIdenticalQuery(t *testing.T) {
	r := rand.New(rand.NewPCG(91, 92))
	strs := randStrings(r, 50, 8, 3)
	c := New(strs)
	s := c.NewSearcher()
	q := randStrings(r, 1, 8, 3)[0]
	s.Begin(q)
	s.Probe(q, nil, nil) // no modified positions
	seen := map[int]bool{}
	for {
		res, ok := s.Next()
		if !ok {
			break
		}
		if seen[res.ID] {
			t.Fatal("duplicate emission after no-op probe")
		}
		seen[res.ID] = true
	}
	if len(seen) != 50 {
		t.Fatalf("emitted %d of 50", len(seen))
	}
}

// TestSearchAfterProbeReset: a new Begin must fully reset probe state.
func TestSearchAfterProbeReset(t *testing.T) {
	r := rand.New(rand.NewPCG(93, 94))
	strs := randStrings(r, 60, 8, 3)
	c := New(strs)
	s := c.NewSearcher()

	q1 := randStrings(r, 1, 8, 3)[0]
	pq := append([]int32(nil), q1...)
	pq[2]++
	s.Begin(q1)
	s.Probe(pq, []int{2}, nil)
	s.Next()

	// Fresh query: results must match a fresh searcher's exactly.
	q2 := randStrings(r, 1, 8, 3)[0]
	a := s.Search(q2, 10)
	b := c.NewSearcher().Search(q2, 10)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
