// Package csa implements the Circular Shift Array of the paper (§3.2): a
// suffix-array-inspired index over n equal-length strings that answers
// k-Longest-Circular-Co-Substring (k-LCCS) queries.
//
// The index consists of m sorted orders — one per circular shift — plus m
// "next links" that map a string's rank at shift i to its rank at shift
// (i+1) mod m (Algorithm 1). A query performs one full binary search at
// shift 0 and then narrows every subsequent shift's search range through
// the next links (Lemma 3.1 / Corollary 3.2), finally merging the 2m
// sorted neighborhoods with a priority queue to emit candidates in
// non-increasing LCCS-length order (Algorithm 2).
package csa

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"lccs/internal/pqueue"
)

// CSA is an immutable Circular Shift Array over n strings of length m.
// Build one with New; run queries through a Searcher.
//
// All three index structures are flat contiguous blocks rather than
// slices of slices: the query hot path walks sorted orders and next
// links for every shift, and a flat layout turns those lookups into
// strided reads of one block instead of a pointer chase per shift.
type CSA struct {
	n, m int
	// data holds the n strings row-major: symbol j of string id is
	// data[id*m + j].
	data []int32
	// sorted holds the m sorted orders back to back: sorted[i*n + rank]
	// is the id of the rank-th smallest string when strings are compared
	// circularly starting at position i (the paper's I_{i+1} over
	// shift(T, i)).
	sorted []int32
	// next holds the m next-link arrays back to back: next[i*n + rank]
	// is the rank, in shift (i+1) mod m's order, of the string at
	// sorted[i*n + rank] (the paper's N_{i+1}).
	next []int32
}

// sortedRow returns the sorted order of shift i as a view into the flat
// block.
func (c *CSA) sortedRow(i int) []int32 {
	return c.sorted[i*c.n : (i+1)*c.n : (i+1)*c.n]
}

// nextRow returns the next-link array of shift i as a view into the
// flat block.
func (c *CSA) nextRow(i int) []int32 {
	return c.next[i*c.n : (i+1)*c.n : (i+1)*c.n]
}

// New builds a CSA over the given equal-length strings (Algorithm 1).
// It runs the m sorts on all available CPUs. New panics if strings is
// empty or lengths differ; those are programming errors in callers.
func New(strings [][]int32) *CSA {
	n := len(strings)
	if n == 0 {
		panic("csa: no strings")
	}
	m := len(strings[0])
	if m == 0 {
		panic("csa: empty strings")
	}
	data := make([]int32, n*m)
	for id, s := range strings {
		if len(s) != m {
			panic(fmt.Sprintf("csa: string %d has length %d, want %d", id, len(s), m))
		}
		copy(data[id*m:], s)
	}
	return NewFromFlat(data, n, m)
}

// NewFromFlat builds a CSA from a row-major n×m symbol block. The block is
// retained by the CSA and must not be modified afterwards.
func NewFromFlat(data []int32, n, m int) *CSA {
	if len(data) != n*m {
		panic("csa: flat data size mismatch")
	}
	c := &CSA{n: n, m: m, data: data}
	c.sorted = make([]int32, m*n)

	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	shifts := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range shifts {
				c.sortShift(i)
			}
		}()
	}
	for i := 0; i < m; i++ {
		shifts <- i
	}
	close(shifts)
	wg.Wait()

	// Next links: next[i·n + rank(id at shift i)] = rank(id at shift i+1).
	c.next = make([]int32, m*n)
	pos := make([]int32, n)
	for i := 0; i < m; i++ {
		ni := (i + 1) % m
		for r, id := range c.sortedRow(ni) {
			pos[id] = int32(r)
		}
		links := c.nextRow(i)
		for r, id := range c.sortedRow(i) {
			links[r] = pos[id]
		}
	}
	return c
}

// sortShift fills shift i's region of the flat sorted block with string
// ids ordered by circular comparison from shift i, ties broken by id so
// the order is deterministic. Regions of distinct shifts are disjoint,
// so the m sorts run in parallel without coordination.
func (c *CSA) sortShift(i int) {
	ids := c.sortedRow(i)
	for j := range ids {
		ids[j] = int32(j)
	}
	sort.Slice(ids, func(a, b int) bool {
		cmp := c.compareStrings(ids[a], ids[b], i)
		if cmp != 0 {
			return cmp < 0
		}
		return ids[a] < ids[b]
	})
}

// compareStrings lexicographically compares strings a and b circularly
// from position shift.
func (c *CSA) compareStrings(a, b int32, shift int) int {
	m := c.m
	ra := c.data[int(a)*m : int(a)*m+m]
	rb := c.data[int(b)*m : int(b)*m+m]
	p := shift
	for i := 0; i < m; i++ {
		av, bv := ra[p], rb[p]
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
		p++
		if p >= m {
			p = 0
		}
	}
	return 0
}

// compareToQuery compares the data string id (circularly from shift)
// against the query string q (circularly from shift).
func (c *CSA) compareToQuery(id int32, q []int32, shift int) int {
	m := c.m
	row := c.data[int(id)*m : int(id)*m+m]
	p := shift
	for i := 0; i < m; i++ {
		av, bv := row[p], q[p]
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
		p++
		if p >= m {
			p = 0
		}
	}
	return 0
}

// lcpWithQuery returns the length of the longest common prefix of the data
// string id and the query q, both read circularly from position shift.
// The result is capped at m.
func (c *CSA) lcpWithQuery(id int32, q []int32, shift int) int32 {
	m := c.m
	row := c.data[int(id)*m : int(id)*m+m]
	p := shift
	for i := 0; i < m; i++ {
		if row[p] != q[p] {
			return int32(i)
		}
		p++
		if p >= m {
			p = 0
		}
	}
	return int32(m)
}

// N returns the number of indexed strings.
func (c *CSA) N() int { return c.n }

// M returns the string length (the number of circular shifts).
func (c *CSA) M() int { return c.m }

// String returns a copy of the indexed string with the given id.
func (c *CSA) String(id int) []int32 {
	out := make([]int32, c.m)
	copy(out, c.data[id*c.m:(id+1)*c.m])
	return out
}

// Bytes returns the approximate memory footprint of the index in bytes:
// the symbol block plus the m sorted orders and m next-link arrays.
func (c *CSA) Bytes() int64 {
	return int64(c.n) * int64(c.m) * 4 * 3
}

// Result is one k-LCCS answer: a string id and its LCCS length with the
// query (the longest circular co-substring length, in [0, m]).
type Result struct {
	ID     int
	Length int
}

// entry is a frontier element of the 2m-way merge: the string at rank pos
// in sorted[shift] matches probe query #probe with an LCP of len symbols
// from that shift; dir is the direction this frontier advances in.
type entry struct {
	len   int32
	pos   int32
	shift int32
	dir   int32
	probe int32
}

// bounds records the outcome of the binary search at one shift, kept both
// for the next-link narrowing and for the multi-probe skip rule (§4.2).
type bounds struct {
	posL, posU int32
	lenL, lenU int32
	// validL/validU report whether the corresponding bound satisfies the
	// ordering precondition of Lemma 3.1 (T_l ⪯ Q, resp. Q ≺ T_u); a
	// clamped bound at the edge of the array does not.
	validL, validU bool
}

// Searcher runs k-LCCS queries against one CSA. It owns reusable scratch
// (visited stamps, per-shift bounds, the merge heap, the flat query
// buffer) and is therefore not safe for concurrent use; create one
// Searcher per goroutine — or, as the core index does, keep Searchers in
// a sync.Pool. At steady state (buffers grown to their working size) a
// full Begin/Next/SearchInto cycle performs no heap allocations.
type Searcher struct {
	c       *CSA
	heap    *pqueue.Heap[entry]
	bounds  []bounds
	visited []int32
	gen     int32
	// qbuf holds one query string per probe issued so far in the current
	// search, back to back: probe p occupies qbuf[p*m : (p+1)*m] (probe 0
	// is the unperturbed query). The buffer is reused across searches.
	qbuf []int32
	// stats
	comparisons int
}

// query returns probe p's query string as a view into the flat buffer.
func (s *Searcher) query(p int32) []int32 {
	m := s.c.m
	return s.qbuf[int(p)*m : (int(p)+1)*m]
}

// pushQuery copies q into the flat query buffer as the next probe and
// returns its index. Steady state reuses the buffer's capacity.
func (s *Searcher) pushQuery(q []int32) int32 {
	s.qbuf = append(s.qbuf, q...)
	return int32(len(s.qbuf)/s.c.m - 1)
}

// NewSearcher returns a fresh Searcher for c.
func (c *CSA) NewSearcher() *Searcher {
	return &Searcher{
		c: c,
		heap: pqueue.NewWithCapacity(2*c.m+16, func(a, b entry) bool {
			if a.len != b.len {
				return a.len > b.len
			}
			// Deterministic tie-break keeps runs reproducible.
			if a.shift != b.shift {
				return a.shift < b.shift
			}
			return a.dir < b.dir
		}),
		bounds:  make([]bounds, c.m),
		visited: make([]int32, c.n),
		gen:     0,
	}
}

// reset prepares the reusable scratch for a fresh search: empty heap
// and query buffer, a new visited generation (re-stamping the visited
// array only on the rare int32 wrap), zeroed counters.
func (s *Searcher) reset() {
	s.heap.Reset()
	if s.gen == math.MaxInt32 {
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.gen = 0
	}
	s.gen++
	s.comparisons = 0
	s.qbuf = s.qbuf[:0]
}

// searchRange binary-searches sorted[shift] in rank range [lo, hi]
// (inclusive) for the query q read circularly from shift. It returns the
// clamped lower/upper bound ranks, their LCP lengths with q, and whether
// each bound satisfies its ordering precondition.
func (s *Searcher) searchRange(q []int32, shift, lo, hi int) bounds {
	c := s.c
	order := c.sortedRow(shift)
	// Find the first rank in [lo, hi+1) whose string compares strictly
	// greater than q; strings equal to q count as ⪯ q.
	first := lo + sort.Search(hi-lo+1, func(i int) bool {
		s.comparisons++
		return c.compareToQuery(order[lo+i], q, shift) > 0
	})
	var b bounds
	// posL is the last rank with T ⪯ q. If none in range, clamp to lo.
	if first > lo {
		b.posL = int32(first - 1)
		b.validL = true
	} else {
		b.posL = int32(lo)
		b.validL = false
	}
	// posU is the first rank with q ≺ T. If none in range, clamp to hi.
	if first <= hi {
		b.posU = int32(first)
		b.validU = true
	} else {
		b.posU = int32(hi)
		b.validU = false
	}
	b.lenL = c.lcpWithQuery(order[b.posL], q, shift)
	b.lenU = c.lcpWithQuery(order[b.posU], q, shift)
	return b
}

// Begin starts a new k-LCCS search for query q (Algorithm 2, lines 1–11):
// it computes the per-shift bounds — a full binary search at shift 0, then
// next-link-narrowed searches — and seeds the merge heap. Candidates are
// then pulled with Next. q must have length m; Begin copies it.
func (s *Searcher) Begin(q []int32) {
	c := s.c
	if len(q) != c.m {
		panic(fmt.Sprintf("csa: query length %d, want %d", len(q), c.m))
	}
	s.reset()
	qc := s.query(s.pushQuery(q))

	for i := 0; i < c.m; i++ {
		var lo, hi = 0, c.n - 1
		if i > 0 {
			prev := s.bounds[i-1]
			// Corollary 3.2, applied per side: a bound whose LCP
			// with the query is ≥ 1 shifts into a valid bound for
			// the next shift's search range.
			links := c.nextRow(i - 1)
			if prev.validL && prev.lenL >= 1 {
				lo = int(links[prev.posL])
			}
			if prev.validU && prev.lenU >= 1 {
				hi = int(links[prev.posU])
			}
			if lo > hi {
				// Defensive: cannot happen for a correctly
				// ordered index, but a full search is always
				// safe.
				lo, hi = 0, c.n-1
			}
		}
		b := s.searchRange(qc, i, lo, hi)
		s.bounds[i] = b
		s.heap.Push(entry{len: b.lenL, pos: b.posL, shift: int32(i), dir: -1, probe: 0})
		s.heap.Push(entry{len: b.lenU, pos: b.posU, shift: int32(i), dir: +1, probe: 0})
	}
}

// BeginSimple is the unoptimized variant of Begin used as an ablation
// baseline: every shift runs a full-range binary search (the "simple
// method" of §3.2 with O(m(m + log n)) query time), with no next-link
// narrowing.
func (s *Searcher) BeginSimple(q []int32) {
	c := s.c
	if len(q) != c.m {
		panic(fmt.Sprintf("csa: query length %d, want %d", len(q), c.m))
	}
	s.reset()
	qc := s.query(s.pushQuery(q))

	for i := 0; i < c.m; i++ {
		b := s.searchRange(qc, i, 0, c.n-1)
		s.bounds[i] = b
		s.heap.Push(entry{len: b.lenL, pos: b.posL, shift: int32(i), dir: -1, probe: 0})
		s.heap.Push(entry{len: b.lenU, pos: b.posU, shift: int32(i), dir: +1, probe: 0})
	}
}

// Next pops the next distinct candidate in non-increasing LCCS-length
// order (Algorithm 2, lines 12–15). ok is false when the frontier is
// exhausted. The returned Length is the LCP at the emitting shift, which
// for the first emission of an id equals its LCCS length with the query.
func (s *Searcher) Next() (Result, bool) {
	c := s.c
	for s.heap.Len() > 0 {
		e := s.heap.Pop()
		order := c.sortedRow(int(e.shift))
		id := order[e.pos]
		// Advance this frontier before the dedup check so the lane
		// keeps producing candidates.
		npos := e.pos + e.dir
		if npos >= 0 && npos < int32(c.n) {
			q := s.query(e.probe)
			nid := order[npos]
			s.heap.Push(entry{
				len:   c.lcpWithQuery(nid, q, int(e.shift)),
				pos:   npos,
				shift: e.shift,
				dir:   e.dir,
				probe: e.probe,
			})
		}
		if s.visited[id] == s.gen {
			continue
		}
		s.visited[id] = s.gen
		return Result{ID: int(id), Length: int(e.len)}, true
	}
	return Result{}, false
}

// Search answers a k-LCCS query end to end: the k distinct strings with
// the longest LCCS against q, in non-increasing length order. Fewer than k
// results are returned only when k > n.
func (s *Searcher) Search(q []int32, k int) []Result {
	return s.SearchInto(q, k, make([]Result, 0, k))
}

// SearchInto is Search appending into dst (reset to dst[:0] first): the
// zero-allocation path for callers that reuse a result buffer across
// queries.
func (s *Searcher) SearchInto(q []int32, k int, dst []Result) []Result {
	s.Begin(q)
	return s.drainInto(k, dst[:0])
}

// SearchSimple is Search without the next-link narrowing (ablation).
func (s *Searcher) SearchSimple(q []int32, k int) []Result {
	s.BeginSimple(q)
	return s.drainInto(k, make([]Result, 0, k))
}

func (s *Searcher) drainInto(k int, out []Result) []Result {
	for len(out) < k {
		r, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// Comparisons returns the number of string comparisons performed by the
// bounds phase of the most recent Begin/BeginSimple (a proxy for binary
// search work, used by ablation benchmarks).
func (s *Searcher) Comparisons() int { return s.comparisons }

// AffectedShifts appends to dst the shifts whose binary-search outcome can
// change when the query is modified at the given positions, per the
// skip-unaffected-positions rule of §4.2: shift i is affected iff some
// modified position p lies within the inspected window
// (p − i) mod m ≤ max(lenL_i, lenU_i). Positions must be in [0, m).
func (s *Searcher) AffectedShifts(dst []int, modified []int) []int {
	m := s.c.m
	for i := 0; i < m; i++ {
		maxLen := s.bounds[i].lenL
		if s.bounds[i].lenU > maxLen {
			maxLen = s.bounds[i].lenU
		}
		for _, p := range modified {
			d := p - i
			if d < 0 {
				d += m
			}
			if int32(d) <= maxLen {
				dst = append(dst, i)
				break
			}
		}
	}
	return dst
}

// Probe injects a perturbed query into the ongoing search (MP-LCCS-LSH,
// §4.2): pq is the full perturbed hash string and modified lists the
// positions where it differs from the original query. Only the affected
// shifts are re-searched (full-range binary searches); their frontiers are
// pushed into the shared merge heap so subsequent Next calls interleave
// candidates from all probes issued so far, deduplicated against earlier
// emissions. scratch is an optional reusable buffer for the affected-shift
// list.
func (s *Searcher) Probe(pq []int32, modified []int, scratch []int) []int {
	c := s.c
	if len(pq) != c.m {
		panic(fmt.Sprintf("csa: probe length %d, want %d", len(pq), c.m))
	}
	probe := s.pushQuery(pq)
	qc := s.query(probe)

	scratch = s.AffectedShifts(scratch[:0], modified)
	for _, i := range scratch {
		b := s.searchRange(qc, i, 0, c.n-1)
		s.heap.Push(entry{len: b.lenL, pos: b.posL, shift: int32(i), dir: -1, probe: probe})
		s.heap.Push(entry{len: b.lenU, pos: b.posU, shift: int32(i), dir: +1, probe: probe})
	}
	return scratch
}

// ProbeFull is Probe without the skip-unaffected-positions optimization:
// every shift is re-searched. Used by the ablation benchmarks.
func (s *Searcher) ProbeFull(pq []int32) {
	c := s.c
	probe := s.pushQuery(pq)
	qc := s.query(probe)
	for i := 0; i < c.m; i++ {
		b := s.searchRange(qc, i, 0, c.n-1)
		s.heap.Push(entry{len: b.lenL, pos: b.posL, shift: int32(i), dir: -1, probe: probe})
		s.heap.Push(entry{len: b.lenU, pos: b.posU, shift: int32(i), dir: +1, probe: probe})
	}
}
