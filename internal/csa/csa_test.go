package csa

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"lccs/internal/hstring"
)

// paperStrings are the running example of Figures 1 and 2: o1, o2, o3 and
// the query q, with m = 8.
var (
	paperO1 = []int32{1, 2, 4, 5, 6, 6, 7, 8}
	paperO2 = []int32{5, 2, 2, 4, 3, 6, 7, 8}
	paperO3 = []int32{3, 1, 3, 5, 5, 6, 4, 9}
	paperQ  = []int32{1, 2, 3, 4, 5, 6, 7, 8}
)

// TestBuildPaperExample reproduces Example 3.2's index: in the paper's
// 1-based notation I1 = [1,3,2] and N1 = [3,1,2]; 0-based, sorted[0] =
// [0,2,1] and next[0] = [2,0,1].
func TestBuildPaperExample(t *testing.T) {
	c := New([][]int32{paperO1, paperO2, paperO3})
	if got, want := c.sortedRow(0), []int32{0, 2, 1}; !eqInt32(got, want) {
		t.Errorf("sorted[0] = %v, want %v", got, want)
	}
	if got, want := c.nextRow(0), []int32{2, 0, 1}; !eqInt32(got, want) {
		t.Errorf("next[0] = %v, want %v", got, want)
	}
}

// TestSearchPaperExample reproduces the query of Example 3.2: the 1-LCCS of
// q is o1 with |LCCS| = 5.
func TestSearchPaperExample(t *testing.T) {
	c := New([][]int32{paperO1, paperO2, paperO3})
	s := c.NewSearcher()
	res := s.Search(paperQ, 3)
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	if res[0].ID != 0 || res[0].Length != 5 {
		t.Errorf("top result = %+v, want ID 0 length 5", res[0])
	}
	if res[1].ID != 1 || res[1].Length != 3 {
		t.Errorf("second result = %+v, want ID 1 length 3", res[1])
	}
	if res[2].ID != 2 || res[2].Length != 2 {
		t.Errorf("third result = %+v, want ID 2 length 2", res[2])
	}
}

func TestNextLinksConsistency(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 13))
	c := New(randStrings(r, 50, 6, 4))
	for i := 0; i < c.m; i++ {
		ni := (i + 1) % c.m
		for rank, id := range c.sortedRow(i) {
			got := c.sortedRow(ni)[c.nextRow(i)[rank]]
			if got != id {
				t.Fatalf("next link broken at shift %d rank %d: %d != %d", i, rank, got, id)
			}
		}
	}
}

func TestSortedOrdersAreSorted(t *testing.T) {
	r := rand.New(rand.NewPCG(17, 19))
	c := New(randStrings(r, 80, 5, 3))
	for i := 0; i < c.m; i++ {
		for rank := 1; rank < c.n; rank++ {
			a, b := c.sortedRow(i)[rank-1], c.sortedRow(i)[rank]
			if c.compareStrings(a, b, i) > 0 {
				t.Fatalf("sorted[%d] out of order at rank %d", i, rank)
			}
		}
	}
}

// TestSearchMatchesBruteForce is the central correctness property: the CSA
// search returns the same LCCS lengths as the brute-force reference, and
// the returned set achieves the k best lengths.
func TestSearchMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, seed^0xabcdef))
		n := 2 + r.IntN(60)
		m := 2 + r.IntN(12)
		alphabet := int32(2 + r.IntN(4))
		strs := randStrings(r, n, m, alphabet)
		c := New(strs)
		s := c.NewSearcher()
		q := randStrings(r, 1, m, alphabet)[0]
		k := 1 + r.IntN(n)
		res := s.Search(q, k)
		if len(res) != k {
			return false
		}
		// Reference lengths.
		want := make([]int, n)
		for id, str := range strs {
			want[id] = hstring.LCCS(str, q)
		}
		// Each reported length must match the reference for that id,
		// and lengths must be non-increasing.
		for i, rr := range res {
			if want[rr.ID] != rr.Length {
				return false
			}
			if i > 0 && res[i-1].Length < rr.Length {
				return false
			}
		}
		// The k-th best reference length must not exceed the smallest
		// returned length (the set is a valid k-LCCS answer set).
		sorted := append([]int(nil), want...)
		sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
		return res[k-1].Length >= sorted[k-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestSearchSimpleAgreesWithOptimized: the next-link narrowing must not
// change results relative to m independent full binary searches.
func TestSearchSimpleAgreesWithOptimized(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, seed+99))
		n := 2 + r.IntN(50)
		m := 2 + r.IntN(10)
		strs := randStrings(r, n, m, 3)
		c := New(strs)
		s := c.NewSearcher()
		q := randStrings(r, 1, m, 3)[0]
		k := 1 + r.IntN(n)
		a := s.Search(q, k)
		b := s.SearchSimple(q, k)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			// Lengths must agree; ids may differ within ties.
			if a[i].Length != b[i].Length {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchExactMatchFound(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	strs := randStrings(r, 40, 8, 4)
	c := New(strs)
	s := c.NewSearcher()
	for id := 0; id < 40; id += 7 {
		res := s.Search(strs[id], 1)
		if len(res) != 1 || res[0].Length != 8 {
			t.Fatalf("query = data[%d]: got %+v, want full-length match", id, res)
		}
		if hstring.LCCS(strs[res[0].ID], strs[id]) != 8 {
			t.Fatalf("returned id %d is not a full match", res[0].ID)
		}
	}
}

func TestSearcherReuse(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	strs := randStrings(r, 30, 6, 3)
	c := New(strs)
	s := c.NewSearcher()
	for trial := 0; trial < 20; trial++ {
		q := randStrings(r, 1, 6, 3)[0]
		res := s.Search(q, 5)
		if len(res) != 5 {
			t.Fatalf("trial %d: got %d results", trial, len(res))
		}
		seen := map[int]bool{}
		for _, rr := range res {
			if seen[rr.ID] {
				t.Fatalf("trial %d: duplicate id %d", trial, rr.ID)
			}
			seen[rr.ID] = true
			if want := hstring.LCCS(strs[rr.ID], q); want != rr.Length {
				t.Fatalf("trial %d: id %d length %d, want %d", trial, rr.ID, rr.Length, want)
			}
		}
	}
}

func TestSearchKLargerThanN(t *testing.T) {
	r := rand.New(rand.NewPCG(21, 22))
	strs := randStrings(r, 10, 5, 3)
	c := New(strs)
	s := c.NewSearcher()
	res := s.Search(strs[0], 25)
	if len(res) != 10 {
		t.Fatalf("got %d results, want all 10", len(res))
	}
}

func TestSingleString(t *testing.T) {
	c := New([][]int32{{5, 4, 3}})
	s := c.NewSearcher()
	res := s.Search([]int32{5, 4, 9}, 1)
	if len(res) != 1 || res[0].ID != 0 || res[0].Length != 2 {
		t.Fatalf("got %+v, want ID 0 length 2", res)
	}
}

func TestDuplicateStrings(t *testing.T) {
	s1 := []int32{1, 2, 3, 4}
	c := New([][]int32{s1, s1, s1, {9, 9, 9, 9}})
	s := c.NewSearcher()
	res := s.Search(s1, 3)
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	for _, rr := range res[:3] {
		if rr.ID == 3 {
			t.Fatalf("far string ranked in top 3: %+v", res)
		}
		if rr.Length != 4 {
			t.Fatalf("duplicate string length %d, want 4", rr.Length)
		}
	}
}

// TestProbeMatchesFreshSearch: probing with a perturbed query must surface
// the same new candidates as a fresh search on that query would, because
// the skip rule is exact (unaffected shifts provably produce identical
// bounds).
func TestProbeMatchesFreshSearch(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, seed*5+3))
		n := 5 + r.IntN(40)
		m := 4 + r.IntN(8)
		strs := randStrings(r, n, m, 3)
		c := New(strs)

		q := randStrings(r, 1, m, 3)[0]
		// Perturb 1-2 positions.
		pq := append([]int32(nil), q...)
		mods := []int{r.IntN(m)}
		pq[mods[0]] = (pq[mods[0]] + 1) % 3
		if r.IntN(2) == 0 {
			p2 := (mods[0] + 1 + r.IntN(m-1)) % m
			pq[p2] = (pq[p2] + 2) % 3
			mods = append(mods, p2)
		}

		// Search via Begin + Probe, draining everything.
		s := c.NewSearcher()
		s.Begin(q)
		s.Probe(pq, mods, nil)
		got := map[int]bool{}
		for {
			rr, ok := s.Next()
			if !ok {
				break
			}
			got[rr.ID] = true
		}
		// All ids must eventually be emitted (the union of both
		// probing sequences covers everything reachable).
		return len(got) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestProbeFindsPerturbedMatch: a data string that exactly equals the
// perturbed query must surface with a full-length match once probed.
func TestProbeFindsPerturbedMatch(t *testing.T) {
	m := 8
	q := []int32{1, 2, 3, 4, 5, 6, 7, 8}
	pq := append([]int32(nil), q...)
	pq[3] = 99
	strs := [][]int32{
		{9, 9, 9, 9, 9, 9, 9, 9},
		append([]int32(nil), pq...), // equals perturbed query
		{1, 1, 1, 1, 1, 1, 1, 1},
	}
	c := New(strs)
	s := c.NewSearcher()
	s.Begin(q)
	s.Probe(pq, []int{3}, nil)
	best := -1
	bestLen := -1
	for {
		rr, ok := s.Next()
		if !ok {
			break
		}
		if rr.Length > bestLen {
			best, bestLen = rr.ID, rr.Length
		}
	}
	if best != 1 || bestLen != m {
		t.Fatalf("best = id %d len %d, want id 1 len %d", best, bestLen, m)
	}
}

func TestAffectedShiftsWindow(t *testing.T) {
	// With all-distinct symbols, every LCP is short, so only shifts near
	// the modified position are affected.
	r := rand.New(rand.NewPCG(31, 37))
	n, m := 64, 16
	strs := make([][]int32, n)
	for i := range strs {
		s := make([]int32, m)
		for j := range s {
			s[j] = r.Int32N(1 << 20) // effectively unique symbols
		}
		strs[i] = s
	}
	c := New(strs)
	s := c.NewSearcher()
	q := strs[0] // exact match: shift windows cover everything for this id
	s.Begin(q)
	aff := s.AffectedShifts(nil, []int{5})
	// Query equals a data string, so every shift has LCP m and all
	// shifts are affected.
	if len(aff) != m {
		t.Fatalf("exact-match query: %d affected shifts, want %d", len(aff), m)
	}

	q2 := make([]int32, m)
	for j := range q2 {
		q2[j] = r.Int32N(1 << 20)
	}
	s.Begin(q2)
	aff = s.AffectedShifts(nil, []int{5})
	// Random query vs unique symbols: LCPs are ~0, so only a few
	// shifts at or just before position 5 are affected.
	if len(aff) == 0 || len(aff) > m/2 {
		t.Fatalf("random query: %d affected shifts, want small nonzero", len(aff))
	}
	for _, i := range aff {
		d := (5 - i + m) % m
		maxLen := s.bounds[i].lenL
		if s.bounds[i].lenU > maxLen {
			maxLen = s.bounds[i].lenU
		}
		if int32(d) > maxLen {
			t.Fatalf("shift %d marked affected beyond its window", i)
		}
	}
}

func TestCSAAccessors(t *testing.T) {
	c := New([][]int32{paperO1, paperO2, paperO3})
	if c.N() != 3 || c.M() != 8 {
		t.Fatalf("N,M = %d,%d", c.N(), c.M())
	}
	if !eqInt32(c.String(1), paperO2) {
		t.Fatalf("String(1) = %v", c.String(1))
	}
	if c.Bytes() != 3*8*4*3 {
		t.Fatalf("Bytes = %d", c.Bytes())
	}
}

func TestComparisonsCounted(t *testing.T) {
	r := rand.New(rand.NewPCG(41, 43))
	strs := randStrings(r, 200, 16, 4)
	c := New(strs)
	s := c.NewSearcher()
	q := randStrings(r, 1, 16, 4)[0]
	s.Begin(q)
	opt := s.Comparisons()
	s.BeginSimple(q)
	simple := s.Comparisons()
	if opt <= 0 || simple <= 0 {
		t.Fatal("comparison counters not working")
	}
	if opt >= simple {
		t.Fatalf("optimized search used %d comparisons, simple %d; narrowing should reduce work", opt, simple)
	}
}

func randStrings(r *rand.Rand, n, m int, alphabet int32) [][]int32 {
	out := make([][]int32, n)
	for i := range out {
		s := make([]int32, m)
		for j := range s {
			s[j] = r.Int32N(alphabet)
		}
		out[i] = s
	}
	return out
}

func eqInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
