package csa

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(51, 52))
	strs := randStrings(r, 120, 9, 5)
	c := New(strs)
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != c.N() || got.M() != c.M() {
		t.Fatalf("shape: %dx%d", got.N(), got.M())
	}
	// Same query results.
	s1, s2 := c.NewSearcher(), got.NewSearcher()
	for trial := 0; trial < 20; trial++ {
		q := randStrings(r, 1, 9, 5)[0]
		a := s1.Search(q, 7)
		b := s2.Search(q, 7)
		if len(a) != len(b) {
			t.Fatal("result count differs")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("result %d differs: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("garbage!"))); err == nil {
		t.Fatal("bad magic should fail")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	r := rand.New(rand.NewPCG(53, 54))
	c := New(randStrings(r, 40, 6, 4))
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	for _, cut := range []int{9, len(blob) / 3, len(blob) - 5} {
		if _, err := Decode(bytes.NewReader(blob[:cut])); err == nil {
			t.Fatalf("truncation at %d should fail", cut)
		}
	}
}

func TestDecodeRejectsCorruptedLinks(t *testing.T) {
	r := rand.New(rand.NewPCG(55, 56))
	c := New(randStrings(r, 30, 5, 4))
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	// Flip a byte inside the rank/link region (beyond header + symbol
	// block); validation must catch the inconsistency.
	off := 8 + 8 + 30*5*4 + 10
	corrupted := append([]byte(nil), blob...)
	corrupted[off] ^= 0xFF
	if _, err := Decode(bytes.NewReader(corrupted)); err == nil {
		t.Fatal("corrupted permutation should fail validation")
	}
}
