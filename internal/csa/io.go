package csa

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// csaMagic versions the on-disk CSA format.
var csaMagic = [8]byte{'L', 'C', 'C', 'S', 'C', 'S', 'A', '1'}

// Encode writes the CSA to w: the symbol block, the m sorted orders, and
// the m next-link arrays. Each index structure is one contiguous block
// in memory, so it is written as one contiguous block on disk — the
// byte stream is identical to what the earlier per-shift encoder
// produced (m consecutive length-n little-endian arrays), keeping old
// files loadable unchanged. Loading an encoded CSA skips the
// O(m·n log n) sort of Algorithm 1, which dominates indexing time.
func (c *CSA) Encode(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(csaMagic[:]); err != nil {
		return err
	}
	hdr := []int32{int32(c.n), int32(c.m)}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, c.data); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, c.sorted); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, c.next); err != nil {
		return err
	}
	return bw.Flush()
}

// Decode reads a CSA written by Encode and validates its structural
// invariants (each sorted order a permutation, next links consistent).
func Decode(r io.Reader) (*CSA, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != csaMagic {
		return nil, fmt.Errorf("csa: bad magic %q", magic)
	}
	var hdr [2]int32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	n, m := int(hdr[0]), int(hdr[1])
	if n <= 0 || m <= 0 || int64(n)*int64(m) > 1<<34 {
		return nil, fmt.Errorf("csa: corrupt header n=%d m=%d", n, m)
	}
	c := &CSA{n: n, m: m}
	// Each block decodes with chunked reads: memory grows only as data
	// actually arrives, so a corrupt header claiming a huge n·m fails
	// with a read error after at most one chunk instead of committing
	// a multi-gigabyte allocation up front.
	var err error
	if c.data, err = readInt32Block(br, n*m); err != nil {
		return nil, err
	}
	// The m sorted orders and m next-link arrays are flat blocks, so
	// each decodes in one read (legacy files wrote the same bytes as m
	// consecutive arrays — the stream is identical).
	if c.sorted, err = readInt32Block(br, m*n); err != nil {
		return nil, err
	}
	if c.next, err = readInt32Block(br, m*n); err != nil {
		return nil, err
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// readInt32Block reads count little-endian int32s, growing the result
// chunk by chunk so the allocation never outruns the bytes the stream
// really holds.
func readInt32Block(r io.Reader, count int) ([]int32, error) {
	const chunk = 1 << 20
	out := make([]int32, 0, min(count, chunk))
	for len(out) < count {
		step := min(count-len(out), chunk)
		out = append(out, make([]int32, step)...)
		if err := binary.Read(r, binary.LittleEndian, out[len(out)-step:]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// validate checks the structural invariants of a decoded CSA: every rank
// array is a permutation of [0,n) and every next link points at the same
// string in the following shift's order.
func (c *CSA) validate() error {
	seen := make([]bool, c.n)
	for i := 0; i < c.m; i++ {
		for j := range seen {
			seen[j] = false
		}
		order := c.sortedRow(i)
		for _, id := range order {
			if id < 0 || int(id) >= c.n || seen[id] {
				return fmt.Errorf("csa: sorted[%d] is not a permutation", i)
			}
			seen[id] = true
		}
		nextOrder := c.sortedRow((i + 1) % c.m)
		links := c.nextRow(i)
		for rank, id := range order {
			link := links[rank]
			if link < 0 || int(link) >= c.n || nextOrder[link] != id {
				return fmt.Errorf("csa: next[%d][%d] broken", i, rank)
			}
		}
	}
	return nil
}
