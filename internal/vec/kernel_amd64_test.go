//go:build amd64 && !noasm

package vec

import (
	"math"
	"math/rand/v2"
	"testing"
)

// Exact asm/generic parity: the AVX2 kernels promise bit-identical
// results to the unrolled Go kernels (same lane structure, same
// reduction tree, no FMA), so every distance is independent of which
// implementation the dispatcher picked. This test holds that promise to
// exact float32 equality across dims 1..67 — every combination of main
// loop, half-width loop, and scalar tail — including negative zeros and
// denormals.
func TestKernelAsmGenericBitIdentity(t *testing.T) {
	if !hasAVX2() {
		t.Skip("no AVX2 on this CPU")
	}
	g := rand.New(rand.NewPCG(3, 9))
	for dim := 1; dim <= kernelDimMax; dim++ {
		const rows = 5
		block := make([]float32, rows*dim)
		for i := range block {
			block[i] = float32(g.NormFloat64() * 100)
		}
		// Sprinkle exact values and denormals into deterministic spots.
		block[g.IntN(len(block))] = 0
		block[g.IntN(len(block))] = float32(math.Copysign(0, -1))
		block[g.IntN(len(block))] = math.Float32frombits(1) // smallest denormal
		q := make([]float32, dim)
		for i := range q {
			q[i] = float32(g.NormFloat64() * 100)
		}

		outA := make([]float32, rows)
		outG := make([]float32, rows)
		sqBlockAVX2(block, q, outA)
		sqBlockGeneric(block, q, outG)
		for r := range outA {
			if math.Float32bits(outA[r]) != math.Float32bits(outG[r]) {
				t.Fatalf("dim %d row %d: sq asm %x generic %x", dim, r, math.Float32bits(outA[r]), math.Float32bits(outG[r]))
			}
		}
		dotBlockAVX2(block, q, outA)
		dotBlockGeneric(block, q, outG)
		for r := range outA {
			if math.Float32bits(outA[r]) != math.Float32bits(outG[r]) {
				t.Fatalf("dim %d row %d: dot asm %x generic %x", dim, r, math.Float32bits(outA[r]), math.Float32bits(outG[r]))
			}
		}
		nA := make([]float32, rows)
		nG := make([]float32, rows)
		dotNormBlockAVX2(block, q, outA, nA)
		dotNormBlockGeneric(block, q, outG, nG)
		for r := range outA {
			if math.Float32bits(outA[r]) != math.Float32bits(outG[r]) || math.Float32bits(nA[r]) != math.Float32bits(nG[r]) {
				t.Fatalf("dim %d row %d: dotnorm asm (%x,%x) generic (%x,%x)", dim, r,
					math.Float32bits(outA[r]), math.Float32bits(nA[r]), math.Float32bits(outG[r]), math.Float32bits(nG[r]))
			}
		}

		for r := 0; r < rows; r++ {
			row := block[r*dim : (r+1)*dim]
			if a, g := sqRowAVX2(row, q), sqRowGeneric(row, q); math.Float32bits(a) != math.Float32bits(g) {
				t.Fatalf("dim %d row %d: sqRow asm %x generic %x", dim, r, math.Float32bits(a), math.Float32bits(g))
			}
			if a, g := dotRowAVX2(row, q), dotRowGeneric(row, q); math.Float32bits(a) != math.Float32bits(g) {
				t.Fatalf("dim %d row %d: dotRow asm %x generic %x", dim, r, math.Float32bits(a), math.Float32bits(g))
			}
			ad, an := dotNormRowAVX2(row, q)
			gd, gn := dotNormRowGeneric(row, q)
			if math.Float32bits(ad) != math.Float32bits(gd) || math.Float32bits(an) != math.Float32bits(gn) {
				t.Fatalf("dim %d row %d: dotNormRow asm (%x,%x) generic (%x,%x)", dim, r,
					math.Float32bits(ad), math.Float32bits(an), math.Float32bits(gd), math.Float32bits(gn))
			}
		}

		codes := make([]uint8, dim)
		scale := make([]float32, dim)
		adj := make([]float32, dim)
		for i := range codes {
			codes[i] = uint8(g.IntN(256))
			scale[i] = float32(g.Float64())
			adj[i] = float32(g.NormFloat64() * 50)
		}
		if a, gg := sq8SqRowAVX2(codes, scale, adj), sq8SqRowGeneric(codes, scale, adj); math.Float32bits(a) != math.Float32bits(gg) {
			t.Fatalf("dim %d: sq8SqRow asm %x generic %x", dim, math.Float32bits(a), math.Float32bits(gg))
		}
		if a, gg := sq8DotRowAVX2(codes, adj), sq8DotRowGeneric(codes, adj); math.Float32bits(a) != math.Float32bits(gg) {
			t.Fatalf("dim %d: sq8DotRow asm %x generic %x", dim, math.Float32bits(a), math.Float32bits(gg))
		}
	}
}
