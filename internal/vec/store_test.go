package vec

import (
	"math"
	"testing"
)

func TestStoreFromRowsAndRow(t *testing.T) {
	rows := [][]float32{{1, 2}, {3, 4}, {5, 6}}
	s, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Dim() != 2 {
		t.Fatalf("shape: len=%d dim=%d", s.Len(), s.Dim())
	}
	for i, r := range rows {
		if !Equal(s.Row(i), r) {
			t.Fatalf("row %d: %v", i, s.Row(i))
		}
	}
	if s.Bytes() != 3*2*4 {
		t.Fatalf("bytes: %d", s.Bytes())
	}
}

func TestStoreFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float32{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows should fail")
	}
	if _, err := FromRows([][]float32{{}}); err == nil {
		t.Fatal("zero-dimensional rows should fail")
	}
	s, err := FromRows(nil)
	if err != nil || s.Len() != 0 {
		t.Fatalf("empty FromRows: %v len=%d", err, s.Len())
	}
}

func TestStoreAppendFixesDim(t *testing.T) {
	s := NewStore(0)
	if s.Dim() != 0 || s.Len() != 0 {
		t.Fatal("fresh store not empty")
	}
	if id := s.Append([]float32{7, 8, 9}); id != 0 {
		t.Fatalf("first id %d", id)
	}
	if s.Dim() != 3 {
		t.Fatalf("dim not fixed: %d", s.Dim())
	}
	if id := s.Append([]float32{1, 1, 1}); id != 1 {
		t.Fatalf("second id %d", id)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch should panic")
		}
	}()
	s.Append([]float32{1})
}

func TestStoreSliceViewSurvivesAppend(t *testing.T) {
	s := NewStore(2)
	for i := 0; i < 4; i++ {
		s.Append([]float32{float32(i), float32(i)})
	}
	view := s.Slice(1, 3)
	if view.Len() != 2 || !Equal(view.Row(0), []float32{1, 1}) {
		t.Fatalf("view: len=%d row0=%v", view.Len(), view.Row(0))
	}
	// Growing the owner (including reallocation) must not disturb the
	// view's contents.
	for i := 0; i < 1000; i++ {
		s.Append([]float32{9, 9})
	}
	if !Equal(view.Row(0), []float32{1, 1}) || !Equal(view.Row(1), []float32{2, 2}) {
		t.Fatalf("view disturbed by append: %v %v", view.Row(0), view.Row(1))
	}
}

func TestStoreCompactCopy(t *testing.T) {
	s := NewStore(2)
	for i := 0; i < 6; i++ {
		s.Append([]float32{float32(i), float32(i * 10)})
	}
	dead := map[int]bool{3: true, 5: true}
	out := s.CompactCopy(2, func(slot int) bool { return dead[slot] })
	if out.Len() != 4 || out.Dim() != 2 {
		t.Fatalf("Len=%d Dim=%d", out.Len(), out.Dim())
	}
	// Prefix kept verbatim (even though slot-space filtering would not
	// apply there), survivors shifted down in order.
	for i, want := range []float32{0, 1, 2, 4} {
		if row := out.Row(i); row[0] != want {
			t.Fatalf("row %d = %v, want first coord %v", i, row, want)
		}
	}
	// The source is untouched and shares no memory with the copy.
	if s.Len() != 6 || s.Row(3)[0] != 3 {
		t.Fatalf("source mutated: Len=%d", s.Len())
	}
	out.Row(0)[0] = 99
	if s.Row(0)[0] == 99 {
		t.Fatal("compact copy aliases the source block")
	}

	// Dropping nothing still yields an independent copy of equal size.
	all := s.CompactCopy(0, func(int) bool { return false })
	if all.Len() != 6 {
		t.Fatalf("no-drop copy Len=%d", all.Len())
	}
	// Dropping everything beyond the prefix.
	none := s.CompactCopy(0, func(int) bool { return true })
	if none.Len() != 0 {
		t.Fatalf("all-drop copy Len=%d", none.Len())
	}
}

func TestStoreScanMatchesMetric(t *testing.T) {
	rows := [][]float32{{0, 0}, {3, 4}, {6, 8}, {1, 1}}
	s, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	q := []float32{0, 0}
	var ids []int
	var dists []float64
	s.Scan(1, 4, q, Euclidean, func(id int, d float64) {
		ids = append(ids, id)
		dists = append(dists, d)
	})
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Fatalf("ids: %v", ids)
	}
	for i, id := range ids {
		want := Euclidean.Distance(rows[id], q)
		if math.Abs(dists[i]-want) > 1e-12 {
			t.Fatalf("dist %d: got %v want %v", id, dists[i], want)
		}
	}
}
