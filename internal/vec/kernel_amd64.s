//go:build amd64 && !noasm

#include "textflag.h"

// AVX2 distance kernels. Every function mirrors its Go counterpart in
// kernel_generic.go exactly: two YMM accumulator banks fed 16 floats
// per iteration, an 8-wide cleanup loop on bank 0, separate VMULPS +
// VADDPS (no FMA), a VADDPS / VEXTRACTF128 / 2x VHADDPS reduction
// tree, and a sequential scalar tail folded in after the reduction.
// The parity tests assert bit-identical results against the Go mirror,
// so do not change the accumulation structure on one side only.

// func sqBlockAVX2(block, q, out []float32)
// out[r] = sum_d (block[r*dim+d] - q[d])^2, dim = len(q), rows = len(out).
TEXT ·sqBlockAVX2(SB), NOSPLIT, $0-72
	MOVQ block_base+0(FP), SI
	MOVQ q_base+24(FP), DX
	MOVQ q_len+32(FP), CX
	MOVQ out_base+48(FP), DI
	MOVQ out_len+56(FP), BX

sq_rowloop:
	TESTQ BX, BX
	JZ    sq_done
	XORQ  R8, R8
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	MOVQ  CX, R9
	SUBQ  $16, R9

sq_loop16:
	CMPQ    R8, R9
	JG      sq_loop8entry
	VMOVUPS (SI)(R8*4), Y2
	VMOVUPS (DX)(R8*4), Y3
	VSUBPS  Y3, Y2, Y4
	VMULPS  Y4, Y4, Y4
	VADDPS  Y4, Y0, Y0
	VMOVUPS 32(SI)(R8*4), Y5
	VMOVUPS 32(DX)(R8*4), Y6
	VSUBPS  Y6, Y5, Y7
	VMULPS  Y7, Y7, Y7
	VADDPS  Y7, Y1, Y1
	ADDQ    $16, R8
	JMP     sq_loop16

sq_loop8entry:
	MOVQ CX, R9
	SUBQ $8, R9

sq_loop8:
	CMPQ    R8, R9
	JG      sq_reduce
	VMOVUPS (SI)(R8*4), Y2
	VMOVUPS (DX)(R8*4), Y3
	VSUBPS  Y3, Y2, Y4
	VMULPS  Y4, Y4, Y4
	VADDPS  Y4, Y0, Y0
	ADDQ    $8, R8
	JMP     sq_loop8

sq_reduce:
	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VZEROUPPER

sq_tail:
	CMPQ  R8, CX
	JGE   sq_store
	MOVSS (SI)(R8*4), X2
	MOVSS (DX)(R8*4), X3
	SUBSS X3, X2
	MULSS X2, X2
	ADDSS X2, X0
	INCQ  R8
	JMP   sq_tail

sq_store:
	MOVSS X0, (DI)
	ADDQ  $4, DI
	LEAQ  (SI)(CX*4), SI
	DECQ  BX
	JMP   sq_rowloop

sq_done:
	RET

// func dotBlockAVX2(block, q, out []float32)
// out[r] = sum_d block[r*dim+d] * q[d].
TEXT ·dotBlockAVX2(SB), NOSPLIT, $0-72
	MOVQ block_base+0(FP), SI
	MOVQ q_base+24(FP), DX
	MOVQ q_len+32(FP), CX
	MOVQ out_base+48(FP), DI
	MOVQ out_len+56(FP), BX

dot_rowloop:
	TESTQ BX, BX
	JZ    dot_done
	XORQ  R8, R8
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	MOVQ  CX, R9
	SUBQ  $16, R9

dot_loop16:
	CMPQ    R8, R9
	JG      dot_loop8entry
	VMOVUPS (SI)(R8*4), Y2
	VMOVUPS (DX)(R8*4), Y3
	VMULPS  Y3, Y2, Y4
	VADDPS  Y4, Y0, Y0
	VMOVUPS 32(SI)(R8*4), Y5
	VMOVUPS 32(DX)(R8*4), Y6
	VMULPS  Y6, Y5, Y7
	VADDPS  Y7, Y1, Y1
	ADDQ    $16, R8
	JMP     dot_loop16

dot_loop8entry:
	MOVQ CX, R9
	SUBQ $8, R9

dot_loop8:
	CMPQ    R8, R9
	JG      dot_reduce
	VMOVUPS (SI)(R8*4), Y2
	VMOVUPS (DX)(R8*4), Y3
	VMULPS  Y3, Y2, Y4
	VADDPS  Y4, Y0, Y0
	ADDQ    $8, R8
	JMP     dot_loop8

dot_reduce:
	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VZEROUPPER

dot_tail:
	CMPQ  R8, CX
	JGE   dot_store
	MOVSS (SI)(R8*4), X2
	MOVSS (DX)(R8*4), X3
	MULSS X3, X2
	ADDSS X2, X0
	INCQ  R8
	JMP   dot_tail

dot_store:
	MOVSS X0, (DI)
	ADDQ  $4, DI
	LEAQ  (SI)(CX*4), SI
	DECQ  BX
	JMP   dot_rowloop

dot_done:
	RET

// func dotNormBlockAVX2(block, q, outDot, outNorm []float32)
// outDot[r] = row . q, outNorm[r] = row . row, one pass per row.
TEXT ·dotNormBlockAVX2(SB), NOSPLIT, $0-96
	MOVQ block_base+0(FP), SI
	MOVQ q_base+24(FP), DX
	MOVQ q_len+32(FP), CX
	MOVQ outDot_base+48(FP), DI
	MOVQ outDot_len+56(FP), BX
	MOVQ outNorm_base+72(FP), R10

dn_rowloop:
	TESTQ BX, BX
	JZ    dn_done
	XORQ  R8, R8
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	MOVQ  CX, R9
	SUBQ  $16, R9

dn_loop16:
	CMPQ    R8, R9
	JG      dn_loop8entry
	VMOVUPS (SI)(R8*4), Y2
	VMOVUPS (DX)(R8*4), Y3
	VMULPS  Y3, Y2, Y4
	VADDPS  Y4, Y0, Y0
	VMULPS  Y2, Y2, Y5
	VADDPS  Y5, Y8, Y8
	VMOVUPS 32(SI)(R8*4), Y2
	VMOVUPS 32(DX)(R8*4), Y3
	VMULPS  Y3, Y2, Y4
	VADDPS  Y4, Y1, Y1
	VMULPS  Y2, Y2, Y5
	VADDPS  Y5, Y9, Y9
	ADDQ    $16, R8
	JMP     dn_loop16

dn_loop8entry:
	MOVQ CX, R9
	SUBQ $8, R9

dn_loop8:
	CMPQ    R8, R9
	JG      dn_reduce
	VMOVUPS (SI)(R8*4), Y2
	VMOVUPS (DX)(R8*4), Y3
	VMULPS  Y3, Y2, Y4
	VADDPS  Y4, Y0, Y0
	VMULPS  Y2, Y2, Y5
	VADDPS  Y5, Y8, Y8
	ADDQ    $8, R8
	JMP     dn_loop8

dn_reduce:
	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VADDPS       Y9, Y8, Y8
	VEXTRACTF128 $1, Y8, X1
	VADDPS       X1, X8, X8
	VHADDPS      X8, X8, X8
	VHADDPS      X8, X8, X8
	VZEROUPPER

dn_tail:
	CMPQ  R8, CX
	JGE   dn_store
	MOVSS (SI)(R8*4), X2
	MOVSS (DX)(R8*4), X3
	MOVSS X2, X4
	MULSS X3, X4
	ADDSS X4, X0
	MULSS X2, X2
	ADDSS X2, X8
	INCQ  R8
	JMP   dn_tail

dn_store:
	MOVSS X0, (DI)
	ADDQ  $4, DI
	MOVSS X8, (R10)
	ADDQ  $4, R10
	LEAQ  (SI)(CX*4), SI
	DECQ  BX
	JMP   dn_rowloop

dn_done:
	RET

// func sqRowAVX2(a, b []float32) float32
// Single-row squared Euclidean: same structure as one sqBlockAVX2 row,
// returned by value so pairwise callers need no out buffer.
TEXT ·sqRowAVX2(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), DX
	XORQ R8, R8
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	MOVQ CX, R9
	SUBQ $16, R9

rsq_loop16:
	CMPQ    R8, R9
	JG      rsq_loop8entry
	VMOVUPS (SI)(R8*4), Y2
	VMOVUPS (DX)(R8*4), Y3
	VSUBPS  Y3, Y2, Y4
	VMULPS  Y4, Y4, Y4
	VADDPS  Y4, Y0, Y0
	VMOVUPS 32(SI)(R8*4), Y5
	VMOVUPS 32(DX)(R8*4), Y6
	VSUBPS  Y6, Y5, Y7
	VMULPS  Y7, Y7, Y7
	VADDPS  Y7, Y1, Y1
	ADDQ    $16, R8
	JMP     rsq_loop16

rsq_loop8entry:
	MOVQ CX, R9
	SUBQ $8, R9

rsq_loop8:
	CMPQ    R8, R9
	JG      rsq_reduce
	VMOVUPS (SI)(R8*4), Y2
	VMOVUPS (DX)(R8*4), Y3
	VSUBPS  Y3, Y2, Y4
	VMULPS  Y4, Y4, Y4
	VADDPS  Y4, Y0, Y0
	ADDQ    $8, R8
	JMP     rsq_loop8

rsq_reduce:
	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VZEROUPPER

rsq_tail:
	CMPQ  R8, CX
	JGE   rsq_done
	MOVSS (SI)(R8*4), X2
	MOVSS (DX)(R8*4), X3
	SUBSS X3, X2
	MULSS X2, X2
	ADDSS X2, X0
	INCQ  R8
	JMP   rsq_tail

rsq_done:
	MOVSS X0, ret+48(FP)
	RET

// func dotRowAVX2(a, b []float32) float32
TEXT ·dotRowAVX2(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), DX
	XORQ R8, R8
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	MOVQ CX, R9
	SUBQ $16, R9

rdot_loop16:
	CMPQ    R8, R9
	JG      rdot_loop8entry
	VMOVUPS (SI)(R8*4), Y2
	VMOVUPS (DX)(R8*4), Y3
	VMULPS  Y3, Y2, Y4
	VADDPS  Y4, Y0, Y0
	VMOVUPS 32(SI)(R8*4), Y5
	VMOVUPS 32(DX)(R8*4), Y6
	VMULPS  Y6, Y5, Y7
	VADDPS  Y7, Y1, Y1
	ADDQ    $16, R8
	JMP     rdot_loop16

rdot_loop8entry:
	MOVQ CX, R9
	SUBQ $8, R9

rdot_loop8:
	CMPQ    R8, R9
	JG      rdot_reduce
	VMOVUPS (SI)(R8*4), Y2
	VMOVUPS (DX)(R8*4), Y3
	VMULPS  Y3, Y2, Y4
	VADDPS  Y4, Y0, Y0
	ADDQ    $8, R8
	JMP     rdot_loop8

rdot_reduce:
	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VZEROUPPER

rdot_tail:
	CMPQ  R8, CX
	JGE   rdot_done
	MOVSS (SI)(R8*4), X2
	MOVSS (DX)(R8*4), X3
	MULSS X3, X2
	ADDSS X2, X0
	INCQ  R8
	JMP   rdot_tail

rdot_done:
	MOVSS X0, ret+48(FP)
	RET

// func dotNormRowAVX2(a, q []float32) (dot, normSq float32)
TEXT ·dotNormRowAVX2(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ q_base+24(FP), DX
	XORQ R8, R8
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	MOVQ CX, R9
	SUBQ $16, R9

rdn_loop16:
	CMPQ    R8, R9
	JG      rdn_loop8entry
	VMOVUPS (SI)(R8*4), Y2
	VMOVUPS (DX)(R8*4), Y3
	VMULPS  Y3, Y2, Y4
	VADDPS  Y4, Y0, Y0
	VMULPS  Y2, Y2, Y5
	VADDPS  Y5, Y8, Y8
	VMOVUPS 32(SI)(R8*4), Y2
	VMOVUPS 32(DX)(R8*4), Y3
	VMULPS  Y3, Y2, Y4
	VADDPS  Y4, Y1, Y1
	VMULPS  Y2, Y2, Y5
	VADDPS  Y5, Y9, Y9
	ADDQ    $16, R8
	JMP     rdn_loop16

rdn_loop8entry:
	MOVQ CX, R9
	SUBQ $8, R9

rdn_loop8:
	CMPQ    R8, R9
	JG      rdn_reduce
	VMOVUPS (SI)(R8*4), Y2
	VMOVUPS (DX)(R8*4), Y3
	VMULPS  Y3, Y2, Y4
	VADDPS  Y4, Y0, Y0
	VMULPS  Y2, Y2, Y5
	VADDPS  Y5, Y8, Y8
	ADDQ    $8, R8
	JMP     rdn_loop8

rdn_reduce:
	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VADDPS       Y9, Y8, Y8
	VEXTRACTF128 $1, Y8, X1
	VADDPS       X1, X8, X8
	VHADDPS      X8, X8, X8
	VHADDPS      X8, X8, X8
	VZEROUPPER

rdn_tail:
	CMPQ  R8, CX
	JGE   rdn_done
	MOVSS (SI)(R8*4), X2
	MOVSS (DX)(R8*4), X3
	MOVSS X2, X4
	MULSS X3, X4
	ADDSS X4, X0
	MULSS X2, X2
	ADDSS X2, X8
	INCQ  R8
	JMP   rdn_tail

rdn_done:
	MOVSS X0, dot+48(FP)
	MOVSS X8, normSq+52(FP)
	RET

// func sq8SqRowAVX2(codes []uint8, scale, adj []float32) float32
// ret = sum_d (adj[d] - scale[d]*float32(codes[d]))^2, dim = len(adj).
TEXT ·sq8SqRowAVX2(SB), NOSPLIT, $0-76
	MOVQ codes_base+0(FP), SI
	MOVQ scale_base+24(FP), DX
	MOVQ adj_base+48(FP), BX
	MOVQ adj_len+56(FP), CX
	XORQ R8, R8
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	MOVQ CX, R9
	SUBQ $16, R9

qsq_loop16:
	CMPQ      R8, R9
	JG        qsq_loop8entry
	VPMOVZXBD (SI)(R8*1), Y2
	VCVTDQ2PS Y2, Y2
	VMOVUPS   (DX)(R8*4), Y3
	VMULPS    Y2, Y3, Y4
	VMOVUPS   (BX)(R8*4), Y5
	VSUBPS    Y4, Y5, Y6
	VMULPS    Y6, Y6, Y6
	VADDPS    Y6, Y0, Y0
	VPMOVZXBD 8(SI)(R8*1), Y2
	VCVTDQ2PS Y2, Y2
	VMOVUPS   32(DX)(R8*4), Y3
	VMULPS    Y2, Y3, Y4
	VMOVUPS   32(BX)(R8*4), Y5
	VSUBPS    Y4, Y5, Y6
	VMULPS    Y6, Y6, Y6
	VADDPS    Y6, Y1, Y1
	ADDQ      $16, R8
	JMP       qsq_loop16

qsq_loop8entry:
	MOVQ CX, R9
	SUBQ $8, R9

qsq_loop8:
	CMPQ      R8, R9
	JG        qsq_reduce
	VPMOVZXBD (SI)(R8*1), Y2
	VCVTDQ2PS Y2, Y2
	VMOVUPS   (DX)(R8*4), Y3
	VMULPS    Y2, Y3, Y4
	VMOVUPS   (BX)(R8*4), Y5
	VSUBPS    Y4, Y5, Y6
	VMULPS    Y6, Y6, Y6
	VADDPS    Y6, Y0, Y0
	ADDQ      $8, R8
	JMP       qsq_loop8

qsq_reduce:
	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VZEROUPPER

qsq_tail:
	CMPQ    R8, CX
	JGE     qsq_done
	MOVBLZX (SI)(R8*1), AX
	CVTSL2SS AX, X2
	MOVSS   (DX)(R8*4), X3
	MULSS   X3, X2
	MOVSS   (BX)(R8*4), X3
	SUBSS   X2, X3
	MULSS   X3, X3
	ADDSS   X3, X0
	INCQ    R8
	JMP     qsq_tail

qsq_done:
	MOVSS X0, ret+72(FP)
	RET

// func sq8DotRowAVX2(codes []uint8, adj []float32) float32
// ret = sum_d adj[d] * float32(codes[d]), dim = len(adj).
TEXT ·sq8DotRowAVX2(SB), NOSPLIT, $0-52
	MOVQ codes_base+0(FP), SI
	MOVQ adj_base+24(FP), BX
	MOVQ adj_len+32(FP), CX
	XORQ R8, R8
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	MOVQ CX, R9
	SUBQ $16, R9

qdot_loop16:
	CMPQ      R8, R9
	JG        qdot_loop8entry
	VPMOVZXBD (SI)(R8*1), Y2
	VCVTDQ2PS Y2, Y2
	VMOVUPS   (BX)(R8*4), Y3
	VMULPS    Y2, Y3, Y4
	VADDPS    Y4, Y0, Y0
	VPMOVZXBD 8(SI)(R8*1), Y2
	VCVTDQ2PS Y2, Y2
	VMOVUPS   32(BX)(R8*4), Y3
	VMULPS    Y2, Y3, Y4
	VADDPS    Y4, Y1, Y1
	ADDQ      $16, R8
	JMP       qdot_loop16

qdot_loop8entry:
	MOVQ CX, R9
	SUBQ $8, R9

qdot_loop8:
	CMPQ      R8, R9
	JG        qdot_reduce
	VPMOVZXBD (SI)(R8*1), Y2
	VCVTDQ2PS Y2, Y2
	VMOVUPS   (BX)(R8*4), Y3
	VMULPS    Y2, Y3, Y4
	VADDPS    Y4, Y0, Y0
	ADDQ      $8, R8
	JMP       qdot_loop8

qdot_reduce:
	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VZEROUPPER

qdot_tail:
	CMPQ    R8, CX
	JGE     qdot_done
	MOVBLZX (SI)(R8*1), AX
	CVTSL2SS AX, X2
	MOVSS   (BX)(R8*4), X3
	MULSS   X3, X2
	ADDSS   X2, X0
	INCQ    R8
	JMP     qdot_tail

qdot_done:
	MOVSS X0, ret+48(FP)
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
