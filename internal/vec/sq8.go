package vec

import "math"

// SQ8Store is a scalar-quantized mirror of a Store: each dimension d is
// affinely mapped onto 0..255 with code = round((v - min[d]) / scale[d]),
// cutting the scan bandwidth of candidate verification 4x. Distances
// computed against it are approximations — the index uses them only to
// rank candidates, then re-ranks the survivors against the exact
// float32 store — so the asymmetric kernels trade precision for one
// byte per dimension without touching recall after the re-rank.
//
// The query side never dequantizes rows. Per query, Prepare folds the
// codebook into a dim-sized adjusted vector (pooled by the caller):
//
//	euclidean: adj[d] = q[d] - min[d]
//	           dist² ≈ Σ_d (adj[d] - scale[d]·code)²
//	angular:   adj[d] = q[d]·scale[d], base = Σ_d q[d]·min[d]
//	           o·q ≈ base + Σ_d adj[d]·code, combined with the stored
//	           per-row norm of the dequantized vector
//
// so the inner loop is a pure int8×float32 kernel (AVX2: VPMOVZXBD +
// VCVTDQ2PS + VMULPS/VSUBPS/VADDPS) with no per-element branches.
type SQ8Store struct {
	codes []uint8 // n*dim codes, row-major, same layout as Store.data
	dim   int
	min   []float32 // per-dimension offset (dim entries)
	scale []float32 // per-dimension step (max-min)/255; 0 for constant dims
	norms []float32 // per-row Euclidean norm of the dequantized vector
}

// QuantizeSQ8 builds the quantized mirror of every row of s. The
// codebook is computed from s itself (per-dimension min/max), so a
// per-shard store gets a codebook matched to its own value range.
func QuantizeSQ8(s *Store) *SQ8Store {
	n, dim := s.Len(), s.Dim()
	qs := &SQ8Store{
		codes: make([]uint8, n*dim),
		dim:   dim,
		min:   make([]float32, dim),
		scale: make([]float32, dim),
		norms: make([]float32, n),
	}
	if n == 0 {
		return qs
	}
	maxv := make([]float32, dim)
	copy(qs.min, s.Row(0))
	copy(maxv, s.Row(0))
	for i := 1; i < n; i++ {
		row := s.Row(i)
		for d, v := range row {
			if v < qs.min[d] {
				qs.min[d] = v
			}
			if v > maxv[d] {
				maxv[d] = v
			}
		}
	}
	for d := range qs.scale {
		qs.scale[d] = (maxv[d] - qs.min[d]) / 255
	}
	dec := make([]float32, dim)
	for i := 0; i < n; i++ {
		row := s.Row(i)
		out := qs.codes[i*dim : (i+1)*dim]
		for d, v := range row {
			if qs.scale[d] == 0 {
				out[d] = 0
				continue
			}
			c := math.RoundToEven(float64((v - qs.min[d]) / qs.scale[d]))
			if c < 0 {
				c = 0
			} else if c > 255 {
				c = 255
			}
			out[d] = uint8(c)
		}
		qs.DecodeInto(i, dec)
		qs.norms[i] = float32(math.Sqrt(float64(dotRow(dec, dec))))
	}
	return qs
}

// RestoreSQ8 reassembles a quantized store from its persisted parts
// (the LCCSPKG4 loader). Slices are adopted, not copied.
func RestoreSQ8(dim int, min, scale, norms []float32, codes []uint8) *SQ8Store {
	return &SQ8Store{codes: codes, dim: dim, min: min, scale: scale, norms: norms}
}

// Len returns the number of quantized rows.
func (qs *SQ8Store) Len() int {
	if qs.dim == 0 {
		return 0
	}
	return len(qs.codes) / qs.dim
}

// Dim returns the vector dimensionality.
func (qs *SQ8Store) Dim() int { return qs.dim }

// Bytes returns the memory footprint of the codes plus codebook.
func (qs *SQ8Store) Bytes() int64 {
	return int64(len(qs.codes)) + 4*int64(len(qs.min)+len(qs.scale)+len(qs.norms))
}

// Codebook exposes the persisted parts for the container writer.
func (qs *SQ8Store) Codebook() (min, scale, norms []float32, codes []uint8) {
	return qs.min, qs.scale, qs.norms, qs.codes
}

// DecodeInto dequantizes row i into dst (len >= dim).
func (qs *SQ8Store) DecodeInto(i int, dst []float32) {
	row := qs.codes[i*qs.dim : (i+1)*qs.dim]
	for d, c := range row {
		dst[d] = qs.min[d] + qs.scale[d]*float32(c)
	}
}

// SQ8Supported reports whether m can be approximated by the quantized
// kernels. Euclidean and Angular are; the set metrics (Hamming,
// Jaccard) are not — quantization would change their values outright.
func SQ8Supported(m Metric) bool {
	switch m.(type) {
	case euclidean, angular:
		return true
	}
	return false
}

// SQ8Query holds the per-query quantized-scan state: the adjusted
// query vector and the affine base term. Callers keep one in their
// pooled search context so Prepare and the gather loop allocate
// nothing in steady state.
type SQ8Query struct {
	adj     []float32
	base    float32
	angular bool
}

// Prepare folds q and the codebook into the query state. It must be
// called once per query before GatherScoresInto; m must satisfy
// SQ8Supported.
func (qs *SQ8Store) Prepare(m Metric, q []float32, st *SQ8Query) {
	if cap(st.adj) < qs.dim {
		st.adj = make([]float32, qs.dim)
	}
	st.adj = st.adj[:qs.dim]
	st.base = 0
	switch m.(type) {
	case euclidean:
		st.angular = false
		for d, v := range q {
			st.adj[d] = v - qs.min[d]
		}
	case angular:
		st.angular = true
		var base float32
		for d, v := range q {
			st.adj[d] = v * qs.scale[d]
			base += v * qs.min[d]
		}
		st.base = base
	default:
		panic("vec: metric not supported by SQ8")
	}
}

// GatherScoresInto writes an approximate score for every id into
// out[:len(ids)]. Scores are monotone in the metric distance — smaller
// is closer — but are not distances: euclidean scores are squared
// distances against the dequantized rows, angular scores are negated
// cosines. The caller ranks by score and re-ranks the winners exactly.
func (qs *SQ8Store) GatherScoresInto(ids []int32, st *SQ8Query, out []float32) {
	if st.angular {
		for j, id := range ids {
			row := qs.codes[int(id)*qs.dim : (int(id)+1)*qs.dim]
			norm := qs.norms[id]
			if norm == 0 {
				out[j] = 0
				continue
			}
			dot := st.base + sq8DotRow(row, st.adj)
			out[j] = -dot / norm
		}
		return
	}
	for j, id := range ids {
		row := qs.codes[int(id)*qs.dim : (int(id)+1)*qs.dim]
		out[j] = sq8SqRow(row, qs.scale, st.adj)
	}
}
