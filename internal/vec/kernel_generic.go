package vec

// Unrolled pure-Go kernels. These are the portable implementations the
// dispatch layer falls back to on non-amd64 targets, under -tags noasm,
// or when the CPU lacks AVX2 — and the executable specification of the
// accumulation order the AVX2 assembly must reproduce bit-for-bit:
//
//   - two banks of 8 float32 accumulators (acc0/acc1 ↔ two YMM
//     registers), fed 16 elements per iteration, then an 8-wide loop on
//     bank 0, mirroring the assembly's main and half-width loops;
//   - multiply and add as separate operations (the assembly uses
//     VMULPS + VADDPS, never FMA, so lane arithmetic is identical);
//   - lane reduction as bank add, high/low half add, then two pairwise
//     horizontal adds — the VADDPS / VEXTRACTF128 / 2×VHADDPS tree;
//   - the scalar tail (dim mod 8) folded in sequentially after the
//     vector reduction.
//
// The amd64-only parity test asserts exact equality between these and
// the assembly across dims 1..67, so any structural drift fails CI.

func sqBlockGeneric(block, q, out []float32) {
	dim := len(q)
	for r := range out {
		out[r] = sqRowGeneric(block[r*dim:r*dim+dim], q)
	}
}

func sqRowGeneric(a, b []float32) float32 {
	var acc0, acc1 [8]float32
	j := 0
	for ; j+16 <= len(a); j += 16 {
		for l := 0; l < 8; l++ {
			d0 := a[j+l] - b[j+l]
			acc0[l] += d0 * d0
			d1 := a[j+8+l] - b[j+8+l]
			acc1[l] += d1 * d1
		}
	}
	for ; j+8 <= len(a); j += 8 {
		for l := 0; l < 8; l++ {
			d := a[j+l] - b[j+l]
			acc0[l] += d * d
		}
	}
	s := reduce8(&acc0, &acc1)
	for ; j < len(a); j++ {
		d := a[j] - b[j]
		s += d * d
	}
	return s
}

func dotBlockGeneric(block, q, out []float32) {
	dim := len(q)
	for r := range out {
		out[r] = dotRowGeneric(block[r*dim:r*dim+dim], q)
	}
}

func dotRowGeneric(a, b []float32) float32 {
	var acc0, acc1 [8]float32
	j := 0
	for ; j+16 <= len(a); j += 16 {
		for l := 0; l < 8; l++ {
			acc0[l] += a[j+l] * b[j+l]
			acc1[l] += a[j+8+l] * b[j+8+l]
		}
	}
	for ; j+8 <= len(a); j += 8 {
		for l := 0; l < 8; l++ {
			acc0[l] += a[j+l] * b[j+l]
		}
	}
	s := reduce8(&acc0, &acc1)
	for ; j < len(a); j++ {
		s += a[j] * b[j]
	}
	return s
}

func dotNormBlockGeneric(block, q, outDot, outNorm []float32) {
	dim := len(q)
	for r := range outDot {
		outDot[r], outNorm[r] = dotNormRowGeneric(block[r*dim:r*dim+dim], q)
	}
}

func dotNormRowGeneric(a, b []float32) (dot, normSq float32) {
	var dacc0, dacc1, nacc0, nacc1 [8]float32
	j := 0
	for ; j+16 <= len(a); j += 16 {
		for l := 0; l < 8; l++ {
			av0 := a[j+l]
			dacc0[l] += av0 * b[j+l]
			nacc0[l] += av0 * av0
			av1 := a[j+8+l]
			dacc1[l] += av1 * b[j+8+l]
			nacc1[l] += av1 * av1
		}
	}
	for ; j+8 <= len(a); j += 8 {
		for l := 0; l < 8; l++ {
			av := a[j+l]
			dacc0[l] += av * b[j+l]
			nacc0[l] += av * av
		}
	}
	d := reduce8(&dacc0, &dacc1)
	n := reduce8(&nacc0, &nacc1)
	for ; j < len(a); j++ {
		av := a[j]
		d += av * b[j]
		n += av * av
	}
	return d, n
}

func sq8SqRowGeneric(codes []uint8, scale, adj []float32) float32 {
	var acc0, acc1 [8]float32
	j := 0
	for ; j+16 <= len(adj); j += 16 {
		for l := 0; l < 8; l++ {
			r0 := adj[j+l] - scale[j+l]*float32(codes[j+l])
			acc0[l] += r0 * r0
			r1 := adj[j+8+l] - scale[j+8+l]*float32(codes[j+8+l])
			acc1[l] += r1 * r1
		}
	}
	for ; j+8 <= len(adj); j += 8 {
		for l := 0; l < 8; l++ {
			r := adj[j+l] - scale[j+l]*float32(codes[j+l])
			acc0[l] += r * r
		}
	}
	s := reduce8(&acc0, &acc1)
	for ; j < len(adj); j++ {
		r := adj[j] - scale[j]*float32(codes[j])
		s += r * r
	}
	return s
}

func sq8DotRowGeneric(codes []uint8, adj []float32) float32 {
	var acc0, acc1 [8]float32
	j := 0
	for ; j+16 <= len(adj); j += 16 {
		for l := 0; l < 8; l++ {
			acc0[l] += adj[j+l] * float32(codes[j+l])
			acc1[l] += adj[j+8+l] * float32(codes[j+8+l])
		}
	}
	for ; j+8 <= len(adj); j += 8 {
		for l := 0; l < 8; l++ {
			acc0[l] += adj[j+l] * float32(codes[j+l])
		}
	}
	s := reduce8(&acc0, &acc1)
	for ; j < len(adj); j++ {
		s += adj[j] * float32(codes[j])
	}
	return s
}

// reduce8 collapses the two 8-lane accumulator banks exactly as the
// assembly does: VADDPS of the banks, VEXTRACTF128 + VADDPS of the
// halves, then two VHADDPS pairwise folds.
func reduce8(acc0, acc1 *[8]float32) float32 {
	var lane [8]float32
	for l := 0; l < 8; l++ {
		lane[l] = acc0[l] + acc1[l]
	}
	var m [4]float32
	for l := 0; l < 4; l++ {
		m[l] = lane[l] + lane[l+4]
	}
	return (m[0] + m[1]) + (m[2] + m[3])
}
