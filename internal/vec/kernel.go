package vec

import "math"

// Kernel dispatch.
//
// The distance hot path is built on a small set of batched kernels that
// accumulate in float32 over the contiguous SoA block. Each kernel has
// two interchangeable implementations selected once at init through the
// function pointers below: hand-written AVX2 assembly on amd64 (unless
// built with -tags noasm or the CPU lacks AVX2) and an unrolled pure-Go
// mirror everywhere else.
//
// The two implementations are bit-identical by construction, not by
// accident: both accumulate into the same 2×8 float32 lane structure,
// reduce lanes with the same tree (lane pair add, high/low half add,
// two horizontal adds), use separate multiply and add (never FMA), and
// fold the scalar tail in sequentially after the vector reduction. A
// distance therefore does not depend on which implementation produced
// it, and the parity tests assert exact equality between the two.
//
// Everything above this layer — the exported pairwise helpers, the
// Metric singletons, Store.DistancesInto — routes through the same
// kernels, so a pairwise Distance call and a block scan agree bitwise.
// Distances are consequently float32-valued (widened to float64 at the
// API boundary); the Hamming and Jaccard metrics count in float64 but
// their values are small integers, exactly representable either way.
var (
	// sqBlock writes out[r] = Σ_d (block[r*dim+d] - q[d])² for each of
	// len(out) rows, dim = len(q), in float32.
	sqBlock func(block, q, out []float32) = sqBlockGeneric
	// dotBlock writes out[r] = Σ_d block[r*dim+d]·q[d].
	dotBlock func(block, q, out []float32) = dotBlockGeneric
	// dotNormBlock writes outDot[r] = Σ_d row·q and outNorm[r] = Σ_d row²
	// in a single pass over the block.
	dotNormBlock func(block, q, outDot, outNorm []float32) = dotNormBlockGeneric
	// sq8SqRow returns Σ_d (adj[d] - scale[d]·codes[d])², the asymmetric
	// int8×float32 squared-Euclidean kernel (adj[d] = q[d] - min[d]).
	sq8SqRow func(codes []uint8, scale, adj []float32) float32 = sq8SqRowGeneric
	// sq8DotRow returns Σ_d adj[d]·codes[d], the asymmetric dot kernel
	// (adj[d] = q[d]·scale[d]; caller adds the Σ q·min base term).
	sq8DotRow func(codes []uint8, adj []float32) float32 = sq8DotRowGeneric

	// Single-row variants returning by value. These exist (rather than
	// calling the block kernels with a one-element out slice) because a
	// call through a function pointer cannot be proven noescape, so a
	// stack out-buffer would be forced to the heap on every pairwise
	// distance — the hot verification path must stay at 0 allocs/op.
	sqRow      func(a, b []float32) float32            = sqRowGeneric
	dotRow     func(a, b []float32) float32            = dotRowGeneric
	dotNormRow func(a, q []float32) (float32, float32) = dotNormRowGeneric

	// kernelImpl names the selected implementation ("avx2" or "generic").
	kernelImpl = "generic"
)

// KernelImpl reports which kernel implementation init selected:
// "avx2" on amd64 with AVX2 available (and not built with -tags noasm),
// "generic" otherwise.
func KernelImpl() string { return kernelImpl }

// angularFromParts turns a float32 dot product and the two squared
// norms into the angular distance. It is the single combine step shared
// by the pairwise AngularDistance and the block/gather scans, so both
// produce bit-identical float64 distances. Zero-norm inputs yield π/2
// (cosine 0), matching CosineSimilarity's convention.
func angularFromParts(dot, na2, nb2 float32) float64 {
	if na2 == 0 || nb2 == 0 {
		return float64(float32(math.Acos(0)))
	}
	c := float64(dot) / (math.Sqrt(float64(na2)) * math.Sqrt(float64(nb2)))
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return float64(float32(math.Acos(c)))
}

// euclideanFromSq widens a float32 squared distance to the float64
// Euclidean distance. The square root is taken in float64 and rounded
// back to float32 so block scans can hand out float32 buffers whose
// widened values equal the pairwise Distance exactly.
func euclideanFromSq(sq float32) float64 {
	return float64(float32(math.Sqrt(float64(sq))))
}

// SquaredEuclideanBlock writes the squared Euclidean distance from q to
// each row of block (len(out) rows of dim len(q)) into out. It is the
// raw kernel entry used by benchmarks and tests; panics on size
// mismatch.
func SquaredEuclideanBlock(block, q, out []float32) {
	checkBlock(block, q, out)
	sqBlock(block, q, out)
}

// DotBlock writes the dot product of q with each row of block into out.
func DotBlock(block, q, out []float32) {
	checkBlock(block, q, out)
	dotBlock(block, q, out)
}

// DotNormBlock writes per-row dot products with q and per-row squared
// norms in one pass.
func DotNormBlock(block, q, outDot, outNorm []float32) {
	checkBlock(block, q, outDot)
	if len(outNorm) != len(outDot) {
		panic("vec: dot/norm output length mismatch")
	}
	dotNormBlock(block, q, outDot, outNorm)
}

func checkBlock(block, q, out []float32) {
	if len(q) == 0 {
		panic("vec: zero-dimensional block kernel")
	}
	if len(block) != len(q)*len(out) {
		panic("vec: block size mismatch")
	}
}

// Naive scalar references. These are the float64-accumulating textbook
// loops the optimized kernels are validated against in the parity tests
// and the fuzz target. They are not used on any query path.

func refSquaredDistance(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

func refDot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

func refNormSq(a []float32) float64 {
	var s float64
	for _, v := range a {
		s += float64(v) * float64(v)
	}
	return s
}
