// Package vec provides the small dense-vector toolkit that every other
// package in this repository builds on: float32 vectors, the distance
// metrics evaluated in the paper (Euclidean and Angular), and a handful of
// in-place kernels used by the LSH families.
//
// Vectors are plain []float32 slices. All binary operations require equal
// lengths and panic otherwise; length mismatches are programming errors,
// not runtime conditions.
package vec

import "math"

// Dot returns the inner product of a and b, accumulated in float32 by
// the dispatched kernel and widened to float64 (see kernel.go: every
// distance-bearing value in this package is float32-valued so pairwise
// calls and block scans agree bitwise).
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	return float64(dotRow(a, b))
}

// SquaredDistance returns the squared Euclidean distance between a and
// b (float32-accumulated, widened to float64).
func SquaredDistance(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	return float64(sqRow(a, b))
}

// Distance returns the Euclidean distance between a and b. The value is
// exactly representable in float32, so block scans handing out float32
// buffers reproduce it bit for bit when widened.
func Distance(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	return euclideanFromSq(sqRow(a, b))
}

// Norm returns the Euclidean norm of a (float32-accumulated square sum,
// float64 square root).
func Norm(a []float32) float64 {
	if len(a) == 0 {
		return 0
	}
	return math.Sqrt(float64(dotRow(a, a)))
}

// Normalize returns a unit-norm copy of a. The zero vector is returned
// unchanged (there is no direction to normalize onto).
func Normalize(a []float32) []float32 {
	out := make([]float32, len(a))
	n := Norm(a)
	if n == 0 {
		copy(out, a)
		return out
	}
	inv := 1 / n
	for i, av := range a {
		out[i] = float32(float64(av) * inv)
	}
	return out
}

// NormalizeInPlace scales a to unit norm. The zero vector is left unchanged.
func NormalizeInPlace(a []float32) {
	n := Norm(a)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range a {
		a[i] = float32(float64(a[i]) * inv)
	}
}

// CosineSimilarity returns a·b / (|a||b|), clamped to [-1, 1].
// Either argument being the zero vector yields similarity 0. The dot
// product and squared norms come from the float32 kernels, combined in
// float64 exactly as the block scans do.
func CosineSimilarity(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	na2 := dotRow(a, a)
	nb2 := dotRow(b, b)
	if na2 == 0 || nb2 == 0 {
		return 0
	}
	c := float64(dotRow(a, b)) / (math.Sqrt(float64(na2)) * math.Sqrt(float64(nb2)))
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// AngularDistance returns the angle between a and b in radians, i.e.
// arccos of their cosine similarity, as used by the cross-polytope LSH
// family evaluation in the paper (θ(o,q) = cos⁻¹(o·q / |o||q|)). Like
// Distance, the value is float32-representable so pairwise and block
// paths agree bitwise.
func AngularDistance(a, b []float32) float64 {
	return float64(float32(math.Acos(CosineSimilarity(a, b))))
}

// Scale multiplies every entry of a by s, in place.
func Scale(a []float32, s float64) {
	for i := range a {
		a[i] = float32(float64(a[i]) * s)
	}
}

// AddInPlace adds b into a element-wise.
func AddInPlace(a, b []float32) {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	for i := range a {
		a[i] += b[i]
	}
}

// Clone returns a copy of a.
func Clone(a []float32) []float32 {
	out := make([]float32, len(a))
	copy(out, a)
	return out
}

// Equal reports whether a and b have identical lengths and entries.
func Equal(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Metric is a distance metric over float32 vectors. The two metrics the
// paper evaluates, Euclidean and Angular, are provided; LCCS-LSH itself is
// metric-agnostic and works with any metric that admits an LSH family.
type Metric interface {
	// Distance returns the distance between a and b. It must be
	// symmetric and non-negative, and zero for identical inputs.
	Distance(a, b []float32) float64
	// Name returns a short lowercase identifier ("euclidean", "angular").
	Name() string
}

type euclidean struct{}

func (euclidean) Distance(a, b []float32) float64 { return Distance(a, b) }
func (euclidean) Name() string                    { return "euclidean" }

type angular struct{}

func (angular) Distance(a, b []float32) float64 { return AngularDistance(a, b) }
func (angular) Name() string                    { return "angular" }

// HammingDistance counts coordinates where a and b differ; entries are
// treated as discrete symbols (any float mismatch counts as 1).
func HammingDistance(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	var d float64
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

type hamming struct{}

func (hamming) Distance(a, b []float32) float64 { return HammingDistance(a, b) }
func (hamming) Name() string                    { return "hamming" }

// JaccardDistance is 1 − |A∩B|/|A∪B| over sets encoded as binary
// indicator vectors (coordinate j nonzero ⇔ j ∈ set). Two empty sets are
// at distance 0.
func JaccardDistance(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vec: dimension mismatch")
	}
	var inter, union float64
	for i := range a {
		x, y := a[i] != 0, b[i] != 0
		if x && y {
			inter++
		}
		if x || y {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return 1 - inter/union
}

type jaccard struct{}

func (jaccard) Distance(a, b []float32) float64 { return JaccardDistance(a, b) }
func (jaccard) Name() string                    { return "jaccard" }

// Euclidean is the l2 metric.
var Euclidean Metric = euclidean{}

// Angular is the angle metric θ(o,q) = cos⁻¹(o·q/|o||q|).
var Angular Metric = angular{}

// Hamming is the Hamming distance metric (bit-sampling LSH family).
var Hamming Metric = hamming{}

// Jaccard is the Jaccard set distance metric (MinHash LSH family).
var Jaccard Metric = jaccard{}

// MetricByName returns the metric registered under name, or nil if unknown.
func MetricByName(name string) Metric {
	switch name {
	case "euclidean", "l2":
		return Euclidean
	case "angular", "cosine":
		return Angular
	case "hamming":
		return Hamming
	case "jaccard", "minhash":
		return Jaccard
	}
	return nil
}
