//go:build amd64 && !noasm

package vec

// AVX2 kernel bindings. The assembly in kernel_amd64.s mirrors the
// unrolled Go kernels operation for operation (see kernel_generic.go
// for the contract), so selecting it changes throughput, never results.
// Detection is hand-rolled CPUID/XGETBV — the module has no
// dependencies, so x/sys/cpu is not available.

//go:noescape
func sqBlockAVX2(block, q, out []float32)

//go:noescape
func dotBlockAVX2(block, q, out []float32)

//go:noescape
func dotNormBlockAVX2(block, q, outDot, outNorm []float32)

//go:noescape
func sqRowAVX2(a, b []float32) float32

//go:noescape
func dotRowAVX2(a, b []float32) float32

//go:noescape
func dotNormRowAVX2(a, q []float32) (dot, normSq float32)

//go:noescape
func sq8SqRowAVX2(codes []uint8, scale, adj []float32) float32

//go:noescape
func sq8DotRowAVX2(codes []uint8, adj []float32) float32

func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv() (eax, edx uint32)

// hasAVX2 reports whether the CPU supports AVX2 and the OS has enabled
// YMM state saving (OSXSAVE + XCR0 bits 1-2), the conditions for the
// VEX-encoded kernels to be usable.
func hasAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0
}

func init() {
	if hasAVX2() {
		sqBlock = sqBlockAVX2
		dotBlock = dotBlockAVX2
		dotNormBlock = dotNormBlockAVX2
		sqRow = sqRowAVX2
		dotRow = dotRowAVX2
		dotNormRow = dotNormRowAVX2
		sq8SqRow = sq8SqRowAVX2
		sq8DotRow = sq8DotRowAVX2
		kernelImpl = "avx2"
	}
}
