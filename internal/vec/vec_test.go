package vec

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, -5, 6}
	if got := Dot(a, b); got != 12 {
		t.Errorf("Dot = %v, want 12", got)
	}
}

func TestDistance(t *testing.T) {
	a := []float32{0, 0}
	b := []float32{3, 4}
	if got := Distance(a, b); got != 5 {
		t.Errorf("Distance = %v, want 5", got)
	}
	if got := SquaredDistance(a, b); got != 25 {
		t.Errorf("SquaredDistance = %v, want 25", got)
	}
}

func TestNormAndNormalize(t *testing.T) {
	a := []float32{3, 4}
	if got := Norm(a); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	u := Normalize(a)
	if math.Abs(Norm(u)-1) > 1e-6 {
		t.Errorf("normalized norm = %v", Norm(u))
	}
	if a[0] != 3 {
		t.Errorf("Normalize mutated input")
	}
	NormalizeInPlace(a)
	if math.Abs(Norm(a)-1) > 1e-6 {
		t.Errorf("in-place normalized norm = %v", Norm(a))
	}
	z := []float32{0, 0}
	NormalizeInPlace(z)
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("zero vector changed by normalize")
	}
}

func TestAngularDistance(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if got := AngularDistance(a, b); math.Abs(got-math.Pi/2) > 1e-6 {
		t.Errorf("orthogonal angle = %v, want π/2", got)
	}
	if got := AngularDistance(a, a); got != 0 {
		t.Errorf("self angle = %v, want 0", got)
	}
	c := []float32{-2, 0}
	if got := AngularDistance(a, c); math.Abs(got-math.Pi) > 1e-6 {
		t.Errorf("opposite angle = %v, want π", got)
	}
}

func TestCosineSimilarityClamps(t *testing.T) {
	// Nearly identical vectors can produce cos slightly above 1 in
	// floating point; the clamp keeps Acos defined.
	a := []float32{1e-3, 1e-3, 1e-3}
	if got := CosineSimilarity(a, a); got != 1 {
		t.Errorf("self similarity = %v, want exactly 1 after clamp", got)
	}
	if got := CosineSimilarity(a, []float32{0, 0, 0}); got != 0 {
		t.Errorf("zero-vector similarity = %v, want 0", got)
	}
}

func TestMetricAxioms(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	gen := func() []float32 {
		v := make([]float32, 8)
		for i := range v {
			v[i] = float32(r.NormFloat64())
		}
		return v
	}
	for _, m := range []Metric{Euclidean, Angular} {
		f := func(uint8) bool {
			a, b, c := gen(), gen(), gen()
			dab, dba := m.Distance(a, b), m.Distance(b, a)
			if math.Abs(dab-dba) > 1e-9 {
				return false
			}
			if dab < 0 {
				return false
			}
			if m.Distance(a, a) > 1e-6 {
				return false
			}
			// Triangle inequality (both metrics satisfy it; angular
			// distance is a metric on the sphere).
			return m.Distance(a, c) <= dab+m.Distance(b, c)+1e-6
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestScaleAddClone(t *testing.T) {
	a := []float32{1, 2}
	Scale(a, 2)
	if a[0] != 2 || a[1] != 4 {
		t.Errorf("Scale: %v", a)
	}
	AddInPlace(a, []float32{1, 1})
	if a[0] != 3 || a[1] != 5 {
		t.Errorf("AddInPlace: %v", a)
	}
	c := Clone(a)
	c[0] = 99
	if a[0] == 99 {
		t.Errorf("Clone aliases input")
	}
	if !Equal(a, []float32{3, 5}) || Equal(a, c) || Equal(a, []float32{3}) {
		t.Errorf("Equal misbehaves")
	}
}

func TestMetricByName(t *testing.T) {
	if MetricByName("euclidean") != Euclidean || MetricByName("l2") != Euclidean {
		t.Error("euclidean lookup failed")
	}
	if MetricByName("angular") != Angular || MetricByName("cosine") != Angular {
		t.Error("angular lookup failed")
	}
	if MetricByName("nope") != nil {
		t.Error("unknown metric should be nil")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"dot":  func() { Dot([]float32{1}, []float32{1, 2}) },
		"dist": func() { SquaredDistance([]float32{1}, []float32{1, 2}) },
		"add":  func() { AddInPlace([]float32{1}, []float32{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
