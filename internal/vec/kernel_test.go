package vec

import (
	"math"
	"math/rand/v2"
	"testing"
)

// Parity property tests: every dispatched kernel against the naive
// float64 scalar references, across every dimensionality from 1 to 67
// (covering the 16-wide main loop, the 8-wide half loop, and every
// scalar tail length), plus empty blocks and non-finite inputs. The
// dispatched kernels accumulate in float32, so agreement with the
// float64 reference is to within a relative tolerance; agreement
// between the two dispatched implementations (asm and generic) is
// asserted exactly in kernel_amd64_test.go.

const kernelDimMax = 67

func kernelTestVec(g *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(g.NormFloat64() * 10)
	}
	return v
}

// relClose checks |got-want| ≤ tol·max(1, |want|, scaleHint) — an
// absolute floor of 1 keeps near-zero sums from demanding impossible
// relative precision after float32 cancellation.
func relClose(got, want, scaleHint, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(want), scaleHint))
	return math.Abs(got-want) <= tol*scale
}

func TestKernelParityAgainstReference(t *testing.T) {
	g := rand.New(rand.NewPCG(7, 7))
	const rows = 9
	const tol = 1e-4
	for dim := 1; dim <= kernelDimMax; dim++ {
		block := make([]float32, 0, rows*dim)
		rowsRef := make([][]float32, rows)
		for r := range rowsRef {
			rowsRef[r] = kernelTestVec(g, dim)
			block = append(block, rowsRef[r]...)
		}
		q := kernelTestVec(g, dim)
		outSq := make([]float32, rows)
		outDot := make([]float32, rows)
		outDN := make([]float32, rows)
		outNorm := make([]float32, rows)
		SquaredEuclideanBlock(block, q, outSq)
		DotBlock(block, q, outDot)
		DotNormBlock(block, q, outDN, outNorm)
		for r, row := range rowsRef {
			wantSq := refSquaredDistance(row, q)
			wantDot := refDot(row, q)
			wantNorm := refNormSq(row)
			// The dot can cancel to near zero while its terms are
			// large; scale the tolerance by the norms of the inputs.
			dotScale := math.Sqrt(refNormSq(row) * refNormSq(q))
			if !relClose(float64(outSq[r]), wantSq, wantSq, tol) {
				t.Fatalf("dim %d row %d: sq block %g, reference %g", dim, r, outSq[r], wantSq)
			}
			if !relClose(float64(outDot[r]), wantDot, dotScale, tol) {
				t.Fatalf("dim %d row %d: dot block %g, reference %g", dim, r, outDot[r], wantDot)
			}
			if !relClose(float64(outDN[r]), wantDot, dotScale, tol) {
				t.Fatalf("dim %d row %d: dotnorm dot %g, reference %g", dim, r, outDN[r], wantDot)
			}
			if !relClose(float64(outNorm[r]), wantNorm, wantNorm, tol) {
				t.Fatalf("dim %d row %d: dotnorm norm %g, reference %g", dim, r, outNorm[r], wantNorm)
			}
			// Single-row variants must agree with the block kernels
			// bit for bit — they are the same accumulation structure.
			if sqRow(row, q) != outSq[r] {
				t.Fatalf("dim %d row %d: sqRow %g != block %g", dim, r, sqRow(row, q), outSq[r])
			}
			if dotRow(row, q) != outDot[r] {
				t.Fatalf("dim %d row %d: dotRow %g != block %g", dim, r, dotRow(row, q), outDot[r])
			}
			d, nrm := dotNormRow(row, q)
			if d != outDN[r] || nrm != outNorm[r] {
				t.Fatalf("dim %d row %d: dotNormRow (%g,%g) != block (%g,%g)", dim, r, d, nrm, outDN[r], outNorm[r])
			}
		}
	}
}

func TestKernelEmptyBlock(t *testing.T) {
	q := []float32{1, 2, 3}
	SquaredEuclideanBlock(nil, q, nil) // zero rows: must not touch memory
	DotBlock(nil, q, nil)
	DotNormBlock(nil, q, nil, nil)
}

func TestKernelPanicsOnMismatch(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("zero dim", func() { SquaredEuclideanBlock(nil, nil, make([]float32, 1)) })
	mustPanic("size mismatch", func() { DotBlock(make([]float32, 5), make([]float32, 2), make([]float32, 2)) })
	mustPanic("norm length", func() { DotNormBlock(make([]float32, 4), make([]float32, 2), make([]float32, 2), make([]float32, 1)) })
}

// Non-finite inputs must propagate through the kernels the way the
// scalar reference does: NaN anywhere poisons the row's sum, +Inf
// squared is +Inf. The kernels carry them lane-for-lane, so the result
// class (NaN / ±Inf) must match the reference's.
func TestKernelNonFinite(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	for dim := 1; dim <= 40; dim += 13 {
		for pos := 0; pos < dim; pos++ {
			for _, bad := range []float32{nan, inf} {
				row := make([]float32, dim)
				q := make([]float32, dim)
				for i := range row {
					row[i] = float32(i + 1)
					q[i] = float32(dim - i)
				}
				row[pos] = bad
				out := make([]float32, 1)
				SquaredEuclideanBlock(row, q, out)
				if !math.IsNaN(float64(out[0])) && !math.IsInf(float64(out[0]), 1) {
					t.Fatalf("dim %d pos %d bad %g: sq %g is finite", dim, pos, bad, out[0])
				}
				want := refSquaredDistance(row, q)
				if math.IsNaN(want) != math.IsNaN(float64(out[0])) {
					t.Fatalf("dim %d pos %d bad %g: sq NaN-ness %g vs reference %g", dim, pos, bad, out[0], want)
				}
			}
		}
	}
}

// SQ8 parity: the quantized kernels against a scalar dequantize-and-
// measure reference, and the round-trip error of every code bounded by
// its dimension's affine step.
func TestSQ8KernelParity(t *testing.T) {
	g := rand.New(rand.NewPCG(11, 11))
	for dim := 1; dim <= kernelDimMax; dim++ {
		const rows = 7
		data := make([][]float32, rows)
		for i := range data {
			data[i] = kernelTestVec(g, dim)
		}
		s, err := FromRows(data)
		if err != nil {
			t.Fatal(err)
		}
		qs := QuantizeSQ8(s)
		min, scale, norms, codes := qs.Codebook()
		if len(codes) != rows*dim {
			t.Fatalf("dim %d: %d codes", dim, len(codes))
		}

		// Round-trip error bound: |v - decode(code(v))| ≤ scale[d]
		// (half a step from rounding, up to a full step from the
		// clamp at the range edge, where error stays within range).
		dec := make([]float32, dim)
		for i := 0; i < rows; i++ {
			qs.DecodeInto(i, dec)
			for d, v := range data[i] {
				if err := math.Abs(float64(v - dec[d])); err > float64(scale[d])+1e-6 {
					t.Fatalf("dim %d row %d coord %d: round-trip error %g > step %g", dim, i, d, err, scale[d])
				}
			}
			wantNorm := math.Sqrt(refNormSq(dec))
			if !relClose(float64(norms[i]), wantNorm, 1, 1e-4) {
				t.Fatalf("dim %d row %d: stored norm %g, reference %g", dim, i, norms[i], wantNorm)
			}
		}

		q := kernelTestVec(g, dim)
		ids := make([]int32, rows)
		for i := range ids {
			ids[i] = int32(i)
		}
		out := make([]float32, rows)

		// Euclidean scores = squared distance to the dequantized row.
		var eq SQ8Query
		qs.Prepare(Euclidean, q, &eq)
		qs.GatherScoresInto(ids, &eq, out)
		for i := range out {
			qs.DecodeInto(i, dec)
			want := refSquaredDistance(dec, q)
			if !relClose(float64(out[i]), want, want, 1e-3) {
				t.Fatalf("dim %d row %d: sq8 euclid score %g, reference %g", dim, i, out[i], want)
			}
			// The scalar expansion Σ(adj - scale·code)² must agree
			// with the dispatched kernel to float32 tolerance.
			var ref float64
			for d := 0; d < dim; d++ {
				r := float64(q[d]-min[d]) - float64(scale[d])*float64(codes[i*dim+d])
				ref += r * r
			}
			if !relClose(float64(out[i]), ref, ref, 1e-3) {
				t.Fatalf("dim %d row %d: sq8 kernel %g, scalar expansion %g", dim, i, out[i], ref)
			}
		}

		// Angular scores = −cos(q, dequantized row), up to the |q|
		// factor, which is constant per query and cancels in ranking.
		var aq SQ8Query
		qs.Prepare(Angular, q, &aq)
		qs.GatherScoresInto(ids, &aq, out)
		qn := math.Sqrt(refNormSq(q))
		for i := range out {
			qs.DecodeInto(i, dec)
			if norms[i] == 0 {
				continue
			}
			want := -refDot(dec, q) / float64(norms[i])
			if !relClose(float64(out[i]), want, qn, 1e-3) {
				t.Fatalf("dim %d row %d: sq8 angular score %g, reference %g", dim, i, out[i], want)
			}
		}
	}
}

func TestSQ8ConstantDimAndEmpty(t *testing.T) {
	// A constant dimension has scale 0: codes collapse to 0 and decode
	// back to the constant exactly.
	s, err := FromRows([][]float32{{5, 1}, {5, 2}, {5, 3}})
	if err != nil {
		t.Fatal(err)
	}
	qs := QuantizeSQ8(s)
	dec := make([]float32, 2)
	for i := 0; i < 3; i++ {
		qs.DecodeInto(i, dec)
		if dec[0] != 5 {
			t.Fatalf("row %d: constant dim decoded to %g", i, dec[0])
		}
	}
	empty, err := FromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if qs := QuantizeSQ8(empty); qs.Len() != 0 {
		t.Fatalf("empty store quantized to %d rows", qs.Len())
	}
}

func TestSQ8SupportedMetrics(t *testing.T) {
	if !SQ8Supported(Euclidean) || !SQ8Supported(Angular) {
		t.Fatal("euclidean/angular must support SQ8")
	}
	if SQ8Supported(Hamming) || SQ8Supported(Jaccard) {
		t.Fatal("set metrics must not support SQ8")
	}
}

// FuzzKernelParity drives the dispatched kernels with arbitrary bytes
// reinterpreted as float32 vectors — including NaN, Inf, denormals and
// extreme exponents — and cross-checks them against the float64 scalar
// references, plus the block/row bit-identity invariant.
func FuzzKernelParity(f *testing.F) {
	f.Add(uint16(4), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add(uint16(1), []byte{0x7f, 0x80, 0, 0, 0xff, 0x80, 0, 0})       // ±Inf
	f.Add(uint16(3), []byte{0x7f, 0xc0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0}) // NaN, denormal
	f.Fuzz(func(t *testing.T, dimSeed uint16, raw []byte) {
		dim := int(dimSeed)%kernelDimMax + 1
		vals := make([]float32, len(raw)/4)
		for i := range vals {
			bits := uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 | uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
			vals[i] = math.Float32frombits(bits)
		}
		if len(vals) < dim {
			return
		}
		q := vals[:dim]
		rows := (len(vals) - dim) / dim
		if rows == 0 {
			return
		}
		block := vals[dim : dim+rows*dim]
		outSq := make([]float32, rows)
		outDot := make([]float32, rows)
		outDN := make([]float32, rows)
		outNorm := make([]float32, rows)
		SquaredEuclideanBlock(block, q, outSq)
		DotBlock(block, q, outDot)
		DotNormBlock(block, q, outDN, outNorm)
		for r := 0; r < rows; r++ {
			row := block[r*dim : (r+1)*dim]
			if g := sqRow(row, q); g != outSq[r] && !(math.IsNaN(float64(g)) && math.IsNaN(float64(outSq[r]))) {
				t.Fatalf("row %d: sqRow %g != block %g", r, g, outSq[r])
			}
			if g := dotRow(row, q); g != outDot[r] && !(math.IsNaN(float64(g)) && math.IsNaN(float64(outDot[r]))) {
				t.Fatalf("row %d: dotRow %g != block %g", r, g, outDot[r])
			}
			// Against the scalar reference only when everything stays
			// comfortably finite in float32.
			want := refSquaredDistance(row, q)
			if finite32(want) && finiteVec(row) && finiteVec(q) {
				scale := math.Max(refNormSq(row), refNormSq(q))
				if !relClose(float64(outSq[r]), want, scale, 1e-3) {
					t.Fatalf("row %d dim %d: sq %g, reference %g", r, dim, outSq[r], want)
				}
			}
		}
	})
}

// finite32 reports whether v survives a round trip through float32
// without overflowing — the precondition for comparing a float64
// reference against the float32 kernels.
func finite32(v float64) bool {
	return math.Abs(v) <= math.MaxFloat32/2
}

func finiteVec(v []float32) bool {
	for _, x := range v {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) || math.Abs(float64(x)) > 1e18 {
			return false
		}
	}
	return true
}
