package vec

import (
	"fmt"
	"math"
	"sync"
)

// Store is a flat structure-of-arrays vector store: n vectors of one
// fixed dimensionality packed back to back in a single contiguous
// []float32 block. Compared to a [][]float32 it removes one pointer
// indirection per vector access and keeps sequential scans (candidate
// verification, buffer scans) on a single cache-friendly stride, which
// is what the memory-bound query path needs.
//
// A Store is either owning (built with NewStore/FromRows, grown with
// Append) or a view (returned by Slice) that shares the owner's block.
// Vectors are immutable once stored; views therefore stay valid across
// later Appends to the owner (growth copies to a new block, and in-place
// growth writes only beyond the view's range).
type Store struct {
	data []float32
	dim  int
}

// NewStore returns an empty owning store. dim may be 0, in which case
// the first Append fixes the dimensionality.
func NewStore(dim int) *Store {
	if dim < 0 {
		panic("vec: negative dimension")
	}
	return &Store{dim: dim}
}

// FromRows packs rows into a fresh owning store, validating that every
// row has the same dimensionality.
func FromRows(rows [][]float32) (*Store, error) {
	if len(rows) == 0 {
		return &Store{}, nil
	}
	dim := len(rows[0])
	if dim == 0 {
		return nil, fmt.Errorf("vec: zero-dimensional row 0")
	}
	s := &Store{dim: dim, data: make([]float32, 0, len(rows)*dim)}
	for i, r := range rows {
		if len(r) != dim {
			return nil, fmt.Errorf("vec: row %d has dimension %d, want %d", i, len(r), dim)
		}
		s.data = append(s.data, r...)
	}
	return s, nil
}

// FromBlock adopts an already-flat block of n·dim float32s as an owning
// store without copying it. The caller must not write through block
// afterwards.
func FromBlock(dim int, block []float32) (*Store, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vec: non-positive dimension %d", dim)
	}
	if len(block)%dim != 0 {
		return nil, fmt.Errorf("vec: block of %d floats is not a multiple of dimension %d", len(block), dim)
	}
	return &Store{dim: dim, data: block[:len(block):len(block)]}, nil
}

// Block returns the store's contiguous float32 block as a read-only,
// capped view — the bulk-I/O counterpart of Row.
func (s *Store) Block() []float32 {
	return s.data[:len(s.data):len(s.data)]
}

// Len returns the number of stored vectors.
func (s *Store) Len() int {
	if s.dim == 0 {
		return 0
	}
	return len(s.data) / s.dim
}

// Dim returns the vector dimensionality (0 while the store is empty and
// was created with dim 0).
func (s *Store) Dim() int { return s.dim }

// Row returns a read-only view of vector i. The view is capped, so an
// append through it cannot clobber the following vector.
func (s *Store) Row(i int) []float32 {
	off := i * s.dim
	return s.data[off : off+s.dim : off+s.dim]
}

// Append copies v into the store and returns its index. The first
// Append on a dim-0 store fixes the dimensionality; afterwards a length
// mismatch is a programming error and panics, matching the package's
// vector-length contract.
func (s *Store) Append(v []float32) int {
	if s.dim == 0 {
		if len(v) == 0 {
			panic("vec: empty vector")
		}
		s.dim = len(v)
	}
	if len(v) != s.dim {
		panic(fmt.Sprintf("vec: appending %d-dimensional vector to %d-dimensional store", len(v), s.dim))
	}
	s.data = append(s.data, v...)
	return len(s.data)/s.dim - 1
}

// Slice returns a view over vectors [lo, hi) sharing this store's block.
// Do not Append to a view.
func (s *Store) Slice(lo, hi int) *Store {
	return &Store{data: s.data[lo*s.dim : hi*s.dim : hi*s.dim], dim: s.dim}
}

// Rows materializes per-vector views (headers only; the block is
// shared). Used by snapshot paths that hand data back through the
// public [][]float32 API.
func (s *Store) Rows() [][]float32 {
	out := make([][]float32, s.Len())
	for i := range out {
		out[i] = s.Row(i)
	}
	return out
}

// Bytes returns the memory footprint of the stored block.
func (s *Store) Bytes() int64 { return int64(len(s.data)) * 4 }

// CompactCopy returns a fresh owning store holding rows [0, keepPrefix)
// verbatim followed by every row in [keepPrefix, Len()) for which dead
// reports false. The receiver's block is never mutated, so outstanding
// views (index shards, snapshot rows) stay exactly what they were; the
// caller adopts the returned store and the old block is released once
// the last view over it dies.
func (s *Store) CompactCopy(keepPrefix int, dead func(slot int) bool) *Store {
	n := s.Len()
	live := keepPrefix
	for i := keepPrefix; i < n; i++ {
		if !dead(i) {
			live++
		}
	}
	out := &Store{dim: s.dim, data: make([]float32, 0, live*s.dim)}
	out.data = append(out.data, s.data[:keepPrefix*s.dim]...)
	for i := keepPrefix; i < n; i++ {
		if !dead(i) {
			out.data = append(out.data, s.Row(i)...)
		}
	}
	return out
}

// scanChunk is the number of rows a chunked scan pushes through the
// block kernels per pass.
const scanChunk = 256

// scanBufPool recycles the chunk buffers of Scan and DistancesInto.
// The block kernels are invoked through function pointers (AVX2 vs
// generic, chosen at init), which escape analysis cannot see through —
// a stack buffer would be moved to the heap on every call, costing an
// allocation per buffer scan. Each pooled block holds two scanChunk
// halves so the angular path's dot/norm pair shares one Get.
var scanBufPool = sync.Pool{New: func() any { return new([2 * scanChunk]float32) }}

// Scan walks vectors [lo, hi) and calls visit with each vector's metric
// distance to q. For the kernel-backed metrics (Euclidean, Angular) the
// rows are processed in blocks of scanChunk through DistancesInto and
// the float32 results widened — bit-identical to m.Distance by the
// kernel-layer contract. Other metrics take the per-row scalar path.
// It is the backing for exact buffer scans and brute-force verification.
func (s *Store) Scan(lo, hi int, q []float32, m Metric, visit func(id int, d float64)) {
	switch m.(type) {
	case euclidean, angular:
		bp := scanBufPool.Get().(*[2 * scanChunk]float32)
		buf := bp[:scanChunk]
		for base := lo; base < hi; base += scanChunk {
			c := hi - base
			if c > scanChunk {
				c = scanChunk
			}
			s.DistancesInto(base, base+c, q, m, buf[:c])
			for i := 0; i < c; i++ {
				visit(base+i, float64(buf[i]))
			}
		}
		scanBufPool.Put(bp)
	default:
		base := lo * s.dim
		for i := lo; i < hi; i++ {
			row := s.data[base : base+s.dim : base+s.dim]
			visit(i, m.Distance(row, q))
			base += s.dim
		}
	}
}

// DistancesInto is the block distance API: it computes the metric
// distance from q to every row in [lo, hi) and writes them into
// out[:hi-lo], which the caller provides (out must be at least that
// long). For Euclidean and Angular the whole range goes through the
// batched float32 kernels and the written values, widened to float64,
// equal m.Distance bit for bit. Hamming distances are integral counts,
// also exact in float32. Jaccard and foreign metrics are computed per
// row in float64 and rounded to float32 — use Scan where those must
// stay exact.
func (s *Store) DistancesInto(lo, hi int, q []float32, m Metric, out []float32) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if len(out) < n {
		panic("vec: distance output buffer too short")
	}
	out = out[:n]
	switch m.(type) {
	case euclidean:
		sqBlock(s.data[lo*s.dim:hi*s.dim], q, out)
		for i, v := range out {
			out[i] = float32(math.Sqrt(float64(v)))
		}
	case angular:
		qn2 := dotRow(q, q)
		bp := scanBufPool.Get().(*[2 * scanChunk]float32)
		dbuf, nbuf := bp[:scanChunk], bp[scanChunk:]
		for base := 0; base < n; base += scanChunk {
			c := n - base
			if c > scanChunk {
				c = scanChunk
			}
			blk := s.data[(lo+base)*s.dim : (lo+base+c)*s.dim]
			dotNormBlock(blk, q, dbuf[:c], nbuf[:c])
			for i := 0; i < c; i++ {
				out[base+i] = float32(angularFromParts(dbuf[i], nbuf[i], qn2))
			}
		}
		scanBufPool.Put(bp)
	default:
		for i := 0; i < n; i++ {
			out[i] = float32(m.Distance(s.Row(lo+i), q))
		}
	}
}

// GatherDistancesInto computes m.Distance(s.Row(ids[j]), q) for every
// id and writes the results into out[:len(ids)]. It is the candidate-
// verification primitive: ids come scattered from the CSA stream, so
// rows are gathered individually, but each one runs through the same
// float32 kernels as the block scans and the float64 results are exact
// for every built-in metric (Jaccard included — it never leaves
// float64 here).
func (s *Store) GatherDistancesInto(ids []int32, q []float32, m Metric, out []float64) {
	switch m.(type) {
	case euclidean:
		for j, id := range ids {
			out[j] = euclideanFromSq(sqRow(s.Row(int(id)), q))
		}
	case angular:
		qn2 := dotRow(q, q)
		for j, id := range ids {
			d, n2 := dotNormRow(s.Row(int(id)), q)
			out[j] = angularFromParts(d, n2, qn2)
		}
	default:
		for j, id := range ids {
			out[j] = m.Distance(s.Row(int(id)), q)
		}
	}
}
