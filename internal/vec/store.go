package vec

import "fmt"

// Store is a flat structure-of-arrays vector store: n vectors of one
// fixed dimensionality packed back to back in a single contiguous
// []float32 block. Compared to a [][]float32 it removes one pointer
// indirection per vector access and keeps sequential scans (candidate
// verification, buffer scans) on a single cache-friendly stride, which
// is what the memory-bound query path needs.
//
// A Store is either owning (built with NewStore/FromRows, grown with
// Append) or a view (returned by Slice) that shares the owner's block.
// Vectors are immutable once stored; views therefore stay valid across
// later Appends to the owner (growth copies to a new block, and in-place
// growth writes only beyond the view's range).
type Store struct {
	data []float32
	dim  int
}

// NewStore returns an empty owning store. dim may be 0, in which case
// the first Append fixes the dimensionality.
func NewStore(dim int) *Store {
	if dim < 0 {
		panic("vec: negative dimension")
	}
	return &Store{dim: dim}
}

// FromRows packs rows into a fresh owning store, validating that every
// row has the same dimensionality.
func FromRows(rows [][]float32) (*Store, error) {
	if len(rows) == 0 {
		return &Store{}, nil
	}
	dim := len(rows[0])
	if dim == 0 {
		return nil, fmt.Errorf("vec: zero-dimensional row 0")
	}
	s := &Store{dim: dim, data: make([]float32, 0, len(rows)*dim)}
	for i, r := range rows {
		if len(r) != dim {
			return nil, fmt.Errorf("vec: row %d has dimension %d, want %d", i, len(r), dim)
		}
		s.data = append(s.data, r...)
	}
	return s, nil
}

// Len returns the number of stored vectors.
func (s *Store) Len() int {
	if s.dim == 0 {
		return 0
	}
	return len(s.data) / s.dim
}

// Dim returns the vector dimensionality (0 while the store is empty and
// was created with dim 0).
func (s *Store) Dim() int { return s.dim }

// Row returns a read-only view of vector i. The view is capped, so an
// append through it cannot clobber the following vector.
func (s *Store) Row(i int) []float32 {
	off := i * s.dim
	return s.data[off : off+s.dim : off+s.dim]
}

// Append copies v into the store and returns its index. The first
// Append on a dim-0 store fixes the dimensionality; afterwards a length
// mismatch is a programming error and panics, matching the package's
// vector-length contract.
func (s *Store) Append(v []float32) int {
	if s.dim == 0 {
		if len(v) == 0 {
			panic("vec: empty vector")
		}
		s.dim = len(v)
	}
	if len(v) != s.dim {
		panic(fmt.Sprintf("vec: appending %d-dimensional vector to %d-dimensional store", len(v), s.dim))
	}
	s.data = append(s.data, v...)
	return len(s.data)/s.dim - 1
}

// Slice returns a view over vectors [lo, hi) sharing this store's block.
// Do not Append to a view.
func (s *Store) Slice(lo, hi int) *Store {
	return &Store{data: s.data[lo*s.dim : hi*s.dim : hi*s.dim], dim: s.dim}
}

// Rows materializes per-vector views (headers only; the block is
// shared). Used by snapshot paths that hand data back through the
// public [][]float32 API.
func (s *Store) Rows() [][]float32 {
	out := make([][]float32, s.Len())
	for i := range out {
		out[i] = s.Row(i)
	}
	return out
}

// Bytes returns the memory footprint of the stored block.
func (s *Store) Bytes() int64 { return int64(len(s.data)) * 4 }

// CompactCopy returns a fresh owning store holding rows [0, keepPrefix)
// verbatim followed by every row in [keepPrefix, Len()) for which dead
// reports false. The receiver's block is never mutated, so outstanding
// views (index shards, snapshot rows) stay exactly what they were; the
// caller adopts the returned store and the old block is released once
// the last view over it dies.
func (s *Store) CompactCopy(keepPrefix int, dead func(slot int) bool) *Store {
	n := s.Len()
	live := keepPrefix
	for i := keepPrefix; i < n; i++ {
		if !dead(i) {
			live++
		}
	}
	out := &Store{dim: s.dim, data: make([]float32, 0, live*s.dim)}
	out.data = append(out.data, s.data[:keepPrefix*s.dim]...)
	for i := keepPrefix; i < n; i++ {
		if !dead(i) {
			out.data = append(out.data, s.Row(i)...)
		}
	}
	return out
}

// Scan is the bulk distance kernel: it walks vectors [lo, hi) in one
// pass over the contiguous block — a single forward stride, no header
// chasing — and calls visit with each vector's metric distance to q.
// It is the backing for exact buffer scans and brute-force verification.
func (s *Store) Scan(lo, hi int, q []float32, m Metric, visit func(id int, d float64)) {
	base := lo * s.dim
	for i := lo; i < hi; i++ {
		row := s.data[base : base+s.dim : base+s.dim]
		visit(i, m.Distance(row, q))
		base += s.dim
	}
}
