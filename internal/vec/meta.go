package vec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// AttrKind discriminates the typed metadata values a vector may carry.
type AttrKind uint8

const (
	// AttrInt is a signed 64-bit integer attribute.
	AttrInt AttrKind = 1
	// AttrString is an opaque string attribute.
	AttrString AttrKind = 2
)

// AttrValue is one typed metadata value.
type AttrValue struct {
	Kind AttrKind
	Int  int64
	Str  string
}

// IntValue wraps an int64 as an attribute value.
func IntValue(v int64) AttrValue { return AttrValue{Kind: AttrInt, Int: v} }

// StrValue wraps a string as an attribute value.
func StrValue(s string) AttrValue { return AttrValue{Kind: AttrString, Str: s} }

// Equal reports whether two values have the same kind and payload.
func (v AttrValue) Equal(o AttrValue) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case AttrInt:
		return v.Int == o.Int
	case AttrString:
		return v.Str == o.Str
	}
	return false
}

// Attrs is the metadata attached to one vector: a small key→value map.
// A nil Attrs means "no metadata".
type Attrs map[string]AttrValue

// Equal reports deep equality of two attribute sets (nil == empty).
func (a Attrs) Equal(b Attrs) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		o, ok := b[k]
		if !ok || !v.Equal(o) {
			return false
		}
	}
	return true
}

// MetaStore holds per-slot attribute sets aligned with a vec.Store: slot
// i of the vector store owns row i here. Rows without metadata are nil,
// so a store whose vectors carry no attributes costs one slice header.
type MetaStore struct {
	rows []Attrs
}

// NewMetaStore returns an empty store with room hinted for n rows.
func NewMetaStore(n int) *MetaStore {
	return &MetaStore{rows: make([]Attrs, 0, n)}
}

// MetaFromRows adopts the given rows (not copied).
func MetaFromRows(rows []Attrs) *MetaStore { return &MetaStore{rows: rows} }

// Len returns the number of rows.
func (ms *MetaStore) Len() int {
	if ms == nil {
		return 0
	}
	return len(ms.rows)
}

// Row returns the attributes of slot i, or nil when the slot has none or
// lies beyond the rows appended so far (slots are created lazily: a
// vector inserted without metadata needs no row here).
func (ms *MetaStore) Row(i int) Attrs {
	if ms == nil || i < 0 || i >= len(ms.rows) {
		return nil
	}
	return ms.rows[i]
}

// Append adds one row (which may be nil) and returns its slot.
func (ms *MetaStore) Append(a Attrs) int {
	ms.rows = append(ms.rows, a)
	return len(ms.rows) - 1
}

// PadTo extends the store with nil rows until it has n rows.
func (ms *MetaStore) PadTo(n int) {
	for len(ms.rows) < n {
		ms.rows = append(ms.rows, nil)
	}
}

// Empty reports whether no row carries any attribute.
func (ms *MetaStore) Empty() bool {
	if ms == nil {
		return true
	}
	for _, r := range ms.rows {
		if len(r) > 0 {
			return false
		}
	}
	return true
}

// Slice returns a capped view over rows [0, n): appends to the view
// never alias the parent, mirroring vec.Store.Slice's stability contract.
func (ms *MetaStore) Slice(n int) *MetaStore {
	if ms == nil {
		return nil
	}
	if n > len(ms.rows) {
		n = len(ms.rows)
	}
	return &MetaStore{rows: ms.rows[:n:n]}
}

// CompactCopy mirrors vec.Store.CompactCopy over attribute rows: rows
// [0, keepPrefix) verbatim, then every row in [keepPrefix, n) for which
// dead reports false. n may exceed Len(); missing rows compact as nil.
func (ms *MetaStore) CompactCopy(n, keepPrefix int, dead func(slot int) bool) *MetaStore {
	out := &MetaStore{rows: make([]Attrs, 0, n)}
	for i := 0; i < keepPrefix && i < n; i++ {
		out.rows = append(out.rows, ms.Row(i))
	}
	for i := keepPrefix; i < n; i++ {
		if !dead(i) {
			out.rows = append(out.rows, ms.Row(i))
		}
	}
	return out
}

// sortedKeys returns a's keys in ascending order (the canonical
// encoding order).
func sortedKeys(a Attrs) []string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// maxAttrBytes bounds one encoded attribute row; decode rejects
// anything claiming more (corrupt input must not drive allocations).
const maxAttrBytes = 1 << 20

// AppendAttrs appends the canonical binary encoding of one attribute
// row to dst: uvarint key count, then per key (sorted ascending):
// uvarint key length, key bytes, kind byte, then int64 (little-endian)
// or uvarint string length + bytes. The encoding is deterministic, so
// containers holding identical attrs are byte-identical.
func AppendAttrs(dst []byte, a Attrs) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(a)))
	for _, k := range sortedKeys(a) {
		v := a[k]
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = append(dst, byte(v.Kind))
		switch v.Kind {
		case AttrInt:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Int))
		case AttrString:
			dst = binary.AppendUvarint(dst, uint64(len(v.Str)))
			dst = append(dst, v.Str...)
		default:
			panic(fmt.Sprintf("vec: unknown attr kind %d", v.Kind))
		}
	}
	return dst
}

// DecodeAttrs decodes one AppendAttrs row from the front of buf,
// returning the attrs (nil when empty) and the number of bytes
// consumed.
func DecodeAttrs(buf []byte) (Attrs, int, error) {
	off := 0
	nKeys, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("vec: attrs: bad key count")
	}
	off += n
	if nKeys == 0 {
		return nil, off, nil
	}
	if nKeys > maxAttrBytes {
		return nil, 0, fmt.Errorf("vec: attrs: key count %d too large", nKeys)
	}
	a := make(Attrs, nKeys)
	for i := uint64(0); i < nKeys; i++ {
		kLen, n := binary.Uvarint(buf[off:])
		if n <= 0 || kLen > maxAttrBytes || int(kLen) > len(buf)-off-n {
			return nil, 0, fmt.Errorf("vec: attrs: bad key length")
		}
		off += n
		key := string(buf[off : off+int(kLen)])
		off += int(kLen)
		if off >= len(buf) {
			return nil, 0, fmt.Errorf("vec: attrs: truncated value")
		}
		kind := AttrKind(buf[off])
		off++
		switch kind {
		case AttrInt:
			if len(buf)-off < 8 {
				return nil, 0, fmt.Errorf("vec: attrs: truncated int value")
			}
			a[key] = IntValue(int64(binary.LittleEndian.Uint64(buf[off:])))
			off += 8
		case AttrString:
			sLen, n := binary.Uvarint(buf[off:])
			if n <= 0 || sLen > maxAttrBytes || int(sLen) > len(buf)-off-n {
				return nil, 0, fmt.Errorf("vec: attrs: bad string length")
			}
			off += n
			a[key] = StrValue(string(buf[off : off+int(sLen)]))
			off += int(sLen)
		default:
			return nil, 0, fmt.Errorf("vec: attrs: unknown kind %d", kind)
		}
	}
	return a, off, nil
}

// FilterOp is the comparison an attribute filter term applies.
type FilterOp uint8

const (
	// FilterEq matches rows whose attribute equals the term's value.
	FilterEq FilterOp = 1
	// FilterRange matches rows whose int64 attribute lies in the
	// inclusive [Min, Max] interval (either bound optional).
	FilterRange FilterOp = 2
)

// FilterTerm is one predicate over one attribute key.
type FilterTerm struct {
	Key            string
	Op             FilterOp
	Value          AttrValue // FilterEq
	Min            int64     // FilterRange, valid when HasMin
	Max            int64     // FilterRange, valid when HasMax
	HasMin, HasMax bool
}

// Filter is a conjunction (AND) of terms over vector attributes. The
// zero value and nil match every row.
type Filter struct {
	Terms []FilterTerm
}

// Validate reports whether the filter is well-formed.
func (f *Filter) Validate() error {
	if f == nil {
		return nil
	}
	for i := range f.Terms {
		t := &f.Terms[i]
		if t.Key == "" {
			return fmt.Errorf("vec: filter term %d: empty key", i)
		}
		switch t.Op {
		case FilterEq:
			if t.Value.Kind != AttrInt && t.Value.Kind != AttrString {
				return fmt.Errorf("vec: filter term %d: bad value kind %d", i, t.Value.Kind)
			}
		case FilterRange:
			if !t.HasMin && !t.HasMax {
				return fmt.Errorf("vec: filter term %d: range needs min or max", i)
			}
			if t.HasMin && t.HasMax && t.Min > t.Max {
				return fmt.Errorf("vec: filter term %d: min %d > max %d", i, t.Min, t.Max)
			}
		default:
			return fmt.Errorf("vec: filter term %d: unknown op %d", i, t.Op)
		}
	}
	return nil
}

// Matches reports whether the attribute row satisfies every term. A row
// missing a term's key never matches that term.
func (f *Filter) Matches(a Attrs) bool {
	if f == nil {
		return true
	}
	for i := range f.Terms {
		t := &f.Terms[i]
		v, ok := a[t.Key]
		if !ok {
			return false
		}
		switch t.Op {
		case FilterEq:
			if !v.Equal(t.Value) {
				return false
			}
		case FilterRange:
			if v.Kind != AttrInt {
				return false
			}
			if t.HasMin && v.Int < t.Min {
				return false
			}
			if t.HasMax && v.Int > t.Max {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Empty reports whether the filter constrains nothing.
func (f *Filter) Empty() bool { return f == nil || len(f.Terms) == 0 }

// AppendKey appends a canonical binary form of the filter to dst —
// stable across equal filters — for cache keys and cursor guards.
func (f *Filter) AppendKey(dst []byte) []byte {
	if f.Empty() {
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.Terms)))
	for i := range f.Terms {
		t := &f.Terms[i]
		dst = binary.AppendUvarint(dst, uint64(len(t.Key)))
		dst = append(dst, t.Key...)
		dst = append(dst, byte(t.Op))
		switch t.Op {
		case FilterEq:
			dst = append(dst, byte(t.Value.Kind))
			if t.Value.Kind == AttrInt {
				dst = binary.LittleEndian.AppendUint64(dst, uint64(t.Value.Int))
			} else {
				dst = binary.AppendUvarint(dst, uint64(len(t.Value.Str)))
				dst = append(dst, t.Value.Str...)
			}
		case FilterRange:
			lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
			var flags byte
			if t.HasMin {
				lo, flags = t.Min, flags|1
			}
			if t.HasMax {
				hi, flags = t.Max, flags|2
			}
			dst = append(dst, flags)
			dst = binary.LittleEndian.AppendUint64(dst, uint64(lo))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(hi))
		}
	}
	return dst
}
