package wal

import (
	"errors"
	"testing"

	"lccs/internal/faultfs"
)

// openInjected opens a log over a fresh injector. Faults are armed
// after Open so segment-creation writes (headers, dir fsyncs) are never
// the ones hit — these tests target the append path.
func openInjected(t *testing.T, dir string, opts Options) (*Log, *faultfs.Injected) {
	t.Helper()
	fs := faultfs.NewInjected(faultfs.OS{})
	opts.FS = fs
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, fs
}

// reopenPlain reopens dir on the real filesystem and returns what a
// recovering process would replay.
func reopenPlain(t *testing.T, dir string) []Record {
	t.Helper()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	return collect(t, l, 0)
}

// A single torn write must heal in place: the writer truncates the
// segment back to the last record boundary, rewrites the record, and
// the append acks. Without the truncation the torn frame would sit
// mid-segment and the retried append would land after it — recovery
// would then stop at (or error on) the tear and every later acked
// record would be lost.
func TestTornWriteSelfHeals(t *testing.T) {
	dir := t.TempDir()
	l, fs := openInjected(t, dir, Options{Policy: SyncAlways})
	fs.Inject(&faultfs.Fault{Op: faultfs.OpWrite, Path: ".wal", TornBytes: 5, Once: true})

	recs := testRecords(20)
	appendAll(t, l, recs) // fatals if any ack fails
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	checkRecords(t, reopenPlain(t, dir), recs, 1)
}

// Same, but the tear lands inside a multi-record batch: only the
// unwritten suffix may be retried, and on disk the batch must still be
// one dense run of LSNs.
func TestTornWriteMidBatchSelfHeals(t *testing.T) {
	dir := t.TempDir()
	l, fs := openInjected(t, dir, Options{Policy: SyncAlways})

	recs := testRecords(12)
	head := recs[:4]
	if _, err := l.Append(head...); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.WaitDurable(4); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
	// Tear partway into the next batch's buffer.
	fs.Inject(&faultfs.Fault{Op: faultfs.OpWrite, Path: ".wal", TornBytes: 31, Once: true})
	last, err := l.Append(recs[4:]...)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.WaitDurable(last); err != nil {
		t.Fatalf("WaitDurable after torn batch: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	checkRecords(t, reopenPlain(t, dir), recs, 1)
}

// A transient ENOSPC (nothing written at all) is retried the same way.
func TestTransientWriteErrorRetries(t *testing.T) {
	dir := t.TempDir()
	l, fs := openInjected(t, dir, Options{Policy: SyncAlways})
	fs.Inject(&faultfs.Fault{Op: faultfs.OpWrite, Path: ".wal", Err: faultfs.ErrNoSpace, Once: true})

	recs := testRecords(8)
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	checkRecords(t, reopenPlain(t, dir), recs, 1)
}

// A persistently failing disk must not spin forever: after the retry
// budget the error turns sticky, every waiter and later append gets it,
// and a reopen sees only what was durable before the failure.
func TestWriteRetryExhaustionTurnsSticky(t *testing.T) {
	dir := t.TempDir()
	l, fs := openInjected(t, dir, Options{Policy: SyncAlways})

	good := testRecords(3)
	appendAll(t, l, good)

	fs.Inject(&faultfs.Fault{Op: faultfs.OpWrite, Path: ".wal", Err: faultfs.ErrNoSpace})
	lsn, err := l.Append(Record{Op: OpInsert, ID: 99, Vec: []float32{1}})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.WaitDurable(lsn); !errors.Is(err, faultfs.ErrNoSpace) {
		t.Fatalf("WaitDurable on dead disk = %v, want ErrNoSpace", err)
	}
	// Sticky: the log is broken until reopen.
	if _, err := l.Append(Record{Op: OpDelete, ID: 1}); !errors.Is(err, faultfs.ErrNoSpace) {
		t.Fatalf("Append after sticky error = %v, want ErrNoSpace", err)
	}
	if err := l.Close(); !errors.Is(err, faultfs.ErrNoSpace) {
		t.Fatalf("Close after sticky error = %v, want ErrNoSpace", err)
	}
	// The unacked record vanished; the acked prefix survived intact.
	checkRecords(t, reopenPlain(t, dir), good, 1)
}

// fsyncgate: a failed fsync may have dropped dirty pages the kernel now
// reports clean, so no later fsync can be trusted to cover them. The
// error must be permanently sticky — WaitDurable, Append, Sync and
// Close all report it — and a reopen sees exactly the records covered
// by the last successful fsync.
func TestFsyncFailureIsSticky(t *testing.T) {
	dir := t.TempDir()
	l, fs := openInjected(t, dir, Options{Policy: SyncAlways})

	good := testRecords(5)
	appendAll(t, l, good) // each ack fsynced: 5 records durable

	fs.Inject(&faultfs.Fault{Op: faultfs.OpSync, Path: ".wal", DropDirty: true, Once: true})
	lsn, err := l.Append(Record{Op: OpInsert, ID: 50, Vec: []float32{2}})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.WaitDurable(lsn); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("WaitDurable across failed fsync = %v, want ErrInjected", err)
	}
	if _, err := l.Append(Record{Op: OpDelete, ID: 2}); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Append after failed fsync = %v, want ErrInjected", err)
	}
	if err := l.Sync(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Sync after failed fsync = %v, want ErrInjected", err)
	}
	// Close must not mask the failure with a "successful" final fsync.
	if err := l.Close(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Close after failed fsync = %v, want ErrInjected", err)
	}
	checkRecords(t, reopenPlain(t, dir), good, 1)
}
