package wal

import (
	"os"
	"path/filepath"
	"testing"

	"lccs/internal/faultfs"
)

// FuzzSegmentParse feeds arbitrary bytes through both segment-parsing
// paths — the tail scan that Open runs and a full strict replay — and
// asserts the contract of satellite-grade robustness: truncated or
// corrupt input must yield an error or a shortened valid prefix, never
// a panic, and the two paths must agree that the valid prefix is a
// prefix.
func FuzzSegmentParse(f *testing.F) {
	// Seed with a well-formed two-record segment and a few mutants.
	valid := appendSegHeader(nil, 1)
	valid = appendFrame(valid, Record{LSN: 1, Op: OpInsert, ID: 0, Vec: []float32{1, 2, 3}})
	valid = appendFrame(valid, Record{LSN: 2, Op: OpDelete, ID: 0})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])           // torn tail
	f.Add(valid[:segHeaderSize])          // header only
	f.Add(valid[:4])                      // torn header
	f.Add([]byte{})                       // empty file
	f.Add(append([]byte("LCCSWAL1"), 0))  // short base
	f.Add(append(valid, valid...))        // duplicated LSNs after valid prefix
	mut := append([]byte(nil), valid...)  // CRC-corrupt first frame
	mut[segHeaderSize+frameHeader+2] ^= 1 // flip a payload byte
	f.Add(mut)

	f.Fuzz(func(t *testing.T, blob []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segName(1))
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		lastLSN, validBytes, err := validPrefix(faultfs.OS{}, path, 1)
		if err != nil {
			return // rejected loudly: that is the contract
		}
		if validBytes > int64(len(blob)) {
			t.Fatalf("valid prefix %d exceeds input %d", validBytes, len(blob))
		}
		if lastLSN > 0 && validBytes <= segHeaderSize {
			t.Fatalf("records reported (last LSN %d) inside %d header bytes", lastLSN, validBytes)
		}
		// The valid prefix must replay cleanly: truncate to it and run
		// the strict reader over the result.
		if err := os.Truncate(path, validBytes); err != nil {
			t.Fatal(err)
		}
		if lastLSN == 0 {
			return
		}
		seg := segInfo{base: 1, last: lastLSN, path: path}
		l := &Log{fs: faultfs.OS{}}
		var info ReplayInfo
		var count uint64
		if err := l.replaySegment(seg, 0, func(rec Record) error {
			count++
			if rec.LSN != count {
				t.Fatalf("replay LSN %d at position %d", rec.LSN, count)
			}
			return nil
		}, &info); err != nil {
			t.Fatalf("strict replay over the validated prefix failed: %v", err)
		}
		if count != lastLSN {
			t.Fatalf("replayed %d records, tail scan reported %d", count, lastLSN)
		}
	})
}

// FuzzManifest asserts manifest parsing never panics and either errors
// or yields a manifest that round-trips.
func FuzzManifest(f *testing.F) {
	f.Add([]byte(`{"container":"a.lccs","dataset":"a.ds","lsn":7,"generation":2}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, blob []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, ManifestName), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := ReadManifest(dir)
		if err != nil || m == nil {
			return
		}
		if err := WriteManifest(dir, m); err != nil {
			t.Fatal(err)
		}
		back, err := ReadManifest(dir)
		if err != nil || *back != *m {
			t.Fatalf("manifest did not round-trip: %+v vs %+v (%v)", back, m, err)
		}
	})
}
