// Package wal is a segmented, CRC32C-framed append-only write-ahead log
// for the dynamic index's insert/delete stream, with batched group
// commit and a checkpoint protocol that ties log truncation to index
// snapshots.
//
// Records are appended with monotonically increasing log sequence
// numbers (LSNs) into segment files named by their first LSN
// (0000000000000001.wal, ...). A single writer goroutine owns the file
// descriptors: appenders enqueue records and wait for durability, so
// concurrent writers naturally share one write+fsync — classic group
// commit. Three sync policies trade ack latency against what an
// acknowledgment guarantees:
//
//   - SyncAlways: an acked record has been fsynced — it survives OS and
//     power failure.
//   - SyncInterval: an acked record has been written to the file (it
//     survives a process kill); fsync runs on a timer, so at most one
//     interval of acks can be lost to an OS crash.
//   - SyncNone: as SyncInterval but with no timer — only process-crash
//     durability; the OS decides when pages reach disk.
//
// Checkpointing: after persisting a snapshot that captures every record
// up to LSN c, call TruncateThrough(c) — sealed segments whose records
// all lie at or below c are deleted, so the log never grows unboundedly
// under steady churn. Recovery replays the remaining records above the
// manifest's checkpoint LSN (see Manifest) in order.
//
// A torn tail — a partially written final frame after a crash — is
// detected by CRC/length validation at Open and physically truncated;
// corruption anywhere before the tail is an error, never a silent skip
// and never a panic.
package wal

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lccs/internal/faultfs"
	"lccs/internal/obs"
)

// FS is the filesystem abstraction the log performs all its I/O
// through — create/write/fsync/rename/remove/truncate/dirsync. The
// default is the real OS; tests inject a faultfs.Injected to tear
// writes, fail fsyncs, and crash at chosen steps.
type FS = faultfs.FS

// SyncPolicy selects what an acknowledged append guarantees. See the
// package comment for the trade-offs.
type SyncPolicy int

// The three sync policies.
const (
	// SyncAlways fsyncs before acknowledging (group-committed).
	SyncAlways SyncPolicy = iota
	// SyncInterval acknowledges after the OS write; fsync runs on a
	// timer.
	SyncInterval
	// SyncNone acknowledges after the OS write and never fsyncs.
	SyncNone
)

// String returns the CLI-facing policy name.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParsePolicy resolves a CLI-style sync-policy name.
func ParsePolicy(name string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always|interval|none)", name)
}

// Options configures a Log.
type Options struct {
	// Policy selects the durability guarantee of an acknowledged append.
	// The zero value is SyncAlways.
	Policy SyncPolicy
	// Interval is the fsync period under SyncInterval. 0 selects 50ms.
	Interval time.Duration
	// SegmentBytes rotates the active segment when it exceeds this size.
	// 0 selects 64 MiB.
	SegmentBytes int64
	// MinNextLSN floors the LSN sequence: the first record appended
	// after Open gets an LSN strictly above max(MinNextLSN, last LSN on
	// disk). Recovery passes the manifest's checkpoint watermark here —
	// without it, a log whose segments were all truncated by a
	// checkpoint would restart numbering at 1, and the next recovery
	// would skip the fresh records as already checkpointed.
	MinNextLSN uint64
	// FS is the filesystem the log runs on. Nil selects the real OS.
	FS FS
	// Logger receives structured log-lifecycle events: torn tails
	// discarded at Open, segment rotations, sticky I/O failures. Nil
	// discards them.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.FS == nil {
		o.FS = faultfs.OS{}
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	return o
}

// segInfo tracks one segment file: its first and (once sealed) last
// LSN and its size. The active segment is the last entry.
type segInfo struct {
	base   uint64
	last   uint64 // valid when sealed
	bytes  int64
	path   string
	sealed bool
}

// Stats is a point-in-time summary of the log, exposed through
// /v1/stats and /metrics by the serving layer.
type Stats struct {
	// Policy is the configured sync policy name.
	Policy string
	// LastLSN is the highest LSN appended; SyncedLSN the highest known
	// fsynced; CheckpointLSN the highest LSN captured by a snapshot.
	LastLSN, SyncedLSN, CheckpointLSN uint64
	// Depth is LastLSN − CheckpointLSN: records that only the log holds.
	Depth uint64
	// Segments and Bytes describe the live segment files on disk.
	Segments int
	Bytes    int64
	// AppendedBytes is the cumulative frame bytes accepted by Append
	// since Open — unlike Bytes it is monotone, surviving checkpoint
	// truncation, so it meters write traffic per unit time.
	AppendedBytes int64
	// Fsyncs counts fsync calls; LastFsync and MeanFsync their latency.
	Fsyncs    uint64
	LastFsync time.Duration
	MeanFsync time.Duration
}

// Log is the append side of the write-ahead log. All methods are safe
// for concurrent use. Construct with Open.
type Log struct {
	dir  string
	opts Options
	fs   FS

	mu   sync.Mutex
	wake *sync.Cond // signals the writer goroutine: pending work
	ack  *sync.Cond // broadcast when written/synced/rotated state advances

	pending    []Record
	nextLSN    uint64 // highest LSN assigned
	writtenLSN uint64 // highest LSN written to the OS
	syncedLSN  uint64 // highest LSN fsynced
	wantSync   uint64 // highest LSN some waiter needs fsynced
	ckptLSN    uint64 // highest LSN covered by a checkpoint
	rotateReq  bool   // seal the active segment at the next opportunity
	segments   []segInfo
	err        error // sticky I/O failure: the log is broken until reopened
	closed     bool
	done       chan struct{}
	stopTicker chan struct{}

	fsyncs        uint64
	fsyncTotal    time.Duration
	lastFsync     time.Duration
	appendedBytes int64 // cumulative frame bytes accepted by Append

	// replaySegs are the pre-existing segments found at Open, in LSN
	// order — the input to Replay.
	replaySegs []segInfo

	// torn records how many trailing bytes Open discarded from torn
	// segment tails.
	torn int64

	// writer-goroutine state (no lock needed).
	seg        faultfs.File
	buf        []byte
	retries    int // consecutive recoverable write failures
	maxRetries int

	logger *slog.Logger
}

// fail records the first sticky I/O failure (later ones are ignored —
// the log is already broken) and logs it. Caller holds l.mu.
func (l *Log) fail(err error) {
	if err != nil && l.err == nil {
		l.err = err
		l.logger.Error("wal: sticky I/O failure, log broken until reopen", "err", err)
	}
}

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log closed")

func segName(base uint64) string { return fmt.Sprintf("%016x.wal", base) }

// parseSegName extracts the base LSN from a segment filename.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, ".wal") || len(name) != 20 {
		return 0, false
	}
	base, err := strconv.ParseUint(strings.TrimSuffix(name, ".wal"), 16, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}

// Open scans dir (created if missing) for existing segments, validates
// and truncates a torn tail on the newest one, and prepares the log for
// appending — new records continue the LSN sequence in a fresh segment.
// Call Replay before the first Append to reapply the surviving records.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, fs: opts.FS, logger: opts.Logger, maxRetries: 8, done: make(chan struct{})}
	l.wake = sync.NewCond(&l.mu)
	l.ack = sync.NewCond(&l.mu)
	if err := l.scan(); err != nil {
		return nil, err
	}
	if l.torn > 0 {
		l.logger.Warn("wal: discarded torn tail", "dir", dir, "torn_bytes", l.torn)
	}
	l.logger.Debug("wal: opened", "dir", dir,
		"segments", len(l.replaySegs), "last_lsn", l.nextLSN, "policy", opts.Policy.String())
	if l.nextLSN < opts.MinNextLSN {
		l.nextLSN = opts.MinNextLSN
	}
	// Start a fresh active segment: appends after a truncated tail are
	// never mixed into a file a previous process may still hold open.
	if err := l.openSegment(l.nextLSN + 1); err != nil {
		return nil, err
	}
	go l.run()
	if opts.Policy == SyncInterval {
		l.stopTicker = make(chan struct{})
		go l.tick()
	}
	return l, nil
}

// scan discovers existing segments, drops trailing segments holding no
// complete record (fresh actives or all-torn tails of a crashed
// process), truncates the torn tail of the newest surviving segment,
// and derives the next LSN.
func (l *Log) scan() error {
	entries, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return err
	}
	var segs []segInfo
	for _, e := range entries {
		base, ok := parseSegName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return err
		}
		segs = append(segs, segInfo{
			base: base, bytes: info.Size(),
			path:   filepath.Join(l.dir, e.Name()),
			sealed: true,
		})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].base <= segs[i].base {
			return fmt.Errorf("wal: overlapping segments %s and %s", segs[i].path, segs[i+1].path)
		}
	}
	// Walk trailing segments until one holds a complete record: validate
	// it frame by frame, truncating everything after the last valid
	// frame. Record-free trailing segments are removed outright so the
	// fresh active segment can reuse their name.
	for len(segs) > 0 {
		tail := &segs[len(segs)-1]
		lastLSN, validBytes, err := validPrefix(l.fs, tail.path, tail.base)
		if err != nil {
			return err
		}
		if lastLSN >= tail.base {
			if torn := tail.bytes - validBytes; torn > 0 {
				if err := l.fs.Truncate(tail.path, validBytes); err != nil {
					return err
				}
				l.torn += torn
				tail.bytes = validBytes
			}
			tail.last = lastLSN
			break
		}
		// A record-free segment is torn only beyond its header: a
		// header-only file is just the empty active segment of a clean
		// (or cleanly checkpointed) previous run.
		if tail.bytes > segHeaderSize {
			l.torn += tail.bytes - segHeaderSize
		} else if tail.bytes < segHeaderSize {
			l.torn += tail.bytes
		}
		if err := l.fs.Remove(tail.path); err != nil {
			return err
		}
		segs = segs[:len(segs)-1]
	}
	// Sealed non-tail segments' last LSNs follow from their successors'
	// bases; their integrity is validated when Replay reads them.
	for i := 0; i+1 < len(segs); i++ {
		segs[i].last = segs[i+1].base - 1
	}
	l.segments = segs
	l.replaySegs = append([]segInfo(nil), segs...)
	if n := len(segs); n > 0 {
		l.nextLSN = segs[n-1].last
	}
	return nil
}

// openSegment creates the new active segment file with base as its
// first LSN. Runs before the writer goroutine starts (from Open) or on
// the writer goroutine itself (rotation).
func (l *Log) openSegment(base uint64) error {
	path := filepath.Join(l.dir, segName(base))
	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(appendSegHeader(nil, base)); err != nil {
		f.Close()
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.seg = f
	l.mu.Lock()
	l.segments = append(l.segments, segInfo{base: base, bytes: segHeaderSize, path: path})
	l.mu.Unlock()
	return nil
}

// Append assigns LSNs to recs, hands them to the writer goroutine, and
// returns the last LSN assigned. It does not wait for durability — pair
// it with WaitDurable. The record Vec slices must stay unmodified until
// WaitDurable returns for the returned LSN.
func (l *Log) Append(recs ...Record) (uint64, error) {
	if len(recs) == 0 {
		return 0, errors.New("wal: empty append")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	for i := range recs {
		l.nextLSN++
		recs[i].LSN = l.nextLSN
		l.appendedBytes += frameSize(recs[i])
	}
	l.pending = append(l.pending, recs...)
	l.wake.Signal()
	return l.nextLSN, nil
}

// WaitDurable blocks until the record at lsn is durable under the
// configured policy: fsynced for SyncAlways, written to the OS for
// SyncInterval and SyncNone. An acknowledged append is exactly
// Append + WaitDurable.
func (l *Log) WaitDurable(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	watermark := &l.writtenLSN
	if l.opts.Policy == SyncAlways {
		watermark = &l.syncedLSN
	}
	for *watermark < lsn && l.err == nil && !l.closed {
		l.ack.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if *watermark < lsn {
		return ErrClosed
	}
	return nil
}

// Sync forces an fsync covering every record appended so far,
// regardless of policy, and waits for it.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	target := l.nextLSN
	if target > l.wantSync {
		l.wantSync = target
	}
	l.wake.Signal()
	for l.syncedLSN < target && l.err == nil && !l.closed {
		l.ack.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if l.syncedLSN < target {
		return ErrClosed
	}
	return nil
}

// LastLSN returns the highest LSN assigned so far.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// SetCheckpointLSN records the recovered checkpoint watermark (from the
// manifest) so Stats' depth accounting starts correct after Open.
func (l *Log) SetCheckpointLSN(lsn uint64) {
	l.mu.Lock()
	if lsn > l.ckptLSN {
		l.ckptLSN = lsn
	}
	l.mu.Unlock()
}

// TruncateThrough marks every record at or below lsn as captured by a
// checkpoint and deletes the segment files whose records all lie at or
// below it. The active segment is first sealed (rotated away) when it
// holds any such records, so a checkpoint of a quiescent log leaves
// exactly one empty active segment behind.
func (l *Log) TruncateThrough(lsn uint64) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if lsn > l.ckptLSN {
		l.ckptLSN = lsn
	}
	// Seal the active segment when it (or records still pending for it)
	// falls under the checkpoint; skip when it is empty or all-newer.
	active := l.segments[len(l.segments)-1]
	if active.base <= lsn && (active.bytes > segHeaderSize || len(l.pending) > 0) {
		l.rotateReq = true
		l.wake.Signal()
		for l.rotateReq && l.err == nil && !l.closed {
			l.ack.Wait()
		}
		if l.err != nil {
			err := l.err
			l.mu.Unlock()
			return err
		}
		if l.closed {
			l.mu.Unlock()
			return ErrClosed
		}
	}
	var drop []string
	keep := make([]segInfo, 0, len(l.segments))
	for _, s := range l.segments {
		if s.sealed && s.last <= lsn {
			drop = append(drop, s.path)
		} else {
			keep = append(keep, s)
		}
	}
	l.segments = keep
	l.mu.Unlock()
	for _, p := range drop {
		if err := l.fs.Remove(p); err != nil {
			return err
		}
	}
	if len(drop) > 0 {
		return l.fs.SyncDir(l.dir)
	}
	return nil
}

// Stats returns a point-in-time summary.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Policy:        l.opts.Policy.String(),
		LastLSN:       l.nextLSN,
		SyncedLSN:     l.syncedLSN,
		CheckpointLSN: l.ckptLSN,
		Segments:      len(l.segments),
		AppendedBytes: l.appendedBytes,
		Fsyncs:        l.fsyncs,
		LastFsync:     l.lastFsync,
	}
	if l.nextLSN > l.ckptLSN {
		st.Depth = l.nextLSN - l.ckptLSN
	}
	for _, s := range l.segments {
		st.Bytes += s.bytes
	}
	if l.fsyncs > 0 {
		st.MeanFsync = l.fsyncTotal / time.Duration(l.fsyncs)
	}
	return st
}

// TornBytes reports how many bytes of torn tail Open discarded.
func (l *Log) TornBytes() int64 { return l.torn }

// Close drains pending appends, fsyncs, and closes the active segment.
// It does not checkpoint — on the next Open the log replays in full;
// callers wanting an empty log on restart checkpoint first.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.closed = true
	l.wake.Signal()
	l.mu.Unlock()
	if l.stopTicker != nil {
		close(l.stopTicker)
	}
	<-l.done
	l.mu.Lock()
	err := l.err
	l.mu.Unlock()
	return err
}

// tick drives the SyncInterval policy: request an fsync of everything
// written, once per interval.
func (l *Log) tick() {
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if l.writtenLSN > l.syncedLSN && l.writtenLSN > l.wantSync {
				l.wantSync = l.writtenLSN
				l.wake.Signal()
			}
			l.mu.Unlock()
		case <-l.stopTicker:
			return
		}
	}
}

// run is the writer goroutine: the only code that touches segment file
// descriptors after Open. It drains batches of pending records, writes
// them (rotating segments at the size threshold), and fsyncs per policy
// or on demand — every waiter queued behind one fsync shares it.
func (l *Log) run() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for !l.closed &&
			(l.err != nil || (len(l.pending) == 0 && !l.rotateReq && l.wantSync <= l.syncedLSN)) {
			l.wake.Wait()
		}
		if l.closed && (len(l.pending) == 0 || l.err != nil) {
			broken := l.err != nil
			l.mu.Unlock()
			var serr, cerr error
			if !broken {
				// Final fsync so Close leaves everything written durable.
				serr = l.seg.Sync()
				cerr = l.seg.Close()
			}
			l.mu.Lock()
			l.fail(serr)
			l.fail(cerr)
			l.ack.Broadcast()
			l.mu.Unlock()
			return
		}
		batch := l.pending
		l.pending = nil
		rotate := l.rotateReq
		l.mu.Unlock()

		var wrote uint64
		var werr error
		if len(batch) > 0 {
			wrote, werr = l.writeBatch(batch)
		}

		l.mu.Lock()
		if wrote > 0 {
			l.writtenLSN = wrote
			l.retries = 0 // progress: a stream of partial successes is not a dead disk
		}
		var recov *errRecoverable
		if werr != nil && errors.As(werr, &recov) {
			// Torn-record recovery: the active segment was restored to
			// its last good record boundary by writeBatch, so the
			// unwritten suffix of the batch can simply be written again.
			// Requeue it ahead of anything appended meanwhile (LSN order
			// on disk must match assignment order) and retry. Without
			// the truncation, a torn record would sit mid-segment and a
			// later successful append would land after it — strict
			// Replay then errors mid-log and a transient fault becomes
			// permanent data loss. Without the bounded-retry fallback, a
			// persistently full or dead disk would spin forever; after
			// maxRetries consecutive failures the error turns sticky and
			// the log is broken until reopened, exactly as before.
			l.retries++
			if l.retries <= l.maxRetries {
				skip := 0
				for skip < len(batch) && batch[skip].LSN <= wrote {
					skip++
				}
				requeue := batch[skip:]
				l.pending = append(append(make([]Record, 0, len(requeue)+len(l.pending)), requeue...), l.pending...)
				werr = nil
			} else {
				werr = recov.err
			}
		}
		lastWritten := l.writtenLSN
		l.mu.Unlock()
		if rotate && werr == nil {
			werr = l.rotate(lastWritten)
		}

		l.mu.Lock()
		l.fail(werr)
		if rotate {
			l.rotateReq = false
		}
		doSync := l.err == nil &&
			((l.opts.Policy == SyncAlways && l.writtenLSN > l.syncedLSN) ||
				l.wantSync > l.syncedLSN)
		target := l.writtenLSN
		if !doSync {
			l.ack.Broadcast()
			l.mu.Unlock()
			continue
		}
		l.mu.Unlock()
		t0 := time.Now()
		serr := l.seg.Sync()
		d := time.Since(t0)
		l.mu.Lock()
		l.fsyncs++
		l.fsyncTotal += d
		l.lastFsync = d
		if serr != nil {
			l.fail(serr)
		} else if l.syncedLSN < target {
			// Records in segments sealed before this fsync were fsynced
			// at seal time, so syncing the active segment completes
			// durability through target.
			l.syncedLSN = target
		}
		l.ack.Broadcast()
		l.mu.Unlock()
	}
}

// errRecoverable wraps a write failure after which the active segment
// was successfully restored to a record boundary: the writer may
// requeue the unwritten records and retry. Rotation and fsync failures
// are never recoverable — a failed fsync may have dropped dirty pages
// the kernel now reports clean (fsyncgate), so no later fsync can be
// trusted to cover them.
type errRecoverable struct{ err error }

func (e *errRecoverable) Error() string { return e.err.Error() }
func (e *errRecoverable) Unwrap() error { return e.err }

// writeBatch encodes and writes a batch of records, rotating the active
// segment when it crosses the size threshold. It returns the LSN of the
// last record of this batch known fully on disk (0 when none). On a
// write failure it truncates the active segment back to the record
// boundary it had before the failing write — a torn record must never
// stay in the file, or a later append would land after it and strict
// Replay would error mid-log — and reports the failure as recoverable.
// Failures of the restore itself, or of rotation (which fsyncs), are
// permanent.
func (l *Log) writeBatch(batch []Record) (uint64, error) {
	var onDisk uint64
	l.buf = l.buf[:0]
	flush := func(through uint64) error {
		if len(l.buf) == 0 {
			return nil
		}
		l.mu.Lock()
		pre := l.segments[len(l.segments)-1].bytes
		l.mu.Unlock()
		n, err := l.seg.Write(l.buf)
		l.buf = l.buf[:0]
		if err != nil {
			if rerr := l.restoreBoundary(pre); rerr != nil {
				return fmt.Errorf("wal: write failed (%v), segment restore failed: %w", err, rerr)
			}
			return &errRecoverable{err: err}
		}
		l.mu.Lock()
		l.segments[len(l.segments)-1].bytes = pre + int64(n)
		l.mu.Unlock()
		onDisk = through
		return nil
	}
	l.mu.Lock()
	segBytes := l.segments[len(l.segments)-1].bytes
	l.mu.Unlock()
	for _, rec := range batch {
		start := len(l.buf)
		l.buf = appendFrame(l.buf, rec)
		if segBytes+int64(len(l.buf)) > l.opts.SegmentBytes && segBytes+int64(start) > segHeaderSize {
			// Flush what fits, seal behind the previous record, and
			// carry the current frame into the fresh segment.
			frame := append([]byte(nil), l.buf[start:]...)
			l.buf = l.buf[:start]
			if err := flush(rec.LSN - 1); err != nil {
				return onDisk, err
			}
			if err := l.rotate(rec.LSN - 1); err != nil {
				return onDisk, err
			}
			segBytes = segHeaderSize
			l.buf = append(l.buf, frame...)
		}
	}
	if err := flush(batch[len(batch)-1].LSN); err != nil {
		return onDisk, err
	}
	return onDisk, nil
}

// restoreBoundary truncates the active segment to size — a known
// record boundary — and repositions the write offset there, erasing
// whatever a failed write tore into the file.
func (l *Log) restoreBoundary(size int64) error {
	if err := l.seg.Truncate(size); err != nil {
		return err
	}
	if _, err := l.seg.Seek(size, io.SeekStart); err != nil {
		return err
	}
	l.mu.Lock()
	l.segments[len(l.segments)-1].bytes = size
	l.mu.Unlock()
	return nil
}

// rotate seals the active segment — fsync, close, record last as its
// final LSN — and opens a fresh one based at last+1. Sealing fsyncs
// under every policy: a sealed segment is immutable, so its one fsync
// is cheap insurance that truncation bookkeeping never outruns the
// disk. Runs on the writer goroutine only.
func (l *Log) rotate(last uint64) error {
	l.mu.Lock()
	if l.segments[len(l.segments)-1].bytes <= segHeaderSize {
		l.mu.Unlock()
		return nil // nothing to seal
	}
	l.mu.Unlock()
	if err := l.seg.Sync(); err != nil {
		return err
	}
	if err := l.seg.Close(); err != nil {
		return err
	}
	l.mu.Lock()
	active := &l.segments[len(l.segments)-1]
	active.sealed = true
	active.last = last
	if l.syncedLSN < last {
		l.syncedLSN = last
	}
	sealed := active.path
	bytes := active.bytes
	l.mu.Unlock()
	l.logger.Debug("wal: sealed segment", "path", sealed, "last_lsn", last, "bytes", bytes)
	return l.openSegment(last + 1)
}
