package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"lccs/internal/faultfs"
)

// ManifestName is the manifest's filename inside a data directory.
const ManifestName = "MANIFEST"

// Manifest is the durable root of a data directory: it names the active
// snapshot files and the WAL position they capture. It is replaced
// atomically (write-temp, fsync, rename, fsync dir), so a crash at any
// point leaves either the old or the new manifest — never a partial
// one. Recovery is: load Container+Dataset, then replay WAL records
// with LSN > LSN.
type Manifest struct {
	// Container and Dataset are the snapshot's index container and
	// vector file, relative to the data directory. Empty strings mean
	// the checkpointed state holds no vectors — recovery starts from an
	// empty index (at the IDWatermark below).
	Container string `json:"container"`
	Dataset   string `json:"dataset"`
	// LSN is the checkpoint watermark: every WAL record at or below it
	// is captured by the snapshot and must not be replayed.
	LSN uint64 `json:"lsn"`
	// Generation increments with every checkpoint; it names the
	// snapshot files so a new checkpoint never overwrites the files the
	// current manifest points at.
	Generation uint64 `json:"generation"`
	// IDWatermark is the next id to allocate when Container is empty —
	// an index whose every vector was deleted still must never reissue
	// an id. (A non-empty container carries its own watermark.)
	IDWatermark uint64 `json:"id_watermark,omitempty"`
}

// ReadManifest loads the manifest from dir on the real filesystem. A
// missing manifest is not an error: it returns (nil, nil), meaning a
// fresh data directory.
func ReadManifest(dir string) (*Manifest, error) {
	return ReadManifestFS(faultfs.OS{}, dir)
}

// ReadManifestFS is ReadManifest over an injectable filesystem.
func ReadManifestFS(fsys FS, dir string) (*Manifest, error) {
	blob, err := fsys.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("wal: corrupt manifest in %s: %w", dir, err)
	}
	return &m, nil
}

// WriteManifest atomically replaces the manifest in dir on the real
// filesystem.
func WriteManifest(dir string, m *Manifest) error {
	return WriteManifestFS(faultfs.OS{}, dir, m)
}

// WriteManifestFS is WriteManifest over an injectable filesystem:
// write to a temp file, fsync it, rename over the manifest, fsync the
// directory — a crash at any point leaves either the old or the new
// manifest, never a partial one.
func WriteManifestFS(fsys FS, dir string, m *Manifest) error {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	tmp := filepath.Join(dir, ManifestName+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}
