package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// append a mixed batch of inserts and deletes, one call per record.
func appendAll(t *testing.T, l *Log, recs []Record) uint64 {
	t.Helper()
	var last uint64
	for _, rec := range recs {
		lsn, err := l.Append(rec)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		last = lsn
	}
	if err := l.WaitDurable(last); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
	return last
}

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		if i%4 == 3 {
			recs[i] = Record{Op: OpDelete, ID: int64(i / 2)}
		} else {
			recs[i] = Record{Op: OpInsert, ID: int64(i), Vec: []float32{float32(i), -float32(i), 0.5}}
		}
	}
	return recs
}

// collect replays everything above from into a slice, deep-copying the
// scratch-backed vectors.
func collect(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	var out []Record
	_, err := l.Replay(from, func(rec Record) error {
		rec.Vec = append([]float32(nil), rec.Vec...)
		out = append(out, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func checkRecords(t *testing.T, got, want []Record, firstLSN uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		if g.LSN != firstLSN+uint64(i) {
			t.Errorf("record %d: LSN %d, want %d", i, g.LSN, firstLSN+uint64(i))
		}
		if g.Op != w.Op || g.ID != w.ID {
			t.Errorf("record %d: got op=%d id=%d, want op=%d id=%d", i, g.Op, g.ID, w.Op, w.ID)
		}
		if len(g.Vec) != len(w.Vec) {
			t.Errorf("record %d: vec length %d, want %d", i, len(g.Vec), len(w.Vec))
			continue
		}
		for j := range g.Vec {
			if g.Vec[j] != w.Vec[j] {
				t.Errorf("record %d: vec[%d] = %v, want %v", i, j, g.Vec[j], w.Vec[j])
			}
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Policy: policy, Interval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			recs := testRecords(100)
			appendAll(t, l, recs)
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			checkRecords(t, collect(t, l2, 0), recs, 1)
			if got := l2.LastLSN(); got != 100 {
				t.Fatalf("LastLSN after reopen = %d, want 100", got)
			}
		})
	}
}

func TestRotationSpansSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(200)
	appendAll(t, l, recs)
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	checkRecords(t, collect(t, l2, 0), recs, 1)
}

func TestReplayFromWatermarkSkips(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(50)
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2, 30)
	checkRecords(t, got, recs[30:], 31)
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(20)
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn final write: append half a frame of garbage to the
	// newest segment.
	seg := newestSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	defer l2.Close()
	if l2.TornBytes() == 0 {
		t.Fatal("expected torn bytes to be reported")
	}
	checkRecords(t, collect(t, l2, 0), recs, 1)
	// The log must keep accepting appends at the right LSN.
	lsn, err := l2.Append(Record{Op: OpDelete, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 21 {
		t.Fatalf("append after torn-tail recovery got LSN %d, want 21", lsn)
	}
}

func TestCorruptInteriorFrameErrors(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, testRecords(20))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the segment body.
	seg := newestSegment(t, dir)
	blob, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(seg, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	// Open tolerates it (the valid prefix shrinks), but the segment now
	// holds fewer records — and if a later segment existed, replay would
	// error. Verify the prefix contract: replay yields a strict prefix.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2, 0)
	if len(got) >= 20 {
		t.Fatalf("corruption went unnoticed: replayed %d records", len(got))
	}
	for i, rec := range got {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d, want %d", i, rec.LSN, i+1)
		}
	}
}

func TestCorruptSealedSegmentFailsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, testRecords(100))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segmentPaths(t, dir)
	if len(segs) < 2 {
		t.Fatalf("need at least 2 segments, got %d", len(segs))
	}
	blob, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[segHeaderSize+10] ^= 0xFF
	if err := os.WriteFile(segs[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := l2.Replay(0, func(Record) error { return nil }); err == nil {
		t.Fatal("replay over a corrupt sealed segment must error")
	}
}

func TestTruncateThroughDeletesSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	last := appendAll(t, l, testRecords(200))
	before := l.Stats()
	if before.Segments < 3 {
		t.Fatalf("expected several segments, got %d", before.Segments)
	}
	if err := l.TruncateThrough(last); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.Segments != 1 {
		t.Fatalf("after full truncation want 1 (empty active) segment, got %d", after.Segments)
	}
	if after.Depth != 0 {
		t.Fatalf("depth after truncation = %d, want 0", after.Depth)
	}
	if got := len(segmentPaths(t, dir)); got != 1 {
		t.Fatalf("%d segment files on disk, want 1", got)
	}
	// Appends continue at the next LSN after truncation.
	lsn, err := l.Append(Record{Op: OpDelete, ID: 0})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != last+1 {
		t.Fatalf("append after truncation got LSN %d, want %d", lsn, last+1)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
}

func TestPartialTruncateKeepsNewerSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(200)
	appendAll(t, l, recs)
	if err := l.TruncateThrough(50); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2, 50)
	checkRecords(t, got, recs[50:], 51)
}

func TestConcurrentAppendersGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 50
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := l.Append(Record{Op: OpInsert, ID: int64(w*perWriter + i), Vec: []float32{float32(w), float32(i)}})
				if err == nil {
					err = l.WaitDurable(lsn)
				}
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.LastLSN != writers*perWriter {
		t.Fatalf("LastLSN = %d, want %d", st.LastLSN, writers*perWriter)
	}
	if st.SyncedLSN != st.LastLSN {
		t.Fatalf("SyncedLSN = %d, want %d", st.SyncedLSN, st.LastLSN)
	}
	// Group commit: with 8 concurrent writers the fsync count must come
	// in well under one per record.
	if st.Fsyncs >= writers*perWriter {
		t.Errorf("no group commit: %d fsyncs for %d records", st.Fsyncs, writers*perWriter)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seen := make(map[int64]bool)
	if _, err := l2.Replay(0, func(rec Record) error {
		if rec.Op == OpInsert {
			seen[rec.ID] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("replay found %d distinct inserts, want %d", len(seen), writers*perWriter)
	}
}

func TestSyncForcesDurability(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	last := appendAll(t, l, testRecords(10))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.SyncedLSN != last {
		t.Fatalf("SyncedLSN after Sync = %d, want %d", st.SyncedLSN, last)
	}
	if st.Fsyncs == 0 {
		t.Fatal("Sync did not fsync")
	}
}

func TestClosedLogRejectsOperations(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Op: OpDelete, ID: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on closed log: %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync on closed log: %v, want ErrClosed", err)
	}
	if err := l.TruncateThrough(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("TruncateThrough on closed log: %v, want ErrClosed", err)
	}
	if err := l.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close: %v, want ErrClosed", err)
	}
}

func TestManifestRoundTripAndAtomicity(t *testing.T) {
	dir := t.TempDir()
	m, err := ReadManifest(dir)
	if err != nil || m != nil {
		t.Fatalf("fresh dir manifest = %v, %v; want nil, nil", m, err)
	}
	want := &Manifest{Container: "snapshot-3.lccs", Dataset: "snapshot-3.ds", LSN: 42, Generation: 3}
	if err := WriteManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("manifest round trip: got %+v, want %+v", got, want)
	}
	// No temp file may linger.
	if _, err := os.Stat(filepath.Join(dir, ManifestName+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("temp manifest left behind: %v", err)
	}
	// A corrupt manifest errors rather than restarting empty.
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("corrupt manifest must error")
	}
}

func TestReopenAfterAbandonReplays(t *testing.T) {
	// Crash simulation: the first log is abandoned without Close — as
	// after SIGKILL — and a second Open over the same directory must
	// recover every acked record.
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(60)
	appendAll(t, l, recs) // acked under SyncAlways: all must survive
	// No Close. Reopen.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	checkRecords(t, collect(t, l2, 0), recs, 1)
}

func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	segs := segmentPaths(t, dir)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	return segs[len(segs)-1]
}

func segmentPaths(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

func TestStatsDepthTracksCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, testRecords(10))
	l.SetCheckpointLSN(4)
	if d := l.Stats().Depth; d != 6 {
		t.Fatalf("depth = %d, want 6", d)
	}
	if p := l.Stats().Policy; p != "none" {
		t.Fatalf("policy = %q, want none", p)
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]SyncPolicy{"always": SyncAlways, " Interval ": SyncInterval, "NONE": SyncNone} {
		got, err := ParsePolicy(name)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy must reject unknown names")
	}
}

func TestSegmentNameRoundTrip(t *testing.T) {
	for _, base := range []uint64{1, 255, 1 << 40} {
		name := segName(base)
		got, ok := parseSegName(name)
		if !ok || got != base {
			t.Fatalf("parseSegName(%q) = %d, %v; want %d", name, got, ok, base)
		}
	}
	for _, bad := range []string{"x.wal", "0000000000000001.log", fmt.Sprintf("%017x.wal", 1)} {
		if _, ok := parseSegName(bad); ok {
			t.Fatalf("parseSegName(%q) accepted", bad)
		}
	}
}

// TestInsertAttrsRoundTrip pins the OpInsertAttrs frame: the opaque
// attribute blob survives append → replay byte for byte, alongside
// plain inserts and deletes, and empty blobs are legal.
func TestInsertAttrsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Op: OpInsertAttrs, ID: 0, Vec: []float32{1, 2, 3}, Attrs: []byte("blob-zero")},
		{Op: OpInsert, ID: 1, Vec: []float32{4, 5, 6}},
		{Op: OpInsertAttrs, ID: 2, Vec: []float32{7, 8, 9}, Attrs: []byte{}},
		{Op: OpDelete, ID: 1},
		{Op: OpInsertAttrs, ID: 3, Vec: []float32{0}, Attrs: []byte{0xFF, 0x00, 0x7F}},
	}
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	var got []Record
	if _, err := l.Replay(0, func(rec Record) error {
		rec.Vec = append([]float32(nil), rec.Vec...)
		rec.Attrs = append([]byte(nil), rec.Attrs...)
		got = append(got, rec)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, rec := range got {
		want := recs[i]
		if rec.Op != want.Op || rec.ID != want.ID {
			t.Fatalf("record %d: got op=%d id=%d, want op=%d id=%d", i, rec.Op, rec.ID, want.Op, want.ID)
		}
		if len(rec.Vec) != len(want.Vec) {
			t.Fatalf("record %d: vec length %d, want %d", i, len(rec.Vec), len(want.Vec))
		}
		for j := range rec.Vec {
			if rec.Vec[j] != want.Vec[j] {
				t.Fatalf("record %d: vec[%d] = %v, want %v", i, j, rec.Vec[j], want.Vec[j])
			}
		}
		if want.Op == OpInsertAttrs {
			if string(rec.Attrs) != string(want.Attrs) {
				t.Fatalf("record %d: attrs %q, want %q", i, rec.Attrs, want.Attrs)
			}
		} else if rec.Attrs != nil {
			t.Fatalf("record %d: unexpected attrs %q", i, rec.Attrs)
		}
	}
}
