package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// On-disk layout. A segment file is a 16-byte header followed by frames:
//
//	header := magic "LCCSWAL1" (8) | base LSN (8, uint64 LE)
//	frame  := payload length (4, uint32 LE) | CRC32C(payload) (4, uint32 LE) | payload
//	payload:= LSN (8) | op (1) | id (8) [| dim (4) | dim × float32 bits
//	          [| attrs length (4) | attrs bytes]]
//
// The CRC covers the payload only; a corrupt length field makes the CRC
// check fail with overwhelming probability anyway, and the length bounds
// below keep a corrupt length from driving a huge allocation. LSNs are
// assigned densely: the first frame of a segment carries the header's
// base LSN and every following frame increments it by exactly one, so a
// reader detects dropped or duplicated frames structurally.

// Op is the kind of one logged record.
type Op uint8

// The record kinds of the dynamic-index write path.
const (
	// OpInsert journals one vector insert: the assigned stable id and
	// the vector payload.
	OpInsert Op = 1
	// OpDelete journals one tombstone: the deleted stable id.
	OpDelete Op = 2
	// OpInsertAttrs journals one vector insert that carries metadata:
	// the OpInsert payload followed by an opaque attribute blob (the
	// log does not interpret it — the caller owns the encoding).
	OpInsertAttrs Op = 3
)

// Record is one logged write. Vec is present only for OpInsert and
// OpInsertAttrs, Attrs only for OpInsertAttrs; during replay both are
// views into the reader's scratch buffers, valid only for the duration
// of the callback.
type Record struct {
	// LSN is the record's log sequence number, assigned by Append.
	LSN uint64
	// Op is the record kind.
	Op Op
	// ID is the stable external vector id the operation applies to.
	ID int64
	// Vec is the inserted vector (OpInsert, OpInsertAttrs).
	Vec []float32
	// Attrs is the opaque encoded attribute row (OpInsertAttrs only).
	Attrs []byte
}

var segMagic = [8]byte{'L', 'C', 'C', 'S', 'W', 'A', 'L', '1'}

const (
	segHeaderSize = 16
	frameHeader   = 8
	// minPayload is a delete record: LSN + op + id.
	minPayload = 8 + 1 + 8
	// maxPayload bounds one frame (≈ a 16M-dimensional vector) so a
	// corrupt length cannot drive an unbounded allocation.
	maxPayload = 1 << 26
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameSize returns the encoded size of rec's frame (header included)
// without encoding it — the append path's byte accounting.
func frameSize(rec Record) int64 {
	payload := minPayload
	if rec.Op == OpInsert || rec.Op == OpInsertAttrs {
		payload += 4 + 4*len(rec.Vec)
	}
	if rec.Op == OpInsertAttrs {
		payload += 4 + len(rec.Attrs)
	}
	return int64(frameHeader + payload)
}

// appendFrame encodes rec as one frame at the end of dst.
func appendFrame(dst []byte, rec Record) []byte {
	payload := minPayload
	if rec.Op == OpInsert || rec.Op == OpInsertAttrs {
		payload += 4 + 4*len(rec.Vec)
	}
	if rec.Op == OpInsertAttrs {
		payload += 4 + len(rec.Attrs)
	}
	start := len(dst)
	dst = append(dst, make([]byte, frameHeader+payload)...)
	binary.LittleEndian.PutUint32(dst[start:], uint32(payload))
	body := dst[start+frameHeader:]
	binary.LittleEndian.PutUint64(body[0:], rec.LSN)
	body[8] = byte(rec.Op)
	binary.LittleEndian.PutUint64(body[9:], uint64(rec.ID))
	if rec.Op == OpInsert || rec.Op == OpInsertAttrs {
		binary.LittleEndian.PutUint32(body[17:], uint32(len(rec.Vec)))
		for i, v := range rec.Vec {
			binary.LittleEndian.PutUint32(body[21+4*i:], math.Float32bits(v))
		}
	}
	if rec.Op == OpInsertAttrs {
		off := 21 + 4*len(rec.Vec)
		binary.LittleEndian.PutUint32(body[off:], uint32(len(rec.Attrs)))
		copy(body[off+4:], rec.Attrs)
	}
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(body, castagnoli))
	return dst
}

// errBadFrame marks a frame that failed structural validation — a torn
// tail when it is the last thing in the log, corruption anywhere else.
type errBadFrame struct{ reason string }

func (e *errBadFrame) Error() string { return "wal: bad frame: " + e.reason }

// frameReader decodes frames from one segment sequentially, reusing its
// scratch buffers across frames.
type frameReader struct {
	r   *bufio.Reader
	buf []byte
	vec []float32
}

// next decodes the next frame into rec, returning the frame's size in
// bytes. It returns io.EOF at a clean segment end and *errBadFrame for
// anything structurally invalid (truncated frame, length out of bounds,
// CRC mismatch). rec.Vec aliases the reader's scratch and is valid
// until the following call.
func (fr *frameReader) next(rec *Record) (int, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(fr.r, hdr[:1]); err == io.EOF {
		return 0, io.EOF
	} else if err != nil {
		return 0, &errBadFrame{"truncated header"}
	}
	if _, err := io.ReadFull(fr.r, hdr[1:]); err != nil {
		return 0, &errBadFrame{"truncated header"}
	}
	payload := binary.LittleEndian.Uint32(hdr[0:])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if payload < minPayload || payload > maxPayload {
		return 0, &errBadFrame{fmt.Sprintf("payload length %d out of bounds", payload)}
	}
	if cap(fr.buf) < int(payload) {
		fr.buf = make([]byte, payload)
	}
	body := fr.buf[:payload]
	if _, err := io.ReadFull(fr.r, body); err != nil {
		return 0, &errBadFrame{"truncated payload"}
	}
	if crc32.Checksum(body, castagnoli) != crc {
		return 0, &errBadFrame{"CRC mismatch"}
	}
	rec.LSN = binary.LittleEndian.Uint64(body[0:])
	rec.Op = Op(body[8])
	rec.ID = int64(binary.LittleEndian.Uint64(body[9:]))
	rec.Vec = nil
	rec.Attrs = nil
	switch rec.Op {
	case OpDelete:
		if payload != minPayload {
			return 0, &errBadFrame{"delete record with trailing bytes"}
		}
	case OpInsert:
		if payload < minPayload+4 {
			return 0, &errBadFrame{"insert record without dimension"}
		}
		dim := binary.LittleEndian.Uint32(body[17:])
		if uint32(payload) != minPayload+4+4*dim {
			return 0, &errBadFrame{fmt.Sprintf("insert record length %d disagrees with dimension %d", payload, dim)}
		}
		fr.decodeVec(rec, body, dim)
	case OpInsertAttrs:
		if payload < minPayload+4 {
			return 0, &errBadFrame{"insert record without dimension"}
		}
		dim := binary.LittleEndian.Uint32(body[17:])
		vecEnd := uint64(minPayload) + 4 + 4*uint64(dim)
		if uint64(payload) < vecEnd+4 {
			return 0, &errBadFrame{fmt.Sprintf("insert record length %d disagrees with dimension %d", payload, dim)}
		}
		attrsLen := binary.LittleEndian.Uint32(body[vecEnd:])
		if uint64(payload) != vecEnd+4+uint64(attrsLen) {
			return 0, &errBadFrame{fmt.Sprintf("insert record length %d disagrees with attribute length %d", payload, attrsLen)}
		}
		fr.decodeVec(rec, body, dim)
		rec.Attrs = body[vecEnd+4:]
	default:
		return 0, &errBadFrame{fmt.Sprintf("unknown op %d", rec.Op)}
	}
	return frameHeader + int(payload), nil
}

// decodeVec decodes the dim-prefixed vector payload into the reader's
// scratch; the lengths were already validated by the caller.
func (fr *frameReader) decodeVec(rec *Record, body []byte, dim uint32) {
	if cap(fr.vec) < int(dim) {
		fr.vec = make([]float32, dim)
	}
	rec.Vec = fr.vec[:dim]
	for i := range rec.Vec {
		rec.Vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[21+4*i:]))
	}
}

// appendSegHeader encodes a segment header.
func appendSegHeader(dst []byte, base uint64) []byte {
	dst = append(dst, segMagic[:]...)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], base)
	return append(dst, b[:]...)
}

// readSegHeader validates a segment header and returns its base LSN.
// A file too short to hold a header yields *errBadFrame (a torn
// creation); a wrong magic is hard corruption.
func readSegHeader(r io.Reader) (uint64, error) {
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, &errBadFrame{"truncated segment header"}
	}
	if [8]byte(hdr[:8]) != segMagic {
		return 0, fmt.Errorf("wal: bad segment magic %q", hdr[:8])
	}
	return binary.LittleEndian.Uint64(hdr[8:]), nil
}
