package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// validPrefix scans one segment file and returns the last LSN of its
// longest valid frame prefix (0 when no complete frame exists) together
// with the byte length of that prefix. Structural damage — a truncated
// header, a torn or CRC-corrupt frame, an out-of-sequence LSN — ends
// the prefix; a wrong magic or a header disagreeing with the filename
// is hard corruption and errors.
func validPrefix(fsys FS, path string, base uint64) (lastLSN uint64, validBytes int64, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	hdrBase, err := readSegHeader(r)
	var bad *errBadFrame
	if errors.As(err, &bad) {
		return 0, 0, nil // torn segment creation: no valid prefix at all
	}
	if err != nil {
		return 0, 0, fmt.Errorf("%w in %s", err, path)
	}
	if hdrBase != base {
		return 0, 0, fmt.Errorf("wal: segment %s header base %d disagrees with filename", path, hdrBase)
	}
	offset := int64(segHeaderSize)
	expected := base
	fr := frameReader{r: r}
	var rec Record
	for {
		n, err := fr.next(&rec)
		if err == io.EOF {
			return lastLSN, offset, nil
		}
		if errors.As(err, &bad) {
			return lastLSN, offset, nil // torn tail: the prefix ends here
		}
		if err != nil {
			return 0, 0, fmt.Errorf("wal: %s: %w", path, err)
		}
		if rec.LSN != expected {
			return lastLSN, offset, nil // sequence break: not our suffix
		}
		lastLSN = rec.LSN
		expected++
		offset += int64(n)
	}
}

// ReplayInfo summarizes one recovery replay.
type ReplayInfo struct {
	// Segments is how many segment files were read.
	Segments int
	// Records is how many records were delivered to the callback;
	// Skipped how many were below the from watermark (already captured
	// by the checkpoint the caller recovered).
	Records, Skipped uint64
	// FirstLSN and LastLSN bound the delivered records (0 when none).
	FirstLSN, LastLSN uint64
	// TornBytes is how many bytes of torn tail Open discarded before
	// this replay.
	TornBytes int64
}

// Replay reads the segments that existed when the log was opened, in
// LSN order, and delivers every record with LSN > from to fn. It must
// run before the first Append. Unlike the tail scan at Open — which
// forgives a torn final frame — replay validates every frame strictly:
// a bad frame in the middle of the log is corruption and errors, it is
// never silently skipped and never a panic.
func (l *Log) Replay(from uint64, fn func(Record) error) (ReplayInfo, error) {
	info := ReplayInfo{TornBytes: l.torn}
	for _, seg := range l.replaySegs {
		if seg.last <= from {
			info.Skipped += seg.last - seg.base + 1
			continue
		}
		info.Segments++
		if err := l.replaySegment(seg, from, fn, &info); err != nil {
			return info, err
		}
	}
	return info, nil
}

func (l *Log) replaySegment(seg segInfo, from uint64, fn func(Record) error, info *ReplayInfo) error {
	f, err := l.fs.Open(seg.path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	base, err := readSegHeader(r)
	if err != nil {
		return fmt.Errorf("wal: %s: %w", seg.path, err)
	}
	if base != seg.base {
		return fmt.Errorf("wal: segment %s header base %d disagrees with filename", seg.path, base)
	}
	fr := frameReader{r: r}
	var rec Record
	for expected := seg.base; expected <= seg.last; expected++ {
		if _, err := fr.next(&rec); err != nil {
			return fmt.Errorf("wal: %s: record %d: %w", seg.path, expected, err)
		}
		if rec.LSN != expected {
			return fmt.Errorf("wal: %s: record has LSN %d, want %d", seg.path, rec.LSN, expected)
		}
		if rec.LSN <= from {
			info.Skipped++
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
		info.Records++
		if info.FirstLSN == 0 {
			info.FirstLSN = rec.LSN
		}
		info.LastLSN = rec.LSN
	}
	return nil
}
