package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the search-latency
// histogram: exponential from 100µs to ~13s, matching the dynamic range
// from an in-cache hit to a cold exhaustive query.
var latencyBuckets = func() []float64 {
	b := make([]float64, 0, 18)
	for v := 100e-6; v < 15; v *= 2 {
		b = append(b, v)
	}
	return b
}()

// histogram is a fixed-bucket latency histogram, safe for concurrent
// observation. counts[i] holds observations ≤ buckets[i]; the final
// slot is the +Inf bucket.
type histogram struct {
	mu     sync.Mutex
	counts []uint64
	sum    float64
	total  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(sec float64) {
	i := sort.SearchFloat64s(latencyBuckets, sec)
	h.mu.Lock()
	h.counts[i]++
	h.sum += sec
	h.total++
	h.mu.Unlock()
}

// quantile approximates the q-quantile (0 < q < 1) from the bucket
// counts, interpolating linearly inside the selected bucket. It returns
// 0 when nothing has been observed.
func (h *histogram) quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	rank := q * float64(h.total)
	var cum, prevCum float64
	for i, c := range h.counts {
		prevCum = cum
		cum += float64(c)
		if cum >= rank {
			if i >= len(latencyBuckets) {
				// Overflow (+Inf) bucket: there is no finite upper
				// bound to interpolate toward, so clamp to the top
				// finite bound rather than extrapolating (2*lo used
				// to report latencies no observation ever had).
				return latencyBuckets[len(latencyBuckets)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = latencyBuckets[i-1]
			}
			hi := latencyBuckets[i]
			if c == 0 {
				return hi
			}
			return lo + (hi-lo)*(rank-prevCum)/float64(c)
		}
	}
	return latencyBuckets[len(latencyBuckets)-1]
}

// snapshot returns copies of the counters for rendering.
func (h *histogram) snapshot() (counts []uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...), h.sum, h.total
}

// reqKey identifies one requests_total series. collection is empty for
// server-scoped endpoints (healthz, metrics, the registry CRUD).
type reqKey struct {
	collection string
	endpoint   string
	code       int
}

// metrics aggregates the server's counters: per-endpoint/status request
// counts and the search latency histogram. Gauges (in-flight, queue
// depth, cache entries, index size) are read live from their owners at
// render time, so they are never stale.
type metrics struct {
	start    time.Time
	mu       sync.Mutex
	requests map[reqKey]uint64
	latency  *histogram
}

func newMetrics() *metrics {
	return &metrics{
		start:    time.Now(),
		requests: make(map[reqKey]uint64),
		latency:  newHistogram(),
	}
}

func (m *metrics) countRequest(collection, endpoint string, code int) {
	m.mu.Lock()
	m.requests[reqKey{collection, endpoint, code}]++
	m.mu.Unlock()
}

// requestsSnapshot returns a stable-ordered copy of the request
// counters.
func (m *metrics) requestsSnapshot() ([]reqKey, map[reqKey]uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := make(map[reqKey]uint64, len(m.requests))
	keys := make([]reqKey, 0, len(m.requests))
	for k, v := range m.requests {
		cp[k] = v
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].collection != keys[j].collection {
			return keys[i].collection < keys[j].collection
		}
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	return keys, cp
}

// gauge is one live-read sample rendered into /metrics. labels, when
// non-empty, is the pre-rendered label set (`{collection="x"}`);
// several samples may share a name with different labels — HELP/TYPE
// headers are emitted once per family, so same-family samples must be
// adjacent in the slice.
type gauge struct {
	name   string
	help   string
	value  float64
	labels string
}

// writeProm renders everything in the Prometheus text exposition format
// (version 0.0.4); counters and gauges are supplied by the caller so the
// registry stays dependency-free and gauge reads are never stale.
func (m *metrics) writeProm(w io.Writer, counters, gauges []gauge) {
	fmt.Fprintf(w, "# HELP lccs_requests_total HTTP requests served, by collection, endpoint, and status code.\n")
	fmt.Fprintf(w, "# TYPE lccs_requests_total counter\n")
	keys, counts := m.requestsSnapshot()
	for _, k := range keys {
		if k.collection == "" {
			fmt.Fprintf(w, "lccs_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, counts[k])
			continue
		}
		fmt.Fprintf(w, "lccs_requests_total{collection=%q,endpoint=%q,code=\"%d\"} %d\n",
			k.collection, k.endpoint, k.code, counts[k])
	}

	counts2, sum, total := m.latency.snapshot()
	fmt.Fprintf(w, "# HELP lccs_request_seconds Search handler latency (admission wait included).\n")
	fmt.Fprintf(w, "# TYPE lccs_request_seconds histogram\n")
	var cum uint64
	for i, ub := range latencyBuckets {
		cum += counts2[i]
		fmt.Fprintf(w, "lccs_request_seconds_bucket{le=%q} %d\n", formatFloat(ub), cum)
	}
	cum += counts2[len(counts2)-1]
	fmt.Fprintf(w, "lccs_request_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "lccs_request_seconds_sum %g\n", sum)
	fmt.Fprintf(w, "lccs_request_seconds_count %d\n", total)

	seen := make(map[string]bool, len(counters)+len(gauges))
	for _, c := range counters {
		if !seen[c.name] {
			seen[c.name] = true
			fmt.Fprintf(w, "# HELP %s %s\n", c.name, c.help)
			fmt.Fprintf(w, "# TYPE %s counter\n", c.name)
		}
		fmt.Fprintf(w, "%s%s %g\n", c.name, c.labels, c.value)
	}
	for _, g := range gauges {
		if !seen[g.name] {
			seen[g.name] = true
			fmt.Fprintf(w, "# HELP %s %s\n", g.name, g.help)
			fmt.Fprintf(w, "# TYPE %s gauge\n", g.name)
		}
		fmt.Fprintf(w, "%s%s %g\n", g.name, g.labels, g.value)
	}
	fmt.Fprintf(w, "# HELP lccs_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE lccs_uptime_seconds gauge\n")
	fmt.Fprintf(w, "lccs_uptime_seconds %g\n", time.Since(m.start).Seconds())
}

func formatFloat(v float64) string { return fmt.Sprintf("%g", v) }
