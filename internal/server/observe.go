package server

import (
	"net/http"
	"time"

	"lccs"
	"lccs/internal/engine"
	"lccs/internal/obs"
)

// This file is the server's metering and introspection surface: the
// per-request health recording shared by every handler, the usage
// endpoints (/v1/usage, /v1/collections/{name}/usage), the windowed
// health endpoint (/v1/debug/health), and the EXPLAIN plan builder.

// healthWindows are the two resolutions every windowed report carries:
// the last minute merged from per-second buckets and the last fifteen
// minutes merged from per-minute buckets.
var healthWindows = [2]time.Duration{time.Minute, 15 * time.Minute}

// sloTarget is the availability objective behind the burn-rate
// indicator: 99.9% of requests succeed.
const sloTarget = 0.999

// recordHealth folds one finished request into the server-wide ring
// and, when the request resolved to a collection, that collection's
// ring. c may be nil (registry endpoints, unknown collections).
func (s *Server) recordHealth(c *coll, hs obs.HealthSample) {
	now := time.Now()
	s.health.Record(now, hs)
	if c != nil {
		c.health.Record(now, hs)
	}
}

// walAppended reads the journal's cumulative appended-bytes counter (0
// for memory-only backends). The write handlers take the delta around
// an operation to attribute journal bytes to it; under concurrent
// writers the split between requests is approximate, but the sum — the
// number billing cares about — is exact because the counter itself is
// monotone.
func walAppended(c *coll) int64 {
	if c.walStats == nil {
		return 0
	}
	return c.walStats.WALStats().AppendedBytes
}

// ---- usage endpoints ----

// usageResponse is the /v1/collections/{name}/usage payload: the
// cumulative counters since process start plus windowed rates at two
// resolutions.
type usageResponse struct {
	Collection string               `json:"collection"`
	Cumulative engine.UsageSnapshot `json:"cumulative"`
	Windows    []obs.HealthWindow   `json:"windows"`
	// WAL reports the journal's cumulative appended bytes and depth for
	// durable collections.
	WAL *lccs.WALStats `json:"wal,omitempty"`
}

// aggregateUsageResponse is the /v1/usage payload: the sum over every
// loaded collection, the server-wide windows, and the per-collection
// breakdown.
type aggregateUsageResponse struct {
	Total       engine.UsageSnapshot            `json:"total"`
	Windows     []obs.HealthWindow              `json:"windows"`
	Collections map[string]engine.UsageSnapshot `json:"collections"`
}

func (s *Server) handleCollUsage(w http.ResponseWriter, r *http.Request) {
	c := s.resolve(w, r, "usage")
	if c == nil {
		return
	}
	resp := usageResponse{
		Collection: c.name,
		Cumulative: c.usage.Snapshot(),
		Windows:    s.windowsOf(c.health),
	}
	if c.walStats != nil {
		ws := c.walStats.WALStats()
		resp.WAL = &ws
	}
	s.respond(w, c.name, "usage", http.StatusOK, resp)
}

func (s *Server) handleUsage(w http.ResponseWriter, r *http.Request) {
	colls := s.loadedColls()
	resp := aggregateUsageResponse{
		Windows:     s.windowsOf(s.health),
		Collections: make(map[string]engine.UsageSnapshot, len(colls)),
	}
	for _, c := range colls {
		snap := c.usage.Snapshot()
		resp.Collections[c.name] = snap
		resp.Total.Add(snap)
	}
	s.respond(w, "", "usage", http.StatusOK, resp)
}

// windowsOf merges a ring at the standard resolutions.
func (s *Server) windowsOf(h *obs.Health) []obs.HealthWindow {
	now := time.Now()
	out := make([]obs.HealthWindow, 0, len(healthWindows))
	for _, span := range healthWindows {
		out = append(out, h.Window(now, span))
	}
	return out
}

// ---- /v1/debug/health ----

// admissionHealth is the controller's live state inside the health
// payload.
type admissionHealth struct {
	InFlight     int    `json:"in_flight"`
	QueueDepth   int64  `json:"queue_depth"`
	Rejected     uint64 `json:"rejected_total"`
	WaitTimeouts uint64 `json:"wait_timeouts_total"`
}

// walHealth is one durable collection's journal lag.
type walHealth struct {
	Collection string `json:"collection"`
	// FsyncLagRecords is LastLSN − SyncedLSN: acknowledged-pending
	// records an "interval"-policy crash window could lose.
	FsyncLagRecords uint64 `json:"fsync_lag_records"`
	// Depth is the records only the log holds (crash replay work).
	Depth         uint64  `json:"depth"`
	LastFsyncUS   float64 `json:"last_fsync_us"`
	AppendedBytes int64   `json:"appended_bytes"`
}

// sloHealth is the burn-rate indicator: how fast the error budget
// (1 − target) is being consumed. A burn rate of 1 means errors arrive
// exactly at the budgeted rate; sustained rates above 1 exhaust it.
type sloHealth struct {
	Target     float64 `json:"target"`
	BurnRate1m float64 `json:"burn_rate_1m"`
	BurnRate15 float64 `json:"burn_rate_15m"`
	// State summarizes: "ok" (both windows under budget), "elevated"
	// (the short window is burning — possibly a blip), "burning" (both
	// windows over budget — the objective is at risk).
	State string `json:"state"`
}

// healthResponse is the /v1/debug/health payload.
type healthResponse struct {
	Status        string             `json:"status"` // "ok" | "draining"
	UptimeSeconds float64            `json:"uptime_seconds"`
	Windows       []obs.HealthWindow `json:"windows"`
	Admission     admissionHealth    `json:"admission"`
	SLO           sloHealth          `json:"slo"`
	WAL           []walHealth        `json:"wal,omitempty"`
	// Collections holds each loaded collection's short window.
	Collections map[string]obs.HealthWindow `json:"collections,omitempty"`
}

func (s *Server) handleDebugHealth(w http.ResponseWriter, r *http.Request) {
	windows := s.windowsOf(s.health)
	resp := healthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.met.start).Seconds(),
		Windows:       windows,
		Admission: admissionHealth{
			InFlight:     s.adm.inFlight(),
			QueueDepth:   s.adm.queueDepth(),
			Rejected:     s.adm.rejected.Load(),
			WaitTimeouts: s.adm.timeouts.Load(),
		},
		SLO: sloBurn(windows),
	}
	if s.draining.Load() {
		resp.Status = "draining"
	}
	colls := s.loadedColls()
	resp.Collections = make(map[string]obs.HealthWindow, len(colls))
	now := time.Now()
	for _, c := range colls {
		resp.Collections[c.name] = c.health.Window(now, healthWindows[0])
		if c.walStats == nil {
			continue
		}
		ws := c.walStats.WALStats()
		resp.WAL = append(resp.WAL, walHealth{
			Collection:      c.name,
			FsyncLagRecords: ws.LastLSN - ws.SyncedLSN,
			Depth:           ws.Depth,
			LastFsyncUS:     ws.LastFsyncMicros,
			AppendedBytes:   ws.AppendedBytes,
		})
	}
	s.respond(w, "", "debug_health", http.StatusOK, resp)
}

// sloBurn derives the burn-rate indicator from the standard windows
// (short first, long second).
func sloBurn(windows []obs.HealthWindow) sloHealth {
	budget := 1 - sloTarget
	h := sloHealth{Target: sloTarget, State: "ok"}
	if len(windows) > 0 {
		h.BurnRate1m = windows[0].ErrorRate / budget
	}
	if len(windows) > 1 {
		h.BurnRate15 = windows[1].ErrorRate / budget
	}
	switch {
	case h.BurnRate1m >= 1 && h.BurnRate15 >= 1:
		h.State = "burning"
	case h.BurnRate1m >= 1 || h.BurnRate15 >= 1:
		h.State = "elevated"
	}
	return h
}

// ---- EXPLAIN ----

// explainShardJSON is one scan unit of the plan: an immutable shard
// (shard ≥ 0) or the dynamic delta buffer.
type explainShardJSON struct {
	Shard       int     `json:"shard"`
	Comparisons int64   `json:"comparisons"`
	Candidates  int64   `json:"candidates"`
	Bytes       int64   `json:"bytes"`
	DurUS       float64 `json:"dur_us"`
}

// explainJSON is the resolved query plan returned for "explain": true.
// It is assembled from the request's (forced) trace spans and its cost
// record, so building it costs nothing on requests that don't ask.
type explainJSON struct {
	Collection string `json:"collection"`
	// Backend is the facade kind serving the collection (index |
	// sharded | dynamic | durable | custom).
	Backend string `json:"backend"`
	K       int    `json:"k"`
	// Budget is the requested candidate budget λ (0 = backend default).
	Budget int `json:"budget"`
	// Quantize/Rerank echo the collection's compression settings.
	Quantize string `json:"quantize,omitempty"`
	Rerank   int    `json:"rerank,omitempty"`
	Filtered bool   `json:"filtered"`
	// FilterSelectivity is the observed accept fraction among
	// predicate-checked candidates; present only on filtered queries
	// that checked at least one.
	FilterSelectivity *float64 `json:"filter_selectivity,omitempty"`
	// Cache is the result-cache outcome: "hit", "miss", or "off".
	Cache string `json:"cache"`
	// Cost is the whole query's cost record (absent on cache hits —
	// no backend work ran).
	Cost *lccs.Cost `json:"cost,omitempty"`
	// Shards lists every shard visited with its per-shard cost; Buffer
	// is the dynamic delta scan when the backend has one.
	Shards []explainShardJSON `json:"shards"`
	Buffer *explainShardJSON  `json:"buffer,omitempty"`
}

// buildExplain assembles the plan. co is nil on cache hits; tr is the
// request's trace (explain forces one, so it is non-nil here except
// for custom backends that ignored it).
func buildExplain(c *coll, k, budget int, f *lccs.Filter, co *lccs.Cost, cacheOutcome string, tr *obs.Trace) *explainJSON {
	e := &explainJSON{
		Collection: c.name,
		Backend:    backendStats(c).Kind,
		K:          k,
		Budget:     budget,
		Quantize:   c.spec.Quantize,
		Rerank:     c.spec.Rerank,
		Filtered:   f != nil,
		Cache:      cacheOutcome,
		Shards:     []explainShardJSON{},
	}
	if e.Cache == "" {
		e.Cache = "off"
	}
	if co != nil {
		e.Cost = co
		if f != nil {
			if checked := co.Candidates + co.FilterRejected; checked > 0 {
				sel := float64(co.Candidates) / float64(checked)
				e.FilterSelectivity = &sel
			}
		}
	}
	collectExplainScans(e, tr.Tree())
	return e
}

// collectExplainScans walks the span forest for shard_scan and
// buffer_scan nodes.
func collectExplainScans(e *explainJSON, nodes []obs.SpanNode) {
	for i := range nodes {
		n := &nodes[i]
		switch n.Stage {
		case obs.StageShardScan.String():
			sh := explainShardJSON{Shard: -1, Comparisons: n.Rows,
				Candidates: n.Cands, Bytes: n.Bytes, DurUS: n.DurUS}
			if n.Shard != nil {
				sh.Shard = *n.Shard
			}
			e.Shards = append(e.Shards, sh)
		case obs.StageBufferScan.String():
			e.Buffer = &explainShardJSON{Shard: -1, Comparisons: n.Rows,
				Candidates: n.Cands, Bytes: n.Bytes, DurUS: n.DurUS}
		}
		collectExplainScans(e, n.Children)
	}
}
