package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"lccs"
	"lccs/internal/obs"
)

// findRoot returns the first root span with the given stage name.
func findRoot(tree []obs.SpanNode, stage string) *obs.SpanNode {
	for i := range tree {
		if tree[i].Stage == stage {
			return &tree[i]
		}
	}
	return nil
}

func TestTracedSearchEndToEnd(t *testing.T) {
	data, queries := testWorkload(7, 400, 8)
	sx, err := lccs.NewShardedIndex(data, lccs.Config{Metric: lccs.Euclidean, M: 16, Seed: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Backend: sx, CacheSize: 64})

	scansBefore := obs.StageCount(obs.StageShardScan)
	mergesBefore := obs.StageCount(obs.StageMerge)

	var got searchResponse
	code := postJSON(t, ts, "/v1/search", searchRequest{Query: queries[0], K: 5, Trace: true}, &got)
	if code != http.StatusOK {
		t.Fatalf("traced search: HTTP %d", code)
	}
	if got.RequestID == 0 {
		t.Fatal("traced response missing request_id")
	}
	if len(got.Trace) == 0 {
		t.Fatal("traced response missing span tree")
	}

	// The roots cover the handler stages (cache probe, admission wait,
	// backend query, response encode) ...
	for _, stage := range []string{"cache", "admission", "query", "encode"} {
		if findRoot(got.Trace, stage) == nil {
			t.Errorf("no %s span in trace %+v", stage, got.Trace)
		}
	}
	// ... and the query root holds one scan per shard plus the merge.
	q := findRoot(got.Trace, "query")
	if q == nil {
		t.Fatal("no query root span")
	}
	shards := map[int]bool{}
	merges := 0
	for _, c := range q.Children {
		switch c.Stage {
		case "shard_scan":
			if c.Shard == nil {
				t.Fatalf("shard_scan span missing shard ordinal: %+v", c)
			}
			shards[*c.Shard] = true
			if c.Rows <= 0 || c.Cands <= 0 {
				t.Errorf("shard %d span has empty counters: %+v", *c.Shard, c)
			}
		case "merge":
			merges++
		}
	}
	if len(shards) != sx.Shards() {
		t.Fatalf("trace covers %d shards, want %d: %+v", len(shards), sx.Shards(), q.Children)
	}
	if merges != 1 {
		t.Fatalf("want 1 merge span, got %d", merges)
	}

	// The same stages fed the histograms.
	if d := obs.StageCount(obs.StageShardScan) - scansBefore; d < uint64(sx.Shards()) {
		t.Errorf("shard_scan histogram grew by %d, want >= %d", d, sx.Shards())
	}
	if d := obs.StageCount(obs.StageMerge) - mergesBefore; d < 1 {
		t.Error("merge histogram did not grow")
	}

	// The traced response carries a correlation header.
	raw, _ := json.Marshal(searchRequest{Query: queries[1], K: 3, Trace: true})
	resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("traced response missing X-Request-Id header")
	}

	// Untraced requests carry neither.
	var plain searchResponse
	if code := postJSON(t, ts, "/v1/search", searchRequest{Query: queries[2], K: 5}, &plain); code != http.StatusOK {
		t.Fatalf("plain search: HTTP %d", code)
	}
	if plain.RequestID != 0 || len(plain.Trace) != 0 {
		t.Fatalf("untraced response leaked trace fields: %+v", plain)
	}
}

func TestTraceSampleStride(t *testing.T) {
	data, queries := testWorkload(8, 300, 8)
	sx, err := lccs.NewShardedIndex(data, lccs.Config{Metric: lccs.Euclidean, M: 16, Seed: 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Sample every 2nd search; no cache so every request hits the backend.
	_, ts := newTestServer(t, Config{Backend: sx, TraceSample: 0.5})
	// The query-stage histogram is only fed on the traced path, so its
	// growth counts exactly the sampled requests.
	before := obs.StageCount(obs.StageQuery)
	for i := 0; i < 10; i++ {
		var got searchResponse
		if code := postJSON(t, ts, "/v1/search", searchRequest{Query: queries[i%len(queries)], K: 3}, &got); code != http.StatusOK {
			t.Fatalf("search %d: HTTP %d", i, code)
		}
		// Sampler-selected traces must not leak into client responses.
		if len(got.Trace) > 0 || got.RequestID != 0 {
			t.Fatalf("search %d: sampled trace leaked into response: %+v", i, got)
		}
	}
	if traced := obs.StageCount(obs.StageQuery) - before; traced != 5 {
		t.Fatalf("TraceSample 0.5 traced %d of 10 searches, want exactly 5", traced)
	}
}

func TestDebugSlowEndpoint(t *testing.T) {
	data, queries := testWorkload(9, 300, 8)
	sx, err := lccs.NewShardedIndex(data, lccs.Config{Metric: lccs.Euclidean, M: 16, Seed: 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A 1ns threshold makes every search "slow"; capacity 4 forces ring
	// eviction across 6 requests.
	_, ts := newTestServer(t, Config{Backend: sx, SlowThreshold: time.Nanosecond, SlowLogSize: 4})

	for i := 0; i < 5; i++ {
		if code := postJSON(t, ts, "/v1/search", searchRequest{Query: queries[i], K: 3}, nil); code != http.StatusOK {
			t.Fatalf("search %d: HTTP %d", i, code)
		}
	}
	// Newest request is traced, so its slow entry carries spans.
	if code := postJSON(t, ts, "/v1/search", searchRequest{Query: queries[5], K: 3, Trace: true}, nil); code != http.StatusOK {
		t.Fatal("traced search failed")
	}

	resp, err := http.Get(ts.URL + "/v1/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/debug/slow: HTTP %d", resp.StatusCode)
	}
	var out slowLogResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ThresholdUS <= 0 {
		t.Errorf("threshold_us = %g, want > 0", out.ThresholdUS)
	}
	if len(out.Slow) != 4 {
		t.Fatalf("slow ring holds %d entries, want capacity 4", len(out.Slow))
	}
	for i := 1; i < len(out.Slow); i++ {
		if out.Slow[i-1].RequestID <= out.Slow[i].RequestID {
			t.Fatalf("slow entries not newest-first: ids %d then %d",
				out.Slow[i-1].RequestID, out.Slow[i].RequestID)
		}
	}
	newest := out.Slow[0]
	if !newest.Traced || len(newest.Spans) == 0 {
		t.Fatalf("newest slow entry should be traced with spans: %+v", newest)
	}
	if newest.K != 3 || newest.DurUS <= 0 {
		t.Fatalf("slow entry fields wrong: %+v", newest)
	}

	// The endpoint is GET-only.
	if code := postJSON(t, ts, "/v1/debug/slow", struct{}{}, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/debug/slow: HTTP %d, want 405", code)
	}
}

// TestMetricsExpositionParses retrieves the full /metrics payload and
// validates it against the Prometheus text-format rules: every sample
// belongs to a family declared by a preceding # TYPE line, histogram
// buckets are cumulative, labels are well-formed, and no family is
// declared twice.
func TestMetricsExpositionParses(t *testing.T) {
	data, queries := testWorkload(10, 300, 8)
	sx, err := lccs.NewShardedIndex(data, lccs.Config{Metric: lccs.Euclidean, M: 16, Seed: 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Backend: sx, CacheSize: 8, Version: "test-1.2.3"})
	// Populate: a traced search, a repeat (cache hit), and a miss.
	postJSON(t, ts, "/v1/search", searchRequest{Query: queries[0], K: 3, Trace: true}, nil)
	postJSON(t, ts, "/v1/search", searchRequest{Query: queries[0], K: 3}, nil)
	postJSON(t, ts, "/v1/search", searchRequest{Query: queries[1], K: 3}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}

	types := map[string]string{}    // family → counter|gauge|histogram
	samples := map[string]float64{} // first sample per full series key
	var bucketFamily string
	var lastBucket float64
	sawBucketFor := map[string]bool{}

	sc := bufio.NewScanner(resp.Body)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			parts := strings.SplitN(text, " ", 4)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", line, text)
			}
			if parts[1] == "TYPE" {
				name, typ := parts[2], parts[3]
				if typ != "counter" && typ != "gauge" && typ != "histogram" {
					t.Fatalf("line %d: unknown type %q", line, typ)
				}
				if _, dup := types[name]; dup {
					t.Fatalf("line %d: family %s declared twice", line, name)
				}
				types[name] = typ
			}
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			t.Fatalf("line %d: %v (%q)", line, err, text)
		}
		family := name
		if typ, ok := types[family]; !ok || typ != "histogram" {
			// Histogram samples use suffixed names; resolve the family.
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suf)
				if base != name && types[base] == "histogram" {
					family = base
					break
				}
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("line %d: sample %s has no # TYPE declaration", line, name)
		}
		samples[text[:strings.LastIndex(text, " ")]] = value

		// Histogram buckets must be cumulative within one series run.
		if strings.HasSuffix(name, "_bucket") && types[family] == "histogram" {
			seriesKey := family + "|" + labels["stage"]
			if bucketFamily != seriesKey {
				bucketFamily, lastBucket = seriesKey, 0
			}
			if value < lastBucket {
				t.Fatalf("line %d: bucket count decreased in %s: %g < %g", line, seriesKey, value, lastBucket)
			}
			lastBucket = value
			if labels["le"] == "+Inf" {
				sawBucketFor[seriesKey] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Families this PR added or renamed must be present.
	for family, typ := range map[string]string{
		"lccs_request_seconds":         "histogram",
		"lccs_stage_seconds":           "histogram",
		"lccs_build_info":              "gauge",
		"lccs_trace_pool_gets_total":   "counter",
		"lccs_trace_pool_misses_total": "counter",
		"lccs_trace_pool_hit_rate":     "gauge",
		"lccs_cache_hits_total":        "counter",
		"lccs_cache_misses_total":      "counter",
		"lccs_cache_evictions_total":   "counter",
		"lccs_goroutines":              "gauge",
		"lccs_heap_alloc_bytes":        "gauge",
	} {
		if got := types[family]; got != typ {
			t.Errorf("family %s: type %q, want %q", family, got, typ)
		}
	}
	foundBuild := false
	for key := range samples {
		if strings.HasPrefix(key, "lccs_build_info{") && strings.Contains(key, `version="test-1.2.3"`) {
			foundBuild = true
		}
	}
	if !foundBuild {
		t.Error("lccs_build_info sample with version label missing")
	}
	// A traced search ran, so the shard_scan stage histogram has data
	// and terminates with a +Inf bucket.
	if !sawBucketFor["lccs_stage_seconds|shard_scan"] {
		t.Error("lccs_stage_seconds{stage=\"shard_scan\"} has no +Inf bucket")
	}
	foundCount := false
	for key, v := range samples {
		if strings.HasPrefix(key, `lccs_stage_seconds_count{stage="shard_scan"}`) && v > 0 {
			foundCount = true
		}
	}
	if !foundCount {
		t.Error("lccs_stage_seconds_count{stage=\"shard_scan\"} not populated")
	}
	// The renamed request histogram exposes _sum and _count.
	if _, ok := samples["lccs_request_seconds_count"]; !ok {
		t.Error("lccs_request_seconds_count missing")
	}
	if _, ok := samples["lccs_request_seconds_sum"]; !ok {
		t.Error("lccs_request_seconds_sum missing")
	}
}

// parseSample splits one exposition sample line into name, labels, and
// value.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("unbalanced label braces")
		}
		for _, pair := range splitLabels(rest[i+1 : end]) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label %q", pair)
			}
			val := pair[eq+1:]
			if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value %q", val)
			}
			labels[pair[:eq]] = val[1 : len(val)-1]
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("no value")
		}
		name, rest = rest[:sp], strings.TrimSpace(rest[sp+1:])
	}
	for _, r := range name {
		if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			return "", nil, 0, fmt.Errorf("bad metric name %q", name)
		}
	}
	if name == "" {
		return "", nil, 0, fmt.Errorf("empty metric name")
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q: %v", rest, err)
	}
	return name, labels, value, nil
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// TestQuantileOverflowClamp pins the fixed interpolation: observations
// beyond the top finite bucket must report the top bound, not an
// extrapolated 2×lo value.
func TestQuantileOverflowClamp(t *testing.T) {
	h := newHistogram()
	h.observe(30.0) // far past the ~13s top bucket
	top := latencyBuckets[len(latencyBuckets)-1]
	if got := h.quantile(0.99); got != top {
		t.Fatalf("overflow quantile = %g, want clamp to top bound %g", got, top)
	}
}
