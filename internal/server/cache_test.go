package server

import (
	"context"
	"sync"
	"testing"
	"time"

	"lccs"
)

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	res := func(id int) []lccs.Neighbor { return []lccs.Neighbor{{ID: id}} }
	c.put("a", res(1), "")
	c.put("b", res(2), "")
	if _, _, ok := c.get("a"); !ok { // refresh a: b is now the LRU entry
		t.Fatal("a missing")
	}
	c.put("c", res(3), "") // evicts b
	if _, _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for key, id := range map[string]int{"a": 1, "c": 3} {
		got, _, ok := c.get(key)
		if !ok || got[0].ID != id {
			t.Fatalf("%s: %v %v", key, got, ok)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len=%d", c.len())
	}
	hits, misses, _ := c.stats()
	if hits != 3 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 3/1", hits, misses)
	}
	// Overwriting an existing key updates in place, no growth.
	c.put("a", res(9), "")
	if got, _, _ := c.get("a"); got[0].ID != 9 || c.len() != 2 {
		t.Fatalf("overwrite: %v len=%d", got, c.len())
	}
}

func TestCacheKeyDiscriminatesAndQuantizes(t *testing.T) {
	q := []float32{1.5, -2.25, 3.125}
	base := cacheKey("c", 7, 10, 100, q, 0, nil, "")
	distinct := []string{
		cacheKey("c", 8, 10, 100, q, 0, nil, ""),                          // generation
		cacheKey("c", 7, 11, 100, q, 0, nil, ""),                          // k
		cacheKey("c", 7, 10, 101, q, 0, nil, ""),                          // budget
		cacheKey("c", 7, 10, 100, []float32{1.5, -2.25, 3.0}, 0, nil, ""), // query
		cacheKey("c", 7, 10, 100, q[:2], 0, nil, ""),                      // length
	}
	for i, k := range distinct {
		if k == base {
			t.Errorf("variant %d collides with base key", i)
		}
	}
	if cacheKey("c", 7, 10, 100, []float32{1.5, -2.25, 3.125}, 0, nil, "") != base {
		t.Error("identical inputs must produce identical keys")
	}

	// With quantization, queries differing only in masked-off mantissa
	// bits share a key; without it they do not.
	a := []float32{1.0, 2.0}
	b := []float32{1.0000001, 2.0}
	if cacheKey("c", 1, 5, 50, a, 0, nil, "") == cacheKey("c", 1, 5, 50, b, 0, nil, "") {
		t.Error("quant=0 must key on exact bits")
	}
	if cacheKey("c", 1, 5, 50, a, 8, nil, "") != cacheKey("c", 1, 5, 50, b, 8, nil, "") {
		t.Error("quant=8 should alias float-noise-close queries")
	}
	// Clamped quantization never erases sign or exponent.
	if cacheKey("c", 1, 5, 50, []float32{1}, 60, nil, "") == cacheKey("c", 1, 5, 50, []float32{-1}, 60, nil, "") {
		t.Error("sign must survive any quantization level")
	}
}

func TestAdmissionCounting(t *testing.T) {
	a := newAdmission(2, 1)
	ctx := context.Background()
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if a.inFlight() != 2 || a.queueDepth() != 0 {
		t.Fatalf("inFlight=%d queue=%d", a.inFlight(), a.queueDepth())
	}

	// Third caller queues; fourth overflows.
	queued := make(chan error, 1)
	go func() { queued <- a.acquire(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for a.queueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("third caller never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if err := a.acquire(ctx); err != ErrOverloaded {
		t.Fatalf("overflow: %v, want ErrOverloaded", err)
	}
	if a.rejected.Load() != 1 {
		t.Fatalf("rejected=%d", a.rejected.Load())
	}

	// A release admits the queued caller.
	a.release()
	if err := <-queued; err != nil {
		t.Fatal(err)
	}

	// A canceled context aborts a queued wait without counting a
	// timeout — the client left, no deadline expired.
	cctx, cancel := context.WithCancel(ctx)
	waitErr := make(chan error, 1)
	go func() { waitErr <- a.acquire(cctx) }()
	for a.queueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-waitErr; err != context.Canceled {
		t.Fatalf("canceled wait: %v", err)
	}
	if a.timeouts.Load() != 0 {
		t.Fatalf("timeouts=%d after cancel, want 0", a.timeouts.Load())
	}
	// An expired deadline does count.
	dctx, dcancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer dcancel()
	if err := a.acquire(dctx); err != context.DeadlineExceeded {
		t.Fatalf("deadline wait: %v", err)
	}
	if a.timeouts.Load() != 1 {
		t.Fatalf("timeouts=%d after deadline, want 1", a.timeouts.Load())
	}
	if a.queueDepth() != 0 {
		t.Fatalf("queue not drained: %d", a.queueDepth())
	}
}

// TestAdmissionHammer drives the controller from many goroutines and
// checks the semaphore invariant (never more than capacity in flight)
// and conservation (every acquire is released or rejected). Run with
// -race this also validates the counter synchronization.
func TestAdmissionHammer(t *testing.T) {
	const capacity, queue, workers, iters = 3, 4, 16, 200
	a := newAdmission(capacity, queue)
	ctx := context.Background()
	var inFlight, maxSeen, admitted, rejected int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := a.acquire(ctx)
				mu.Lock()
				if err != nil {
					rejected++
					mu.Unlock()
					continue
				}
				admitted++
				inFlight++
				if inFlight > maxSeen {
					maxSeen = inFlight
				}
				mu.Unlock()

				mu.Lock()
				inFlight--
				mu.Unlock()
				a.release()
			}
		}()
	}
	wg.Wait()
	if maxSeen > capacity {
		t.Fatalf("saw %d in flight, capacity %d", maxSeen, capacity)
	}
	if admitted+rejected != workers*iters {
		t.Fatalf("admitted %d + rejected %d != %d", admitted, rejected, workers*iters)
	}
	if a.inFlight() != 0 || a.queueDepth() != 0 {
		t.Fatalf("leaked state: inFlight=%d queue=%d", a.inFlight(), a.queueDepth())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	if h.quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for i := 0; i < 100; i++ {
		h.observe(0.001) // all in one bucket
	}
	p50 := h.quantile(0.50)
	if p50 <= 0 || p50 > 0.002 {
		t.Fatalf("p50=%v, want within the ~1ms bucket", p50)
	}
	h.observe(5.0) // one slow outlier
	if p999 := h.quantile(0.999); p999 < 0.01 {
		t.Fatalf("p99.9=%v should reflect the outlier region", p999)
	}
	_, sum, total := h.snapshot()
	if total != 101 || sum < 5.0 {
		t.Fatalf("total=%d sum=%v", total, sum)
	}
}
