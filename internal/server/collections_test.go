package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lccs"
	"lccs/internal/engine"
)

// doJSON issues a request with method/path/body and decodes the
// response into out (skipped when nil), returning the status code.
func doJSON(t *testing.T, ts *httptest.Server, method, path string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// newCollServer stands up a server over a rootless engine with sensible
// index defaults, no adopted backend.
func newCollServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	eng, err := engine.New("", engine.Spec{Metric: "euclidean", M: 8, Seed: 7, BucketWidth: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = eng
	return newTestServer(t, cfg)
}

// TestCollectionsCRUD drives the registry endpoints end to end: create
// two collections with different metrics, write to both, drop one, and
// check the survivor is untouched.
func TestCollectionsCRUD(t *testing.T) {
	_, ts := newCollServer(t, Config{})

	var info collectionInfo
	if code := doJSON(t, ts, "POST", "/v1/collections",
		createCollectionRequest{Name: "tenant-a"}, &info); code != http.StatusCreated {
		t.Fatalf("create tenant-a: HTTP %d", code)
	}
	if !info.Loaded || info.Name != "tenant-a" {
		t.Fatalf("create response: %+v", info)
	}
	if code := doJSON(t, ts, "POST", "/v1/collections",
		createCollectionRequest{Name: "tenant-b", Spec: engine.Spec{Metric: "angular", M: 16}}, nil); code != http.StatusCreated {
		t.Fatalf("create tenant-b: HTTP %d", code)
	}
	// Duplicates conflict; bad names are rejected.
	if code := doJSON(t, ts, "POST", "/v1/collections",
		createCollectionRequest{Name: "tenant-a"}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate create: HTTP %d", code)
	}
	if code := doJSON(t, ts, "POST", "/v1/collections",
		createCollectionRequest{Name: "no/slashes"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad name create: HTTP %d", code)
	}

	for i := 0; i < 8; i++ {
		v := []float32{float32(i), 1, 0}
		if code := postJSON(t, ts, "/v1/collections/tenant-a/insert",
			insertRequest{Vectors: [][]float32{v}}, nil); code != http.StatusOK {
			t.Fatalf("insert a[%d]: HTTP %d", i, code)
		}
	}
	if code := postJSON(t, ts, "/v1/collections/tenant-b/insert",
		insertRequest{Vectors: [][]float32{{1, 0, 0}, {0, 1, 0}}}, nil); code != http.StatusOK {
		t.Fatalf("insert b: HTTP %d", code)
	}

	var list listCollectionsResponse
	if code := doJSON(t, ts, "GET", "/v1/collections", nil, &list); code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	if len(list.Collections) != 2 ||
		list.Collections[0].Name != "tenant-a" || list.Collections[0].Vectors != 8 ||
		list.Collections[1].Name != "tenant-b" || list.Collections[1].Vectors != 2 {
		t.Fatalf("list = %+v", list.Collections)
	}

	var cst CollectionStats
	if code := doJSON(t, ts, "GET", "/v1/collections/tenant-a/stats", nil, &cst); code != http.StatusOK {
		t.Fatalf("collection stats: HTTP %d", code)
	}
	if cst.Inserts != 8 || cst.Backend.Vectors != 8 || !cst.Backend.Writable {
		t.Fatalf("tenant-a stats = %+v", cst)
	}

	// Search routes per collection.
	var sr searchResponse
	if code := postJSON(t, ts, "/v1/collections/tenant-a/search",
		searchRequest{Query: []float32{3, 1, 0}, K: 1}, &sr); code != http.StatusOK {
		t.Fatalf("search a: HTTP %d", code)
	}
	if len(sr.Neighbors) != 1 || sr.Neighbors[0].ID != 3 {
		t.Fatalf("search a = %+v", sr.Neighbors)
	}

	// Drop tenant-a; it 404s afterwards and tenant-b is untouched.
	if code := doJSON(t, ts, "DELETE", "/v1/collections/tenant-a", nil, nil); code != http.StatusOK {
		t.Fatalf("drop: HTTP %d", code)
	}
	if code := postJSON(t, ts, "/v1/collections/tenant-a/search",
		searchRequest{Query: []float32{3, 1, 0}, K: 1}, nil); code != http.StatusNotFound {
		t.Fatalf("search dropped: HTTP %d", code)
	}
	if code := doJSON(t, ts, "DELETE", "/v1/collections/tenant-a", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double drop: HTTP %d", code)
	}
	if code := postJSON(t, ts, "/v1/collections/tenant-b/search",
		searchRequest{Query: []float32{1, 0, 0}, K: 2}, &sr); code != http.StatusOK || len(sr.Neighbors) != 2 {
		t.Fatalf("survivor search: HTTP %d, %d neighbors", code, len(sr.Neighbors))
	}

	// /v1/stats aggregates and breaks out per collection.
	var st Stats
	if code := doJSON(t, ts, "GET", "/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: HTTP %d", code)
	}
	if st.Inserts != 2 { // tenant-a's counters died with it
		t.Fatalf("aggregate inserts = %d, want 2", st.Inserts)
	}
	if _, ok := st.Collections["tenant-b"]; !ok {
		t.Fatalf("stats missing tenant-b breakout: %v", st.Collections)
	}
}

// seedAttrWorkload fills a collection with n vectors whose parity is
// recorded in attributes: even ids are "red" with rank=id, odd "blue".
func seedAttrWorkload(t *testing.T, ts *httptest.Server, coll string, n int) {
	t.Helper()
	vecs := make([][]float32, n)
	attrs := make([]map[string]any, n)
	for i := 0; i < n; i++ {
		vecs[i] = []float32{float32(i), float32(i % 3), 0}
		color := "blue"
		if i%2 == 0 {
			color = "red"
		}
		attrs[i] = map[string]any{"color": color, "rank": i}
	}
	var ir insertResponse
	if code := postJSON(t, ts, "/v1/collections/"+coll+"/insert",
		insertRequest{Vectors: vecs, Attrs: attrs}, &ir); code != http.StatusOK {
		t.Fatalf("seed insert: HTTP %d", code)
	}
	if len(ir.IDs) != n {
		t.Fatalf("seed ids = %d, want %d", len(ir.IDs), n)
	}
}

// TestFilteredSearchHTTP pushes filter predicates through the wire
// format and checks the results against a locally built identical
// index.
func TestFilteredSearchHTTP(t *testing.T) {
	const n = 60
	_, ts := newCollServer(t, Config{})
	if code := doJSON(t, ts, "POST", "/v1/collections",
		createCollectionRequest{Name: "docs"}, nil); code != http.StatusCreated {
		t.Fatalf("create: HTTP %d", code)
	}
	seedAttrWorkload(t, ts, "docs", n)

	// The same data in a local index with the identical spec gives the
	// ground-truth answers.
	local, err := lccs.NewDynamicIndex(nil, lccs.Config{Metric: lccs.Euclidean, M: 8, Seed: 7, BucketWidth: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		color := "blue"
		if i%2 == 0 {
			color = "red"
		}
		if _, err := local.AddWithAttrs([]float32{float32(i), float32(i % 3), 0},
			lccs.Attrs{"color": lccs.StrAttr(color), "rank": lccs.IntAttr(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}

	q := []float32{20.2, 1, 0}
	lo, hi := int64(10), int64(40)
	cases := []struct {
		name  string
		terms []filterTermJSON
		f     *lccs.Filter
	}{
		{"eq_str", []filterTermJSON{{Key: "color", Value: "red"}},
			&lccs.Filter{Terms: []lccs.FilterTerm{lccs.EqStr("color", "red")}}},
		{"eq_int", []filterTermJSON{{Key: "rank", Value: float64(21)}},
			&lccs.Filter{Terms: []lccs.FilterTerm{lccs.EqInt("rank", 21)}}},
		{"range", []filterTermJSON{{Key: "rank", Op: "range", Min: &lo, Max: &hi}},
			&lccs.Filter{Terms: []lccs.FilterTerm{lccs.Range("rank", &lo, &hi)}}},
		{"conjunction", []filterTermJSON{
			{Key: "color", Value: "blue"},
			{Key: "rank", Op: "range", Min: &lo, Max: &hi},
		}, &lccs.Filter{Terms: []lccs.FilterTerm{
			lccs.EqStr("color", "blue"), lccs.Range("rank", &lo, &hi)}}},
	}
	for _, tc := range cases {
		want, err := local.SearchFilter(q, 5, tc.f)
		if err != nil {
			t.Fatalf("%s: local: %v", tc.name, err)
		}
		var sr searchResponse
		if code := postJSON(t, ts, "/v1/collections/docs/search",
			searchRequest{Query: q, K: 5, Filter: tc.terms}, &sr); code != http.StatusOK {
			t.Fatalf("%s: HTTP %d", tc.name, code)
		}
		if len(sr.Neighbors) != len(want) {
			t.Fatalf("%s: %d results, want %d", tc.name, len(sr.Neighbors), len(want))
		}
		for i := range want {
			if sr.Neighbors[i].ID != want[i].ID {
				t.Fatalf("%s[%d]: id %d, want %d", tc.name, i, sr.Neighbors[i].ID, want[i].ID)
			}
		}
	}

	// Wire-format validation errors are the client's fault.
	for name, terms := range map[string][]filterTermJSON{
		"float_value": {{Key: "rank", Value: 1.5}},
		"bool_value":  {{Key: "ok", Value: true}},
		"bad_op":      {{Key: "rank", Op: "lt", Value: float64(3)}},
		"empty_range": {{Key: "rank", Op: "range"}},
	} {
		if code := postJSON(t, ts, "/v1/collections/docs/search",
			searchRequest{Query: q, K: 5, Filter: terms}, nil); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, code)
		}
	}

	// A backend without filter support answers 501.
	bb := &blockingBackend{started: make(chan struct{}, 8), gate: make(chan struct{})}
	close(bb.gate)
	_, ts2 := newTestServer(t, Config{Backend: bb})
	if code := postJSON(t, ts2, "/v1/search",
		searchRequest{Query: q, K: 1, Filter: []filterTermJSON{{Key: "a", Value: "b"}}}, nil); code != http.StatusNotImplemented {
		t.Fatalf("filter on plain backend: HTTP %d, want 501", code)
	}
	if code := postJSON(t, ts2, "/v1/search",
		searchRequest{Query: q, Limit: 2}, nil); code != http.StatusNotImplemented {
		t.Fatalf("cursor on plain backend: HTTP %d, want 501", code)
	}
}

// TestCursorDrainHTTP drains a paginated scan over the wire and checks
// it reproduces the one-shot ordering exactly, then invalidates the
// token with a write.
func TestCursorDrainHTTP(t *testing.T) {
	const n = 50
	_, ts := newCollServer(t, Config{CacheSize: 32})
	if code := doJSON(t, ts, "POST", "/v1/collections",
		createCollectionRequest{Name: "scan"}, nil); code != http.StatusCreated {
		t.Fatalf("create: HTTP %d", code)
	}
	seedAttrWorkload(t, ts, "scan", n)

	q := []float32{13.7, 1, 0}
	filter := []filterTermJSON{{Key: "color", Value: "red"}}
	var oneShot searchResponse
	if code := postJSON(t, ts, "/v1/collections/scan/search",
		searchRequest{Query: q, K: n, Filter: filter}, &oneShot); code != http.StatusOK {
		t.Fatalf("one-shot: HTTP %d", code)
	}
	if len(oneShot.Neighbors) != n/2 {
		t.Fatalf("one-shot returned %d, want %d", len(oneShot.Neighbors), n/2)
	}

	var drained []neighborJSON
	cursor := ""
	pages := 0
	for {
		var page searchResponse
		if code := postJSON(t, ts, "/v1/collections/scan/search",
			searchRequest{Query: q, Limit: 7, Filter: filter, Cursor: cursor}, &page); code != http.StatusOK {
			t.Fatalf("page %d: HTTP %d", pages, code)
		}
		drained = append(drained, page.Neighbors...)
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
		if pages > n {
			t.Fatal("cursor never exhausted")
		}
	}
	if len(drained) != len(oneShot.Neighbors) {
		t.Fatalf("drained %d, one-shot %d", len(drained), len(oneShot.Neighbors))
	}
	for i := range drained {
		if drained[i] != oneShot.Neighbors[i] {
			t.Fatalf("position %d: drained %+v, one-shot %+v", i, drained[i], oneShot.Neighbors[i])
		}
	}
	if pages != (n/2+6)/7 {
		t.Fatalf("pages = %d", pages)
	}

	// Fetch a token, mutate the collection, and watch the token die.
	var first searchResponse
	if code := postJSON(t, ts, "/v1/collections/scan/search",
		searchRequest{Query: q, Limit: 5}, &first); code != http.StatusOK || first.NextCursor == "" {
		t.Fatalf("page for invalidation: HTTP %d, cursor %q", code, first.NextCursor)
	}
	if code := postJSON(t, ts, "/v1/collections/scan/insert",
		insertRequest{Vectors: [][]float32{{99, 0, 0}}}, nil); code != http.StatusOK {
		t.Fatalf("invalidating insert: HTTP %d", code)
	}
	if code := postJSON(t, ts, "/v1/collections/scan/search",
		searchRequest{Query: q, Limit: 5, Cursor: first.NextCursor}, nil); code != http.StatusGone {
		t.Fatalf("stale cursor: HTTP %d, want 410", code)
	}
	// A syntactically invalid token is a plain 400.
	if code := postJSON(t, ts, "/v1/collections/scan/search",
		searchRequest{Query: q, Limit: 5, Cursor: "not-a-token"}, nil); code != http.StatusBadRequest {
		t.Fatalf("garbage cursor: HTTP %d, want 400", code)
	}
}

// TestCrossTenantCacheIsolation is the regression test for the cache
// key: two collections receiving the byte-identical query must never
// see each other's cached results, and filtered/paginated variants of
// one query must not alias its unfiltered entry.
func TestCrossTenantCacheIsolation(t *testing.T) {
	srv, ts := newCollServer(t, Config{CacheSize: 64})
	for name, v := range map[string][]float32{"a": {0, 0, 0}, "b": {5, 5, 5}} {
		if code := doJSON(t, ts, "POST", "/v1/collections",
			createCollectionRequest{Name: name}, nil); code != http.StatusCreated {
			t.Fatalf("create %s: HTTP %d", name, code)
		}
		if code := postJSON(t, ts, "/v1/collections/"+name+"/insert",
			insertRequest{Vectors: [][]float32{v},
				Attrs: []map[string]any{{"tenant": name}}}, nil); code != http.StatusOK {
			t.Fatalf("insert %s: HTTP %d", name, code)
		}
	}

	q := searchRequest{Query: []float32{0, 0, 0}, K: 1}
	var ra, rb searchResponse
	// Prime the cache through collection a, then repeat to confirm the
	// entry is actually served from cache.
	if code := postJSON(t, ts, "/v1/collections/a/search", q, &ra); code != http.StatusOK {
		t.Fatalf("search a: HTTP %d", code)
	}
	if code := postJSON(t, ts, "/v1/collections/a/search", q, &ra); code != http.StatusOK || !ra.Cached {
		t.Fatalf("repeat search a: HTTP %d cached=%v", code, ra.Cached)
	}
	// The identical query against b must reflect b's data, not a's
	// cached answer.
	if code := postJSON(t, ts, "/v1/collections/b/search", q, &rb); code != http.StatusOK {
		t.Fatalf("search b: HTTP %d", code)
	}
	if rb.Cached {
		t.Fatal("b's first search claims a cache hit: keys alias across tenants")
	}
	if rb.Neighbors[0].Dist == ra.Neighbors[0].Dist {
		t.Fatalf("b returned a's cached distance %v", rb.Neighbors[0].Dist)
	}

	// A filtered variant of the cached query must miss too.
	var rf searchResponse
	if code := postJSON(t, ts, "/v1/collections/a/search",
		searchRequest{Query: q.Query, K: 1,
			Filter: []filterTermJSON{{Key: "tenant", Value: "nobody"}}}, &rf); code != http.StatusOK {
		t.Fatalf("filtered search: HTTP %d", code)
	}
	if rf.Cached || len(rf.Neighbors) != 0 {
		t.Fatalf("filtered variant aliased the unfiltered entry: %+v", rf)
	}

	// Successive cursor pages key separately: page two is not page one.
	var p1, p2 searchResponse
	if code := postJSON(t, ts, "/v1/collections/a/search",
		searchRequest{Query: q.Query, Limit: 1}, &p1); code != http.StatusOK {
		t.Fatalf("page 1: HTTP %d", code)
	}
	if p1.NextCursor != "" {
		if code := postJSON(t, ts, "/v1/collections/a/search",
			searchRequest{Query: q.Query, Limit: 1, Cursor: p1.NextCursor}, &p2); code != http.StatusOK {
			t.Fatalf("page 2: HTTP %d", code)
		}
		if p2.Cached {
			t.Fatal("page 2 served page 1's cache entry")
		}
	}

	// Dropping a collection flushes the cache: a successor of the same
	// name starts at generation zero and must not inherit entries.
	if code := doJSON(t, ts, "DELETE", "/v1/collections/a", nil, nil); code != http.StatusOK {
		t.Fatalf("drop a: HTTP %d", code)
	}
	if got := srv.cache.len(); got != 0 {
		t.Fatalf("cache holds %d entries after drop, want 0", got)
	}
}

// TestCollectionQuota checks the per-collection concurrency share: a
// hot collection is shed with 503 while the global controller still has
// room.
func TestCollectionQuota(t *testing.T) {
	backend := &blockingBackend{started: make(chan struct{}, 8), gate: make(chan struct{})}
	srv, ts := newTestServer(t, Config{
		Backend:               backend,
		MaxInFlight:           4,
		MaxQueue:              4,
		CollectionMaxInFlight: 1,
		Timeout:               10 * time.Second,
	})

	req := searchRequest{Query: []float32{1}, K: 1}
	done := make(chan int, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		done <- postJSON(t, ts, "/v1/search", req, nil)
	}()
	<-backend.started // the first request now occupies the share

	raw, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-share request: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("quota 503 without Retry-After")
	}

	close(backend.gate)
	wg.Wait()
	if code := <-done; code != http.StatusOK {
		t.Fatalf("admitted request: HTTP %d", code)
	}
	st := srv.StatsSnapshot()
	cst, ok := st.Collections[DefaultCollection]
	if !ok || cst.QuotaRejected != 1 {
		t.Fatalf("quota stats = %+v (ok=%v)", cst, ok)
	}
	if cst.InFlight != 0 {
		t.Fatalf("occupancy leaked: %d", cst.InFlight)
	}
	// The global controller never rejected anything.
	if st.Rejected != 0 {
		t.Fatalf("global rejected = %d, want 0", st.Rejected)
	}
}

// TestInsertAttrsValidation covers the attribute wire format's error
// paths.
func TestInsertAttrsValidation(t *testing.T) {
	_, ts := newCollServer(t, Config{})
	if code := doJSON(t, ts, "POST", "/v1/collections",
		createCollectionRequest{Name: "v"}, nil); code != http.StatusCreated {
		t.Fatalf("create: HTTP %d", code)
	}
	vec := [][]float32{{1, 2, 3}}
	for name, req := range map[string]insertRequest{
		"misaligned": {Vectors: [][]float32{{1, 2, 3}, {4, 5, 6}}, Attrs: []map[string]any{{"a": "b"}}},
		"float_attr": {Vectors: vec, Attrs: []map[string]any{{"score": 1.5}}},
		"bool_attr":  {Vectors: vec, Attrs: []map[string]any{{"ok": true}}},
	} {
		if code := postJSON(t, ts, "/v1/collections/v/insert", req, nil); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, code)
		}
	}
	// A null attrs row is a vector without metadata, not an error.
	var ir insertResponse
	if code := postJSON(t, ts, "/v1/collections/v/insert",
		insertRequest{Vectors: [][]float32{{1, 2, 3}, {4, 5, 6}},
			Attrs: []map[string]any{nil, {"color": "red"}}}, &ir); code != http.StatusOK {
		t.Fatalf("null attrs row: HTTP %d", code)
	}
	if len(ir.IDs) != 2 {
		t.Fatalf("ids = %v", ir.IDs)
	}
	// And the metadata is actually queryable.
	var sr searchResponse
	if code := postJSON(t, ts, "/v1/collections/v/search",
		searchRequest{Query: []float32{4, 5, 6}, K: 2,
			Filter: []filterTermJSON{{Key: "color", Value: "red"}}}, &sr); code != http.StatusOK {
		t.Fatalf("filtered search: HTTP %d", code)
	}
	if len(sr.Neighbors) != 1 || sr.Neighbors[0].ID != ir.IDs[1] {
		t.Fatalf("filtered results = %+v", sr.Neighbors)
	}
}
