// Package server is the network query-serving layer over the lccs
// facades: an HTTP/JSON API over a registry of named collections
// (internal/engine) — each an independently configured index — with a
// semaphore-based admission controller (bounded concurrency, bounded
// queue, per-collection concurrency shares, per-request deadlines), an
// LRU result cache keyed by collection/filter/cursor and invalidated
// per-collection by write generation, and live counter/latency metrics
// in the Prometheus text format with per-collection labels.
//
// Endpoints:
//
//	POST   /v1/collections                          create a collection
//	GET    /v1/collections                          list collections
//	DELETE /v1/collections/{name}                   drop a collection
//	POST   /v1/collections/{name}/search            one query → top-k (filtered, cursor-paginated)
//	POST   /v1/collections/{name}/search/batch      many queries → top-k each
//	POST   /v1/collections/{name}/insert            append vectors (+ optional attributes)
//	POST   /v1/collections/{name}/delete            tombstone ids
//	GET    /v1/collections/{name}/stats             per-collection stats
//	GET    /v1/stats                                JSON operational stats (all collections)
//	GET    /healthz                                 readiness (503 while draining)
//	GET    /metrics                                 Prometheus text exposition
//
// The legacy single-index routes (/v1/search, /v1/search/batch,
// /v1/insert, /v1/delete) serve the collection named "default", so
// pre-collections clients keep working unchanged.
//
// The package owns request admission and caching; process lifecycle
// (listening, signal handling, graceful drain, checkpointing) belongs
// to cmd/lccs-serve.
package server

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lccs"
	"lccs/internal/engine"
	"lccs/internal/obs"
)

// Inserter is the optional write interface of a backend; DynamicIndex
// implements it. Backends that do not are served read-only and
// /v1/insert answers 501.
//
// Any error a custom Inserter returns is treated as a failed insert.
// The library's own DynamicIndex is special-cased: its Add is
// documented to deliver a *previous* background build's failure
// alongside a successful insert, so for that backend a non-validation
// error keeps the id and is surfaced to clients as a warning.
type Inserter interface {
	Add(v []float32) (int, error)
}

// AttrInserter is the metadata-carrying write interface; DynamicIndex
// implements it. Backends without it answer attribute inserts with 501.
type AttrInserter interface {
	AddWithAttrs(v []float32, a lccs.Attrs) (int, error)
}

// BatchInserter is the optional bulk-write interface of a backend;
// DurableIndex implements it. When present, /v1/insert applies the
// whole request through one AddBatch call — on a write-ahead-logged
// backend that is one journal append and one group-committed fsync for
// the entire batch instead of one per vector.
type BatchInserter interface {
	AddBatch(vecs [][]float32) ([]int, error)
}

// AttrBatchInserter is the bulk counterpart of AttrInserter;
// DurableIndex implements it.
type AttrBatchInserter interface {
	AddBatchWithAttrs(vecs [][]float32, attrs []lccs.Attrs) ([]int, error)
}

// Deleter is the optional delete interface of a backend; DynamicIndex
// implements it. Delete reports whether the id was live. Backends that
// do not implement it answer /v1/delete with 501.
type Deleter interface {
	Delete(id int) bool
}

// DurableDeleter is the error-aware delete interface of a durable
// backend (DurableIndex): the delete is acknowledged only once it is
// durable per the backend's sync policy, and a journal failure is
// reported instead of being swallowed. Preferred over Deleter when
// implemented.
type DurableDeleter interface {
	DeleteDurable(id int) (bool, error)
}

// BatchDeleter is the bulk counterpart of DurableDeleter; DurableIndex
// implements it. When present, /v1/delete applies the whole id batch
// through one DeleteBatch call — one journal append and one
// group-committed fsync instead of one per id. It reports how many ids
// were live and which were unknown or already deleted.
type BatchDeleter interface {
	DeleteBatch(ids []int) (deleted int, missing []int, err error)
}

// WALStatser exposes write-ahead-log health; DurableIndex implements
// it. When present, WAL depth and fsync latency appear in /v1/stats
// and /metrics.
type WALStatser interface {
	WALStats() lccs.WALStats
}

// Config configures a Server.
type Config struct {
	// Backend, when set, is adopted as the collection named "default":
	// the legacy single-index serving mode. At least one of Backend and
	// Engine is required.
	Backend lccs.Searcher
	// Engine is the collection registry behind /v1/collections. Nil
	// builds a rootless registry holding only the adopted Backend.
	Engine *engine.Engine
	// MaxInFlight bounds concurrently executing searches. 0 selects
	// GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; beyond it
	// requests are rejected with 503. 0 selects 4×MaxInFlight; negative
	// disables waiting entirely (reject the moment all slots are busy).
	MaxQueue int
	// CollectionMaxInFlight caps one collection's concurrently admitted
	// requests, so a single hot tenant cannot starve the others of the
	// shared MaxInFlight slots. Requests over the share are rejected
	// with 503 before touching the global queue. 0 disables the
	// per-collection cap.
	CollectionMaxInFlight int
	// Timeout is the per-request admission deadline: a request that
	// cannot start executing within it is rejected with 503. 0 selects
	// 2 seconds.
	Timeout time.Duration
	// CacheSize is the result-cache capacity in entries; 0 disables
	// caching.
	CacheSize int
	// CacheQuantBits masks this many low mantissa bits off every query
	// coordinate in the cache key (see cacheKey). 0 caches on exact
	// float bit patterns.
	CacheQuantBits uint
	// MaxBodyBytes caps every request body; larger posts fail with 400.
	// Batch and insert bodies are additionally decoded only after
	// admission, so aggregate decode memory is bounded by
	// MaxInFlight × MaxBodyBytes. 0 selects 32 MiB.
	MaxBodyBytes int64
	// TraceSample is the fraction of searches traced without an explicit
	// request, in [0, 1]: 0.01 traces every 100th search (a deterministic
	// stride, not a coin flip, so the rate is exact and allocation-free).
	// 0 traces only requests that ask with "trace": true.
	TraceSample float64
	// SlowThreshold is the latency at or above which a finished search
	// enters the slow-query ring at /v1/debug/slow. 0 disables threshold
	// capture; traced requests are still reservoir-sampled.
	SlowThreshold time.Duration
	// SlowLogSize is the slow-query ring capacity (and the traced-request
	// reservoir capacity). 0 selects 64.
	SlowLogSize int
	// Version is reported by the lccs_build_info metric; empty selects
	// "dev".
	Version string
	// Logger receives the server's structured operational log (slow-query
	// warnings). Nil discards it.
	Logger *slog.Logger
}

// coll is the server-side request state of one collection: the
// backend's capability interfaces resolved once, the write generation
// folded into its cache keys, and its admission occupancy.
type coll struct {
	name    string
	backend lccs.Searcher
	// dynInserter marks the backend as the library's own
	// DynamicIndex/DurableIndex, whose Add is documented to deliver
	// deferred background-build failures alongside a *successful*
	// insert. Only then is a non-validation Add error downgraded to a
	// warning; a custom Inserter's errors are always treated as failed
	// inserts.
	inserter    Inserter
	dynInserter bool
	attrIns     AttrInserter
	batch       BatchInserter
	attrBatch   AttrBatchInserter
	deleter     Deleter
	durDeleter  DurableDeleter
	batchDel    BatchDeleter
	walStats    WALStatser
	traced      lccs.TracedSearcher
	filt        lccs.FilterSearcher
	cur         lccs.CursorSearcher
	// cost is the unified metered query path (filter + cost record +
	// trace in one call); the library facades all implement it. When
	// present it supersedes traced/filt for single searches.
	cost lccs.CostSearcher
	// spec is the resolved collection configuration (zero for adopted
	// backends); EXPLAIN reports its quantize/re-rank settings.
	spec engine.Spec
	// usage is the collection's cumulative resource accounting (owned
	// by the registry, shared by every handle); health is its windowed
	// RED/usage ring for /v1/debug/health and /v1/collections/⋯/usage.
	usage  *engine.Usage
	health *obs.Health
	// gen counts completed writes — inserts and deletes alike; it is
	// folded into every cache key, so one write invalidates all of this
	// collection's earlier cached results at once (and only this
	// collection's: the key also carries the collection name).
	gen     atomic.Uint64
	inserts atomic.Uint64
	deletes atomic.Uint64
	// occupancy counts requests of this collection currently admitted;
	// quotaRejected counts requests shed by the per-collection share.
	occupancy     atomic.Int64
	quotaRejected atomic.Uint64
}

// newColl resolves a backend's capability interfaces once.
func newColl(ec *engine.Collection) *coll {
	name, backend := ec.Name(), ec.Backend()
	c := &coll{name: name, backend: backend, spec: ec.Spec(),
		usage: ec.Usage(), health: new(obs.Health)}
	if t, ok := backend.(lccs.TracedSearcher); ok {
		c.traced = t
	}
	if ins, ok := backend.(Inserter); ok {
		c.inserter = ins
		switch backend.(type) {
		case *lccs.DynamicIndex, *lccs.DurableIndex:
			c.dynInserter = true
		}
	}
	if ai, ok := backend.(AttrInserter); ok {
		c.attrIns = ai
	}
	if b, ok := backend.(BatchInserter); ok {
		c.batch = b
	}
	if ab, ok := backend.(AttrBatchInserter); ok {
		c.attrBatch = ab
	}
	if del, ok := backend.(Deleter); ok {
		c.deleter = del
	}
	if del, ok := backend.(DurableDeleter); ok {
		c.durDeleter = del
	}
	if del, ok := backend.(BatchDeleter); ok {
		c.batchDel = del
	}
	if ws, ok := backend.(WALStatser); ok {
		c.walStats = ws
	}
	if f, ok := backend.(lccs.FilterSearcher); ok {
		c.filt = f
	}
	if cu, ok := backend.(lccs.CursorSearcher); ok {
		c.cur = cu
	}
	if cs, ok := backend.(lccs.CostSearcher); ok {
		c.cost = cs
	}
	return c
}

// Server is the HTTP front end over the collection registry. Construct
// with New, mount Handler on an http.Server, and call SetDraining(true)
// before shutting that server down so load balancers see readiness drop
// first.
type Server struct {
	eng       *engine.Engine
	cmu       sync.RWMutex
	colls     map[string]*coll
	adm       *admission
	collShare int64        // per-collection in-flight cap; 0 = uncapped
	cache     *resultCache // nil when disabled
	quant     uint
	timeout   time.Duration
	maxBody   int64
	met       *metrics
	mux       *http.ServeMux
	slow      *obs.SlowLog
	health    *obs.Health // server-wide RED/usage ring; per-coll rings live on coll
	logger    *slog.Logger
	version   string
	// sampleEvery traces every Nth search (0 = only explicit requests);
	// sampleSeq is the stride counter behind it.
	sampleEvery uint64
	sampleSeq   atomic.Uint64
	// reqID numbers every search for log/trace correlation.
	reqID    atomic.Uint64
	draining atomic.Bool
}

// DefaultCollection is the registry name the legacy single-index routes
// serve.
const DefaultCollection = "default"

// New validates cfg and builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil && cfg.Engine == nil {
		return nil, errors.New("server: Config needs a Backend or an Engine")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.MaxQueue == 0:
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	case cfg.MaxQueue < 0:
		cfg.MaxQueue = 0
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.TraceSample < 0 || cfg.TraceSample > 1 {
		return nil, errors.New("server: Config.TraceSample must be in [0, 1]")
	}
	if cfg.CollectionMaxInFlight < 0 {
		return nil, errors.New("server: Config.CollectionMaxInFlight must be >= 0")
	}
	if cfg.Version == "" {
		cfg.Version = "dev"
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	if cfg.SlowLogSize <= 0 {
		cfg.SlowLogSize = 64
	}
	eng := cfg.Engine
	if eng == nil {
		var err error
		eng, err = engine.New("", engine.Spec{}, cfg.Logger)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Backend != nil {
		dur, _ := cfg.Backend.(*lccs.DurableIndex)
		if _, err := eng.Adopt(DefaultCollection, cfg.Backend, dur); err != nil {
			return nil, fmt.Errorf("server: adopting default backend: %w", err)
		}
	}
	s := &Server{
		eng:       eng,
		colls:     make(map[string]*coll),
		adm:       newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		collShare: int64(cfg.CollectionMaxInFlight),
		quant:     cfg.CacheQuantBits,
		timeout:   cfg.Timeout,
		maxBody:   cfg.MaxBodyBytes,
		met:       newMetrics(),
		slow:      obs.NewSlowLog(cfg.SlowLogSize, cfg.SlowLogSize, cfg.SlowThreshold),
		health:    new(obs.Health),
		logger:    cfg.Logger,
		version:   cfg.Version,
	}
	if cfg.TraceSample > 0 {
		s.sampleEvery = uint64(math.Round(1 / cfg.TraceSample))
		if s.sampleEvery < 1 {
			s.sampleEvery = 1
		}
	}
	if cfg.CacheSize > 0 {
		s.cache = newResultCache(cfg.CacheSize)
	}
	// Pre-resolve already-loaded collections (the adopted default, any
	// the caller opened before handing the engine over).
	for _, ec := range eng.Loaded() {
		s.colls[ec.Name()] = newColl(ec)
	}
	s.mux = http.NewServeMux()
	// Legacy single-index routes: the "default" collection.
	s.mux.HandleFunc("/v1/search", s.handleSearch)
	s.mux.HandleFunc("/v1/search/batch", s.handleSearchBatch)
	s.mux.HandleFunc("/v1/insert", s.handleInsert)
	s.mux.HandleFunc("/v1/delete", s.handleDelete)
	// Collection routes.
	s.mux.HandleFunc("POST /v1/collections/{name}/search", s.handleSearch)
	s.mux.HandleFunc("POST /v1/collections/{name}/search/batch", s.handleSearchBatch)
	s.mux.HandleFunc("POST /v1/collections/{name}/insert", s.handleInsert)
	s.mux.HandleFunc("POST /v1/collections/{name}/delete", s.handleDelete)
	s.mux.HandleFunc("GET /v1/collections/{name}/stats", s.handleCollStats)
	s.mux.HandleFunc("GET /v1/collections/{name}/usage", s.handleCollUsage)
	s.mux.HandleFunc("POST /v1/collections", s.handleCollCreate)
	s.mux.HandleFunc("GET /v1/collections", s.handleCollList)
	s.mux.HandleFunc("DELETE /v1/collections/{name}", s.handleCollDrop)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/usage", s.handleUsage)
	s.mux.HandleFunc("/v1/debug/slow", s.handleDebugSlow)
	s.mux.HandleFunc("GET /v1/debug/health", s.handleDebugHealth)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// SetDraining flips the readiness state: while draining, /healthz
// answers 503 so load balancers stop routing here, while in-flight and
// newly arriving requests still complete (http.Server.Shutdown handles
// connection-level draining).
func (s *Server) SetDraining(d bool) { s.draining.Store(d) }

// collName extracts the target collection from the request path; the
// legacy routes carry no {name} and serve the default collection.
func collName(r *http.Request) string {
	if name := r.PathValue("name"); name != "" {
		return name
	}
	return DefaultCollection
}

// resolve returns the request's collection state, lazily opening the
// collection through the registry. On failure it writes the error
// response and returns nil.
func (s *Server) resolve(w http.ResponseWriter, r *http.Request, endpoint string) *coll {
	name := collName(r)
	s.cmu.RLock()
	c, ok := s.colls[name]
	s.cmu.RUnlock()
	if ok {
		return c
	}
	ec, err := s.eng.Get(name)
	if err != nil {
		s.fail(w, name, endpoint, engineStatus(err), err)
		return nil
	}
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if c, ok := s.colls[name]; ok {
		return c
	}
	c = newColl(ec)
	s.colls[name] = c
	return c
}

// engineStatus maps registry errors to HTTP statuses.
func engineStatus(err error) int {
	switch {
	case errors.Is(err, engine.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, engine.ErrExists), errors.Is(err, engine.ErrAdopted):
		return http.StatusConflict
	case errors.Is(err, engine.ErrBadName), errors.Is(err, engine.ErrInvalidSpec):
		return http.StatusBadRequest
	case errors.Is(err, engine.ErrClosed):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// ---- request/response bodies ----

// filterTermJSON is the wire form of one filter predicate: {"key":
// "color", "value": "red"} (equality over a string or integer), or
// {"key": "price", "op": "range", "min": 10, "max": 99} (inclusive
// int64 range, either bound optional). Terms AND together.
type filterTermJSON struct {
	Key   string `json:"key"`
	Op    string `json:"op,omitempty"` // "eq" (default) | "range"
	Value any    `json:"value,omitempty"`
	Min   *int64 `json:"min,omitempty"`
	Max   *int64 `json:"max,omitempty"`
}

// parseFilter translates the wire terms into a library filter; nil for
// an absent filter.
func parseFilter(terms []filterTermJSON) (*lccs.Filter, error) {
	if len(terms) == 0 {
		return nil, nil
	}
	f := &lccs.Filter{Terms: make([]lccs.FilterTerm, 0, len(terms))}
	for i, t := range terms {
		switch t.Op {
		case "", "eq":
			switch v := t.Value.(type) {
			case string:
				f.Terms = append(f.Terms, lccs.EqStr(t.Key, v))
			case float64:
				if v != math.Trunc(v) || math.Abs(v) >= 1<<53 {
					return nil, fmt.Errorf("filter term %d: value %v is not an integer", i, v)
				}
				f.Terms = append(f.Terms, lccs.EqInt(t.Key, int64(v)))
			default:
				return nil, fmt.Errorf("filter term %d: \"value\" must be a string or integer", i)
			}
		case "range":
			f.Terms = append(f.Terms, lccs.Range(t.Key, t.Min, t.Max))
		default:
			return nil, fmt.Errorf("filter term %d: unknown op %q (want \"eq\" or \"range\")", i, t.Op)
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

type searchRequest struct {
	Query []float32 `json:"query"`
	K     int       `json:"k"`
	// Budget is the optional candidate budget λ; 0 uses the backend's
	// default.
	Budget int `json:"budget,omitempty"`
	// Filter restricts results to vectors whose attributes match every
	// term.
	Filter []filterTermJSON `json:"filter,omitempty"`
	// Limit switches the request to cursor pagination: the response
	// carries up to Limit results plus a continuation token.
	Limit int `json:"limit,omitempty"`
	// Cursor resumes a paginated scan from a previous response's
	// next_cursor.
	Cursor string `json:"cursor,omitempty"`
	// Trace opts this request into span recording: the response carries
	// the per-stage span tree and an X-Request-Id header.
	Trace bool `json:"trace,omitempty"`
	// Explain opts this request into plan reporting: the response
	// carries the resolved query plan (backend kind, shards visited
	// with per-shard cost, filter selectivity, cache outcome) built
	// from an internally forced trace. Implies span recording.
	Explain bool `json:"explain,omitempty"`
}

// searchScratch is the pooled per-request state of the single-search
// endpoint: the decoded request (whose query slice's backing array is
// reused by the JSON decoder), the backend result row, and the response
// payload. At steady state an unfiltered, non-paginated search request
// allocates no per-request buffers in this package.
type searchScratch struct {
	req searchRequest
	res []lccs.Neighbor
	out []neighborJSON
	co  lccs.Cost
}

// searchScratchPool serves every /v1/search request.
var searchScratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// getSearchScratch fetches pooled scratch with the request fields reset
// (the query buffer keeps its capacity for the decoder to reuse).
func getSearchScratch() *searchScratch {
	sc := searchScratchPool.Get().(*searchScratch)
	sc.req.Query = sc.req.Query[:0]
	sc.req.K = 0
	sc.req.Budget = 0
	sc.req.Filter = nil
	sc.req.Limit = 0
	sc.req.Cursor = ""
	sc.req.Trace = false
	sc.req.Explain = false
	sc.co.Reset()
	if sc.out == nil {
		// Keep the response field non-nil so an empty result encodes as
		// [] rather than null.
		sc.out = []neighborJSON{}
	}
	return sc
}

type neighborJSON struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

type searchResponse struct {
	Neighbors  []neighborJSON `json:"neighbors"`
	Cached     bool           `json:"cached"`
	TookMicros int64          `json:"took_us"`
	// NextCursor continues a paginated scan; absent when the stream is
	// exhausted or the request was not paginated.
	NextCursor string `json:"next_cursor,omitempty"`
	// RequestID and Trace are present only on traced requests.
	RequestID uint64         `json:"request_id,omitempty"`
	Trace     []obs.SpanNode `json:"trace,omitempty"`
	// Explain is the resolved query plan, present only when the request
	// asked with "explain": true.
	Explain *explainJSON `json:"explain,omitempty"`
}

// slowLogResponse is the /v1/debug/slow payload: the slow-query ring
// newest-first plus the reservoir sample of traced requests that
// finished under the threshold.
type slowLogResponse struct {
	ThresholdUS float64         `json:"threshold_us"`
	Slow        []obs.SlowEntry `json:"slow"`
	Sample      []obs.SlowEntry `json:"sample"`
}

type batchRequest struct {
	Queries [][]float32 `json:"queries"`
	K       int         `json:"k"`
	Budget  int         `json:"budget,omitempty"`
}

type batchResponse struct {
	Results    [][]neighborJSON `json:"results"`
	TookMicros int64            `json:"took_us"`
}

type insertRequest struct {
	Vectors [][]float32 `json:"vectors"`
	// Attrs optionally attaches metadata to the vectors, aligned by
	// index (attrs[i] belongs to vectors[i]); values are strings or
	// integers. null entries attach nothing.
	Attrs []map[string]any `json:"attrs,omitempty"`
}

// deleteRequest accepts a single id, a batch, or both; {"id": 0} is
// distinguishable from an absent field through the pointer.
type deleteRequest struct {
	ID  *int  `json:"id,omitempty"`
	IDs []int `json:"ids,omitempty"`
}

type deleteResponse struct {
	// Deleted counts ids that were live and are now tombstoned.
	Deleted int `json:"deleted"`
	// Missing lists ids that were unknown or already deleted — the
	// request is idempotent, so these are reported, not failed.
	Missing []int `json:"missing,omitempty"`
	// RequestID correlates the response with the server's structured log
	// (also sent as the X-Request-Id header).
	RequestID uint64 `json:"request_id,omitempty"`
}

type insertResponse struct {
	IDs []int `json:"ids"`
	// Warning carries a non-fatal backend condition (e.g. a previous
	// background delta build failed); the inserts themselves succeeded.
	Warning string `json:"warning,omitempty"`
	// RequestID correlates the response with the server's structured log
	// (also sent as the X-Request-Id header).
	RequestID uint64 `json:"request_id,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// createCollectionRequest is the /v1/collections POST body: the name
// plus the spec fields (metric, m, budget, quantize, ...) inline.
type createCollectionRequest struct {
	Name string `json:"name"`
	engine.Spec
}

type collectionInfo struct {
	Name string `json:"name"`
	// Vectors and Loaded describe open collections; an on-disk
	// collection not yet opened reports loaded=false and no count.
	Vectors int  `json:"vectors,omitempty"`
	Loaded  bool `json:"loaded"`
}

type listCollectionsResponse struct {
	Collections []collectionInfo `json:"collections"`
}

// createCollectionResponse is collectionInfo plus the request id that
// also tags the "collection created" log line.
type createCollectionResponse struct {
	collectionInfo
	RequestID uint64 `json:"request_id,omitempty"`
}

type dropCollectionResponse struct {
	Dropped   string `json:"dropped"`
	RequestID uint64 `json:"request_id,omitempty"`
}

// ---- handlers ----

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !s.requirePost(w, r, "search") {
		return
	}
	c := s.resolve(w, r, "search")
	if c == nil {
		return
	}
	// Decode into pooled scratch: the JSON decoder appends into the
	// previous request's query buffer instead of allocating a fresh
	// slice per request.
	sc := getSearchScratch()
	defer searchScratchPool.Put(sc)
	if err := json.NewDecoder(r.Body).Decode(&sc.req); err != nil {
		s.fail(w, c.name, "search", http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	req := &sc.req
	f, err := parseFilter(req.Filter)
	if err != nil {
		s.fail(w, c.name, "search", http.StatusBadRequest, fmt.Errorf("%w: %v", lccs.ErrInvalidFilter, err))
		return
	}
	paginated := req.Cursor != "" || req.Limit > 0
	if paginated && req.Limit <= 0 {
		s.fail(w, c.name, "search", http.StatusBadRequest, errors.New("\"limit\" must be positive when resuming a cursor"))
		return
	}
	reqID := s.reqID.Add(1)
	// Tracing: explicit opt-in via "trace": true, an "explain": true
	// plan request (the plan is assembled from spans), or the
	// configured deterministic sampling stride. The untraced path never
	// draws a trace from the pool; every Trace method is nil-safe, so
	// the span calls below vanish into a pointer check.
	var tr *obs.Trace
	if req.Trace || req.Explain || (s.sampleEvery > 0 && s.sampleSeq.Add(1)%s.sampleEvery == 0) {
		tr = obs.GetTrace(reqID)
		defer obs.PutTrace(tr)
	}
	// The cache is probed before admission: a hit costs microseconds and
	// touches no backend, so it must not occupy an execution slot or be
	// shed under overload. Obviously invalid requests never touch the
	// cache, so 400s do not pollute miss statistics or key space. The
	// key carries the collection name, the canonical filter encoding,
	// and the cursor token, so tenants, filtered variants of one query,
	// and successive pages can never alias each other's entries.
	kEff := req.K
	if paginated {
		kEff = req.Limit
	}
	cacheable := s.cache != nil && kEff > 0 && len(req.Query) > 0 && req.Budget >= 0
	cacheOutcome := ""
	var key string
	if cacheable {
		cacheStart := time.Now()
		key = cacheKey(c.name, c.gen.Load(), kEff, req.Budget, req.Query, s.quant, f, req.Cursor)
		res, next, ok := s.cache.get(key)
		cacheDur := time.Since(cacheStart)
		obs.ObserveDur(obs.StageCache, cacheDur)
		tr.AddSpan(obs.StageCache, -1, cacheStart, cacheDur)
		if ok {
			cacheOutcome = "hit"
			sc.out = toJSONInto(sc.out[:0], res)
			took := time.Since(start)
			s.met.latency.observe(took.Seconds())
			c.usage.AddCacheHit()
			c.usage.AddSearch(0, 0, 0, 0, 0)
			s.recordHealth(c, obs.HealthSample{Dur: took, CacheHit: true})
			resp := searchResponse{
				Neighbors:  sc.out,
				Cached:     true,
				NextCursor: next,
				TookMicros: took.Microseconds(),
			}
			if req.Explain {
				resp.Explain = buildExplain(c, kEff, req.Budget, f, nil, cacheOutcome, tr)
			}
			s.respondSearch(w, c, resp, reqID, tr, req.Trace)
			s.recordSlow(reqID, "search", c.name, f, start, took, kEff, req.Budget, tr)
			return
		}
		cacheOutcome = "miss"
	}
	admStart := time.Now()
	if ok := s.admit(w, r, "search", c); !ok {
		return
	}
	defer s.release(c)
	admDur := time.Since(admStart)
	obs.ObserveDur(obs.StageAdmission, admDur)
	tr.AddSpan(obs.StageAdmission, -1, admStart, admDur)

	var next string
	var res []lccs.Neighbor
	co := &sc.co
	if paginated {
		res, next, err = s.searchCursor(c, req.Query, req.Limit, req.Budget, f, req.Cursor)
	} else {
		res, err = s.search(c, req.Query, req.K, req.Budget, f, sc.res, co, tr)
	}
	if err != nil {
		code := statusFor(err)
		if errors.Is(err, errNotSupported) {
			code = http.StatusNotImplemented
		}
		s.fail(w, c.name, "search", code, err)
		return
	}
	if !paginated {
		sc.res = res
	}
	if cacheable {
		// The cache retains its entries past this request, so it gets
		// its own copy rather than the pooled row.
		s.cache.put(key, append([]lccs.Neighbor(nil), res...), next)
		c.usage.AddCacheMiss()
	}
	encStart := time.Now()
	sc.out = toJSONInto(sc.out[:0], res)
	encDur := time.Since(encStart)
	obs.ObserveDur(obs.StageEncode, encDur)
	tr.AddSpan(obs.StageEncode, -1, encStart, encDur)
	took := time.Since(start)
	s.met.latency.observe(took.Seconds())
	c.usage.AddSearch(co.Comparisons, co.Candidates, co.Reranked, co.BytesScanned, co.FilterRejected)
	s.recordHealth(c, obs.HealthSample{
		Dur:          took,
		Comparisons:  co.Comparisons,
		BytesScanned: co.BytesScanned,
		CacheMiss:    cacheOutcome == "miss",
	})
	resp := searchResponse{
		Neighbors:  sc.out,
		NextCursor: next,
		TookMicros: took.Microseconds(),
	}
	if req.Explain {
		resp.Explain = buildExplain(c, req.K, req.Budget, f, co, cacheOutcome, tr)
	}
	s.respondSearch(w, c, resp, reqID, tr, req.Trace)
	s.recordSlow(reqID, "search", c.name, f, start, took, kEff, req.Budget, tr)
}

// respondSearch sends a search response. Only an explicit "trace": true
// request gets the span tree inline (plus the request id and the
// X-Request-Id header); sampler-selected traces feed the histograms and
// the slow-log reservoir without inflating client responses.
func (s *Server) respondSearch(w http.ResponseWriter, c *coll, resp searchResponse, reqID uint64, tr *obs.Trace, explicit bool) {
	if tr != nil && explicit {
		resp.Trace = tr.Tree()
	}
	if (tr != nil && explicit) || resp.Explain != nil {
		resp.RequestID = reqID
		w.Header().Set("X-Request-Id", strconv.FormatUint(reqID, 10))
	}
	s.respond(w, c.name, "search", http.StatusOK, resp)
}

// recordSlow offers a finished search to the slow-query log and warns
// through the structured logger when it crossed the threshold. Entries
// carry the collection name and the hex of the canonical filter key
// (vec.Filter.AppendKey), so slow queries group by tenant and by
// predicate.
func (s *Server) recordSlow(reqID uint64, endpoint, collection string, f *lccs.Filter, start time.Time, took time.Duration, k, budget int, tr *obs.Trace) {
	thr := s.slow.Threshold()
	slow := thr > 0 && took >= thr
	if tr == nil && !slow {
		return // nothing to capture: neither traced nor over threshold
	}
	filterKey := ""
	if f != nil {
		filterKey = hex.EncodeToString(f.AppendKey(nil))
	}
	// tr.Tree is passed as a thunk: the log materializes the span tree
	// only for entries it actually keeps, so a traced request that the
	// reservoir rejects costs no tree allocation. Tree is nil-safe, so
	// the method value works for untraced-but-slow requests too.
	s.slow.Record(obs.SlowEntry{
		RequestID:  reqID,
		Endpoint:   endpoint,
		Collection: collection,
		Time:       start,
		DurUS:      float64(took) / float64(time.Microsecond),
		K:          k,
		Budget:     budget,
		Filter:     filterKey,
		Traced:     tr != nil,
	}, tr.Tree)
	if slow {
		s.logger.Warn("slow query",
			"request_id", reqID, "endpoint", endpoint, "collection", collection,
			"filter", filterKey, "took", took,
			"k", k, "budget", budget, "traced", tr != nil)
	}
}

// errNotSupported marks a request for a capability the collection's
// backend lacks; the handler maps it to 501.
var errNotSupported = errors.New("backend does not support this request")

// search routes an unpaginated query to the backend. The library
// facades all implement CostSearcher, whose one metered call covers
// filter + cost record + trace at once; co is filled in place (the
// caller passes pooled scratch, so accounting allocates nothing). A
// custom backend without it falls back to the legacy capability
// routing: the filtered path when f is set, otherwise the
// default-budget (budget == 0) or explicit-budget call, appending into
// the pooled dst row — its cost record simply stays zero. A negative
// budget is the client's error, not a request for the default.
func (s *Server) search(c *coll, q []float32, k, budget int, f *lccs.Filter, dst []lccs.Neighbor, co *lccs.Cost, tr *obs.Trace) ([]lccs.Neighbor, error) {
	if budget < 0 {
		return dst, lccs.ErrInvalidBudget
	}
	if c.cost != nil {
		return c.cost.SearchCostInto(q, k, budget, f, dst, co, tr)
	}
	if f != nil {
		if c.filt == nil {
			return dst, fmt.Errorf("%w: filtered search", errNotSupported)
		}
		if budget > 0 {
			return c.filt.SearchFilterBudgetInto(q, k, budget, f, dst)
		}
		return c.filt.SearchFilter(q, k, f)
	}
	if tr != nil && c.traced != nil {
		return c.traced.SearchBudgetIntoTraced(q, k, budget, dst, tr)
	}
	if budget > 0 {
		return c.backend.SearchBudgetInto(q, k, budget, dst)
	}
	return c.backend.SearchInto(q, k, dst)
}

// searchCursor routes a paginated query to the backend's cursor path.
func (s *Server) searchCursor(c *coll, q []float32, limit, budget int, f *lccs.Filter, cursor string) ([]lccs.Neighbor, string, error) {
	if budget < 0 {
		return nil, "", lccs.ErrInvalidBudget
	}
	if c.cur == nil {
		return nil, "", fmt.Errorf("%w: cursor pagination", errNotSupported)
	}
	return c.cur.SearchCursor(q, limit, budget, f, cursor)
}

func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !s.requirePost(w, r, "search_batch") {
		return
	}
	c := s.resolve(w, r, "search_batch")
	if c == nil {
		return
	}
	// A batch holds one admission slot from before its body is decoded:
	// batch bodies are the large ones, so decode memory must count
	// against the concurrency bound too. The backend's own batch engine
	// parallelizes across cores. The result cache is bypassed: batch
	// workloads are throughput-oriented and would churn the LRU.
	if ok := s.admit(w, r, "search_batch", c); !ok {
		return
	}
	defer s.release(c)
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, c.name, "search_batch", http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}

	var rows [][]lccs.Neighbor
	var err error
	switch {
	case req.Budget > 0:
		rows, err = c.backend.SearchBatchBudget(req.Queries, req.K, req.Budget)
	case req.Budget < 0:
		err = lccs.ErrInvalidBudget
	default:
		rows, err = c.backend.SearchBatch(req.Queries, req.K)
	}
	if err != nil {
		s.fail(w, c.name, "search_batch", statusFor(err), err)
		return
	}
	out := make([][]neighborJSON, len(rows))
	for i, row := range rows {
		out[i] = toJSON(row)
	}
	took := time.Since(start)
	s.met.latency.observe(took.Seconds())
	// The batch engine's internal path does not surface per-query cost
	// records; the batch still counts toward the health rings as one
	// request with its end-to-end latency.
	s.recordHealth(c, obs.HealthSample{Dur: took})
	s.respond(w, c.name, "search_batch", http.StatusOK, batchResponse{
		Results:    out,
		TookMicros: took.Microseconds(),
	})
}

// parseAttrs translates wire attribute rows into library attribute
// rows; nil rows (JSON null) stay nil.
func parseAttrs(rows []map[string]any) ([]lccs.Attrs, error) {
	out := make([]lccs.Attrs, len(rows))
	for i, row := range rows {
		if len(row) == 0 {
			continue
		}
		a := make(lccs.Attrs, len(row))
		for key, v := range row {
			switch val := v.(type) {
			case string:
				a[key] = lccs.StrAttr(val)
			case float64:
				if val != math.Trunc(val) || math.Abs(val) >= 1<<53 {
					return nil, fmt.Errorf("attrs[%d].%s: %v is not an integer", i, key, val)
				}
				a[key] = lccs.IntAttr(int64(val))
			default:
				return nil, fmt.Errorf("attrs[%d].%s: values must be strings or integers", i, key)
			}
		}
		out[i] = a
	}
	return out, nil
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !s.requirePost(w, r, "insert") {
		return
	}
	c := s.resolve(w, r, "insert")
	if c == nil {
		return
	}
	reqID := s.reqID.Add(1)
	if c.inserter == nil {
		s.fail(w, c.name, "insert", http.StatusNotImplemented,
			errors.New("backend is read-only: inserts need a DynamicIndex (-dynamic)"))
		return
	}
	// Inserts go through admission too: the append itself is cheap, but
	// decoding a vector batch is not, and it must not bypass the
	// concurrency bound.
	if ok := s.admit(w, r, "insert", c); !ok {
		return
	}
	defer s.release(c)
	var req insertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, c.name, "insert", http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Vectors) == 0 {
		s.fail(w, c.name, "insert", http.StatusBadRequest, errors.New("no vectors in request"))
		return
	}
	var attrs []lccs.Attrs
	if req.Attrs != nil {
		if len(req.Attrs) != len(req.Vectors) {
			s.fail(w, c.name, "insert", http.StatusBadRequest,
				fmt.Errorf("%w: %d attr rows for %d vectors", lccs.ErrAttrsMismatch, len(req.Attrs), len(req.Vectors)))
			return
		}
		if c.attrIns == nil && c.attrBatch == nil {
			s.fail(w, c.name, "insert", http.StatusNotImplemented,
				errors.New("backend does not support vector attributes"))
			return
		}
		var err error
		attrs, err = parseAttrs(req.Attrs)
		if err != nil {
			s.fail(w, c.name, "insert", http.StatusBadRequest, err)
			return
		}
	}
	// Validate the whole batch up front so rejections are atomic:
	// either every vector goes in or none does. The batch must be
	// internally consistent and, when the backend already knows its
	// dimensionality, match it.
	dim := 0
	if d, ok := c.backend.(interface{ Dim() int }); ok {
		dim = d.Dim()
	}
	for i, v := range req.Vectors {
		if len(v) == 0 {
			s.fail(w, c.name, "insert", http.StatusBadRequest,
				fmt.Errorf("vector %d: %w", i, lccs.ErrEmptyVector))
			return
		}
		if dim == 0 {
			dim = len(v)
		}
		if len(v) != dim {
			s.fail(w, c.name, "insert", http.StatusBadRequest,
				fmt.Errorf("vector %d: %w: has %d dimensions, want %d", i, lccs.ErrDimensionMismatch, len(v), dim))
			return
		}
	}
	walBefore := walAppended(c)
	ids, warning, failCode, failErr := s.applyInserts(c, req.Vectors, attrs)
	walBytes := walAppended(c) - walBefore
	if failErr != nil {
		// Earlier vectors of the batch may already be in — bump the
		// generation so their results become visible, and return their
		// ids so the client can recover without duplicating them. (On a
		// durability failure the applied ids are in memory but possibly
		// not on disk; the 5xx tells the client not to trust them.)
		if len(ids) > 0 {
			c.gen.Add(1)
			c.inserts.Add(uint64(len(ids)))
			c.usage.AddInsert(len(ids), walBytes)
		}
		c.usage.AddError()
		s.recordHealth(c, obs.HealthSample{Dur: -1, Err: true, WALBytes: walBytes})
		w.Header().Set("X-Request-Id", strconv.FormatUint(reqID, 10))
		s.met.countRequest(c.name, "insert", failCode)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(failCode)
		_ = json.NewEncoder(w).Encode(struct {
			errorResponse
			IDs       []int  `json:"ids"`
			RequestID uint64 `json:"request_id,omitempty"`
		}{errorResponse{Error: failErr.Error()}, ids, reqID})
		return
	}
	c.gen.Add(1) // invalidate every cached result of this collection
	c.inserts.Add(uint64(len(ids)))
	c.usage.AddInsert(len(ids), walBytes)
	took := time.Since(start)
	s.recordHealth(c, obs.HealthSample{Dur: took, WALBytes: walBytes})
	s.logger.Debug("insert",
		"request_id", reqID, "collection", c.name,
		"vectors", len(ids), "wal_bytes", walBytes, "took", took)
	w.Header().Set("X-Request-Id", strconv.FormatUint(reqID, 10))
	s.respond(w, c.name, "insert", http.StatusOK, insertResponse{IDs: ids, Warning: warning, RequestID: reqID})
}

// applyInserts pushes a pre-validated vector batch (with optional
// aligned attrs) into the backend. On a durable backend (BatchInserter)
// the whole batch is one journal append — and, crucially, the call
// returns only once the batch is durable per the configured sync
// policy, so a 200 never acknowledges a write a crash could lose. A
// durability failure is a 503 (the write may be applied in memory but
// not on disk); a rejected vector is a 400. A deferred background-build
// failure is reported as a warning alongside success, matching
// DynamicIndex.Add's documented semantics.
func (s *Server) applyInserts(c *coll, vectors [][]float32, attrs []lccs.Attrs) (ids []int, warning string, failCode int, failErr error) {
	if attrs == nil && c.batch != nil {
		return s.finishBatch(c.batch.AddBatch(vectors))
	}
	if attrs != nil && c.attrBatch != nil {
		return s.finishBatch(c.attrBatch.AddBatchWithAttrs(vectors, attrs))
	}
	ids = make([]int, 0, len(vectors))
	for i, v := range vectors {
		var id int
		var err error
		if attrs != nil {
			id, err = c.attrIns.AddWithAttrs(v, attrs[i])
		} else {
			id, err = c.inserter.Add(v)
		}
		switch {
		case err != nil && errors.Is(err, lccs.ErrNotDurable):
			return ids, "", http.StatusServiceUnavailable, fmt.Errorf("vector %d: %w", i, err)
		case err != nil && (!c.dynInserter || isRejectedInsert(err)):
			// Should be unreachable after pre-validation, but a custom
			// Inserter may reject for its own reasons.
			return ids, "", http.StatusBadRequest, fmt.Errorf("vector %d rejected: %w", i, err)
		case err != nil:
			// DynamicIndex.Add surfaces a *previous* background build
			// failure here while the insert itself succeeded — keep the
			// id and pass the condition on as a warning.
			warning = err.Error()
		}
		ids = append(ids, id)
	}
	return ids, warning, 0, nil
}

// finishBatch classifies a bulk-insert result into the applyInserts
// return shape.
func (s *Server) finishBatch(ids []int, err error) ([]int, string, int, error) {
	switch {
	case err == nil:
		return ids, "", 0, nil
	case errors.Is(err, lccs.ErrNotDurable):
		return ids, "", http.StatusServiceUnavailable, err
	case errors.Is(err, lccs.ErrAttrsMismatch), isRejectedInsert(err):
		return ids, "", http.StatusBadRequest, err
	}
	return ids, err.Error(), 0, nil
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !s.requirePost(w, r, "delete") {
		return
	}
	c := s.resolve(w, r, "delete")
	if c == nil {
		return
	}
	reqID := s.reqID.Add(1)
	if c.deleter == nil {
		s.fail(w, c.name, "delete", http.StatusNotImplemented,
			errors.New("backend cannot delete: deletes need a DynamicIndex (-dynamic)"))
		return
	}
	// Deletes share the admission bound: each one takes the backend's
	// write lock, so a flood of them must not bypass the concurrency
	// controls that protect searches.
	if ok := s.admit(w, r, "delete", c); !ok {
		return
	}
	defer s.release(c)
	var req deleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, c.name, "delete", http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	ids := req.IDs
	if req.ID != nil {
		ids = append([]int{*req.ID}, ids...)
	}
	if len(ids) == 0 {
		s.fail(w, c.name, "delete", http.StatusBadRequest, errors.New("no ids in request"))
		return
	}
	// On a durable backend the error-aware paths are used: the delete
	// is acknowledged only after it is journaled per the sync policy —
	// the whole batch under a single group-committed wait when the
	// backend has a bulk path — and a journal failure turns into a 503
	// instead of a silently non-durable 200.
	walBefore := walAppended(c)
	var resp deleteResponse
	switch {
	case c.batchDel != nil:
		deleted, missing, err := c.batchDel.DeleteBatch(ids)
		resp.Deleted, resp.Missing = deleted, missing
		if err != nil {
			if deleted > 0 {
				c.gen.Add(1)
				c.deletes.Add(uint64(deleted))
				c.usage.AddDelete(deleted, walAppended(c)-walBefore)
			}
			s.fail(w, c.name, "delete", http.StatusServiceUnavailable, err)
			return
		}
	default:
		for _, id := range ids {
			var live bool
			var err error
			if c.durDeleter != nil {
				live, err = c.durDeleter.DeleteDurable(id)
			} else {
				live = c.deleter.Delete(id)
			}
			if live {
				resp.Deleted++
			} else {
				resp.Missing = append(resp.Missing, id)
			}
			if err != nil {
				if resp.Deleted > 0 {
					c.gen.Add(1)
					c.deletes.Add(uint64(resp.Deleted))
					c.usage.AddDelete(resp.Deleted, walAppended(c)-walBefore)
				}
				s.fail(w, c.name, "delete", http.StatusServiceUnavailable,
					fmt.Errorf("id %d: %w (deleted %d of %d before the failure)", id, err, resp.Deleted, len(ids)))
				return
			}
		}
	}
	if resp.Deleted > 0 {
		// A delete changes every query's answer set: bump the write
		// generation so stale cached results can never be served.
		c.gen.Add(1)
		c.deletes.Add(uint64(resp.Deleted))
	}
	walBytes := walAppended(c) - walBefore
	c.usage.AddDelete(resp.Deleted, walBytes)
	took := time.Since(start)
	s.recordHealth(c, obs.HealthSample{Dur: took, WALBytes: walBytes})
	s.logger.Debug("delete",
		"request_id", reqID, "collection", c.name,
		"deleted", resp.Deleted, "missing", len(resp.Missing),
		"wal_bytes", walBytes, "took", took)
	resp.RequestID = reqID
	w.Header().Set("X-Request-Id", strconv.FormatUint(reqID, 10))
	s.respond(w, c.name, "delete", http.StatusOK, resp)
}

// isRejectedInsert reports whether an Inserter.Add error means the
// vector was rejected (DynamicIndex's validation errors), as opposed to
// a deferred background-build failure delivered alongside a successful
// insert.
func isRejectedInsert(err error) bool {
	return errors.Is(err, lccs.ErrEmptyVector) || errors.Is(err, lccs.ErrDimensionMismatch)
}

// ---- collection registry endpoints ----

func (s *Server) handleCollCreate(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req createCollectionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, "", "collections_create", http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	reqID := s.reqID.Add(1)
	ec, err := s.eng.Create(req.Name, req.Spec)
	if err != nil {
		s.fail(w, "", "collections_create", engineStatus(err), err)
		return
	}
	s.cmu.Lock()
	s.colls[req.Name] = newColl(ec)
	s.cmu.Unlock()
	s.logger.Info("collection created", "request_id", reqID, "collection", req.Name)
	w.Header().Set("X-Request-Id", strconv.FormatUint(reqID, 10))
	s.respond(w, "", "collections_create", http.StatusCreated, createCollectionResponse{
		collectionInfo: collectionInfo{Name: req.Name, Vectors: ec.Backend().Len(), Loaded: true},
		RequestID:      reqID,
	})
}

func (s *Server) handleCollList(w http.ResponseWriter, r *http.Request) {
	names := s.eng.List()
	out := listCollectionsResponse{Collections: make([]collectionInfo, 0, len(names))}
	s.cmu.RLock()
	for _, name := range names {
		info := collectionInfo{Name: name}
		if c, ok := s.colls[name]; ok {
			info.Loaded = true
			info.Vectors = c.backend.Len()
		}
		out.Collections = append(out.Collections, info)
	}
	s.cmu.RUnlock()
	s.respond(w, "", "collections_list", http.StatusOK, out)
}

func (s *Server) handleCollDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	reqID := s.reqID.Add(1)
	if err := s.eng.Drop(name); err != nil {
		s.fail(w, "", "collections_drop", engineStatus(err), err)
		return
	}
	s.cmu.Lock()
	delete(s.colls, name)
	s.cmu.Unlock()
	if s.cache != nil {
		// A future collection under the same name restarts its write
		// generation at zero; flushing now makes key collisions with the
		// dead tenant impossible.
		s.cache.clear()
	}
	s.logger.Info("collection dropped", "request_id", reqID, "collection", name)
	w.Header().Set("X-Request-Id", strconv.FormatUint(reqID, 10))
	s.respond(w, "", "collections_drop", http.StatusOK, dropCollectionResponse{Dropped: name, RequestID: reqID})
}

func (s *Server) handleCollStats(w http.ResponseWriter, r *http.Request) {
	c := s.resolve(w, r, "stats")
	if c == nil {
		return
	}
	s.respond(w, c.name, "stats", http.StatusOK, s.collStats(c))
}

// ---- stats ----

// Stats is the /v1/stats payload. The top-level request/insert/delete
// counters aggregate across collections; Backend and WAL describe the
// default collection when one exists (the legacy single-index shape
// monitoring already scrapes). Collections breaks everything out per
// collection.
type Stats struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Requests      map[string]uint64 `json:"requests"` // "endpoint:code" → count
	InFlight      int               `json:"in_flight"`
	QueueDepth    int64             `json:"queue_depth"`
	Rejected      uint64            `json:"admission_rejected"`
	WaitTimeouts  uint64            `json:"admission_wait_timeouts"`
	Inserts       uint64            `json:"inserts"`
	Deletes       uint64            `json:"deletes"`
	Cache         CacheStats        `json:"cache"`
	Latency       LatencyStats      `json:"latency"`
	Backend       BackendStats      `json:"backend"`
	// WAL reports write-ahead-log health on durable backends: depth
	// (records a crash would replay), segment footprint, and fsync
	// latency. Absent otherwise.
	WAL *lccs.WALStats `json:"wal,omitempty"`
	// Collections breaks the same figures out per collection.
	Collections map[string]CollectionStats `json:"collections,omitempty"`
}

// CollectionStats is one collection's slice of the operational stats.
type CollectionStats struct {
	Requests map[string]uint64 `json:"requests"` // "endpoint:code" → count
	Inserts  uint64            `json:"inserts"`
	Deletes  uint64            `json:"deletes"`
	// InFlight counts this collection's currently admitted requests;
	// QuotaRejected counts rejections by the per-collection share.
	InFlight      int64          `json:"in_flight"`
	QuotaRejected uint64         `json:"quota_rejected"`
	Backend       BackendStats   `json:"backend"`
	WAL           *lccs.WALStats `json:"wal,omitempty"`
}

// CacheStats summarizes the result cache.
type CacheStats struct {
	Enabled   bool    `json:"enabled"`
	Entries   int     `json:"entries"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// LatencyStats summarizes the search latency histogram.
type LatencyStats struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// BackendStats describes the index behind one collection.
type BackendStats struct {
	Kind     string `json:"kind"`
	Vectors  int    `json:"vectors"`
	Shards   int    `json:"shards,omitempty"`
	Buffered int    `json:"buffered,omitempty"`
	// Tombstones counts deleted vectors whose rows await compaction.
	Tombstones int  `json:"tombstones,omitempty"`
	Writable   bool `json:"writable"`
}

// loadedColls returns the resolved collections sorted by name.
func (s *Server) loadedColls() []*coll {
	s.cmu.RLock()
	defer s.cmu.RUnlock()
	out := make([]*coll, 0, len(s.colls))
	for _, c := range s.colls {
		out = append(out, c)
	}
	sortColls(out)
	return out
}

func sortColls(cs []*coll) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].name < cs[j-1].name; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// collStats assembles one collection's stats.
func (s *Server) collStats(c *coll) CollectionStats {
	keys, counts := s.met.requestsSnapshot()
	reqs := make(map[string]uint64)
	for _, k := range keys {
		if k.collection == c.name {
			reqs[fmt.Sprintf("%s:%d", k.endpoint, k.code)] = counts[k]
		}
	}
	st := CollectionStats{
		Requests:      reqs,
		Inserts:       c.inserts.Load(),
		Deletes:       c.deletes.Load(),
		InFlight:      c.occupancy.Load(),
		QuotaRejected: c.quotaRejected.Load(),
		Backend:       backendStats(c),
	}
	if c.walStats != nil {
		ws := c.walStats.WALStats()
		st.WAL = &ws
	}
	return st
}

// StatsSnapshot assembles the current Stats (also used by /v1/stats).
func (s *Server) StatsSnapshot() Stats {
	keys, counts := s.met.requestsSnapshot()
	reqs := make(map[string]uint64, len(keys))
	for _, k := range keys {
		// Aggregate across collections under the legacy "endpoint:code"
		// keys.
		reqs[fmt.Sprintf("%s:%d", k.endpoint, k.code)] += counts[k]
	}
	st := Stats{
		UptimeSeconds: time.Since(s.met.start).Seconds(),
		Requests:      reqs,
		InFlight:      s.adm.inFlight(),
		QueueDepth:    s.adm.queueDepth(),
		Rejected:      s.adm.rejected.Load(),
		WaitTimeouts:  s.adm.timeouts.Load(),
	}
	colls := s.loadedColls()
	st.Collections = make(map[string]CollectionStats, len(colls))
	for _, c := range colls {
		cst := s.collStats(c)
		st.Collections[c.name] = cst
		st.Inserts += cst.Inserts
		st.Deletes += cst.Deletes
		if c.name == DefaultCollection {
			st.Backend = cst.Backend
			st.WAL = cst.WAL
		}
	}
	_, sum, total := s.met.latency.snapshot()
	st.Latency = LatencyStats{
		Count: total,
		P50Ms: s.met.latency.quantile(0.50) * 1000,
		P99Ms: s.met.latency.quantile(0.99) * 1000,
	}
	if total > 0 {
		st.Latency.MeanMs = sum / float64(total) * 1000
	}
	if s.cache != nil {
		hits, misses, evictions := s.cache.stats()
		st.Cache = CacheStats{Enabled: true, Entries: s.cache.len(), Hits: hits, Misses: misses, Evictions: evictions}
		if hits+misses > 0 {
			st.Cache.HitRate = float64(hits) / float64(hits+misses)
		}
	}
	return st
}

// backendStats inspects the concrete facade behind one collection.
func backendStats(c *coll) BackendStats {
	b := BackendStats{Vectors: c.backend.Len(), Writable: c.inserter != nil}
	switch ix := c.backend.(type) {
	case *lccs.Index:
		b.Kind = "index"
	case *lccs.ShardedIndex:
		b.Kind = "sharded"
		b.Shards = ix.Shards()
	case *lccs.DynamicIndex:
		b.Kind = "dynamic"
		b.Shards = ix.Shards()
		b.Buffered = ix.Buffered()
		b.Tombstones = ix.Deleted()
	case *lccs.DurableIndex:
		b.Kind = "durable"
		b.Shards = ix.Shards()
		b.Buffered = ix.Buffered()
		b.Tombstones = ix.Deleted()
	default:
		b.Kind = "custom"
	}
	return b
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.respond(w, "", "stats", http.StatusOK, s.StatsSnapshot())
}

func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.fail(w, "", "debug_slow", http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	slow, sample := s.slow.Snapshot()
	if slow == nil {
		slow = []obs.SlowEntry{}
	}
	if sample == nil {
		sample = []obs.SlowEntry{}
	}
	s.respond(w, "", "debug_slow", http.StatusOK, slowLogResponse{
		ThresholdUS: float64(s.slow.Threshold()) / float64(time.Microsecond),
		Slow:        slow,
		Sample:      sample,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.respond(w, "", "healthz", http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.respond(w, "", "healthz", http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	colls := s.loadedColls()
	var totInserts, totDeletes, totTombstones, totVectors float64
	type collFig struct {
		name                       string
		bs                         BackendStats
		inserts, deletes, quotaRej float64
		occupancy                  float64
		hasDeleter                 bool
	}
	figs := make([]collFig, 0, len(colls))
	for _, c := range colls {
		bs := backendStats(c)
		figs = append(figs, collFig{
			name: c.name, bs: bs,
			inserts:    float64(c.inserts.Load()),
			deletes:    float64(c.deletes.Load()),
			quotaRej:   float64(c.quotaRejected.Load()),
			occupancy:  float64(c.occupancy.Load()),
			hasDeleter: c.deleter != nil,
		})
		totInserts += float64(c.inserts.Load())
		totDeletes += float64(c.deletes.Load())
		totTombstones += float64(bs.Tombstones)
		totVectors += float64(bs.Vectors)
	}
	counters := []gauge{
		{name: "lccs_admission_rejected_total", help: "Requests rejected because the admission queue was full.", value: float64(s.adm.rejected.Load())},
		{name: "lccs_admission_wait_timeouts_total", help: "Requests whose deadline expired while waiting for a slot.", value: float64(s.adm.timeouts.Load())},
		{name: "lccs_inserts_total", help: "Vectors inserted across all collections.", value: totInserts},
		{name: "lccs_deletes_total", help: "Vectors tombstoned across all collections.", value: totDeletes},
	}
	gauges := []gauge{
		{name: "lccs_inflight_requests", help: "Requests currently holding an admission slot.", value: float64(s.adm.inFlight())},
		{name: "lccs_admission_queue_depth", help: "Requests waiting for an admission slot.", value: float64(s.adm.queueDepth())},
		{name: "lccs_index_vectors", help: "Vectors searchable across all collections.", value: totVectors},
	}
	anyDeleter := false
	for _, f := range figs {
		if f.hasDeleter {
			anyDeleter = true
		}
	}
	if anyDeleter {
		gauges = append(gauges,
			gauge{name: "lccs_index_tombstones", help: "Deleted vectors awaiting compaction.", value: totTombstones})
	}
	// Per-collection series (same-family samples adjacent: writeProm
	// emits HELP/TYPE once per family).
	for _, f := range figs {
		counters = append(counters, gauge{name: "lccs_collection_inserts_total",
			help: "Vectors inserted, by collection.", value: f.inserts, labels: collLabel(f.name)})
	}
	for _, f := range figs {
		counters = append(counters, gauge{name: "lccs_collection_deletes_total",
			help: "Vectors tombstoned, by collection.", value: f.deletes, labels: collLabel(f.name)})
	}
	for _, f := range figs {
		counters = append(counters, gauge{name: "lccs_collection_quota_rejected_total",
			help: "Requests rejected by the per-collection concurrency share.", value: f.quotaRej, labels: collLabel(f.name)})
	}
	for _, f := range figs {
		gauges = append(gauges, gauge{name: "lccs_collection_vectors",
			help: "Vectors searchable, by collection.", value: float64(f.bs.Vectors), labels: collLabel(f.name)})
	}
	for _, f := range figs {
		gauges = append(gauges, gauge{name: "lccs_collection_tombstones",
			help: "Deleted vectors awaiting compaction, by collection.", value: float64(f.bs.Tombstones), labels: collLabel(f.name)})
	}
	for _, f := range figs {
		gauges = append(gauges, gauge{name: "lccs_collection_inflight",
			help: "Admitted in-flight requests, by collection.", value: f.occupancy, labels: collLabel(f.name)})
	}
	// Per-collection usage metering (cumulative resource accounting from
	// engine.Usage; same adjacency rule as above).
	type collUse struct {
		name string
		us   engine.UsageSnapshot
	}
	uses := make([]collUse, 0, len(colls))
	for _, c := range colls {
		uses = append(uses, collUse{c.name, c.usage.Snapshot()})
	}
	for _, u := range uses {
		counters = append(counters, gauge{name: "lccs_collection_searches_total",
			help: "Search requests served (backend or cache), by collection.", value: float64(u.us.Searches), labels: collLabel(u.name)})
	}
	for _, u := range uses {
		counters = append(counters, gauge{name: "lccs_collection_scan_bytes_total",
			help: "Vector bytes read by the distance kernels, by collection.", value: float64(u.us.BytesScanned), labels: collLabel(u.name)})
	}
	for _, u := range uses {
		counters = append(counters, gauge{name: "lccs_collection_cost_units_total",
			help: "Derived query cost units (comparisons + scan bytes / 4), by collection.", value: float64(u.us.CostUnits), labels: collLabel(u.name)})
	}
	for _, u := range uses {
		counters = append(counters, gauge{name: "lccs_collection_filter_rejected_total",
			help: "Candidates discarded by metadata predicates, by collection.", value: float64(u.us.FilterRejected), labels: collLabel(u.name)})
	}
	for _, u := range uses {
		counters = append(counters, gauge{name: "lccs_collection_cache_hits_total",
			help: "Result-cache hits, by collection.", value: float64(u.us.CacheHits), labels: collLabel(u.name)})
	}
	for _, u := range uses {
		counters = append(counters, gauge{name: "lccs_collection_cache_misses_total",
			help: "Result-cache misses, by collection.", value: float64(u.us.CacheMisses), labels: collLabel(u.name)})
	}
	for _, u := range uses {
		counters = append(counters, gauge{name: "lccs_collection_wal_appended_bytes_total",
			help: "Journal bytes appended by this collection's writes.", value: float64(u.us.WALBytes), labels: collLabel(u.name)})
	}
	for _, u := range uses {
		counters = append(counters, gauge{name: "lccs_collection_errors_total",
			help: "Failed requests, by collection.", value: float64(u.us.Errors), labels: collLabel(u.name)})
	}
	if s.cache != nil {
		hits, misses, evictions := s.cache.stats()
		counters = append(counters,
			gauge{name: "lccs_cache_hits_total", help: "Result cache hits.", value: float64(hits)},
			gauge{name: "lccs_cache_misses_total", help: "Result cache misses.", value: float64(misses)},
			gauge{name: "lccs_cache_evictions_total", help: "Result cache LRU evictions.", value: float64(evictions)},
		)
		gauges = append(gauges,
			gauge{name: "lccs_cache_entries", help: "Live result cache entries.", value: float64(s.cache.len())})
	}
	// WAL health, by collection (the legacy unlabeled series kept for
	// the default collection).
	for _, c := range colls {
		if c.walStats == nil {
			continue
		}
		ws := c.walStats.WALStats()
		if c.name == DefaultCollection {
			counters = append(counters,
				gauge{name: "lccs_wal_fsyncs_total", help: "Write-ahead log fsync calls.", value: float64(ws.Fsyncs)})
			gauges = append(gauges,
				gauge{name: "lccs_wal_depth_records", help: "Records held only by the write-ahead log (replayed on crash recovery).", value: float64(ws.Depth)},
				gauge{name: "lccs_wal_segments", help: "Live write-ahead log segment files.", value: float64(ws.Segments)},
				gauge{name: "lccs_wal_bytes", help: "Total size of live write-ahead log segments.", value: float64(ws.Bytes)},
				gauge{name: "lccs_wal_last_fsync_seconds", help: "Latency of the most recent WAL fsync.", value: ws.LastFsyncMicros / 1e6},
				gauge{name: "lccs_wal_synced_lsn", help: "Highest log sequence number known fsynced.", value: float64(ws.SyncedLSN)},
			)
		}
	}
	for _, c := range colls {
		if c.walStats == nil {
			continue
		}
		ws := c.walStats.WALStats()
		gauges = append(gauges, gauge{name: "lccs_collection_wal_depth_records",
			help: "WAL records a crash would replay, by collection.", value: float64(ws.Depth), labels: collLabel(c.name)})
	}
	gets, misses := obs.PoolStats()
	counters = append(counters,
		gauge{name: "lccs_trace_pool_gets_total", help: "Traces drawn from the span pool.", value: float64(gets)},
		gauge{name: "lccs_trace_pool_misses_total", help: "Trace pool gets that allocated a fresh trace.", value: float64(misses)},
	)
	hitRate := 0.0
	if gets > 0 {
		hitRate = float64(gets-misses) / float64(gets)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauges = append(gauges,
		gauge{name: "lccs_trace_pool_hit_rate", help: "Fraction of trace pool gets served without allocating.", value: hitRate},
		gauge{name: "lccs_goroutines", help: "Live goroutines.", value: float64(runtime.NumGoroutine())},
		gauge{name: "lccs_heap_alloc_bytes", help: "Bytes of allocated heap objects.", value: float64(ms.HeapAlloc)},
		gauge{name: "lccs_gc_runs_total", help: "Completed garbage-collection cycles.", value: float64(ms.NumGC)},
		gauge{name: "lccs_gc_pause_last_seconds", help: "Duration of the most recent GC stop-the-world pause.", value: float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9},
	)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.countRequest("", "metrics", http.StatusOK)
	s.met.writeProm(w, counters, gauges)
	obs.WriteStageMetrics(w)
	fmt.Fprintf(w, "# HELP lccs_build_info Build metadata; the value is always 1.\n")
	fmt.Fprintf(w, "# TYPE lccs_build_info gauge\n")
	fmt.Fprintf(w, "lccs_build_info{version=%q,go=%q} 1\n", s.version, runtime.Version())
}

// collLabel renders the collection label set of one series.
func collLabel(name string) string { return fmt.Sprintf("{collection=%q}", name) }

// ---- plumbing ----

// admit runs the admission controller for one request: first the
// collection's concurrency share, then the global semaphore. It answers
// 503 (with a load-derived Retry-After) on share exhaustion, queue
// overflow, or admission deadline, and reports whether the caller now
// holds a slot (to be returned via release).
func (s *Server) admit(w http.ResponseWriter, r *http.Request, endpoint string, c *coll) bool {
	if c != nil {
		if occ := c.occupancy.Add(1); s.collShare > 0 && occ > s.collShare {
			c.occupancy.Add(-1)
			c.quotaRejected.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			s.recordHealth(c, obs.HealthSample{Rejected: true})
			s.fail(w, c.name, endpoint, http.StatusServiceUnavailable,
				fmt.Errorf("collection %q is over its concurrency share (%d in flight)", c.name, s.collShare))
			return false
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	if err := s.adm.acquire(ctx); err != nil {
		if c != nil {
			c.occupancy.Add(-1)
		}
		s.recordHealth(c, obs.HealthSample{Rejected: true})
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		msg := err
		if errors.Is(err, context.DeadlineExceeded) {
			msg = fmt.Errorf("server: admission wait exceeded %v", s.timeout)
		}
		name := ""
		if c != nil {
			name = c.name
		}
		s.fail(w, name, endpoint, http.StatusServiceUnavailable, msg)
		return false
	}
	return true
}

// release returns the slot taken by a successful admit.
func (s *Server) release(c *coll) {
	s.adm.release()
	if c != nil {
		c.occupancy.Add(-1)
	}
}

// retryAfterSeconds estimates how long a shed client should back off:
// the time for the current queue to drain through the execution slots
// at the observed median latency. Before any latency has been observed
// the admission deadline stands in — a client retrying sooner would
// most likely queue up to that deadline again anyway.
func (s *Server) retryAfterSeconds() int {
	return retryAfterSeconds(s.adm.queueDepth(), s.adm.capacity(),
		s.met.latency.quantile(0.50), s.timeout.Seconds())
}

// retryAfterSeconds is the pure calculation behind the Retry-After
// header: (queued+1) requests draining through slots execution lanes at
// p50 seconds each, rounded up and clamped to [1s, 60s]. p50 ≤ 0 (no
// observations yet) falls back to the admission deadline.
func retryAfterSeconds(queued int64, slots int, p50, timeoutSec float64) int {
	if p50 <= 0 {
		p50 = timeoutSec
	}
	if slots < 1 {
		slots = 1
	}
	wait := float64(queued+1) * p50 / float64(slots)
	sec := int(math.Ceil(wait))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// requirePost enforces the method and caps the request body, so an
// oversized post fails during decoding instead of buffering unbounded
// data outside the admission controller's resource bounds.
func (s *Server) requirePost(w http.ResponseWriter, r *http.Request, endpoint string) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, "", endpoint, http.StatusMethodNotAllowed, errors.New("use POST"))
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	return true
}

// statusFor maps backend errors to HTTP statuses: the facade's typed
// validation errors are the client's fault (400), a stale cursor is
// 410 Gone (the token was valid once; the client restarts the scan),
// anything else is 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, lccs.ErrCursorStale):
		return http.StatusGone
	case errors.Is(err, lccs.ErrInvalidK),
		errors.Is(err, lccs.ErrInvalidBudget),
		errors.Is(err, lccs.ErrEmptyQuery),
		errors.Is(err, lccs.ErrDimensionMismatch),
		errors.Is(err, lccs.ErrInvalidFilter),
		errors.Is(err, lccs.ErrCursorInvalid):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (s *Server) respond(w http.ResponseWriter, collection, endpoint string, code int, body any) {
	s.met.countRequest(collection, endpoint, code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

func (s *Server) fail(w http.ResponseWriter, collection, endpoint string, code int, err error) {
	s.respond(w, collection, endpoint, code, errorResponse{Error: err.Error()})
	// Fold the failure into the health rings and the collection's error
	// counter. Dur < 0 counts the request without a latency observation,
	// so an error storm cannot drag the latency percentiles toward zero.
	var c *coll
	if collection != "" {
		s.cmu.RLock()
		c = s.colls[collection]
		s.cmu.RUnlock()
	}
	if c != nil {
		c.usage.AddError()
	}
	s.recordHealth(c, obs.HealthSample{Dur: -1, Err: true})
}

func toJSON(res []lccs.Neighbor) []neighborJSON {
	return toJSONInto(make([]neighborJSON, 0, len(res)), res)
}

// toJSONInto appends the wire form of res to dst; with pooled dst the
// conversion allocates nothing at steady state.
func toJSONInto(dst []neighborJSON, res []lccs.Neighbor) []neighborJSON {
	for _, nb := range res {
		dst = append(dst, neighborJSON{ID: nb.ID, Dist: nb.Dist})
	}
	return dst
}
