// Package server is the network query-serving layer over the lccs
// facades: an HTTP/JSON API around any lccs.Searcher with a
// semaphore-based admission controller (bounded concurrency, bounded
// queue, per-request deadlines), an LRU result cache invalidated by
// insert generation, and live counter/latency metrics in the Prometheus
// text format.
//
// Endpoints:
//
//	POST /v1/search        one query → top-k neighbors
//	POST /v1/search/batch  many queries → top-k each (one admission slot)
//	POST /v1/insert        append vectors (DynamicIndex-backed only)
//	POST /v1/delete        tombstone ids, single or batch (DynamicIndex-backed only)
//	GET  /v1/stats         JSON operational stats (p50/p99, cache, queue)
//	GET  /healthz          readiness (503 while draining)
//	GET  /metrics          Prometheus text exposition
//
// The package owns request admission and caching; process lifecycle
// (listening, signal handling, graceful drain, snapshotting) belongs to
// cmd/lccs-serve.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lccs"
	"lccs/internal/obs"
)

// Inserter is the optional write interface of a backend; DynamicIndex
// implements it. Backends that do not are served read-only and
// /v1/insert answers 501.
//
// Any error a custom Inserter returns is treated as a failed insert.
// The library's own DynamicIndex is special-cased: its Add is
// documented to deliver a *previous* background build's failure
// alongside a successful insert, so for that backend a non-validation
// error keeps the id and is surfaced to clients as a warning.
type Inserter interface {
	Add(v []float32) (int, error)
}

// BatchInserter is the optional bulk-write interface of a backend;
// DurableIndex implements it. When present, /v1/insert applies the
// whole request through one AddBatch call — on a write-ahead-logged
// backend that is one journal append and one group-committed fsync for
// the entire batch instead of one per vector.
type BatchInserter interface {
	AddBatch(vecs [][]float32) ([]int, error)
}

// Deleter is the optional delete interface of a backend; DynamicIndex
// implements it. Delete reports whether the id was live. Backends that
// do not implement it answer /v1/delete with 501.
type Deleter interface {
	Delete(id int) bool
}

// DurableDeleter is the error-aware delete interface of a durable
// backend (DurableIndex): the delete is acknowledged only once it is
// durable per the backend's sync policy, and a journal failure is
// reported instead of being swallowed. Preferred over Deleter when
// implemented.
type DurableDeleter interface {
	DeleteDurable(id int) (bool, error)
}

// BatchDeleter is the bulk counterpart of DurableDeleter; DurableIndex
// implements it. When present, /v1/delete applies the whole id batch
// through one DeleteBatch call — one journal append and one
// group-committed fsync instead of one per id. It reports how many ids
// were live and which were unknown or already deleted.
type BatchDeleter interface {
	DeleteBatch(ids []int) (deleted int, missing []int, err error)
}

// WALStatser exposes write-ahead-log health; DurableIndex implements
// it. When present, WAL depth and fsync latency appear in /v1/stats
// and /metrics.
type WALStatser interface {
	WALStats() lccs.WALStats
}

// Config configures a Server.
type Config struct {
	// Backend answers the queries. Required.
	Backend lccs.Searcher
	// MaxInFlight bounds concurrently executing searches. 0 selects
	// GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; beyond it
	// requests are rejected with 503. 0 selects 4×MaxInFlight; negative
	// disables waiting entirely (reject the moment all slots are busy).
	MaxQueue int
	// Timeout is the per-request admission deadline: a request that
	// cannot start executing within it is rejected with 503. 0 selects
	// 2 seconds.
	Timeout time.Duration
	// CacheSize is the result-cache capacity in entries; 0 disables
	// caching.
	CacheSize int
	// CacheQuantBits masks this many low mantissa bits off every query
	// coordinate in the cache key (see cacheKey). 0 caches on exact
	// float bit patterns.
	CacheQuantBits uint
	// MaxBodyBytes caps every request body; larger posts fail with 400.
	// Batch and insert bodies are additionally decoded only after
	// admission, so aggregate decode memory is bounded by
	// MaxInFlight × MaxBodyBytes. 0 selects 32 MiB.
	MaxBodyBytes int64
	// TraceSample is the fraction of searches traced without an explicit
	// request, in [0, 1]: 0.01 traces every 100th search (a deterministic
	// stride, not a coin flip, so the rate is exact and allocation-free).
	// 0 traces only requests that ask with "trace": true.
	TraceSample float64
	// SlowThreshold is the latency at or above which a finished search
	// enters the slow-query ring at /v1/debug/slow. 0 disables threshold
	// capture; traced requests are still reservoir-sampled.
	SlowThreshold time.Duration
	// SlowLogSize is the slow-query ring capacity (and the traced-request
	// reservoir capacity). 0 selects 64.
	SlowLogSize int
	// Version is reported by the lccs_build_info metric; empty selects
	// "dev".
	Version string
	// Logger receives the server's structured operational log (slow-query
	// warnings). Nil discards it.
	Logger *slog.Logger
}

// Server is the HTTP query-serving front end over one Searcher backend.
// Construct with New, mount Handler on an http.Server, and call
// SetDraining(true) before shutting that server down so load balancers
// see readiness drop first.
type Server struct {
	backend  lccs.Searcher
	inserter Inserter // nil when the backend is read-only
	// dynInserter marks the backend as the library's own DynamicIndex,
	// whose Add is documented to deliver deferred background-build
	// failures alongside a *successful* insert. Only then is a
	// non-validation Add error downgraded to a warning; a custom
	// Inserter's errors are always treated as failed inserts.
	dynInserter bool
	batch       BatchInserter       // nil when the backend has no bulk write path
	deleter     Deleter             // nil when the backend cannot delete
	durDeleter  DurableDeleter      // non-nil for durable backends; preferred
	batchDel    BatchDeleter        // nil when the backend has no bulk delete path
	walStats    WALStatser          // nil when the backend has no WAL
	traced      lccs.TracedSearcher // nil when the backend has no traced search path
	adm         *admission
	cache       *resultCache // nil when disabled
	quant       uint
	timeout     time.Duration
	maxBody     int64
	met         *metrics
	mux         *http.ServeMux
	slow        *obs.SlowLog
	logger      *slog.Logger
	version     string
	// sampleEvery traces every Nth search (0 = only explicit requests);
	// sampleSeq is the stride counter behind it.
	sampleEvery uint64
	sampleSeq   atomic.Uint64
	// reqID numbers every search for log/trace correlation.
	reqID atomic.Uint64
	// gen counts completed writes — inserts and deletes alike; it is
	// folded into every cache key, so one write invalidates all earlier
	// cached results at once.
	gen      atomic.Uint64
	inserts  atomic.Uint64
	deletes  atomic.Uint64
	draining atomic.Bool
}

// New validates cfg and builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("server: Config.Backend is required")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.MaxQueue == 0:
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	case cfg.MaxQueue < 0:
		cfg.MaxQueue = 0
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.TraceSample < 0 || cfg.TraceSample > 1 {
		return nil, errors.New("server: Config.TraceSample must be in [0, 1]")
	}
	if cfg.Version == "" {
		cfg.Version = "dev"
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	if cfg.SlowLogSize <= 0 {
		cfg.SlowLogSize = 64
	}
	s := &Server{
		backend: cfg.Backend,
		adm:     newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		quant:   cfg.CacheQuantBits,
		timeout: cfg.Timeout,
		maxBody: cfg.MaxBodyBytes,
		met:     newMetrics(),
		slow:    obs.NewSlowLog(cfg.SlowLogSize, cfg.SlowLogSize, cfg.SlowThreshold),
		logger:  cfg.Logger,
		version: cfg.Version,
	}
	if cfg.TraceSample > 0 {
		s.sampleEvery = uint64(math.Round(1 / cfg.TraceSample))
		if s.sampleEvery < 1 {
			s.sampleEvery = 1
		}
	}
	if t, ok := cfg.Backend.(lccs.TracedSearcher); ok {
		s.traced = t
	}
	if ins, ok := cfg.Backend.(Inserter); ok {
		s.inserter = ins
		// Both library-owned writable backends document Add's deferred
		// background-build failure semantics (see Inserter).
		switch cfg.Backend.(type) {
		case *lccs.DynamicIndex, *lccs.DurableIndex:
			s.dynInserter = true
		}
	}
	if b, ok := cfg.Backend.(BatchInserter); ok {
		s.batch = b
	}
	if del, ok := cfg.Backend.(Deleter); ok {
		s.deleter = del
	}
	if del, ok := cfg.Backend.(DurableDeleter); ok {
		s.durDeleter = del
	}
	if del, ok := cfg.Backend.(BatchDeleter); ok {
		s.batchDel = del
	}
	if ws, ok := cfg.Backend.(WALStatser); ok {
		s.walStats = ws
	}
	if cfg.CacheSize > 0 {
		s.cache = newResultCache(cfg.CacheSize)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/search", s.handleSearch)
	s.mux.HandleFunc("/v1/search/batch", s.handleSearchBatch)
	s.mux.HandleFunc("/v1/insert", s.handleInsert)
	s.mux.HandleFunc("/v1/delete", s.handleDelete)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/debug/slow", s.handleDebugSlow)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// SetDraining flips the readiness state: while draining, /healthz
// answers 503 so load balancers stop routing here, while in-flight and
// newly arriving requests still complete (http.Server.Shutdown handles
// connection-level draining).
func (s *Server) SetDraining(d bool) { s.draining.Store(d) }

// ---- request/response bodies ----

type searchRequest struct {
	Query []float32 `json:"query"`
	K     int       `json:"k"`
	// Budget is the optional candidate budget λ; 0 uses the backend's
	// default.
	Budget int `json:"budget,omitempty"`
	// Trace opts this request into span recording: the response carries
	// the per-stage span tree and an X-Request-Id header.
	Trace bool `json:"trace,omitempty"`
}

// searchScratch is the pooled per-request state of the single-search
// endpoint: the decoded request (whose query slice's backing array is
// reused by the JSON decoder), the backend result row, and the response
// payload. At steady state a search request allocates no per-request
// buffers in this package.
type searchScratch struct {
	req searchRequest
	res []lccs.Neighbor
	out []neighborJSON
}

// searchScratchPool serves every /v1/search request.
var searchScratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// getSearchScratch fetches pooled scratch with the request fields reset
// (the query buffer keeps its capacity for the decoder to reuse).
func getSearchScratch() *searchScratch {
	sc := searchScratchPool.Get().(*searchScratch)
	sc.req.Query = sc.req.Query[:0]
	sc.req.K = 0
	sc.req.Budget = 0
	sc.req.Trace = false
	if sc.out == nil {
		// Keep the response field non-nil so an empty result encodes as
		// [] rather than null.
		sc.out = []neighborJSON{}
	}
	return sc
}

type neighborJSON struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

type searchResponse struct {
	Neighbors  []neighborJSON `json:"neighbors"`
	Cached     bool           `json:"cached"`
	TookMicros int64          `json:"took_us"`
	// RequestID and Trace are present only on traced requests.
	RequestID uint64         `json:"request_id,omitempty"`
	Trace     []obs.SpanNode `json:"trace,omitempty"`
}

// slowLogResponse is the /v1/debug/slow payload: the slow-query ring
// newest-first plus the reservoir sample of traced requests that
// finished under the threshold.
type slowLogResponse struct {
	ThresholdUS float64         `json:"threshold_us"`
	Slow        []obs.SlowEntry `json:"slow"`
	Sample      []obs.SlowEntry `json:"sample"`
}

type batchRequest struct {
	Queries [][]float32 `json:"queries"`
	K       int         `json:"k"`
	Budget  int         `json:"budget,omitempty"`
}

type batchResponse struct {
	Results    [][]neighborJSON `json:"results"`
	TookMicros int64            `json:"took_us"`
}

type insertRequest struct {
	Vectors [][]float32 `json:"vectors"`
}

// deleteRequest accepts a single id, a batch, or both; {"id": 0} is
// distinguishable from an absent field through the pointer.
type deleteRequest struct {
	ID  *int  `json:"id,omitempty"`
	IDs []int `json:"ids,omitempty"`
}

type deleteResponse struct {
	// Deleted counts ids that were live and are now tombstoned.
	Deleted int `json:"deleted"`
	// Missing lists ids that were unknown or already deleted — the
	// request is idempotent, so these are reported, not failed.
	Missing []int `json:"missing,omitempty"`
}

type insertResponse struct {
	IDs []int `json:"ids"`
	// Warning carries a non-fatal backend condition (e.g. a previous
	// background delta build failed); the inserts themselves succeeded.
	Warning string `json:"warning,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- handlers ----

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !s.requirePost(w, r, "search") {
		return
	}
	// Decode into pooled scratch: the JSON decoder appends into the
	// previous request's query buffer instead of allocating a fresh
	// slice per request.
	sc := getSearchScratch()
	defer searchScratchPool.Put(sc)
	if err := json.NewDecoder(r.Body).Decode(&sc.req); err != nil {
		s.fail(w, "search", http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	req := &sc.req
	reqID := s.reqID.Add(1)
	// Tracing: explicit opt-in via "trace": true, or the configured
	// deterministic sampling stride. The untraced path never draws a
	// trace from the pool; every Trace method is nil-safe, so the span
	// calls below vanish into a pointer check.
	var tr *obs.Trace
	if req.Trace || (s.sampleEvery > 0 && s.sampleSeq.Add(1)%s.sampleEvery == 0) {
		tr = obs.GetTrace(reqID)
		defer obs.PutTrace(tr)
	}
	// The cache is probed before admission: a hit costs microseconds and
	// touches no backend, so it must not occupy an execution slot or be
	// shed under overload. Obviously invalid requests never touch the
	// cache, so 400s do not pollute miss statistics or key space.
	cacheable := s.cache != nil && req.K > 0 && len(req.Query) > 0 && req.Budget >= 0
	var key string
	if cacheable {
		cacheStart := time.Now()
		key = cacheKey(s.gen.Load(), req.K, req.Budget, req.Query, s.quant)
		res, ok := s.cache.get(key)
		cacheDur := time.Since(cacheStart)
		obs.ObserveDur(obs.StageCache, cacheDur)
		tr.AddSpan(obs.StageCache, -1, cacheStart, cacheDur)
		if ok {
			sc.out = toJSONInto(sc.out[:0], res)
			took := time.Since(start)
			s.met.latency.observe(took.Seconds())
			s.respondSearch(w, searchResponse{
				Neighbors:  sc.out,
				Cached:     true,
				TookMicros: took.Microseconds(),
			}, reqID, tr, req.Trace)
			s.recordSlow(reqID, "search", start, took, req.K, req.Budget, tr)
			return
		}
	}
	admStart := time.Now()
	if ok := s.admit(w, r, "search"); !ok {
		return
	}
	defer s.adm.release()
	admDur := time.Since(admStart)
	obs.ObserveDur(obs.StageAdmission, admDur)
	tr.AddSpan(obs.StageAdmission, -1, admStart, admDur)

	res, err := s.search(req.Query, req.K, req.Budget, sc.res, tr)
	if err != nil {
		s.fail(w, "search", statusFor(err), err)
		return
	}
	sc.res = res
	if cacheable {
		// The cache retains its entries past this request, so it gets
		// its own copy rather than the pooled row.
		s.cache.put(key, append([]lccs.Neighbor(nil), res...))
	}
	encStart := time.Now()
	sc.out = toJSONInto(sc.out[:0], res)
	encDur := time.Since(encStart)
	obs.ObserveDur(obs.StageEncode, encDur)
	tr.AddSpan(obs.StageEncode, -1, encStart, encDur)
	took := time.Since(start)
	s.met.latency.observe(took.Seconds())
	s.respondSearch(w, searchResponse{
		Neighbors:  sc.out,
		TookMicros: took.Microseconds(),
	}, reqID, tr, req.Trace)
	s.recordSlow(reqID, "search", start, took, req.K, req.Budget, tr)
}

// respondSearch sends a search response. Only an explicit "trace": true
// request gets the span tree inline (plus the request id and the
// X-Request-Id header); sampler-selected traces feed the histograms and
// the slow-log reservoir without inflating client responses.
func (s *Server) respondSearch(w http.ResponseWriter, resp searchResponse, reqID uint64, tr *obs.Trace, explicit bool) {
	if tr != nil && explicit {
		resp.RequestID = reqID
		resp.Trace = tr.Tree()
		w.Header().Set("X-Request-Id", strconv.FormatUint(reqID, 10))
	}
	s.respond(w, "search", http.StatusOK, resp)
}

// recordSlow offers a finished search to the slow-query log and warns
// through the structured logger when it crossed the threshold.
func (s *Server) recordSlow(reqID uint64, endpoint string, start time.Time, took time.Duration, k, budget int, tr *obs.Trace) {
	thr := s.slow.Threshold()
	slow := thr > 0 && took >= thr
	if tr == nil && !slow {
		return // nothing to capture: neither traced nor over threshold
	}
	// tr.Tree is passed as a thunk: the log materializes the span tree
	// only for entries it actually keeps, so a traced request that the
	// reservoir rejects costs no tree allocation. Tree is nil-safe, so
	// the method value works for untraced-but-slow requests too.
	s.slow.Record(obs.SlowEntry{
		RequestID: reqID,
		Endpoint:  endpoint,
		Time:      start,
		DurUS:     float64(took) / float64(time.Microsecond),
		K:         k,
		Budget:    budget,
		Traced:    tr != nil,
	}, tr.Tree)
	if slow {
		s.logger.Warn("slow query",
			"request_id", reqID, "endpoint", endpoint, "took", took,
			"k", k, "budget", budget, "traced", tr != nil)
	}
}

// search routes to the default-budget (budget == 0) or explicit-budget
// backend call, appending the result into the pooled dst row; a negative
// budget is the client's error, not a request for the default. A
// non-nil tr selects the backend's traced path when it has one (a
// non-positive budget selects the default budget there too).
func (s *Server) search(q []float32, k, budget int, dst []lccs.Neighbor, tr *obs.Trace) ([]lccs.Neighbor, error) {
	if budget < 0 {
		return dst, lccs.ErrInvalidBudget
	}
	if tr != nil && s.traced != nil {
		return s.traced.SearchBudgetIntoTraced(q, k, budget, dst, tr)
	}
	if budget > 0 {
		return s.backend.SearchBudgetInto(q, k, budget, dst)
	}
	return s.backend.SearchInto(q, k, dst)
}

func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !s.requirePost(w, r, "search_batch") {
		return
	}
	// A batch holds one admission slot from before its body is decoded:
	// batch bodies are the large ones, so decode memory must count
	// against the concurrency bound too. The backend's own batch engine
	// parallelizes across cores. The result cache is bypassed: batch
	// workloads are throughput-oriented and would churn the LRU.
	if ok := s.admit(w, r, "search_batch"); !ok {
		return
	}
	defer s.adm.release()
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, "search_batch", http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}

	var rows [][]lccs.Neighbor
	var err error
	switch {
	case req.Budget > 0:
		rows, err = s.backend.SearchBatchBudget(req.Queries, req.K, req.Budget)
	case req.Budget < 0:
		err = lccs.ErrInvalidBudget
	default:
		rows, err = s.backend.SearchBatch(req.Queries, req.K)
	}
	if err != nil {
		s.fail(w, "search_batch", statusFor(err), err)
		return
	}
	out := make([][]neighborJSON, len(rows))
	for i, row := range rows {
		out[i] = toJSON(row)
	}
	s.met.latency.observe(time.Since(start).Seconds())
	s.respond(w, "search_batch", http.StatusOK, batchResponse{
		Results:    out,
		TookMicros: time.Since(start).Microseconds(),
	})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r, "insert") {
		return
	}
	if s.inserter == nil {
		s.fail(w, "insert", http.StatusNotImplemented,
			errors.New("backend is read-only: inserts need a DynamicIndex (-dynamic)"))
		return
	}
	// Inserts go through admission too: the append itself is cheap, but
	// decoding a vector batch is not, and it must not bypass the
	// concurrency bound.
	if ok := s.admit(w, r, "insert"); !ok {
		return
	}
	defer s.adm.release()
	var req insertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, "insert", http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Vectors) == 0 {
		s.fail(w, "insert", http.StatusBadRequest, errors.New("no vectors in request"))
		return
	}
	// Validate the whole batch up front so rejections are atomic:
	// either every vector goes in or none does. The batch must be
	// internally consistent and, when the backend already knows its
	// dimensionality, match it.
	dim := 0
	if d, ok := s.backend.(interface{ Dim() int }); ok {
		dim = d.Dim()
	}
	for i, v := range req.Vectors {
		if len(v) == 0 {
			s.fail(w, "insert", http.StatusBadRequest,
				fmt.Errorf("vector %d: %w", i, lccs.ErrEmptyVector))
			return
		}
		if dim == 0 {
			dim = len(v)
		}
		if len(v) != dim {
			s.fail(w, "insert", http.StatusBadRequest,
				fmt.Errorf("vector %d: %w: has %d dimensions, want %d", i, lccs.ErrDimensionMismatch, len(v), dim))
			return
		}
	}
	ids, warning, failCode, failErr := s.applyInserts(req.Vectors)
	if failErr != nil {
		// Earlier vectors of the batch may already be in — bump the
		// generation so their results become visible, and return their
		// ids so the client can recover without duplicating them. (On a
		// durability failure the applied ids are in memory but possibly
		// not on disk; the 5xx tells the client not to trust them.)
		if len(ids) > 0 {
			s.gen.Add(1)
			s.inserts.Add(uint64(len(ids)))
		}
		s.met.countRequest("insert", failCode)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(failCode)
		_ = json.NewEncoder(w).Encode(struct {
			errorResponse
			IDs []int `json:"ids"`
		}{errorResponse{Error: failErr.Error()}, ids})
		return
	}
	s.gen.Add(1) // invalidate every cached result at once
	s.inserts.Add(uint64(len(ids)))
	s.respond(w, "insert", http.StatusOK, insertResponse{IDs: ids, Warning: warning})
}

// applyInserts pushes a pre-validated vector batch into the backend.
// On a durable backend (BatchInserter) the whole batch is one journal
// append — and, crucially, the call returns only once the batch is
// durable per the configured sync policy, so a 200 never acknowledges
// a write a crash could lose. A durability failure is a 503 (the write
// may be applied in memory but not on disk); a rejected vector is a
// 400. A deferred background-build failure is reported as a warning
// alongside success, matching DynamicIndex.Add's documented semantics.
func (s *Server) applyInserts(vectors [][]float32) (ids []int, warning string, failCode int, failErr error) {
	if s.batch != nil {
		ids, err := s.batch.AddBatch(vectors)
		switch {
		case err == nil:
			return ids, "", 0, nil
		case errors.Is(err, lccs.ErrNotDurable):
			return ids, "", http.StatusServiceUnavailable, err
		case isRejectedInsert(err):
			return ids, "", http.StatusBadRequest, err
		}
		return ids, err.Error(), 0, nil
	}
	ids = make([]int, 0, len(vectors))
	for i, v := range vectors {
		id, err := s.inserter.Add(v)
		switch {
		case err != nil && errors.Is(err, lccs.ErrNotDurable):
			return ids, "", http.StatusServiceUnavailable, fmt.Errorf("vector %d: %w", i, err)
		case err != nil && (!s.dynInserter || isRejectedInsert(err)):
			// Should be unreachable after pre-validation, but a custom
			// Inserter may reject for its own reasons.
			return ids, "", http.StatusBadRequest, fmt.Errorf("vector %d rejected: %w", i, err)
		case err != nil:
			// DynamicIndex.Add surfaces a *previous* background build
			// failure here while the insert itself succeeded — keep the
			// id and pass the condition on as a warning.
			warning = err.Error()
		}
		ids = append(ids, id)
	}
	return ids, warning, 0, nil
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r, "delete") {
		return
	}
	if s.deleter == nil {
		s.fail(w, "delete", http.StatusNotImplemented,
			errors.New("backend cannot delete: deletes need a DynamicIndex (-dynamic)"))
		return
	}
	// Deletes share the admission bound: each one takes the backend's
	// write lock, so a flood of them must not bypass the concurrency
	// controls that protect searches.
	if ok := s.admit(w, r, "delete"); !ok {
		return
	}
	defer s.adm.release()
	var req deleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, "delete", http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	ids := req.IDs
	if req.ID != nil {
		ids = append([]int{*req.ID}, ids...)
	}
	if len(ids) == 0 {
		s.fail(w, "delete", http.StatusBadRequest, errors.New("no ids in request"))
		return
	}
	// On a durable backend the error-aware paths are used: the delete
	// is acknowledged only after it is journaled per the sync policy —
	// the whole batch under a single group-committed wait when the
	// backend has a bulk path — and a journal failure turns into a 503
	// instead of a silently non-durable 200.
	var resp deleteResponse
	switch {
	case s.batchDel != nil:
		deleted, missing, err := s.batchDel.DeleteBatch(ids)
		resp.Deleted, resp.Missing = deleted, missing
		if err != nil {
			if deleted > 0 {
				s.gen.Add(1)
				s.deletes.Add(uint64(deleted))
			}
			s.fail(w, "delete", http.StatusServiceUnavailable, err)
			return
		}
	default:
		for _, id := range ids {
			var live bool
			var err error
			if s.durDeleter != nil {
				live, err = s.durDeleter.DeleteDurable(id)
			} else {
				live = s.deleter.Delete(id)
			}
			if live {
				resp.Deleted++
			} else {
				resp.Missing = append(resp.Missing, id)
			}
			if err != nil {
				if resp.Deleted > 0 {
					s.gen.Add(1)
					s.deletes.Add(uint64(resp.Deleted))
				}
				s.fail(w, "delete", http.StatusServiceUnavailable,
					fmt.Errorf("id %d: %w (deleted %d of %d before the failure)", id, err, resp.Deleted, len(ids)))
				return
			}
		}
	}
	if resp.Deleted > 0 {
		// A delete changes every query's answer set: bump the write
		// generation so stale cached results can never be served.
		s.gen.Add(1)
		s.deletes.Add(uint64(resp.Deleted))
	}
	s.respond(w, "delete", http.StatusOK, resp)
}

// isRejectedInsert reports whether an Inserter.Add error means the
// vector was rejected (DynamicIndex's validation errors), as opposed to
// a deferred background-build failure delivered alongside a successful
// insert.
func isRejectedInsert(err error) bool {
	return errors.Is(err, lccs.ErrEmptyVector) || errors.Is(err, lccs.ErrDimensionMismatch)
}

// Stats is the /v1/stats payload.
type Stats struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Requests      map[string]uint64 `json:"requests"` // "endpoint:code" → count
	InFlight      int               `json:"in_flight"`
	QueueDepth    int64             `json:"queue_depth"`
	Rejected      uint64            `json:"admission_rejected"`
	WaitTimeouts  uint64            `json:"admission_wait_timeouts"`
	Inserts       uint64            `json:"inserts"`
	Deletes       uint64            `json:"deletes"`
	Cache         CacheStats        `json:"cache"`
	Latency       LatencyStats      `json:"latency"`
	Backend       BackendStats      `json:"backend"`
	// WAL reports write-ahead-log health on durable backends: depth
	// (records a crash would replay), segment footprint, and fsync
	// latency. Absent otherwise.
	WAL *lccs.WALStats `json:"wal,omitempty"`
}

// CacheStats summarizes the result cache.
type CacheStats struct {
	Enabled   bool    `json:"enabled"`
	Entries   int     `json:"entries"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// LatencyStats summarizes the search latency histogram.
type LatencyStats struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// BackendStats describes the index behind the server.
type BackendStats struct {
	Kind     string `json:"kind"`
	Vectors  int    `json:"vectors"`
	Shards   int    `json:"shards,omitempty"`
	Buffered int    `json:"buffered,omitempty"`
	// Tombstones counts deleted vectors whose rows await compaction.
	Tombstones int  `json:"tombstones,omitempty"`
	Writable   bool `json:"writable"`
}

// StatsSnapshot assembles the current Stats (also used by /v1/stats).
func (s *Server) StatsSnapshot() Stats {
	keys, counts := s.met.requestsSnapshot()
	reqs := make(map[string]uint64, len(keys))
	for _, k := range keys {
		reqs[fmt.Sprintf("%s:%d", k.endpoint, k.code)] = counts[k]
	}
	st := Stats{
		UptimeSeconds: time.Since(s.met.start).Seconds(),
		Requests:      reqs,
		InFlight:      s.adm.inFlight(),
		QueueDepth:    s.adm.queueDepth(),
		Rejected:      s.adm.rejected.Load(),
		WaitTimeouts:  s.adm.timeouts.Load(),
		Inserts:       s.inserts.Load(),
		Deletes:       s.deletes.Load(),
		Backend:       s.backendStats(),
	}
	_, sum, total := s.met.latency.snapshot()
	st.Latency = LatencyStats{
		Count: total,
		P50Ms: s.met.latency.quantile(0.50) * 1000,
		P99Ms: s.met.latency.quantile(0.99) * 1000,
	}
	if total > 0 {
		st.Latency.MeanMs = sum / float64(total) * 1000
	}
	if s.cache != nil {
		hits, misses, evictions := s.cache.stats()
		st.Cache = CacheStats{Enabled: true, Entries: s.cache.len(), Hits: hits, Misses: misses, Evictions: evictions}
		if hits+misses > 0 {
			st.Cache.HitRate = float64(hits) / float64(hits+misses)
		}
	}
	if s.walStats != nil {
		ws := s.walStats.WALStats()
		st.WAL = &ws
	}
	return st
}

// backendStats inspects the concrete facade behind the Searcher.
func (s *Server) backendStats() BackendStats {
	b := BackendStats{Vectors: s.backend.Len(), Writable: s.inserter != nil}
	switch ix := s.backend.(type) {
	case *lccs.Index:
		b.Kind = "index"
	case *lccs.ShardedIndex:
		b.Kind = "sharded"
		b.Shards = ix.Shards()
	case *lccs.DynamicIndex:
		b.Kind = "dynamic"
		b.Shards = ix.Shards()
		b.Buffered = ix.Buffered()
		b.Tombstones = ix.Deleted()
	case *lccs.DurableIndex:
		b.Kind = "durable"
		b.Shards = ix.Shards()
		b.Buffered = ix.Buffered()
		b.Tombstones = ix.Deleted()
	default:
		b.Kind = "custom"
	}
	return b
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.respond(w, "stats", http.StatusOK, s.StatsSnapshot())
}

func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.fail(w, "debug_slow", http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	slow, sample := s.slow.Snapshot()
	if slow == nil {
		slow = []obs.SlowEntry{}
	}
	if sample == nil {
		sample = []obs.SlowEntry{}
	}
	s.respond(w, "debug_slow", http.StatusOK, slowLogResponse{
		ThresholdUS: float64(s.slow.Threshold()) / float64(time.Microsecond),
		Slow:        slow,
		Sample:      sample,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.respond(w, "healthz", http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.respond(w, "healthz", http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	counters := []gauge{
		{"lccs_admission_rejected_total", "Requests rejected because the admission queue was full.", float64(s.adm.rejected.Load())},
		{"lccs_admission_wait_timeouts_total", "Requests whose deadline expired while waiting for a slot.", float64(s.adm.timeouts.Load())},
		{"lccs_inserts_total", "Vectors inserted through /v1/insert.", float64(s.inserts.Load())},
		{"lccs_deletes_total", "Vectors tombstoned through /v1/delete.", float64(s.deletes.Load())},
	}
	bs := s.backendStats()
	gauges := []gauge{
		{"lccs_inflight_requests", "Requests currently holding an admission slot.", float64(s.adm.inFlight())},
		{"lccs_admission_queue_depth", "Requests waiting for an admission slot.", float64(s.adm.queueDepth())},
		{"lccs_index_vectors", "Vectors searchable in the backend index.", float64(bs.Vectors)},
	}
	if s.deleter != nil {
		gauges = append(gauges,
			gauge{"lccs_index_tombstones", "Deleted vectors awaiting compaction.", float64(bs.Tombstones)})
	}
	if s.cache != nil {
		hits, misses, evictions := s.cache.stats()
		counters = append(counters,
			gauge{"lccs_cache_hits_total", "Result cache hits.", float64(hits)},
			gauge{"lccs_cache_misses_total", "Result cache misses.", float64(misses)},
			gauge{"lccs_cache_evictions_total", "Result cache LRU evictions.", float64(evictions)},
		)
		gauges = append(gauges,
			gauge{"lccs_cache_entries", "Live result cache entries.", float64(s.cache.len())})
	}
	if s.walStats != nil {
		ws := s.walStats.WALStats()
		counters = append(counters,
			gauge{"lccs_wal_fsyncs_total", "Write-ahead log fsync calls.", float64(ws.Fsyncs)})
		gauges = append(gauges,
			gauge{"lccs_wal_depth_records", "Records held only by the write-ahead log (replayed on crash recovery).", float64(ws.Depth)},
			gauge{"lccs_wal_segments", "Live write-ahead log segment files.", float64(ws.Segments)},
			gauge{"lccs_wal_bytes", "Total size of live write-ahead log segments.", float64(ws.Bytes)},
			gauge{"lccs_wal_last_fsync_seconds", "Latency of the most recent WAL fsync.", ws.LastFsyncMicros / 1e6},
			gauge{"lccs_wal_synced_lsn", "Highest log sequence number known fsynced.", float64(ws.SyncedLSN)},
		)
	}
	gets, misses := obs.PoolStats()
	counters = append(counters,
		gauge{"lccs_trace_pool_gets_total", "Traces drawn from the span pool.", float64(gets)},
		gauge{"lccs_trace_pool_misses_total", "Trace pool gets that allocated a fresh trace.", float64(misses)},
	)
	hitRate := 0.0
	if gets > 0 {
		hitRate = float64(gets-misses) / float64(gets)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauges = append(gauges,
		gauge{"lccs_trace_pool_hit_rate", "Fraction of trace pool gets served without allocating.", hitRate},
		gauge{"lccs_goroutines", "Live goroutines.", float64(runtime.NumGoroutine())},
		gauge{"lccs_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc)},
		gauge{"lccs_gc_runs_total", "Completed garbage-collection cycles.", float64(ms.NumGC)},
		gauge{"lccs_gc_pause_last_seconds", "Duration of the most recent GC stop-the-world pause.", float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9},
	)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.countRequest("metrics", http.StatusOK)
	s.met.writeProm(w, counters, gauges)
	obs.WriteStageMetrics(w)
	fmt.Fprintf(w, "# HELP lccs_build_info Build metadata; the value is always 1.\n")
	fmt.Fprintf(w, "# TYPE lccs_build_info gauge\n")
	fmt.Fprintf(w, "lccs_build_info{version=%q,go=%q} 1\n", s.version, runtime.Version())
}

// ---- plumbing ----

// admit runs the admission controller for one request, answering 503
// (with a load-derived Retry-After) on queue overflow or admission
// deadline. It reports whether the caller now holds a slot.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, endpoint string) bool {
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	if err := s.adm.acquire(ctx); err != nil {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		msg := err
		if errors.Is(err, context.DeadlineExceeded) {
			msg = fmt.Errorf("server: admission wait exceeded %v", s.timeout)
		}
		s.fail(w, endpoint, http.StatusServiceUnavailable, msg)
		return false
	}
	return true
}

// retryAfterSeconds estimates how long a shed client should back off:
// the time for the current queue to drain through the execution slots
// at the observed median latency. Before any latency has been observed
// the admission deadline stands in — a client retrying sooner would
// most likely queue up to that deadline again anyway.
func (s *Server) retryAfterSeconds() int {
	return retryAfterSeconds(s.adm.queueDepth(), s.adm.capacity(),
		s.met.latency.quantile(0.50), s.timeout.Seconds())
}

// retryAfterSeconds is the pure calculation behind the Retry-After
// header: (queued+1) requests draining through slots execution lanes at
// p50 seconds each, rounded up and clamped to [1s, 60s]. p50 ≤ 0 (no
// observations yet) falls back to the admission deadline.
func retryAfterSeconds(queued int64, slots int, p50, timeoutSec float64) int {
	if p50 <= 0 {
		p50 = timeoutSec
	}
	if slots < 1 {
		slots = 1
	}
	wait := float64(queued+1) * p50 / float64(slots)
	sec := int(math.Ceil(wait))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// requirePost enforces the method and caps the request body, so an
// oversized post fails during decoding instead of buffering unbounded
// data outside the admission controller's resource bounds.
func (s *Server) requirePost(w http.ResponseWriter, r *http.Request, endpoint string) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, endpoint, http.StatusMethodNotAllowed, errors.New("use POST"))
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	return true
}

// statusFor maps backend errors to HTTP statuses: the facade's typed
// validation errors are the client's fault (400), anything else is 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, lccs.ErrInvalidK),
		errors.Is(err, lccs.ErrInvalidBudget),
		errors.Is(err, lccs.ErrEmptyQuery),
		errors.Is(err, lccs.ErrDimensionMismatch):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (s *Server) respond(w http.ResponseWriter, endpoint string, code int, body any) {
	s.met.countRequest(endpoint, code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

func (s *Server) fail(w http.ResponseWriter, endpoint string, code int, err error) {
	s.respond(w, endpoint, code, errorResponse{Error: err.Error()})
}

func toJSON(res []lccs.Neighbor) []neighborJSON {
	return toJSONInto(make([]neighborJSON, 0, len(res)), res)
}

// toJSONInto appends the wire form of res to dst; with pooled dst the
// conversion allocates nothing at steady state.
func toJSONInto(dst []neighborJSON, res []lccs.Neighbor) []neighborJSON {
	for _, nb := range res {
		dst = append(dst, neighborJSON{ID: nb.ID, Dist: nb.Dist})
	}
	return dst
}
