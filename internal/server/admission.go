package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded is returned by admission.acquire when the waiting queue
// is already at capacity; the HTTP layer maps it to 503.
var ErrOverloaded = errors.New("server: admission queue full")

// admission is a semaphore-based admission controller: at most inFlight
// requests hold a slot concurrently, at most maxQueue more wait for one,
// and everything beyond that is rejected immediately so overload sheds
// load instead of growing latency without bound. Waiters respect their
// request context, so a per-request deadline bounds time-in-queue.
type admission struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64
	rejected atomic.Uint64
	timeouts atomic.Uint64
}

// newAdmission returns a controller admitting inFlight concurrent
// requests with a waiting queue of maxQueue. Non-positive inFlight
// selects 1; negative maxQueue selects 0 (no waiting, immediate 503
// when saturated).
func newAdmission(inFlight, maxQueue int) *admission {
	if inFlight <= 0 {
		inFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots:    make(chan struct{}, inFlight),
		maxQueue: int64(maxQueue),
	}
}

// acquire takes a slot, waiting while the queue has room. It returns
// ErrOverloaded when the queue is full and the context's error when the
// deadline expires first. A nil return must be paired with release.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.rejected.Add(1)
		return ErrOverloaded
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		// Only a true deadline expiry counts as a wait timeout; a
		// client dropping its connection while queued is not one.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			a.timeouts.Add(1)
		}
		return ctx.Err()
	}
}

// release returns a slot taken by a successful acquire.
func (a *admission) release() { <-a.slots }

// capacity returns the number of concurrent execution slots.
func (a *admission) capacity() int { return cap(a.slots) }

// inFlight returns the number of requests currently holding a slot.
func (a *admission) inFlight() int { return len(a.slots) }

// queueDepth returns the number of requests waiting for a slot.
func (a *admission) queueDepth() int64 { return a.queued.Load() }
