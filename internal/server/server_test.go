package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lccs"
	"lccs/internal/rng"
)

// testWorkload builds a small clustered dataset plus queries.
func testWorkload(seed uint64, n, d int) (data, queries [][]float32) {
	g := rng.New(seed)
	centers := make([][]float32, 8)
	for i := range centers {
		centers[i] = g.UniformVector(d, -10, 10)
	}
	data = make([][]float32, n)
	for i := range data {
		c := centers[i%len(centers)]
		v := make([]float32, d)
		for j := range v {
			v[j] = c[j] + float32(g.NormFloat64()*0.5)
		}
		data[i] = v
	}
	queries = make([][]float32, 10)
	for i := range queries {
		queries[i] = g.GaussianVector(d)
	}
	return data, queries
}

// newTestServer stands up an httptest server (no real port) over the
// given backend.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postJSON posts body to path and decodes the response into out
// (skipped when out is nil), returning the status code.
func postJSON(t *testing.T, ts *httptest.Server, path string, body, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decoding response: %v", path, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

func TestServeSearchMatchesDirect(t *testing.T) {
	data, queries := testWorkload(1, 500, 8)
	sx, err := lccs.NewShardedIndex(data, lccs.Config{Metric: lccs.Euclidean, M: 16, Seed: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Backend: sx, CacheSize: 64})

	for qi, q := range queries {
		for _, budget := range []int{0, 200} {
			var got searchResponse
			code := postJSON(t, ts, "/v1/search", searchRequest{Query: q, K: 5, Budget: budget}, &got)
			if code != http.StatusOK {
				t.Fatalf("query %d budget %d: HTTP %d", qi, budget, code)
			}
			var want []lccs.Neighbor
			if budget > 0 {
				want, err = sx.SearchBudget(q, 5, budget)
			} else {
				want, err = sx.Search(q, 5)
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Neighbors) != len(want) {
				t.Fatalf("query %d: %d neighbors, want %d", qi, len(got.Neighbors), len(want))
			}
			for i, nb := range want {
				if got.Neighbors[i].ID != nb.ID || got.Neighbors[i].Dist != nb.Dist {
					t.Fatalf("query %d pos %d: %+v, want %+v", qi, i, got.Neighbors[i], nb)
				}
			}
		}
	}
}

func TestServeBatchMatchesDirect(t *testing.T) {
	data, queries := testWorkload(2, 400, 8)
	sx, err := lccs.NewShardedIndex(data, lccs.Config{Metric: lccs.Euclidean, M: 16, Seed: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Backend: sx})

	var got batchResponse
	code := postJSON(t, ts, "/v1/search/batch", batchRequest{Queries: queries, K: 4, Budget: 80}, &got)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	want, err := sx.SearchBatchBudget(queries, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want) {
		t.Fatalf("%d rows, want %d", len(got.Results), len(want))
	}
	for i, row := range want {
		for j, nb := range row {
			if got.Results[i][j].ID != nb.ID || got.Results[i][j].Dist != nb.Dist {
				t.Fatalf("row %d pos %d: %+v, want %+v", i, j, got.Results[i][j], nb)
			}
		}
	}
}

func TestServeValidationAndMethodErrors(t *testing.T) {
	data, _ := testWorkload(3, 100, 8)
	sx, err := lccs.NewShardedIndex(data, lccs.Config{Metric: lccs.Euclidean, M: 8, Seed: 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Backend: sx})

	cases := []struct {
		name string
		req  searchRequest
	}{
		{"k=0", searchRequest{Query: data[0], K: 0}},
		{"nil query", searchRequest{K: 5}},
		{"dim mismatch", searchRequest{Query: []float32{1, 2}, K: 5}},
		{"bad budget", searchRequest{Query: data[0], K: 5, Budget: -2}},
	}
	for _, c := range cases {
		var er errorResponse
		if code := postJSON(t, ts, "/v1/search", c.req, &er); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", c.name, code)
		}
		if er.Error == "" {
			t.Errorf("%s: empty error body", c.name)
		}
	}

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/search", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: HTTP %d, want 400", resp.StatusCode)
	}

	// Wrong method.
	resp, err = http.Get(ts.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/search: HTTP %d, want 405", resp.StatusCode)
	}

	// Insert on a read-only backend.
	var er errorResponse
	if code := postJSON(t, ts, "/v1/insert", insertRequest{Vectors: data[:1]}, &er); code != http.StatusNotImplemented {
		t.Errorf("insert on sharded backend: HTTP %d, want 501", code)
	}
}

func TestServeInsertAndCacheInvalidation(t *testing.T) {
	data, _ := testWorkload(4, 300, 8)
	dyn, err := lccs.NewDynamicIndex(data, lccs.Config{Metric: lccs.Euclidean, M: 16, Seed: 6}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Backend: dyn, CacheSize: 128})

	g := rng.New(99)
	novel := g.UniformVector(8, -30, 30) // far from every cluster

	// Prime the cache with the exact query we are about to insert.
	var first searchResponse
	if code := postJSON(t, ts, "/v1/search", searchRequest{Query: novel, K: 1}, &first); code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if first.Cached {
		t.Fatal("first query cannot be cached")
	}

	// The identical query now hits the cache.
	var second searchResponse
	postJSON(t, ts, "/v1/search", searchRequest{Query: novel, K: 1}, &second)
	if !second.Cached {
		t.Fatal("identical repeat query should hit the cache")
	}
	if len(second.Neighbors) != len(first.Neighbors) || second.Neighbors[0] != first.Neighbors[0] {
		t.Fatalf("cache returned different results: %+v vs %+v", second.Neighbors, first.Neighbors)
	}

	// Insert the query vector itself: the write bumps the generation, so
	// the stale cached answer must not be served.
	var ins insertResponse
	if code := postJSON(t, ts, "/v1/insert", insertRequest{Vectors: [][]float32{novel}}, &ins); code != http.StatusOK {
		t.Fatalf("insert: HTTP %d", code)
	}
	if len(ins.IDs) != 1 || ins.IDs[0] != 300 {
		t.Fatalf("insert ids: %+v", ins.IDs)
	}

	var third searchResponse
	postJSON(t, ts, "/v1/search", searchRequest{Query: novel, K: 1}, &third)
	if third.Cached {
		t.Fatal("post-insert query served a stale cache entry")
	}
	if len(third.Neighbors) != 1 || third.Neighbors[0].ID != 300 || third.Neighbors[0].Dist != 0 {
		t.Fatalf("inserted vector not found: %+v", third.Neighbors)
	}

	// Dimension-mismatched insert fails with 400.
	var er errorResponse
	if code := postJSON(t, ts, "/v1/insert", insertRequest{Vectors: [][]float32{{1}}}, &er); code != http.StatusBadRequest {
		t.Errorf("bad insert: HTTP %d, want 400", code)
	}

	// Insert batches are atomic: a bad vector anywhere in the batch
	// rejects the whole request, so retries cannot duplicate a prefix.
	before := dyn.Len()
	bad := insertRequest{Vectors: [][]float32{novel, {1, 2}, nil}}
	if code := postJSON(t, ts, "/v1/insert", bad, &er); code != http.StatusBadRequest {
		t.Fatalf("mixed batch: HTTP %d, want 400", code)
	}
	if dyn.Len() != before {
		t.Fatalf("mixed batch inserted a prefix: Len %d → %d", before, dyn.Len())
	}
	if code := postJSON(t, ts, "/v1/insert", insertRequest{Vectors: [][]float32{{}}}, &er); code != http.StatusBadRequest || !strings.Contains(er.Error, "empty vector") {
		t.Fatalf("empty vector insert: HTTP %d err=%q", code, er.Error)
	}
}

// TestServeDeleteAndCacheInvalidation pins the delete lifecycle at the
// HTTP layer: single and batch deletes tombstone ids, bump the write
// generation (the stale-cache-hit regression), surface in stats and
// metrics, and are idempotent.
func TestServeDeleteAndCacheInvalidation(t *testing.T) {
	data, _ := testWorkload(8, 300, 8)
	dyn, err := lccs.NewDynamicIndex(data, lccs.Config{Metric: lccs.Euclidean, M: 16, Seed: 10}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Backend: dyn, CacheSize: 128})

	// Prime the cache with a query whose nearest neighbor we are about
	// to delete.
	q := data[42]
	var first searchResponse
	if code := postJSON(t, ts, "/v1/search", searchRequest{Query: q, K: 1}, &first); code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if first.Cached || first.Neighbors[0].ID != 42 {
		t.Fatalf("priming response: %+v", first)
	}
	var second searchResponse
	postJSON(t, ts, "/v1/search", searchRequest{Query: q, K: 1}, &second)
	if !second.Cached {
		t.Fatal("repeat query should hit the cache")
	}

	// Single delete via {"id": ...}.
	var del deleteResponse
	if code := postJSON(t, ts, "/v1/delete", map[string]any{"id": 42}, &del); code != http.StatusOK {
		t.Fatalf("delete: HTTP %d", code)
	}
	if del.Deleted != 1 || len(del.Missing) != 0 {
		t.Fatalf("delete response: %+v", del)
	}

	// The stale cached answer (still naming id 42) must not be served.
	var third searchResponse
	postJSON(t, ts, "/v1/search", searchRequest{Query: q, K: 1}, &third)
	if third.Cached {
		t.Fatal("post-delete query served a stale cache entry")
	}
	if len(third.Neighbors) != 1 || third.Neighbors[0].ID == 42 {
		t.Fatalf("deleted id still served: %+v", third.Neighbors)
	}

	// Batch delete mixes live and unknown ids; idempotent re-delete.
	if code := postJSON(t, ts, "/v1/delete", deleteRequest{IDs: []int{1, 2, 42, 9999}}, &del); code != http.StatusOK {
		t.Fatalf("batch delete: HTTP %d", code)
	}
	if del.Deleted != 2 || len(del.Missing) != 2 {
		t.Fatalf("batch delete response: %+v", del)
	}
	if dyn.Len() != 297 || dyn.Deleted() != 3 {
		t.Fatalf("backend: Len=%d Deleted=%d", dyn.Len(), dyn.Deleted())
	}

	// An empty request is the client's error.
	var er errorResponse
	if code := postJSON(t, ts, "/v1/delete", deleteRequest{}, &er); code != http.StatusBadRequest {
		t.Fatalf("empty delete: HTTP %d, want 400", code)
	}

	// Stats and metrics reflect the deletes.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Deletes != 3 || st.Backend.Tombstones != 3 {
		t.Fatalf("stats: deletes=%d tombstones=%d, want 3/3", st.Deletes, st.Backend.Tombstones)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"lccs_deletes_total 3",
		"lccs_index_tombstones 3",
		"lccs_index_vectors 297",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestServeDeleteReadOnlyBackend: facades without a Delete method serve
// /v1/delete as 501, mirroring /v1/insert.
func TestServeDeleteReadOnlyBackend(t *testing.T) {
	data, _ := testWorkload(9, 80, 8)
	sx, err := lccs.NewShardedIndex(data, lccs.Config{Metric: lccs.Euclidean, M: 8, Seed: 11}, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Backend: sx})
	var er errorResponse
	if code := postJSON(t, ts, "/v1/delete", deleteRequest{IDs: []int{1}}, &er); code != http.StatusNotImplemented {
		t.Fatalf("delete on sharded backend: HTTP %d, want 501", code)
	}
}

// TestRetryAfterSeconds pins the load-derived Retry-After calculation:
// it scales with queue depth, drains across slots, falls back to the
// admission deadline before any latency is observed, and clamps to
// [1, 60].
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		queued     int64
		slots      int
		p50, tmout float64
		want       int
	}{
		{0, 1, 0.5, 2, 1},    // (0+1)*0.5 → ceil 1
		{3, 1, 0.5, 2, 2},    // 4*0.5 = 2
		{3, 4, 0.5, 2, 1},    // spread across 4 slots
		{9, 2, 1.0, 2, 5},    // 10*1/2 = 5
		{0, 1, 0, 3, 3},      // no observations → deadline
		{500, 1, 1.0, 2, 60}, // clamped high
		{0, 0, 0.001, 2, 1},  // degenerate slots → clamped low
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.queued, c.slots, c.p50, c.tmout); got != c.want {
			t.Errorf("retryAfterSeconds(%d, %d, %v, %v) = %d, want %d",
				c.queued, c.slots, c.p50, c.tmout, got, c.want)
		}
	}
}

func TestServeBodySizeLimit(t *testing.T) {
	data, _ := testWorkload(7, 50, 8)
	sx, err := lccs.NewShardedIndex(data, lccs.Config{Metric: lccs.Euclidean, M: 8, Seed: 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Backend: sx, MaxBodyBytes: 256})

	small := searchRequest{Query: data[0], K: 3}
	if code := postJSON(t, ts, "/v1/search", small, nil); code != http.StatusOK {
		t.Fatalf("small body: HTTP %d", code)
	}
	big := batchRequest{Queries: data[:40], K: 3} // well over 256 bytes of JSON
	var er errorResponse
	if code := postJSON(t, ts, "/v1/search/batch", big, &er); code != http.StatusBadRequest {
		t.Fatalf("oversized body: HTTP %d, want 400", code)
	}
	if !strings.Contains(er.Error, "too large") {
		t.Errorf("oversized body error: %q", er.Error)
	}
}

// blockingBackend is a stub Searcher whose searches block on a gate, so
// admission behavior is deterministic under test.
type blockingBackend struct {
	started chan struct{}
	gate    chan struct{}
}

func (b *blockingBackend) Search(q []float32, k int) ([]lccs.Neighbor, error) {
	b.started <- struct{}{}
	<-b.gate
	return []lccs.Neighbor{{ID: 0, Dist: 0}}, nil
}
func (b *blockingBackend) SearchBudget(q []float32, k, lambda int) ([]lccs.Neighbor, error) {
	return b.Search(q, k)
}

func (b *blockingBackend) SearchInto(q []float32, k int, dst []lccs.Neighbor) ([]lccs.Neighbor, error) {
	res, err := b.Search(q, k)
	return append(dst[:0], res...), err
}

func (b *blockingBackend) SearchBudgetInto(q []float32, k, lambda int, dst []lccs.Neighbor) ([]lccs.Neighbor, error) {
	return b.SearchInto(q, k, dst)
}
func (b *blockingBackend) SearchBatch(qs [][]float32, k int) ([][]lccs.Neighbor, error) {
	return [][]lccs.Neighbor{}, nil
}
func (b *blockingBackend) SearchBatchBudget(qs [][]float32, k, lambda int) ([][]lccs.Neighbor, error) {
	return [][]lccs.Neighbor{}, nil
}
func (b *blockingBackend) Len() int                        { return 1 }
func (b *blockingBackend) Distance(a, c []float32) float64 { return 0 }

func TestServeAdmissionOverflowReturns503(t *testing.T) {
	backend := &blockingBackend{started: make(chan struct{}, 8), gate: make(chan struct{})}
	srv, ts := newTestServer(t, Config{
		Backend:     backend,
		MaxInFlight: 1,
		MaxQueue:    1,
		Timeout:     10 * time.Second,
	})

	req := searchRequest{Query: []float32{1}, K: 1}
	codes := make(chan int, 2)
	var wg sync.WaitGroup
	post := func() {
		defer wg.Done()
		codes <- postJSON(t, ts, "/v1/search", req, nil)
	}

	// First request occupies the single execution slot.
	wg.Add(1)
	go post()
	<-backend.started

	// Second request fills the queue (poll the live gauge to know it is
	// actually waiting, not merely scheduled).
	wg.Add(1)
	go post()
	deadline := time.Now().Add(5 * time.Second)
	for srv.adm.queueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Third request overflows: immediate 503 with Retry-After.
	raw, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow request: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	// Release the gate: both admitted requests complete successfully.
	close(backend.gate)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Errorf("admitted request: HTTP %d, want 200", code)
		}
	}
	if got := srv.StatsSnapshot().Rejected; got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
}

// TestServeCacheHitBypassesAdmission: a cached answer costs no backend
// work, so it is served even when every execution slot is taken and the
// queue is full.
func TestServeCacheHitBypassesAdmission(t *testing.T) {
	backend := &blockingBackend{started: make(chan struct{}, 8), gate: make(chan struct{}, 8)}
	_, ts := newTestServer(t, Config{
		Backend:     backend,
		MaxInFlight: 1,
		MaxQueue:    -1, // no waiting: anything uncached 503s when busy
		Timeout:     10 * time.Second,
		CacheSize:   16,
	})
	cachedQ := searchRequest{Query: []float32{1, 2}, K: 1}
	otherQ := searchRequest{Query: []float32{9, 9}, K: 1}

	// Populate the cache: let the first request through the gate.
	backend.gate <- struct{}{}
	if code := postJSON(t, ts, "/v1/search", cachedQ, nil); code != http.StatusOK {
		t.Fatalf("priming request: HTTP %d", code)
	}
	<-backend.started // drain the priming request's start signal

	// Saturate the single slot with an uncached query.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, ts, "/v1/search", otherQ, nil)
	}()
	<-backend.started

	// Uncached load is shed, the cached answer is not.
	if code := postJSON(t, ts, "/v1/search", searchRequest{Query: []float32{3, 4}, K: 1}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("uncached under overload: HTTP %d, want 503", code)
	}
	var res searchResponse
	if code := postJSON(t, ts, "/v1/search", cachedQ, &res); code != http.StatusOK || !res.Cached {
		t.Fatalf("cached under overload: HTTP %d cached=%v, want 200/true", code, res.Cached)
	}
	backend.gate <- struct{}{}
	wg.Wait()
}

func TestServeAdmissionDeadlineReturns503(t *testing.T) {
	backend := &blockingBackend{started: make(chan struct{}, 8), gate: make(chan struct{})}
	srv, ts := newTestServer(t, Config{
		Backend:     backend,
		MaxInFlight: 1,
		MaxQueue:    4,
		Timeout:     30 * time.Millisecond,
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, ts, "/v1/search", searchRequest{Query: []float32{1}, K: 1}, nil)
	}()
	<-backend.started

	// This one queues and must give up when the admission deadline hits.
	code := postJSON(t, ts, "/v1/search", searchRequest{Query: []float32{1}, K: 1}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("deadline request: HTTP %d, want 503", code)
	}
	if got := srv.StatsSnapshot().WaitTimeouts; got != 1 {
		t.Errorf("wait timeouts = %d, want 1", got)
	}
	close(backend.gate)
	wg.Wait()
}

func TestServeHealthzDrainAndStats(t *testing.T) {
	data, _ := testWorkload(5, 120, 8)
	dyn, err := lccs.NewDynamicIndex(data, lccs.Config{Metric: lccs.Euclidean, M: 8, Seed: 7}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{Backend: dyn, CacheSize: 16})

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	srv.SetDraining(true)
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining healthz: %d %q", code, body)
	}
	srv.SetDraining(false)

	// Generate some traffic, then check the stats payload.
	postJSON(t, ts, "/v1/search", searchRequest{Query: data[0], K: 3}, nil)
	postJSON(t, ts, "/v1/search", searchRequest{Query: data[0], K: 3}, nil)

	code, body := get("/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: HTTP %d", code)
	}
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if st.Requests["search:200"] != 2 {
		t.Errorf("search:200 = %d, want 2", st.Requests["search:200"])
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Backend.Kind != "dynamic" || !st.Backend.Writable || st.Backend.Vectors != 120 {
		t.Errorf("backend stats: %+v", st.Backend)
	}
	if st.Latency.Count != 2 || st.Latency.P99Ms <= 0 {
		t.Errorf("latency stats: %+v", st.Latency)
	}
}

func TestServeMetricsExposition(t *testing.T) {
	data, _ := testWorkload(6, 100, 8)
	sx, err := lccs.NewShardedIndex(data, lccs.Config{Metric: lccs.Euclidean, M: 8, Seed: 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Backend: sx, CacheSize: 16})

	postJSON(t, ts, "/v1/search", searchRequest{Query: data[0], K: 3}, nil)
	postJSON(t, ts, "/v1/search", searchRequest{Query: data[0], K: 0}, nil) // a 400

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`lccs_requests_total{collection="default",endpoint="search",code="200"} 1`,
		`lccs_requests_total{collection="default",endpoint="search",code="400"} 1`,
		"lccs_request_seconds_count 1",
		"lccs_admission_rejected_total 0",
		"lccs_index_vectors 100",
		"lccs_cache_misses_total 1",
		"# TYPE lccs_requests_total counter",
		"# TYPE lccs_inflight_requests gauge",
		"# TYPE lccs_request_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
