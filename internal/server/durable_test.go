package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"lccs"
)

// openDurableBackend stands up a DurableIndex over a test temp dir.
func openDurableBackend(t *testing.T, dir string) *lccs.DurableIndex {
	t.Helper()
	di, err := lccs.OpenDurable(dir, lccs.DurableConfig{
		Config:       lccs.Config{Metric: lccs.Euclidean, M: 8, Seed: 1, BucketWidth: 4},
		SegmentBytes: 4096,
		RebuildAt:    64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { di.Close() })
	return di
}

// TestDurableBackendEndToEnd drives the full HTTP surface over a
// durable backend: batch insert through AddBatch (one journal wait),
// durable delete, WAL health in /v1/stats and /metrics, and recovery
// after an in-process crash (the index is abandoned, a second one is
// opened over the same dir).
func TestDurableBackendEndToEnd(t *testing.T) {
	dir := t.TempDir()
	data, queries := testWorkload(91, 200, 8)
	di := openDurableBackend(t, dir)
	_, ts := newTestServer(t, Config{Backend: di})

	var ins insertResponse
	if code := postJSON(t, ts, "/v1/insert", insertRequest{Vectors: data}, &ins); code != http.StatusOK {
		t.Fatalf("insert: HTTP %d", code)
	}
	if len(ins.IDs) != len(data) || ins.IDs[0] != 0 {
		t.Fatalf("insert ids: %d starting at %d", len(ins.IDs), ins.IDs[0])
	}
	var del deleteResponse
	if code := postJSON(t, ts, "/v1/delete", map[string]any{"ids": []int{3, 9999}}, &del); code != http.StatusOK {
		t.Fatalf("delete: HTTP %d", code)
	}
	if del.Deleted != 1 || len(del.Missing) != 1 {
		t.Fatalf("delete response %+v", del)
	}

	// Stats must expose the durable backend kind and WAL health.
	var st Stats
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Backend.Kind != "durable" || !st.Backend.Writable {
		t.Fatalf("backend stats %+v", st.Backend)
	}
	if st.WAL == nil {
		t.Fatal("stats missing wal section on a durable backend")
	}
	if st.WAL.Depth != uint64(len(data))+1 {
		t.Fatalf("wal depth %d, want %d", st.WAL.Depth, len(data)+1)
	}
	if st.WAL.Policy != "always" || st.WAL.Fsyncs == 0 {
		t.Fatalf("wal stats %+v", st.WAL)
	}

	// Metrics must carry the WAL gauges.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{"lccs_wal_depth_records", "lccs_wal_fsyncs_total", "lccs_wal_segments", "lccs_wal_bytes"} {
		if !strings.Contains(string(blob), metric) {
			t.Errorf("metrics missing %s", metric)
		}
	}

	// Crash: abandon the backend (no checkpoint, no close), reopen the
	// directory, and serve the recovered index — every acknowledged
	// write must be there.
	di.WaitRebuild()
	di2 := openDurableBackend(t, dir)
	if di2.Len() != len(data)-1 {
		t.Fatalf("recovered %d live vectors, want %d", di2.Len(), len(data)-1)
	}
	_, ts2 := newTestServer(t, Config{Backend: di2})
	var res searchResponse
	if code := postJSON(t, ts2, "/v1/search", searchRequest{Query: queries[0], K: 5, Budget: 1 << 20}, &res); code != http.StatusOK {
		t.Fatalf("search after recovery: HTTP %d", code)
	}
	if len(res.Neighbors) != 5 {
		t.Fatalf("search after recovery returned %d neighbors", len(res.Neighbors))
	}
	for _, nb := range res.Neighbors {
		if nb.ID == 3 {
			t.Fatal("deleted id 3 resurrected after crash recovery")
		}
	}
}

// TestDurableInsertNotAckedAfterClose pins the lost-ack fix: once the
// WAL cannot accept writes, /v1/insert and /v1/delete answer 5xx, never
// a 200 the crash could betray.
func TestDurableInsertNotAckedAfterClose(t *testing.T) {
	dir := t.TempDir()
	data, _ := testWorkload(92, 10, 8)
	di := openDurableBackend(t, dir)
	_, ts := newTestServer(t, Config{Backend: di})
	if code := postJSON(t, ts, "/v1/insert", insertRequest{Vectors: data[:5]}, nil); code != http.StatusOK {
		t.Fatalf("insert: HTTP %d", code)
	}
	// Break the log the way an exhausted disk would: close it.
	if err := di.Close(); err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, ts, "/v1/insert", insertRequest{Vectors: data[5:]}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("insert on broken WAL: HTTP %d, want 503", code)
	}
	if code := postJSON(t, ts, "/v1/delete", map[string]any{"id": 0}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("delete on broken WAL: HTTP %d, want 503", code)
	}
}
