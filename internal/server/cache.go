package server

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"

	"lccs"
)

// resultCache is a fixed-capacity LRU over search results. Entries are
// keyed by cacheKey, which folds in the backend's insert generation, so
// a write automatically orphans every earlier entry (stale keys age out
// through normal LRU eviction — they can never be looked up again).
type resultCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List               // front = most recently used
	byKey     map[string]*list.Element // value: *cacheEntry
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	res []lccs.Neighbor
	// next is the continuation token of a cached cursor page; "" for
	// one-shot results and exhausted pages.
	next string
}

// newResultCache returns an LRU holding up to capacity entries;
// capacity must be positive (callers disable caching by not
// constructing one).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result for key, marking it most recently used.
// The returned slice is shared — callers must not mutate it.
func (c *resultCache) get(key string) ([]lccs.Neighbor, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, "", false
	}
	c.hits++
	c.ll.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	return ent.res, ent.next, true
}

// put stores a result (and, for cursor pages, its continuation token)
// under key, evicting the least recently used entry when the cache is
// full.
func (c *resultCache) put(key string, res []lccs.Neighbor, next string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		ent.res, ent.next = res, next
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, next: next})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// clear drops every entry (hit/miss counters survive). Used when a
// collection is dropped: a later collection under the same name would
// otherwise restart its write generation and could collide with keys
// the dead tenant left behind.
func (c *resultCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.byKey)
}

// len returns the number of live entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// stats returns the hit/miss/eviction counters.
func (c *resultCache) stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// cacheKey builds the lookup key for one query: the collection name,
// its write generation, k, the candidate budget, the quantized query
// vector, the canonical filter encoding, and the cursor token. The
// collection name is length-prefixed so tenants can never alias each
// other's entries, and the filter/cursor tails are length-prefixed so
// a filter's bytes cannot be confused with a cursor's. quantBits low
// mantissa bits of every float32 coordinate are masked off before
// keying: 0 keys on exact bit patterns (no false sharing), while small
// positive values let queries that differ only by float noise share an
// entry at the cost of returning the aliased neighbor list. quantBits
// is clamped to [0, 23] so sign and exponent always survive.
func cacheKey(collection string, gen uint64, k, lambda int, q []float32, quantBits uint, f *lccs.Filter, cursor string) string {
	if quantBits > 23 {
		quantBits = 23
	}
	mask := ^uint32(0) << quantBits
	buf := make([]byte, 0, 24+len(collection)+4*len(q)+len(cursor))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(collection)))
	buf = append(buf, collection...)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(k))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(lambda))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(q)))
	for _, v := range q {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v)&mask)
	}
	fkey := f.AppendKey(nil)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fkey)))
	buf = append(buf, fkey...)
	buf = append(buf, cursor...)
	return string(buf)
}
