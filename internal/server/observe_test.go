package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"lccs"
)

// TestUsageEndpoints drives metered traffic over a durable backend and
// checks both usage views: the per-collection cumulative counters (with
// WAL bytes) and the engine-wide aggregate.
func TestUsageEndpoints(t *testing.T) {
	dir := t.TempDir()
	data, queries := testWorkload(21, 200, 8)
	di := openDurableBackend(t, dir)
	_, ts := newTestServer(t, Config{Backend: di, CacheSize: 16})

	if code := postJSON(t, ts, "/v1/insert", insertRequest{Vectors: data}, nil); code != http.StatusOK {
		t.Fatalf("insert: HTTP %d", code)
	}
	if code := postJSON(t, ts, "/v1/delete", map[string]any{"ids": []int{3}}, nil); code != http.StatusOK {
		t.Fatalf("delete: HTTP %d", code)
	}
	for i := 0; i < 5; i++ {
		if code := postJSON(t, ts, "/v1/search", searchRequest{Query: queries[i], K: 3}, nil); code != http.StatusOK {
			t.Fatalf("search %d: HTTP %d", i, code)
		}
	}
	// Repeat the first query: a cache hit still counts as a search.
	if code := postJSON(t, ts, "/v1/search", searchRequest{Query: queries[0], K: 3}, nil); code != http.StatusOK {
		t.Fatal("repeat search failed")
	}

	var ur usageResponse
	if code := doJSON(t, ts, "GET", "/v1/collections/default/usage", nil, &ur); code != http.StatusOK {
		t.Fatalf("collection usage: HTTP %d", code)
	}
	cu := ur.Cumulative
	if ur.Collection != "default" {
		t.Fatalf("collection = %q", ur.Collection)
	}
	if cu.Searches != 6 {
		t.Fatalf("searches = %d, want 6", cu.Searches)
	}
	if cu.Inserts != int64(len(data)) || cu.Deletes != 1 {
		t.Fatalf("inserts/deletes = %d/%d, want %d/1", cu.Inserts, cu.Deletes, len(data))
	}
	if cu.Comparisons <= 0 || cu.Candidates <= 0 || cu.BytesScanned <= 0 {
		t.Fatalf("cost counters empty: %+v", cu)
	}
	if cu.CostUnits != cu.Comparisons+cu.BytesScanned/4 {
		t.Fatalf("cost units %d, want %d", cu.CostUnits, cu.Comparisons+cu.BytesScanned/4)
	}
	if cu.CacheHits != 1 || cu.CacheMisses != 5 {
		t.Fatalf("cache = %d hits / %d misses, want 1/5", cu.CacheHits, cu.CacheMisses)
	}
	if cu.WALBytes <= 0 {
		t.Fatalf("wal bytes = %d, want > 0", cu.WALBytes)
	}
	if ur.WAL == nil || ur.WAL.AppendedBytes < cu.WALBytes {
		t.Fatalf("wal stats missing or inconsistent: %+v vs usage %d", ur.WAL, cu.WALBytes)
	}
	// Windowed rates at both resolutions; the traffic just ran, so the
	// short window must see it.
	if len(ur.Windows) != 2 || ur.Windows[0].Resolution != "1s" || ur.Windows[1].Resolution != "1m" {
		t.Fatalf("windows = %+v, want [1s, 1m] resolutions", ur.Windows)
	}
	if ur.Windows[0].Requests == 0 || ur.Windows[0].BytesScanned <= 0 {
		t.Fatalf("short window empty: %+v", ur.Windows[0])
	}

	// The aggregate view sums to the same figures for a single tenant.
	var ar aggregateUsageResponse
	if code := doJSON(t, ts, "GET", "/v1/usage", nil, &ar); code != http.StatusOK {
		t.Fatalf("aggregate usage: HTTP %d", code)
	}
	if ar.Total != ar.Collections["default"] {
		t.Fatalf("aggregate total %+v != default %+v", ar.Total, ar.Collections["default"])
	}
	if ar.Total.Searches != cu.Searches || ar.Total.BytesScanned < cu.BytesScanned {
		t.Fatalf("aggregate drifted from collection: %+v vs %+v", ar.Total, cu)
	}

	// The same counters surface as per-collection Prometheus families.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	want := map[string]bool{
		"lccs_collection_searches_total":           false,
		"lccs_collection_scan_bytes_total":         false,
		"lccs_collection_cost_units_total":         false,
		"lccs_collection_wal_appended_bytes_total": false,
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		for fam := range want {
			if strings.HasPrefix(line, fam+`{collection="default"}`) && !strings.HasSuffix(line, " 0") {
				want[fam] = true
			}
		}
	}
	for fam, ok := range want {
		if !ok {
			t.Errorf("metrics missing non-zero %s{collection=\"default\"}", fam)
		}
	}
}

// TestDebugHealthEndpoint exercises the windowed health report: RED and
// usage figures at two resolutions, the SLO burn indicator, admission
// state, per-collection windows, and WAL lag.
func TestDebugHealthEndpoint(t *testing.T) {
	dir := t.TempDir()
	data, queries := testWorkload(22, 200, 8)
	di := openDurableBackend(t, dir)
	_, ts := newTestServer(t, Config{Backend: di})

	if code := postJSON(t, ts, "/v1/insert", insertRequest{Vectors: data}, nil); code != http.StatusOK {
		t.Fatal("insert failed")
	}
	for i := 0; i < 8; i++ {
		if code := postJSON(t, ts, "/v1/search", searchRequest{Query: queries[i], K: 3}, nil); code != http.StatusOK {
			t.Fatalf("search %d: HTTP %d", i, code)
		}
	}
	// One failing request: counted as an error, without a latency sample.
	if code := postJSON(t, ts, "/v1/search", searchRequest{Query: queries[0], K: -1}, nil); code != http.StatusBadRequest {
		t.Fatal("bad search did not 400")
	}

	var hr healthResponse
	if code := doJSON(t, ts, "GET", "/v1/debug/health", nil, &hr); code != http.StatusOK {
		t.Fatalf("debug health: HTTP %d", code)
	}
	if hr.Status != "ok" || hr.UptimeSeconds < 0 {
		t.Fatalf("status/uptime: %+v", hr)
	}
	if len(hr.Windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(hr.Windows))
	}
	short, long := hr.Windows[0], hr.Windows[1]
	if short.Resolution != "1s" || long.Resolution != "1m" {
		t.Fatalf("resolutions = %q/%q, want 1s/1m", short.Resolution, long.Resolution)
	}
	// Both resolutions see the traffic that just ran: requests, errors,
	// latency, and usage are all non-zero.
	if short.Requests == 0 || long.Requests == 0 {
		t.Fatalf("windows empty: short %d, long %d requests", short.Requests, long.Requests)
	}
	if short.Errors == 0 || long.Errors == 0 {
		t.Fatalf("error not visible: short %d, long %d", short.Errors, long.Errors)
	}
	if short.P50Ms <= 0 || short.MeanMs <= 0 {
		t.Fatalf("latency empty: %+v", short)
	}
	if short.Comparisons <= 0 || short.BytesScanned <= 0 || short.WALBytes <= 0 {
		t.Fatalf("usage empty in window: %+v", short)
	}
	if short.ErrorRate <= 0 || short.RPS <= 0 {
		t.Fatalf("rates empty: %+v", short)
	}
	// The SLO indicator reflects the induced error rate (1/10 >> 0.1%
	// budget in both windows → burning).
	if hr.SLO.Target != 0.999 {
		t.Fatalf("slo target = %g", hr.SLO.Target)
	}
	if hr.SLO.BurnRate1m <= 1 || hr.SLO.State != "burning" {
		t.Fatalf("slo = %+v, want burning with rate > 1", hr.SLO)
	}
	// Per-collection breakdown and WAL lag.
	cw, ok := hr.Collections["default"]
	if !ok || cw.Requests == 0 {
		t.Fatalf("collection window missing/empty: %+v", hr.Collections)
	}
	if len(hr.WAL) != 1 || hr.WAL[0].Collection != "default" || hr.WAL[0].AppendedBytes <= 0 {
		t.Fatalf("wal health = %+v", hr.WAL)
	}
}

// TestExplainSearch checks the resolved query plan over a sharded
// backend: every shard enumerated with its own comparisons, candidates,
// and bytes, the whole-query cost record, and the cache outcome across
// a miss/hit pair.
func TestExplainSearch(t *testing.T) {
	data, queries := testWorkload(23, 400, 8)
	sx, err := lccs.NewShardedIndex(data, lccs.Config{Metric: lccs.Euclidean, M: 16, Seed: 9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Backend: sx, CacheSize: 16})

	var got searchResponse
	if code := postJSON(t, ts, "/v1/search", searchRequest{Query: queries[0], K: 5, Explain: true}, &got); code != http.StatusOK {
		t.Fatalf("explain search: HTTP %d", code)
	}
	e := got.Explain
	if e == nil {
		t.Fatal("response missing explain")
	}
	if got.RequestID == 0 {
		t.Fatal("explain response missing request_id")
	}
	// Explain implies an internal trace but must not leak the span tree.
	if len(got.Trace) != 0 {
		t.Fatal("explain leaked the span tree without trace:true")
	}
	if e.Collection != "default" || e.Backend != "sharded" || e.K != 5 {
		t.Fatalf("plan header: %+v", e)
	}
	if e.Filtered || e.FilterSelectivity != nil {
		t.Fatalf("unfiltered plan claims a filter: %+v", e)
	}
	if e.Cache != "miss" {
		t.Fatalf("cache outcome = %q, want miss", e.Cache)
	}
	if e.Cost == nil || e.Cost.Comparisons <= 0 || e.Cost.Candidates <= 0 || e.Cost.BytesScanned <= 0 {
		t.Fatalf("cost record empty: %+v", e.Cost)
	}
	// Every shard appears, each with its own non-zero counters, and the
	// per-shard figures sum to the query totals.
	if len(e.Shards) != sx.Shards() {
		t.Fatalf("plan covers %d shards, want %d", len(e.Shards), sx.Shards())
	}
	seen := map[int]bool{}
	var sumComp, sumCand, sumBytes int64
	for _, sh := range e.Shards {
		if sh.Shard < 0 || seen[sh.Shard] {
			t.Fatalf("bad/duplicate shard ordinal: %+v", e.Shards)
		}
		seen[sh.Shard] = true
		if sh.Comparisons <= 0 || sh.Candidates <= 0 || sh.Bytes <= 0 {
			t.Fatalf("shard %d counters empty: %+v", sh.Shard, sh)
		}
		sumComp += sh.Comparisons
		sumCand += sh.Candidates
		sumBytes += sh.Bytes
	}
	if sumComp != e.Cost.Comparisons || sumCand != e.Cost.Candidates || sumBytes != e.Cost.BytesScanned {
		t.Fatalf("per-shard sums %d/%d/%d != cost %d/%d/%d",
			sumComp, sumCand, sumBytes, e.Cost.Comparisons, e.Cost.Candidates, e.Cost.BytesScanned)
	}

	// The identical query again: a cache hit, explained as such, with no
	// backend work to report.
	var hit searchResponse
	if code := postJSON(t, ts, "/v1/search", searchRequest{Query: queries[0], K: 5, Explain: true}, &hit); code != http.StatusOK {
		t.Fatal("cached explain failed")
	}
	if !hit.Cached || hit.Explain == nil {
		t.Fatalf("second query not a cache hit: %+v", hit)
	}
	if hit.Explain.Cache != "hit" || hit.Explain.Cost != nil || len(hit.Explain.Shards) != 0 {
		t.Fatalf("cache-hit plan should carry no backend work: %+v", hit.Explain)
	}
}

// TestExplainFilteredBuffer checks the plan of a filtered query against
// a dynamic collection whose rows still sit in the delta buffer: the
// buffer scan is reported, and the observed filter selectivity is
// present and sane.
func TestExplainFilteredBuffer(t *testing.T) {
	_, ts := newCollServer(t, Config{})
	if code := doJSON(t, ts, "POST", "/v1/collections",
		createCollectionRequest{Name: "tenant-a"}, nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	data, queries := testWorkload(24, 60, 8)
	attrs := make([]map[string]any, len(data))
	for i := range attrs {
		color := "red"
		if i%2 == 1 {
			color = "blue"
		}
		attrs[i] = map[string]any{"color": color}
	}
	if code := postJSON(t, ts, "/v1/collections/tenant-a/insert",
		insertRequest{Vectors: data, Attrs: attrs}, nil); code != http.StatusOK {
		t.Fatal("insert failed")
	}

	var got searchResponse
	req := searchRequest{
		Query:   queries[0],
		K:       3,
		Filter:  []filterTermJSON{{Key: "color", Value: "red"}},
		Explain: true,
	}
	if code := postJSON(t, ts, "/v1/collections/tenant-a/search", req, &got); code != http.StatusOK {
		t.Fatalf("filtered explain: HTTP %d", code)
	}
	e := got.Explain
	if e == nil {
		t.Fatal("response missing explain")
	}
	if e.Backend != "dynamic" || !e.Filtered {
		t.Fatalf("plan header: %+v", e)
	}
	if e.Cache != "off" {
		t.Fatalf("cache outcome = %q, want off (no cache configured)", e.Cache)
	}
	// All rows are unindexed, so the work happened in the buffer scan.
	if e.Buffer == nil || e.Buffer.Comparisons != int64(len(data)) {
		t.Fatalf("buffer scan = %+v, want %d comparisons", e.Buffer, len(data))
	}
	if len(e.Shards) != 0 {
		t.Fatalf("no shards exist yet, plan lists %d", len(e.Shards))
	}
	if e.FilterSelectivity == nil {
		t.Fatal("filtered plan missing selectivity")
	}
	if sel := *e.FilterSelectivity; sel != 0.5 {
		t.Fatalf("selectivity = %g, want 0.5 (half the rows are red)", sel)
	}
	if e.Cost == nil || e.Cost.FilterRejected != int64(len(data)/2) {
		t.Fatalf("cost = %+v, want %d filter-rejected", e.Cost, len(data)/2)
	}
}

// TestWriteRequestIDs checks that the write and registry endpoints
// carry a request id in both the JSON body and the X-Request-Id header.
func TestWriteRequestIDs(t *testing.T) {
	srv, ts := newCollServer(t, Config{})
	_ = srv
	raw, _ := json.Marshal(createCollectionRequest{Name: "tenant-a"})
	resp, err := http.Post(ts.URL+"/v1/collections", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var cr createCollectionResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cr.RequestID == 0 || resp.Header.Get("X-Request-Id") == "" {
		t.Fatalf("create: request id missing (body %d, header %q)", cr.RequestID, resp.Header.Get("X-Request-Id"))
	}

	data, _ := testWorkload(25, 10, 8)
	raw, _ = json.Marshal(insertRequest{Vectors: data})
	resp, err = http.Post(ts.URL+"/v1/collections/tenant-a/insert", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var ins insertResponse
	if err := json.NewDecoder(resp.Body).Decode(&ins); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ins.RequestID == 0 || resp.Header.Get("X-Request-Id") == "" {
		t.Fatalf("insert: request id missing: %+v", ins)
	}

	raw, _ = json.Marshal(deleteRequest{IDs: []int{0}})
	resp, err = http.Post(ts.URL+"/v1/collections/tenant-a/delete", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var del deleteResponse
	if err := json.NewDecoder(resp.Body).Decode(&del); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if del.RequestID == 0 || resp.Header.Get("X-Request-Id") == "" {
		t.Fatalf("delete: request id missing: %+v", del)
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/collections/tenant-a", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var dr dropCollectionResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dr.RequestID == 0 || dr.Dropped != "tenant-a" || resp.Header.Get("X-Request-Id") == "" {
		t.Fatalf("drop: request id missing: %+v", dr)
	}
}

// TestPromLabelEscaping renders series whose collection names carry
// every character the exposition format must escape — quotes,
// backslashes, newlines — and checks each sample stays a single,
// well-formed line. The HTTP API's name validation keeps such names
// out in practice; the formatter must still never emit a broken scrape.
func TestPromLabelEscaping(t *testing.T) {
	hostile := []string{
		`quote"inside`,
		`back\slash`,
		"new\nline",
		"tab\tand\"both\\of\nthem",
	}
	m := newMetrics()
	var counters []gauge
	for _, name := range hostile {
		counters = append(counters, gauge{
			name:   "lccs_collection_scan_bytes_total",
			help:   "test family",
			value:  1,
			labels: collLabel(name),
		})
	}
	var buf bytes.Buffer
	m.writeProm(&buf, counters, nil)

	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	samples := 0
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if !strings.HasPrefix(line, "lccs_") {
			// A raw newline inside a label value would start a line that
			// is neither a comment nor a sample.
			t.Fatalf("stray continuation line %q: label value leaked a newline", line)
		}
		if _, _, _, err := parseSample(line); err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		if strings.HasPrefix(line, "lccs_collection_scan_bytes_total") {
			samples++
		}
	}
	if samples != len(hostile) {
		t.Fatalf("rendered %d hostile-name samples, want %d", samples, len(hostile))
	}
	// The escapes themselves: %q turns ", \, and newline into \", \\, \n.
	out := buf.String()
	for _, esc := range []string{`quote\"inside`, `back\\slash`, `new\nline`} {
		if !strings.Contains(out, esc) {
			t.Errorf("output missing escaped form %s", esc)
		}
	}
}
