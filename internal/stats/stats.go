// Package stats collects the probabilistic machinery of the paper: the
// standard normal CDF, the analytic collision probabilities of the LSH
// families (Eq. 2 and Eq. 4), the hash quality ρ, the extreme-value
// approximation of the LCCS length distribution (Lemma 5.2), and the λ
// candidate budget of Theorem 5.1. It also provides the small descriptive
// statistics used by the evaluation harness.
package stats

import (
	"math"
	"sort"
)

// PhiCDF is Φ(x), the CDF of the standard normal distribution.
func PhiCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// RandomProjectionCollisionProb evaluates Eq. 2 of the paper: the
// probability that two points at Euclidean distance tau collide under a
// p-stable random-projection hash with bucket width w,
//
//	p(τ) = 1 − 2Φ(−w/τ) − (2/(√(2π) (w/τ))) (1 − e^{−(w/τ)²/2}).
//
// For τ → 0 the probability tends to 1; τ must be ≥ 0 and w > 0.
func RandomProjectionCollisionProb(w, tau float64) float64 {
	if tau <= 0 {
		return 1
	}
	r := w / tau
	p := 1 - 2*PhiCDF(-r) - 2/(math.Sqrt(2*math.Pi)*r)*(1-math.Exp(-r*r/2))
	if p < 0 {
		p = 0
	}
	return p
}

// CrossPolytopeCollisionProb approximates the collision probability of the
// cross-polytope LSH family on the unit sphere for two points at Euclidean
// distance tau (0 < tau < 2) in dimension d, using Eq. 4 of the paper:
//
//	ln(1/p(τ)) = (τ²/(4−τ²))·ln d + O_τ(ln ln d).
//
// The O(ln ln d) term is dropped, which matches the asymptotic regime the
// paper analyses. Degenerate inputs clamp to [~0, 1].
func CrossPolytopeCollisionProb(d int, tau float64) float64 {
	if tau <= 0 {
		return 1
	}
	if tau >= 2 {
		tau = 2 - 1e-9
	}
	lnInv := tau * tau / (4 - tau*tau) * math.Log(float64(d))
	return math.Exp(-lnInv)
}

// Rho returns the hash quality ρ = ln(1/p1)/ln(1/p2) of an
// (R, cR, p1, p2)-sensitive family. It requires 0 < p2 < p1 < 1.
func Rho(p1, p2 float64) float64 {
	return math.Log(1/p1) / math.Log(1/p2)
}

// CrossPolytopeRho evaluates Eq. 5: ρ = (1/c²)·(4−c²R²)/(4−R²), the hash
// quality of the cross-polytope family at radius R and approximation c
// (o(1) term dropped).
func CrossPolytopeRho(c, r float64) float64 {
	return 1 / (c * c) * (4 - c*c*r*r) / (4 - r*r)
}

// ExtremeValueCDF is F̂_p(x) = exp(−p^x), the limiting CDF of the longest
// head-run length (Lemma 5.2's building block). p must be in (0,1).
func ExtremeValueCDF(p, x float64) float64 {
	return math.Exp(-math.Pow(p, x))
}

// LCCSLengthCDF approximates Pr[|LCCS(T,Q)| ≤ x] for length-m strings with
// per-symbol match probability p, per Lemma 5.2:
//
//	F_{m,p}(x) ≈ F̂_p(x − log_{1/p}(m(1−p))).
func LCCSLengthCDF(m int, p, x float64) float64 {
	shift := math.Log(float64(m)*(1-p)) / math.Log(1/p)
	return ExtremeValueCDF(p, x-shift)
}

// LCCSLengthMedian evaluates Eq. 6: the median of the approximated LCCS
// length distribution, x_{1/2,p} = log_p(ln 2) + log_{1/p}(m(1−p)).
func LCCSLengthMedian(m int, p float64) float64 {
	return math.Log(math.Ln2)/math.Log(p) + math.Log(float64(m)*(1-p))/math.Log(1/p)
}

// LCCSLengthQuantile evaluates Eq. 7: the (1−k/n) quantile,
// x_{1−k/n,p} = log_p(−ln(1−k/n)) + log_{1/p}(m(1−p)).
func LCCSLengthQuantile(m int, p float64, k, n float64) float64 {
	return math.Log(-math.Log(1-k/n))/math.Log(p) + math.Log(float64(m)*(1-p))/math.Log(1/p)
}

// TheoremLambda computes the candidate budget λ of Theorem 5.1:
//
//	λ = m^{1−1/ρ} · n · (1−p1)^{−1/ρ} · (1−p2) · (ln 2)^{1/ρ} / p2,
//
// the number of LCCS candidates that guarantees answering (R,c)-NNS with
// probability ≥ 1/4. The result is clamped to [1, n].
func TheoremLambda(m, n int, p1, p2 float64) int {
	rho := Rho(p1, p2)
	lam := math.Pow(float64(m), 1-1/rho) * float64(n) *
		math.Pow(1-p1, -1/rho) * (1 - p2) * math.Pow(math.Ln2, 1/rho) / p2
	if math.IsNaN(lam) || lam < 1 {
		return 1
	}
	if lam > float64(n) {
		return n
	}
	return int(math.Ceil(lam))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using
// linear interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
