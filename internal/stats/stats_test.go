package stats

import (
	"math"
	"testing"
)

func TestPhiCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{3, 0.99865},
	}
	for _, c := range cases {
		if got := PhiCDF(c.x); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("Phi(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestRandomProjectionCollisionProbShape(t *testing.T) {
	w := 4.0
	// Monotone decreasing in tau, bounded in [0,1], → 1 as tau → 0.
	if got := RandomProjectionCollisionProb(w, 0); got != 1 {
		t.Errorf("p(0) = %v", got)
	}
	prev := 1.0
	for tau := 0.25; tau < 64; tau *= 2 {
		p := RandomProjectionCollisionProb(w, tau)
		if p < 0 || p > 1 {
			t.Fatalf("p(%v) = %v out of range", tau, p)
		}
		if p > prev+1e-12 {
			t.Fatalf("p not monotone at tau=%v: %v > %v", tau, p, prev)
		}
		prev = p
	}
	// Known value (Datar et al.): w/τ = 1 gives p ≈ 0.3687.
	if got := RandomProjectionCollisionProb(1, 1); math.Abs(got-0.3687) > 5e-3 {
		t.Errorf("p(w=τ) = %v, want ≈ 0.3687", got)
	}
}

func TestCrossPolytopeCollisionProbShape(t *testing.T) {
	d := 128
	if got := CrossPolytopeCollisionProb(d, 0); got != 1 {
		t.Errorf("p(0) = %v", got)
	}
	prev := 1.0
	for tau := 0.1; tau < 2.0; tau += 0.1 {
		p := CrossPolytopeCollisionProb(d, tau)
		if p <= 0 || p > 1 {
			t.Fatalf("p(%v) = %v out of range", tau, p)
		}
		if p > prev+1e-12 {
			t.Fatalf("not monotone at %v", tau)
		}
		prev = p
	}
	// Larger d → smaller collision probability at the same distance.
	if CrossPolytopeCollisionProb(1024, 1.0) >= CrossPolytopeCollisionProb(16, 1.0) {
		t.Error("collision prob should shrink with dimension")
	}
}

func TestRho(t *testing.T) {
	if got := Rho(0.5, 0.25); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Rho(0.5,0.25) = %v, want 0.5", got)
	}
	if Rho(0.9, 0.1) >= 1 || Rho(0.9, 0.1) <= 0 {
		t.Error("rho out of (0,1)")
	}
}

func TestCrossPolytopeRho(t *testing.T) {
	// Corollary 1 of FALCONN: ρ ≤ 1/c² for all R, equality as R → 0.
	for _, r := range []float64{0.1, 0.5, 1.0} {
		c := 2.0
		rho := CrossPolytopeRho(c, r)
		if rho > 1/(c*c)+1e-9 {
			t.Errorf("rho(R=%v) = %v exceeds 1/c² = %v", r, rho, 1/(c*c))
		}
	}
	if got := CrossPolytopeRho(2, 1e-9); math.Abs(got-0.25) > 1e-6 {
		t.Errorf("rho at R→0 = %v, want 0.25", got)
	}
}

func TestExtremeValueCDF(t *testing.T) {
	// F̂_p(x) = exp(−p^x): increasing in x, in (0,1).
	p := 0.5
	prev := 0.0
	for x := -5.0; x <= 20; x++ {
		v := ExtremeValueCDF(p, x)
		if v < prev {
			t.Fatalf("not monotone at x=%v", x)
		}
		if v < 0 || v > 1 {
			t.Fatalf("out of range at x=%v: %v", x, v)
		}
		prev = v
	}
	// At x where p^x = ln 2, CDF = 1/2. x = log_p(ln 2).
	x := math.Log(math.Ln2) / math.Log(p)
	if got := ExtremeValueCDF(p, x); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("median check failed: %v", got)
	}
}

func TestLCCSLengthMedianMatchesCDF(t *testing.T) {
	// The median formula (Eq. 6) must invert the approximated CDF at 1/2.
	for _, p := range []float64{0.3, 0.5, 0.8} {
		for _, m := range []int{16, 64, 256} {
			med := LCCSLengthMedian(m, p)
			if got := LCCSLengthCDF(m, p, med); math.Abs(got-0.5) > 1e-9 {
				t.Errorf("m=%d p=%v: CDF(median) = %v", m, p, got)
			}
		}
	}
}

func TestLCCSLengthQuantileMatchesCDF(t *testing.T) {
	m, p := 128, 0.6
	k, n := 50.0, 10000.0
	q := LCCSLengthQuantile(m, p, k, n)
	if got := LCCSLengthCDF(m, p, q); math.Abs(got-(1-k/n)) > 1e-9 {
		t.Errorf("CDF(quantile) = %v, want %v", got, 1-k/n)
	}
}

func TestLCCSLengthMedianGrowsWithMAndP(t *testing.T) {
	if LCCSLengthMedian(256, 0.5) <= LCCSLengthMedian(16, 0.5) {
		t.Error("median should grow with m")
	}
	if LCCSLengthMedian(64, 0.8) <= LCCSLengthMedian(64, 0.4) {
		t.Error("median should grow with p")
	}
}

func TestTheoremLambda(t *testing.T) {
	n := 100000
	lam := TheoremLambda(64, n, 0.9, 0.5)
	if lam < 1 || lam > n {
		t.Fatalf("lambda = %d out of [1, n]", lam)
	}
	// Larger m should not increase λ (exponent 1−1/ρ is negative).
	if TheoremLambda(512, n, 0.9, 0.5) > TheoremLambda(8, n, 0.9, 0.5) {
		t.Error("lambda should shrink with m")
	}
	// Degenerate clamps.
	if TheoremLambda(4, 10, 0.999999, 0.000001) < 1 {
		t.Error("lambda must be ≥ 1")
	}
}

func TestDescriptiveStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev singleton = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 2.5 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("P50(nil) = %v", got)
	}
	// Percentile must not mutate its input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 {
		t.Error("Percentile sorted its input in place")
	}
}
