package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTracePoolReuse(t *testing.T) {
	// A trace drawn from the pool after a Put must come back reset:
	// zero spans, new id, and no leaked span data from the previous
	// request. Run single-goroutine so the pool round-trips.
	tr := GetTrace(1)
	root := tr.StartSpan(StageQuery, -1)
	for i := 0; i < 8; i++ {
		sp := tr.StartShardSpan(StageShardScan, root, i)
		tr.FinishSpanN(sp, 100, 10)
	}
	tr.FinishSpan(root)
	if tr.Len() != 9 {
		t.Fatalf("Len = %d, want 9", tr.Len())
	}
	grownCap := tr.Cap()
	PutTrace(tr)

	tr2 := GetTrace(2)
	if tr2.Len() != 0 {
		t.Fatalf("reused trace has %d stale spans", tr2.Len())
	}
	if tr2.ID != 2 {
		t.Fatalf("reused trace id = %d, want 2", tr2.ID)
	}
	if tr2 == tr && tr2.Cap() != grownCap {
		t.Fatalf("reused trace lost its grown capacity: %d != %d", tr2.Cap(), grownCap)
	}
	if tree := tr2.Tree(); tree != nil {
		t.Fatalf("reused trace leaked a span tree: %+v", tree)
	}
	PutTrace(tr2)
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	idx := tr.StartSpan(StageQuery, -1)
	if idx != -1 {
		t.Fatalf("nil StartSpan = %d, want -1", idx)
	}
	if d := tr.FinishSpanN(idx, 1, 1); d != 0 {
		t.Fatalf("nil FinishSpanN = %v, want 0", d)
	}
	tr.AddSpan(StageCache, -1, time.Now(), time.Millisecond)
	if tr.Len() != 0 || tr.Tree() != nil {
		t.Fatal("nil trace recorded spans")
	}
	PutTrace(tr) // must not panic
}

func TestTraceTreeNesting(t *testing.T) {
	tr := GetTrace(7)
	a := tr.StartSpan(StageAdmission, -1)
	tr.FinishSpan(a)
	q := tr.StartSpan(StageQuery, -1)
	s0 := tr.StartShardSpan(StageShardScan, q, 0)
	tr.FinishSpanN(s0, 42, 7)
	s1 := tr.StartShardSpan(StageShardScan, q, 1)
	tr.FinishSpanN(s1, 40, 5)
	m := tr.StartSpan(StageMerge, q)
	tr.FinishSpan(m)
	tr.FinishSpan(q)

	tree := tr.Tree()
	if len(tree) != 2 {
		t.Fatalf("want 2 roots, got %d", len(tree))
	}
	if tree[0].Stage != "admission" || tree[1].Stage != "query" {
		t.Fatalf("root order wrong: %s, %s", tree[0].Stage, tree[1].Stage)
	}
	kids := tree[1].Children
	if len(kids) != 3 {
		t.Fatalf("query should have 3 children, got %d", len(kids))
	}
	if kids[0].Stage != "shard_scan" || kids[0].Shard == nil || *kids[0].Shard != 0 {
		t.Fatalf("first child wrong: %+v", kids[0])
	}
	if kids[0].Rows != 42 || kids[0].Cands != 7 {
		t.Fatalf("shard 0 counters wrong: %+v", kids[0])
	}
	if kids[2].Stage != "merge" {
		t.Fatalf("last child = %s, want merge", kids[2].Stage)
	}
	PutTrace(tr)
}

func TestSlowLogRingEvictionOrder(t *testing.T) {
	sl := NewSlowLog(3, 0, time.Millisecond)
	for i := 1; i <= 5; i++ {
		sl.Record(SlowEntry{
			RequestID: uint64(i),
			DurUS:     float64(i) * 2000, // all over the 1ms threshold
		}, nil)
	}
	slow, _ := sl.Snapshot()
	if len(slow) != 3 {
		t.Fatalf("ring holds %d entries, want 3", len(slow))
	}
	// Newest first; the two oldest (1, 2) were evicted.
	want := []uint64{5, 4, 3}
	for i, e := range slow {
		if e.RequestID != want[i] {
			t.Fatalf("slot %d = request %d, want %d", i, e.RequestID, want[i])
		}
	}
}

func TestSlowLogThresholdAndReservoir(t *testing.T) {
	sl := NewSlowLog(4, 2, 10*time.Millisecond)
	// Fast untraced requests are dropped entirely — and must not pay
	// for span-tree construction on the way out.
	sl.Record(SlowEntry{RequestID: 1, DurUS: 100}, func() []SpanNode {
		t.Fatal("spans materialized for a rejected entry")
		return nil
	})
	// Fast traced requests go to the reservoir, bounded at cap.
	spanCalls := 0
	for i := 2; i <= 20; i++ {
		sl.Record(SlowEntry{RequestID: uint64(i), DurUS: 100, Traced: true}, func() []SpanNode {
			spanCalls++
			return []SpanNode{{Stage: "query"}}
		})
	}
	if spanCalls >= 19 {
		t.Fatalf("spans materialized for all %d offers; want lazy admission-only calls", spanCalls)
	}
	// Slow request (traced or not) enters the ring.
	sl.Record(SlowEntry{RequestID: 99, DurUS: 20000}, nil)
	slow, sample := sl.Snapshot()
	if len(slow) != 1 || slow[0].RequestID != 99 {
		t.Fatalf("slow = %+v, want just request 99", slow)
	}
	if len(sample) != 2 {
		t.Fatalf("reservoir holds %d, want 2", len(sample))
	}
	for _, e := range sample {
		if !e.Traced || e.RequestID == 1 {
			t.Fatalf("reservoir admitted a bad entry: %+v", e)
		}
	}
}

func TestStageHistogramBuckets(t *testing.T) {
	before := StageCount(StageCkptManifest)
	ObserveDur(StageCkptManifest, 500*time.Nanosecond) // bucket 0 (≤1µs)
	ObserveDur(StageCkptManifest, 3*time.Microsecond)  // bucket 2 (≤4µs)
	ObserveDur(StageCkptManifest, time.Hour)           // +Inf overflow
	if got := StageCount(StageCkptManifest); got != before+3 {
		t.Fatalf("count = %d, want %d", got, before+3)
	}
	var sb strings.Builder
	WriteStageMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		`lccs_stage_seconds_bucket{stage="ckpt_manifest",le="1e-06"}`,
		`lccs_stage_seconds_bucket{stage="ckpt_manifest",le="+Inf"}`,
		`lccs_stage_seconds_sum{stage="ckpt_manifest"}`,
		`lccs_stage_seconds_count{stage="ckpt_manifest"}`,
		`lccs_stage_seconds_count{stage="shard_scan"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("stage metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestStageBucketIdx(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{16 * time.Second, 24},
		{17 * time.Second, 25}, // +Inf
		{time.Hour, 25},
	}
	for _, c := range cases {
		if got := stageBucketIdx(c.d); got != c.want {
			t.Fatalf("bucketIdx(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}
