package obs

import (
	"context"
	"log/slog"
)

// NopLogger returns a logger that discards everything. Library layers
// (DurableIndex, the WAL) default to it when no logger is injected, so
// they stay silent unless the embedding process opts in.
func NopLogger() *slog.Logger { return slog.New(discardHandler{}) }

// discardHandler is a hand-rolled no-op slog.Handler. (The stdlib's
// slog.DiscardHandler arrived after the Go version this module
// targets.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
