package obs

import (
	"testing"
	"time"
)

func TestHealthWindowCounts(t *testing.T) {
	var h Health
	base := time.Unix(1_700_000_000, 0)
	for i := 0; i < 10; i++ {
		h.Record(base.Add(time.Duration(i)*time.Second), HealthSample{
			Dur:          2 * time.Millisecond,
			Err:          i%5 == 0, // 2 errors
			Comparisons:  100,
			BytesScanned: 4096,
			WALBytes:     32,
			CacheMiss:    true,
		})
	}
	h.Record(base.Add(5*time.Second), HealthSample{Rejected: true})

	now := base.Add(9 * time.Second)
	w := h.Window(now, time.Minute)
	if w.Resolution != "1s" {
		t.Fatalf("resolution = %q, want 1s", w.Resolution)
	}
	if w.Requests != 10 || w.Errors != 2 || w.Rejected != 1 {
		t.Fatalf("requests/errors/rejected = %d/%d/%d, want 10/2/1", w.Requests, w.Errors, w.Rejected)
	}
	if w.ErrorRate != 0.2 {
		t.Fatalf("error rate = %g, want 0.2", w.ErrorRate)
	}
	if w.Comparisons != 1000 || w.BytesScanned != 40960 || w.WALBytes != 320 {
		t.Fatalf("usage = %d/%d/%d, want 1000/40960/320", w.Comparisons, w.BytesScanned, w.WALBytes)
	}
	if w.CacheMisses != 10 || w.CacheHits != 0 {
		t.Fatalf("cache = %d hits / %d misses, want 0/10", w.CacheHits, w.CacheMisses)
	}
	// 2ms lands in the (1ms, 2.048ms] power-of-two bucket: both
	// percentiles report its upper bound.
	if w.P50Ms != 2.048 || w.P99Ms != 2.048 {
		t.Fatalf("p50/p99 = %g/%g ms, want 2.048/2.048", w.P50Ms, w.P99Ms)
	}
	if w.MeanMs != 2 {
		t.Fatalf("mean = %g ms, want 2", w.MeanMs)
	}
}

func TestHealthWindowPercentileSpread(t *testing.T) {
	var h Health
	base := time.Unix(1_700_000_100, 0)
	// 99 fast requests and one slow one: p50 stays in the fast bucket,
	// p99 reaches the slow one.
	for i := 0; i < 99; i++ {
		h.Record(base, HealthSample{Dur: 500 * time.Microsecond})
	}
	h.Record(base, HealthSample{Dur: 100 * time.Millisecond})
	w := h.Window(base, 10*time.Second)
	if w.P50Ms != 0.512 {
		t.Fatalf("p50 = %g ms, want 0.512", w.P50Ms)
	}
	if w.P99Ms != 131.072 {
		t.Fatalf("p99 = %g ms, want 131.072", w.P99Ms)
	}
}

func TestHealthStampInvalidation(t *testing.T) {
	var h Health
	base := time.Unix(1_700_001_000, 0)
	h.Record(base, HealthSample{Dur: time.Millisecond})
	// The same per-second slot comes around again two ring lengths
	// later; the old sample must not leak into the new window.
	later := base.Add(2 * healthSecSlots * time.Second)
	h.Record(later, HealthSample{Dur: time.Millisecond})
	w := h.Window(later, time.Minute)
	if w.Requests != 1 {
		t.Fatalf("requests = %d, want 1 (stale slot leaked)", w.Requests)
	}
}

func TestHealthMinuteRing(t *testing.T) {
	var h Health
	base := time.Unix(1_700_002_000, 0)
	// Samples spread over 10 minutes: far outside the per-second ring,
	// fully inside the per-minute ring.
	for i := 0; i < 10; i++ {
		h.Record(base.Add(time.Duration(i)*time.Minute), HealthSample{Dur: time.Millisecond, BytesScanned: 100})
	}
	now := base.Add(9*time.Minute + 30*time.Second)
	w := h.Window(now, 15*time.Minute)
	if w.Resolution != "1m" {
		t.Fatalf("resolution = %q, want 1m", w.Resolution)
	}
	if w.Requests != 10 || w.BytesScanned != 1000 {
		t.Fatalf("requests/bytes = %d/%d, want 10/1000", w.Requests, w.BytesScanned)
	}
	// The per-second ring only reaches back two minutes from now.
	ws := h.Window(now, time.Minute)
	if ws.Resolution != "1s" || ws.Requests != 1 {
		t.Fatalf("1m window = %q/%d requests, want 1s/1", ws.Resolution, ws.Requests)
	}
}

func TestHealthWindowIdle(t *testing.T) {
	var h Health
	w := h.Window(time.Unix(1_700_003_000, 0), time.Minute)
	if w.Requests != 0 || w.ErrorRate != 0 || w.P50Ms != 0 {
		t.Fatalf("idle window not zero: %+v", w)
	}
}
