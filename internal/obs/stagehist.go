package obs

import (
	"fmt"
	"io"
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// Per-stage latency histograms with exponential buckets from 1µs to
// ~16.8s (×2 per bucket) plus +Inf. Buckets and sums are plain
// atomics so Observe is lock-free and safe from any goroutine,
// including the WAL writer and checkpoint loops.

const numStageBuckets = 25 // upper bounds 2^i µs, i = 0..24

// stageBucketBound returns the i-th upper bound in seconds.
func stageBucketBound(i int) float64 {
	return float64(uint64(1)<<uint(i)) * 1e-6
}

type stageHist struct {
	buckets [numStageBuckets + 1]atomic.Uint64 // last is +Inf
	count   atomic.Uint64
	sumNS   atomic.Int64
}

var stageHists [numStages]stageHist

// ObserveDur records one measurement of the given stage.
func ObserveDur(stage Stage, d time.Duration) {
	if stage >= numStages {
		return
	}
	if d < 0 {
		d = 0
	}
	h := &stageHists[stage]
	h.buckets[stageBucketIdx(d)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// ObserveSince is ObserveDur(stage, time.Since(t0)).
func ObserveSince(stage Stage, t0 time.Time) {
	ObserveDur(stage, time.Since(t0))
}

// stageBucketIdx maps a duration to the first bucket whose bound is
// >= d. Bound i is 2^i µs, so the index is the bit length of the
// duration in whole microseconds (ceiling division on the ns part).
func stageBucketIdx(d time.Duration) int {
	us := uint64((d + 999) / 1000) // ceil to µs
	if us <= 1 {
		return 0
	}
	idx := bits.Len64(us - 1) // smallest i with 2^i >= us
	if idx > numStageBuckets {
		return numStageBuckets // +Inf
	}
	return idx
}

// StageCount returns the number of observations for a stage.
func StageCount(stage Stage) uint64 {
	if stage >= numStages {
		return 0
	}
	return stageHists[stage].count.Load()
}

// WriteStageMetrics renders every stage histogram as one Prometheus
// family, lccs_stage_seconds{stage=...}, in text exposition format.
func WriteStageMetrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP lccs_stage_seconds Time spent per request-lifecycle stage.\n")
	fmt.Fprintf(w, "# TYPE lccs_stage_seconds histogram\n")
	for s := Stage(0); s < numStages; s++ {
		h := &stageHists[s]
		name := s.String()
		var cum uint64
		for i := 0; i < numStageBuckets; i++ {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "lccs_stage_seconds_bucket{stage=%q,le=%q} %d\n",
				name, formatBound(stageBucketBound(i)), cum)
		}
		cum += h.buckets[numStageBuckets].Load()
		fmt.Fprintf(w, "lccs_stage_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "lccs_stage_seconds_sum{stage=%q} %g\n",
			name, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(w, "lccs_stage_seconds_count{stage=%q} %d\n", name, h.count.Load())
	}
}

func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
