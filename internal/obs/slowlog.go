package obs

import (
	"sync"
	"time"
)

// SlowEntry is one captured request in the slow-query log.
type SlowEntry struct {
	RequestID uint64 `json:"request_id"`
	Endpoint  string `json:"endpoint"`
	// Collection is the tenant the request ran against.
	Collection string    `json:"collection,omitempty"`
	Time       time.Time `json:"time"`
	DurUS      float64   `json:"dur_us"`
	K          int       `json:"k,omitempty"`
	Budget     int       `json:"budget,omitempty"`
	// Filter is the hex encoding of the query's canonical filter key
	// (vec.Filter.AppendKey); empty for unfiltered requests. Equal
	// filters render equal strings, so slow entries group by predicate.
	Filter string     `json:"filter,omitempty"`
	Traced bool       `json:"traced"`
	Spans  []SpanNode `json:"spans,omitempty"`
}

// SlowLog captures slow requests in a fixed-capacity ring buffer
// (newest overwrites oldest) and keeps a reservoir sample of traced
// requests that finished under the threshold, so /v1/debug/slow
// shows both the tail and a representative baseline.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration

	ring  []SlowEntry // capacity-sized ring
	head  int         // next write position
	count int         // entries populated, <= len(ring)

	sample  []SlowEntry // reservoir of sub-threshold traced requests
	seen    uint64      // traced sub-threshold requests offered so far
	rngSeed uint64
}

// NewSlowLog builds a SlowLog holding up to capacity slow entries and
// up to sampleCap reservoir entries. A threshold of 0 disables
// threshold capture (only reservoir sampling of traced requests).
func NewSlowLog(capacity, sampleCap int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = 64
	}
	if sampleCap < 0 {
		sampleCap = 0
	}
	return &SlowLog{
		threshold: threshold,
		ring:      make([]SlowEntry, capacity),
		sample:    make([]SlowEntry, 0, sampleCap),
		rngSeed:   0x9e3779b97f4a7c15,
	}
}

// Threshold returns the slow-capture threshold (0 = disabled).
func (sl *SlowLog) Threshold() time.Duration {
	if sl == nil {
		return 0
	}
	return sl.threshold
}

// Record offers a finished request to the log. Requests at or above
// the threshold enter the ring; traced sub-threshold requests are
// reservoir-sampled. spans, when non-nil, is called to materialize
// e.Spans only for entries actually stored — rejected offers (the
// vast majority once the reservoir is warm) never pay for span-tree
// construction. Safe on nil.
func (sl *SlowLog) Record(e SlowEntry, spans func() []SpanNode) {
	if sl == nil {
		return
	}
	dur := time.Duration(e.DurUS * float64(time.Microsecond))
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.threshold > 0 && dur >= sl.threshold {
		if spans != nil {
			e.Spans = spans()
		}
		sl.ring[sl.head] = e
		sl.head = (sl.head + 1) % len(sl.ring)
		if sl.count < len(sl.ring) {
			sl.count++
		}
		return
	}
	if !e.Traced || cap(sl.sample) == 0 {
		return
	}
	sl.seen++
	if len(sl.sample) < cap(sl.sample) {
		if spans != nil {
			e.Spans = spans()
		}
		sl.sample = append(sl.sample, e)
		return
	}
	// Algorithm R: replace a random slot with probability cap/seen.
	if j := sl.rand() % sl.seen; j < uint64(cap(sl.sample)) {
		if spans != nil {
			e.Spans = spans()
		}
		sl.sample[j] = e
	}
}

// rand is a tiny xorshift64* generator; the reservoir needs cheap,
// lock-held randomness, not cryptographic quality.
func (sl *SlowLog) rand() uint64 {
	x := sl.rngSeed
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	sl.rngSeed = x
	return x * 0x2545f4914f6cdd1d
}

// Snapshot returns the slow entries newest-first plus the current
// reservoir sample. Both slices are copies.
func (sl *SlowLog) Snapshot() (slow, sample []SlowEntry) {
	if sl == nil {
		return nil, nil
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	slow = make([]SlowEntry, 0, sl.count)
	for i := 0; i < sl.count; i++ {
		idx := (sl.head - 1 - i + len(sl.ring)) % len(sl.ring)
		slow = append(slow, sl.ring[idx])
	}
	sample = append([]SlowEntry(nil), sl.sample...)
	return slow, sample
}
