// Package obs is the zero-dependency observability layer: pooled
// per-request traces with typed spans, lock-free per-stage latency
// histograms rendered in Prometheus text exposition, and a
// ring-buffer slow-query log with reservoir sampling.
//
// The package is allocation-disciplined by construction: every Trace
// method is safe on a nil receiver and compiles down to a single
// pointer check, so the steady-state untraced search path pays no
// clock reads, no allocations, and no synchronization. Traced
// requests draw a Trace from a sync.Pool and reuse its span slice
// across requests.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one instrumented phase of the request or write
// lifecycle. Stages double as the `stage` label on the
// lccs_stage_seconds histogram family.
type Stage uint8

const (
	// Read path.
	StageAdmission  Stage = iota // wait in the admission semaphore queue
	StageCache                   // result-cache probe (hit or miss)
	StageQuery                   // whole backend search call (parent of the scans and merge)
	StageShardScan               // one CSA scan of one shard
	StageBufferScan              // linear scan of the unindexed delta buffer
	StageMerge                   // tournament merge + external-id mapping
	StageEncode                  // JSON response encode + write
	StageRerank                  // exact float32 re-rank after a quantized (SQ8) scan

	// Durable write path.
	StageIndexApply // in-memory DynamicIndex apply under the write lock
	StageWALAppend  // journal record append (buffered, pre-fsync)
	StageWALFsync   // group-commit wait until the record is durable

	// Checkpoint phases.
	StageCkptSnapshot // in-memory snapshot build under the write lock
	StageCkptWrite    // snapshot file write + fsync
	StageCkptManifest // atomic MANIFEST swap
	StageCkptTruncate // WAL truncation + orphan sweep

	// Startup.
	StageRecoveryReplay // WAL replay during OpenDurable

	// Hybrid-query path.
	StageFilter       // predicate evaluation inside candidate verification
	StageCursorResume // cursor token decode + per-shard offset restore

	numStages
)

var stageNames = [numStages]string{
	StageAdmission:      "admission",
	StageCache:          "cache",
	StageQuery:          "query",
	StageShardScan:      "shard_scan",
	StageBufferScan:     "buffer_scan",
	StageMerge:          "merge",
	StageEncode:         "encode",
	StageRerank:         "rerank",
	StageIndexApply:     "index_apply",
	StageWALAppend:      "wal_append",
	StageWALFsync:       "wal_fsync",
	StageCkptSnapshot:   "ckpt_snapshot",
	StageCkptWrite:      "ckpt_write",
	StageCkptManifest:   "ckpt_manifest",
	StageCkptTruncate:   "ckpt_truncate",
	StageRecoveryReplay: "recovery_replay",
	StageFilter:         "filter",
	StageCursorResume:   "cursor_resume",
}

// String returns the stage's exposition label value.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Span is one timed phase inside a Trace. Start and Dur are offsets
// relative to the trace start, so a span tree is self-contained and
// serializes compactly. Shard is -1 for spans not tied to a shard.
// Rows and Cands carry stage-specific counters: for a CSA shard scan,
// Rows is the number of hash-string comparisons performed by the
// circular binary searches and Cands the number of candidates
// verified with exact distances; for a buffer scan both count the
// vectors scanned (every buffered vector is distance-verified).
type Span struct {
	Stage  Stage
	Shard  int // shard ordinal, or -1
	Parent int // index of parent span within the trace, or -1
	Start  time.Duration
	Dur    time.Duration
	Rows   int64
	Cands  int64
	// Bytes is the vector-block memory traffic attributed to the span
	// (scan and gather kernels); 0 for stages that touch no vectors.
	Bytes int64
}

// Trace accumulates spans for a single traced request. All methods
// are nil-safe: a nil *Trace is the untraced fast path and every
// method returns immediately. A mutex guards the span slice because
// the sharded fan-out records spans from worker goroutines.
type Trace struct {
	ID    uint64
	start time.Time

	mu    sync.Mutex
	spans []Span
}

var (
	tracePool = sync.Pool{New: func() any {
		poolMisses.Add(1)
		return &Trace{spans: make([]Span, 0, 16)}
	}}
	poolGets   atomic.Uint64
	poolMisses atomic.Uint64
)

// GetTrace draws a reset Trace from the pool and stamps it with the
// given request id. Pair with PutTrace.
func GetTrace(id uint64) *Trace {
	poolGets.Add(1)
	t := tracePool.Get().(*Trace)
	t.ID = id
	t.start = time.Now()
	t.spans = t.spans[:0]
	return t
}

// PutTrace returns a Trace to the pool. Safe on nil.
func PutTrace(t *Trace) {
	if t == nil {
		return
	}
	tracePool.Put(t)
}

// PoolStats reports cumulative Trace pool gets and misses (a miss
// allocated a fresh Trace). The hit rate is (gets-misses)/gets.
func PoolStats() (gets, misses uint64) {
	return poolGets.Load(), poolMisses.Load()
}

// Start returns the wall-clock instant the trace began.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// StartSpan opens a span and returns its index for FinishSpan.
// parent is the index of the enclosing span, or -1 for a root span.
// Returns -1 on a nil trace.
func (t *Trace) StartSpan(stage Stage, parent int) int {
	return t.StartShardSpan(stage, parent, -1)
}

// StartShardSpan is StartSpan carrying a shard ordinal.
func (t *Trace) StartShardSpan(stage Stage, parent, shard int) int {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	idx := len(t.spans)
	t.spans = append(t.spans, Span{
		Stage:  stage,
		Shard:  shard,
		Parent: parent,
		Start:  time.Since(t.start),
		Dur:    -1,
	})
	t.mu.Unlock()
	return idx
}

// FinishSpan closes the span at idx and returns its duration, so the
// caller can feed the same measurement into the stage histogram
// without a second clock read. No-op (returning 0) on a nil trace.
func (t *Trace) FinishSpan(idx int) time.Duration {
	return t.FinishSpanN(idx, 0, 0)
}

// FinishSpanN is FinishSpan recording stage counters.
func (t *Trace) FinishSpanN(idx int, rows, cands int64) time.Duration {
	return t.FinishSpanCost(idx, rows, cands, 0)
}

// FinishSpanCost is FinishSpanN also recording the span's vector-block
// byte traffic.
func (t *Trace) FinishSpanCost(idx int, rows, cands, bytes int64) time.Duration {
	if t == nil || idx < 0 {
		return 0
	}
	now := time.Since(t.start)
	t.mu.Lock()
	sp := &t.spans[idx]
	sp.Dur = now - sp.Start
	sp.Rows = rows
	sp.Cands = cands
	sp.Bytes = bytes
	d := sp.Dur
	t.mu.Unlock()
	return d
}

// AddSpan records an already-measured span (the caller timed the
// phase itself, typically because untraced requests measure it too).
func (t *Trace) AddSpan(stage Stage, parent int, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{
		Stage:  stage,
		Shard:  -1,
		Parent: parent,
		Start:  start.Sub(t.start),
		Dur:    dur,
	})
	t.mu.Unlock()
}

// Len reports the number of recorded spans. Zero on nil.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	n := len(t.spans)
	t.mu.Unlock()
	return n
}

// Cap reports the capacity of the span slice (for pool-reuse tests).
func (t *Trace) Cap() int {
	if t == nil {
		return 0
	}
	return cap(t.spans)
}

// SpanNode is the JSON form of a span, with children nested.
type SpanNode struct {
	Stage    string     `json:"stage"`
	Shard    *int       `json:"shard,omitempty"`
	StartUS  float64    `json:"start_us"`
	DurUS    float64    `json:"dur_us"`
	Rows     int64      `json:"rows,omitempty"`
	Cands    int64      `json:"candidates,omitempty"`
	Bytes    int64      `json:"bytes,omitempty"`
	Children []SpanNode `json:"children,omitempty"`
}

// Tree renders the recorded spans as a forest of SpanNodes, children
// nested under their parents in recording order. Spans never
// finished render with dur_us -1. Returns nil on a nil trace.
func (t *Trace) Tree() []SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()
	return buildTree(spans)
}

func buildTree(spans []Span) []SpanNode {
	if len(spans) == 0 {
		return nil
	}
	nodes := make([]SpanNode, len(spans))
	for i, sp := range spans {
		nodes[i] = SpanNode{
			Stage:   sp.Stage.String(),
			StartUS: float64(sp.Start) / float64(time.Microsecond),
			DurUS:   float64(sp.Dur) / float64(time.Microsecond),
			Rows:    sp.Rows,
			Cands:   sp.Cands,
			Bytes:   sp.Bytes,
		}
		if sp.Shard >= 0 {
			sh := sp.Shard
			nodes[i].Shard = &sh
		}
	}
	// Attach children to parents in a reverse pass so each child is
	// fully assembled (with its own children) before being appended.
	var roots []SpanNode
	for i := len(spans) - 1; i >= 0; i-- {
		p := spans[i].Parent
		if p >= 0 && p < len(spans) && p != i {
			// Prepend to keep recording order among siblings.
			nodes[p].Children = append([]SpanNode{nodes[i]}, nodes[p].Children...)
		}
	}
	for i, sp := range spans {
		if sp.Parent < 0 || sp.Parent >= len(spans) || sp.Parent == i {
			roots = append(roots, nodes[i])
		}
	}
	return roots
}
