package obs

import (
	"sync"
	"time"
)

// Health is an in-process, dependency-free time-series of request
// health: every request is dual-written into a per-second ring
// covering the last two minutes and a per-minute ring covering the
// last hour, so /v1/debug/health can answer windowed RED questions
// (rate, errors, duration percentiles) plus usage rates (bytes
// scanned, WAL bytes, cache outcomes) at two resolutions without any
// external metrics store. Buckets are stamp-invalidated: a slot is
// reset lazily when its wall-clock second (or minute) comes around
// again, so an idle series costs nothing and stale data can never
// leak into a window.
//
// Record takes one short mutex critical section (a handful of adds),
// matching the serving layer's request-counting precedent; the search
// hot path itself never touches a Health — recording happens once per
// HTTP request, not per shard.
const (
	healthSecSlots = 120 // per-second ring: ~2 minutes
	healthMinSlots = 60  // per-minute ring: ~1 hour
)

// HealthSample is one finished request (or admission rejection) to
// record.
type HealthSample struct {
	// Dur is the request's total latency (ignored for rejections). A
	// negative Dur counts the request without a latency observation —
	// the error paths use it so failure storms cannot skew the latency
	// percentiles with meaningless near-zero durations.
	Dur time.Duration
	// Err marks a failed request.
	Err bool
	// Rejected marks an admission rejection — counted separately, not
	// as a served request.
	Rejected bool
	// Comparisons, BytesScanned, WALBytes meter the request's work.
	Comparisons  int64
	BytesScanned int64
	WALBytes     int64
	// CacheHit / CacheMiss record a result-cache outcome (both false
	// when the cache was not consulted).
	CacheHit  bool
	CacheMiss bool
}

// healthBucket accumulates one second (or one minute) of samples.
type healthBucket struct {
	stamp        int64 // unix second or minute this slot covers; 0 = empty
	requests     uint64
	errors       uint64
	rejected     uint64
	comparisons  int64
	bytesScanned int64
	walBytes     int64
	cacheHits    uint64
	cacheMisses  uint64
	latCount     uint64 // requests that carried a latency observation
	latSumNS     int64
	lat          [numStageBuckets + 1]uint32 // power-of-two µs, as stagehist
}

// add folds one sample into the bucket.
func (b *healthBucket) add(s HealthSample) {
	if s.Rejected {
		b.rejected++
		return
	}
	b.requests++
	if s.Err {
		b.errors++
	}
	b.comparisons += s.Comparisons
	b.bytesScanned += s.BytesScanned
	b.walBytes += s.WALBytes
	if s.CacheHit {
		b.cacheHits++
	}
	if s.CacheMiss {
		b.cacheMisses++
	}
	if s.Dur >= 0 {
		b.latCount++
		b.latSumNS += int64(s.Dur)
		b.lat[stageBucketIdx(s.Dur)]++
	}
}

// Health is one ring-buffer time-series. The zero value is ready to
// use.
type Health struct {
	mu  sync.Mutex
	sec [healthSecSlots]healthBucket
	min [healthMinSlots]healthBucket
}

// Record folds one sample into both rings at time now.
func (h *Health) Record(now time.Time, s HealthSample) {
	secStamp := now.Unix()
	minStamp := secStamp / 60
	h.mu.Lock()
	slot := &h.sec[secStamp%healthSecSlots]
	if slot.stamp != secStamp {
		*slot = healthBucket{stamp: secStamp}
	}
	slot.add(s)
	slot = &h.min[minStamp%healthMinSlots]
	if slot.stamp != minStamp {
		*slot = healthBucket{stamp: minStamp}
	}
	slot.add(s)
	h.mu.Unlock()
}

// HealthWindow is the merged view of one trailing window.
type HealthWindow struct {
	// Window and Resolution describe the merge: the trailing span and
	// the ring it was answered from ("1s" or "1m").
	Window     string `json:"window"`
	Resolution string `json:"resolution"`
	// Requests, Errors, Rejected are totals inside the window.
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	// Rejected counts admission rejections (not included in Requests).
	Rejected uint64 `json:"rejected"`
	// ErrorRate is Errors/Requests (0 when idle).
	ErrorRate float64 `json:"error_rate"`
	// RPS is Requests divided by the window span.
	RPS float64 `json:"rps"`
	// P50Ms / P99Ms are latency percentiles from the merged power-of-two
	// histogram (bucket upper bounds, so quantized but never understated);
	// MeanMs is exact.
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	// Usage rates inside the window.
	Comparisons  int64  `json:"comparisons"`
	BytesScanned int64  `json:"bytes_scanned"`
	WALBytes     int64  `json:"wal_bytes"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
}

// Window merges the trailing span ending at now. Spans up to two
// minutes are answered from the per-second ring; longer spans (up to
// an hour) from the per-minute ring. The bucket containing now is
// included, so the newest data is visible immediately (at the cost of
// that bucket being partial).
func (h *Health) Window(now time.Time, span time.Duration) HealthWindow {
	if span <= 0 {
		span = time.Minute
	}
	var (
		merged healthBucket
		lat    [numStageBuckets + 1]uint64
		res    string
	)
	h.mu.Lock()
	if span <= healthSecSlots*time.Second {
		res = "1s"
		secs := int64((span + time.Second - 1) / time.Second)
		lo := now.Unix() - secs + 1
		for i := range h.sec {
			if b := &h.sec[i]; b.stamp >= lo && b.stamp <= now.Unix() {
				mergeBucket(&merged, &lat, b)
			}
		}
	} else {
		res = "1m"
		mins := int64((span + time.Minute - 1) / time.Minute)
		hi := now.Unix() / 60
		lo := hi - mins + 1
		for i := range h.min {
			if b := &h.min[i]; b.stamp >= lo && b.stamp <= hi {
				mergeBucket(&merged, &lat, b)
			}
		}
	}
	h.mu.Unlock()

	w := HealthWindow{
		Window:       span.String(),
		Resolution:   res,
		Requests:     merged.requests,
		Errors:       merged.errors,
		Rejected:     merged.rejected,
		RPS:          float64(merged.requests) / span.Seconds(),
		Comparisons:  merged.comparisons,
		BytesScanned: merged.bytesScanned,
		WALBytes:     merged.walBytes,
		CacheHits:    merged.cacheHits,
		CacheMisses:  merged.cacheMisses,
	}
	if merged.requests > 0 {
		w.ErrorRate = float64(merged.errors) / float64(merged.requests)
	}
	if merged.latCount > 0 {
		w.MeanMs = float64(merged.latSumNS) / float64(merged.latCount) / 1e6
		w.P50Ms = latQuantileMs(&lat, merged.latCount, 0.50)
		w.P99Ms = latQuantileMs(&lat, merged.latCount, 0.99)
	}
	return w
}

// mergeBucket folds b into the accumulator (latency histogram widened
// to uint64 so an hour of merges cannot overflow).
func mergeBucket(dst *healthBucket, lat *[numStageBuckets + 1]uint64, b *healthBucket) {
	dst.requests += b.requests
	dst.errors += b.errors
	dst.rejected += b.rejected
	dst.comparisons += b.comparisons
	dst.bytesScanned += b.bytesScanned
	dst.walBytes += b.walBytes
	dst.cacheHits += b.cacheHits
	dst.cacheMisses += b.cacheMisses
	dst.latCount += b.latCount
	dst.latSumNS += b.latSumNS
	for i, c := range b.lat {
		lat[i] += uint64(c)
	}
}

// latQuantileMs reads quantile q from the merged histogram, reporting
// the upper bound of the bucket holding the q-th observation in
// milliseconds (+Inf clamps to the largest finite bound).
func latQuantileMs(lat *[numStageBuckets + 1]uint64, total uint64, q float64) float64 {
	// floor(q·N)+1 rather than nearest-rank, so a 1-in-100 outlier is
	// visible in p99 of exactly 100 samples.
	rank := uint64(q*float64(total)) + 1
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i <= numStageBuckets; i++ {
		cum += lat[i]
		if cum >= rank {
			if i == numStageBuckets {
				break // +Inf: fall through to the largest finite bound
			}
			return stageBucketBound(i) * 1e3 // seconds → ms
		}
	}
	return stageBucketBound(numStageBuckets-1) * 1e3
}
