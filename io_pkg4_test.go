package lccs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenQuantizedSetup mirrors goldenSetup with SQ8 quantization turned
// on — the deterministic inputs behind testdata/golden_pkg4.lccs.
func goldenQuantizedSetup() ([][]float32, Config) {
	data, cfg := goldenSetup()
	cfg.Quantize = QuantizeSQ8
	cfg.Rerank = 24
	return data, cfg
}

// TestGoldenFormat4 pins the quantized container: a format-4 (LCCSPKG4)
// file keeps loading with its codebooks, codes, and re-rank depth
// intact, serves identical results to a fresh quantized build, and
// re-encodes byte for byte.
func TestGoldenFormat4(t *testing.T) {
	const path = "testdata/golden_pkg4.lccs"
	data, cfg := goldenQuantizedSetup()
	fresh, err := NewShardedIndex(data, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Save(path); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob[:8]) != "LCCSPKG4" {
		t.Fatalf("golden format-4 magic %q", blob[:8])
	}
	loaded, err := LoadSharded(path, data)
	if err != nil {
		t.Fatalf("golden format-4 file no longer loads: %v", err)
	}
	if loaded.Shards() != 3 || loaded.Len() != len(data) {
		t.Fatalf("golden shape: shards=%d len=%d", loaded.Shards(), loaded.Len())
	}
	for s := 0; s < loaded.Shards(); s++ {
		shard, _ := loaded.Shard(s)
		if kind, rerank := shard.Quantization(); kind != QuantizeSQ8 || rerank != cfg.Rerank {
			t.Fatalf("shard %d quantization (%q, %d), want (%q, %d)", s, kind, rerank, QuantizeSQ8, cfg.Rerank)
		}
	}
	for qi := 0; qi < 10; qi++ {
		q := data[qi*7]
		a, b := must(fresh.SearchBudget(q, 5, 40)), must(loaded.SearchBudget(q, 5, 40))
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query %d pos %d: %+v vs %+v", qi, j, a[j], b[j])
			}
		}
	}
	// Load → re-save reproduces the golden file byte for byte: the
	// quantized tail (codebooks, norms, codes, re-rank depth) encodes
	// deterministically from the restored state.
	resaved := filepath.Join(t.TempDir(), "pkg4.lccs")
	if err := loaded.Save(resaved); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(resaved)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, got) {
		t.Fatalf("format-4 re-encode differs from golden: %d vs %d bytes", len(got), len(blob))
	}
	// A format-4 sharded container is not a single-index file.
	if _, err := Load(path, data); err == nil {
		t.Fatal("Load accepted a sharded format-4 container")
	}
}

// TestFormat4SingleRoundTrip pins the single-index quantized container:
// Save writes LCCSPKG4, Load restores the quantized store with exact
// search parity and byte-identical re-encode.
func TestFormat4SingleRoundTrip(t *testing.T) {
	data, cfg := goldenQuantizedSetup()
	ix, err := NewIndex(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "single.lccs")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob[:8]) != "LCCSPKG4" {
		t.Fatalf("quantized single index wrote magic %q, want LCCSPKG4", blob[:8])
	}
	loaded, err := Load(path, data)
	if err != nil {
		t.Fatal(err)
	}
	if kind, rerank := loaded.Quantization(); kind != QuantizeSQ8 || rerank != cfg.Rerank {
		t.Fatalf("loaded quantization (%q, %d), want (%q, %d)", kind, rerank, QuantizeSQ8, cfg.Rerank)
	}
	for qi := 0; qi < 10; qi++ {
		q := data[qi*11]
		a, b := must(ix.SearchBudget(q, 5, 40)), must(loaded.SearchBudget(q, 5, 40))
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query %d pos %d: %+v vs %+v", qi, j, a[j], b[j])
			}
		}
	}
	resaved := filepath.Join(dir, "resaved.lccs")
	if err := loaded.Save(resaved); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(resaved)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, got) {
		t.Fatalf("single format-4 re-encode differs: %d vs %d bytes", len(got), len(blob))
	}
	// The migration path works for quantized files too: a single-index
	// format-4 file opens as one quantized shard.
	wrapped, err := LoadSharded(path, data)
	if err != nil {
		t.Fatal(err)
	}
	shard, _ := wrapped.Shard(0)
	if kind, _ := shard.Quantization(); kind != QuantizeSQ8 {
		t.Fatalf("wrapped single format-4 lost quantization (kind %q)", kind)
	}
}

// TestFormat4WithLifecycle pins the combination: a quantized dynamic
// snapshot carrying tombstones and an id map writes one format-4 file
// holding both the lifecycle tail and the quantized tail, and both
// survive the round trip (byte-identically on re-encode).
func TestFormat4WithLifecycle(t *testing.T) {
	data, cfg := goldenQuantizedSetup()
	d, err := NewDynamicIndex(data, cfg, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{3, 77} {
		if !d.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
	}
	vectors, sx, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sx.Deleted() != 2 {
		t.Fatalf("snapshot has %d tombstones, want 2", sx.Deleted())
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "quantlife.lccs")
	if err := sx.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob[:8]) != "LCCSPKG4" {
		t.Fatalf("quantized lifecycle snapshot wrote magic %q, want LCCSPKG4", blob[:8])
	}
	loaded, err := LoadSharded(path, vectors)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Deleted() != 2 {
		t.Fatalf("loaded %d tombstones, want 2", loaded.Deleted())
	}
	shard, _ := loaded.Shard(0)
	if kind, _ := shard.Quantization(); kind != QuantizeSQ8 {
		t.Fatalf("lifecycle format-4 lost quantization (kind %q)", kind)
	}
	exhaustive := 4 * len(vectors)
	for _, deadID := range []int{3, 77} {
		for _, nb := range must(loaded.SearchBudget(vectors[deadID], 10, exhaustive)) {
			if nb.ID == deadID {
				t.Fatalf("tombstone %d resurrected", deadID)
			}
		}
	}
	for qi := 0; qi < 10; qi++ {
		q := vectors[qi*13]
		a, b := must(sx.SearchBudget(q, 5, exhaustive)), must(loaded.SearchBudget(q, 5, exhaustive))
		if len(a) != len(b) {
			t.Fatalf("query %d: lengths differ", qi)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query %d pos %d: %+v vs %+v", qi, j, a[j], b[j])
			}
		}
	}
	resaved := filepath.Join(dir, "resaved.lccs")
	if err := loaded.Save(resaved); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(resaved)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, got) {
		t.Fatalf("lifecycle format-4 re-encode differs: %d vs %d bytes", len(got), len(blob))
	}
}

// TestFormat4CorruptQuantSection truncates and corrupts the quantized
// tail and checks every damage pattern is an error, never a panic or a
// silently unquantized index.
func TestFormat4CorruptQuantSection(t *testing.T) {
	data, cfg := goldenQuantizedSetup()
	sx, err := NewShardedIndex(data, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "ok.lccs")
	if err := sx.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 7, 64, 1024} {
		p := filepath.Join(dir, "cut.lccs")
		if err := os.WriteFile(p, blob[:len(blob)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadSharded(p, data); err == nil {
			t.Fatalf("truncated quant section (-%d bytes) loaded", cut)
		}
	}
	// A corrupt container-kind byte (right after the magic) is rejected.
	bad := append([]byte(nil), blob...)
	bad[8] = 9
	p := filepath.Join(dir, "badkind.lccs")
	if err := os.WriteFile(p, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSharded(p, data); err == nil {
		t.Fatal("corrupt container kind loaded")
	}
	// A corrupt lifecycle flag byte is rejected.
	bad = append([]byte(nil), blob...)
	bad[9] = 7
	p = filepath.Join(dir, "badflag.lccs")
	if err := os.WriteFile(p, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSharded(p, data); err == nil {
		t.Fatal("corrupt lifecycle flag loaded")
	}
}

// TestQuantizeConfigValidation pins the facade-level contract: SQ8 on a
// set metric and negative or unknown knobs are rejected up front.
func TestQuantizeConfigValidation(t *testing.T) {
	data, _ := testData(60, 100, 8, 4, 0.5)
	bin := make([][]float32, len(data))
	for i, v := range data {
		b := make([]float32, len(v))
		for j, x := range v {
			if x > 0 {
				b[j] = 1
			}
		}
		bin[i] = b
	}
	if _, err := NewIndex(bin, Config{Metric: Hamming, M: 16, Quantize: QuantizeSQ8}); err == nil {
		t.Fatal("SQ8 on hamming should fail")
	}
	if _, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Quantize: "pq"}); err == nil {
		t.Fatal("unknown quantization should fail")
	}
	if _, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Quantize: QuantizeSQ8, Rerank: -1}); err == nil {
		t.Fatal("negative rerank should fail")
	}
}
