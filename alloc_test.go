package lccs

import (
	"testing"
)

// allocWorkload builds a clustered dataset plus queries derived from
// perturbed data points.
func allocWorkload(seed uint64, n, d int) (data, queries [][]float32) {
	data, g := testData(seed, n, d, 8, 0.5)
	queries = make([][]float32, 32)
	for i := range queries {
		base := data[g.IntN(n)]
		q := make([]float32, d)
		for j := range q {
			q[j] = base[j] + float32(g.NormFloat64()*0.1)
		}
		queries[i] = q
	}
	return data, queries
}

// warmSearcher runs enough queries through ix to grow every pooled
// buffer (searcher heaps, hash-string and result buffers, shard lists)
// to its steady-state working size, returning a reusable result row.
func warmSearcher(tb testing.TB, ix Searcher, queries [][]float32, k, lambda int) []Neighbor {
	tb.Helper()
	var dst []Neighbor
	var err error
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			dst, err = ix.SearchBudgetInto(q, k, lambda, dst)
			if err != nil {
				tb.Fatal(err)
			}
		}
	}
	return dst
}

// TestSearchZeroAllocIndex pins the tentpole property on the single
// Index: a warmed steady-state SearchBudgetInto performs zero heap
// allocations per query. GOMAXPROCS is held at 1 for the measurement so
// a mid-run GC cannot strip the sync.Pool and charge a pool refill to
// the measured function.
func TestSearchZeroAllocIndex(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector instrumentation; run without -race")
	}
	data, queries := allocWorkload(41, 2000, 12)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const k, lambda = 10, 40
	dst := warmSearcher(t, ix, queries, k, lambda)

	qi := 0
	allocs := testing.AllocsPerRun(200, func() {
		q := queries[qi%len(queries)]
		qi++
		dst, err = ix.SearchBudgetInto(q, k, lambda, dst)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Index.SearchBudgetInto: %v allocs/op, want 0", allocs)
	}
}

// TestSearchZeroAllocSharded pins the same property across the shard
// fan-out: sequential per-shard search, pooled per-shard lists, and the
// reusable tournament merge together make ShardedIndex.SearchBudgetInto
// allocation-free at steady state.
func TestSearchZeroAllocSharded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector instrumentation; run without -race")
	}
	data, queries := allocWorkload(42, 2000, 12)
	sx, err := NewShardedIndex(data, Config{Metric: Euclidean, M: 16, Seed: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	const k, lambda = 10, 40
	dst := warmSearcher(t, sx, queries, k, lambda)

	qi := 0
	allocs := testing.AllocsPerRun(200, func() {
		q := queries[qi%len(queries)]
		qi++
		dst, err = sx.SearchBudgetInto(q, k, lambda, dst)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ShardedIndex.SearchBudgetInto: %v allocs/op, want 0", allocs)
	}
}

// TestSearchZeroAllocSQ8 extends the zero-allocation gate to the
// quantized search path: the SQ8 gather (pooled adjusted-query state
// and score buffers) plus the exact re-rank must add no per-query heap
// traffic on either facade.
func TestSearchZeroAllocSQ8(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector instrumentation; run without -race")
	}
	data, queries := allocWorkload(45, 2000, 12)
	const k, lambda = 10, 40
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Seed: 3, Quantize: QuantizeSQ8})
	if err != nil {
		t.Fatal(err)
	}
	if kind, rerank := ix.Quantization(); kind != QuantizeSQ8 || rerank <= 0 {
		t.Fatalf("Quantization() = (%q, %d), want active sq8", kind, rerank)
	}
	dst := warmSearcher(t, ix, queries, k, lambda)
	qi := 0
	allocs := testing.AllocsPerRun(200, func() {
		q := queries[qi%len(queries)]
		qi++
		dst, err = ix.SearchBudgetInto(q, k, lambda, dst)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("quantized Index.SearchBudgetInto: %v allocs/op, want 0", allocs)
	}

	sx, err := NewShardedIndex(data, Config{Metric: Euclidean, M: 16, Seed: 3, Quantize: QuantizeSQ8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	dst = warmSearcher(t, sx, queries, k, lambda)
	qi = 0
	allocs = testing.AllocsPerRun(200, func() {
		q := queries[qi%len(queries)]
		qi++
		dst, err = sx.SearchBudgetInto(q, k, lambda, dst)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("quantized ShardedIndex.SearchBudgetInto: %v allocs/op, want 0", allocs)
	}
}

// TestSearchAllocBoundAllocatingAPI bounds the classic allocating Search
// API: after the pooled-context refactor the only per-call allocation
// left should be the returned result slice (and its growth), not the
// internal scratch.
func TestSearchAllocBoundAllocatingAPI(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector instrumentation; run without -race")
	}
	data, queries := allocWorkload(43, 2000, 12)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const k, lambda = 10, 40
	warmSearcher(t, ix, queries, k, lambda)
	qi := 0
	allocs := testing.AllocsPerRun(200, func() {
		q := queries[qi%len(queries)]
		qi++
		if _, err := ix.SearchBudget(q, k, lambda); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("Index.SearchBudget: %v allocs/op, want ≤ 2 (result slice only)", allocs)
	}
}

// TestSearchBatchAllocBound bounds the batch engine: per query, the only
// allocations should be the caller-owned result row (plus a small
// constant for the worker pool and the out/err tables).
func TestSearchBatchAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector instrumentation; run without -race")
	}
	data, queries := allocWorkload(44, 2000, 12)
	sx, err := NewShardedIndex(data, Config{Metric: Euclidean, M: 16, Seed: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	const k, lambda = 10, 40
	if _, err := sx.SearchBatchBudget(queries, k, lambda); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := sx.SearchBatchBudget(queries, k, lambda); err != nil {
			t.Fatal(err)
		}
	})
	perQuery := allocs / float64(len(queries))
	// One result row per query is inherent to the API; the bound allows
	// it plus batch-engine overhead amortized across the batch.
	if perQuery > 4 {
		t.Fatalf("SearchBatchBudget: %.2f allocs per query (%.0f total for %d queries), want ≤ 4",
			perQuery, allocs, len(queries))
	}
}

// TestSearchZeroAllocCosted extends the zero-allocation gate to the
// metered path: SearchCostInto with a live cost record (untraced,
// unfiltered) must stay allocation-free on every facade, so per-tenant
// usage accounting is literally free on the steady-state hot path.
func TestSearchZeroAllocCosted(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector instrumentation; run without -race")
	}
	data, queries := allocWorkload(46, 2000, 12)
	const k, lambda = 10, 40

	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sx, err := NewShardedIndex(data, Config{Metric: Euclidean, M: 16, Seed: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}

	var co Cost
	for _, tc := range []struct {
		name string
		cs   CostSearcher
	}{{"Index", ix}, {"ShardedIndex", sx}, {"DynamicIndex", dx}} {
		// Warm the pooled scratch through the metered call itself.
		var dst []Neighbor
		for round := 0; round < 3; round++ {
			for _, q := range queries {
				co.Reset()
				if dst, err = tc.cs.SearchCostInto(q, k, lambda, nil, dst, &co, nil); err != nil {
					t.Fatal(err)
				}
			}
		}
		if co.Comparisons <= 0 || co.BytesScanned <= 0 {
			t.Fatalf("%s: cost record not populated: %+v", tc.name, co)
		}
		qi := 0
		allocs := testing.AllocsPerRun(200, func() {
			q := queries[qi%len(queries)]
			qi++
			co.Reset()
			dst, err = tc.cs.SearchCostInto(q, k, lambda, nil, dst, &co, nil)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s.SearchCostInto: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}
