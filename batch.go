package lccs

import (
	"runtime"
	"sync"
)

// SearchBatch answers many queries concurrently across all CPUs with the
// index's default candidate budget; results are returned in query order.
// Each query's result slice matches what Search would return.
func (ix *Index) SearchBatch(queries [][]float32, k int) [][]Neighbor {
	return ix.SearchBatchBudget(queries, k, ix.budget)
}

// SearchBatchBudget is SearchBatch with an explicit candidate budget λ.
func (ix *Index) SearchBatchBudget(queries [][]float32, k, lambda int) [][]Neighbor {
	out := make([][]Neighbor, len(queries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		for i, q := range queries {
			out[i] = ix.SearchBudget(q, k, lambda)
		}
		return out
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				out[i] = ix.SearchBudget(queries[i], k, lambda)
			}
		}()
	}
	for i := range queries {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return out
}
