package lccs

import (
	"runtime"
	"sync"
)

// budgetSearcher is any index shape that answers a single budgeted query;
// both Index and ShardedIndex satisfy it, so they share one batch engine.
type budgetSearcher interface {
	SearchBudget(q []float32, k, lambda int) []Neighbor
}

// searchBatch answers many queries concurrently across all CPUs; results
// are returned in query order and each row is byte-identical to what a
// sequential SearchBudget call would return.
func searchBatch(ix budgetSearcher, queries [][]float32, k, lambda int) [][]Neighbor {
	out := make([][]Neighbor, len(queries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		for i, q := range queries {
			out[i] = ix.SearchBudget(q, k, lambda)
		}
		return out
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				out[i] = ix.SearchBudget(queries[i], k, lambda)
			}
		}()
	}
	for i := range queries {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return out
}

// SearchBatch answers many queries concurrently across all CPUs with the
// index's default candidate budget; results are returned in query order.
// Each query's result slice matches what Search would return.
func (ix *Index) SearchBatch(queries [][]float32, k int) [][]Neighbor {
	return ix.SearchBatchBudget(queries, k, ix.budget)
}

// SearchBatchBudget is SearchBatch with an explicit candidate budget λ.
func (ix *Index) SearchBatchBudget(queries [][]float32, k, lambda int) [][]Neighbor {
	return searchBatch(ix, queries, k, lambda)
}

// SearchBatch answers many queries concurrently with the index's default
// candidate budget; results are returned in query order. When the batch
// has at least GOMAXPROCS queries the worker pool already saturates the
// CPUs, so each query runs its shard fan-out sequentially; smaller
// batches keep the per-shard fan-out so idle cores still help.
func (sx *ShardedIndex) SearchBatch(queries [][]float32, k int) [][]Neighbor {
	return sx.SearchBatchBudget(queries, k, sx.budget)
}

// SearchBatchBudget is SearchBatch with an explicit candidate budget λ.
func (sx *ShardedIndex) SearchBatchBudget(queries [][]float32, k, lambda int) [][]Neighbor {
	if len(queries) >= runtime.GOMAXPROCS(0) {
		return searchBatch(seqShardSearcher{sx}, queries, k, lambda)
	}
	return searchBatch(sx, queries, k, lambda)
}

// seqShardSearcher runs a sharded query without the per-shard goroutine
// fan-out, for use inside an already saturated batch worker pool. Results
// are identical to ShardedIndex.SearchBudget — the merge is deterministic
// either way.
type seqShardSearcher struct{ sx *ShardedIndex }

func (s seqShardSearcher) SearchBudget(q []float32, k, lambda int) []Neighbor {
	return s.sx.searchBudget(q, k, lambda, false)
}
