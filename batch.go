package lccs

import (
	"runtime"
	"sync"
)

// budgetSearcher is any index shape that answers a single budgeted query
// into a caller buffer; Index, ShardedIndex, and DynamicIndex all satisfy
// it, so they share one batch engine.
type budgetSearcher interface {
	SearchBudgetInto(q []float32, k, lambda int, dst []Neighbor) ([]Neighbor, error)
}

// searchBatch answers many queries concurrently across all CPUs; results
// are returned in query order and each row is byte-identical to what a
// sequential SearchBudget call would return. The first per-query
// validation error fails the whole batch; k and λ are checked up front
// so even an empty batch holds the shared validation contract.
//
// Workers share the backend's pooled search contexts and reuse one
// scratch row each, so the only per-query allocation left is the result
// row handed back to the caller.
func searchBatch(ix budgetSearcher, queries [][]float32, k, lambda int) ([][]Neighbor, error) {
	if k <= 0 {
		return nil, ErrInvalidK
	}
	if lambda <= 0 {
		return nil, ErrInvalidBudget
	}
	out := make([][]Neighbor, len(queries))
	errs := make([]error, len(queries))
	// run answers query i into a worker-owned scratch row and copies the
	// result out, so the backend's Into path never allocates beyond the
	// returned row.
	run := func(i int, scratch []Neighbor) []Neighbor {
		res, err := ix.SearchBudgetInto(queries[i], k, lambda, scratch)
		if err != nil {
			errs[i] = err
			return scratch
		}
		out[i] = append(make([]Neighbor, 0, len(res)), res...)
		return res
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		var scratch []Neighbor
		for i := range queries {
			scratch = run(i, scratch)
		}
		return batchResult(out, errs)
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []Neighbor
			for i := range ch {
				scratch = run(i, scratch)
			}
		}()
	}
	for i := range queries {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return batchResult(out, errs)
}

// batchResult collapses per-query errors: the first one (in query order)
// fails the batch, so callers never see partial results.
func batchResult(out [][]Neighbor, errs []error) ([][]Neighbor, error) {
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SearchBatch answers many queries concurrently across all CPUs with the
// index's default candidate budget; results are returned in query order.
// Each query's result slice matches what Search would return.
func (ix *Index) SearchBatch(queries [][]float32, k int) ([][]Neighbor, error) {
	return ix.SearchBatchBudget(queries, k, ix.budget)
}

// SearchBatchBudget is SearchBatch with an explicit candidate budget λ.
func (ix *Index) SearchBatchBudget(queries [][]float32, k, lambda int) ([][]Neighbor, error) {
	return searchBatch(ix, queries, k, lambda)
}

// SearchBatch answers many queries concurrently with the index's default
// candidate budget; results are returned in query order. When the batch
// has at least GOMAXPROCS queries the worker pool already saturates the
// CPUs, so each query runs its shard fan-out sequentially; smaller
// batches keep the per-shard fan-out so idle cores still help.
func (sx *ShardedIndex) SearchBatch(queries [][]float32, k int) ([][]Neighbor, error) {
	return sx.SearchBatchBudget(queries, k, sx.budget)
}

// SearchBatchBudget is SearchBatch with an explicit candidate budget λ.
func (sx *ShardedIndex) SearchBatchBudget(queries [][]float32, k, lambda int) ([][]Neighbor, error) {
	if len(queries) >= runtime.GOMAXPROCS(0) {
		return searchBatch(seqShardSearcher{sx}, queries, k, lambda)
	}
	return searchBatch(parShardSearcher{sx}, queries, k, lambda)
}

// seqShardSearcher runs a sharded query without the per-shard goroutine
// fan-out, for use inside an already saturated batch worker pool. Results
// are identical to ShardedIndex.SearchBudget — the merge is deterministic
// either way.
type seqShardSearcher struct{ sx *ShardedIndex }

func (s seqShardSearcher) SearchBudgetInto(q []float32, k, lambda int, dst []Neighbor) ([]Neighbor, error) {
	return s.sx.searchBudgetInto(q, k, lambda, false, dst, nil)
}

// parShardSearcher keeps the per-shard fan-out inside each worker, for
// small batches that leave cores idle.
type parShardSearcher struct{ sx *ShardedIndex }

func (s parShardSearcher) SearchBudgetInto(q []float32, k, lambda int, dst []Neighbor) ([]Neighbor, error) {
	return s.sx.searchBudgetInto(q, k, lambda, true, dst, nil)
}
