module lccs

go 1.22
