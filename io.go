package lccs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"lccs/internal/core"
	"lccs/internal/idmap"
	"lccs/internal/lshfamily"
	"lccs/internal/vec"
)

// pkgMagic versions the facade's on-disk index format: a single-Index
// file (format 1).
var pkgMagic = [8]byte{'L', 'C', 'C', 'S', 'P', 'K', 'G', '1'}

// pkgMagic2 is the sharded container (format 2): the same configuration
// header as format 1 followed by a shard table and one core index blob per
// shard. Format-1 files remain loadable by both Load and LoadSharded.
var pkgMagic2 = [8]byte{'L', 'C', 'C', 'S', 'P', 'K', 'G', '2'}

// pkgMagic3 is the lifecycle container (format 3): the format-2 layout
// followed by a deletion-lifecycle section — the stable-id map and the
// tombstone set of a dynamic snapshot — so deleted vectors stay deleted
// across a save/load cycle. Save emits format 3 only when lifecycle
// state exists; indexes without it keep writing byte-identical format-2
// (or format-1) files, and both legacy formats keep loading.
var pkgMagic3 = [8]byte{'L', 'C', 'C', 'S', 'P', 'K', 'G', '3'}

// pkgMagic4 is the quantized container (format 4), emitted only when the
// index carries an SQ8 quantized store (Config.Quantize). After the
// magic, a container-kind byte distinguishes a single Index from a
// sharded body; the sharded body is the format-2 layout plus an explicit
// lifecycle-presence flag (formats 2/3 encode that in the magic), and
// both kinds end with a quantization section: the quantizer name, the
// configured re-rank depth, and each shard's codebook (per-dimension
// min/scale), dequantized row norms, and packed int8 codes. Indexes
// without quantization keep writing byte-identical format-1/2/3 files,
// and all three legacy formats keep loading.
var pkgMagic4 = [8]byte{'L', 'C', 'C', 'S', 'P', 'K', 'G', '4'}

// pkgMagic5 is the metadata container (format 5), emitted only when the
// index carries vector attributes. After the magic come a container-kind
// byte and a flags byte selecting the optional sections; the body is the
// usual single or sharded layout, followed by the lifecycle tail and the
// quantization section when flagged, and always ending with the
// attribute section (the per-slot canonical attrs rows). Indexes without
// metadata keep writing byte-identical format-1..4 files, and all four
// legacy formats keep loading.
var pkgMagic5 = [8]byte{'L', 'C', 'C', 'S', 'P', 'K', 'G', '5'}

// Container-kind byte of a format-4/5 file.
const (
	containerSingle  byte = 1
	containerSharded byte = 2
)

// Flags byte of a format-5 file.
const (
	pkg5FlagLifecycle byte = 1 << 0
	pkg5FlagQuantized byte = 1 << 1
	pkg5FlagsKnown         = pkg5FlagLifecycle | pkg5FlagQuantized
)

// Save writes the index to path. The dataset itself is not stored: Load
// must be given the same data slice (same order) the index was built
// over. Saving avoids the sort-dominated build cost on the next start.
func (ix *Index) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := ix.encode(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (ix *Index) encode(w io.Writer) error {
	if !ix.attrs.Empty() {
		qs := ix.single.SQ8()
		var flags byte
		if qs != nil {
			flags |= pkg5FlagQuantized
		}
		if _, err := w.Write(pkgMagic5[:]); err != nil {
			return err
		}
		if _, err := w.Write([]byte{containerSingle, flags}); err != nil {
			return err
		}
		if err := encodeConfig(w, ix.cfg); err != nil {
			return err
		}
		if err := ix.single.Encode(w); err != nil {
			return err
		}
		if qs != nil {
			if err := encodeQuantHeader(w, ix.cfg); err != nil {
				return err
			}
			if err := encodeSQ8(w, qs); err != nil {
				return err
			}
		}
		return encodeAttrsSection(w, ix.attrs)
	}
	if qs := ix.single.SQ8(); qs != nil {
		if _, err := w.Write(pkgMagic4[:]); err != nil {
			return err
		}
		if _, err := w.Write([]byte{containerSingle}); err != nil {
			return err
		}
		if err := encodeConfig(w, ix.cfg); err != nil {
			return err
		}
		if err := ix.single.Encode(w); err != nil {
			return err
		}
		if err := encodeQuantHeader(w, ix.cfg); err != nil {
			return err
		}
		return encodeSQ8(w, qs)
	}
	if _, err := w.Write(pkgMagic[:]); err != nil {
		return err
	}
	if err := encodeConfig(w, ix.cfg); err != nil {
		return err
	}
	return ix.single.Encode(w)
}

// encodeConfig writes the resolved configuration header shared by both
// package formats.
func encodeConfig(w io.Writer, cfg Config) error {
	metric := string(cfg.Metric)
	if err := binary.Write(w, binary.LittleEndian, int32(len(metric))); err != nil {
		return err
	}
	if _, err := w.Write([]byte(metric)); err != nil {
		return err
	}
	hdr := []int64{int64(cfg.M), int64(cfg.Probes), int64(cfg.Budget)}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, cfg.BucketWidth); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, cfg.Seed)
}

// decodeConfig reads the configuration header shared by both package
// formats.
func decodeConfig(r io.Reader) (Config, error) {
	var cfg Config
	var metricLen int32
	if err := binary.Read(r, binary.LittleEndian, &metricLen); err != nil {
		return cfg, err
	}
	if metricLen < 0 || metricLen > 64 {
		return cfg, fmt.Errorf("lccs: corrupt metric length %d", metricLen)
	}
	metricBuf := make([]byte, metricLen)
	if _, err := io.ReadFull(r, metricBuf); err != nil {
		return cfg, err
	}
	var hdr [3]int64
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return cfg, err
	}
	if hdr[0] <= 0 || hdr[1] < 0 || hdr[2] < 0 {
		return cfg, fmt.Errorf("lccs: corrupt config header m=%d probes=%d budget=%d", hdr[0], hdr[1], hdr[2])
	}
	var bucketWidth float64
	if err := binary.Read(r, binary.LittleEndian, &bucketWidth); err != nil {
		return cfg, err
	}
	var seed uint64
	if err := binary.Read(r, binary.LittleEndian, &seed); err != nil {
		return cfg, err
	}
	return Config{
		Metric:      MetricKind(metricBuf),
		M:           int(hdr[0]),
		Probes:      int(hdr[1]),
		Budget:      int(hdr[2]),
		BucketWidth: bucketWidth,
		Seed:        seed,
	}, nil
}

// encodeQuantHeader writes the quantization-section header of a format-4
// file: the quantizer name and the configured re-rank depth (0 when the
// user left the default; the default is re-derived deterministically at
// load time, keeping re-encodes byte-identical).
func encodeQuantHeader(w io.Writer, cfg Config) error {
	if err := binary.Write(w, binary.LittleEndian, int32(len(cfg.Quantize))); err != nil {
		return err
	}
	if _, err := w.Write([]byte(cfg.Quantize)); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, int64(cfg.Rerank))
}

// decodeQuantHeader reads the quantization-section header.
func decodeQuantHeader(r io.Reader) (kind string, rerank int, err error) {
	var kindLen int32
	if err := binary.Read(r, binary.LittleEndian, &kindLen); err != nil {
		return "", 0, err
	}
	if kindLen < 0 || kindLen > 64 {
		return "", 0, fmt.Errorf("lccs: corrupt quantizer name length %d", kindLen)
	}
	kindBuf := make([]byte, kindLen)
	if _, err := io.ReadFull(r, kindBuf); err != nil {
		return "", 0, err
	}
	if string(kindBuf) != QuantizeSQ8 {
		return "", 0, fmt.Errorf("lccs: unknown quantizer %q", kindBuf)
	}
	var rr int64
	if err := binary.Read(r, binary.LittleEndian, &rr); err != nil {
		return "", 0, err
	}
	if rr < 0 {
		return "", 0, fmt.Errorf("lccs: corrupt re-rank depth %d", rr)
	}
	return string(kindBuf), int(rr), nil
}

// encodeSQ8 writes one shard's quantized store: row/dim counts for
// validation, the per-dimension codebook (min, scale), the dequantized
// row norms, and the packed codes.
func encodeSQ8(w io.Writer, qs *vec.SQ8Store) error {
	min, scale, norms, codes := qs.Codebook()
	if err := binary.Write(w, binary.LittleEndian, [2]int64{int64(qs.Len()), int64(qs.Dim())}); err != nil {
		return err
	}
	for _, f32s := range [][]float32{min, scale, norms} {
		if err := binary.Write(w, binary.LittleEndian, f32s); err != nil {
			return err
		}
	}
	_, err := w.Write(codes)
	return err
}

// decodeSQ8 reads one shard's quantized store, validating it against the
// shard geometry the container already established.
func decodeSQ8(r io.Reader, rows, dim int) (*vec.SQ8Store, error) {
	var hdr [2]int64
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	if hdr[0] != int64(rows) || hdr[1] != int64(dim) {
		return nil, fmt.Errorf("lccs: quantized store covers %d×%d, shard is %d×%d", hdr[0], hdr[1], rows, dim)
	}
	min := make([]float32, dim)
	scale := make([]float32, dim)
	norms := make([]float32, rows)
	for _, f32s := range [][]float32{min, scale, norms} {
		if err := binary.Read(r, binary.LittleEndian, f32s); err != nil {
			return nil, err
		}
	}
	codes := make([]uint8, rows*dim)
	if _, err := io.ReadFull(r, codes); err != nil {
		return nil, err
	}
	return vec.RestoreSQ8(dim, min, scale, norms, codes), nil
}

// readContainerKind reads and validates the format-4 container-kind byte.
func readContainerKind(r io.Reader) (byte, error) {
	var kind [1]byte
	if _, err := io.ReadFull(r, kind[:]); err != nil {
		return 0, err
	}
	if kind[0] != containerSingle && kind[0] != containerSharded {
		return 0, fmt.Errorf("lccs: corrupt container kind %d", kind[0])
	}
	return kind[0], nil
}

// Load reads a single-Index file written by Index.Save. data must be the
// dataset the index was built over; a sample of hash strings is
// re-verified against it, so passing different data fails loudly rather
// than silently returning wrong neighbors. Sharded (format 2) files are
// rejected with an error directing to LoadSharded.
func Load(path string, data [][]float32) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	magic, err := readMagic(r)
	if err != nil {
		return nil, err
	}
	if magic == pkgMagic2 || magic == pkgMagic3 {
		return nil, fmt.Errorf("lccs: %s holds a sharded index; use LoadSharded", path)
	}
	if magic == pkgMagic4 {
		kind, err := readContainerKind(r)
		if err != nil {
			return nil, err
		}
		if kind == containerSharded {
			return nil, fmt.Errorf("lccs: %s holds a sharded index; use LoadSharded", path)
		}
		store, err := storeFromRows(data)
		if err != nil {
			return nil, err
		}
		return decodeSingleQuantized(r, store)
	}
	if magic == pkgMagic5 {
		kind, flags, err := readPkg5Header(r)
		if err != nil {
			return nil, err
		}
		if kind == containerSharded {
			return nil, fmt.Errorf("lccs: %s holds a sharded index; use LoadSharded", path)
		}
		store, err := storeFromRows(data)
		if err != nil {
			return nil, err
		}
		return decodeSingleWithAttrs(r, store, flags)
	}
	return decodeSingle(r, data)
}

// readMagic reads and validates the 8-byte package magic.
func readMagic(r io.Reader) ([8]byte, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return magic, err
	}
	if magic != pkgMagic && magic != pkgMagic2 && magic != pkgMagic3 && magic != pkgMagic4 && magic != pkgMagic5 {
		return magic, fmt.Errorf("lccs: bad index magic %q", magic)
	}
	return magic, nil
}

// checkStore validates the caller-supplied dataset store before it is
// used to reconstruct hash families: an empty or zero-dimensional store
// must be reported, not panicked on deep inside the LSH family.
func checkStore(store *vec.Store) error {
	if store.Len() == 0 {
		return fmt.Errorf("lccs: empty dataset")
	}
	if store.Dim() == 0 {
		return fmt.Errorf("lccs: zero-dimensional data")
	}
	return nil
}

// decodeSingle decodes a format-1 body (everything after the magic).
// The supplied rows are packed once into a flat store that the decoded
// index retains.
func decodeSingle(r io.Reader, data [][]float32) (*Index, error) {
	store, err := storeFromRows(data)
	if err != nil {
		return nil, err
	}
	return decodeSingleStore(r, store)
}

// decodeSingleStore is decodeSingle over an already-flat store, which
// the decoded index adopts without copying.
func decodeSingleStore(r io.Reader, store *vec.Store) (*Index, error) {
	cfg, err := decodeConfig(r)
	if err != nil {
		return nil, err
	}
	if err := checkStore(store); err != nil {
		return nil, err
	}
	family, err := familyFor(cfg, store.Dim())
	if err != nil {
		return nil, err
	}
	// Hand the index a capped view, not the owning store: growing the
	// owner (e.g. through a DynamicIndex that adopts it) must never
	// change what a loaded index covers.
	single, err := core.DecodeStore(r, store.Slice(0, store.Len()), family)
	if err != nil {
		return nil, err
	}
	if err := checkCoreMatches(single, cfg); err != nil {
		return nil, err
	}
	return wrapSingle(single, cfg, family)
}

// decodeSingleQuantized decodes a format-4 single-Index body (everything
// after the magic and kind byte): the format-1 body followed by the
// quantization section.
func decodeSingleQuantized(r io.Reader, store *vec.Store) (*Index, error) {
	ix, err := decodeSingleStore(r, store)
	if err != nil {
		return nil, err
	}
	kind, rerank, err := decodeQuantHeader(r)
	if err != nil {
		return nil, err
	}
	ix.cfg.Quantize, ix.cfg.Rerank = kind, rerank
	if err := validateConfig(ix.cfg); err != nil {
		return nil, err
	}
	qs, err := decodeSQ8(r, ix.Len(), ix.Dim())
	if err != nil {
		return nil, err
	}
	ix.single.EnableSQ8(qs, rerank)
	return ix, nil
}

// decodeSingleWithAttrs decodes a format-5 single-Index body: the
// format-1 body, the quantization section when flagged, and the
// attribute tail.
func decodeSingleWithAttrs(r io.Reader, store *vec.Store, flags byte) (*Index, error) {
	var ix *Index
	var err error
	if flags&pkg5FlagQuantized != 0 {
		ix, err = decodeSingleQuantized(r, store)
	} else {
		ix, err = decodeSingleStore(r, store)
	}
	if err != nil {
		return nil, err
	}
	attrs, err := decodeAttrsSection(r, ix.Len())
	if err != nil {
		return nil, err
	}
	ix.attrs = attrs
	return ix, nil
}

// checkCoreMatches verifies the package header agrees with the decoded
// core index on the fields both store, catching header corruption the
// core-level checks cannot see.
func checkCoreMatches(single *core.Index, cfg Config) error {
	if single.M() != cfg.M {
		return fmt.Errorf("lccs: package header says m=%d, core index has m=%d", cfg.M, single.M())
	}
	if single.Seed() != cfg.Seed {
		return fmt.Errorf("lccs: package header seed %d disagrees with core index seed %d", cfg.Seed, single.Seed())
	}
	return nil
}

// wrapSingle builds the facade Index around a decoded core index,
// restoring the multi-probe wrapper when the configuration asks for one.
func wrapSingle(single *core.Index, cfg Config, family lshfamily.Family) (*Index, error) {
	ix := &Index{single: single, metric: family.Metric(), budget: cfg.Budget, dim: family.Dim(), cfg: cfg}
	ix.raw.New = func() any { return new(rawBuf) }
	if cfg.Probes > 1 {
		mp, err := core.WrapMP(single, core.MPParams{
			Params: core.Params{M: cfg.M, Seed: cfg.Seed},
			Probes: cfg.Probes,
		})
		if err != nil {
			return nil, err
		}
		ix.multi = mp
	}
	return ix, nil
}

// Save writes the sharded index to path: a format-2 container (the
// shared configuration header, the shard table, and each shard's core
// index), extended to format 3 with a lifecycle section when the index
// carries deletion state (a compacted id map or tombstones from a
// dynamic snapshot). As with Index.Save, the dataset itself is not
// stored — LoadSharded must be given the same data slice in the same
// order.
func (sx *ShardedIndex) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := sx.encode(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (sx *ShardedIndex) encode(w io.Writer) error {
	lifecycle := sx.ids != nil || len(sx.dead) > 0
	quantized := len(sx.shards) > 0 && sx.shards[0].single.SQ8() != nil
	hasAttrs := !sx.attrs.Empty()
	magic := pkgMagic2
	if lifecycle {
		magic = pkgMagic3
	}
	if quantized {
		magic = pkgMagic4
	}
	if hasAttrs {
		magic = pkgMagic5
	}
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	if hasAttrs {
		var flags byte
		if lifecycle {
			flags |= pkg5FlagLifecycle
		}
		if quantized {
			flags |= pkg5FlagQuantized
		}
		if _, err := w.Write([]byte{containerSharded, flags}); err != nil {
			return err
		}
	} else if quantized {
		// Format 4 carries the container kind and an explicit lifecycle
		// flag; formats 2/3 encode lifecycle presence in the magic.
		flag := byte(0)
		if lifecycle {
			flag = 1
		}
		if _, err := w.Write([]byte{containerSharded, flag}); err != nil {
			return err
		}
	}
	if err := encodeConfig(w, sx.cfg); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int32(len(sx.shards))); err != nil {
		return err
	}
	sizes := make([]int64, len(sx.shards))
	for s := range sx.shards {
		sizes[s] = int64(sx.offsets[s+1] - sx.offsets[s])
	}
	if err := binary.Write(w, binary.LittleEndian, sizes); err != nil {
		return err
	}
	for _, shard := range sx.shards {
		if err := shard.single.Encode(w); err != nil {
			return err
		}
	}
	if lifecycle {
		if err := sx.encodeLifecycle(w); err != nil {
			return err
		}
	}
	if quantized {
		if err := encodeQuantHeader(w, sx.cfg); err != nil {
			return err
		}
		for s, shard := range sx.shards {
			qs := shard.single.SQ8()
			if qs == nil {
				return fmt.Errorf("lccs: shard %d has no quantized store while shard 0 does", s)
			}
			if err := encodeSQ8(w, qs); err != nil {
				return err
			}
		}
	}
	if hasAttrs {
		return encodeAttrsSection(w, sx.attrs)
	}
	return nil
}

// encodeAttrsSection writes the format-5 tail: the stored row count, the
// byte length of the concatenated canonical row encodings, and the rows
// themselves. The per-row encoding is deterministic (sorted keys), so a
// loaded format-5 file re-saves byte-identically.
func encodeAttrsSection(w io.Writer, ms *vec.MetaStore) error {
	n := ms.Len()
	var buf []byte
	for i := 0; i < n; i++ {
		buf = vec.AppendAttrs(buf, ms.Row(i))
	}
	if err := binary.Write(w, binary.LittleEndian, [2]int64{int64(n), int64(len(buf))}); err != nil {
		return err
	}
	_, err := w.Write(buf)
	return err
}

// maxAttrsSectionBytes bounds the attribute section a loader will buffer
// (corrupt headers must not drive allocations).
const maxAttrsSectionBytes = 1 << 30

// decodeAttrsSection reads the format-5 tail. The row count may be
// smaller than the slot count (trailing slots carry no metadata) but
// never larger.
func decodeAttrsSection(r io.Reader, maxRows int) (*vec.MetaStore, error) {
	var hdr [2]int64
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	n, size := hdr[0], hdr[1]
	if n < 0 || n > int64(maxRows) {
		return nil, fmt.Errorf("lccs: attribute section covers %d rows, index has %d", n, maxRows)
	}
	if size < 0 || size > maxAttrsSectionBytes {
		return nil, fmt.Errorf("lccs: corrupt attribute section size %d", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	rows := make([]vec.Attrs, n)
	off := 0
	for i := range rows {
		a, used, err := vec.DecodeAttrs(buf[off:])
		if err != nil {
			return nil, fmt.Errorf("lccs: attribute row %d: %w", i, err)
		}
		rows[i] = a
		off += used
	}
	if off != len(buf) {
		return nil, fmt.Errorf("lccs: attribute section has %d trailing bytes", len(buf)-off)
	}
	return vec.MetaFromRows(rows), nil
}

// readPkg5Header reads and validates the format-5 kind and flags bytes.
func readPkg5Header(r io.Reader) (kind, flags byte, err error) {
	kind, err = readContainerKind(r)
	if err != nil {
		return 0, 0, err
	}
	var fb [1]byte
	if _, err := io.ReadFull(r, fb[:]); err != nil {
		return 0, 0, err
	}
	flags = fb[0]
	if flags&^pkg5FlagsKnown != 0 {
		return 0, 0, fmt.Errorf("lccs: unknown format-5 flags %#x", flags)
	}
	if kind == containerSingle && flags&pkg5FlagLifecycle != 0 {
		return 0, 0, fmt.Errorf("lccs: single-index container cannot carry lifecycle state")
	}
	return kind, flags, nil
}

// encodeLifecycle writes the format-3 tail: the id map (identity flag,
// next-id watermark, and — when compacted — the slot-ordered external
// ids) followed by the sorted tombstoned external ids. The encoding is
// deterministic, so a loaded format-3 file re-saves byte-identically.
func (sx *ShardedIndex) encodeLifecycle(w io.Writer) error {
	identity := sx.ids.Identity()
	flag := byte(0)
	next := sx.slots()
	if identity {
		flag = 1
	} else {
		next = sx.ids.Next()
	}
	if _, err := w.Write([]byte{flag}); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(next)); err != nil {
		return err
	}
	if !identity {
		ids := sx.ids.AppendIDs(make([]int, 0, sx.slots()))
		if err := binary.Write(w, binary.LittleEndian, int64(len(ids))); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, toInt64s(ids)); err != nil {
			return err
		}
	}
	dead := make([]int, 0, len(sx.dead))
	for slot := range sx.dead {
		dead = append(dead, sx.ids.Ext(slot))
	}
	sort.Ints(dead)
	if err := binary.Write(w, binary.LittleEndian, int64(len(dead))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, toInt64s(dead))
}

// toInt64s widens ids for the fixed-width container encoding.
func toInt64s(ids []int) []int64 {
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = int64(id)
	}
	return out
}

// decodeLifecycle reads the format-3 tail and installs the lifecycle
// state on sx: the restored id map (nil for identity) and the tombstone
// set translated back to slots, with per-shard tombstone counts derived
// from the shard table.
func (sx *ShardedIndex) decodeLifecycle(r io.Reader) error {
	var flag [1]byte
	if _, err := io.ReadFull(r, flag[:]); err != nil {
		return err
	}
	var next int64
	if err := binary.Read(r, binary.LittleEndian, &next); err != nil {
		return err
	}
	slots := sx.slots()
	switch flag[0] {
	case 1:
		if next != int64(slots) {
			return fmt.Errorf("lccs: identity id map watermark %d disagrees with %d rows", next, slots)
		}
	case 0:
		var count int64
		if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
			return err
		}
		if count != int64(slots) {
			return fmt.Errorf("lccs: id map covers %d slots, index has %d", count, slots)
		}
		raw := make([]int64, count)
		if err := binary.Read(r, binary.LittleEndian, raw); err != nil {
			return err
		}
		ids := make([]int, count)
		for i, id := range raw {
			ids[i] = int(id)
		}
		m, err := idmap.Restore(ids, int(next))
		if err != nil {
			return err
		}
		sx.ids = m
	default:
		return fmt.Errorf("lccs: corrupt id map flag %d", flag[0])
	}
	var deadCount int64
	if err := binary.Read(r, binary.LittleEndian, &deadCount); err != nil {
		return err
	}
	if deadCount < 0 || deadCount > int64(slots) {
		return fmt.Errorf("lccs: corrupt tombstone count %d for %d rows", deadCount, slots)
	}
	if deadCount == 0 {
		return nil
	}
	deadIDs := make([]int64, deadCount)
	if err := binary.Read(r, binary.LittleEndian, deadIDs); err != nil {
		return err
	}
	sx.dead = make(map[int]bool, deadCount)
	sx.shardDead = make([]int, len(sx.shards))
	prev := -1
	for _, id := range deadIDs {
		if int(id) <= prev {
			return fmt.Errorf("lccs: tombstone ids not strictly increasing at %d", id)
		}
		prev = int(id)
		slot, ok := int(id), int(id) >= 0 && int(id) < slots
		if sx.ids != nil {
			slot, ok = sx.ids.Slot(int(id))
		}
		if !ok || slot >= slots {
			return fmt.Errorf("lccs: tombstone id %d resolves to no slot", id)
		}
		sx.dead[slot] = true
		for s := 0; s < len(sx.shards); s++ {
			if slot >= sx.offsets[s] && slot < sx.offsets[s+1] {
				sx.shardDead[s]++
				break
			}
		}
	}
	return nil
}

// LoadSharded reads a sharded index written by ShardedIndex.Save. data
// must be the dataset the index was built over, in the same order (for
// a format-3 file that is the slot-ordered row slice Snapshot returned,
// including rows tombstoned inside shards). A format-1 (single-Index)
// file is accepted too and wrapped as one shard, so callers can migrate
// to the sharded API without rewriting old files.
func LoadSharded(path string, data [][]float32) (*ShardedIndex, error) {
	store, err := storeFromRows(data)
	if err != nil {
		return nil, err
	}
	return LoadShardedStore(path, store)
}

// LoadShardedStore is LoadSharded over an already-flat vector store,
// which the loaded index adopts without re-packing — the copy-free
// warm-restart path (dataset.Dataset.FlatData feeds it directly). The
// caller must not write through store afterwards.
func LoadShardedStore(path string, store *vec.Store) (*ShardedIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	magic, err := readMagic(r)
	if err != nil {
		return nil, err
	}
	if magic == pkgMagic {
		ix, err := decodeSingleStore(r, store)
		if err != nil {
			return nil, err
		}
		return wrapAsSharded(ix), nil
	}
	if magic == pkgMagic4 {
		kind, err := readContainerKind(r)
		if err != nil {
			return nil, err
		}
		if kind == containerSingle {
			ix, err := decodeSingleQuantized(r, store)
			if err != nil {
				return nil, err
			}
			return wrapAsSharded(ix), nil
		}
		var flag [1]byte
		if _, err := io.ReadFull(r, flag[:]); err != nil {
			return nil, err
		}
		if flag[0] > 1 {
			return nil, fmt.Errorf("lccs: corrupt lifecycle flag %d", flag[0])
		}
		return decodeSharded(r, store, flag[0] == 1, true)
	}
	if magic == pkgMagic5 {
		kind, flags, err := readPkg5Header(r)
		if err != nil {
			return nil, err
		}
		if kind == containerSingle {
			ix, err := decodeSingleWithAttrs(r, store, flags)
			if err != nil {
				return nil, err
			}
			return wrapAsSharded(ix), nil
		}
		sx, err := decodeSharded(r, store, flags&pkg5FlagLifecycle != 0, flags&pkg5FlagQuantized != 0)
		if err != nil {
			return nil, err
		}
		attrs, err := decodeAttrsSection(r, sx.slots())
		if err != nil {
			return nil, err
		}
		sx.attrs = attrs
		return sx, nil
	}
	return decodeSharded(r, store, magic == pkgMagic3, false)
}

// wrapAsSharded adapts a decoded single Index into a one-shard
// ShardedIndex — the migration path for format-1 (and quantized
// format-4 single) files opened with LoadSharded.
func wrapAsSharded(ix *Index) *ShardedIndex {
	sx := &ShardedIndex{
		cfg:     ix.cfg,
		store:   ix.single.Store(),
		shards:  []*Index{ix},
		offsets: []int{0, ix.Len()},
		budget:  ix.budget,
		dim:     ix.dim,
		attrs:   ix.attrs,
	}
	sx.initPool()
	return sx
}

// decodeSharded decodes a format-2, format-3, or sharded format-4 body
// (everything after the magic and, for format 4, the kind and lifecycle
// flag bytes); lifecycle selects the lifecycle tail, quantized the
// format-4 quantization section.
func decodeSharded(r io.Reader, store *vec.Store, lifecycle, quantized bool) (*ShardedIndex, error) {
	cfg, err := decodeConfig(r)
	if err != nil {
		return nil, err
	}
	if err := checkStore(store); err != nil {
		return nil, err
	}
	n := store.Len()
	var shardCount int32
	if err := binary.Read(r, binary.LittleEndian, &shardCount); err != nil {
		return nil, err
	}
	if err := validateShardCount(int(shardCount), n); err != nil {
		return nil, err
	}
	sizes := make([]int64, shardCount)
	if err := binary.Read(r, binary.LittleEndian, sizes); err != nil {
		return nil, err
	}
	offsets := make([]int, shardCount+1)
	for s, size := range sizes {
		if size <= 0 || size > int64(n) {
			return nil, fmt.Errorf("lccs: corrupt shard size %d", size)
		}
		offsets[s+1] = offsets[s] + int(size)
	}
	if offsets[shardCount] != n {
		return nil, fmt.Errorf("lccs: shard table covers %d vectors, data has %d", offsets[shardCount], n)
	}
	// One flat store for the whole dataset; every shard decodes against
	// a contiguous view of it, exactly as NewShardedIndex builds.
	family, err := familyFor(cfg, store.Dim())
	if err != nil {
		return nil, err
	}
	sx := &ShardedIndex{
		cfg:     cfg,
		store:   store,
		shards:  make([]*Index, shardCount),
		offsets: offsets,
		budget:  cfg.Budget,
		dim:     store.Dim(),
	}
	for s := range sx.shards {
		single, err := core.DecodeStore(r, store.Slice(offsets[s], offsets[s+1]), family)
		if err != nil {
			return nil, fmt.Errorf("lccs: shard %d: %w", s, err)
		}
		if err := checkCoreMatches(single, cfg); err != nil {
			return nil, fmt.Errorf("lccs: shard %d: %w", s, err)
		}
		sx.shards[s], err = wrapSingle(single, cfg, family)
		if err != nil {
			return nil, fmt.Errorf("lccs: shard %d: %w", s, err)
		}
	}
	if lifecycle {
		if err := sx.decodeLifecycle(r); err != nil {
			return nil, err
		}
	}
	if quantized {
		kind, rerank, err := decodeQuantHeader(r)
		if err != nil {
			return nil, err
		}
		sx.cfg.Quantize, sx.cfg.Rerank = kind, rerank
		if err := validateConfig(sx.cfg); err != nil {
			return nil, err
		}
		for s := range sx.shards {
			qs, err := decodeSQ8(r, offsets[s+1]-offsets[s], store.Dim())
			if err != nil {
				return nil, fmt.Errorf("lccs: shard %d: %w", s, err)
			}
			sx.shards[s].single.EnableSQ8(qs, rerank)
			sx.shards[s].cfg.Quantize, sx.shards[s].cfg.Rerank = kind, rerank
		}
	}
	sx.initPool()
	return sx, nil
}

// familyFor constructs the LSH family a Config selects. BucketWidth must
// already be resolved (non-zero) for Euclidean.
func familyFor(cfg Config, dim int) (lshfamily.Family, error) {
	switch cfg.Metric {
	case Euclidean:
		if cfg.BucketWidth <= 0 {
			return nil, fmt.Errorf("lccs: euclidean index requires a positive bucket width, got %v", cfg.BucketWidth)
		}
		return lshfamily.NewRandomProjection(dim, cfg.BucketWidth), nil
	case Angular:
		return lshfamily.NewCrossPolytope(dim), nil
	case Hamming:
		return lshfamily.NewBitSampling(dim), nil
	case Jaccard:
		return lshfamily.NewMinHash(dim), nil
	}
	return nil, fmt.Errorf("lccs: unknown metric %q", cfg.Metric)
}
