package lccs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"lccs/internal/core"
	"lccs/internal/lshfamily"
)

// pkgMagic versions the facade's on-disk index format.
var pkgMagic = [8]byte{'L', 'C', 'C', 'S', 'P', 'K', 'G', '1'}

// Save writes the index to path. The dataset itself is not stored: Load
// must be given the same data slice (same order) the index was built
// over. Saving avoids the sort-dominated build cost on the next start.
func (ix *Index) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := ix.encode(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (ix *Index) encode(w io.Writer) error {
	if _, err := w.Write(pkgMagic[:]); err != nil {
		return err
	}
	metric := string(ix.cfg.Metric)
	if err := binary.Write(w, binary.LittleEndian, int32(len(metric))); err != nil {
		return err
	}
	if _, err := w.Write([]byte(metric)); err != nil {
		return err
	}
	hdr := []int64{int64(ix.cfg.M), int64(ix.cfg.Probes), int64(ix.cfg.Budget)}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, ix.cfg.BucketWidth); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, ix.cfg.Seed); err != nil {
		return err
	}
	return ix.single.Encode(w)
}

// Load reads an index written by Save. data must be the dataset the index
// was built over; a sample of hash strings is re-verified against it, so
// passing different data fails loudly rather than silently returning
// wrong neighbors.
func Load(path string, data [][]float32) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decode(bufio.NewReaderSize(f, 1<<20), data)
}

func decode(r io.Reader, data [][]float32) (*Index, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != pkgMagic {
		return nil, fmt.Errorf("lccs: bad index magic %q", magic)
	}
	var metricLen int32
	if err := binary.Read(r, binary.LittleEndian, &metricLen); err != nil {
		return nil, err
	}
	if metricLen < 0 || metricLen > 64 {
		return nil, fmt.Errorf("lccs: corrupt metric length %d", metricLen)
	}
	metricBuf := make([]byte, metricLen)
	if _, err := io.ReadFull(r, metricBuf); err != nil {
		return nil, err
	}
	var hdr [3]int64
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	var bucketWidth float64
	if err := binary.Read(r, binary.LittleEndian, &bucketWidth); err != nil {
		return nil, err
	}
	var seed uint64
	if err := binary.Read(r, binary.LittleEndian, &seed); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("lccs: empty dataset")
	}
	cfg := Config{
		Metric:      MetricKind(metricBuf),
		M:           int(hdr[0]),
		Probes:      int(hdr[1]),
		Budget:      int(hdr[2]),
		BucketWidth: bucketWidth,
		Seed:        seed,
	}
	family, err := familyFor(cfg, len(data[0]))
	if err != nil {
		return nil, err
	}
	single, err := core.Decode(r, data, family)
	if err != nil {
		return nil, err
	}
	ix := &Index{single: single, metric: family.Metric(), budget: cfg.Budget, cfg: cfg}
	if cfg.Probes > 1 {
		mp, err := core.WrapMP(single, core.MPParams{
			Params: core.Params{M: cfg.M, Seed: cfg.Seed},
			Probes: cfg.Probes,
		})
		if err != nil {
			return nil, err
		}
		ix.multi = mp
	}
	return ix, nil
}

// familyFor constructs the LSH family a Config selects. BucketWidth must
// already be resolved (non-zero) for Euclidean.
func familyFor(cfg Config, dim int) (lshfamily.Family, error) {
	switch cfg.Metric {
	case Euclidean:
		if cfg.BucketWidth <= 0 {
			return nil, fmt.Errorf("lccs: euclidean index requires a positive bucket width, got %v", cfg.BucketWidth)
		}
		return lshfamily.NewRandomProjection(dim, cfg.BucketWidth), nil
	case Angular:
		return lshfamily.NewCrossPolytope(dim), nil
	case Hamming:
		return lshfamily.NewBitSampling(dim), nil
	case Jaccard:
		return lshfamily.NewMinHash(dim), nil
	}
	return nil, fmt.Errorf("lccs: unknown metric %q", cfg.Metric)
}
