package lccs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"lccs/internal/core"
	"lccs/internal/idmap"
	"lccs/internal/lshfamily"
)

// pkgMagic versions the facade's on-disk index format: a single-Index
// file (format 1).
var pkgMagic = [8]byte{'L', 'C', 'C', 'S', 'P', 'K', 'G', '1'}

// pkgMagic2 is the sharded container (format 2): the same configuration
// header as format 1 followed by a shard table and one core index blob per
// shard. Format-1 files remain loadable by both Load and LoadSharded.
var pkgMagic2 = [8]byte{'L', 'C', 'C', 'S', 'P', 'K', 'G', '2'}

// pkgMagic3 is the lifecycle container (format 3): the format-2 layout
// followed by a deletion-lifecycle section — the stable-id map and the
// tombstone set of a dynamic snapshot — so deleted vectors stay deleted
// across a save/load cycle. Save emits format 3 only when lifecycle
// state exists; indexes without it keep writing byte-identical format-2
// (or format-1) files, and both legacy formats keep loading.
var pkgMagic3 = [8]byte{'L', 'C', 'C', 'S', 'P', 'K', 'G', '3'}

// Save writes the index to path. The dataset itself is not stored: Load
// must be given the same data slice (same order) the index was built
// over. Saving avoids the sort-dominated build cost on the next start.
func (ix *Index) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := ix.encode(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (ix *Index) encode(w io.Writer) error {
	if _, err := w.Write(pkgMagic[:]); err != nil {
		return err
	}
	if err := encodeConfig(w, ix.cfg); err != nil {
		return err
	}
	return ix.single.Encode(w)
}

// encodeConfig writes the resolved configuration header shared by both
// package formats.
func encodeConfig(w io.Writer, cfg Config) error {
	metric := string(cfg.Metric)
	if err := binary.Write(w, binary.LittleEndian, int32(len(metric))); err != nil {
		return err
	}
	if _, err := w.Write([]byte(metric)); err != nil {
		return err
	}
	hdr := []int64{int64(cfg.M), int64(cfg.Probes), int64(cfg.Budget)}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, cfg.BucketWidth); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, cfg.Seed)
}

// decodeConfig reads the configuration header shared by both package
// formats.
func decodeConfig(r io.Reader) (Config, error) {
	var cfg Config
	var metricLen int32
	if err := binary.Read(r, binary.LittleEndian, &metricLen); err != nil {
		return cfg, err
	}
	if metricLen < 0 || metricLen > 64 {
		return cfg, fmt.Errorf("lccs: corrupt metric length %d", metricLen)
	}
	metricBuf := make([]byte, metricLen)
	if _, err := io.ReadFull(r, metricBuf); err != nil {
		return cfg, err
	}
	var hdr [3]int64
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return cfg, err
	}
	if hdr[0] <= 0 || hdr[1] < 0 || hdr[2] < 0 {
		return cfg, fmt.Errorf("lccs: corrupt config header m=%d probes=%d budget=%d", hdr[0], hdr[1], hdr[2])
	}
	var bucketWidth float64
	if err := binary.Read(r, binary.LittleEndian, &bucketWidth); err != nil {
		return cfg, err
	}
	var seed uint64
	if err := binary.Read(r, binary.LittleEndian, &seed); err != nil {
		return cfg, err
	}
	return Config{
		Metric:      MetricKind(metricBuf),
		M:           int(hdr[0]),
		Probes:      int(hdr[1]),
		Budget:      int(hdr[2]),
		BucketWidth: bucketWidth,
		Seed:        seed,
	}, nil
}

// Load reads a single-Index file written by Index.Save. data must be the
// dataset the index was built over; a sample of hash strings is
// re-verified against it, so passing different data fails loudly rather
// than silently returning wrong neighbors. Sharded (format 2) files are
// rejected with an error directing to LoadSharded.
func Load(path string, data [][]float32) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	magic, err := readMagic(r)
	if err != nil {
		return nil, err
	}
	if magic == pkgMagic2 || magic == pkgMagic3 {
		return nil, fmt.Errorf("lccs: %s holds a sharded index; use LoadSharded", path)
	}
	return decodeSingle(r, data)
}

// readMagic reads and validates the 8-byte package magic.
func readMagic(r io.Reader) ([8]byte, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return magic, err
	}
	if magic != pkgMagic && magic != pkgMagic2 && magic != pkgMagic3 {
		return magic, fmt.Errorf("lccs: bad index magic %q", magic)
	}
	return magic, nil
}

// checkDataset validates the caller-supplied dataset before it is used
// to reconstruct hash families: a nil or zero-dimensional first vector
// must be reported, not panicked on deep inside the LSH family.
func checkDataset(data [][]float32) error {
	if len(data) == 0 {
		return fmt.Errorf("lccs: empty dataset")
	}
	if len(data[0]) == 0 {
		return fmt.Errorf("lccs: zero-dimensional data")
	}
	return nil
}

// decodeSingle decodes a format-1 body (everything after the magic).
// The supplied rows are packed once into a flat store that the decoded
// index retains.
func decodeSingle(r io.Reader, data [][]float32) (*Index, error) {
	cfg, err := decodeConfig(r)
	if err != nil {
		return nil, err
	}
	if err := checkDataset(data); err != nil {
		return nil, err
	}
	store, err := storeFromRows(data)
	if err != nil {
		return nil, err
	}
	family, err := familyFor(cfg, store.Dim())
	if err != nil {
		return nil, err
	}
	// Hand the index a capped view, not the owning store: growing the
	// owner (e.g. through a DynamicIndex that adopts it) must never
	// change what a loaded index covers.
	single, err := core.DecodeStore(r, store.Slice(0, store.Len()), family)
	if err != nil {
		return nil, err
	}
	if err := checkCoreMatches(single, cfg); err != nil {
		return nil, err
	}
	return wrapSingle(single, cfg, family)
}

// checkCoreMatches verifies the package header agrees with the decoded
// core index on the fields both store, catching header corruption the
// core-level checks cannot see.
func checkCoreMatches(single *core.Index, cfg Config) error {
	if single.M() != cfg.M {
		return fmt.Errorf("lccs: package header says m=%d, core index has m=%d", cfg.M, single.M())
	}
	if single.Seed() != cfg.Seed {
		return fmt.Errorf("lccs: package header seed %d disagrees with core index seed %d", cfg.Seed, single.Seed())
	}
	return nil
}

// wrapSingle builds the facade Index around a decoded core index,
// restoring the multi-probe wrapper when the configuration asks for one.
func wrapSingle(single *core.Index, cfg Config, family lshfamily.Family) (*Index, error) {
	ix := &Index{single: single, metric: family.Metric(), budget: cfg.Budget, dim: family.Dim(), cfg: cfg}
	ix.raw.New = func() any { return new(rawBuf) }
	if cfg.Probes > 1 {
		mp, err := core.WrapMP(single, core.MPParams{
			Params: core.Params{M: cfg.M, Seed: cfg.Seed},
			Probes: cfg.Probes,
		})
		if err != nil {
			return nil, err
		}
		ix.multi = mp
	}
	return ix, nil
}

// Save writes the sharded index to path: a format-2 container (the
// shared configuration header, the shard table, and each shard's core
// index), extended to format 3 with a lifecycle section when the index
// carries deletion state (a compacted id map or tombstones from a
// dynamic snapshot). As with Index.Save, the dataset itself is not
// stored — LoadSharded must be given the same data slice in the same
// order.
func (sx *ShardedIndex) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := sx.encode(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (sx *ShardedIndex) encode(w io.Writer) error {
	lifecycle := sx.ids != nil || len(sx.dead) > 0
	magic := pkgMagic2
	if lifecycle {
		magic = pkgMagic3
	}
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	if err := encodeConfig(w, sx.cfg); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int32(len(sx.shards))); err != nil {
		return err
	}
	sizes := make([]int64, len(sx.shards))
	for s := range sx.shards {
		sizes[s] = int64(sx.offsets[s+1] - sx.offsets[s])
	}
	if err := binary.Write(w, binary.LittleEndian, sizes); err != nil {
		return err
	}
	for _, shard := range sx.shards {
		if err := shard.single.Encode(w); err != nil {
			return err
		}
	}
	if lifecycle {
		return sx.encodeLifecycle(w)
	}
	return nil
}

// encodeLifecycle writes the format-3 tail: the id map (identity flag,
// next-id watermark, and — when compacted — the slot-ordered external
// ids) followed by the sorted tombstoned external ids. The encoding is
// deterministic, so a loaded format-3 file re-saves byte-identically.
func (sx *ShardedIndex) encodeLifecycle(w io.Writer) error {
	identity := sx.ids.Identity()
	flag := byte(0)
	next := sx.slots()
	if identity {
		flag = 1
	} else {
		next = sx.ids.Next()
	}
	if _, err := w.Write([]byte{flag}); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(next)); err != nil {
		return err
	}
	if !identity {
		ids := sx.ids.AppendIDs(make([]int, 0, sx.slots()))
		if err := binary.Write(w, binary.LittleEndian, int64(len(ids))); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, toInt64s(ids)); err != nil {
			return err
		}
	}
	dead := make([]int, 0, len(sx.dead))
	for slot := range sx.dead {
		dead = append(dead, sx.ids.Ext(slot))
	}
	sort.Ints(dead)
	if err := binary.Write(w, binary.LittleEndian, int64(len(dead))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, toInt64s(dead))
}

// toInt64s widens ids for the fixed-width container encoding.
func toInt64s(ids []int) []int64 {
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = int64(id)
	}
	return out
}

// decodeLifecycle reads the format-3 tail and installs the lifecycle
// state on sx: the restored id map (nil for identity) and the tombstone
// set translated back to slots, with per-shard tombstone counts derived
// from the shard table.
func (sx *ShardedIndex) decodeLifecycle(r io.Reader) error {
	var flag [1]byte
	if _, err := io.ReadFull(r, flag[:]); err != nil {
		return err
	}
	var next int64
	if err := binary.Read(r, binary.LittleEndian, &next); err != nil {
		return err
	}
	slots := sx.slots()
	switch flag[0] {
	case 1:
		if next != int64(slots) {
			return fmt.Errorf("lccs: identity id map watermark %d disagrees with %d rows", next, slots)
		}
	case 0:
		var count int64
		if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
			return err
		}
		if count != int64(slots) {
			return fmt.Errorf("lccs: id map covers %d slots, index has %d", count, slots)
		}
		raw := make([]int64, count)
		if err := binary.Read(r, binary.LittleEndian, raw); err != nil {
			return err
		}
		ids := make([]int, count)
		for i, id := range raw {
			ids[i] = int(id)
		}
		m, err := idmap.Restore(ids, int(next))
		if err != nil {
			return err
		}
		sx.ids = m
	default:
		return fmt.Errorf("lccs: corrupt id map flag %d", flag[0])
	}
	var deadCount int64
	if err := binary.Read(r, binary.LittleEndian, &deadCount); err != nil {
		return err
	}
	if deadCount < 0 || deadCount > int64(slots) {
		return fmt.Errorf("lccs: corrupt tombstone count %d for %d rows", deadCount, slots)
	}
	if deadCount == 0 {
		return nil
	}
	deadIDs := make([]int64, deadCount)
	if err := binary.Read(r, binary.LittleEndian, deadIDs); err != nil {
		return err
	}
	sx.dead = make(map[int]bool, deadCount)
	sx.shardDead = make([]int, len(sx.shards))
	prev := -1
	for _, id := range deadIDs {
		if int(id) <= prev {
			return fmt.Errorf("lccs: tombstone ids not strictly increasing at %d", id)
		}
		prev = int(id)
		slot, ok := int(id), int(id) >= 0 && int(id) < slots
		if sx.ids != nil {
			slot, ok = sx.ids.Slot(int(id))
		}
		if !ok || slot >= slots {
			return fmt.Errorf("lccs: tombstone id %d resolves to no slot", id)
		}
		sx.dead[slot] = true
		for s := 0; s < len(sx.shards); s++ {
			if slot >= sx.offsets[s] && slot < sx.offsets[s+1] {
				sx.shardDead[s]++
				break
			}
		}
	}
	return nil
}

// LoadSharded reads a sharded index written by ShardedIndex.Save. data
// must be the dataset the index was built over, in the same order (for
// a format-3 file that is the slot-ordered row slice Snapshot returned,
// including rows tombstoned inside shards). A format-1 (single-Index)
// file is accepted too and wrapped as one shard, so callers can migrate
// to the sharded API without rewriting old files.
func LoadSharded(path string, data [][]float32) (*ShardedIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	magic, err := readMagic(r)
	if err != nil {
		return nil, err
	}
	if magic == pkgMagic {
		ix, err := decodeSingle(r, data)
		if err != nil {
			return nil, err
		}
		sx := &ShardedIndex{
			cfg:     ix.cfg,
			store:   ix.single.Store(),
			shards:  []*Index{ix},
			offsets: []int{0, ix.Len()},
			budget:  ix.budget,
			dim:     ix.dim,
		}
		sx.initPool()
		return sx, nil
	}
	return decodeSharded(r, data, magic == pkgMagic3)
}

// decodeSharded decodes a format-2 or format-3 body (everything after
// the magic); lifecycle selects the format-3 tail.
func decodeSharded(r io.Reader, data [][]float32, lifecycle bool) (*ShardedIndex, error) {
	cfg, err := decodeConfig(r)
	if err != nil {
		return nil, err
	}
	if err := checkDataset(data); err != nil {
		return nil, err
	}
	var shardCount int32
	if err := binary.Read(r, binary.LittleEndian, &shardCount); err != nil {
		return nil, err
	}
	if err := validateShardCount(int(shardCount), len(data)); err != nil {
		return nil, err
	}
	sizes := make([]int64, shardCount)
	if err := binary.Read(r, binary.LittleEndian, sizes); err != nil {
		return nil, err
	}
	offsets := make([]int, shardCount+1)
	for s, size := range sizes {
		if size <= 0 || size > int64(len(data)) {
			return nil, fmt.Errorf("lccs: corrupt shard size %d", size)
		}
		offsets[s+1] = offsets[s] + int(size)
	}
	if offsets[shardCount] != len(data) {
		return nil, fmt.Errorf("lccs: shard table covers %d vectors, data has %d", offsets[shardCount], len(data))
	}
	// One flat store for the whole dataset; every shard decodes against
	// a contiguous view of it, exactly as NewShardedIndex builds.
	store, err := storeFromRows(data)
	if err != nil {
		return nil, err
	}
	family, err := familyFor(cfg, store.Dim())
	if err != nil {
		return nil, err
	}
	sx := &ShardedIndex{
		cfg:     cfg,
		store:   store,
		shards:  make([]*Index, shardCount),
		offsets: offsets,
		budget:  cfg.Budget,
		dim:     store.Dim(),
	}
	for s := range sx.shards {
		single, err := core.DecodeStore(r, store.Slice(offsets[s], offsets[s+1]), family)
		if err != nil {
			return nil, fmt.Errorf("lccs: shard %d: %w", s, err)
		}
		if err := checkCoreMatches(single, cfg); err != nil {
			return nil, fmt.Errorf("lccs: shard %d: %w", s, err)
		}
		sx.shards[s], err = wrapSingle(single, cfg, family)
		if err != nil {
			return nil, fmt.Errorf("lccs: shard %d: %w", s, err)
		}
	}
	if lifecycle {
		if err := sx.decodeLifecycle(r); err != nil {
			return nil, err
		}
	}
	sx.initPool()
	return sx, nil
}

// familyFor constructs the LSH family a Config selects. BucketWidth must
// already be resolved (non-zero) for Euclidean.
func familyFor(cfg Config, dim int) (lshfamily.Family, error) {
	switch cfg.Metric {
	case Euclidean:
		if cfg.BucketWidth <= 0 {
			return nil, fmt.Errorf("lccs: euclidean index requires a positive bucket width, got %v", cfg.BucketWidth)
		}
		return lshfamily.NewRandomProjection(dim, cfg.BucketWidth), nil
	case Angular:
		return lshfamily.NewCrossPolytope(dim), nil
	case Hamming:
		return lshfamily.NewBitSampling(dim), nil
	case Jaccard:
		return lshfamily.NewMinHash(dim), nil
	}
	return nil, fmt.Errorf("lccs: unknown metric %q", cfg.Metric)
}
