package lccs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// durableCfg is the shared test configuration: a small rebuild
// threshold exercises the background delta builds during replay, and a
// tiny WAL segment size exercises rotation.
func durableCfg() DurableConfig {
	return DurableConfig{
		Config:       Config{Metric: Euclidean, M: 8, Seed: 1, BucketWidth: 4},
		Sync:         SyncAlways,
		SegmentBytes: 4096,
		RebuildAt:    64,
	}
}

// crash abandons a DurableIndex without Close or Checkpoint — the
// in-process stand-in for SIGKILL: whatever reached the OS is on disk,
// everything else (including the open file handles) is simply dropped.
func crash(di *DurableIndex) {
	di.WaitRebuild() // quiesce background goroutines touching the store
}

func mustOpenDurable(t *testing.T, dir string) *DurableIndex {
	t.Helper()
	di, err := OpenDurable(dir, durableCfg())
	if err != nil {
		t.Fatalf("OpenDurable(%s): %v", dir, err)
	}
	return di
}

// searchIDs returns the id set of a full-budget search around q.
func searchIDs(t *testing.T, s Searcher, q []float32, k int) map[int]bool {
	t.Helper()
	res, err := s.SearchBudget(q, k, 1<<20)
	if err != nil {
		t.Fatalf("SearchBudget: %v", err)
	}
	ids := make(map[int]bool, len(res))
	for _, nb := range res {
		ids[nb.ID] = true
	}
	return ids
}

// TestCrashRecoveryTwoCycles is the satellite crash simulation: write
// through the WAL, drop the index without any shutdown path, reopen
// from the directory — twice — and assert that acknowledged inserts are
// searchable, acknowledged deletes stay dead, and the id watermark
// never reuses a deleted id.
func TestCrashRecoveryTwoCycles(t *testing.T) {
	dir := t.TempDir()
	data, _ := testData(71, 300, 8, 4, 0.5)

	// Cycle 0: fresh dir, ingest, delete a few, crash.
	di := mustOpenDurable(t, dir)
	for _, v := range data[:200] {
		if _, err := di.Add(v); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	deleted := []int{0, 50, 199}
	for _, id := range deleted {
		if ok, err := di.DeleteDurable(id); !ok || err != nil {
			t.Fatalf("DeleteDurable(%d) = %v, %v", id, ok, err)
		}
	}
	crash(di)

	// Cycle 1: recover, verify, write more, crash again.
	di2 := mustOpenDurable(t, dir)
	rec := di2.Recovery()
	if rec.Records != 203 {
		t.Fatalf("cycle 1 replayed %d records, want 203", rec.Records)
	}
	if di2.Len() != 197 {
		t.Fatalf("cycle 1 recovered %d live vectors, want 197", di2.Len())
	}
	for _, id := range deleted {
		ids := searchIDs(t, di2, data[id], 200)
		if ids[id] {
			t.Fatalf("cycle 1: deleted id %d resurrected", id)
		}
	}
	// A surviving neighbor must be searchable with its original id.
	if ids := searchIDs(t, di2, data[120], 1); !ids[120] {
		t.Fatalf("cycle 1: inserted id 120 not searchable: %v", ids)
	}
	// Watermark: the next insert must not reuse any id, deleted or not.
	id, err := di2.Add(data[200])
	if err != nil {
		t.Fatalf("Add after recovery: %v", err)
	}
	if id != 200 {
		t.Fatalf("cycle 1: watermark broken: new id %d, want 200", id)
	}
	if ok, err := di2.DeleteDurable(id); !ok || err != nil {
		t.Fatalf("DeleteDurable(%d): %v, %v", id, ok, err)
	}
	for _, v := range data[201:250] {
		if _, err := di2.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	crash(di2)

	// Cycle 2: everything from both crashed processes must be there.
	di3 := mustOpenDurable(t, dir)
	defer di3.Close()
	if di3.Len() != 197+49 {
		t.Fatalf("cycle 2 recovered %d live vectors, want %d", di3.Len(), 197+49)
	}
	for _, id := range append(deleted, 200) {
		if ids := searchIDs(t, di3, data[id], 250); ids[id] {
			t.Fatalf("cycle 2: deleted id %d resurrected", id)
		}
	}
	if ids := searchIDs(t, di3, data[240], 1); !ids[240] {
		t.Fatalf("cycle 2: id 240 from the second crashed process not searchable")
	}
	if id, err := di3.Add(data[250]); err != nil || id != 250 {
		t.Fatalf("cycle 2: watermark broken: new id %d (err %v), want 250", id, err)
	}
}

// TestCheckpointThenCrashSkipsReplayed asserts the checkpoint protocol:
// records captured by the snapshot are not replayed again, and writes
// after the checkpoint are.
func TestCheckpointThenCrashSkipsReplayed(t *testing.T) {
	dir := t.TempDir()
	data, _ := testData(72, 150, 8, 4, 0.5)
	di := mustOpenDurable(t, dir)
	for _, v := range data[:100] {
		if _, err := di.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	di.DeleteDurable(7)
	info, err := di.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if info.Skipped || info.LSN != 101 {
		t.Fatalf("checkpoint info %+v, want LSN 101", info)
	}
	// Post-checkpoint writes only exist in the WAL.
	for _, v := range data[100:150] {
		if _, err := di.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	di.DeleteDurable(120)
	crash(di)

	di2 := mustOpenDurable(t, dir)
	defer di2.Close()
	rec := di2.Recovery()
	if rec.Records != 51 {
		t.Fatalf("replayed %d records, want 51 (only post-checkpoint)", rec.Records)
	}
	if rec.SnapshotVectors == 0 {
		t.Fatal("recovery did not load the snapshot")
	}
	if di2.Len() != 148 {
		t.Fatalf("recovered %d live, want 148", di2.Len())
	}
	for _, id := range []int{7, 120} {
		if ids := searchIDs(t, di2, data[id], 150); ids[id] {
			t.Fatalf("deleted id %d resurrected across checkpoint+crash", id)
		}
	}
	if id, _ := di2.Add(data[0]); id != 150 {
		t.Fatalf("watermark after checkpoint+crash: new id %d, want 150", id)
	}
}

// TestCheckpointBoundsDataDir asserts that steady churn with periodic
// checkpoints cannot grow the data directory unboundedly: after each
// checkpoint the WAL is truncated to a single empty active segment and
// exactly one snapshot generation remains on disk.
func TestCheckpointBoundsDataDir(t *testing.T) {
	dir := t.TempDir()
	data, _ := testData(73, 1200, 8, 4, 0.5)
	di := mustOpenDurable(t, dir)
	defer di.Close()
	next := 0
	for round := 0; round < 4; round++ {
		for i := 0; i < 300; i++ {
			if _, err := di.Add(data[next]); err != nil {
				t.Fatal(err)
			}
			if next > 0 && i%3 == 0 {
				di.DeleteDurable(next - 1)
			}
			next++
		}
		if _, err := di.Checkpoint(); err != nil {
			t.Fatalf("round %d checkpoint: %v", round, err)
		}
		st := di.WALStats()
		if st.Depth != 0 {
			t.Fatalf("round %d: WAL depth %d after checkpoint, want 0", round, st.Depth)
		}
		if st.Segments != 1 {
			t.Fatalf("round %d: %d WAL segments after checkpoint, want 1 empty active", round, st.Segments)
		}
		snaps := snapshotFiles(t, dir)
		if len(snaps) != 2 {
			t.Fatalf("round %d: snapshot files %v, want exactly one generation (2 files)", round, snaps)
		}
	}
}

func snapshotFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if ok, _ := filepath.Match("snapshot-*", e.Name()); ok {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestDurableEmptyLifecycle covers the fresh-directory edge: an empty
// index checkpoint is skipped, recovery of an untouched dir yields an
// empty writable index, and the very first insert fixes the
// dimensionality.
func TestDurableEmptyLifecycle(t *testing.T) {
	dir := t.TempDir()
	di := mustOpenDurable(t, dir)
	info, err := di.Checkpoint()
	if err != nil || !info.Skipped {
		t.Fatalf("empty checkpoint = %+v, %v; want skipped", info, err)
	}
	if err := di.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	di2 := mustOpenDurable(t, dir)
	defer di2.Close()
	if di2.Len() != 0 {
		t.Fatalf("empty dir recovered %d vectors", di2.Len())
	}
	if id, err := di2.Add([]float32{1, 2, 3}); err != nil || id != 0 {
		t.Fatalf("first insert: id %d, err %v", id, err)
	}
	if _, err := di2.Add([]float32{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("dimension mismatch not rejected: %v", err)
	}
}

// TestDurableAddBatch covers the bulk path: one journal wait for the
// batch, ids in order, and the batch surviving a crash.
func TestDurableAddBatch(t *testing.T) {
	dir := t.TempDir()
	data, _ := testData(74, 200, 8, 4, 0.5)
	di := mustOpenDurable(t, dir)
	ids, err := di.AddBatch(data[:128])
	if err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	if len(ids) != 128 || ids[0] != 0 || ids[127] != 127 {
		t.Fatalf("AddBatch ids %v...", ids[:3])
	}
	// A validation error mid-batch keeps (and journals) the prefix.
	bad := [][]float32{data[128], {1, 2}, data[129]}
	ids, err = di.AddBatch(bad)
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("AddBatch with bad vector: %v", err)
	}
	if len(ids) != 1 || ids[0] != 128 {
		t.Fatalf("AddBatch prefix ids = %v, want [128]", ids)
	}
	crash(di)
	di2 := mustOpenDurable(t, dir)
	defer di2.Close()
	if di2.Len() != 129 {
		t.Fatalf("recovered %d vectors, want 129", di2.Len())
	}
	if ids := searchIDs(t, di2, data[128], 1); !ids[128] {
		t.Fatal("prefix insert of failed batch lost")
	}
}

// TestDurableConcurrentWriters hammers the group-commit path under
// -race and verifies every acknowledged write survives a crash.
func TestDurableConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	data, _ := testData(75, 400, 8, 4, 0.5)
	di := mustOpenDurable(t, dir)
	const writers = 8
	perWriter := len(data) / writers
	acked := make([][]int, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id, err := di.Add(data[w*perWriter+i])
				if err == nil {
					acked[w] = append(acked[w], id)
				}
			}
		}(w)
	}
	wg.Wait()
	// A few durable deletes interleaved with background builds.
	if ok, err := di.DeleteDurable(acked[0][0]); !ok || err != nil {
		t.Fatalf("DeleteDurable: %v %v", ok, err)
	}
	crash(di)

	di2 := mustOpenDurable(t, dir)
	defer di2.Close()
	total := 0
	seen := map[int]bool{}
	for _, ids := range acked {
		total += len(ids)
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("id %d acked twice", id)
			}
			seen[id] = true
		}
	}
	if di2.Len() != total-1 {
		t.Fatalf("recovered %d live vectors, want %d", di2.Len(), total-1)
	}
}

// TestDurableSyncPolicies exercises interval and none end to end: acks
// still survive an abandoned (not closed) index because the bytes
// reached the OS before the ack.
func TestDurableSyncPolicies(t *testing.T) {
	for _, sync := range []SyncPolicy{SyncInterval, SyncNone} {
		t.Run(sync.String(), func(t *testing.T) {
			dir := t.TempDir()
			data, _ := testData(76, 100, 8, 4, 0.5)
			cfg := durableCfg()
			cfg.Sync = sync
			di, err := OpenDurable(dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range data {
				if _, err := di.Add(v); err != nil {
					t.Fatal(err)
				}
			}
			crash(di)
			di2, err := OpenDurable(dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer di2.Close()
			if di2.Len() != len(data) {
				t.Fatalf("recovered %d, want %d", di2.Len(), len(data))
			}
		})
	}
}

// TestDurableWALStats sanity-checks the stats surface the server
// exposes.
func TestDurableWALStats(t *testing.T) {
	dir := t.TempDir()
	data, _ := testData(77, 50, 8, 4, 0.5)
	di := mustOpenDurable(t, dir)
	defer di.Close()
	for _, v := range data {
		if _, err := di.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	st := di.WALStats()
	if st.Policy != "always" {
		t.Errorf("policy %q", st.Policy)
	}
	if st.Depth != 50 || st.LastLSN != 50 {
		t.Errorf("depth %d lastLSN %d, want 50/50", st.Depth, st.LastLSN)
	}
	if st.SyncedLSN != 50 {
		t.Errorf("SyncedLSN %d under always, want 50", st.SyncedLSN)
	}
	if st.Fsyncs == 0 || st.MeanFsyncMicros <= 0 {
		t.Errorf("fsync stats empty: %+v", st)
	}
	if st.Bytes == 0 || st.Segments == 0 {
		t.Errorf("segment stats empty: %+v", st)
	}
	if _, err := di.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := di.WALStats(); st.Depth != 0 || st.CheckpointLSN != 50 {
		t.Errorf("post-checkpoint stats %+v", st)
	}
}

// TestDurableRejectsWrongDir asserts OpenDurable fails loudly on a
// corrupt manifest rather than silently starting empty.
func TestDurableRejectsCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, durableCfg()); err == nil {
		t.Fatal("corrupt manifest must fail OpenDurable")
	}
}

// TestDurableSearchConformance: a durable index must answer exactly
// like the dynamic index it embeds — spot-check against brute force
// over the live set.
func TestDurableSearchConformance(t *testing.T) {
	dir := t.TempDir()
	data, g := testData(78, 300, 8, 4, 0.5)
	di := mustOpenDurable(t, dir)
	defer di.Close()
	if _, err := di.AddBatch(data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		di.DeleteDurable(g.IntN(len(data)))
	}
	di.WaitRebuild()
	q := data[g.IntN(len(data))]
	got, err := di.SearchBudget(q, 10, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d results", len(got))
	}
	// Results must exclude tombstones and be distance-sorted.
	for i, nb := range got {
		if v := di.Vector(nb.ID); v == nil {
			t.Fatalf("result %d: id %d has no vector", i, nb.ID)
		}
		if i > 0 && got[i-1].Dist > nb.Dist {
			t.Fatalf("results not sorted at %d", i)
		}
	}
}

// TestDurableCloseIsClean: graceful close (checkpoint + close) leaves a
// directory that recovers instantly with zero replay.
func TestDurableCloseIsClean(t *testing.T) {
	dir := t.TempDir()
	data, _ := testData(79, 120, 8, 4, 0.5)
	di := mustOpenDurable(t, dir)
	if _, err := di.AddBatch(data); err != nil {
		t.Fatal(err)
	}
	if _, err := di.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := di.Close(); err != nil {
		t.Fatal(err)
	}
	di2 := mustOpenDurable(t, dir)
	defer di2.Close()
	rec := di2.Recovery()
	if rec.Records != 0 {
		t.Fatalf("clean restart replayed %d records", rec.Records)
	}
	if di2.Len() != len(data) {
		t.Fatalf("clean restart lost data: %d != %d", di2.Len(), len(data))
	}
}

// TestCheckpointOnEmptiedIndex: deleting every vector must not wedge
// the checkpoint loop — an empty state checkpoints as a container-less
// manifest carrying the id watermark, the WAL truncates, and recovery
// restores an empty index that never reissues a deleted id.
func TestCheckpointOnEmptiedIndex(t *testing.T) {
	dir := t.TempDir()
	data, _ := testData(81, 30, 8, 4, 0.5)
	di := mustOpenDurable(t, dir)
	ids, err := di.AddBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if deleted, missing, err := di.DeleteBatch(ids); deleted != len(ids) || len(missing) != 0 || err != nil {
		t.Fatalf("DeleteBatch = %d, %v, %v", deleted, missing, err)
	}
	info, err := di.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint on emptied index: %v", err)
	}
	if info.Skipped || info.Container != "" {
		t.Fatalf("emptied-index checkpoint %+v, want committed container-less manifest", info)
	}
	if st := di.WALStats(); st.Depth != 0 || st.Segments != 1 {
		t.Fatalf("WAL not truncated by empty checkpoint: %+v", st)
	}
	// A second checkpoint with nothing new skips.
	if info, err := di.Checkpoint(); err != nil || !info.Skipped {
		t.Fatalf("idle empty checkpoint = %+v, %v; want skipped", info, err)
	}
	crash(di)
	di2 := mustOpenDurable(t, dir)
	defer di2.Close()
	if di2.Len() != 0 {
		t.Fatalf("recovered %d vectors from emptied index", di2.Len())
	}
	if rec := di2.Recovery(); rec.Records != 0 {
		t.Fatalf("empty checkpoint did not truncate: %d records replayed", rec.Records)
	}
	if id, err := di2.Add(data[0]); err != nil || id != len(data) {
		t.Fatalf("watermark lost across empty checkpoint: id %d (err %v), want %d", id, err, len(data))
	}
}

// TestDurableDeleteBatch covers the bulk delete path: one durability
// wait for the batch, idempotent missing reporting, survival across a
// crash.
func TestDurableDeleteBatch(t *testing.T) {
	dir := t.TempDir()
	data, _ := testData(82, 100, 8, 4, 0.5)
	di := mustOpenDurable(t, dir)
	if _, err := di.AddBatch(data); err != nil {
		t.Fatal(err)
	}
	fsyncsBefore := di.WALStats().Fsyncs
	deleted, missing, err := di.DeleteBatch([]int{1, 2, 3, 2, 999})
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 3 || len(missing) != 2 {
		t.Fatalf("DeleteBatch = %d deleted, %v missing", deleted, missing)
	}
	if got := di.WALStats().Fsyncs - fsyncsBefore; got > 1 {
		t.Fatalf("batch delete cost %d fsyncs, want at most 1", got)
	}
	crash(di)
	di2 := mustOpenDurable(t, dir)
	defer di2.Close()
	if di2.Len() != len(data)-3 {
		t.Fatalf("recovered %d live, want %d", di2.Len(), len(data)-3)
	}
	for _, id := range []int{1, 2, 3} {
		if ids := searchIDs(t, di2, data[id], 100); ids[id] {
			t.Fatalf("batch-deleted id %d resurrected", id)
		}
	}
}

// TestWritesAfterCleanRestartSurviveNextCrash pins an LSN-continuity
// regression: after a checkpoint truncates every WAL segment and the
// process restarts, the log has no segments left to derive its LSN
// sequence from. Without flooring it at the manifest watermark, fresh
// writes would restart at LSN 1 and the *next* recovery would skip
// them as already checkpointed — silent loss of acknowledged writes.
func TestWritesAfterCleanRestartSurviveNextCrash(t *testing.T) {
	dir := t.TempDir()
	data, _ := testData(80, 60, 8, 4, 0.5)
	di := mustOpenDurable(t, dir)
	if _, err := di.AddBatch(data[:40]); err != nil {
		t.Fatal(err)
	}
	if _, err := di.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := di.Close(); err != nil {
		t.Fatal(err)
	}
	// Clean restart: no replay, empty WAL. Write, then crash.
	di2 := mustOpenDurable(t, dir)
	id, err := di2.Add(data[40])
	if err != nil {
		t.Fatal(err)
	}
	if id != 40 {
		t.Fatalf("id after clean restart = %d, want 40", id)
	}
	if st := di2.WALStats(); st.Depth != 1 || st.LastLSN <= st.CheckpointLSN {
		t.Fatalf("LSN sequence did not continue past the watermark: %+v", st)
	}
	crash(di2)
	di3 := mustOpenDurable(t, dir)
	defer di3.Close()
	if rec := di3.Recovery(); rec.Records != 1 {
		t.Fatalf("replayed %d records, want 1 — post-restart write lost", rec.Records)
	}
	if ids := searchIDs(t, di3, data[40], 1); !ids[40] {
		t.Fatal("write after clean restart lost by the following crash")
	}
}

// TestDurableOperationsAfterClose error cleanly rather than panic.
func TestDurableOperationsAfterClose(t *testing.T) {
	dir := t.TempDir()
	di := mustOpenDurable(t, dir)
	if _, err := di.Add([]float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := di.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := di.Add([]float32{3, 4}); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Add after Close: %v, want ErrNotDurable", err)
	}
	if ok, err := di.DeleteDurable(0); err == nil || ok == false && err == nil {
		t.Fatalf("DeleteDurable after Close: %v %v, want error", ok, err)
	}
	if di.Delete(0) {
		t.Fatal("Delete after Close acknowledged")
	}
}

// id collisions across facades would be caught here: the example keeps
// the doc honest.
func ExampleOpenDurable() {
	dir, _ := os.MkdirTemp("", "lccs-durable")
	defer os.RemoveAll(dir)

	// The Config seeds a fresh directory; once a checkpoint exists its
	// container carries the resolved configuration instead.
	cfg := DurableConfig{Config: Config{Metric: Euclidean, M: 8, BucketWidth: 4}}
	di, _ := OpenDurable(dir, cfg)
	id, _ := di.Add([]float32{1, 0})
	di.Add([]float32{0, 1})
	fmt.Println("first id:", id)

	// Crash: no Close, no Checkpoint. Reopen and everything acked is
	// back.
	di2, _ := OpenDurable(dir, cfg)
	fmt.Println("recovered vectors:", di2.Len())
	di2.Close()
	// Output:
	// first id: 0
	// recovered vectors: 2
}

// TestDurableAttrsRoundTrip asserts metadata durability on both halves
// of the recovery path: attrs journaled in the WAL survive a crash, and
// attrs folded into a checkpoint snapshot survive a reopen that replays
// nothing.
func TestDurableAttrsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	di := mustOpenDurable(t, dir)

	vecs := make([][]float32, 12)
	attrs := make([]Attrs, 12)
	for i := range vecs {
		vecs[i] = []float32{float32(i), float32(i) * 2, 1}
		color := "red"
		if i%2 == 1 {
			color = "blue"
		}
		attrs[i] = Attrs{"color": StrAttr(color), "rank": IntAttr(int64(i))}
	}
	attrs[5] = nil // one bare row: journals as a plain insert
	ids, err := di.AddBatchWithAttrs(vecs, attrs)
	if err != nil {
		t.Fatalf("AddBatchWithAttrs: %v", err)
	}
	extraID, err := di.AddWithAttrs([]float32{99, 99, 1}, Attrs{"color": StrAttr("red")})
	if err != nil {
		t.Fatalf("AddWithAttrs: %v", err)
	}

	if _, err := di.AddBatchWithAttrs(vecs, attrs[:3]); !errors.Is(err, ErrAttrsMismatch) {
		t.Fatalf("misaligned attrs: got %v, want ErrAttrsMismatch", err)
	}

	checkAttrs := func(di *DurableIndex, label string) {
		t.Helper()
		for i, id := range ids {
			got := di.Attrs(id)
			if !got.Equal(attrs[i]) {
				t.Fatalf("%s: Attrs(%d) = %v, want %v", label, id, got, attrs[i])
			}
		}
		if got := di.Attrs(extraID); !got.Equal(Attrs{"color": StrAttr("red")}) {
			t.Fatalf("%s: Attrs(extra) = %v", label, got)
		}
		res, err := di.SearchFilterBudgetInto([]float32{0, 0, 1}, len(vecs)+1, 1<<20, &Filter{Terms: []FilterTerm{EqStr("color", "red")}}, nil)
		if err != nil {
			t.Fatalf("%s: SearchFilterBudgetInto: %v", label, err)
		}
		for _, nb := range res {
			if got := di.Attrs(nb.ID); got["color"] != StrAttr("red") {
				t.Fatalf("%s: filtered result %d has attrs %v", label, nb.ID, got)
			}
		}
		// 6 reds in the batch (even i, minus the bared i=5 which was odd
		// anyway — evens 0,2,4,6,8,10) plus the extra.
		if len(res) != 7 {
			t.Fatalf("%s: filtered search returned %d results, want 7", label, len(res))
		}
	}
	checkAttrs(di, "before crash")

	// Crash: recovery must rebuild attrs purely from the WAL.
	crash(di)
	di2 := mustOpenDurable(t, dir)
	checkAttrs(di2, "after WAL replay")

	// Checkpoint folds attrs into the snapshot container; a clean close
	// and reopen must restore them without replaying the truncated log.
	if _, err := di2.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := di2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	di3 := mustOpenDurable(t, dir)
	defer di3.Close()
	checkAttrs(di3, "after checkpoint reopen")
}
