package lccs

import (
	"errors"
	"sync"
	"testing"

	"lccs/internal/rng"
)

func TestDynamicAddAndSearch(t *testing.T) {
	data, g := testData(51, 500, 8, 5, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 32, Seed: 1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 500 || d.Buffered() != 0 {
		t.Fatalf("Len=%d Buffered=%d", d.Len(), d.Buffered())
	}
	// Add vectors below the rebuild threshold: they live in the buffer
	// yet are immediately searchable (exact scan).
	var added []int
	for i := 0; i < 50; i++ {
		v := g.GaussianVector(8)
		id, err := d.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		added = append(added, id)
	}
	if d.Buffered() != 50 {
		t.Fatalf("Buffered=%d, want 50", d.Buffered())
	}
	for _, id := range added[:5] {
		res := must(d.Search(d.Vector(id), 1))
		if len(res) != 1 || res[0].ID != id || res[0].Dist != 0 {
			t.Fatalf("buffered id %d not found: %+v", id, res)
		}
	}
}

func TestDynamicRebuildTriggered(t *testing.T) {
	data, g := testData(52, 200, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := d.Add(g.GaussianVector(8)); err != nil {
			t.Fatal(err)
		}
	}
	// At threshold 20, a background shard build started; once it lands
	// the buffer is small.
	d.WaitRebuild()
	if d.Buffered() >= 20 {
		t.Fatalf("Buffered=%d, rebuild did not trigger", d.Buffered())
	}
	if d.Shards() < 2 {
		t.Fatalf("Shards=%d, delta was not built into a new shard", d.Shards())
	}
	if d.Len() != 225 {
		t.Fatalf("Len=%d", d.Len())
	}
	// Ids remain stable after rebuild.
	res := must(d.Search(d.Vector(210), 1))
	if len(res) != 1 || res[0].ID != 210 {
		t.Fatalf("id shifted after rebuild: %+v", res)
	}
}

func TestDynamicDelete(t *testing.T) {
	data, _ := testData(53, 300, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 32, Seed: 3}, 100)
	if err != nil {
		t.Fatal(err)
	}
	q := data[42]
	res := must(d.Search(q, 1))
	if res[0].ID != 42 {
		t.Fatalf("expected self first: %+v", res)
	}
	d.Delete(42)
	res = must(d.Search(q, 3))
	for _, nb := range res {
		if nb.ID == 42 {
			t.Fatal("deleted id still returned")
		}
	}
	if d.Len() != 299 {
		t.Fatalf("Len=%d", d.Len())
	}
	d.Delete(42)     // idempotent
	d.Delete(-1)     // no-op
	d.Delete(100000) // no-op
	if d.Len() != 299 {
		t.Fatalf("Len changed by no-op deletes: %d", d.Len())
	}
}

func TestDynamicEmptyStart(t *testing.T) {
	d, err := NewDynamicIndex(nil, Config{Metric: Euclidean, M: 16, Seed: 4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatal("empty start")
	}
	if res := must(d.Search([]float32{1, 2}, 3)); res != nil {
		t.Fatal("search on empty index should be nil")
	}
	_, g := testData(54, 1, 1, 1, 1)
	for i := 0; i < 15; i++ {
		if _, err := d.Add(g.GaussianVector(4)); err != nil {
			t.Fatal(err)
		}
	}
	// Threshold 10 → a shard exists once the background build lands.
	d.WaitRebuild()
	if d.Buffered() >= 10 {
		t.Fatalf("Buffered=%d", d.Buffered())
	}
	res := must(d.Search(d.Vector(12), 1))
	if len(res) != 1 || res[0].ID != 12 {
		t.Fatalf("%+v", res)
	}
}

func TestDynamicDimensionMismatch(t *testing.T) {
	data, _ := testData(55, 50, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 5}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add([]float32{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("dimension mismatch: err=%v, want ErrDimensionMismatch", err)
	}
	if _, err := d.Add(nil); !errors.Is(err, ErrEmptyVector) {
		t.Fatalf("nil vector: err=%v, want ErrEmptyVector", err)
	}
}

func TestDynamicConcurrentReadersAndWriters(t *testing.T) {
	data, g := testData(56, 400, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 6}, 50)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool)
	go func() {
		for i := 0; i < 120; i++ {
			if _, err := d.Add(g.GaussianVector(8)); err != nil {
				t.Error(err)
				break
			}
		}
		done <- true
	}()
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 60; i++ {
				if res := must(d.Search(data[(w*60+i)%400], 3)); len(res) == 0 {
					t.Errorf("worker %d: empty result", w)
					break
				}
			}
			done <- true
		}(w)
	}
	for i := 0; i < 5; i++ {
		<-done
	}
	if d.Len() != 520 {
		t.Fatalf("Len=%d, want 520", d.Len())
	}
}

// TestDynamicHammer drives Add/Delete/Search from many goroutines across
// several background rebuild threshold crossings and checks that ids stay
// stable and no vector is lost. Run under -race this also exercises the
// snapshot-swap synchronization of the background shard builds.
func TestDynamicHammer(t *testing.T) {
	const (
		writers    = 4
		perWriter  = 60
		searchers  = 3
		initial    = 100
		threshold  = 40
		deleteEach = 10 // every writer deletes one of its own ids per deleteEach adds
	)
	data, _ := testData(58, initial, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 8}, threshold)
	if err != nil {
		t.Fatal(err)
	}

	type owned struct {
		id  int
		vec []float32
	}
	addedBy := make([][]owned, writers)
	deletedBy := make([][]int, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := rng.New(uint64(1000 + w))
			for i := 0; i < perWriter; i++ {
				v := g.GaussianVector(8)
				id, err := d.Add(v)
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				addedBy[w] = append(addedBy[w], owned{id: id, vec: v})
				if i%deleteEach == deleteEach-1 {
					victim := addedBy[w][len(addedBy[w])/2].id
					d.Delete(victim)
					deletedBy[w] = append(deletedBy[w], victim)
				}
			}
		}(w)
	}
	for s := 0; s < searchers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 80; i++ {
				if res := must(d.Search(data[(s*80+i)%initial], 3)); len(res) == 0 {
					t.Errorf("searcher %d: empty result", s)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	d.WaitRebuild()

	// No lost vectors and stable ids: every live id's stored vector is
	// exactly the one its writer added, and ids are globally unique.
	// Deleted ids may already have been reclaimed by a delta-build
	// compaction, in which case Vector answers nil.
	dead := make(map[int][]float32) // deleted id → its vector content
	for w := range deletedBy {
		for _, id := range deletedBy[w] {
			dead[id] = nil
		}
	}
	seen := make(map[int]bool)
	total := initial
	for w := range addedBy {
		for _, o := range addedBy[w] {
			if seen[o.id] {
				t.Fatalf("id %d assigned twice", o.id)
			}
			seen[o.id] = true
			total++
			if _, isDead := dead[o.id]; isDead {
				dead[o.id] = o.vec
				continue
			}
			got := d.Vector(o.id)
			for j := range o.vec {
				if got[j] != o.vec[j] {
					t.Fatalf("id %d: vector content changed", o.id)
				}
			}
		}
	}
	if d.Len() != total-len(dead) {
		t.Fatalf("Len=%d, want %d-%d", d.Len(), total, len(dead))
	}
	// After a full compaction, every live added vector is reachable by an
	// exhaustive-budget search, no tombstoned id ever surfaces, and the
	// tombstone set is fully reclaimed.
	if err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if d.Buffered() != 0 || d.Shards() != 1 {
		t.Fatalf("after compaction: Buffered=%d Shards=%d", d.Buffered(), d.Shards())
	}
	if d.Deleted() != 0 {
		t.Fatalf("Deleted=%d after Rebuild, want 0", d.Deleted())
	}
	for w := range addedBy {
		for _, o := range addedBy[w][:5] {
			if _, isDead := dead[o.id]; isDead {
				continue
			}
			res := must(d.Search(o.vec, 1))
			if len(res) != 1 || res[0].ID != o.id || res[0].Dist != 0 {
				t.Fatalf("writer %d id %d not found after compaction: %+v", w, o.id, res)
			}
		}
	}
	for id, v := range dead {
		if d.Vector(id) != nil {
			t.Fatalf("deleted id %d still holds a row after Rebuild", id)
		}
		for _, nb := range must(d.Search(v, 5)) {
			if nb.ID == id {
				t.Fatalf("tombstoned id %d surfaced", id)
			}
		}
	}
}

// TestDynamicBackgroundBuildDoesNotBlockWriters checks the swap
// architecture directly: while a background shard build is in flight,
// Add and Search proceed and see the buffered vectors.
func TestDynamicBackgroundBuildDoesNotBlockWriters(t *testing.T) {
	data, g := testData(59, 300, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 9}, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Cross the threshold, then immediately keep writing and reading
	// without waiting for the build.
	for i := 0; i < 75; i++ {
		v := g.GaussianVector(8)
		id, err := d.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		res := must(d.Search(v, 1))
		if len(res) != 1 || res[0].ID != id || res[0].Dist != 0 {
			t.Fatalf("add %d: fresh vector not immediately searchable: %+v", i, res)
		}
	}
	d.WaitRebuild()
	if d.Len() != 375 {
		t.Fatalf("Len=%d", d.Len())
	}
	// Everything eventually lands in shards; ids unchanged.
	res := must(d.Search(d.Vector(350), 1))
	if len(res) != 1 || res[0].ID != 350 {
		t.Fatalf("id 350 lost after background builds: %+v", res)
	}
}

func TestDynamicExplicitRebuild(t *testing.T) {
	data, g := testData(57, 100, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 7}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		d.Add(g.GaussianVector(8))
	}
	if d.Buffered() != 30 {
		t.Fatalf("Buffered=%d", d.Buffered())
	}
	if err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if d.Buffered() != 0 {
		t.Fatalf("Buffered=%d after rebuild", d.Buffered())
	}
}
