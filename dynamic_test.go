package lccs

import (
	"testing"
)

func TestDynamicAddAndSearch(t *testing.T) {
	data, g := testData(51, 500, 8, 5, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 32, Seed: 1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 500 || d.Buffered() != 0 {
		t.Fatalf("Len=%d Buffered=%d", d.Len(), d.Buffered())
	}
	// Add vectors below the rebuild threshold: they live in the buffer
	// yet are immediately searchable (exact scan).
	var added []int
	for i := 0; i < 50; i++ {
		v := g.GaussianVector(8)
		id, err := d.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		added = append(added, id)
	}
	if d.Buffered() != 50 {
		t.Fatalf("Buffered=%d, want 50", d.Buffered())
	}
	for _, id := range added[:5] {
		res := d.Search(d.Vector(id), 1)
		if len(res) != 1 || res[0].ID != id || res[0].Dist != 0 {
			t.Fatalf("buffered id %d not found: %+v", id, res)
		}
	}
}

func TestDynamicRebuildTriggered(t *testing.T) {
	data, g := testData(52, 200, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := d.Add(g.GaussianVector(8)); err != nil {
			t.Fatal(err)
		}
	}
	// At threshold 20, at least one rebuild happened; buffer is small.
	if d.Buffered() >= 20 {
		t.Fatalf("Buffered=%d, rebuild did not trigger", d.Buffered())
	}
	if d.Len() != 225 {
		t.Fatalf("Len=%d", d.Len())
	}
	// Ids remain stable after rebuild.
	res := d.Search(d.Vector(210), 1)
	if len(res) != 1 || res[0].ID != 210 {
		t.Fatalf("id shifted after rebuild: %+v", res)
	}
}

func TestDynamicDelete(t *testing.T) {
	data, _ := testData(53, 300, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 32, Seed: 3}, 100)
	if err != nil {
		t.Fatal(err)
	}
	q := data[42]
	res := d.Search(q, 1)
	if res[0].ID != 42 {
		t.Fatalf("expected self first: %+v", res)
	}
	d.Delete(42)
	res = d.Search(q, 3)
	for _, nb := range res {
		if nb.ID == 42 {
			t.Fatal("deleted id still returned")
		}
	}
	if d.Len() != 299 {
		t.Fatalf("Len=%d", d.Len())
	}
	d.Delete(42)     // idempotent
	d.Delete(-1)     // no-op
	d.Delete(100000) // no-op
	if d.Len() != 299 {
		t.Fatalf("Len changed by no-op deletes: %d", d.Len())
	}
}

func TestDynamicEmptyStart(t *testing.T) {
	d, err := NewDynamicIndex(nil, Config{Metric: Euclidean, M: 16, Seed: 4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatal("empty start")
	}
	if res := d.Search([]float32{1, 2}, 3); res != nil {
		t.Fatal("search on empty index should be nil")
	}
	_, g := testData(54, 1, 1, 1, 1)
	for i := 0; i < 15; i++ {
		if _, err := d.Add(g.GaussianVector(4)); err != nil {
			t.Fatal(err)
		}
	}
	// Threshold 10 → a main index exists now.
	if d.Buffered() >= 10 {
		t.Fatalf("Buffered=%d", d.Buffered())
	}
	res := d.Search(d.Vector(12), 1)
	if len(res) != 1 || res[0].ID != 12 {
		t.Fatalf("%+v", res)
	}
}

func TestDynamicDimensionMismatch(t *testing.T) {
	data, _ := testData(55, 50, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 5}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add([]float32{1, 2}); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

func TestDynamicConcurrentReadersAndWriters(t *testing.T) {
	data, g := testData(56, 400, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 6}, 50)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool)
	go func() {
		for i := 0; i < 120; i++ {
			if _, err := d.Add(g.GaussianVector(8)); err != nil {
				t.Error(err)
				break
			}
		}
		done <- true
	}()
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 60; i++ {
				if res := d.Search(data[(w*60+i)%400], 3); len(res) == 0 {
					t.Errorf("worker %d: empty result", w)
					break
				}
			}
			done <- true
		}(w)
	}
	for i := 0; i < 5; i++ {
		<-done
	}
	if d.Len() != 520 {
		t.Fatalf("Len=%d, want 520", d.Len())
	}
}

func TestDynamicExplicitRebuild(t *testing.T) {
	data, g := testData(57, 100, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 7}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		d.Add(g.GaussianVector(8))
	}
	if d.Buffered() != 30 {
		t.Fatalf("Buffered=%d", d.Buffered())
	}
	if err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if d.Buffered() != 0 {
		t.Fatalf("Buffered=%d after rebuild", d.Buffered())
	}
}
