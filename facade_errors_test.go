package lccs

import (
	"bytes"
	"testing"
)

func TestFamilyForErrors(t *testing.T) {
	if _, err := familyFor(Config{Metric: Euclidean, BucketWidth: 0}, 4); err == nil {
		t.Error("euclidean without width should fail in familyFor")
	}
	if _, err := familyFor(Config{Metric: "mahalanobis"}, 4); err == nil {
		t.Error("unknown metric should fail")
	}
	for _, m := range []MetricKind{Angular, Hamming, Jaccard} {
		if _, err := familyFor(Config{Metric: m}, 4); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
}

func TestDecodeHeaderErrors(t *testing.T) {
	data, _ := testData(61, 20, 4, 2, 0.5)
	// Valid magic but truncated right after.
	if _, err := decodeSingle(bytes.NewReader(nil), data); err == nil {
		t.Error("header truncation should fail")
	}
	// Corrupt metric length.
	blob := []byte{0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := decodeSingle(bytes.NewReader(blob), data); err == nil {
		t.Error("corrupt metric length should fail")
	}
	// Unknown magic is rejected up front.
	if _, err := readMagic(bytes.NewReader([]byte("LCCSPKG9"))); err == nil {
		t.Error("unknown magic should fail")
	}
	// Both known magics are accepted.
	for _, m := range [][8]byte{pkgMagic, pkgMagic2} {
		if got, err := readMagic(bytes.NewReader(m[:])); err != nil || got != m {
			t.Errorf("magic %q rejected: %v", m, err)
		}
	}
}

func TestNewDynamicIndexBadConfig(t *testing.T) {
	data, _ := testData(62, 20, 4, 2, 0.5)
	if _, err := NewDynamicIndex(data, Config{Metric: "nope"}, 0); err == nil {
		t.Error("bad metric should fail when initial data present")
	}
	// An empty start must reject the config too, not defer to a panic at
	// the first query.
	if _, err := NewDynamicIndex(nil, Config{Metric: "nope"}, 0); err == nil {
		t.Error("bad metric should fail on empty start")
	}
	if _, err := NewDynamicIndex(nil, Config{Metric: Euclidean, M: -1}, 0); err == nil {
		t.Error("negative M should fail on empty start")
	}
	// A valid empty start still works.
	if _, err := NewDynamicIndex(nil, Config{Metric: Euclidean}, 0); err != nil {
		t.Errorf("valid empty start: %v", err)
	}
}

func TestSaveToUnwritablePath(t *testing.T) {
	data, _ := testData(63, 20, 4, 2, 0.5)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save("/nonexistent-dir/x/y/z.lccs"); err == nil {
		t.Error("unwritable path should fail")
	}
}
