package lccs

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadSharded feeds arbitrary bytes through the container parsers —
// LoadSharded first (it accepts all three formats), then Load — and
// asserts the durability-grade contract: truncated or corrupt
// containers must return an error, never panic and never OOM. The
// committed golden files of all three formats seed the corpus so the
// fuzzer starts from deep inside the valid format space.
func FuzzLoadSharded(f *testing.F) {
	for _, name := range []string{"golden_pkg1.lccs", "golden_pkg2.lccs", "golden_pkg3.lccs"} {
		blob, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			f.Fatalf("missing golden seed %s: %v", name, err)
		}
		f.Add(blob)
		f.Add(blob[:len(blob)/2]) // truncated container
		mut := append([]byte(nil), blob...)
		mut[len(mut)/3] ^= 0xFF // flipped body byte
		f.Add(mut)
	}
	f.Add([]byte("LCCSPKG1"))
	f.Add([]byte("LCCSPKG9 not a real format"))
	f.Add([]byte{})

	data, _ := goldenSetup()
	f.Fuzz(func(t *testing.T, blob []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.lccs")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		// Either call may succeed (the input is a valid container) or
		// error; panics fail the fuzz run.
		if sx, err := LoadSharded(path, data); err == nil {
			sx.Search(data[0], 3)
		}
		if ix, err := Load(path, data); err == nil {
			ix.Search(data[0], 3)
		}
	})
}
