package lccs

import (
	"math/rand"
	"testing"

	"lccs/internal/obs"
)

func traceTestData(n, dim int) [][]float32 {
	r := rand.New(rand.NewSource(42))
	data := make([][]float32, n)
	for i := range data {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}
	return data
}

// findSpans returns the children of the single query root with the
// given stage name.
func findSpans(t *testing.T, tree []obs.SpanNode, stage string) []obs.SpanNode {
	t.Helper()
	var root *obs.SpanNode
	for i := range tree {
		if tree[i].Stage == "query" {
			root = &tree[i]
		}
	}
	if root == nil {
		t.Fatalf("no query root span in %+v", tree)
	}
	var out []obs.SpanNode
	for _, c := range root.Children {
		if c.Stage == stage {
			out = append(out, c)
		}
	}
	return out
}

func TestShardedSearchTraced(t *testing.T) {
	data := traceTestData(400, 8)
	sx, err := NewShardedIndex(data, Config{Metric: Euclidean, M: 16, Seed: 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := data[3]

	plain, err := sx.SearchBudget(q, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.GetTrace(1)
	defer obs.PutTrace(tr)
	traced, err := sx.SearchBudgetIntoTraced(q, 5, 40, nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(traced) != len(plain) {
		t.Fatalf("traced returned %d results, plain %d", len(traced), len(plain))
	}
	for i := range traced {
		if traced[i] != plain[i] {
			t.Fatalf("result %d differs: traced %+v, plain %+v", i, traced[i], plain[i])
		}
	}

	tree := tr.Tree()
	scans := findSpans(t, tree, "shard_scan")
	if len(scans) != sx.Shards() {
		t.Fatalf("want %d shard_scan spans, got %d", sx.Shards(), len(scans))
	}
	seen := map[int]bool{}
	for _, sp := range scans {
		if sp.Shard == nil {
			t.Fatalf("shard_scan span missing shard ordinal: %+v", sp)
		}
		seen[*sp.Shard] = true
		if sp.Rows <= 0 || sp.Cands <= 0 {
			t.Fatalf("shard %d span has empty counters: %+v", *sp.Shard, sp)
		}
	}
	if len(seen) != sx.Shards() {
		t.Fatalf("shard ordinals not distinct: %v", seen)
	}
	if m := findSpans(t, tree, "merge"); len(m) != 1 {
		t.Fatalf("want 1 merge span, got %d", len(m))
	}
}

func TestDynamicSearchTracedBufferScan(t *testing.T) {
	data := traceTestData(300, 8)
	// Threshold high enough that the last 100 adds stay in the buffer.
	d, err := NewDynamicIndex(data[:200], Config{Metric: Euclidean, M: 16, Seed: 7}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range data[200:] {
		if _, err := d.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	tr := obs.GetTrace(2)
	defer obs.PutTrace(tr)
	if _, err := d.SearchBudgetIntoTraced(data[0], 5, 0, nil, tr); err != nil {
		t.Fatal(err)
	}
	tree := tr.Tree()
	buf := findSpans(t, tree, "buffer_scan")
	if len(buf) != 1 {
		t.Fatalf("want 1 buffer_scan span, got %d", len(buf))
	}
	if buf[0].Rows != 100 {
		t.Fatalf("buffer_scan rows = %d, want 100", buf[0].Rows)
	}
	if len(findSpans(t, tree, "shard_scan")) == 0 {
		t.Fatal("no shard_scan spans under the dynamic query root")
	}
}
