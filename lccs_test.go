package lccs

import (
	"math"
	"sort"
	"testing"

	"lccs/internal/rng"
	"lccs/internal/vec"
)

// must unwraps a (value, error) search-API return, panicking on error
// (the testing framework reports the panic as a failure with a stack).
// It keeps result-content assertions terse across the suite; tests that
// assert on the error itself call the API directly.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func testData(seed uint64, n, d, clusters int, spread float64) ([][]float32, *rng.RNG) {
	g := rng.New(seed)
	centers := make([][]float32, clusters)
	for i := range centers {
		centers[i] = g.UniformVector(d, -10, 10)
	}
	data := make([][]float32, n)
	for i := range data {
		c := centers[i%clusters]
		v := make([]float32, d)
		for j := range v {
			v[j] = c[j] + float32(g.NormFloat64()*spread)
		}
		data[i] = v
	}
	return data, g
}

func bruteKNN(data [][]float32, q []float32, k int, dist func(a, b []float32) float64) []Neighbor {
	all := make([]Neighbor, len(data))
	for i, v := range data {
		all[i] = Neighbor{ID: i, Dist: dist(v, q)}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Dist < all[b].Dist })
	return all[:k]
}

func TestNewIndexValidation(t *testing.T) {
	data, _ := testData(1, 50, 8, 5, 0.5)
	if _, err := NewIndex(nil, Config{Metric: Euclidean}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := NewIndex([][]float32{{}}, Config{Metric: Euclidean}); err == nil {
		t.Error("zero-dim should fail")
	}
	if _, err := NewIndex(data, Config{Metric: "chebyshev"}); err == nil {
		t.Error("unknown metric should fail")
	}
	if _, err := NewIndex(data, Config{Metric: Euclidean, M: -1}); err == nil {
		t.Error("negative M should fail")
	}
	ix, err := NewIndex(data, Config{Metric: Euclidean})
	if err != nil {
		t.Fatal(err)
	}
	if ix.M() != defaultM || ix.Len() != 50 {
		t.Fatalf("defaults: M=%d Len=%d", ix.M(), ix.Len())
	}
	if ix.Bytes() <= 0 || ix.BuildTime() < 0 {
		t.Fatal("accounting")
	}
}

func TestEuclideanRecall(t *testing.T) {
	data, g := testData(2, 2000, 16, 20, 0.8)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var recall float64
	const nq, k = 20, 10
	for i := 0; i < nq; i++ {
		base := data[g.IntN(len(data))]
		q := make([]float32, len(base))
		for j := range q {
			q[j] = base[j] + float32(g.NormFloat64()*0.4)
		}
		want := bruteKNN(data, q, k, vec.Distance)
		got := must(ix.SearchBudget(q, k, 200))
		wantSet := map[int]bool{}
		for _, w := range want {
			wantSet[w.ID] = true
		}
		hit := 0
		for _, r := range got {
			if wantSet[r.ID] {
				hit++
			}
		}
		recall += float64(hit) / k
	}
	if avg := recall / nq; avg < 0.7 {
		t.Fatalf("recall %.2f too low", avg)
	}
}

func TestAngularSearch(t *testing.T) {
	data, _ := testData(3, 1000, 24, 10, 0.5)
	for _, v := range data {
		vec.NormalizeInPlace(v)
	}
	ix, err := NewIndex(data, Config{Metric: Angular, M: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := data[123]
	got := must(ix.SearchBudget(q, 5, 100))
	if len(got) != 5 {
		t.Fatalf("got %d results", len(got))
	}
	if got[0].Dist > 1e-6 {
		t.Fatalf("self query angular distance %v", got[0].Dist)
	}
	if math.Abs(ix.Distance(data[0], data[1])-vec.AngularDistance(data[0], data[1])) > 1e-12 {
		t.Fatal("Distance accessor wrong metric")
	}
}

func TestHammingSearch(t *testing.T) {
	g := rng.New(4)
	d := 64
	data := make([][]float32, 500)
	for i := range data {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(g.IntN(2))
		}
		data[i] = v
	}
	ix, err := NewIndex(data, Config{Metric: Hamming, M: 128, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Query: a data point with a few flipped bits.
	q := append([]float32(nil), data[42]...)
	for _, j := range g.Perm(d)[:3] {
		q[j] = 1 - q[j]
	}
	got := must(ix.SearchBudget(q, 1, 50))
	if len(got) != 1 {
		t.Fatal("no result")
	}
	if got[0].Dist > 10 {
		t.Fatalf("nearest at hamming distance %v, expected close to 3", got[0].Dist)
	}
}

func TestMultiProbeConfig(t *testing.T) {
	data, _ := testData(5, 800, 12, 8, 0.5)
	mp, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Probes: 33, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	q := data[10]
	a, b := must(mp.Search(q, 5)), must(sp.Search(q, 5))
	if len(a) != 5 || len(b) != 5 {
		t.Fatal("result sizes")
	}
	// Multi-probe explores at least as much; its top result cannot be
	// worse on the same budget and seed.
	if a[0].Dist > b[0].Dist+1e-9 {
		t.Fatalf("multi-probe top result worse: %v vs %v", a[0].Dist, b[0].Dist)
	}
}

func TestSearchUsesDefaultBudget(t *testing.T) {
	data, _ := testData(6, 400, 8, 4, 0.5)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 32, Budget: 150, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := must(ix.Search(data[7], 3))
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
	if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a].Dist < got[b].Dist }) {
		t.Fatal("not sorted")
	}
}

func TestAutoBucketWidth(t *testing.T) {
	data, _ := testData(7, 300, 8, 4, 0.5)
	store, err := storeFromRows(data)
	if err != nil {
		t.Fatal(err)
	}
	if w := autoBucketWidth(store, 1); w <= 0 {
		t.Fatalf("auto width %v", w)
	}
	// Degenerate all-identical dataset falls back to 1.
	same := make([][]float32, 50)
	for i := range same {
		same[i] = []float32{1, 2, 3}
	}
	sameStore, err := storeFromRows(same)
	if err != nil {
		t.Fatal(err)
	}
	if w := autoBucketWidth(sameStore, 1); w != 1 {
		t.Fatalf("degenerate width %v, want fallback 1", w)
	}
}
