package lccs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTripEuclidean(t *testing.T) {
	data, _ := testData(31, 600, 12, 6, 0.5)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "index.lccs")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.M() != ix.M() || loaded.Len() != ix.Len() {
		t.Fatalf("shape mismatch after load: m=%d n=%d", loaded.M(), loaded.Len())
	}
	// Identical queries must produce identical results (same seed, same
	// CSA).
	for i := 0; i < 10; i++ {
		q := data[i*37]
		a := ix.SearchBudget(q, 5, 50)
		b := loaded.SearchBudget(q, 5, 50)
		if len(a) != len(b) {
			t.Fatalf("result lengths differ: %d vs %d", len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("result %d differs: %+v vs %+v", j, a[j], b[j])
			}
		}
	}
}

func TestSaveLoadMultiProbe(t *testing.T) {
	data, _ := testData(32, 400, 10, 4, 0.5)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Probes: 17, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mp.lccs")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.multi == nil {
		t.Fatal("multi-probe configuration lost on load")
	}
	q := data[3]
	a, b := ix.Search(q, 5), loaded.Search(q, 5)
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("MP results differ after load: %+v vs %+v", a[j], b[j])
		}
	}
}

func TestSaveLoadAngularAndHamming(t *testing.T) {
	data, _ := testData(33, 300, 16, 4, 0.5)
	for _, metric := range []MetricKind{Angular, Hamming} {
		d := data
		if metric == Hamming {
			// Binarize.
			d = make([][]float32, len(data))
			for i, v := range data {
				b := make([]float32, len(v))
				for j, x := range v {
					if x > 0 {
						b[j] = 1
					}
				}
				d[i] = b
			}
		}
		ix, err := NewIndex(d, Config{Metric: metric, M: 24, Seed: 6})
		if err != nil {
			t.Fatalf("%s: %v", metric, err)
		}
		path := filepath.Join(t.TempDir(), string(metric)+".lccs")
		if err := ix.Save(path); err != nil {
			t.Fatalf("%s: %v", metric, err)
		}
		loaded, err := Load(path, d)
		if err != nil {
			t.Fatalf("%s: %v", metric, err)
		}
		a, b := ix.SearchBudget(d[0], 3, 30), loaded.SearchBudget(d[0], 3, 30)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("%s: results differ", metric)
			}
		}
	}
}

func TestLoadRejectsWrongData(t *testing.T) {
	data, _ := testData(34, 300, 8, 4, 0.5)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ix.lccs")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	// Different dataset of the same shape: the hash-string spot check
	// must fail.
	other, _ := testData(99, 300, 8, 4, 0.5)
	if _, err := Load(path, other); err == nil {
		t.Fatal("loading with different data should fail")
	}
	// Different length fails at the header check.
	if _, err := Load(path, data[:100]); err == nil {
		t.Fatal("loading with truncated data should fail")
	}
	if _, err := Load(path, nil); err == nil {
		t.Fatal("loading with nil data should fail")
	}
}

func TestLoadRejectsGarbageFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.lccs")
	if err := os.WriteFile(path, []byte("this is not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, _ := testData(35, 10, 4, 2, 0.5)
	if _, err := Load(path, data); err == nil {
		t.Fatal("garbage file should fail")
	}
	if _, err := Load(filepath.Join(dir, "missing.lccs"), data); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestLoadRejectsTruncatedFile(t *testing.T) {
	data, _ := testData(36, 200, 8, 4, 0.5)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "full.lccs")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		cut := filepath.Join(dir, "cut.lccs")
		if err := os.WriteFile(cut, blob[:int(float64(len(blob))*frac)], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(cut, data); err == nil {
			t.Fatalf("truncated file (%.0f%%) should fail", frac*100)
		}
	}
}
