package lccs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"lccs/internal/rng"
)

// updateGolden regenerates the committed golden index files:
//
//	go test -run TestGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "regenerate testdata golden index files")

// goldenSetup returns the deterministic dataset and configs behind the
// committed golden files. Changing either invalidates the files — rerun
// with -update-golden and commit the result.
func goldenSetup() ([][]float32, Config) {
	data, _ := testData(88, 150, 8, 4, 0.5)
	return data, Config{Metric: Euclidean, M: 16, Budget: 40, Seed: 88}
}

// TestGoldenFormat1 pins the on-disk compatibility promise: a format-1
// (LCCSPKG1) file written by an old release keeps loading — through both
// Load and LoadSharded — and returns the exact neighbors a fresh build
// returns.
func TestGoldenFormat1(t *testing.T) {
	const path = "testdata/golden_pkg1.lccs"
	data, cfg := goldenSetup()
	fresh, err := NewIndex(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Save(path); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
	}
	loaded, err := Load(path, data)
	if err != nil {
		t.Fatalf("golden format-1 file no longer loads: %v", err)
	}
	if loaded.M() != fresh.M() || loaded.Len() != fresh.Len() {
		t.Fatalf("golden shape: m=%d n=%d", loaded.M(), loaded.Len())
	}
	for qi := 0; qi < 10; qi++ {
		q := data[qi*11]
		a, b := must(fresh.SearchBudget(q, 5, 40)), must(loaded.SearchBudget(q, 5, 40))
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query %d pos %d: %+v vs %+v", qi, j, a[j], b[j])
			}
		}
	}
	// The migration path: old single-index files open as one shard.
	wrapped, err := LoadSharded(path, data)
	if err != nil {
		t.Fatalf("LoadSharded on golden format-1 file: %v", err)
	}
	if wrapped.Shards() != 1 || wrapped.Len() != len(data) {
		t.Fatalf("wrapped golden: shards=%d len=%d", wrapped.Shards(), wrapped.Len())
	}
}

// TestGoldenFormat2 pins the sharded container format the same way.
func TestGoldenFormat2(t *testing.T) {
	const path = "testdata/golden_pkg2.lccs"
	data, cfg := goldenSetup()
	fresh, err := NewShardedIndex(data, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Save(path); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
	}
	loaded, err := LoadSharded(path, data)
	if err != nil {
		t.Fatalf("golden format-2 file no longer loads: %v", err)
	}
	if loaded.Shards() != 3 || loaded.Len() != len(data) {
		t.Fatalf("golden shape: shards=%d len=%d", loaded.Shards(), loaded.Len())
	}
	for qi := 0; qi < 10; qi++ {
		q := data[qi*7]
		a, b := must(fresh.SearchBudget(q, 5, 40)), must(loaded.SearchBudget(q, 5, 40))
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query %d pos %d: %+v vs %+v", qi, j, a[j], b[j])
			}
		}
	}
}

// goldenLifecycleIndex builds the deterministic dynamic index behind
// the format-3 golden file: deletes in the main shard and the buffer,
// plus post-delete inserts, so the snapshot carries a compacted id map
// and live tombstones.
func goldenLifecycleIndex(t *testing.T) ([][]float32, *ShardedIndex) {
	t.Helper()
	data, cfg := goldenSetup()
	d, err := NewDynamicIndex(data, cfg, 10000)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(123)
	var added []int
	for i := 0; i < 6; i++ {
		id, err := d.Add(g.GaussianVector(8))
		if err != nil {
			t.Fatal(err)
		}
		added = append(added, id)
	}
	for _, id := range []int{3, 77, added[0]} {
		if !d.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
	}
	vectors, sx, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sx.Deleted() != 2 || sx.ids == nil {
		t.Fatalf("golden setup: Deleted=%d ids=%v, want 2 tombstones and a compacted id map",
			sx.Deleted(), sx.ids)
	}
	return vectors, sx
}

// TestGoldenFormat3 pins the lifecycle container: a format-3 (LCCSPKG3)
// file keeps loading with its id map and tombstones intact, serves
// identical results to the in-memory snapshot, and never resurrects a
// deleted id.
func TestGoldenFormat3(t *testing.T) {
	const path = "testdata/golden_pkg3.lccs"
	vectors, fresh := goldenLifecycleIndex(t)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Save(path); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
	}
	loaded, err := LoadSharded(path, vectors)
	if err != nil {
		t.Fatalf("golden format-3 file no longer loads: %v", err)
	}
	if loaded.Len() != fresh.Len() || loaded.Deleted() != fresh.Deleted() {
		t.Fatalf("golden shape: len=%d deleted=%d, want %d/%d",
			loaded.Len(), loaded.Deleted(), fresh.Len(), fresh.Deleted())
	}
	exhaustive := 4 * len(vectors)
	for qi := 0; qi < 10; qi++ {
		q := vectors[qi*13]
		a, b := must(fresh.SearchBudget(q, 5, exhaustive)), must(loaded.SearchBudget(q, 5, exhaustive))
		if len(a) != len(b) {
			t.Fatalf("query %d: lengths differ", qi)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query %d pos %d: %+v vs %+v", qi, j, a[j], b[j])
			}
		}
	}
	for _, deadID := range []int{3, 77} {
		for _, nb := range must(loaded.SearchBudget(vectors[deadID], 10, exhaustive)) {
			if nb.ID == deadID {
				t.Fatalf("golden tombstone %d resurrected", deadID)
			}
		}
	}
	// A format-3 file is a sharded container: the single-index loader
	// directs callers to LoadSharded.
	if _, err := Load(path, vectors); err == nil {
		t.Fatal("Load accepted a format-3 container")
	}
}

// TestGoldenReencodeByteIdentical pins the on-disk layout itself, not
// just loadability: re-saving an index loaded from a legacy golden file
// must reproduce the file byte for byte. This proves the flat
// structure-of-arrays decoder/encoder speaks exactly the legacy PKG1 and
// PKG2 stream layout (the m per-shift arrays of the old encoder and the
// single contiguous block of the new one are the same bytes).
func TestGoldenReencodeByteIdentical(t *testing.T) {
	data, _ := goldenSetup()
	dir := t.TempDir()

	orig1, err := os.ReadFile("testdata/golden_pkg1.lccs")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Load("testdata/golden_pkg1.lccs", data)
	if err != nil {
		t.Fatal(err)
	}
	resaved1 := filepath.Join(dir, "pkg1.lccs")
	if err := ix.Save(resaved1); err != nil {
		t.Fatal(err)
	}
	got1, err := os.ReadFile(resaved1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig1, got1) {
		t.Fatalf("format-1 re-encode differs from golden: %d vs %d bytes", len(got1), len(orig1))
	}

	orig2, err := os.ReadFile("testdata/golden_pkg2.lccs")
	if err != nil {
		t.Fatal(err)
	}
	sx, err := LoadSharded("testdata/golden_pkg2.lccs", data)
	if err != nil {
		t.Fatal(err)
	}
	resaved2 := filepath.Join(dir, "pkg2.lccs")
	if err := sx.Save(resaved2); err != nil {
		t.Fatal(err)
	}
	got2, err := os.ReadFile(resaved2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig2, got2) {
		t.Fatalf("format-2 re-encode differs from golden: %d vs %d bytes", len(got2), len(orig2))
	}

	// Format 3: the lifecycle tail (id map + sorted tombstones) encodes
	// deterministically, so load → re-save is also byte-identical.
	vectors, _ := goldenLifecycleIndex(t)
	orig3, err := os.ReadFile("testdata/golden_pkg3.lccs")
	if err != nil {
		t.Fatal(err)
	}
	sx3, err := LoadSharded("testdata/golden_pkg3.lccs", vectors)
	if err != nil {
		t.Fatal(err)
	}
	resaved3 := filepath.Join(dir, "pkg3.lccs")
	if err := sx3.Save(resaved3); err != nil {
		t.Fatal(err)
	}
	got3, err := os.ReadFile(resaved3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig3, got3) {
		t.Fatalf("format-3 re-encode differs from golden: %d vs %d bytes", len(got3), len(orig3))
	}
}

// TestSaveWithoutLifecycleStaysFormat2 pins the compatibility promise
// from the other side: a snapshot with no deletion state writes the
// exact format-2 container older readers understand.
func TestSaveWithoutLifecycleStaysFormat2(t *testing.T) {
	data, cfg := goldenSetup()
	d, err := NewDynamicIndex(data, cfg, 10000)
	if err != nil {
		t.Fatal(err)
	}
	vectors, sx, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "clean.lccs")
	if err := sx.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob[:8]) != "LCCSPKG2" {
		t.Fatalf("clean snapshot wrote magic %q, want LCCSPKG2", blob[:8])
	}
	if _, err := LoadSharded(path, vectors); err != nil {
		t.Fatal(err)
	}
}

// TestLoadCorruptedLifecycleSection flips bytes across the format-3
// lifecycle tail (id-map flag, watermark, counts, ids) and checks every
// corruption fails loudly.
func TestLoadCorruptedLifecycleSection(t *testing.T) {
	vectors, sx := goldenLifecycleIndex(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "pkg3.lccs")
	if err := sx.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The lifecycle section is the file tail: flag(1) + next(8) +
	// idCount(8) + ids + deadCount(8) + dead ids. Truncations anywhere
	// inside it must fail.
	tail := 1 + 8 + 8 + 8*len(vectors) + 8 + 8*sx.Deleted()
	for _, cut := range []int{tail, tail - 5, 9, 1} {
		p := filepath.Join(dir, "cut.lccs")
		if err := os.WriteFile(p, blob[:len(blob)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadSharded(p, vectors); err == nil {
			t.Fatalf("truncated lifecycle (-%d bytes) loaded", cut)
		}
	}
	// A corrupt flag byte is rejected.
	bad := append([]byte(nil), blob...)
	bad[len(blob)-tail] = 7
	p := filepath.Join(dir, "badflag.lccs")
	if err := os.WriteFile(p, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSharded(p, vectors); err == nil {
		t.Fatal("corrupt id-map flag loaded")
	}
	// A tombstone id that resolves to no slot is rejected.
	bad = append([]byte(nil), blob...)
	for i := 0; i < 8; i++ {
		bad[len(blob)-8+i] = 0xFF // last dead id → garbage
	}
	p = filepath.Join(dir, "badtomb.lccs")
	if err := os.WriteFile(p, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSharded(p, vectors); err == nil {
		t.Fatal("unresolvable tombstone id loaded")
	}
}

// TestFormat1WarmRestartDoesNotMutateLoadedIndex pins the store-view
// contract across the format-1 warm-restart chain: LoadSharded wraps a
// single-index file as one shard, NewDynamicIndexFromSharded adopts its
// store, and Adds to the dynamic index must grow a private copy — the
// loaded index keeps its original length and the snapshot of the grown
// dynamic index must round-trip.
func TestFormat1WarmRestartDoesNotMutateLoadedIndex(t *testing.T) {
	data, _ := testData(51, 200, 8, 4, 0.5)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "single.lccs")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	sx, err := LoadSharded(path, data)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamicIndexFromSharded(sx, data, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add([]float32{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if got := sx.Len(); got != len(data) {
		t.Fatalf("loaded index grew with the dynamic store: Len=%d, want %d", got, len(data))
	}
	shard, _ := sx.Shard(0)
	if got := shard.Len(); got != len(data) {
		t.Fatalf("loaded shard grew with the dynamic store: Len=%d, want %d", got, len(data))
	}
	vecs, snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(t.TempDir(), "snap.lccs")
	if err := snap.Save(snapPath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSharded(snapPath, vecs); err != nil {
		t.Fatalf("snapshot after warm-restart Add does not reload: %v", err)
	}
}

// TestLoadCorruptedHeaderBytes flips bytes inside the format-1 header
// region and checks every corruption is reported as an error — never a
// panic or a silently wrong index.
func TestLoadCorruptedHeaderBytes(t *testing.T) {
	data, _ := testData(37, 200, 8, 4, 0.5)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "ok.lccs")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Header = magic(8) + metric len(4)/str + [M,Probes,Budget] int64 +
	// bucket width float64 + seed uint64. Flips in Probes or Budget yield
	// a coherent-but-different config that legitimately loads, so the
	// test targets the regions the loader must verify: the magic, the
	// metric, the M field (cross-checked against the core index), and
	// the seed (caught by the hash-string spot check).
	metricEnd := 8 + 4 + len(Euclidean)
	headerLen := metricEnd + 3*8 + 8 + 8
	var offsets []int
	for off := 0; off < metricEnd+8; off++ {
		offsets = append(offsets, off) // magic, metric, M
	}
	for off := headerLen - 8; off < headerLen; off++ {
		offsets = append(offsets, off) // seed
	}
	for _, off := range offsets {
		bad := append([]byte(nil), blob...)
		bad[off] ^= 0xA5
		p := filepath.Join(dir, "bad.lccs")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(p, data)
		if err == nil {
			t.Fatalf("byte flip at offset %d loaded without error (%v)", off, loaded.cfg)
		}
	}
}

func TestSaveLoadRoundTripEuclidean(t *testing.T) {
	data, _ := testData(31, 600, 12, 6, 0.5)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "index.lccs")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.M() != ix.M() || loaded.Len() != ix.Len() {
		t.Fatalf("shape mismatch after load: m=%d n=%d", loaded.M(), loaded.Len())
	}
	// Identical queries must produce identical results (same seed, same
	// CSA).
	for i := 0; i < 10; i++ {
		q := data[i*37]
		a := must(ix.SearchBudget(q, 5, 50))
		b := must(loaded.SearchBudget(q, 5, 50))
		if len(a) != len(b) {
			t.Fatalf("result lengths differ: %d vs %d", len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("result %d differs: %+v vs %+v", j, a[j], b[j])
			}
		}
	}
}

func TestSaveLoadMultiProbe(t *testing.T) {
	data, _ := testData(32, 400, 10, 4, 0.5)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Probes: 17, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mp.lccs")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.multi == nil {
		t.Fatal("multi-probe configuration lost on load")
	}
	q := data[3]
	a, b := must(ix.Search(q, 5)), must(loaded.Search(q, 5))
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("MP results differ after load: %+v vs %+v", a[j], b[j])
		}
	}
}

func TestSaveLoadAngularAndHamming(t *testing.T) {
	data, _ := testData(33, 300, 16, 4, 0.5)
	for _, metric := range []MetricKind{Angular, Hamming} {
		d := data
		if metric == Hamming {
			// Binarize.
			d = make([][]float32, len(data))
			for i, v := range data {
				b := make([]float32, len(v))
				for j, x := range v {
					if x > 0 {
						b[j] = 1
					}
				}
				d[i] = b
			}
		}
		ix, err := NewIndex(d, Config{Metric: metric, M: 24, Seed: 6})
		if err != nil {
			t.Fatalf("%s: %v", metric, err)
		}
		path := filepath.Join(t.TempDir(), string(metric)+".lccs")
		if err := ix.Save(path); err != nil {
			t.Fatalf("%s: %v", metric, err)
		}
		loaded, err := Load(path, d)
		if err != nil {
			t.Fatalf("%s: %v", metric, err)
		}
		a, b := must(ix.SearchBudget(d[0], 3, 30)), must(loaded.SearchBudget(d[0], 3, 30))
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("%s: results differ", metric)
			}
		}
	}
}

func TestLoadRejectsWrongData(t *testing.T) {
	data, _ := testData(34, 300, 8, 4, 0.5)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ix.lccs")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	// Different dataset of the same shape: the hash-string spot check
	// must fail.
	other, _ := testData(99, 300, 8, 4, 0.5)
	if _, err := Load(path, other); err == nil {
		t.Fatal("loading with different data should fail")
	}
	// Different length fails at the header check.
	if _, err := Load(path, data[:100]); err == nil {
		t.Fatal("loading with truncated data should fail")
	}
	if _, err := Load(path, nil); err == nil {
		t.Fatal("loading with nil data should fail")
	}
	if _, err := Load(path, make([][]float32, 300)); err == nil {
		t.Fatal("loading with zero-dimensional data should fail")
	}
}

func TestLoadRejectsGarbageFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.lccs")
	if err := os.WriteFile(path, []byte("this is not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, _ := testData(35, 10, 4, 2, 0.5)
	if _, err := Load(path, data); err == nil {
		t.Fatal("garbage file should fail")
	}
	if _, err := Load(filepath.Join(dir, "missing.lccs"), data); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestLoadRejectsTruncatedFile(t *testing.T) {
	data, _ := testData(36, 200, 8, 4, 0.5)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "full.lccs")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		cut := filepath.Join(dir, "cut.lccs")
		if err := os.WriteFile(cut, blob[:int(float64(len(blob))*frac)], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(cut, data); err == nil {
			t.Fatalf("truncated file (%.0f%%) should fail", frac*100)
		}
	}
}

// goldenAttrsRows returns the deterministic metadata behind the
// format-5 golden file: color cycles three values, price is the row
// index, every 7th row carries nothing.
func goldenAttrsRows(n int) []Attrs {
	colors := []string{"red", "green", "blue"}
	rows := make([]Attrs, n)
	for i := range rows {
		if i%7 == 6 {
			continue
		}
		rows[i] = Attrs{
			"color": StrAttr(colors[i%3]),
			"price": IntAttr(int64(i)),
		}
	}
	return rows
}

// TestGoldenFormat5 pins the metadata container: a format-5 (LCCSPKG5)
// file keeps loading with its attribute rows intact, serves identical
// filtered results to a fresh build, and re-saves byte for byte.
func TestGoldenFormat5(t *testing.T) {
	const path = "testdata/golden_pkg5.lccs"
	data, cfg := goldenSetup()
	attrs := goldenAttrsRows(len(data))
	fresh, err := NewShardedIndexWithAttrs(data, attrs, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Save(path); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob[:8]) != "LCCSPKG5" {
		t.Fatalf("golden file has magic %q, want LCCSPKG5", blob[:8])
	}
	loaded, err := LoadSharded(path, data)
	if err != nil {
		t.Fatalf("golden format-5 file no longer loads: %v", err)
	}
	for i := range data {
		if !loaded.Attrs(i).Equal(attrs[i]) {
			t.Fatalf("attrs(%d) = %v, want %v", i, loaded.Attrs(i), attrs[i])
		}
	}
	f := &Filter{Terms: []FilterTerm{EqStr("color", "red")}}
	for qi := 0; qi < 10; qi++ {
		q := data[qi*7]
		a, err := fresh.SearchFilterBudgetInto(q, 5, len(data), f, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.SearchFilterBudgetInto(q, 5, len(data), f, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !neighborsEqual(a, b) {
			t.Fatalf("query %d: %v vs %v", qi, a, b)
		}
	}
	// Re-saving the loaded index reproduces the file byte for byte.
	resaved := filepath.Join(t.TempDir(), "pkg5.lccs")
	if err := loaded.Save(resaved); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(resaved)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, got) {
		t.Fatalf("format-5 re-encode differs from golden: %d vs %d bytes", len(got), len(blob))
	}
	// A sharded format-5 container is rejected by the single loader.
	if _, err := Load(path, data); err == nil {
		t.Fatal("Load accepted a sharded format-5 container")
	}
}

// TestFormat5SingleRoundTrip checks the single-Index side of format 5,
// including the LoadSharded migration path carrying the metadata along.
func TestFormat5SingleRoundTrip(t *testing.T) {
	data, cfg := goldenSetup()
	attrs := goldenAttrsRows(len(data))
	ix, err := NewIndexWithAttrs(data, attrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "single.lccs")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob[:8]) != "LCCSPKG5" {
		t.Fatalf("single index with attrs wrote magic %q, want LCCSPKG5", blob[:8])
	}
	loaded, err := Load(path, data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !loaded.Attrs(i).Equal(attrs[i]) {
			t.Fatalf("attrs(%d) = %v, want %v", i, loaded.Attrs(i), attrs[i])
		}
	}
	f := &Filter{Terms: []FilterTerm{EqInt("price", 33)}}
	a, err := ix.SearchFilterBudgetInto(data[0], 3, len(data), f, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.SearchFilterBudgetInto(data[0], 3, len(data), f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !neighborsEqual(a, b) {
		t.Fatalf("filtered search differs after load: %v vs %v", a, b)
	}
	// The migration path keeps the metadata.
	wrapped, err := LoadSharded(path, data)
	if err != nil {
		t.Fatal(err)
	}
	if !wrapped.Attrs(10).Equal(attrs[10]) {
		t.Fatalf("wrapped attrs(10) = %v, want %v", wrapped.Attrs(10), attrs[10])
	}
	// Truncations inside the attribute tail must fail loudly.
	dir := t.TempDir()
	for _, cut := range []int{1, 8, 17} {
		p := filepath.Join(dir, "cut.lccs")
		if err := os.WriteFile(p, blob[:len(blob)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(p, data); err == nil {
			t.Fatalf("truncated attribute section (-%d bytes) loaded", cut)
		}
	}
}

// TestSaveWithoutAttrsKeepsLegacyFormats pins the compatibility promise
// from the other side: indexes whose rows carry no metadata keep writing
// the exact legacy containers older readers understand.
func TestSaveWithoutAttrsKeepsLegacyFormats(t *testing.T) {
	data, cfg := goldenSetup()
	// All-nil attribute rows count as "no metadata".
	ix, err := NewIndexWithAttrs(data, make([]Attrs, len(data)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plain.lccs")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob[:8]) != "LCCSPKG1" {
		t.Fatalf("attr-free index wrote magic %q, want LCCSPKG1", blob[:8])
	}
}
