package lccs

import (
	"runtime"
	"testing"
)

func TestSearchBatchMatchesSequential(t *testing.T) {
	data, g := testData(41, 800, 12, 8, 0.5)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]float32, 40)
	for i := range queries {
		base := data[g.IntN(len(data))]
		q := make([]float32, len(base))
		for j := range q {
			q[j] = base[j] + float32(g.NormFloat64()*0.2)
		}
		queries[i] = q
	}
	batch := must(ix.SearchBatchBudget(queries, 5, 60))
	if len(batch) != len(queries) {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, q := range queries {
		seq := must(ix.SearchBudget(q, 5, 60))
		if len(seq) != len(batch[i]) {
			t.Fatalf("query %d: lengths differ", i)
		}
		for j := range seq {
			if seq[j] != batch[i][j] {
				t.Fatalf("query %d result %d: %+v vs %+v", i, j, seq[j], batch[i][j])
			}
		}
	}
}

// TestSearchBatchWorkersLEOne pins GOMAXPROCS to 1 so the sequential
// fallback path of the batch engine runs with a multi-query batch, and
// checks its results are byte-identical to per-query Search.
func TestSearchBatchWorkersLEOne(t *testing.T) {
	data, g := testData(44, 400, 10, 6, 0.5)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]float32, 8)
	for i := range queries {
		queries[i] = g.GaussianVector(10)
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	batch := must(ix.SearchBatchBudget(queries, 4, 40))
	for i, q := range queries {
		seq := must(ix.SearchBudget(q, 4, 40))
		if len(seq) != len(batch[i]) {
			t.Fatalf("query %d: lengths differ", i)
		}
		for j := range seq {
			if seq[j] != batch[i][j] {
				t.Fatalf("query %d result %d: %+v vs %+v", i, j, seq[j], batch[i][j])
			}
		}
	}
}

// TestSearchBatchEdgeCases covers the empty batch and the one-query batch
// (which takes the workers <= 1 path because workers is capped at the
// query count).
func TestSearchBatchEdgeCases(t *testing.T) {
	data, _ := testData(45, 200, 8, 4, 0.5)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := must(ix.SearchBatchBudget(nil, 3, 50)); len(got) != 0 {
		t.Fatalf("empty batch: %d rows", len(got))
	}
	if got := must(ix.SearchBatchBudget([][]float32{}, 3, 50)); len(got) != 0 {
		t.Fatalf("zero-length batch: %d rows", len(got))
	}
	one := must(ix.SearchBatchBudget(data[:1], 3, 50))
	if len(one) != 1 {
		t.Fatalf("one-query batch: %d rows", len(one))
	}
	seq := must(ix.SearchBudget(data[0], 3, 50))
	for j := range seq {
		if seq[j] != one[0][j] {
			t.Fatalf("one-query batch differs from Search at %d", j)
		}
	}
}

// TestShardedSearchBatchMatchesSequential checks the sharded batch engine
// (which skips the per-query shard fan-out goroutines) is byte-identical
// to per-query ShardedIndex.Search.
func TestShardedSearchBatchMatchesSequential(t *testing.T) {
	data, g := testData(46, 600, 10, 5, 0.5)
	sx, err := NewShardedIndex(data, Config{Metric: Euclidean, M: 16, Seed: 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]float32, 25)
	for i := range queries {
		queries[i] = g.GaussianVector(10)
	}
	batch := must(sx.SearchBatchBudget(queries, 5, 60))
	if len(batch) != len(queries) {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, q := range queries {
		seq := must(sx.SearchBudget(q, 5, 60))
		if len(seq) != len(batch[i]) {
			t.Fatalf("query %d: lengths differ", i)
		}
		for j := range seq {
			if seq[j] != batch[i][j] {
				t.Fatalf("query %d result %d: %+v vs %+v", i, j, seq[j], batch[i][j])
			}
		}
	}
	if got := must(sx.SearchBatch(nil, 3)); len(got) != 0 {
		t.Fatal("empty sharded batch should be empty")
	}
}

func TestSearchBatchDefaultBudget(t *testing.T) {
	data, _ := testData(42, 200, 8, 4, 0.5)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Budget: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	out := must(ix.SearchBatch(data[:5], 3))
	if len(out) != 5 {
		t.Fatalf("got %d rows", len(out))
	}
	for i, row := range out {
		if len(row) != 3 {
			t.Fatalf("row %d has %d results", i, len(row))
		}
	}
	if got := must(ix.SearchBatch(nil, 3)); len(got) != 0 {
		t.Fatal("empty batch should be empty")
	}
}

func TestJaccardFacade(t *testing.T) {
	// Sets as indicator vectors: near-duplicate sets must rank first.
	d := 128
	data := make([][]float32, 300)
	_, g := testData(43, 1, 1, 1, 1)
	for i := range data {
		v := make([]float32, d)
		for _, j := range g.Perm(d)[:20] {
			v[j] = 1
		}
		data[i] = v
	}
	// data[50] = data[10] with two members swapped.
	dup := append([]float32(nil), data[10]...)
	on, off := -1, -1
	for j, x := range dup {
		if x != 0 && on < 0 {
			on = j
		}
		if x == 0 && off < 0 {
			off = j
		}
	}
	dup[on], dup[off] = 0, 1
	data[50] = dup

	ix, err := NewIndex(data, Config{Metric: Jaccard, M: 96, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res := must(ix.SearchBudget(data[10], 2, 50))
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].ID != 10 || res[0].Dist != 0 {
		t.Fatalf("self not first: %+v", res)
	}
	if res[1].ID != 50 {
		t.Fatalf("near-duplicate not second: %+v", res)
	}
	// Round-trip through Save/Load for the fourth metric too.
	path := t.TempDir() + "/jaccard.lccs"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, data)
	if err != nil {
		t.Fatal(err)
	}
	res2 := must(loaded.SearchBudget(data[10], 2, 50))
	for i := range res {
		if res[i] != res2[i] {
			t.Fatal("results differ after load")
		}
	}
}
